examples/concurrent_workload.ml: Btree Printf Reorg Sched Sim Workload
