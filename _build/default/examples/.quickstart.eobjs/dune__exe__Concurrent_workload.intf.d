examples/concurrent_workload.mli:
