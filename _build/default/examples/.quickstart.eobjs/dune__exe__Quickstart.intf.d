examples/quickstart.mli:
