examples/crash_recovery.ml: Btree List Printf Reorg Sched Sim
