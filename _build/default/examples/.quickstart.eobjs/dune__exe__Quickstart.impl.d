examples/quickstart.ml: Btree List Printf Reorg Sched Sim Transact Util
