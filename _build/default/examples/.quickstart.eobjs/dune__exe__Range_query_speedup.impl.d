examples/range_query_speedup.ml: Btree List Pager Printf Reorg Sim Transact Util
