examples/range_query_speedup.mli:
