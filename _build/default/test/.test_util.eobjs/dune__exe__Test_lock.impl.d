test/test_lock.ml: Alcotest Array Gen List Lockmgr Printf QCheck QCheck_alcotest
