test/test_txn.ml: Alcotest Int64 List Lockmgr Pager Sched String Transact Wal
