test/test_pager.mli:
