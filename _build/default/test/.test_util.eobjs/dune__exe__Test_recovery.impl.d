test/test_recovery.ml: Alcotest Btree Gen Hashtbl List Pager Printf QCheck QCheck_alcotest Reorg Sched Sim Transact Util Wal Workload
