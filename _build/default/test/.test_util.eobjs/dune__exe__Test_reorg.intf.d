test/test_reorg.mli:
