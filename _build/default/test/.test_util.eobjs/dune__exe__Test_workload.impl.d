test/test_workload.ml: Alcotest Btree List Pager Printf QCheck QCheck_alcotest Sched Sim Transact Util Workload
