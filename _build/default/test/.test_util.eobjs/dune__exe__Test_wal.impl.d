test/test_wal.ml: Alcotest Format List QCheck QCheck_alcotest String Wal
