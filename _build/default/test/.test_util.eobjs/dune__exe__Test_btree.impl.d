test/test_btree.ml: Alcotest Array Btree Fun Gen Hashtbl List Option Pager Printf QCheck QCheck_alcotest Reorg Sched Sim String Transact Util Wal Workload
