test/test_util.ml: Alcotest Array Fun List String Util
