test/test_baseline.ml: Alcotest Baseline Btree List Lockmgr Option Pager Printf Reorg Sched Sim Transact Wal Workload
