test/test_reorg_units.mli:
