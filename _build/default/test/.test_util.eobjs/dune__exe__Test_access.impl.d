test/test_access.ml: Alcotest Btree Hashtbl List Lockmgr Option Printf Reorg Sched Sim String Transact Util Workload
