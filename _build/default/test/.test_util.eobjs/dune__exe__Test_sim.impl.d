test/test_sim.ml: Alcotest Btree List Pager Reorg Sched Sim String Transact Util Workload
