test/test_reorg.ml: Alcotest Array Baseline Btree Hashtbl List Option Pager Printf Reorg Sched Sim String Transact Util Workload
