test/test_reorg_units.ml: Alcotest Btree List Lockmgr Option Pager Reorg Sched Sim Transact Wal
