test/test_sched.ml: Alcotest Buffer List Printf Sched
