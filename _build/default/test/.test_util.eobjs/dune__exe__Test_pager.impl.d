test/test_pager.ml: Alcotest Gen List Pager QCheck QCheck_alcotest
