(* WAL tests: codec round-trips (including a qcheck generator over record
   bodies), log stability semantics, checkpoint tracking. *)

module Record = Wal.Record
module Log = Wal.Log
module Lsn = Wal.Lsn

let sample_bodies : Record.body list =
  [
    Txn_begin 7;
    Txn_commit 7;
    Txn_abort 9;
    Update { txn = 1; page = 4; off = 32; before = "aa"; after = "bbb"; prev = 5 };
    Leaf_insert { txn = 2; page = 8; key = 42; payload = "hello"; prev = 0 };
    Leaf_delete { txn = 2; page = 8; key = 42; payload = "hello"; prev = 11 };
    Clr { txn = 2; action = Undo_insert { key = 42 }; undo_next = 3 };
    Clr { txn = 2; action = Undo_delete { key = 1; payload = "p" }; undo_next = 0 };
    Clr { txn = 2; action = Undo_side (Side_insert { key = 5; child = 6 }); undo_next = 1 };
    Reorg_begin { unit_id = 3; rtype = Compact; base_pages = [ 10 ]; leaf_pages = [ 11; 12; 13 ] };
    Reorg_begin { unit_id = 4; rtype = Swap; base_pages = [ 10; 20 ]; leaf_pages = [ 11; 21 ] };
    Reorg_move
      {
        unit_id = 3;
        org = 11;
        dest = 14;
        payload = Full_records [ (1, "x"); (2, "yy") ];
        dest_init = Some { di_low_mark = 1; di_prev = 9; di_next = 15 };
        prev = 2;
      };
    Reorg_move
      { unit_id = 3; org = 12; dest = 14; payload = Keys_only [ 3; 4; 5 ]; dest_init = None; prev = 9 };
    Reorg_modify
      {
        unit_id = 3;
        base = 10;
        edits =
          [
            Insert_entry { key = 1; child = 14 };
            Delete_entry { key = 2; child = 11 };
            Update_entry { org_key = 3; org_child = 12; new_key = 4; new_child = 15 };
          ];
        prev = 12;
      };
    Reorg_end { unit_id = 3; largest_key = 99; prev = 13 };
    Side_file { txn = 5; op = Side_insert { key = 7; child = 30 }; prev = 0 };
    Side_file { txn = 5; op = Side_delete { key = 8; child = 31 }; prev = 2 };
    Side_applied { op = Side_insert { key = 7; child = 30 } };
    Stable_key { key = 1234; new_root = 55 };
    Switch { old_root = 2; new_root = 55; old_name = 1; new_name = 2 };
    Checkpoint
      {
        active_txns = [ (1, 5); (2, 9) ];
        reorg =
          {
            rt_lk = 17;
            rt_unit = Some 3;
            rt_begin_lsn = 4;
            rt_last_lsn = 13;
            rt_ck = Some 200;
          };
        dirty_pages = [ 1; 2; 3 ];
      };
    Checkpoint { active_txns = []; reorg = Record.empty_reorg_table; dirty_pages = [] };
  ]

let test_roundtrip_samples () =
  List.iter
    (fun body ->
      let decoded = Record.decode (Record.encode body) in
      if decoded <> body then
        Alcotest.failf "roundtrip failed for %s" (Format.asprintf "%a" Record.pp body))
    sample_bodies

let test_malformed () =
  Alcotest.check_raises "garbage" (Failure "Record.decode: malformed record") (fun () ->
      ignore (Record.decode "zzzz"));
  Alcotest.check_raises "trailing"
    (Failure "Record.decode: malformed record")
    (fun () -> ignore (Record.decode (Record.encode (Record.Txn_begin 1) ^ "x")))

let test_encoded_size_reflects_payload () =
  let small =
    Record.encoded_size
      (Reorg_move
         { unit_id = 1; org = 1; dest = 2; payload = Keys_only [ 1; 2; 3 ]; dest_init = None; prev = 0 })
  in
  let big =
    Record.encoded_size
      (Reorg_move
         {
           unit_id = 1;
           org = 1;
           dest = 2;
           payload = Full_records [ (1, String.make 50 'a'); (2, String.make 50 'b'); (3, "c") ];
           dest_init = None;
           prev = 0;
         })
  in
  Alcotest.(check bool) "keys-only is smaller" true (small < big)

let test_log_append_read () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  let l2 = Log.append log (Record.Txn_commit 1) in
  Alcotest.(check int) "lsn 1" 1 l1;
  Alcotest.(check int) "lsn 2" 2 l2;
  Alcotest.(check bool) "read back" true (Log.read log l1 = Record.Txn_begin 1);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Log.read log 99))

let test_log_crash_discards_tail () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  Log.force log l1;
  let l2 = Log.append log (Record.Txn_commit 1) in
  ignore l2;
  Log.crash log;
  Alcotest.(check int) "flushed survives" l1 (Log.flushed_lsn log);
  Alcotest.check_raises "tail gone" Not_found (fun () -> ignore (Log.read log l2));
  (* The LSN sequence continues after restart. *)
  let l3 = Log.append log (Record.Txn_begin 2) in
  Alcotest.(check bool) "lsn continues" true (l3 > l2)

let test_log_iter_stable_only () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  let _l2 = Log.append log (Record.Txn_begin 2) in
  Log.force log l1;
  let seen = ref [] in
  Log.iter log (fun lsn _ -> seen := lsn :: !seen);
  Alcotest.(check (list int)) "only stable" [ 1 ] !seen

let test_checkpoint_tracking () =
  let log = Log.create () in
  Alcotest.(check bool) "none" true (Log.last_checkpoint log = None);
  let c =
    Log.append log
      (Record.Checkpoint
         { active_txns = []; reorg = Record.empty_reorg_table; dirty_pages = [] })
  in
  Alcotest.(check bool) "volatile checkpoint not visible" true (Log.last_checkpoint log = None);
  Log.force_all log;
  (match Log.last_checkpoint log with
  | Some (lsn, Record.Checkpoint _) -> Alcotest.(check int) "lsn" c lsn
  | _ -> Alcotest.fail "expected checkpoint");
  ignore c

let test_stats_accounting () =
  let log = Log.create () in
  ignore (Log.append log (Record.Txn_begin 1));
  ignore (Log.append log (Record.Txn_begin 2));
  let s = Log.stats log in
  Alcotest.(check int) "records" 2 s.Log.records;
  Alcotest.(check bool) "bytes counted" true (s.Log.bytes > 0);
  Log.crash log;
  let s2 = Log.stats log in
  Alcotest.(check int) "crash removes unforced from accounting" 0 s2.Log.records

(* Property: encode/decode round-trips over generated record bodies. *)
let gen_body : Record.body QCheck.Gen.t =
  let open QCheck.Gen in
  let key = int_bound 10000 in
  let pid = int_bound 500 in
  let str = string_size ~gen:printable (int_bound 30) in
  let side_op =
    oneof
      [
        map2 (fun key child -> Record.Side_insert { key; child }) key pid;
        map2 (fun key child -> Record.Side_delete { key; child }) key pid;
      ]
  in
  oneof
    [
      map (fun t -> Record.Txn_begin t) (int_bound 100);
      map (fun t -> Record.Txn_commit t) (int_bound 100);
      (let* txn = int_bound 100 and* page = pid and* off = int_bound 256 in
       let* before = str and* after = str and* prev = int_bound 50 in
       return (Record.Update { txn; page; off; before; after; prev }));
      (let* txn = int_bound 100 and* page = pid and* key = key and* payload = str in
       let* prev = int_bound 50 in
       return (Record.Leaf_insert { txn; page; key; payload; prev }));
      (let* unit_id = int_bound 20 and* org = pid and* dest = pid and* prev = int_bound 50 in
       let* payload =
         oneof
           [
             map (fun ks -> Record.Keys_only ks) (list_size (int_bound 10) key);
             map (fun rs -> Record.Full_records rs) (list_size (int_bound 10) (pair key str));
           ]
       in
       let* dest_init =
         opt
           (let* di_low_mark = key and* di_prev = pid and* di_next = pid in
            return { Record.di_low_mark; di_prev; di_next })
       in
       return (Record.Reorg_move { unit_id; org; dest; payload; dest_init; prev }));
      (let* txn = int_bound 100 and* op = side_op and* prev = int_bound 50 in
       return (Record.Side_file { txn; op; prev }));
    ]

let roundtrip_prop =
  QCheck.Test.make ~name:"record codec roundtrip" ~count:500 (QCheck.make gen_body) (fun body ->
      Record.decode (Record.encode body) = body)

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "samples roundtrip" `Quick test_roundtrip_samples;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "size reflects payload" `Quick test_encoded_size_reflects_payload;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "log",
        [
          Alcotest.test_case "append/read" `Quick test_log_append_read;
          Alcotest.test_case "crash discards tail" `Quick test_log_crash_discards_tail;
          Alcotest.test_case "iter stable only" `Quick test_log_iter_stable_only;
          Alcotest.test_case "checkpoint tracking" `Quick test_checkpoint_tracking;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
        ] );
    ]
