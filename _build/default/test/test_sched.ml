(* Scheduler tests: determinism, suspension, timers, wait queues. *)

module Engine = Sched.Engine
module Waitq = Sched.Waitq

let test_fifo_interleaving () =
  let eng = Engine.create () in
  let trace = ref [] in
  let emit x = trace := x :: !trace in
  Engine.spawn eng (fun () ->
      emit "a1";
      Engine.yield ();
      emit "a2");
  Engine.spawn eng (fun () ->
      emit "b1";
      Engine.yield ();
      emit "b2");
  Engine.run eng;
  Alcotest.(check (list string)) "round robin" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !trace)

let test_deterministic_random () =
  let run seed =
    let eng = Engine.create ~seed ~random:true () in
    let trace = ref [] in
    for i = 1 to 5 do
      Engine.spawn eng (fun () ->
          trace := (2 * i) :: !trace;
          Engine.yield ();
          trace := ((2 * i) + 1) :: !trace)
    done;
    Engine.run eng;
    List.rev !trace
  in
  Alcotest.(check (list int)) "same seed same schedule" (run 7) (run 7);
  Alcotest.(check bool) "different seed differs" true (run 7 <> run 8)

let test_suspend_resume () =
  let eng = Engine.create () in
  let resumer = ref (fun () -> ()) in
  let state = ref "init" in
  Engine.spawn eng (fun () ->
      state := "suspended";
      Engine.suspend (fun resume -> resumer := resume);
      state := "resumed");
  Engine.spawn eng (fun () ->
      Alcotest.(check string) "peer sees suspension" "suspended" !state;
      !resumer ());
  Engine.run eng;
  Alcotest.(check string) "resumed" "resumed" !state;
  Alcotest.(check int) "all finished" 0 (Engine.live eng)

let test_double_resume_rejected () =
  let eng = Engine.create () in
  let resumer = ref (fun () -> ()) in
  let failed = ref false in
  Engine.spawn eng (fun () -> Engine.suspend (fun resume -> resumer := resume));
  Engine.spawn eng (fun () ->
      !resumer ();
      try !resumer () with Invalid_argument _ -> failed := true);
  Engine.run eng;
  Alcotest.(check bool) "second resume rejected" true !failed

let test_sleep_ordering () =
  let eng = Engine.create () in
  let trace = ref [] in
  Engine.spawn eng (fun () ->
      Engine.sleep 50;
      trace := "late" :: !trace);
  Engine.spawn eng (fun () ->
      Engine.sleep 10;
      trace := "early" :: !trace);
  Engine.run eng;
  Alcotest.(check (list string)) "timer order" [ "early"; "late" ] (List.rev !trace)

let test_stop_abandons () =
  let eng = Engine.create () in
  let reached = ref false in
  Engine.spawn eng (fun () ->
      Engine.stop eng;
      Engine.yield ();
      reached := true);
  Engine.run eng;
  Alcotest.(check bool) "work after stop never runs" false !reached;
  Alcotest.(check bool) "process abandoned" true (Engine.live eng > 0)

let test_time_advances () =
  let eng = Engine.create () in
  let t0 = ref 0 and t1 = ref 0 in
  Engine.spawn eng (fun () ->
      t0 := Engine.current_time ();
      Engine.yield ();
      Engine.yield ();
      t1 := Engine.current_time ());
  Engine.run eng;
  Alcotest.(check bool) "ticks" true (!t1 > !t0)

let test_spawn_child () =
  let eng = Engine.create () in
  let seen = ref false in
  Engine.spawn eng (fun () -> Engine.spawn_child (fun () -> seen := true));
  Engine.run eng;
  Alcotest.(check bool) "child ran" true !seen

let test_timer_fires_while_busy () =
  (* Timers must fire even while other processes stay runnable — this is
     what makes mid-run crash injection possible. *)
  let eng = Engine.create () in
  let fired_at = ref (-1) in
  let spins = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 100 do
        incr spins;
        Engine.yield ()
      done);
  Engine.spawn eng (fun () ->
      Engine.sleep 10;
      fired_at := !spins);
  Engine.run eng;
  Alcotest.(check bool)
    (Printf.sprintf "timer fired mid-busy (after %d spins)" !fired_at)
    true
    (!fired_at > 0 && !fired_at < 100)

let test_random_determinism_many_seeds () =
  let run seed =
    let eng = Engine.create ~seed ~random:true () in
    let trace = Buffer.create 64 in
    for i = 0 to 9 do
      Engine.spawn eng (fun () ->
          Buffer.add_string trace (string_of_int i);
          Engine.yield ();
          Buffer.add_char trace '.')
    done;
    Engine.run eng;
    Buffer.contents trace
  in
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d replays" seed)
        (run seed) (run seed))
    [ 0; 1; 2; 3; 17; 99 ]

let test_waitq () =
  let eng = Engine.create () in
  let q = Waitq.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Engine.spawn eng (fun () ->
        Waitq.wait q;
        order := i :: !order)
  done;
  Engine.spawn eng (fun () ->
      Alcotest.(check int) "three waiting" 3 (Waitq.waiting q);
      Waitq.signal q;
      Engine.yield ();
      Waitq.broadcast q);
  Engine.run eng;
  Alcotest.(check (list int)) "fifo wakeups" [ 1; 2; 3 ] (List.rev !order)

let () =
  Alcotest.run "sched"
    [
      ( "engine",
        [
          Alcotest.test_case "fifo" `Quick test_fifo_interleaving;
          Alcotest.test_case "seeded random" `Quick test_deterministic_random;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "double resume" `Quick test_double_resume_rejected;
          Alcotest.test_case "sleep" `Quick test_sleep_ordering;
          Alcotest.test_case "stop" `Quick test_stop_abandons;
          Alcotest.test_case "time" `Quick test_time_advances;
          Alcotest.test_case "spawn child" `Quick test_spawn_child;
          Alcotest.test_case "timer during busy" `Quick test_timer_fires_while_busy;
          Alcotest.test_case "determinism across seeds" `Quick
            test_random_determinism_many_seeds;
        ] );
      ("waitq", [ Alcotest.test_case "wait/signal/broadcast" `Quick test_waitq ]);
    ]
