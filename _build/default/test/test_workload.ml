(* Workload library tests: key generators, sparseness scenarios, disk-order
   scrambling, and the concurrent user mix driver. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db
module Sparse = Workload.Sparse
module Keygen = Workload.Keygen
module Scramble = Workload.Scramble
module Mix = Workload.Mix

let payload = Db.payload_for

(* ---------------- keygen ---------------- *)

let test_keygen_bounds () =
  let rng = Util.Rng.create 1 in
  for _ = 1 to 500 do
    let u = Keygen.next rng (Keygen.Uniform { n = 100 }) in
    Alcotest.(check bool) "uniform in range" true (u >= 0 && u < 100);
    let z = Keygen.next rng (Keygen.Zipf { n = 100; theta = 0.9 }) in
    Alcotest.(check bool) "zipf in range" true (z >= 0 && z < 100);
    let c = Keygen.next rng (Keygen.Clustered { n = 100; cluster = 10 }) in
    Alcotest.(check bool) "clustered in range" true (c >= 0 && c < 100)
  done

let test_keygen_sequential () =
  let c = Keygen.counter ~start:5 in
  let a = Keygen.next_seq c in
  let b = Keygen.next_seq c in
  let d = Keygen.next_seq c in
  Alcotest.(check (list int)) "sequence" [ 5; 6; 7 ] [ a; b; d ]

(* ---------------- sparse scenarios ---------------- *)

let test_uniform_thinning_fraction () =
  let rng = Util.Rng.create 3 in
  let s = Sparse.uniform_thinning ~rng ~n:1000 ~survive:0.3 in
  Alcotest.(check int) "initial size" 1000 (List.length s.Sparse.initial);
  let frac = float_of_int (List.length s.Sparse.deletes) /. 1000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "deletes ~70%% (got %.2f)" frac)
    true
    (frac > 0.6 && frac < 0.8);
  Alcotest.(check (list (pair int string))) "no inserts" [] s.Sparse.inserts

let test_range_purge_clusters () =
  let rng = Util.Rng.create 4 in
  let s = Sparse.range_purge ~rng ~n:1000 ~ranges:5 ~width:0.05 in
  Alcotest.(check bool) "some deletes" true (List.length s.Sparse.deletes > 50);
  (* Deleted keys must form few contiguous runs (clusters), not dust. *)
  let sorted = List.sort_uniq compare s.Sparse.deletes in
  let runs =
    let rec count prev acc = function
      | [] -> acc
      | k :: rest -> count k (if k = prev + 2 then acc else acc + 1) rest
    in
    match sorted with [] -> 0 | k :: rest -> count k 1 rest
  in
  Alcotest.(check bool) (Printf.sprintf "few runs (%d)" runs) true (runs <= 5)

let test_scenarios_apply_cleanly () =
  let rng = Util.Rng.create 5 in
  let s = Sparse.churn ~rng ~n:400 ~rounds:2 () in
  let db = Db.load ~fill:0.9 s.Sparse.initial in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  List.iter (fun k -> ignore (Tree.delete db.Db.tree ~txn:tx k)) s.Sparse.deletes;
  List.iter
    (fun (k, v) ->
      try Tree.insert db.Db.tree ~txn:tx ~key:k ~payload:v () with Tree.Duplicate_key _ -> ())
    s.Sparse.inserts;
  Txn_mgr.commit db.Db.mgr tx;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

(* ---------------- scramble ---------------- *)

let contents db =
  List.map (fun r -> (r.Btree.Leaf.key, r.Btree.Leaf.payload))
    (Tree.range db.Db.tree ~lo:min_int ~hi:max_int)

let test_swap_placement_preserves_everything () =
  let records = List.init 300 (fun i -> (2 * i, payload (2 * i))) in
  let db = Db.load ~fill:0.5 records in
  let before = contents db in
  let pids = Tree.leaf_pids db.Db.tree in
  let a = List.nth pids 2 and b = List.nth pids 7 in
  Scramble.swap_placement db.Db.tree a b;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Alcotest.(check bool) "contents unchanged" true (contents db = before);
  (* The two leaves exchanged physical pages. *)
  let pids' = Tree.leaf_pids db.Db.tree in
  Alcotest.(check int) "b now holds position 2" b (List.nth pids' 2);
  Alcotest.(check int) "a now holds position 7" a (List.nth pids' 7)

let test_swap_adjacent_leaves () =
  let records = List.init 300 (fun i -> (2 * i, payload (2 * i))) in
  let db = Db.load ~fill:0.5 records in
  let before = contents db in
  let pids = Tree.leaf_pids db.Db.tree in
  let a = List.nth pids 3 and b = List.nth pids 4 in
  Scramble.swap_placement db.Db.tree a b;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Alcotest.(check bool) "contents unchanged" true (contents db = before)

let test_shuffle_property =
  QCheck.Test.make ~name:"shuffle preserves contents+invariants" ~count:15
    QCheck.(make QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let records = List.init 200 (fun i -> (2 * i, payload (2 * i))) in
      let db = Db.load ~fill:0.4 records in
      Scramble.shuffle_leaves db.Db.tree (Util.Rng.create seed);
      Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      contents db = records)

let test_spread_property =
  QCheck.Test.make ~name:"spread preserves contents+invariants" ~count:15
    QCheck.(make QCheck.Gen.(pair (int_bound 1000) (float_range 1.0 3.0)))
    (fun (seed, span) ->
      let records = List.init 200 (fun i -> (2 * i, payload (2 * i))) in
      let db = Db.load ~leaf_pages:2048 ~fill:0.4 records in
      Scramble.spread_leaves db.Db.tree (Util.Rng.create seed) ~span_factor:span;
      Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      contents db = records)

let test_spread_scatters () =
  let records = List.init 400 (fun i -> (2 * i, payload (2 * i))) in
  let db = Db.load ~leaf_pages:2048 ~fill:0.4 records in
  Scramble.spread_leaves db.Db.tree (Util.Rng.create 9) ~span_factor:2.0;
  let lo, _ = Pager.Alloc.leaf_zone db.Db.alloc in
  let pids = Tree.leaf_pids db.Db.tree in
  let ooo = ref 0 in
  List.iteri (fun i pid -> if pid <> lo + i then incr ooo) pids;
  Alcotest.(check bool) "most leaves displaced" true
    (!ooo > List.length pids / 2)

(* ---------------- mix driver ---------------- *)

let test_mix_runs_and_counts () =
  let records = List.init 500 (fun i -> (2 * i, payload (2 * i))) in
  let db = Db.load ~fill:0.8 records in
  let eng = Engine.create () in
  let stats =
    Mix.spawn_users eng ~access:db.Db.access ~seed:1 ~users:4 ~ops_per_user:30 ~key_space:500
      ~mix:{ Mix.read_mostly with range_pct = 0.1 } ()
  in
  Engine.run eng;
  Alcotest.(check int) "all ops accounted" 120
    (stats.Mix.reads + stats.Mix.range_scans + stats.Mix.inserts + stats.Mix.deletes);
  Alcotest.(check int) "committed = ops - aborted" 120
    (stats.Mix.committed + stats.Mix.aborted);
  Alcotest.(check bool) "reads dominate" true (stats.Mix.reads > stats.Mix.inserts);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_mix_stop_predicate () =
  let records = List.init 200 (fun i -> (2 * i, payload (2 * i))) in
  let db = Db.load ~fill:0.8 records in
  let eng = Engine.create () in
  let stop = ref false in
  let stats =
    Mix.spawn_users eng ~access:db.Db.access ~seed:1 ~users:2 ~ops_per_user:1_000_000
      ~key_space:200
      ~stop:(fun () -> !stop)
      ~mix:Mix.read_only ()
  in
  Engine.spawn eng (fun () ->
      Engine.sleep 50;
      stop := true);
  Engine.run eng;
  Alcotest.(check bool) "stopped early" true (stats.Mix.committed < 2_000_000);
  Alcotest.(check bool) "did some work" true (stats.Mix.committed > 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "keygen",
        [
          Alcotest.test_case "bounds" `Quick test_keygen_bounds;
          Alcotest.test_case "sequential" `Quick test_keygen_sequential;
        ] );
      ( "sparse scenarios",
        [
          Alcotest.test_case "uniform thinning" `Quick test_uniform_thinning_fraction;
          Alcotest.test_case "range purge clusters" `Quick test_range_purge_clusters;
          Alcotest.test_case "scenarios apply" `Quick test_scenarios_apply_cleanly;
        ] );
      ( "scramble",
        [
          Alcotest.test_case "swap placement" `Quick test_swap_placement_preserves_everything;
          Alcotest.test_case "swap adjacent" `Quick test_swap_adjacent_leaves;
          Alcotest.test_case "spread scatters" `Quick test_spread_scatters;
          q test_shuffle_property;
          q test_spread_property;
        ] );
      ( "mix",
        [
          Alcotest.test_case "runs and counts" `Quick test_mix_runs_and_counts;
          Alcotest.test_case "stop predicate" `Quick test_mix_stop_predicate;
        ] );
    ]
