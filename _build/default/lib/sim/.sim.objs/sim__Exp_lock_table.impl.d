lib/sim/exp_lock_table.ml: List Lockmgr Printf Util
