lib/sim/db.ml: Btree Lockmgr Pager Printf Transact Wal
