lib/sim/exp_granularity.ml: Baseline Btree Db List Lockmgr Printf Reorg Scenario Sched Util Wal
