lib/sim/exp_recovery.ml: Baseline Btree Db List Reorg Scenario Sched Sim_util Util
