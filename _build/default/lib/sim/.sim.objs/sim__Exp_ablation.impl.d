lib/sim/exp_ablation.ml: Btree Db List Pager Reorg Scenario Sys Transact Util
