lib/sim/exp_range.ml: Btree Db List Pager Printf Scenario Transact Util
