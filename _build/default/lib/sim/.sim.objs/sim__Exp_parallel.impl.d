lib/sim/exp_parallel.ml: Btree Db List Reorg Scenario Sched Util Workload
