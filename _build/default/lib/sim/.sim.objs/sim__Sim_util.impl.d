lib/sim/sim_util.ml: Db List Pager Util
