lib/sim/exp_shrink.ml: Btree Db List Lockmgr Printf Reorg Scenario Sched Transact Util
