lib/sim/db.mli: Btree Lockmgr Pager Transact Wal
