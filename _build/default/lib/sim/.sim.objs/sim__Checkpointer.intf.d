lib/sim/checkpointer.mli: Db Reorg Sched
