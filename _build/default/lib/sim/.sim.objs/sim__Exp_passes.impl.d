lib/sim/exp_passes.ml: Btree Bytes Char Db List Pager Printf Reorg Scenario Sched Util
