lib/sim/exp_concurrency.ml: Baseline Db List Printf Reorg Scenario Sched Util Workload
