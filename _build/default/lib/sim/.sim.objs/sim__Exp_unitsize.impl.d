lib/sim/exp_unitsize.ml: Btree Db List Reorg Scenario Sched Util Workload
