lib/sim/exp_logsize.ml: Btree Db List Reorg Scenario Util
