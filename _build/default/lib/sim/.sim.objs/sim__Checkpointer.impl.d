lib/sim/checkpointer.ml: Db Reorg Sched
