lib/sim/scenario.mli: Db Reorg Workload
