lib/sim/exp_switch.ml: Btree Db List Reorg Scenario Sched Util Workload
