lib/sim/scenario.ml: Btree Db List Reorg Sched Transact Util Workload
