lib/sim/exp_swaps.ml: Btree Db List Printf Reorg Scenario Util
