module Engine = Sched.Engine

let spawn ?ctx eng ~db ~every ~stop =
  Engine.spawn eng (fun () ->
      while not (stop ()) do
        Engine.sleep every;
        if not (stop ()) then
          match ctx with
          | Some ctx -> Reorg.Ctx.checkpoint ctx
          | None -> Db.checkpoint db ()
      done)
