(** Background checkpointer: periodically writes a checkpoint record
    carrying the active-transaction table and — when a reorganization is
    running — the §5 system table, so restart analysis can pick up from the
    most recent checkpoint rather than the log's beginning. *)

val spawn :
  ?ctx:Reorg.Ctx.t -> Sched.Engine.t -> db:Db.t -> every:int -> stop:(unit -> bool) -> unit
(** Spawns a process that checkpoints every [every] ticks until [stop ()]
    is true.  When [ctx] is given, its reorganization table is included. *)
