(* Small shared helpers for experiments and crash tests. *)

(* Flush a seeded random subset of dirty pages before a crash — the
   arbitrary disk states a buffer manager can leave behind.  flush_page
   honours the WAL rule and careful-writing order. *)
let partial_flush db seed =
  let rng = Util.Rng.create seed in
  List.iter
    (fun pid -> if Util.Rng.chance rng 0.5 then Pager.Buffer_pool.flush_page db.Db.pool pid)
    (Pager.Buffer_pool.dirty_pages db.Db.pool)
