(* Experiment T1 — reproduce Table 1, the lock compatibility matrix.

   The implementation's compatibility function is printed in the paper's
   format and every Yes/No cell is checked against the paper's table
   (blank cells are mode pairs that never contend for one resource). *)

module Mode = Lockmgr.Mode

let run () =
  let requested = Mode.all in
  let table =
    Util.Table.create
      ~title:
        "Table 1 — lock compatibility (rows: granted, columns: requested)\n\
         cells: Yes/No as implemented; '.' where the paper leaves the cell blank"
      (("granted", Util.Table.Left)
      :: List.map (fun m -> (Mode.to_string m, Util.Table.Right)) requested)
  in
  let mismatches = ref 0 in
  List.iter
    (fun g ->
      let cells =
        List.map
          (fun r ->
            let impl = Mode.compat g r in
            match Mode.paper_cell ~granted:g ~requested:r with
            | `Blank -> if impl then "(yes)" else "."
            | `Yes ->
              if not impl then incr mismatches;
              if impl then "Yes" else "MISMATCH"
            | `No ->
              if impl then incr mismatches;
              if impl then "MISMATCH" else "No")
          requested
      in
      Util.Table.add_row table (Mode.to_string g :: cells))
    Mode.all;
  Util.Table.add_rule table;
  Util.Table.add_row table
    ([ Printf.sprintf "mismatches vs paper: %d" !mismatches ]
    @ List.map (fun _ -> "") requested);
  (table, !mismatches = 0)
