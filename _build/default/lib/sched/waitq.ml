type t = { mutable waiters : (unit -> unit) list (* FIFO: head = oldest *) }

let create () = { waiters = [] }

let wait t = Engine.suspend (fun resume -> t.waiters <- t.waiters @ [ resume ])

let signal t =
  match t.waiters with
  | [] -> ()
  | resume :: rest ->
    t.waiters <- rest;
    resume ()

let broadcast t =
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun resume -> resume ()) ws

let waiting t = List.length t.waiters
