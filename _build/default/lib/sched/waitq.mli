(** Condition-variable-style wait queue for cooperative processes. *)

type t

val create : unit -> t

val wait : t -> unit
(** Park the calling process until {!signal} or {!broadcast}. *)

val signal : t -> unit
(** Wake the longest-waiting process, if any. *)

val broadcast : t -> unit

val waiting : t -> int
