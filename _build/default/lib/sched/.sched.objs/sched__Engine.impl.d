lib/sched/engine.ml: Effect List Util
