lib/sched/engine.mli:
