lib/sched/waitq.ml: Engine List
