lib/sched/waitq.mli:
