open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Sleep : int -> unit Effect.t
  | Now : int Effect.t
  | Spawn : (string option * (unit -> unit)) -> unit Effect.t

type t = {
  mutable runq : (unit -> unit) list; (* reversed tail for O(1) push *)
  mutable runq_front : (unit -> unit) list;
  mutable timers : (int * (unit -> unit)) list; (* sorted by time *)
  mutable time : int;
  mutable stop : bool;
  mutable live : int;
  rng : Util.Rng.t option;
}

let create ?(seed = 0) ?(random = false) () =
  {
    runq = [];
    runq_front = [];
    timers = [];
    time = 0;
    stop = false;
    live = 0;
    rng = (if random then Some (Util.Rng.create seed) else None);
  }

let enqueue t thunk = t.runq <- thunk :: t.runq

let runq_len t = List.length t.runq + List.length t.runq_front

let pop_fifo t =
  match t.runq_front with
  | x :: rest ->
    t.runq_front <- rest;
    Some x
  | [] -> begin
    match List.rev t.runq with
    | [] -> None
    | x :: rest ->
      t.runq <- [];
      t.runq_front <- rest;
      Some x
  end

let pop_random t rng =
  let n = runq_len t in
  if n = 0 then None
  else begin
    let all = t.runq_front @ List.rev t.runq in
    let i = Util.Rng.int rng n in
    let picked = List.nth all i in
    let rest = List.filteri (fun j _ -> j <> i) all in
    t.runq_front <- rest;
    t.runq <- [];
    Some picked
  end

let pop t = match t.rng with Some rng -> pop_random t rng | None -> pop_fifo t

let add_timer t at thunk =
  let rec insert = function
    | [] -> [ (at, thunk) ]
    | ((a, _) as hd) :: rest when a <= at -> hd :: insert rest
    | rest -> (at, thunk) :: rest
  in
  t.timers <- insert t.timers

let rec exec t fn =
  match_with fn ()
    {
      retc = (fun () -> t.live <- t.live - 1);
      exnc = (fun e -> t.live <- t.live - 1; raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some (fun (k : (a, _) continuation) -> enqueue t (fun () -> continue k ()))
          | Suspend register ->
            Some
              (fun (k : (a, _) continuation) ->
                let resumed = ref false in
                register (fun () ->
                    if !resumed then invalid_arg "Engine: resume called twice";
                    resumed := true;
                    enqueue t (fun () -> continue k ())))
          | Sleep n ->
            Some (fun (k : (a, _) continuation) ->
                add_timer t (t.time + max 1 n) (fun () -> continue k ()))
          | Now -> Some (fun (k : (a, _) continuation) -> continue k t.time)
          | Spawn (name, f) ->
            Some
              (fun (k : (a, _) continuation) ->
                spawn t ?name f;
                continue k ())
          | _ -> None);
    }

and spawn t ?name fn =
  ignore name;
  t.live <- t.live + 1;
  enqueue t (fun () -> exec t fn)

let release_due_timers t =
  let rec go () =
    match t.timers with
    | (at, thunk) :: rest when at <= t.time ->
      t.timers <- rest;
      enqueue t thunk;
      go ()
    | _ -> ()
  in
  go ()

let run t =
  let rec loop () =
    if t.stop then ()
    else begin
      release_due_timers t;
      match pop t with
      | Some thunk ->
        t.time <- t.time + 1;
        thunk ();
        loop ()
      | None -> begin
        (* Idle: jump to the next timer. *)
        match t.timers with
        | [] -> ()
        | (at, _) :: _ ->
          t.time <- max t.time at;
          loop ()
      end
    end
  in
  loop ()

let stop t = t.stop <- true
let stopped t = t.stop
let now t = t.time
let live t = t.live

let yield () = perform Yield
let suspend register = perform (Suspend register)
let sleep n = perform (Sleep n)
let current_time () = perform Now
let spawn_child ?name fn = perform (Spawn (name, fn))
