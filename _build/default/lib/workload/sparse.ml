type scenario = {
  initial : (int * string) list;
  deletes : int list;
  inserts : (int * string) list;
}

let payload k = Printf.sprintf "value-%08d" k

let uniform_thinning ~rng ~n ~survive =
  if survive <= 0.0 || survive > 1.0 then invalid_arg "Sparse.uniform_thinning";
  let keys = List.init n (fun i -> 2 * i) in
  let initial = List.map (fun k -> (k, payload k)) keys in
  let deletes = List.filter (fun _ -> not (Util.Rng.chance rng survive)) keys in
  { initial; deletes; inserts = [] }

let range_purge ~rng ~n ~ranges ~width =
  let keys = List.init n (fun i -> 2 * i) in
  let initial = List.map (fun k -> (k, payload k)) keys in
  let span = 2 * n in
  let w = int_of_float (width *. float_of_int span) in
  let starts = List.init ranges (fun _ -> Util.Rng.int rng (max 1 (span - w))) in
  let in_purged k = List.exists (fun s -> k >= s && k < s + w) starts in
  { initial; deletes = List.filter in_purged keys; inserts = [] }

let churn ~rng ~n ~rounds ?(delete_frac = 0.3) ?(insert_frac = 0.25) () =
  let keys = List.init n (fun i -> 4 * i) in
  let initial = List.map (fun k -> (k, payload k)) keys in
  let live = Hashtbl.create n in
  List.iter (fun k -> Hashtbl.replace live k ()) keys;
  let deletes = ref [] and inserts = ref [] in
  let fresh = ref 1 in
  for _ = 1 to rounds do
    (* Delete a random batch... *)
    Hashtbl.iter
      (fun k () -> if Util.Rng.chance rng delete_frac then deletes := k :: !deletes)
      (Hashtbl.copy live);
    List.iter (fun k -> Hashtbl.remove live k) !deletes;
    (* ...then insert fresh odd keys that force splits in random places. *)
    for _ = 1 to int_of_float (insert_frac *. float_of_int n) do
      let k = (4 * Util.Rng.int rng n) + (2 * (!fresh mod 2)) + 1 in
      incr fresh;
      if not (Hashtbl.mem live k) then begin
        Hashtbl.replace live k ();
        inserts := (k, payload k) :: !inserts
      end
    done
  done;
  { initial; deletes = List.rev !deletes; inserts = List.rev !inserts }
