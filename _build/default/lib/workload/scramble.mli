(** Disk-order scrambling: simulate an aged file.

    Years of splits leave a real B+-tree's leaves in nearly random disk
    order.  Rather than replaying years of history, {!shuffle_leaves}
    permutes the physical placement of the existing leaves directly (page
    contents, side pointers and parent entries all follow), producing the
    "leaf pages within a key range are not in contiguous disk space"
    degradation of §1 in one step.

    Must be called quiescently (no concurrent transactions); the moves are
    logged as ordinary physical records. *)

val shuffle_leaves : Btree.Tree.t -> Util.Rng.t -> unit
(** Random permutation of all leaf placements. *)

val spread_leaves : Btree.Tree.t -> Util.Rng.t -> span_factor:float -> unit
(** Scatter the leaves over random positions in the first
    [span_factor * leaf_count] slots of the leaf zone, leaving free pages
    interleaved with them — the placement profile of a file aged by splits
    and free-at-empty deletions.  [span_factor >= 1.0]. *)

val swap_placement : Btree.Tree.t -> int -> int -> unit
(** Exchange the physical placement of two leaves (exposed for tests). *)

val move_placement : Btree.Tree.t -> org:int -> dest:int -> unit
(** Relocate one leaf to a free page. *)
