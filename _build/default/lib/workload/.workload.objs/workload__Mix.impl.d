lib/workload/mix.ml: Btree Sched Sparse Transact Util
