lib/workload/keygen.mli: Util
