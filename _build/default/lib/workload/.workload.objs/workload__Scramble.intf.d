lib/workload/scramble.mli: Btree Util
