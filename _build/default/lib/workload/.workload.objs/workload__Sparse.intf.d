lib/workload/sparse.mli: Util
