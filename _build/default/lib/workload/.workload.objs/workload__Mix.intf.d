lib/workload/mix.mli: Btree Sched
