lib/workload/scramble.ml: Array Btree Hashtbl List Pager Transact Util
