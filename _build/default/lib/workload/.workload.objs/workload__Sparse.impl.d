lib/workload/sparse.ml: Hashtbl List Printf Util
