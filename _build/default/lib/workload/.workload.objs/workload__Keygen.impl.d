lib/workload/keygen.ml: Util
