(** Sparseness generators: the §2 scenario — a tree degraded by insertions
    (page splits scatter leaves) and deletions (free-at-empty leaves sparse
    pages behind).

    Each generator returns the record set to bulk-load plus the keys to
    delete afterwards through normal transactions, so the resulting tree has
    realistic fragmentation (split chains, out-of-order leaf placement,
    deallocated holes). *)

type scenario = {
  initial : (int * string) list;  (** sorted records to bulk-load *)
  deletes : int list;  (** keys to delete, in order *)
  inserts : (int * string) list;  (** keys to insert afterwards, in order *)
}

val uniform_thinning : rng:Util.Rng.t -> n:int -> survive:float -> scenario
(** Load keys [0, 2n) at even spacing and delete a random subset so that a
    [survive] fraction remains — uniform sparseness, the paper's base case. *)

val range_purge : rng:Util.Rng.t -> n:int -> ranges:int -> width:float -> scenario
(** Delete [ranges] contiguous key ranges each covering [width] of the key
    space — models retention purges; leaves behind fully empty (freed) and
    half-empty pages. *)

val churn :
  rng:Util.Rng.t -> n:int -> rounds:int -> ?delete_frac:float -> ?insert_frac:float -> unit -> scenario
(** Load, then alternate random deletes ([delete_frac] of the live keys per
    round, default 0.3) with random inserts of fresh keys ([insert_frac] of
    [n] per round, default 0.25): splits scatter the leaves out of disk order
    {e and} leave them sparse. *)

val payload : int -> string
