type t =
  | Uniform of { n : int }
  | Zipf of { n : int; theta : float }
  | Sequential of { start : int }
  | Clustered of { n : int; cluster : int }

type counter = { mutable v : int }

let counter ~start = { v = start }

let next_seq c =
  let v = c.v in
  c.v <- v + 1;
  v

let next rng = function
  | Uniform { n } -> Util.Rng.int rng n
  | Zipf { n; theta } -> Util.Rng.zipf rng ~n ~theta
  | Sequential { start } -> start
  | Clustered { n; cluster } ->
    let c = Util.Rng.int rng (max 1 (n / cluster)) in
    (c * cluster) + Util.Rng.int rng cluster
