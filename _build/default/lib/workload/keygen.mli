(** Key generators for workloads. *)

type t =
  | Uniform of { n : int }  (** uniform over [0, n) *)
  | Zipf of { n : int; theta : float }
  | Sequential of { start : int }  (** monotonically increasing *)
  | Clustered of { n : int; cluster : int }
      (** picks a cluster of [cluster] consecutive keys, then a key within —
          models hot ranges *)

val next : Util.Rng.t -> t -> int
(** Draw a key.  [Sequential] mutates no state: combine with {!counter}. *)

type counter

val counter : start:int -> counter
val next_seq : counter -> int
