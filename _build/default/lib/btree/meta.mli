(** The meta page — the "special place on the disk" (§7.4) holding the
    location of the root, the tree's lock name, and the reorganization bit
    that updaters test before touching base pages (§7.2). *)

val init : Pager.Page.t -> root:int -> tree_name:int -> unit

val is_meta : Pager.Page.t -> bool

val root : Pager.Page.t -> int
val set_root : Pager.Page.t -> int -> unit

val tree_name : Pager.Page.t -> int
val set_tree_name : Pager.Page.t -> int -> unit

val reorg_bit : Pager.Page.t -> bool
val set_reorg_bit : Pager.Page.t -> bool -> unit

val generation : Pager.Page.t -> int
(** Generation of the current upper levels (see {!Layout.off_generation}). *)

val set_generation : Pager.Page.t -> int -> unit
