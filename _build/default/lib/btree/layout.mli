(** Shared byte-layout constants for B+-tree pages.

    All pages start with the pager header ({!Pager.Page.header_size} bytes:
    kind, LSN).  The tree adds, for every node kind:

    {v
      9        level      (u8; 0 = leaf)
      10..11   nslots / nentries (u16)
      12..13   heap_top   (u16; leaf pages only)
      14..21   low mark   (i64; smallest key the page was created to cover)
      22..25   prev       (u32; leaf side pointer, nil_pid = none)
      26..29   next       (u32; leaf side pointer)
      30..31   reserved
      32..     slot directory (leaf) / entry array (internal)
    v} *)

val kind_leaf : int
val kind_internal : int
val kind_meta : int

val off_level : int
val off_count : int
val off_heap_top : int
val off_low_mark : int
val off_prev : int
val off_next : int
val off_generation : int
(** u16 at offset 30: build generation of internal pages — pass 3 tags the
    pages of the new upper levels with a fresh generation so recovery can
    tell them from the old tree's. *)

val body_start : int
(** = 32; first byte of the slot directory / entry array. *)

val nil_pid : int
(** Sentinel page id meaning "none" (0xFFFFFFFF). *)

val entry_size : int
(** Internal-node entry: key (i64) + child (u32) = 12 bytes. *)

val record_header : int
(** Leaf record header: key (i64) + payload length (u16) = 10 bytes. *)

val usable_bytes : page_size:int -> int
(** Bytes available to slots + records on a leaf ([page_size - body_start]). *)
