(** Structural-invariant checker used by tests and crash experiments.

    {!check} walks the whole tree and verifies:
    - node kinds and levels are consistent (leaves at level 0, a level-[n]
      internal node has level-[n-1] children);
    - entry keys are strictly sorted and every parent entry key equals its
      child's low mark;
    - every key in a child's subtree is [>=] its entry key and [<] the next
      entry key;
    - the leaf side-pointer chain visits exactly the leaves reachable from
      the root, in key order, with consistent back pointers;
    - no reachable page is marked free, and (when [alloc] is given) no
      reachable page is in a free set;
    - record keys within each leaf are strictly sorted.

    Raises [Violation] with a description on the first failure. *)

exception Violation of string

val check : ?alloc:Pager.Alloc.t -> Tree.t -> unit

val check_consistent_with :
  Tree.t -> expected:(int * string) list -> unit
(** Verify the tree's contents equal [expected] (sorted by key) — used by
    model-based tests and crash-recovery equivalence checks. *)

val contents : Tree.t -> (int * string) list
(** All records in key order via the leaf chain. *)
