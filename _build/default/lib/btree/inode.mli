(** Raw (unlogged) operations on internal ("index") pages.

    This B+-tree variant is the paper's: an internal node with [n] keys has
    [n] children, each entry being [(low key of child subtree, child page)].
    Entries are fixed-size (12 bytes) and kept sorted by key.  Search
    descends to the child with the {e greatest key <= search key}.  Base
    pages — internal pages at level 1 — carry the "low mark" the pass-3
    scan cursor (CK) is expressed in. *)

type entry = { key : int; child : int }

val init : Pager.Page.t -> level:int -> low_mark:int -> unit

val is_internal : Pager.Page.t -> bool
val level : Pager.Page.t -> int

val nentries : Pager.Page.t -> int
val capacity : Pager.Page.t -> int
val low_mark : Pager.Page.t -> int
val set_low_mark : Pager.Page.t -> int -> unit

val generation : Pager.Page.t -> int
val set_generation : Pager.Page.t -> int -> unit

val entry_at : Pager.Page.t -> int -> entry
val entries : Pager.Page.t -> entry list
val fill_factor : Pager.Page.t -> float

val child_for : Pager.Page.t -> int -> entry
(** Entry whose subtree covers the key (greatest entry key <= key; the first
    entry if the key precedes all of them).  Raises [Not_found] on an empty
    node. *)

val child_index_for : Pager.Page.t -> int -> int

val find_child : Pager.Page.t -> int -> int option
(** Index of the entry pointing at a given child page. *)

val find_key : Pager.Page.t -> int -> int option
(** Index of the entry with exactly this key. *)

val insert : Pager.Page.t -> entry -> bool
(** Sorted insert; [false] when full.  Raises [Invalid_argument] on a
    duplicate key. *)

val delete_key : Pager.Page.t -> int -> entry option
(** Remove the entry with exactly this key. *)

val delete_at : Pager.Page.t -> int -> unit

val update_at : Pager.Page.t -> int -> entry -> unit

val split_point : Pager.Page.t -> int
val take_from : Pager.Page.t -> int -> entry list

val next_entry_key : Pager.Page.t -> int -> int option
(** Smallest entry key strictly greater than the argument (Get_Next within
    one page). *)
