let kind_leaf = 1
let kind_internal = 2
let kind_meta = 3

let off_level = 9
let off_count = 10
let off_heap_top = 12
let off_low_mark = 14
let off_prev = 22
let off_next = 26
let off_generation = 30
let body_start = 32

let nil_pid = 0xFFFFFFFF

let entry_size = 12
let record_header = 10

let usable_bytes ~page_size = page_size - body_start
