module Page = Pager.Page

type entry = { key : int; child : int }

let page_size p = Bytes.length p

let init p ~level ~low_mark =
  Page.fill p 0 (page_size p) '\000';
  Page.set_kind p Layout.kind_internal;
  Page.set_u8 p Layout.off_level level;
  Page.set_u16 p Layout.off_count 0;
  Page.set_key p Layout.off_low_mark low_mark;
  Page.set_u32 p Layout.off_prev Layout.nil_pid;
  Page.set_u32 p Layout.off_next Layout.nil_pid

let is_internal p = Page.kind p = Layout.kind_internal
let level p = Page.get_u8 p Layout.off_level

let nentries p = Page.get_u16 p Layout.off_count

let capacity p = (page_size p - Layout.body_start) / Layout.entry_size

let low_mark p = Page.get_key p Layout.off_low_mark
let set_low_mark p k = Page.set_key p Layout.off_low_mark k

let generation p = Page.get_u16 p Layout.off_generation
let set_generation p g = Page.set_u16 p Layout.off_generation g

let entry_off i = Layout.body_start + (i * Layout.entry_size)

let entry_at p i =
  let off = entry_off i in
  { key = Page.get_key p off; child = Page.get_u32 p (off + 8) }

let set_entry p i e =
  let off = entry_off i in
  Page.set_key p off e.key;
  Page.set_u32 p (off + 8) e.child

let entries p = List.init (nentries p) (entry_at p)

let fill_factor p = float_of_int (nentries p) /. float_of_int (capacity p)

(* First index with key >= k. *)
let lower_bound p k =
  let n = nentries p in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if (entry_at p mid).key < k then go (mid + 1) hi else go lo mid
  in
  go 0 n

let child_index_for p k =
  let n = nentries p in
  if n = 0 then raise Not_found;
  let i = lower_bound p k in
  if i < n && (entry_at p i).key = k then i else max 0 (i - 1)

let child_for p k = entry_at p (child_index_for p k)

let find_child p child =
  let n = nentries p in
  let rec go i = if i >= n then None else if (entry_at p i).child = child then Some i else go (i + 1) in
  go 0

let find_key p k =
  let i = lower_bound p k in
  if i < nentries p && (entry_at p i).key = k then Some i else None

let insert p e =
  let n = nentries p in
  if n >= capacity p then false
  else begin
    let i = lower_bound p e.key in
    if i < n && (entry_at p i).key = e.key then
      invalid_arg (Printf.sprintf "Inode.insert: duplicate key %d" e.key);
    for j = n downto i + 1 do
      set_entry p j (entry_at p (j - 1))
    done;
    set_entry p i e;
    Page.set_u16 p Layout.off_count (n + 1);
    true
  end

let delete_at p i =
  let n = nentries p in
  for j = i to n - 2 do
    set_entry p j (entry_at p (j + 1))
  done;
  Page.set_u16 p Layout.off_count (n - 1)

let delete_key p k =
  match find_key p k with
  | None -> None
  | Some i ->
    let e = entry_at p i in
    delete_at p i;
    Some e

let update_at p i e =
  if i < 0 || i >= nentries p then invalid_arg "Inode.update_at";
  (* The directory must stay sorted. *)
  if (i > 0 && (entry_at p (i - 1)).key >= e.key)
     || (i < nentries p - 1 && (entry_at p (i + 1)).key <= e.key)
  then invalid_arg "Inode.update_at: would break key order";
  set_entry p i e

let split_point p = nentries p / 2

let take_from p i =
  let n = nentries p in
  let moved = List.init (n - i) (fun j -> entry_at p (i + j)) in
  Page.set_u16 p Layout.off_count i;
  moved

let next_entry_key p k =
  let n = nentries p in
  let i = lower_bound p (k + 1) in
  if i < n then Some (entry_at p i).key else None
