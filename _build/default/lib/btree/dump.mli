(** Human-readable dumps of pages and trees — the debugging lens behind
    [reorg-cli inspect --verbose]. *)

val page : Pager.Page.t -> pid:int -> string
(** One page: kind, level, LSN, low mark, side pointers, fill, and (for
    leaves) the key range; internal nodes list their entries. *)

val tree : Tree.t -> string
(** The whole tree, indented by level, leaves abbreviated to key ranges. *)

val leaf_chain : Tree.t -> string
(** The side-pointer chain: one line per leaf with pid, key span, fill. *)

val log_tail : Wal.Log.t -> n:int -> string
(** The last [n] stable log records, pretty-printed. *)
