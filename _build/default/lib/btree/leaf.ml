module Page = Pager.Page

type record = { key : int; payload : string }

let page_size p = Bytes.length p

let init p ~low_mark =
  Page.fill p 0 (page_size p) '\000';
  Page.set_kind p Layout.kind_leaf;
  Page.set_u8 p Layout.off_level 0;
  Page.set_u16 p Layout.off_count 0;
  Page.set_u16 p Layout.off_heap_top (page_size p);
  Page.set_key p Layout.off_low_mark low_mark;
  Page.set_u32 p Layout.off_prev Layout.nil_pid;
  Page.set_u32 p Layout.off_next Layout.nil_pid

let is_leaf p = Page.kind p = Layout.kind_leaf

let nrecords p = Page.get_u16 p Layout.off_count
let low_mark p = Page.get_key p Layout.off_low_mark
let set_low_mark p k = Page.set_key p Layout.off_low_mark k

let opt_pid v = if v = Layout.nil_pid then None else Some v
let pid_opt = function None -> Layout.nil_pid | Some v -> v

let prev p = opt_pid (Page.get_u32 p Layout.off_prev)
let next p = opt_pid (Page.get_u32 p Layout.off_next)
let set_prev p v = Page.set_u32 p Layout.off_prev (pid_opt v)
let set_next p v = Page.set_u32 p Layout.off_next (pid_opt v)

let heap_top p = Page.get_u16 p Layout.off_heap_top
let set_heap_top p v = Page.set_u16 p Layout.off_heap_top v

let slot_off i = Layout.body_start + (2 * i)
let slot p i = Page.get_u16 p (slot_off i)
let set_slot p i v = Page.set_u16 p (slot_off i) v

let key_at p i = Page.get_key p (slot p i)

let payload_at p i =
  let off = slot p i in
  let len = Page.get_u16 p (off + 8) in
  Page.sub p (off + 10) len

let record_at p i = { key = key_at p i; payload = payload_at p i }

let record_size_at p i =
  let off = slot p i in
  Layout.record_header + Page.get_u16 p (off + 8)

(* Binary search: index of the first slot with key >= k, in [0, n]. *)
let lower_bound p k =
  let n = nrecords p in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if key_at p mid < k then go (mid + 1) hi else go lo mid
  in
  go 0 n

let index_of p k =
  let i = lower_bound p k in
  if i < nrecords p && key_at p i = k then Some i else None

let find p k = Option.map (payload_at p) (index_of p k)
let mem p k = index_of p k <> None

let min_key p = if nrecords p = 0 then None else Some (key_at p 0)
let max_key p = if nrecords p = 0 then None else Some (key_at p (nrecords p - 1))

let records p = List.init (nrecords p) (record_at p)
let keys p = List.init (nrecords p) (key_at p)

let record_bytes r = Layout.record_header + String.length r.payload + 2

let live_bytes p =
  let n = nrecords p in
  let total = ref (2 * n) in
  for i = 0 to n - 1 do
    total := !total + record_size_at p i
  done;
  !total

let usable p = Layout.usable_bytes ~page_size:(page_size p)

let free_bytes p = usable p - live_bytes p

let contiguous_free_bytes p = heap_top p - slot_off (nrecords p)

let fill_factor p = float_of_int (live_bytes p) /. float_of_int (usable p)

let fits p r = free_bytes p >= record_bytes r

let compact p =
  let rs = List.init (nrecords p) (fun i -> (i, record_at p i)) in
  let top = ref (page_size p) in
  (* Write records back tightly from the end; slots keep their order. *)
  List.iter
    (fun (i, r) ->
      let size = Layout.record_header + String.length r.payload in
      top := !top - size;
      Page.set_key p !top r.key;
      Page.set_u16 p (!top + 8) (String.length r.payload);
      Bytes.blit_string r.payload 0 p (!top + 10) (String.length r.payload);
      set_slot p i !top)
    rs;
  set_heap_top p !top

let write_record p r =
  let size = Layout.record_header + String.length r.payload in
  let top = heap_top p - size in
  Page.set_key p top r.key;
  Page.set_u16 p (top + 8) (String.length r.payload);
  Bytes.blit_string r.payload 0 p (top + 10) (String.length r.payload);
  set_heap_top p top;
  top

let insert_at p i r =
  (* Shift slots [i, n) up by one and write the record. *)
  let n = nrecords p in
  let off = write_record p r in
  for j = n downto i + 1 do
    set_slot p j (slot p (j - 1))
  done;
  set_slot p i off;
  Page.set_u16 p Layout.off_count (n + 1)

let insert p r =
  let i = lower_bound p r.key in
  if i < nrecords p && key_at p i = r.key then
    invalid_arg (Printf.sprintf "Leaf.insert: duplicate key %d" r.key);
  if free_bytes p < record_bytes r then false
  else begin
    if contiguous_free_bytes p < record_bytes r then compact p;
    insert_at p (lower_bound p r.key) r;
    true
  end

let delete_at p i =
  let n = nrecords p in
  for j = i to n - 2 do
    set_slot p j (slot p (j + 1))
  done;
  Page.set_u16 p Layout.off_count (n - 1);
  if n - 1 = 0 then set_heap_top p (page_size p)

let delete p k =
  match index_of p k with
  | None -> None
  | Some i ->
    let payload = payload_at p i in
    delete_at p i;
    Some payload

let replace p r =
  (match index_of p r.key with Some i -> delete_at p i | None -> ());
  if free_bytes p < record_bytes r then false
  else begin
    if contiguous_free_bytes p < record_bytes r then compact p;
    insert_at p (lower_bound p r.key) r;
    true
  end

let split_point p =
  let n = nrecords p in
  let half = live_bytes p / 2 in
  let rec go i acc = if i >= n - 1 then i else
      let acc = acc + record_size_at p i + 2 in
      if acc >= half then i + 1 else go (i + 1) acc
  in
  max 1 (go 0 0)

let take_from p i =
  let n = nrecords p in
  let moved = List.init (n - i) (fun j -> record_at p (i + j)) in
  Page.set_u16 p Layout.off_count i;
  if i = 0 then set_heap_top p (page_size p) else compact p;
  moved

let clear p =
  Page.set_u16 p Layout.off_count 0;
  set_heap_top p (page_size p)
