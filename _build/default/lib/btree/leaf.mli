(** Raw (unlogged) operations on leaf pages.

    A leaf is a slotted page: a slot directory of u16 record offsets grows up
    from {!Layout.body_start}, records grow down from the end of the page.
    Slots are kept sorted by key, so lookups binary-search the directory.
    Deletion leaves heap holes; {!compact} rebuilds the heap and insertion
    compacts automatically when fragmentation alone is the obstacle.

    These functions mutate page bytes only — logging, LSN stamping and
    dirty-marking are the caller's job (see {!Transact.Journal}). *)

type record = { key : int; payload : string }

val init : Pager.Page.t -> low_mark:int -> unit
(** Format a page as an empty leaf. *)

val is_leaf : Pager.Page.t -> bool

val nrecords : Pager.Page.t -> int
val low_mark : Pager.Page.t -> int
val set_low_mark : Pager.Page.t -> int -> unit
val prev : Pager.Page.t -> int option
val next : Pager.Page.t -> int option
val set_prev : Pager.Page.t -> int option -> unit
val set_next : Pager.Page.t -> int option -> unit

val find : Pager.Page.t -> int -> string option
(** Payload for an exact key. *)

val mem : Pager.Page.t -> int -> bool

val min_key : Pager.Page.t -> int option
val max_key : Pager.Page.t -> int option

val records : Pager.Page.t -> record list
(** All records in key order. *)

val keys : Pager.Page.t -> int list

val record_bytes : record -> int
(** On-page footprint of a record including its slot. *)

val live_bytes : Pager.Page.t -> int
(** Bytes occupied by live records and their slots. *)

val free_bytes : Pager.Page.t -> int
(** Bytes available for new records after compaction. *)

val contiguous_free_bytes : Pager.Page.t -> int
(** Bytes available without compaction. *)

val fill_factor : Pager.Page.t -> float
(** [live_bytes / usable_bytes]. *)

val fits : Pager.Page.t -> record -> bool

val insert : Pager.Page.t -> record -> bool
(** Sorted insert; [false] if the record does not fit even after compaction.
    Raises [Invalid_argument] if the key is already present. *)

val replace : Pager.Page.t -> record -> bool
(** Insert or overwrite. *)

val delete : Pager.Page.t -> int -> string option
(** Remove a key, returning its payload. *)

val compact : Pager.Page.t -> unit
(** Rewrite the heap to squeeze out holes. *)

val split_point : Pager.Page.t -> int
(** Index such that moving slots [>= index] to a new page halves the live
    bytes. *)

val take_from : Pager.Page.t -> int -> record list
(** Remove and return the records at slot index [>= i] (used by page
    splits). *)

val clear : Pager.Page.t -> unit
(** Remove all records (the page stays a formatted leaf). *)
