type position =
  | At of { leaf : int; index : int }
  | End
  | Start (* before the first record *)

type t = { tree : Tree.t; mutable pos : position }

let page t pid = Tree.page t.tree pid

let normalize t = function
  | At { leaf; index } ->
    let p = page t leaf in
    if index < Leaf.nrecords p then At { leaf; index }
    else begin
      (* Walk to the next non-empty leaf. *)
      let rec forward pid =
        match Leaf.next (page t pid) with
        | None -> End
        | Some nxt -> if Leaf.nrecords (page t nxt) > 0 then At { leaf = nxt; index = 0 } else forward nxt
      in
      forward leaf
    end
  | other -> other

let seek tree k =
  let t = { tree; pos = End } in
  let leaf = Tree.find_leaf tree k in
  let p = Tree.page tree leaf in
  (* First slot with key >= k within the leaf, else the next leaf. *)
  let rec find i = function
    | [] -> i
    | key :: rest -> if key >= k then i else find (i + 1) rest
  in
  let index = find 0 (Leaf.keys p) in
  t.pos <- normalize t (At { leaf; index });
  t

let first tree =
  let t = { tree; pos = End } in
  t.pos <- normalize t (At { leaf = Tree.first_leaf tree; index = 0 });
  t

let last tree =
  let t = { tree; pos = End } in
  (* Walk the chain to the last non-empty leaf. *)
  let rec go pid best =
    let p = Tree.page tree pid in
    let best = if Leaf.nrecords p > 0 then Some pid else best in
    match Leaf.next p with None -> best | Some nxt -> go nxt best
  in
  (match go (Tree.first_leaf tree) None with
  | Some leaf -> t.pos <- At { leaf; index = Leaf.nrecords (Tree.page tree leaf) - 1 }
  | None -> t.pos <- End);
  t

let at_end t = t.pos = End
let at_start t = t.pos = Start

let current t =
  match t.pos with
  | End | Start -> None
  | At { leaf; index } ->
    let p = page t leaf in
    if index < Leaf.nrecords p then Some (List.nth (Leaf.records p) index) else None

let key t = Option.map (fun r -> r.Leaf.key) (current t)
let payload t = Option.map (fun r -> r.Leaf.payload) (current t)

let next t =
  match t.pos with
  | End -> ()
  | Start -> t.pos <- (first t.tree).pos
  | At { leaf; index } -> t.pos <- normalize t (At { leaf; index = index + 1 })

let prev t =
  match t.pos with
  | Start -> ()
  | End -> t.pos <- (last t.tree).pos
  | At { leaf; index } ->
    if index > 0 then t.pos <- At { leaf; index = index - 1 }
    else begin
      let rec backward pid =
        match Leaf.prev (page t pid) with
        | None -> Start
        | Some pv ->
          let n = Leaf.nrecords (page t pv) in
          if n > 0 then At { leaf = pv; index = n - 1 } else backward pv
      in
      t.pos <- backward leaf
    end

let fold_forward tree ~lo ~hi ~init ~f =
  let c = seek tree lo in
  let rec go acc =
    match current c with
    | Some r when r.Leaf.key <= hi ->
      next c;
      go (f acc r)
    | _ -> acc
  in
  go init

let count tree ~lo ~hi = fold_forward tree ~lo ~hi ~init:0 ~f:(fun n _ -> n + 1)
