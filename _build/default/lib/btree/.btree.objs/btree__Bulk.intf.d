lib/btree/bulk.mli: Pager Transact Tree
