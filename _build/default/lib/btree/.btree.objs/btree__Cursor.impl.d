lib/btree/cursor.ml: Leaf List Option Tree
