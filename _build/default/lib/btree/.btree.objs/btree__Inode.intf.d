lib/btree/inode.mli: Pager
