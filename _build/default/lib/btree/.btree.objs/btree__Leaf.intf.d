lib/btree/leaf.mli: Pager
