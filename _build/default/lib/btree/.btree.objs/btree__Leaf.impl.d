lib/btree/leaf.ml: Bytes Layout List Option Pager Printf String
