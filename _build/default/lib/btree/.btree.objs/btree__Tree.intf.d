lib/btree/tree.mli: Leaf Pager Transact Wal
