lib/btree/access.mli: Leaf Lockmgr Transact Tree Wal
