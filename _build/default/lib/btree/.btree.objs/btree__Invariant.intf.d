lib/btree/invariant.mli: Pager Tree
