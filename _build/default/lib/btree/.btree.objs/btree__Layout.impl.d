lib/btree/layout.ml:
