lib/btree/access.ml: Inode Leaf List Lockmgr Sched Transact Tree Wal
