lib/btree/dump.ml: Buffer Format Inode Leaf List Meta Pager Printf String Tree Wal
