lib/btree/tree.ml: Inode Layout Leaf List Meta Pager String Transact Wal
