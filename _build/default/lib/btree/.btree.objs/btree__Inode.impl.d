lib/btree/inode.ml: Bytes Layout List Pager Printf
