lib/btree/meta.ml: Bytes Layout Pager
