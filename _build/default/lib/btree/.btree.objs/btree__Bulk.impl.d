lib/btree/bulk.ml: Inode Layout Leaf List Meta Pager Transact Tree
