lib/btree/cursor.mli: Leaf Tree
