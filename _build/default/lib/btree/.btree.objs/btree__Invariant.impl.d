lib/btree/invariant.ml: Inode Leaf List Pager Printf String Tree
