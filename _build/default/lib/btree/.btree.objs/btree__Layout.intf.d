lib/btree/layout.mli:
