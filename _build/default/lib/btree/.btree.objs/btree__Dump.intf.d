lib/btree/dump.mli: Pager Tree Wal
