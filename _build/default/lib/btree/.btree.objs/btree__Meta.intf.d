lib/btree/meta.mli: Pager
