module Page = Pager.Page

exception Violation of string

let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt

let check ?alloc t =
  let page = Tree.page t in
  let reachable_leaves = ref [] in
  (* Walk down from the root checking per-node and parent/child invariants.
     [lo] is the inclusive lower bound for keys in this subtree, [hi] the
     exclusive upper bound (None = unbounded). *)
  let rec walk pid ~expect_level ~lo ~hi =
    let p = page pid in
    if Page.kind p = Page.kind_free then fail "page %d reachable but marked free" pid;
    (match alloc with
    | Some a when Pager.Alloc.is_free a pid -> fail "page %d reachable but in free set" pid
    | _ -> ());
    if Leaf.is_leaf p then begin
      (match expect_level with
      | Some l when l <> 0 -> fail "page %d: expected level %d, found leaf" pid l
      | _ -> ());
      if Leaf.low_mark p < lo then fail "leaf %d: low mark %d below bound %d" pid (Leaf.low_mark p) lo;
      let keys = Leaf.keys p in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          if a >= b then fail "leaf %d: keys not strictly sorted (%d >= %d)" pid a b;
          sorted rest
        | _ -> ()
      in
      sorted keys;
      List.iter
        (fun k ->
          if k < lo then fail "leaf %d: key %d below bound %d" pid k lo;
          match hi with
          | Some h when k >= h -> fail "leaf %d: key %d above bound %d" pid k h
          | _ -> ())
        keys;
      reachable_leaves := pid :: !reachable_leaves
    end
    else begin
      if not (Inode.is_internal p) then fail "page %d: unknown kind %d" pid (Page.kind p);
      let level = Inode.level p in
      (match expect_level with
      | Some l when l <> level -> fail "page %d: expected level %d, found %d" pid l level
      | _ -> ());
      let n = Inode.nentries p in
      if n = 0 then fail "internal page %d is empty" pid;
      let entries = Inode.entries p in
      let rec scan i = function
        | [] -> ()
        | e :: rest ->
          let next_key = match rest with e' :: _ -> Some e'.Inode.key | [] -> hi in
          (match rest with
          | e' :: _ when e'.Inode.key <= e.Inode.key ->
            fail "internal %d: entries not strictly sorted" pid
          | _ -> ());
          if e.Inode.key < lo then fail "internal %d: entry key %d below bound %d" pid e.Inode.key lo;
          (match hi with
          | Some h when e.Inode.key >= h ->
            fail "internal %d: entry key %d above bound %d" pid e.Inode.key h
          | _ -> ());
          let child = page e.Inode.child in
          let child_low =
            if Leaf.is_leaf child then Leaf.low_mark child else Inode.low_mark child
          in
          if child_low <> e.Inode.key then
            fail "internal %d: entry key %d <> child %d low mark %d" pid e.Inode.key
              e.Inode.child child_low;
          walk e.Inode.child ~expect_level:(Some (level - 1)) ~lo:e.Inode.key ~hi:next_key;
          scan (i + 1) rest
      in
      scan 0 entries
    end
  in
  walk (Tree.root t) ~expect_level:None ~lo:min_int ~hi:None;
  let reachable = List.rev !reachable_leaves in
  (* Side-pointer chain must visit exactly the reachable leaves in order. *)
  let chain = ref [] in
  let rec follow pid prev_pid =
    let p = page pid in
    if not (Leaf.is_leaf p) then fail "chain reached non-leaf page %d" pid;
    (match (Leaf.prev p, prev_pid) with
    | None, None -> ()
    | Some a, Some b when a = b -> ()
    | got, want ->
      fail "leaf %d: prev pointer %s, expected %s" pid
        (match got with None -> "none" | Some x -> string_of_int x)
        (match want with None -> "none" | Some x -> string_of_int x));
    chain := pid :: !chain;
    match Leaf.next p with None -> () | Some nxt -> follow nxt (Some pid)
  in
  follow (Tree.first_leaf t) None;
  let chain = List.rev !chain in
  if chain <> reachable then
    fail "leaf chain [%s] differs from reachable leaves [%s]"
      (String.concat ";" (List.map string_of_int chain))
      (String.concat ";" (List.map string_of_int reachable));
  (* Keys across the chain must be globally sorted. *)
  let last = ref None in
  List.iter
    (fun pid ->
      List.iter
        (fun k ->
          (match !last with
          | Some l when k <= l -> fail "global key order violated at leaf %d (%d after %d)" pid k l
          | _ -> ());
          last := Some k)
        (Leaf.keys (page pid)))
    chain

let contents t =
  let acc = ref [] in
  Tree.iter_leaves t (fun _ p ->
      List.iter (fun r -> acc := (r.Leaf.key, r.Leaf.payload) :: !acc) (Leaf.records p));
  List.rev !acc

let check_consistent_with t ~expected =
  let got = contents t in
  let expected = List.sort (fun (a, _) (b, _) -> compare a b) expected in
  if got <> expected then begin
    let show l =
      String.concat ","
        (List.map (fun (k, _) -> string_of_int k) l)
    in
    fail "contents mismatch: tree has %d records [%s...], expected %d [%s...]" (List.length got)
      (show (List.filteri (fun i _ -> i < 20) got))
      (List.length expected)
      (show (List.filteri (fun i _ -> i < 20) expected))
  end
