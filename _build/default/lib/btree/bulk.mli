(** Bottom-up bulk build from sorted records ([Sal88] ch. 5 §5).

    Records are packed into fresh leaf pages left to right up to a target
    fill factor, then each upper level is built the same way — exactly the
    construction the paper reuses for pass 3.  Like a CREATE INDEX, the build
    is {e not} logged; {!load} flushes everything and the tree is durable
    when it returns. *)

val load :
  journal:Transact.Journal.t ->
  alloc:Pager.Alloc.t ->
  meta_pid:int ->
  tree_name:int ->
  fill:float ->
  ?internal_fill:float ->
  (int * string) list ->
  Tree.t
(** [load ... ~fill records] builds a tree from records sorted by key
    (raises [Invalid_argument] otherwise).  [fill] in (0, 1] applies to the
    leaves; [internal_fill] (default [fill]) to the levels above. *)

val build_internal_levels :
  journal:Transact.Journal.t ->
  alloc:Pager.Alloc.t ->
  fill:float ->
  ?start_level:int ->
  ?gen:int ->
  ?on_page:(int -> unit) ->
  (int * int) list ->
  int
(** [build_internal_levels ~fill entries] builds the internal levels above a
    list of [(low key, page id)] children and returns the root pid.
    [start_level] (default 1) is the level of the first parent layer —
    pass 3 uses 2 when stacking above already-built base pages.  [gen] tags
    the new pages' generation; [on_page] observes each allocated page (for
    stable-point flushing).  Pages are written through the pool but not
    logged. *)
