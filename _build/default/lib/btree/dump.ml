module Page = Pager.Page

let key_str k =
  if k = min_int then "-inf" else if k = max_int then "+inf" else string_of_int k

let page p ~pid =
  let b = Buffer.create 128 in
  let kind = Page.kind p in
  if kind = Page.kind_free then Printf.bprintf b "page %d: FREE" pid
  else if Leaf.is_leaf p then begin
    Printf.bprintf b "page %d: LEAF lsn=%Ld low=%s records=%d fill=%.0f%% prev=%s next=%s"
      pid (Page.lsn p)
      (key_str (Leaf.low_mark p))
      (Leaf.nrecords p)
      (100.0 *. Leaf.fill_factor p)
      (match Leaf.prev p with None -> "-" | Some q -> string_of_int q)
      (match Leaf.next p with None -> "-" | Some q -> string_of_int q);
    (match (Leaf.min_key p, Leaf.max_key p) with
    | Some lo, Some hi -> Printf.bprintf b " keys=[%d..%d]" lo hi
    | _ -> Buffer.add_string b " (empty)")
  end
  else if Inode.is_internal p then begin
    Printf.bprintf b "page %d: INTERNAL level=%d lsn=%Ld low=%s gen=%d entries=%d/%d:" pid
      (Inode.level p) (Page.lsn p)
      (key_str (Inode.low_mark p))
      (Inode.generation p) (Inode.nentries p) (Inode.capacity p);
    List.iter
      (fun e -> Printf.bprintf b " %s->%d" (key_str e.Inode.key) e.Inode.child)
      (Inode.entries p)
  end
  else if Meta.is_meta p then
    Printf.bprintf b "page %d: META root=%d tree-name=%d reorg-bit=%b gen=%d" pid (Meta.root p)
      (Meta.tree_name p) (Meta.reorg_bit p) (Meta.generation p)
  else Printf.bprintf b "page %d: kind=%d (unknown)" pid kind;
  Buffer.contents b

let tree t =
  let b = Buffer.create 512 in
  Printf.bprintf b "%s\n" (page (Tree.page t (Tree.meta_pid t)) ~pid:(Tree.meta_pid t));
  let rec walk pid depth =
    let p = Tree.page t pid in
    Printf.bprintf b "%s%s\n" (String.make (2 * depth) ' ') (page p ~pid);
    if Inode.is_internal p then
      List.iter (fun e -> walk e.Inode.child (depth + 1)) (Inode.entries p)
  in
  walk (Tree.root t) 0;
  Buffer.contents b

let leaf_chain t =
  let b = Buffer.create 256 in
  Tree.iter_leaves t (fun pid p -> Printf.bprintf b "%s\n" (page p ~pid));
  Buffer.contents b

let log_tail log ~n =
  let b = Buffer.create 256 in
  let upto = Wal.Log.flushed_lsn log in
  let from = max 1 (upto - n + 1) in
  Wal.Log.iter ~from ~upto log (fun lsn body ->
      Printf.bprintf b "%6d  %s\n" lsn (Format.asprintf "%a" Wal.Record.pp body));
  Buffer.contents b
