(** Cursors: ordered traversal over the leaf chain.

    A cursor is positioned on a record (or at the end).  [next]/[prev] walk
    the side-pointer chain, which is exactly what the reorganizer maintains
    across compaction, swaps and moves — the cursor tests double as
    side-pointer integrity tests.

    Cursors are unlocked snapshot-free iterators (they see concurrent
    changes); use {!Access.range_read} for lock-protected scans. *)

type t

val seek : Tree.t -> int -> t
(** Position on the first record with key >= the argument (possibly
    at-end). *)

val first : Tree.t -> t
val last : Tree.t -> t

val at_end : t -> bool

val current : t -> Leaf.record option
(** [None] iff {!at_end}. *)

val key : t -> int option
val payload : t -> string option

val next : t -> unit
(** Advance (no-op at end). *)

val prev : t -> unit
(** Step backwards; at the first record it moves to at-end... use
    {!at_start} to distinguish. *)

val at_start : t -> bool

val fold_forward : Tree.t -> lo:int -> hi:int -> init:'a -> f:('a -> Leaf.record -> 'a) -> 'a
(** Fold records with [lo <= key <= hi] in ascending key order. *)

val count : Tree.t -> lo:int -> hi:int -> int
