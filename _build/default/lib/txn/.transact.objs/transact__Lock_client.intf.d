lib/txn/lock_client.mli: Lockmgr Txn
