lib/txn/journal.ml: Pager String Txn Wal
