lib/txn/txn.mli: Format Wal
