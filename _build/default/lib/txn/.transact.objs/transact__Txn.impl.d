lib/txn/txn.ml: Format Wal
