lib/txn/lock_client.ml: Lockmgr Sched Txn
