lib/txn/txn_mgr.ml: Bytes Hashtbl Journal Lockmgr Pager String Txn Wal
