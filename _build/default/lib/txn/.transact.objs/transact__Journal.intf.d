lib/txn/journal.mli: Pager Txn Wal
