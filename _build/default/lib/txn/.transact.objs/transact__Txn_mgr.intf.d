lib/txn/txn_mgr.mli: Journal Lockmgr Txn Wal
