(** Blocking lock acquisition for cooperative processes.

    Wraps the scheduler-agnostic {!Lockmgr.Lock_mgr} into calls that park the
    calling process until granted.  Blocked time (in scheduler ticks) is
    charged to the requesting {!Txn.t}, which is how the concurrency
    experiments measure user-transaction delay. *)

exception Deadlock_victim
(** Raised out of a blocking call when the lock manager chose this owner as
    the deadlock victim. *)

val acquire : Lockmgr.Lock_mgr.t -> txn:Txn.t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> unit
(** Acquire, blocking if necessary.  Raises {!Deadlock_victim}. *)

val try_acquire :
  Lockmgr.Lock_mgr.t -> txn:Txn.t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> Lockmgr.Lock_mgr.outcome
(** Non-blocking; conflict information lets protocols inspect the blocker's
    mode (the RX give-up rule needs this). *)

val wait_queued : Lockmgr.Lock_mgr.t -> txn:Txn.t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> unit
(** Queue behind the conflict just observed and block until granted (the
    ordinary "wait for the lock" path after a [`Conflict]). *)

val instant : Lockmgr.Lock_mgr.t -> txn:Txn.t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> unit
(** Unconditional instant-duration request (the paper's RS, and the instant
    IX on the side file during switch): block until the mode is grantable,
    then return {e without} holding the lock. *)

val release : Lockmgr.Lock_mgr.t -> txn:Txn.t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> unit
val release_all : Lockmgr.Lock_mgr.t -> txn:Txn.t -> unit
