type t = bytes

let header_size = 9
let kind_free = 0

let create ~size =
  if size < 64 then invalid_arg "Page.create: size too small";
  Bytes.make size '\000'

let get_u8 p off = Char.code (Bytes.get p off)
let set_u8 p off v = Bytes.set p off (Char.chr (v land 0xFF))

let get_u16 p off = Bytes.get_uint16_be p off
let set_u16 p off v = Bytes.set_uint16_be p off v

let get_u32 p off = Int32.to_int (Bytes.get_int32_be p off) land 0xFFFFFFFF
let set_u32 p off v = Bytes.set_int32_be p off (Int32.of_int v)

let get_i64 p off = Bytes.get_int64_be p off
let set_i64 p off v = Bytes.set_int64_be p off v

let get_key p off = Int64.to_int (get_i64 p off)
let set_key p off k = set_i64 p off (Int64.of_int k)

let kind p = get_u8 p 0
let set_kind p k = set_u8 p 0 k

let lsn p = get_i64 p 1
let set_lsn p v = set_i64 p 1 v

let blit ~src ~src_off ~dst ~dst_off ~len = Bytes.blit src src_off dst dst_off len

let sub p off len = Bytes.sub_string p off len

let fill p off len c = Bytes.fill p off len c

let copy_into ~src ~dst =
  if Bytes.length src <> Bytes.length dst then
    invalid_arg "Page.copy_into: size mismatch";
  Bytes.blit src 0 dst 0 (Bytes.length src)

let equal = Bytes.equal
