lib/pager/alloc.mli: Buffer_pool
