lib/pager/buffer_pool.mli: Disk Page
