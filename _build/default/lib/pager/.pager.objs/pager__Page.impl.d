lib/pager/page.ml: Bytes Char Int32 Int64
