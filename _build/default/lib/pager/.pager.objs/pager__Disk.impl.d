lib/pager/disk.ml: Array Bytes Page Printf
