lib/pager/alloc.ml: Buffer_pool Disk Hashtbl Int Page Printf Set
