lib/pager/buffer_pool.ml: Disk Fun Hashtbl List Page
