lib/pager/disk.mli: Page
