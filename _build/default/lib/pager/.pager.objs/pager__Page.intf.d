lib/pager/page.mli:
