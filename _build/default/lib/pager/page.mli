(** Fixed-size binary pages.

    A page is a [bytes] buffer with a small header owned by the pager:

    {v
      offset 0      : kind (u8)    -- 0 = free, other values owned by layers above
      offsets 1..8  : page LSN (i64, big-endian)
    v}

    Everything from {!header_size} on belongs to the layer that owns the page
    (the B+-tree defines leaf / internal / meta layouts there).  All multi-byte
    integers are big-endian so page images are deterministic and comparable. *)

type t = bytes

val header_size : int
(** First offset available to higher layers (= 9). *)

val kind_free : int
(** The [kind] value of an unallocated page (= 0). *)

val create : size:int -> t
(** A zeroed page; its kind is {!kind_free}. *)

val kind : t -> int
val set_kind : t -> int -> unit

val lsn : t -> int64
val set_lsn : t -> int64 -> unit

(** {2 Raw accessors}  Bounds-checked by the underlying [Bytes] primitives. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val get_key : t -> int -> int
(** Keys are stored as i64 but used as OCaml ints. *)

val set_key : t -> int -> int -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
val sub : t -> int -> int -> string
val fill : t -> int -> int -> char -> unit
val copy_into : src:t -> dst:t -> unit
(** Whole-page copy; the two pages must have equal size. *)

val equal : t -> t -> bool
