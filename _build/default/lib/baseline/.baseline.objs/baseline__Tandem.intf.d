lib/baseline/tandem.mli: Btree
