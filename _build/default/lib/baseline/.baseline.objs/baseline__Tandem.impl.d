lib/baseline/tandem.ml: Btree List Lockmgr Pager Sched Transact Wal
