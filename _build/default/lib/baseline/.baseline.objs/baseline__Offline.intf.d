lib/baseline/offline.mli: Btree
