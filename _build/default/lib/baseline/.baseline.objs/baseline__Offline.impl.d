lib/baseline/offline.ml: Btree List Lockmgr Pager Sched Transact
