(** Tandem-style online reorganization ([Smi90]) — the paper's comparator.

    Behaviour reproduced from the paper's description of [Smi90]:
    - every operation (block merge, block move, block swap) is an individual
      {e database transaction}, commit-forced, and {e rolled back} if
      interrupted — no forward recovery;
    - each operation handles exactly {b two blocks};
    - for the duration of each operation the method "prevents user
      transactions from accessing the entire file": an X lock on the tree
      lock, which every reader/updater's IS/IX conflicts with;
    - record movements are logged physically with full page images (no
      careful writing).

    The compaction pass repeatedly merges an under-filled leaf with its
    successor when both fit in one page; the ordering pass swaps/moves two
    blocks per transaction toward contiguous key order. *)

type stats = {
  mutable ops : int;  (** operations = transactions run *)
  mutable merges : int;
  mutable swaps : int;
  mutable moves : int;
  mutable records_moved : int;
  mutable log_bytes : int;
  mutable lock_hold_ticks : int;  (** total ticks the file lock was held *)
}

val create_stats : unit -> stats

val compact :
  access:Btree.Access.t -> f2:float -> stats -> unit
(** Run the merge pass to target fill [f2].  Must run inside a scheduler
    process. *)

val order_leaves : access:Btree.Access.t -> stats -> unit
(** Swap/move pass: two blocks per transaction until leaves are contiguous
    and in key order. *)

val reorganize : access:Btree.Access.t -> f2:float -> stats
(** Both passes (note: no tree-shrinking pass — [Smi90] reorganizes
    key-sequenced files, not the index levels). *)
