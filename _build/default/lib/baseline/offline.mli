(** Offline rebuild — the "solution which requires locking up the entire
    B+-tree" that the paper's introduction rules out (§2: "solutions which
    require locking up the entire B+-tree to do reorganization are out of
    question").

    The whole tree is X-locked for the duration: every record is read out,
    fresh leaves and upper levels are bulk-built at the target fill factor in
    new space, the root is switched, and the old pages are freed.  Fastest
    possible result, zero availability — the yardstick the online methods
    are measured against. *)

type stats = {
  records : int;
  offline_ticks : int;  (** how long the tree lock was held exclusively *)
  pages_written : int;
}

val reorganize : access:Btree.Access.t -> f2:float -> stats
(** Must run inside a scheduler process. *)
