(* Splitmix64: tiny, fast, passes BigCrush when used as a 64-bit stream.
   Chosen because it is trivially seedable and splittable, which keeps all
   experiments reproducible. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

(* Non-negative 62-bit int from the high bits. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  positive_int t mod n

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 significant bits, scaled to [0,1). *)
  u /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

(* Zipf via the Gray et al. ("Quickly generating billion-record synthetic
   databases") approximation.  We cache the normalization constants per (n,
   theta) pair since experiments draw many samples from one distribution. *)
let zipf_cache : (int * float, float * float * float) Hashtbl.t = Hashtbl.create 7

let zipf_constants n theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some c -> c
  | None ->
    let zetan = ref 0.0 in
    for i = 1 to n do
      zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    let zeta2 = 1.0 +. (1.0 /. Float.pow 2.0 theta) in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. !zetan))
    in
    let c = (alpha, eta, !zetan) in
    Hashtbl.replace zipf_cache (n, theta) c;
    c

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then
    (* theta = 0 would be uniform; handle explicitly to avoid division by 0. *)
    int t n
  else begin
    let alpha, eta, zetan = zipf_constants n theta in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let v =
        float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
      in
      let k = int_of_float v in
      if k >= n then n - 1 else if k < 0 then 0 else k
  end
