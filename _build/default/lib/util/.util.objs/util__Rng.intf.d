lib/util/rng.mli:
