lib/util/table.mli:
