(** Deterministic pseudo-random number generator.

    A small, fast, seedable PRNG (splitmix64) used everywhere randomness is
    needed so that every experiment in the repository is reproducible from a
    seed.  The global [Random] module is never used by the libraries. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Useful to give subcomponents their own streams. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n-1]].  Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [[lo, hi]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples from a Zipf distribution over [[0, n-1]] with
    skew [theta] (0 = uniform; typical skew 0.99).  Uses the standard
    rejection-free inverse-CDF approximation of Gray et al. *)
