type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  {
    title;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row ->
        match row with
        | Rule -> acc
        | Cells cs -> List.map2 (fun w c -> max w (String.length c)) acc cs)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 256 in
  let line ch =
    List.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w ch))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells aligns =
    List.iteri
      (fun i (c, (w, a)) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a w c))
      (List.map2 (fun c wa -> (c, wa)) cells (List.combine widths aligns));
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  emit t.headers (List.map (fun _ -> Left) t.headers);
  line '-';
  List.iter
    (fun row ->
      match row with Rule -> line '-' | Cells cs -> emit cs t.aligns)
    rows;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_int n =
  (* Thousands separators make big I/O and byte counts scannable. *)
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(digits = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" digits x

let fmt_pct x =
  if Float.is_nan x then "-" else Printf.sprintf "%.1f%%" (100.0 *. x)

let fmt_ratio x =
  if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x

let fmt_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%.1f MiB" (float_of_int n /. (1024.0 *. 1024.0))
