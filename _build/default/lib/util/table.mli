(** Aligned plain-text tables for experiment output.

    Every experiment harness prints its results through this module so that
    bench output has one consistent, diff-able shape. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Raises [Invalid_argument] if the arity does not match the
    header. *)

val add_rule : t -> unit
(** Append a horizontal separator row. *)

val render : t -> string
(** Render to a string (trailing newline included). *)

val print : t -> unit
(** [render] then [print_string]. *)

(** Cell formatting helpers. *)

val fmt_int : int -> string
val fmt_float : ?digits:int -> float -> string
val fmt_pct : float -> string
(** Fraction -> "42.0%". *)

val fmt_ratio : float -> string
(** "3.1x", or "-" for nan. *)

val fmt_bytes : int -> string
(** Human-readable byte count ("1.5 KiB"). *)
