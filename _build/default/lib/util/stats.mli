(** Small descriptive-statistics helpers for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Summary of a sample. *)

val summarize : float array -> summary
(** Descriptive summary.  Raises [Invalid_argument] on an empty sample. *)

val mean : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [[0,100]], nearest-rank on a sorted copy. *)

val ratio : float -> float -> float
(** [ratio a b] = [a /. b], or [nan] when [b = 0]. *)

val pp_summary : Format.formatter -> summary -> unit
