lib/core/pass1.mli: Ctx
