lib/core/rtable.mli: Wal
