lib/core/ctx.ml: Btree Config List Lockmgr Metrics Pager Rtable Transact Wal
