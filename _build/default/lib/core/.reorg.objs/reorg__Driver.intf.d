lib/core/driver.mli: Btree Config Ctx Format
