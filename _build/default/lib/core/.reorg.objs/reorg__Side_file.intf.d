lib/core/side_file.mli: Lockmgr Transact Wal
