lib/core/pass3.mli: Ctx Wal
