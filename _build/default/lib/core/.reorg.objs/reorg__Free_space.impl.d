lib/core/free_space.ml: Config Ctx Pager
