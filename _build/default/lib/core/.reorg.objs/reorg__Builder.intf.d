lib/core/builder.mli: Ctx
