lib/core/pass3.ml: Btree Builder Config Ctx List Lockmgr Metrics Pager Rtable Sched Side_file Transact Wal
