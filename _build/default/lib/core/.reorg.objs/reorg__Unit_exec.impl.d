lib/core/unit_exec.ml: Btree Config Ctx Format List Lockmgr Metrics Pager Printf Rtable Sched String Transact Wal
