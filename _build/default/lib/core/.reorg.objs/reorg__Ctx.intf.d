lib/core/ctx.mli: Btree Config Lockmgr Metrics Pager Rtable Transact Wal
