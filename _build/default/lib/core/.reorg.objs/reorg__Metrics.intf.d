lib/core/metrics.mli: Format
