lib/core/pass2.ml: Btree Ctx List Lockmgr Option Pager Sched Unit_exec
