lib/core/free_space.mli: Ctx
