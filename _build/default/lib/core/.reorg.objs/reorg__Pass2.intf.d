lib/core/pass2.mli: Ctx
