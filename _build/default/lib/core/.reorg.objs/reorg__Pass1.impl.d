lib/core/pass1.ml: Array Btree Config Ctx Free_space List Lockmgr Pager Rtable Sched Transact Unit_exec
