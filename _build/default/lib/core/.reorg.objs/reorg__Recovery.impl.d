lib/core/recovery.ml: Btree Bytes Config Ctx Driver Hashtbl List Option Pager Pass3 Rtable String Transact Wal
