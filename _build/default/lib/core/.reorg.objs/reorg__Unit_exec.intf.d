lib/core/unit_exec.mli: Ctx Format
