lib/core/metrics.ml: Format
