lib/core/rtable.ml: Wal
