lib/core/recovery.mli: Btree Config Ctx Driver Wal
