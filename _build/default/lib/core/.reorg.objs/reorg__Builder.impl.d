lib/core/builder.ml: Btree Config Ctx List Metrics Pager Wal
