lib/core/side_file.ml: List Lockmgr Transact Wal
