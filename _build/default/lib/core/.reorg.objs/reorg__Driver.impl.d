lib/core/driver.ml: Btree Config Ctx Format Pass1 Pass2 Pass3
