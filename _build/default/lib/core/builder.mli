(** Incremental bottom-up builder for the new upper levels (§7.1, §7.3).

    Base-page entries arrive in key order from the scan and are packed into
    new level-1 (base) pages at the configured fill factor.  The new pages
    carry a fresh {e generation} tag, which is how recovery tells them from
    the old tree's internal pages.

    At each {e stable point} the current partial page is sealed and every
    page built since the previous stable point is force-written, together
    with a [Stable_key] log record; after a crash, the durable sealed pages
    plus the stable key are exactly enough to resume the scan without
    redoing the whole pass (§7.3).  Levels above 1 are reconstructed from
    the level-1 page list at {!finalize}. *)

type t

val create : Ctx.t -> gen:int -> t

val restore : Ctx.t -> gen:int -> closed:(int * int) list -> t
(** Resume from recovery with the already-durable level-1 pages
    [(low mark, pid)], oldest first. *)

val gen : t -> int

val feed : t -> key:int -> child:int -> unit
(** Append one base-level entry (a leaf). *)

val stable_point : t -> next_key:int -> unit
(** Seal the partial page, force-write everything new, and log
    [Stable_key { key = next_key }] — the scan will resume from [next_key]
    after a crash. *)

val finalize : t -> int
(** Seal, build the levels above, force-write everything, and return the new
    root pid. *)

val closed_pages : t -> (int * int) list
(** Sealed level-1 pages so far, oldest first (exposed for tests). *)

val pages_built : t -> int
