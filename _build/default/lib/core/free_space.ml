let choose ctx ~l ~c =
  let alloc = Ctx.alloc ctx in
  match ctx.Ctx.config.Config.heuristic with
  | Config.No_new_place -> None
  | Config.Paper_heuristic ->
    if c <= l + 1 then None
    else Pager.Alloc.free_in_range alloc ~lo:(l + 1) ~hi:c
  | Config.First_free ->
    let lo, hi = Pager.Alloc.leaf_zone alloc in
    Pager.Alloc.free_in_range alloc ~lo ~hi
