(** Counters collected by the reorganizer — the quantities the paper argues
    about: units run, in-place vs new-place choices, swaps vs moves in pass 2,
    records moved, log bytes, lock give-ups and retries. *)

type t = {
  mutable units : int;  (** reorganization units completed *)
  mutable in_place_units : int;
  mutable new_place_units : int;  (** copying-switching units *)
  mutable swap_units : int;  (** pass-2 swaps *)
  mutable move_units : int;  (** pass-2 moves to empty pages *)
  mutable pages_compacted : int;  (** org leaves emptied by pass 1 *)
  mutable records_moved : int;
  mutable unit_retries : int;  (** units re-run after a deadlock give-up *)
  mutable units_undone : int;  (** §5.2 undo-at-deadlock events *)
  mutable base_pages_scanned : int;  (** pass 3 *)
  mutable side_entries : int;  (** side-file entries applied during catch-up *)
  mutable stable_points : int;
  mutable forced_aborts : int;  (** old-tree transactions aborted at switch *)
  mutable log_bytes : int;  (** log bytes attributed to reorganization *)
  mutable log_records : int;
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
