type t = {
  mutable units : int;
  mutable in_place_units : int;
  mutable new_place_units : int;
  mutable swap_units : int;
  mutable move_units : int;
  mutable pages_compacted : int;
  mutable records_moved : int;
  mutable unit_retries : int;
  mutable units_undone : int;
  mutable base_pages_scanned : int;
  mutable side_entries : int;
  mutable stable_points : int;
  mutable forced_aborts : int;
  mutable log_bytes : int;
  mutable log_records : int;
}

let create () =
  {
    units = 0;
    in_place_units = 0;
    new_place_units = 0;
    swap_units = 0;
    move_units = 0;
    pages_compacted = 0;
    records_moved = 0;
    unit_retries = 0;
    units_undone = 0;
    base_pages_scanned = 0;
    side_entries = 0;
    stable_points = 0;
    forced_aborts = 0;
    log_bytes = 0;
    log_records = 0;
  }

let reset t =
  t.units <- 0;
  t.in_place_units <- 0;
  t.new_place_units <- 0;
  t.swap_units <- 0;
  t.move_units <- 0;
  t.pages_compacted <- 0;
  t.records_moved <- 0;
  t.unit_retries <- 0;
  t.units_undone <- 0;
  t.base_pages_scanned <- 0;
  t.side_entries <- 0;
  t.stable_points <- 0;
  t.forced_aborts <- 0;
  t.log_bytes <- 0;
  t.log_records <- 0

let pp ppf t =
  Format.fprintf ppf
    "units=%d (in-place=%d new-place=%d) swaps=%d moves=%d compacted=%d records=%d retries=%d \
     undone=%d bases=%d side=%d stable=%d aborts=%d log=%dB/%d recs"
    t.units t.in_place_units t.new_place_units t.swap_units t.move_units t.pages_compacted
    t.records_moved t.unit_retries t.units_undone t.base_pages_scanned t.side_entries
    t.stable_points t.forced_aborts t.log_bytes t.log_records
