(** Find-Free-Space (§6.1): choosing the empty page for copying-switching.

    The paper's heuristic takes "the first empty page which is in front of
    the leaf page that is going to be reorganized, C, and after the largest
    finished leaf page ID, L".  This forces compacted pages to march toward
    the beginning of the leaf area in key order, which is what makes most of
    pass 2 unnecessary ("initial experiments showed that our algorithm can
    greatly reduce the number of swaps").

    Two baselines are provided for the swap-reduction experiment: the naive
    first-free-anywhere policy, and no new-place at all. *)

val choose : Ctx.t -> l:int -> c:int -> int option
(** Pick the copying-switching destination under the configured heuristic:
    [l] is the largest finished leaf page id (exclusive), [c] the page about
    to be reorganized.  [None] means "compact in place". *)
