module Record = Wal.Record
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_client = Transact.Lock_client
module Journal = Transact.Journal

type t = {
  journal : Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mutable items : Record.side_op list; (* newest first *)
}

let create ~journal ~locks = { journal; locks; items = [] }

let key_of = function
  | Record.Side_insert { key; _ } | Record.Side_delete { key; _ } -> key

let append t ~txn op =
  match Lock_client.try_acquire t.locks ~txn Resource.Side_file Mode.IX with
  | `Granted ->
    Lock_client.acquire t.locks ~txn (Resource.Side_key (key_of op)) Mode.X;
    ignore
      (Journal.log_for t.journal ~txn (fun ~prev ->
           Record.Side_file { txn = txn.Transact.Txn.id; op; prev }));
    t.items <- op :: t.items;
    `Accepted
  | `Conflict _ ->
    (* Switching is in progress: wait it out with an instant-duration IX,
       then redirect the update to the new tree (§7.4). *)
    Lock_client.instant t.locks ~txn Resource.Side_file Mode.IX;
    `Redirect

let take t =
  match List.rev t.items with
  | [] -> None
  | oldest :: rest ->
    t.items <- List.rev rest;
    ignore (Wal.Log.append (Journal.log t.journal) (Record.Side_applied { op = oldest }));
    Some oldest

let remove t op =
  let rec drop_first = function
    | [] -> []
    | x :: rest -> if x = op then rest else x :: drop_first rest
  in
  t.items <- drop_first t.items

let size t = List.length t.items
let is_empty t = t.items = []

let restore_entries t ops = t.items <- List.rev ops

let entries t = List.rev t.items
