(** Pass 2 — Swapping-Moving (optional).

    Makes the leaf pages contiguous and in key order at the start of the leaf
    zone: for each key-order position, if the right page is already there do
    nothing; if the target page is empty, {e move} the leaf there (a
    new-place unit, cheap to log); otherwise {e swap} the two leaves (which
    must log at least one full page).  The paper keeps this pass separate and
    optional because swapping locks more (often two parents) and logs more —
    "one scenario we envision is choosing to do swapping only when range
    query performance falls below some acceptable level."

    Returns (swaps, moves).  Must run inside a scheduler process. *)

val run : Ctx.t -> int * int

val out_of_order : Ctx.t -> int
(** Number of leaves not at their key-order position in the leaf zone —
    the quantity pass 2 drives to zero, and the metric the Find-Free-Space
    experiment reports. *)
