(** Pass 1 — compact the leaves (Figure 2 of the paper).

    Walks the base pages in key order from LK (so a crash resumes where the
    last finished unit left off).  For each group of consecutive sparse
    leaves under one base page that fits into a single page at fill factor
    [f2], it runs one reorganization unit: copying-switching into a
    well-placed empty page when Find-Free-Space finds one, in-place
    compaction otherwise.

    Must run inside a scheduler process.  Returns the number of units
    executed. *)

val run : Ctx.t -> int

val run_bounded : Ctx.t -> lo_key:int -> hi_key:int -> int
(** Compact only the key range [(lo_key, hi_key)] — the building block of
    the parallel mode. *)

val run_parallel : Ctx.t -> workers:int -> int
(** The paper's future-work extension: partition the key space at base-page
    boundaries and compact the ranges concurrently, one worker process (own
    lock identity, own unit-id lattice) per range.  Falls back to {!run}
    for [workers <= 1]. *)

val plan_group :
  Ctx.t -> base:int -> after_key:int -> (int list * int) option
(** Exposed for tests: the greedy group of consecutive children of [base]
    with entry keys > [after_key] that compact into one page at [f2], plus
    the largest key currently in the group.  [None] when nothing under this
    base needs work. *)
