module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Tree = Btree.Tree
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource

type group_plan =
  | Group of { leaves : int list; max_key : int }
  | Skip of int (* well-filled or unpairable leaf: advance LK to this key *)
  | Exhausted (* nothing with keys > after_key under this base *)

let plan_group_v ?(hi_key = max_int) ctx ~base ~after_key =
  let bp = Ctx.page ctx base in
  let target = ctx.Ctx.config.Config.f2 *. float_of_int (Ctx.usable_bytes ctx) in
  let target = int_of_float target in
  let entries =
    List.filter (fun e -> e.Inode.key > after_key && e.Inode.key < hi_key) (Inode.entries bp)
  in
  match entries with
  | [] -> Exhausted
  | first :: rest ->
    let leaf_bytes pid = Leaf.live_bytes (Ctx.page ctx pid) in
    let leaf_max pid =
      match Leaf.max_key (Ctx.page ctx pid) with Some k -> k | None -> after_key
    in
    (* Greedily extend the group while the total still fits the target. *)
    let rec extend acc bytes max_key = function
      | e :: more when bytes + leaf_bytes e.Inode.child <= target ->
        extend (e.Inode.child :: acc) (bytes + leaf_bytes e.Inode.child)
          (max max_key (leaf_max e.Inode.child))
          more
      | _ -> (List.rev acc, max_key)
    in
    let first_bytes = leaf_bytes first.Inode.child in
    if first_bytes > target then
      (* Already at or above the target fill: nothing to gain. *)
      Skip (max (leaf_max first.Inode.child) first.Inode.key)
    else begin
      let group, max_key =
        extend [ first.Inode.child ] first_bytes
          (max (leaf_max first.Inode.child) first.Inode.key)
          rest
      in
      match group with
      | [ _only ] ->
        (* No neighbour fits with it: compaction cannot improve this leaf. *)
        Skip max_key
      | leaves -> Group { leaves; max_key }
    end

let plan_group ctx ~base ~after_key =
  match plan_group_v ctx ~base ~after_key with
  | Group { leaves; max_key } -> Some (leaves, max_key)
  | Skip _ | Exhausted -> None

(* Base page whose key range covers keys just above [k], if the tree has
   base pages at all. *)
let base_covering ctx k =
  let tree = Ctx.tree ctx in
  let key = if k = max_int then k else k + 1 in
  Tree.parent_of_leaf tree key

let in_place_dest ctx ~l leaves =
  (* Under the paper heuristic the in-place destination also respects the
     finished frontier L (smallest member beyond it), keeping constructed
     pages in disk order; the naive baselines just take the smallest member,
     which scrambles the order and forces pass-2 swaps. *)
  match ctx.Ctx.config.Config.heuristic with
  | Config.Paper_heuristic -> begin
    match List.sort compare (List.filter (fun p -> p > l) leaves) with
    | d :: _ -> d
    | [] -> List.fold_left min (List.hd leaves) leaves
  end
  | Config.First_free | Config.No_new_place -> List.fold_left min (List.hd leaves) leaves

let run_bounded ctx ~lo_key ~hi_key =
  let tree = Ctx.tree ctx in
  let units = ref 0 in
  if Tree.height tree > 1 then begin
    Ctx.acquire ctx (Resource.Tree (Tree.tree_name tree)) Mode.IX;
    let leaf_lo, _ = Pager.Alloc.leaf_zone (Ctx.alloc ctx) in
    (* L: the largest finished (constructed) leaf page id (§6.1). *)
    let l = ref (leaf_lo - 1) in
    let stale = ref 0 in
    if lo_key > Rtable.lk ctx.Ctx.rtable then Rtable.set_lk ctx.Ctx.rtable lo_key;
    let rec step () =
      Sched.Engine.yield ();
      let k = Rtable.lk ctx.Ctx.rtable in
      if k >= hi_key then ()
      else
      match base_covering ctx k with
      | None -> ()
      | Some base -> begin
        match plan_group_v ~hi_key ctx ~base ~after_key:k with
        | Exhausted -> begin
          (* Jump to the next base page (Get_Next). *)
          match Tree.next_base tree k with
          | None -> ()
          | Some next ->
            let low = Inode.low_mark (Ctx.page ctx next) in
            (* Restart planning just below that base's first entry. *)
            if low > k && low < hi_key then begin
              Rtable.set_lk ctx.Ctx.rtable (low - 1);
              step ()
            end
        end
        | Skip key ->
          Rtable.set_lk ctx.Ctx.rtable (max k key);
          step ()
        | Group { leaves; max_key } ->
          (* §6: a lock envelope may construct several pages before letting
             the base page go (config.unit_pages); the base R lock is held
             re-entrantly across the units of the envelope. *)
          let envelope = max 1 ctx.Ctx.config.Config.unit_pages in
          let run_group leaves max_key =
            let c = List.hd leaves in
            let dest =
              match Free_space.choose ctx ~l:!l ~c with
              | Some e -> `New_place e
              | None -> `In_place (in_place_dest ctx ~l:!l leaves)
            in
            let dest_pid = match dest with `New_place e -> e | `In_place d -> d in
            match Unit_exec.execute ctx (Unit_exec.Compact { base; leaves; dest }) with
            | Unit_exec.Done _ ->
              incr units;
              stale := 0;
              if dest_pid > !l then l := dest_pid;
              true
            | Unit_exec.Stale ->
              incr stale;
              if !stale > 5 then begin
                stale := 0;
                Rtable.set_lk ctx.Ctx.rtable (max k max_key)
              end;
              false
            | Unit_exec.Gave_up ->
              (* Skip this group rather than spin. *)
              Rtable.set_lk ctx.Ctx.rtable (max k max_key);
              false
          in
          if envelope = 1 then ignore (run_group leaves max_key)
          else begin
            let held_envelope = ref false in
            (try
               Ctx.acquire ctx (Resource.Page base) Lockmgr.Mode.R;
               held_envelope := true
             with Transact.Lock_client.Deadlock_victim -> ());
            let rec drive n leaves max_key =
              if run_group leaves max_key && n + 1 < envelope then
                (* Plan the next group under the same base. *)
                match plan_group_v ~hi_key ctx ~base ~after_key:(Rtable.lk ctx.Ctx.rtable) with
                | Group { leaves; max_key } -> drive (n + 1) leaves max_key
                | Skip key -> Rtable.set_lk ctx.Ctx.rtable (max (Rtable.lk ctx.Ctx.rtable) key)
                | Exhausted -> ()
            in
            drive 0 leaves max_key;
            if !held_envelope then Ctx.release ctx (Resource.Page base) Lockmgr.Mode.R
          end;
          step ()
      end
    in
    step ();
    Ctx.release ctx (Resource.Tree (Tree.tree_name tree)) Mode.IX
  end;
  !units

let run ctx = run_bounded ctx ~lo_key:min_int ~hi_key:max_int

(* Parallel pass 1 (the paper's stated future work): partition the key space
   at base-page boundaries and run one worker per range, each with its own
   lock identity and unit-id lattice.  Units stay unchanged, so user
   transactions interact with each worker exactly as with the single
   reorganizer. *)
let run_parallel ctx ~workers =
  let tree = Ctx.tree ctx in
  if workers <= 1 || Tree.height tree <= 1 then run ctx
  else begin
    (* Collect the base-page low marks as cut candidates. *)
    let boundaries = ref [] in
    (match Tree.first_base tree with
    | None -> ()
    | Some b ->
      let rec walk low =
        boundaries := low :: !boundaries;
        match Tree.next_base tree low with
        | Some nb -> walk (Inode.low_mark (Ctx.page ctx nb))
        | None -> ()
      in
      walk (Inode.low_mark (Ctx.page ctx b)));
    let bounds = Array.of_list (List.rev !boundaries) in
    let nb = Array.length bounds in
    let w = min workers (max 1 nb) in
    let cut i = if i = 0 then min_int else bounds.(i * nb / w) in
    let total = ref 0 in
    let remaining = ref w in
    let done_q = Sched.Waitq.create () in
    for i = 0 to w - 1 do
      let wctx = Ctx.worker ctx ~index:i ~count:w in
      let lo_key = cut i in
      let hi_key = if i = w - 1 then max_int else cut (i + 1) in
      Sched.Engine.spawn_child (fun () ->
          let u = run_bounded wctx ~lo_key ~hi_key in
          total := !total + u;
          (* Propagate progress into the parent's system table. *)
          if Rtable.lk wctx.Ctx.rtable > Rtable.lk ctx.Ctx.rtable then
            Rtable.set_lk ctx.Ctx.rtable (Rtable.lk wctx.Ctx.rtable);
          decr remaining;
          if !remaining = 0 then Sched.Waitq.broadcast done_q)
    done;
    if !remaining > 0 then Sched.Waitq.wait done_q;
    !total
  end
