(** Execution of one reorganization unit (§4–§5).

    A unit is the paper's atom of leaf reorganization: compacting a group of
    leaves under one base page (in place or into a chosen empty page),
    swapping two leaves, or moving one leaf to an empty page.

    The executor follows §4.1.1 exactly:
    - IX on the tree lock is assumed held by the pass driver;
    - R locks on the base page(s), then RX locks on every leaf of the unit,
      then X locks on side-pointer neighbours — {e all before} any record
      moves;
    - the BEGIN log record is written only after all leaf locks are held;
    - records are moved (logged as MOVE records — keys only under careful
      writing, with write-order dependencies and deferred deallocation);
    - the base lock is upgraded R -> X for the short MODIFY step;
    - END completes the unit and advances LK in the system table.

    If the reorganizer is chosen as a deadlock victim before anything moved,
    it releases everything and the unit is retried.  If the victim moment is
    the R->X upgrade (records already moved), §5.2's undo runs: reverse MOVE
    records are logged, the records go back, and the unit ends as a no-op. *)

type plan =
  | Compact of {
      base : int;
      leaves : int list;  (** ≥ 1 children of [base], consecutive, in key order *)
      dest : [ `In_place of int | `New_place of int ];
    }
  | Swap of { a_base : int; a : int; b_base : int; b : int }
  | Move of { base : int; org : int; dest : int }

type outcome =
  | Done of int  (** largest key processed *)
  | Stale  (** the tree changed between planning and locking; re-plan *)
  | Gave_up  (** deadlock-victim retries exhausted, or undo-at-deadlock ran *)

val execute : Ctx.t -> plan -> outcome

val pp_plan : Format.formatter -> plan -> unit
