(** Lockable resources.

    [Tree n] is the large-granularity tree lock; its name [n] distinguishes
    the old tree from the new tree during the switch (§7.4 gives the new tree
    "a lock name which is distinct from the old B+-tree").  [Page] covers
    base pages and leaf pages; [Rec] is a record-level key lock; [Side_file]
    and [Side_key] protect the side file table (§7.2). *)

type t =
  | Tree of int
  | Page of int
  | Rec of int
  | Side_file
  | Side_key of int

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
