type t =
  | Tree of int
  | Page of int
  | Rec of int
  | Side_file
  | Side_key of int

let equal (a : t) (b : t) = a = b
let hash = Hashtbl.hash

let to_string = function
  | Tree n -> Printf.sprintf "tree:%d" n
  | Page p -> Printf.sprintf "page:%d" p
  | Rec k -> Printf.sprintf "rec:%d" k
  | Side_file -> "side-file"
  | Side_key k -> Printf.sprintf "side-key:%d" k

let pp ppf t = Format.pp_print_string ppf (to_string t)
