lib/lock/resource.mli: Format
