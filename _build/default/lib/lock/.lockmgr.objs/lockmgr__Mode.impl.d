lib/lock/mode.ml: Format
