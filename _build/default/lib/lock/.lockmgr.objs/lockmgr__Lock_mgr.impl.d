lib/lock/lock_mgr.ml: Hashtbl List Mode Resource
