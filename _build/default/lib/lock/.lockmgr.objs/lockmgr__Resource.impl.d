lib/lock/resource.ml: Format Hashtbl Printf
