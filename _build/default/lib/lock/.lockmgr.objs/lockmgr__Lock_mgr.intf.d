lib/lock/lock_mgr.mli: Mode Resource
