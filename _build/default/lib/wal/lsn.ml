type t = int

let nil = 0
let compare = Int.compare
let to_int64 = Int64.of_int
let of_int64 = Int64.to_int
let pp ppf t = if t = nil then Format.pp_print_string ppf "nil" else Format.pp_print_int ppf t
