type txn_id = int
type key = int
type page_id = int

type reorg_type = Compact | Swap | Move

type move_payload =
  | Full_records of (key * string) list
  | Keys_only of key list

type dest_init = {
  di_low_mark : key;
  di_prev : page_id;
  di_next : page_id;
}

type base_edit =
  | Insert_entry of { key : key; child : page_id }
  | Delete_entry of { key : key; child : page_id }
  | Update_entry of { org_key : key; org_child : page_id; new_key : key; new_child : page_id }

type side_op =
  | Side_insert of { key : key; child : page_id }
  | Side_delete of { key : key; child : page_id }

type reorg_table = {
  rt_lk : key;
  rt_unit : int option;
  rt_begin_lsn : Lsn.t;
  rt_last_lsn : Lsn.t;
  rt_ck : key option;
}

type clr_action =
  | Undo_insert of { key : key }
  | Undo_delete of { key : key; payload : string }
  | Undo_side of side_op
  | Undo_phys of { page : page_id; off : int; bytes : string }

type body =
  | Txn_begin of txn_id
  | Txn_commit of txn_id
  | Txn_abort of txn_id
  | Update of {
      txn : txn_id;
      page : page_id;
      off : int;
      before : string;
      after : string;
      prev : Lsn.t;
    }
  | Leaf_insert of { txn : txn_id; page : page_id; key : key; payload : string; prev : Lsn.t }
  | Leaf_delete of { txn : txn_id; page : page_id; key : key; payload : string; prev : Lsn.t }
  | Clr of { txn : txn_id; action : clr_action; undo_next : Lsn.t }
  | Nta_end of { txn : txn_id; undo_next : Lsn.t }
  | Reorg_begin of {
      unit_id : int;
      rtype : reorg_type;
      base_pages : page_id list;
      leaf_pages : page_id list;
    }
  | Reorg_move of {
      unit_id : int;
      org : page_id;
      dest : page_id;
      payload : move_payload;
      dest_init : dest_init option;
      prev : Lsn.t;
    }
  | Reorg_modify of { unit_id : int; base : page_id; edits : base_edit list; prev : Lsn.t }
  | Reorg_end of { unit_id : int; largest_key : key; prev : Lsn.t }
  | Side_file of { txn : txn_id; op : side_op; prev : Lsn.t }
  | Side_applied of { op : side_op }
  | Stable_key of { key : key; new_root : page_id }
  | Switch of { old_root : page_id; new_root : page_id; old_name : int; new_name : int }
  | Checkpoint of {
      active_txns : (txn_id * Lsn.t) list;
      reorg : reorg_table;
      dirty_pages : page_id list;
    }

let empty_reorg_table =
  { rt_lk = min_int; rt_unit = None; rt_begin_lsn = Lsn.nil; rt_last_lsn = Lsn.nil; rt_ck = None }

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let add_int buf n = Buffer.add_int64_be buf (Int64.of_int n)

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_list buf f xs =
  add_int buf (List.length xs);
  List.iter (f buf) xs

let add_opt buf f = function
  | None -> Buffer.add_char buf '\000'
  | Some x ->
    Buffer.add_char buf '\001';
    f buf x

let add_side_op buf = function
  | Side_insert { key; child } ->
    Buffer.add_char buf 'i';
    add_int buf key;
    add_int buf child
  | Side_delete { key; child } ->
    Buffer.add_char buf 'd';
    add_int buf key;
    add_int buf child

let add_edit buf = function
  | Insert_entry { key; child } ->
    Buffer.add_char buf 'i';
    add_int buf key;
    add_int buf child
  | Delete_entry { key; child } ->
    Buffer.add_char buf 'd';
    add_int buf key;
    add_int buf child
  | Update_entry { org_key; org_child; new_key; new_child } ->
    Buffer.add_char buf 'u';
    add_int buf org_key;
    add_int buf org_child;
    add_int buf new_key;
    add_int buf new_child

let reorg_type_tag = function Compact -> 'c' | Swap -> 's' | Move -> 'm'

let encode body =
  let buf = Buffer.create 64 in
  (match body with
  | Txn_begin txn ->
    Buffer.add_char buf 'B';
    add_int buf txn
  | Txn_commit txn ->
    Buffer.add_char buf 'C';
    add_int buf txn
  | Txn_abort txn ->
    Buffer.add_char buf 'A';
    add_int buf txn
  | Update { txn; page; off; before; after; prev } ->
    Buffer.add_char buf 'U';
    add_int buf txn;
    add_int buf page;
    add_int buf off;
    add_string buf before;
    add_string buf after;
    add_int buf prev
  | Leaf_insert { txn; page; key; payload; prev } ->
    Buffer.add_char buf 'I';
    add_int buf txn;
    add_int buf page;
    add_int buf key;
    add_string buf payload;
    add_int buf prev
  | Leaf_delete { txn; page; key; payload; prev } ->
    Buffer.add_char buf 'T';
    add_int buf txn;
    add_int buf page;
    add_int buf key;
    add_string buf payload;
    add_int buf prev
  | Clr { txn; action; undo_next } ->
    Buffer.add_char buf 'L';
    add_int buf txn;
    (match action with
    | Undo_insert { key } ->
      Buffer.add_char buf 'i';
      add_int buf key
    | Undo_delete { key; payload } ->
      Buffer.add_char buf 'd';
      add_int buf key;
      add_string buf payload
    | Undo_side op ->
      Buffer.add_char buf 's';
      add_side_op buf op
    | Undo_phys { page; off; bytes } ->
      Buffer.add_char buf 'p';
      add_int buf page;
      add_int buf off;
      add_string buf bytes);
    add_int buf undo_next
  | Nta_end { txn; undo_next } ->
    Buffer.add_char buf 'N';
    add_int buf txn;
    add_int buf undo_next
  | Reorg_begin { unit_id; rtype; base_pages; leaf_pages } ->
    Buffer.add_char buf 'R';
    add_int buf unit_id;
    Buffer.add_char buf (reorg_type_tag rtype);
    add_list buf add_int base_pages;
    add_list buf add_int leaf_pages
  | Reorg_move { unit_id; org; dest; payload; dest_init; prev } ->
    Buffer.add_char buf 'M';
    add_int buf unit_id;
    add_int buf org;
    add_int buf dest;
    (match payload with
    | Full_records recs ->
      Buffer.add_char buf 'f';
      add_list buf
        (fun buf (k, v) ->
          add_int buf k;
          add_string buf v)
        recs
    | Keys_only keys ->
      Buffer.add_char buf 'k';
      add_list buf add_int keys);
    add_opt buf
      (fun buf di ->
        add_int buf di.di_low_mark;
        add_int buf di.di_prev;
        add_int buf di.di_next)
      dest_init;
    add_int buf prev
  | Reorg_modify { unit_id; base; edits; prev } ->
    Buffer.add_char buf 'D';
    add_int buf unit_id;
    add_int buf base;
    add_list buf add_edit edits;
    add_int buf prev
  | Reorg_end { unit_id; largest_key; prev } ->
    Buffer.add_char buf 'E';
    add_int buf unit_id;
    add_int buf largest_key;
    add_int buf prev
  | Side_file { txn; op; prev } ->
    Buffer.add_char buf 'S';
    add_int buf txn;
    add_side_op buf op;
    add_int buf prev
  | Side_applied { op } ->
    Buffer.add_char buf 'P';
    add_side_op buf op
  | Stable_key { key; new_root } ->
    Buffer.add_char buf 'K';
    add_int buf key;
    add_int buf new_root
  | Switch { old_root; new_root; old_name; new_name } ->
    Buffer.add_char buf 'W';
    add_int buf old_root;
    add_int buf new_root;
    add_int buf old_name;
    add_int buf new_name
  | Checkpoint { active_txns; reorg; dirty_pages } ->
    Buffer.add_char buf 'X';
    add_list buf
      (fun buf (t, l) ->
        add_int buf t;
        add_int buf l)
      active_txns;
    add_int buf reorg.rt_lk;
    add_opt buf add_int reorg.rt_unit;
    add_int buf reorg.rt_begin_lsn;
    add_int buf reorg.rt_last_lsn;
    add_opt buf add_int reorg.rt_ck;
    add_list buf add_int dirty_pages);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let fail () = failwith "Record.decode: malformed record"

let read_char c =
  if c.pos >= String.length c.s then fail ();
  let ch = c.s.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let read_int c =
  if c.pos + 8 > String.length c.s then fail ();
  let v = Int64.to_int (String.get_int64_be c.s c.pos) in
  c.pos <- c.pos + 8;
  v

let read_string c =
  let n = read_int c in
  if n < 0 || c.pos + n > String.length c.s then fail ();
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let read_list c f =
  let n = read_int c in
  if n < 0 then fail ();
  List.init n (fun _ -> f c)

let read_opt c f =
  match read_char c with '\000' -> None | '\001' -> Some (f c) | _ -> fail ()

let read_side_op c =
  match read_char c with
  | 'i' ->
    let key = read_int c in
    let child = read_int c in
    Side_insert { key; child }
  | 'd' ->
    let key = read_int c in
    let child = read_int c in
    Side_delete { key; child }
  | _ -> fail ()

let read_edit c =
  match read_char c with
  | 'i' ->
    let key = read_int c in
    let child = read_int c in
    Insert_entry { key; child }
  | 'd' ->
    let key = read_int c in
    let child = read_int c in
    Delete_entry { key; child }
  | 'u' ->
    let org_key = read_int c in
    let org_child = read_int c in
    let new_key = read_int c in
    let new_child = read_int c in
    Update_entry { org_key; org_child; new_key; new_child }
  | _ -> fail ()

let read_reorg_type c =
  match read_char c with 'c' -> Compact | 's' -> Swap | 'm' -> Move | _ -> fail ()

let decode s =
  let c = { s; pos = 0 } in
  let body =
    match read_char c with
    | 'B' -> Txn_begin (read_int c)
    | 'C' -> Txn_commit (read_int c)
    | 'A' -> Txn_abort (read_int c)
    | 'U' ->
      let txn = read_int c in
      let page = read_int c in
      let off = read_int c in
      let before = read_string c in
      let after = read_string c in
      let prev = read_int c in
      Update { txn; page; off; before; after; prev }
    | 'I' ->
      let txn = read_int c in
      let page = read_int c in
      let key = read_int c in
      let payload = read_string c in
      let prev = read_int c in
      Leaf_insert { txn; page; key; payload; prev }
    | 'T' ->
      let txn = read_int c in
      let page = read_int c in
      let key = read_int c in
      let payload = read_string c in
      let prev = read_int c in
      Leaf_delete { txn; page; key; payload; prev }
    | 'L' ->
      let txn = read_int c in
      let action =
        match read_char c with
        | 'i' -> Undo_insert { key = read_int c }
        | 'd' ->
          let key = read_int c in
          let payload = read_string c in
          Undo_delete { key; payload }
        | 's' -> Undo_side (read_side_op c)
        | 'p' ->
          let page = read_int c in
          let off = read_int c in
          let bytes = read_string c in
          Undo_phys { page; off; bytes }
        | _ -> fail ()
      in
      let undo_next = read_int c in
      Clr { txn; action; undo_next }
    | 'N' ->
      let txn = read_int c in
      let undo_next = read_int c in
      Nta_end { txn; undo_next }
    | 'R' ->
      let unit_id = read_int c in
      let rtype = read_reorg_type c in
      let base_pages = read_list c read_int in
      let leaf_pages = read_list c read_int in
      Reorg_begin { unit_id; rtype; base_pages; leaf_pages }
    | 'M' ->
      let unit_id = read_int c in
      let org = read_int c in
      let dest = read_int c in
      let payload =
        match read_char c with
        | 'f' ->
          Full_records
            (read_list c (fun c ->
                 let k = read_int c in
                 let v = read_string c in
                 (k, v)))
        | 'k' -> Keys_only (read_list c read_int)
        | _ -> fail ()
      in
      let dest_init =
        read_opt c (fun c ->
            let di_low_mark = read_int c in
            let di_prev = read_int c in
            let di_next = read_int c in
            { di_low_mark; di_prev; di_next })
      in
      let prev = read_int c in
      Reorg_move { unit_id; org; dest; payload; dest_init; prev }
    | 'D' ->
      let unit_id = read_int c in
      let base = read_int c in
      let edits = read_list c read_edit in
      let prev = read_int c in
      Reorg_modify { unit_id; base; edits; prev }
    | 'E' ->
      let unit_id = read_int c in
      let largest_key = read_int c in
      let prev = read_int c in
      Reorg_end { unit_id; largest_key; prev }
    | 'S' ->
      let txn = read_int c in
      let op = read_side_op c in
      let prev = read_int c in
      Side_file { txn; op; prev }
    | 'P' -> Side_applied { op = read_side_op c }
    | 'K' ->
      let key = read_int c in
      let new_root = read_int c in
      Stable_key { key; new_root }
    | 'W' ->
      let old_root = read_int c in
      let new_root = read_int c in
      let old_name = read_int c in
      let new_name = read_int c in
      Switch { old_root; new_root; old_name; new_name }
    | 'X' ->
      let active_txns =
        read_list c (fun c ->
            let t = read_int c in
            let l = read_int c in
            (t, l))
      in
      let rt_lk = read_int c in
      let rt_unit = read_opt c read_int in
      let rt_begin_lsn = read_int c in
      let rt_last_lsn = read_int c in
      let rt_ck = read_opt c read_int in
      let dirty_pages = read_list c read_int in
      Checkpoint
        { active_txns; reorg = { rt_lk; rt_unit; rt_begin_lsn; rt_last_lsn; rt_ck }; dirty_pages }
    | _ -> fail ()
  in
  if c.pos <> String.length s then fail ();
  body

let encoded_size body = String.length (encode body)

let txn_of = function
  | Txn_begin t | Txn_commit t | Txn_abort t -> Some t
  | Update { txn; _ }
  | Leaf_insert { txn; _ }
  | Leaf_delete { txn; _ }
  | Clr { txn; _ }
  | Nta_end { txn; _ }
  | Side_file { txn; _ } ->
    Some txn
  | Reorg_begin _ | Reorg_move _ | Reorg_modify _ | Reorg_end _ | Side_applied _ | Stable_key _
  | Switch _ | Checkpoint _ ->
    None

let pages_touched = function
  | Update { page; _ } | Leaf_insert { page; _ } | Leaf_delete { page; _ } -> [ page ]
  | Reorg_move { org; dest; _ } -> [ org; dest ]
  | Reorg_modify { base; _ } -> [ base ]
  | Clr { action = Undo_phys { page; _ }; _ } -> [ page ]
  | Txn_begin _ | Txn_commit _ | Txn_abort _ | Clr _ | Nta_end _ | Reorg_begin _ | Reorg_end _
  | Side_file _ | Side_applied _ | Stable_key _ | Switch _ | Checkpoint _ ->
    []

let reorg_type_to_string = function Compact -> "compact" | Swap -> "swap" | Move -> "move"

let pp_side_op ppf = function
  | Side_insert { key; child } -> Format.fprintf ppf "ins(%d->%d)" key child
  | Side_delete { key; child } -> Format.fprintf ppf "del(%d->%d)" key child

let pp ppf = function
  | Txn_begin t -> Format.fprintf ppf "BEGIN txn=%d" t
  | Txn_commit t -> Format.fprintf ppf "COMMIT txn=%d" t
  | Txn_abort t -> Format.fprintf ppf "ABORT txn=%d" t
  | Update { txn; page; off; before; after; _ } ->
    Format.fprintf ppf "UPDATE txn=%d page=%d off=%d len=%d/%d" txn page off
      (String.length before) (String.length after)
  | Leaf_insert { txn; page; key; _ } ->
    Format.fprintf ppf "LEAF-INSERT txn=%d page=%d key=%d" txn page key
  | Leaf_delete { txn; page; key; _ } ->
    Format.fprintf ppf "LEAF-DELETE txn=%d page=%d key=%d" txn page key
  | Clr { txn; action; undo_next } ->
    let a =
      match action with
      | Undo_insert { key } -> Printf.sprintf "undo-ins(%d)" key
      | Undo_delete { key; _ } -> Printf.sprintf "undo-del(%d)" key
      | Undo_side _ -> "undo-side"
      | Undo_phys { page; off; _ } -> Printf.sprintf "undo-phys(%d@%d)" page off
    in
    Format.fprintf ppf "CLR txn=%d %s undo-next=%d" txn a undo_next
  | Nta_end { txn; undo_next } ->
    Format.fprintf ppf "NTA-END txn=%d undo-next=%d" txn undo_next
  | Reorg_begin { unit_id; rtype; base_pages; leaf_pages } ->
    Format.fprintf ppf "REORG-BEGIN unit=%d type=%s bases=[%s] leaves=[%s]" unit_id
      (reorg_type_to_string rtype)
      (String.concat ";" (List.map string_of_int base_pages))
      (String.concat ";" (List.map string_of_int leaf_pages))
  | Reorg_move { unit_id; org; dest; payload; _ } ->
    let pl =
      match payload with
      | Full_records rs -> Printf.sprintf "%d records" (List.length rs)
      | Keys_only ks -> Printf.sprintf "%d keys" (List.length ks)
    in
    Format.fprintf ppf "REORG-MOVE unit=%d %d->%d (%s)" unit_id org dest pl
  | Reorg_modify { unit_id; base; edits; _ } ->
    Format.fprintf ppf "REORG-MODIFY unit=%d base=%d edits=%d" unit_id base (List.length edits)
  | Reorg_end { unit_id; largest_key; _ } ->
    Format.fprintf ppf "REORG-END unit=%d lk=%d" unit_id largest_key
  | Side_file { txn; op; _ } -> Format.fprintf ppf "SIDE txn=%d %a" txn pp_side_op op
  | Side_applied { op } -> Format.fprintf ppf "SIDE-APPLIED %a" pp_side_op op
  | Stable_key { key; new_root } -> Format.fprintf ppf "STABLE-KEY %d root=%d" key new_root
  | Switch { old_root; new_root; old_name; new_name } ->
    Format.fprintf ppf "SWITCH root %d->%d name %d->%d" old_root new_root old_name new_name
  | Checkpoint { active_txns; reorg; dirty_pages } ->
    Format.fprintf ppf "CHECKPOINT txns=%d reorg-unit=%s dirty=%d" (List.length active_txns)
      (match reorg.rt_unit with None -> "-" | Some u -> string_of_int u)
      (List.length dirty_pages)
