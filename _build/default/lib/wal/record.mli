(** Log record bodies.

    Three families of records coexist in the one log, as in the paper:

    - ordinary transaction records with physical redo/undo information
      ([Update], [Clr], begin/commit/abort);
    - the reorganizer's records from §5 — [Reorg_begin] (the BEGIN record
      listing every base and leaf page of the unit), [Reorg_move] (MOVE, whose
      payload is full record contents or, under careful writing, keys only),
      [Reorg_modify] (MODIFY, the base-page key/pointer changes) and
      [Reorg_end] (END);
    - internal-page-reorganization records from §7 — side-file activity,
      [Stable_key] stable points, and the final [Switch];
    - [Checkpoint], which carries the active-transaction table and the
      reorganizer's small system table (LK, BEGIN/most-recent LSNs, CK).

    Records are plain values; {!encode}/{!decode} give them a deterministic
    binary form used for log-size accounting (a first-class metric in the
    paper) and round-trip testing. *)

type txn_id = int
type key = int
type page_id = int

type reorg_type = Compact | Swap | Move

type move_payload =
  | Full_records of (key * string) list
      (** Record contents travel in the log — required for swaps. *)
  | Keys_only of key list
      (** Careful writing lets the log carry only the keys (§5). *)

type dest_init = {
  di_low_mark : key;
  di_prev : page_id;  (** {!Btree.Layout.nil_pid}-style sentinel handled by caller *)
  di_next : page_id;
}
(** Carried by the first MOVE of a new-place (copying-switching) unit: how to
    format the destination page if redo must recreate it from scratch. *)

type base_edit =
  | Insert_entry of { key : key; child : page_id }
  | Delete_entry of { key : key; child : page_id }
  | Update_entry of { org_key : key; org_child : page_id; new_key : key; new_child : page_id }

type side_op =
  | Side_insert of { key : key; child : page_id }
  | Side_delete of { key : key; child : page_id }

type reorg_table = {
  rt_lk : key;  (** largest key of the last finished reorganization unit *)
  rt_unit : int option;  (** id of the in-flight unit, if any *)
  rt_begin_lsn : Lsn.t;  (** BEGIN LSN of the in-flight unit ([Lsn.nil] if none) *)
  rt_last_lsn : Lsn.t;  (** most recent LSN of the in-flight unit *)
  rt_ck : key option;  (** CK: low mark of the base page pass 3 is reading *)
}
(** Image of the reorganizer's in-memory system table (§5), copied into every
    checkpoint record. *)

type clr_action =
  | Undo_insert of { key : key }  (** compensates a [Leaf_insert] *)
  | Undo_delete of { key : key; payload : string }  (** compensates a [Leaf_delete] *)
  | Undo_side of side_op  (** compensates a [Side_file] entry *)
  | Undo_phys of { page : page_id; off : int; bytes : string }
      (** physical compensation: restores the before-image of an [Update]
          belonging to a torn (unsealed) structural sequence *)

type body =
  | Txn_begin of txn_id
  | Txn_commit of txn_id
  | Txn_abort of txn_id
  | Update of {
      txn : txn_id;
      page : page_id;
      off : int;
      before : string;
      after : string;
      prev : Lsn.t;  (** previous record of the same transaction *)
    }
      (** Physical record used for structural changes (page splits,
          side-pointer maintenance, allocation kind bytes, meta-page
          updates).  A {e complete} structural sequence is sealed by
          [Nta_end] (a nested top action) and survives rollback; a torn one
          (crash before the seal reached the stable log, or a baseline
          reorganizer's aborted block operation) is undone physically from
          the before-images. *)
  | Leaf_insert of { txn : txn_id; page : page_id; key : key; payload : string; prev : Lsn.t }
      (** Logical, undoable record insertion (redo guarded by the page LSN;
          undo re-descends the tree, so it remains correct even if the
          reorganizer has moved the record since). *)
  | Leaf_delete of { txn : txn_id; page : page_id; key : key; payload : string; prev : Lsn.t }
  | Clr of { txn : txn_id; action : clr_action; undo_next : Lsn.t }
  | Nta_end of { txn : txn_id; undo_next : Lsn.t }
      (** Seals a nested top action: rollback jumps straight to [undo_next],
          leaving the sealed structural records in place (ARIES dummy CLR). *)
  | Reorg_begin of {
      unit_id : int;
      rtype : reorg_type;
      base_pages : page_id list;
      leaf_pages : page_id list;
    }
  | Reorg_move of {
      unit_id : int;
      org : page_id;
      dest : page_id;
      payload : move_payload;
      dest_init : dest_init option;
      prev : Lsn.t;
    }
  | Reorg_modify of { unit_id : int; base : page_id; edits : base_edit list; prev : Lsn.t }
  | Reorg_end of { unit_id : int; largest_key : key; prev : Lsn.t }
  | Side_file of { txn : txn_id; op : side_op; prev : Lsn.t }
  | Side_applied of { op : side_op }
  | Stable_key of { key : key; new_root : page_id }
  | Switch of { old_root : page_id; new_root : page_id; old_name : int; new_name : int }
  | Checkpoint of {
      active_txns : (txn_id * Lsn.t) list;
      reorg : reorg_table;
      dirty_pages : page_id list;
    }

val empty_reorg_table : reorg_table

val encode : body -> string
(** Deterministic binary encoding. *)

val decode : string -> body
(** Inverse of {!encode}.  Raises [Failure] on malformed input. *)

val encoded_size : body -> int

val txn_of : body -> txn_id option
(** The transaction a record belongs to, if any. *)

val pages_touched : body -> page_id list
(** Pages whose contents this record's redo may change. *)

val pp : Format.formatter -> body -> unit
val reorg_type_to_string : reorg_type -> string
