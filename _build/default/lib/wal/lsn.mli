(** Log sequence numbers.

    LSNs are dense positive integers assigned by the log manager; [nil] (= 0)
    means "no log record" and is what freshly formatted pages carry. *)

type t = int

val nil : t
val compare : t -> t -> int
val to_int64 : t -> int64
val of_int64 : int64 -> t
val pp : Format.formatter -> t -> unit
