lib/wal/lsn.ml: Format Int Int64
