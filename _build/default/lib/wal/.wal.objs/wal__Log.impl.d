lib/wal/log.ml: Array Lsn Record
