lib/wal/record.ml: Buffer Format Int64 List Lsn Printf String
