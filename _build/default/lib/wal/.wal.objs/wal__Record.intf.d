lib/wal/record.mli: Format Lsn
