lib/wal/log.mli: Lsn Record
