#!/bin/sh
# Repository check: formatting (when ocamlformat is available), build, tests.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check) =="
  dune build @fmt 2>/dev/null || {
    echo "formatting check failed; run 'dune fmt' to fix" >&2
    exit 1
  }
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (JSON schema) =="
BENCH_OUT=$(mktemp /tmp/bench_smoke.XXXXXX.json)
trap 'rm -f "$BENCH_OUT"' EXIT
BENCH_REV=ci-smoke dune exec bench/main.exe -- --json "$BENCH_OUT" table1 concurrency health >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BENCH_OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema_version"] == 2, "unexpected schema_version"
assert doc["revision"] == "ci-smoke", "BENCH_REV not propagated"
exps = doc["experiments"]
assert exps, "no experiments recorded"
conc = exps["concurrency"]
for path in [
    ("io", "reads"),
    ("pager", "hits"),
    ("lock", "acquires"),
    ("lock", "scan_steps"),
    ("engine", "ticks"),
]:
    v = conc[path[0]][path[1]]
    assert isinstance(v, int) and v > 0, "%s.%s should be a positive int, got %r" % (*path, v)
assert conc["wall_clock_s"] >= 0.0

# Schema v2: the health experiment carries a sampled time series.
series = exps["health"]["timeseries"]
assert series, "health experiment recorded no timeseries"
prev = -1
for snap in series:
    assert snap["at"] >= prev, "timeseries logical clock went backwards"
    prev = snap["at"]
    assert 0.0 <= snap["utilization"] <= 1.0, "utilization outside [0,1]"
    assert 0.0 <= snap["fragmentation"] <= 1.0, "fragmentation outside [0,1]"
    assert snap["leaves"] >= 0 and snap["backlog"] >= 0
fired = [name for snap in series for name in snap["fired"]]
assert fired, "no watch fired across the sparsification run"
print("bench JSON OK: %d experiment(s), %d health sample(s), watch fires: %s"
      % (len(exps), len(series), ",".join(sorted(set(fired)))))
EOF
elif command -v jq >/dev/null 2>&1; then
  test "$(jq -r .schema_version "$BENCH_OUT")" = 2
  test "$(jq -r '.experiments.concurrency.lock.acquires > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.concurrency.lock.scan_steps > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.concurrency.io.reads > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.concurrency.pager.hits > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.health.timeseries | length > 0' "$BENCH_OUT")" = true
  test "$(jq -r '[.experiments.health.timeseries[].utilization] | min >= 0 and max <= 1' "$BENCH_OUT")" = true
  test "$(jq -r '[.experiments.health.timeseries[].fired[]] | length > 0' "$BENCH_OUT")" = true
  echo "bench JSON OK (jq)"
else
  echo "python3/jq not available; skipping JSON validation" >&2
fi

echo "== torture sweep =="
dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 1 -n 120 >/dev/null
dune exec bin/reorg_cli.exe -- torture --seed 42 --stride 1 -n 120 >/dev/null
echo "torture OK"

echo "All checks passed."
