#!/bin/sh
# Repository check: formatting (when ocamlformat is available), build, tests.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check) =="
  dune build @fmt 2>/dev/null || {
    echo "formatting check failed; run 'dune fmt' to fix" >&2
    exit 1
  }
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== bench smoke (JSON schema) =="
BENCH_OUT=$(mktemp /tmp/bench_smoke.XXXXXX.json)
trap 'rm -f "$BENCH_OUT"' EXIT
BENCH_REV=ci-smoke dune exec bench/main.exe -- --json "$BENCH_OUT" table1 concurrency health shard groupcommit olc >/dev/null
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BENCH_OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)

assert doc["schema_version"] == 5, "unexpected schema_version"
assert doc["revision"] == "ci-smoke", "BENCH_REV not propagated"
exps = doc["experiments"]
assert exps, "no experiments recorded"
conc = exps["concurrency"]
for path in [
    ("io", "reads"),
    ("pager", "hits"),
    ("lock", "acquires"),
    ("lock", "scan_steps"),
    ("engine", "ticks"),
]:
    v = conc[path[0]][path[1]]
    assert isinstance(v, int) and v > 0, "%s.%s should be a positive int, got %r" % (*path, v)
assert conc["wall_clock_s"] >= 0.0

# Schema v2: the health experiment carries a sampled time series.
series = exps["health"]["timeseries"]
assert series, "health experiment recorded no timeseries"
prev = -1
for snap in series:
    assert snap["at"] >= prev, "timeseries logical clock went backwards"
    prev = snap["at"]
    assert 0.0 <= snap["utilization"] <= 1.0, "utilization outside [0,1]"
    assert 0.0 <= snap["fragmentation"] <= 1.0, "fragmentation outside [0,1]"
    assert snap["leaves"] >= 0 and snap["backlog"] >= 0
fired = [name for snap in series for name in snap["fired"]]
assert fired, "no watch fired across the sparsification run"

# Schema v3: the shard experiment carries the makespan sweep with a
# per-shard counter block per point, and totals that are exact sums.
sweep = exps["shard"]["shard_sweep"]
assert sweep, "shard experiment recorded no shard_sweep"
makespans = {}
for pt in sweep:
    n = pt["shards"]
    assert n >= 1, "shard count must be >= 1"
    arms = pt["per_shard"]
    assert len(arms) == n, "expected %d per-shard blocks, got %d" % (n, len(arms))
    assert [a["shard"] for a in arms] == list(range(n)), "per-shard blocks out of order"
    for field in ("ticks", "io_reads", "io_writes", "lock_acquires", "wal_records"):
        total = sum(a[field] for a in arms)
        assert pt["totals"][field] == total, (
            "totals.%s (%r) != sum of per-shard values (%r) at %d shards"
            % (field, pt["totals"][field], total, n))
    assert abs(pt["totals"]["io_cost"] - sum(a["io_cost"] for a in arms)) < 1e-6
    assert pt["parallel_makespan"] > 0 and pt["mixed_ticks"] > 0
    assert pt["user_committed"] > 0, "mixed phase committed no user transactions"
    makespans[n] = pt["parallel_makespan"]
assert 1 in makespans and 4 in makespans, "sweep must include 1 and 4 shards"
ratio = makespans[4] / makespans[1]
assert ratio <= 0.6, "4-shard makespan ratio %.2f exceeds 0.6" % ratio

# Schema v4: the groupcommit experiment carries one block per arm; the
# pipelined arm must force strictly less and write more sequentially than
# the sync arm at the identical workload table.
arms = {a["arm"]: a for a in exps["groupcommit"]["groupcommit"]}
assert set(arms) == {"sync", "pipelined"}, "expected sync and pipelined arms"
sync, piped = arms["sync"], arms["pipelined"]
assert piped["forced"] < sync["forced"], (
    "group commit did not reduce wal.forced: %d vs %d" % (piped["forced"], sync["forced"]))
assert piped["batches"] > 0 and piped["coalesced"] >= piped["batches"], \
    "pipelined arm batched no commits"
assert piped["max_batch"] >= 2, "no force covered more than one commit"
assert sync["batches"] == 0, "sync arm must not group-commit"
def seq_ratio(a):
    return a["seq_writes"] / max(1, a["rand_writes"])
assert seq_ratio(piped) > seq_ratio(sync), (
    "elevator did not improve the seq/rand write ratio: %.3f vs %.3f"
    % (seq_ratio(piped), seq_ratio(sync)))
assert piped["checkpoints"] > 0, "no fuzzy checkpoint taken"
assert piped["wal_truncated"] > 0, "checkpoints reclaimed no WAL records"
assert piped["user_committed"] > 0 and sync["user_committed"] > 0

# Schema v5: the olc experiment carries one block per reader arm; the
# optimistic arm must do the same reads (identical digests), shed at least
# 70% of the locked arm's S acquires, and show the fallback path firing.
assert isinstance(conc["lock"]["instant_checks"], int), "lock.instant_checks missing"
oarms = {a["arm"]: a for a in exps["olc"]["olc"]}
assert set(oarms) == {"locked", "olc"}, "expected locked and olc arms"
locked, olc = oarms["locked"], oarms["olc"]
assert locked["reads"] == olc["reads"] > 0, "arms read different operation counts"
assert locked["range_scans"] == olc["range_scans"] > 0
assert locked["digest"] == olc["digest"], (
    "optimistic results diverge from locked results: %08x vs %08x"
    % (locked["digest"], olc["digest"]))
assert locked["olc_reads"] == 0, "locked arm took the optimistic path"
assert olc["olc_reads"] > 0, "olc arm committed no optimistic reads"
s_ratio = olc["s_acquires"] / max(1, locked["s_acquires"])
assert s_ratio <= 0.30, (
    "OLC arm kept %.2fx of the locked arm's S acquires (want <= 0.30x: %d vs %d)"
    % (s_ratio, olc["s_acquires"], locked["s_acquires"]))
assert olc["fallbacks"] > 0, "no optimistic read ever fell back to the locked path"
assert olc["instant_checks"] > 0, "no non-enqueuing RX probe recorded"
assert olc["version_bumps"] > 0 and locked["version_bumps"] > 0

print("bench JSON OK: %d experiment(s), %d health sample(s), watch fires: %s, "
      "shard sweep %s (4/1 makespan %.2f), groupcommit forces %d->%d, "
      "seq/rand writes %.2f->%.2f, olc S acquires %d->%d (%.2fx, digests equal)"
      % (len(exps), len(series), ",".join(sorted(set(fired))),
         sorted(makespans), ratio, sync["forced"], piped["forced"],
         seq_ratio(sync), seq_ratio(piped),
         locked["s_acquires"], olc["s_acquires"], s_ratio))
EOF
elif command -v jq >/dev/null 2>&1; then
  test "$(jq -r .schema_version "$BENCH_OUT")" = 5
  test "$(jq -r '.experiments.concurrency.lock.acquires > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.concurrency.lock.scan_steps > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.concurrency.io.reads > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.concurrency.pager.hits > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.health.timeseries | length > 0' "$BENCH_OUT")" = true
  test "$(jq -r '[.experiments.health.timeseries[].utilization] | min >= 0 and max <= 1' "$BENCH_OUT")" = true
  test "$(jq -r '[.experiments.health.timeseries[].fired[]] | length > 0' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.shard.shard_sweep | length > 0' "$BENCH_OUT")" = true
  test "$(jq -r '[.experiments.shard.shard_sweep[] | (.per_shard | length) == .shards] | all' "$BENCH_OUT")" = true
  test "$(jq -r '[.experiments.shard.shard_sweep[] | .totals.ticks == ([.per_shard[].ticks] | add)] | all' "$BENCH_OUT")" = true
  test "$(jq -r '(.experiments.shard.shard_sweep | (map(select(.shards == 4))[0].parallel_makespan) / (map(select(.shards == 1))[0].parallel_makespan)) <= 0.6' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.groupcommit.groupcommit | (map(select(.arm == "pipelined"))[0].forced) < (map(select(.arm == "sync"))[0].forced)' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.groupcommit.groupcommit | map(select(.arm == "pipelined"))[0] | (.batches > 0) and (.coalesced >= .batches) and (.checkpoints > 0) and (.wal_truncated > 0)' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.groupcommit.groupcommit | ((map(select(.arm == "pipelined"))[0]) as $p | (map(select(.arm == "sync"))[0]) as $s | ($p.seq_writes / ([1, $p.rand_writes] | max)) > ($s.seq_writes / ([1, $s.rand_writes] | max)))' "$BENCH_OUT")" = true
  test "$(jq -r '.experiments.olc.olc | ((map(select(.arm == "olc"))[0]) as $o | (map(select(.arm == "locked"))[0]) as $l | ($o.digest == $l.digest) and ($o.reads == $l.reads) and ($o.olc_reads > 0) and ($o.fallbacks > 0) and ($o.s_acquires <= 0.30 * $l.s_acquires))' "$BENCH_OUT")" = true
  echo "bench JSON OK (jq)"
else
  echo "python3/jq not available; skipping JSON validation" >&2
fi

echo "== torture sweep =="
dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 1 -n 120 >/dev/null
dune exec bin/reorg_cli.exe -- torture --seed 42 --stride 1 -n 120 >/dev/null
echo "== torture sweep (async pipeline: group-commit windows, checkpoint truncation) =="
dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 7 -n 120 --users 2 --pipeline >/dev/null
dune exec bin/reorg_cli.exe -- torture --seed 42 --stride 7 -n 120 --users 2 --pipeline >/dev/null
echo "== torture sweep (optimistic readers: crashes inside lock-free descents) =="
dune exec bin/reorg_cli.exe -- torture --seed 7 --stride 17 -n 120 --users 2 --olc >/dev/null
echo "torture OK"

echo "== model conformance =="
dune exec bin/reorg_cli.exe -- model --seeds 11,23,42 --experiments workload
dune exec bin/reorg_cli.exe -- model --seeds 11 --experiments torture,shard --stride 1 -n 120
dune exec bin/reorg_cli.exe -- model --seeds 11 --experiments torture --stride 7 -n 120 --pipeline
dune exec bin/reorg_cli.exe -- model --seeds 11,23 --experiments workload --olc
dune exec bin/reorg_cli.exe -- model --seeds 7 --experiments torture --stride 29 -n 120 --olc
echo "== model mutation self-tests (must exit 2) =="
set +e
dune exec bin/reorg_cli.exe -- model --mutate table1 >/dev/null
rc=$?
set -e
test "$rc" -eq 2 || { echo "mutate table1: expected exit 2, got $rc" >&2; exit 1; }
set +e
dune exec bin/reorg_cli.exe -- model --mutate switch >/dev/null
rc=$?
set -e
test "$rc" -eq 2 || { echo "mutate switch: expected exit 2, got $rc" >&2; exit 1; }
set +e
dune exec bin/reorg_cli.exe -- model --mutate olc >/dev/null
rc=$?
set -e
test "$rc" -eq 2 || { echo "mutate olc: expected exit 2, got $rc" >&2; exit 1; }
echo "model OK"

echo "All checks passed."
