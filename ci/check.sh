#!/bin/sh
# Repository check: formatting (when ocamlformat is available), build, tests.
# Exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune fmt (check) =="
  dune build @fmt 2>/dev/null || {
    echo "formatting check failed; run 'dune fmt' to fix" >&2
    exit 1
  }
else
  echo "== ocamlformat not installed; skipping format check =="
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== torture sweep =="
dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 1 -n 120 >/dev/null
dune exec bin/reorg_cli.exe -- torture --seed 42 --stride 1 -n 120 >/dev/null
echo "torture OK"

echo "All checks passed."
