.PHONY: all build test check bench bench-json health shard groupcommit olc torture model clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: format check (if ocamlformat is installed) + build + tests.
check:
	sh ci/check.sh

bench:
	dune exec bench/main.exe

# Machine-readable baseline: every experiment + the microbenchmarks, written
# to BENCH_<rev>.json (schema documented in EXPERIMENTS.md).  Commit the file
# to give the next performance PR a before/after datapoint.
bench-json:
	REV=$$(git rev-parse --short HEAD) && \
	BENCH_REV=$$REV dune exec bench/main.exe -- --json BENCH_$$REV.json

# Online tree-health telemetry demo: sparsify a tree, reorganize it, and
# print the sampled utilization/fragmentation series with watch fires.
health:
	dune exec bench/main.exe -- health

# Keyspace-sharded engine: the 1/2/4/8-shard makespan sweep (S1), then a
# sharded workload through the router and cross-shard 2PL coordinator.
shard:
	dune exec bench/main.exe -- shard
	dune exec bin/reorg_cli.exe -- workload --shards 4 --users 6 -n 1200

# Group commit + async I/O pipeline: the sync-vs-pipelined G1 table, then
# crash sweeps with the pipeline attached (boundaries inside group-commit
# windows, fuzzy checkpoints truncating the WAL mid-workload).
groupcommit:
	dune exec bench/main.exe -- groupcommit
	dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 7 -n 120 --users 2 --pipeline
	dune exec bin/reorg_cli.exe -- model --seeds 11 --experiments torture --stride 7 -n 120 --pipeline

# Optimistic read path: the locked-vs-OLC R1 table (S acquires collapse,
# digests identical), crash sweeps with optimistic readers (crashes land
# inside lock-free descents; the epoch invalidates parked readers), and the
# conformance runs including the skipped-version-bump mutation self-test.
olc:
	dune exec bench/main.exe -- olc
	dune exec bin/reorg_cli.exe -- torture --seed 7 --stride 17 --users 2 --olc
	dune exec bin/reorg_cli.exe -- model --seeds 11,23 --experiments workload --olc
	dune exec bin/reorg_cli.exe -- model --seeds 7 --experiments torture --stride 29 -n 120 --olc
	dune exec bin/reorg_cli.exe -- model --mutate olc; test $$? -eq 2

# Exhaustive crash-point sweep: crash at every write boundary on three seeds,
# recover forward, verify.  Fast (in-memory disk), run it before shipping
# anything that touches the pager, WAL or recovery.
torture:
	dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- torture --seed 23 --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- torture --seed 42 --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- torture --seed 7 --stride 17 --users 2

# Protocol-model conformance: replay the seeded workloads and the stride-1
# crash sweep through the lib/model state machines, then prove the checker
# bites by running both mutation self-tests (which must exit 2).
model:
	dune exec bin/reorg_cli.exe -- model --seeds 11,23,42 --experiments workload
	dune exec bin/reorg_cli.exe -- model --seeds 11 --experiments torture,shard --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- model --mutate table1; test $$? -eq 2
	dune exec bin/reorg_cli.exe -- model --mutate switch; test $$? -eq 2

clean:
	dune clean
