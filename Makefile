.PHONY: all build test check bench torture clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: format check (if ocamlformat is installed) + build + tests.
check:
	sh ci/check.sh

bench:
	dune exec bench/main.exe

# Exhaustive crash-point sweep: crash at every write boundary on three seeds,
# recover forward, verify.  Fast (in-memory disk), run it before shipping
# anything that touches the pager, WAL or recovery.
torture:
	dune exec bin/reorg_cli.exe -- torture --seed 11 --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- torture --seed 23 --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- torture --seed 42 --stride 1 -n 120
	dune exec bin/reorg_cli.exe -- torture --seed 7 --stride 17 --users 2

clean:
	dune clean
