.PHONY: all build test check bench clean

all: build

build:
	dune build

test:
	dune runtest

# Full gate: format check (if ocamlformat is installed) + build + tests.
check:
	sh ci/check.sh

bench:
	dune exec bench/main.exe

clean:
	dune clean
