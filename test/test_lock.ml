(* Lock manager tests: the paper's Table 1, queueing/fairness, conversions,
   instant-duration requests, deadlock victim selection. *)

module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr

let page n = Resource.Page n

let granted = function `Granted -> true | `Conflict _ -> false

let test_table1_matches_compat () =
  (* Every Yes/No cell of the paper's Table 1 must agree with the compat
     function; blank cells are unconstrained. *)
  List.iter
    (fun g ->
      List.iter
        (fun r ->
          match Mode.paper_cell ~granted:g ~requested:r with
          | `Yes ->
            if not (Mode.compat g r) then
              Alcotest.failf "Table 1 says Yes for %s/%s" (Mode.to_string g) (Mode.to_string r)
          | `No ->
            if Mode.compat g r then
              Alcotest.failf "Table 1 says No for %s/%s" (Mode.to_string g) (Mode.to_string r)
          | `Blank -> ())
        Mode.all)
    Mode.all

let test_compat_symmetry () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check bool)
            (Printf.sprintf "sym %s/%s" (Mode.to_string a) (Mode.to_string b))
            (Mode.compat a b) (Mode.compat b a))
        Mode.all)
    Mode.all

let test_key_paper_cells () =
  (* The semantic rules the protocols rely on. *)
  Alcotest.(check bool) "R compatible with S" true (Mode.compat Mode.R Mode.S);
  Alcotest.(check bool) "RS conflicts with R" false (Mode.compat Mode.RS Mode.R);
  Alcotest.(check bool) "RX conflicts with S" false (Mode.compat Mode.RX Mode.S);
  Alcotest.(check bool) "RX conflicts with IS" false (Mode.compat Mode.RX Mode.IS);
  Alcotest.(check bool) "RX conflicts with RX" false (Mode.compat Mode.RX Mode.RX);
  Alcotest.(check bool) "RS passes S" true (Mode.compat Mode.S Mode.RS);
  Alcotest.(check bool) "IS/IX compatible" true (Mode.compat Mode.IS Mode.IX)


(* Exhaustive pairwise golden test: a third, literal transcription of
   Table 1 (blank cells carrying the documented conservative fill), checked
   cell-by-cell against BOTH the implementation's [Mode.compat] and the
   conformance model's [Model.Table1] matrix.  Implementation, model and
   this test can only all agree by all matching the paper. *)
let golden_order = [| Mode.IS; Mode.IX; Mode.S; Mode.X; Mode.R; Mode.RX; Mode.RS |]

let golden =
  [|
    (* IS *) [| true; true; true; false; true; false; true |];
    (* IX *) [| true; true; false; false; false; false; true |];
    (* S  *) [| true; false; true; false; true; false; true |];
    (* X  *) [| false; false; false; false; false; false; false |];
    (* R  *) [| true; false; true; false; true; false; false |];
    (* RX *) [| false; false; false; false; false; false; false |];
    (* RS *) [| true; true; true; false; false; false; false |];
  |]

let test_golden_matrix () =
  Array.iteri
    (fun i g ->
      Array.iteri
        (fun j r ->
          let want = golden.(i).(j) in
          Alcotest.(check bool)
            (Printf.sprintf "Mode.compat %s/%s" (Mode.to_string g) (Mode.to_string r))
            want (Mode.compat g r);
          Alcotest.(check bool)
            (Printf.sprintf "Table1.compatible %s/%s" (Mode.to_string g) (Mode.to_string r))
            want
            (Model.Table1.compatible g r))
        golden_order)
    golden_order;
  Alcotest.(check int) "model matrix order" (Array.length Model.Table1.order)
    (Array.length golden_order);
  Array.iteri
    (fun i m -> Alcotest.(check bool) "order agrees" true (m = golden_order.(i)))
    Model.Table1.order

let test_golden_upgrades () =
  (* The strengthening conversions the system performs, exhaustively. *)
  let legal =
    [
      (Mode.IS, Mode.IX);
      (Mode.IS, Mode.S);
      (Mode.IS, Mode.X);
      (Mode.IX, Mode.X);
      (Mode.S, Mode.X);
      (Mode.R, Mode.X);
    ]
  in
  List.iter
    (fun from_ ->
      List.iter
        (fun to_ ->
          let want = List.mem (from_, to_) legal in
          Alcotest.(check bool)
            (Printf.sprintf "upgrade %s->%s" (Mode.to_string from_) (Mode.to_string to_))
            want
            (Model.Table1.upgrade_legal ~from_ ~to_))
        Mode.all)
    Mode.all;
  (* And the covering relation the re-entrant grant path uses. *)
  List.iter
    (fun held ->
      List.iter
        (fun need ->
          Alcotest.(check bool)
            (Printf.sprintf "covers %s/%s" (Mode.to_string held) (Mode.to_string need))
            (Mode.covers ~held ~need)
            (Model.Table1.covers ~held ~need))
        Mode.all)
    Mode.all

let test_basic_grant_conflict () =
  let m = Lock_mgr.create () in
  Alcotest.(check bool) "S granted" true (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.S));
  Alcotest.(check bool) "S+S ok" true (granted (Lock_mgr.try_acquire m ~owner:2 (page 1) Mode.S));
  (match Lock_mgr.try_acquire m ~owner:3 (page 1) Mode.X with
  | `Granted -> Alcotest.fail "X should conflict"
  | `Conflict blockers ->
    Alcotest.(check int) "two blockers" 2 (List.length blockers));
  Lock_mgr.release m ~owner:1 (page 1) Mode.S;
  Lock_mgr.release m ~owner:2 (page 1) Mode.S;
  Alcotest.(check bool) "X after release" true
    (granted (Lock_mgr.try_acquire m ~owner:3 (page 1) Mode.X))

let test_reentrant () =
  let m = Lock_mgr.create () in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X));
  Alcotest.(check bool) "reacquire own X" true
    (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X));
  Alcotest.(check bool) "covered S under X" true
    (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.S))

let test_fifo_no_overtake () =
  let m = Lock_mgr.create () in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X));
  let w2 = ref false in
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.X ~instant:false ~wake:(fun _ -> w2 := true);
  (* A new S request must not overtake the queued X. *)
  (match Lock_mgr.try_acquire m ~owner:3 (page 1) Mode.S with
  | `Granted -> Alcotest.fail "S overtook queued X"
  | `Conflict _ -> ());
  Lock_mgr.release m ~owner:1 (page 1) Mode.X;
  Alcotest.(check bool) "queued X granted" true !w2;
  Alcotest.(check (list (pair int (list string))))
    "owner 2 holds X"
    [ (2, [ "X" ]) ]
    (List.map (fun (o, ms) -> (o, List.map Mode.to_string ms)) (Lock_mgr.holders m (page 1)))

let test_conversion_jumps_queue () =
  let m = Lock_mgr.create () in
  (* Reorganizer holds R; a reader queues S... wait, S and R are compatible.
     Use: owner 1 holds S, owner 2 queues X, owner 1 converts S->X: the
     conversion waits only for holders, not behind owner 2. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.S));
  assert (granted (Lock_mgr.try_acquire m ~owner:9 (page 1) Mode.S));
  let w2 = ref false in
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.X ~instant:false ~wake:(fun _ -> w2 := true);
  let w1 = ref false in
  (match Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X with
  | `Granted -> Alcotest.fail "conversion should wait for owner 9"
  | `Conflict _ -> ());
  Lock_mgr.enqueue m ~owner:1 (page 1) Mode.X ~instant:false ~wake:(fun _ -> w1 := true);
  Lock_mgr.release m ~owner:9 (page 1) Mode.S;
  Alcotest.(check bool) "conversion granted first" true !w1;
  Alcotest.(check bool) "plain X still waiting" false !w2

let test_instant_duration () =
  let m = Lock_mgr.create () in
  (* Reorganizer (owner 1) holds R on a base page; a reader's RS is instant:
     signalled when R is released, never granted. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.R));
  let signalled = ref false in
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.RS ~instant:true ~wake:(fun g ->
      signalled := g = Lock_mgr.Granted);
  Alcotest.(check bool) "not yet" false !signalled;
  Lock_mgr.release m ~owner:1 (page 1) Mode.R;
  Alcotest.(check bool) "signalled" true !signalled;
  Alcotest.(check (list (pair int (list string)))) "nothing held" []
    (List.map (fun (o, ms) -> (o, List.map Mode.to_string ms)) (Lock_mgr.holders m (page 1)))

let test_rs_passes_s_holders () =
  let m = Lock_mgr.create () in
  (* RS only conflicts with R/X: with only S holders it is signalled at
     enqueue-processing time. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.S));
  assert (granted (Lock_mgr.try_acquire m ~owner:2 (page 1) Mode.R));
  let signalled = ref false in
  Lock_mgr.enqueue m ~owner:3 (page 1) Mode.RS ~instant:true ~wake:(fun _ -> signalled := true);
  Lock_mgr.release m ~owner:2 (page 1) Mode.R;
  Alcotest.(check bool) "signalled with S still held" true !signalled

let test_deadlock_prefers_reorganizer () =
  let m = Lock_mgr.create () in
  Lock_mgr.register_reorganizer m 100;
  (* Reader 1 holds S on A; reorganizer holds RX on B; reader 1 waits for B
     (it would conflict), reorganizer then waits for A -> cycle; the
     reorganizer must be the victim. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.S));
  assert (granted (Lock_mgr.try_acquire m ~owner:100 (page 2) Mode.RX));
  let r1 = ref None in
  Lock_mgr.enqueue m ~owner:1 (page 2) Mode.S ~instant:false ~wake:(fun g -> r1 := Some g);
  let r100 = ref None in
  Lock_mgr.enqueue m ~owner:100 (page 1) Mode.RX ~instant:false ~wake:(fun g -> r100 := Some g);
  Alcotest.(check bool) "reorganizer is victim" true (!r100 = Some Lock_mgr.Deadlock);
  Alcotest.(check bool) "reader still waiting" true (!r1 = None);
  (* Reorganizer gives up its locks; the reader proceeds. *)
  Lock_mgr.release_all m ~owner:100;
  Alcotest.(check bool) "reader granted" true (!r1 = Some Lock_mgr.Granted)

let test_deadlock_user_user () =
  let m = Lock_mgr.create () in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X));
  assert (granted (Lock_mgr.try_acquire m ~owner:2 (page 2) Mode.X));
  let r1 = ref None and r2 = ref None in
  Lock_mgr.enqueue m ~owner:1 (page 2) Mode.X ~instant:false ~wake:(fun g -> r1 := Some g);
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.X ~instant:false ~wake:(fun g -> r2 := Some g);
  (* The requester that closed the cycle (owner 2) is the victim. *)
  Alcotest.(check bool) "victim chosen" true (!r2 = Some Lock_mgr.Deadlock);
  Alcotest.(check bool) "other keeps waiting" true (!r1 = None);
  Alcotest.(check int) "deadlocks counted" 1 (Lock_mgr.stats m).Lock_mgr.deadlocks

let test_release_all_wakes () =
  let m = Lock_mgr.create () in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X));
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 2) Mode.X));
  let got = ref 0 in
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.S ~instant:false ~wake:(fun _ -> incr got);
  Lock_mgr.release_all m ~owner:1;
  Alcotest.(check int) "woken" 1 !got;
  Alcotest.(check int) "owner 1 holds nothing" 0 (Lock_mgr.locked_count m ~owner:1)

let test_downgrade () =
  let m = Lock_mgr.create () in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.X));
  let woken = ref false in
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.S ~instant:false ~wake:(fun _ -> woken := true);
  Lock_mgr.downgrade m ~owner:1 (page 1) ~from_:Mode.X ~to_:Mode.IS;
  Alcotest.(check bool) "S granted after downgrade to IS" true !woken

let test_tree_lock_drain_pattern () =
  (* §7.4: the reorganizer X-locks the old tree name; since every transaction
     using the old tree holds an intention lock on it, the X is granted only
     when they have all finished. *)
  let m = Lock_mgr.create () in
  let tree = Resource.Tree 1 in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 tree Mode.IS));
  assert (granted (Lock_mgr.try_acquire m ~owner:2 tree Mode.IX));
  let drained = ref false in
  Lock_mgr.enqueue m ~owner:100 tree Mode.X ~instant:false ~wake:(fun _ -> drained := true);
  Lock_mgr.release m ~owner:1 tree Mode.IS;
  Alcotest.(check bool) "still one user" false !drained;
  Lock_mgr.release m ~owner:2 tree Mode.IX;
  Alcotest.(check bool) "drained" true !drained

let test_gauges_map_to_like_named_counters () =
  (* Pin the gauge wiring: each registered gauge must read the stats field of
     the same name.  Historically give_ups and cancelled_waits were swapped. *)
  let m = Lock_mgr.create () in
  let reg = Obs.Registry.create () in
  Lock_mgr.register_obs m reg;
  (* Instant-duration give-up: owner 1 holds R, owner 2's instant RS is
     signalled when R goes away. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.R));
  Lock_mgr.enqueue m ~owner:2 (page 1) Mode.RS ~instant:true ~wake:(fun _ -> ());
  Lock_mgr.release m ~owner:1 (page 1) Mode.R;
  (* Cancelled wait: owner 3 holds X, owner 4 queues, the switch time limit
     cancels it from outside. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:3 (page 2) Mode.X));
  Lock_mgr.enqueue m ~owner:4 (page 2) Mode.X ~instant:false ~wake:(fun _ -> ());
  Alcotest.(check bool) "wait cancelled" true (Lock_mgr.cancel_wait m ~owner:4);
  let s = Lock_mgr.stats m in
  Alcotest.(check int) "instant_signals" 1 s.Lock_mgr.instant_signals;
  Alcotest.(check int) "give_ups" 1 s.Lock_mgr.give_ups;
  Alcotest.(check int) "cancelled_waits" 1 s.Lock_mgr.cancelled_waits;
  let gauge name =
    match Obs.Registry.value reg name with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s not registered" name
  in
  List.iter
    (fun (name, field) ->
      Alcotest.(check int) (name ^ " reads its stats field") field (gauge name))
    [
      ("lock.acquires", s.Lock_mgr.acquires);
      ("lock.releases", s.Lock_mgr.releases);
      ("lock.waits", s.Lock_mgr.waits);
      ("lock.grants_after_wait", s.Lock_mgr.grants_after_wait);
      ("lock.instant_signals", s.Lock_mgr.instant_signals);
      ("lock.give_ups", s.Lock_mgr.give_ups);
      ("lock.cancelled_waits", s.Lock_mgr.cancelled_waits);
      ("lock.deadlocks", s.Lock_mgr.deadlocks);
      ("lock.scan_steps", s.Lock_mgr.scan_steps);
    ]

let test_locked_counts () =
  let m = Lock_mgr.create () in
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 1) Mode.S));
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 2) Mode.S));
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 3) Mode.X));
  (* Re-acquiring / adding a mode on a held resource is not a new resource. *)
  assert (granted (Lock_mgr.try_acquire m ~owner:1 (page 3) Mode.S));
  Alcotest.(check int) "three distinct" 3 (Lock_mgr.locked_count m ~owner:1);
  Alcotest.(check int) "high-water" 3 (Lock_mgr.max_locked_count m ~owner:1);
  Lock_mgr.release m ~owner:1 (page 1) Mode.S;
  Alcotest.(check int) "down to two" 2 (Lock_mgr.locked_count m ~owner:1);
  Alcotest.(check int) "high-water sticks" 3 (Lock_mgr.max_locked_count m ~owner:1);
  Lock_mgr.release_all m ~owner:1;
  Alcotest.(check int) "empty" 0 (Lock_mgr.locked_count m ~owner:1)

let test_scan_steps_counts_work () =
  let m = Lock_mgr.create () in
  for i = 1 to 5 do
    assert (granted (Lock_mgr.try_acquire m ~owner:i (page 1) Mode.S))
  done;
  let s = Lock_mgr.stats m in
  Alcotest.(check bool) "work was charged" true (s.Lock_mgr.scan_steps > 0);
  Lock_mgr.reset_stats m;
  Alcotest.(check int) "reset zeroes it" 0 (Lock_mgr.stats m).Lock_mgr.scan_steps

(* Property: under random acquire/release/enqueue traffic, no two
   incompatible modes are ever held on one resource, and every grant the
   manager reports corresponds to a compatible state. *)
let lock_invariant_prop =
  QCheck.Test.make ~name:"no incompatible co-holders" ~count:200
    QCheck.(
      make
        Gen.(
          list_size (int_bound 120)
            (triple (int_range 1 6) (int_bound 3) (int_bound 5))))
    (fun ops ->
      let m = Lock_mgr.create () in
      let held : (int * Resource.t * Mode.t) list ref = ref [] in
      let modes = [| Mode.IS; Mode.IX; Mode.S; Mode.X; Mode.R; Mode.RX |] in
      List.iter
        (fun (owner, res_i, mode_i) ->
          let res = page res_i in
          let mode = modes.(mode_i) in
          if List.exists (fun (o, r, m') -> o = owner && r = res && m' = mode) !held then begin
            Lock_mgr.release m ~owner res mode;
            held :=
              (let dropped = ref false in
               List.filter
                 (fun (o, r, m') ->
                   if (not !dropped) && o = owner && r = res && m' = mode then begin
                     dropped := true;
                     false
                   end
                   else true)
                 !held)
          end
          else begin
            match Lock_mgr.try_acquire m ~owner res mode with
            | `Granted -> held := (owner, res, mode) :: !held
            | `Conflict _ -> ()
          end;
          (* Check the global invariant after every step. *)
          List.iter
            (fun (o1, r1, m1) ->
              List.iter
                (fun (o2, r2, m2) ->
                  if o1 <> o2 && Resource.equal r1 r2 && not (Mode.compat m1 m2) then
                    QCheck.Test.fail_reportf "incompatible co-holders %s/%s on %s"
                      (Mode.to_string m1) (Mode.to_string m2) (Resource.to_string r1))
                !held)
            !held)
        ops;
      true)

let () =
  Alcotest.run "lock"
    [
      ( "table1",
        [
          Alcotest.test_case "matches paper" `Quick test_table1_matches_compat;
          Alcotest.test_case "symmetry" `Quick test_compat_symmetry;
          Alcotest.test_case "key cells" `Quick test_key_paper_cells;
          Alcotest.test_case "golden matrix (impl+model)" `Quick test_golden_matrix;
          Alcotest.test_case "golden upgrades/covers" `Quick test_golden_upgrades;
        ] );
      ( "manager",
        [
          Alcotest.test_case "grant/conflict" `Quick test_basic_grant_conflict;
          Alcotest.test_case "reentrant" `Quick test_reentrant;
          Alcotest.test_case "fifo fairness" `Quick test_fifo_no_overtake;
          Alcotest.test_case "conversion priority" `Quick test_conversion_jumps_queue;
          Alcotest.test_case "instant duration" `Quick test_instant_duration;
          Alcotest.test_case "RS vs S holders" `Quick test_rs_passes_s_holders;
          Alcotest.test_case "release_all wakes" `Quick test_release_all_wakes;
          Alcotest.test_case "downgrade" `Quick test_downgrade;
          Alcotest.test_case "tree lock drain" `Quick test_tree_lock_drain_pattern;
          Alcotest.test_case "gauge wiring" `Quick test_gauges_map_to_like_named_counters;
          Alcotest.test_case "locked counts" `Quick test_locked_counts;
          Alcotest.test_case "scan steps" `Quick test_scan_steps_counts_work;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "reorganizer victim" `Quick test_deadlock_prefers_reorganizer;
          Alcotest.test_case "user-user victim" `Quick test_deadlock_user_user;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest lock_invariant_prop ]);
    ]
