(* Component tests for the reorganizer's internals: the §5 system table,
   Find-Free-Space, the side file, the pass-3 builder, and direct execution
   of individual reorganization units. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Txn_mgr = Transact.Txn_mgr
module Record = Wal.Record
module Db = Sim.Db
module Ctx = Reorg.Ctx
module Rtable = Reorg.Rtable
module Unit_exec = Reorg.Unit_exec
module Side_file = Reorg.Side_file
module Builder = Reorg.Builder

let payload = Db.payload_for

let mk_ctx ?(config = Reorg.Config.default) db = Ctx.make ~access:db.Db.access ~config ()

let in_engine f =
  let eng = Engine.create () in
  let result = ref None in
  Engine.spawn eng (fun () -> result := Some (f ()));
  Engine.run eng;
  match !result with Some r -> r | None -> Alcotest.fail "process did not finish"

(* ---------------- rtable ---------------- *)

let test_rtable_lifecycle () =
  let rt = Rtable.create () in
  Alcotest.(check int) "initial LK" min_int (Rtable.lk rt);
  Alcotest.(check (option int)) "no unit" None (Rtable.in_flight rt);
  let u = Rtable.next_unit_id rt in
  Rtable.begin_unit rt ~unit_id:u ~begin_lsn:10;
  Alcotest.(check (option int)) "in flight" (Some u) (Rtable.in_flight rt);
  Rtable.note_lsn rt 12;
  Alcotest.(check int) "last lsn" 12 (Rtable.last_lsn rt);
  Rtable.end_unit rt ~largest_key:99;
  Alcotest.(check int) "LK advanced" 99 (Rtable.lk rt);
  Rtable.end_unit rt ~largest_key:50;
  Alcotest.(check int) "LK monotone" 99 (Rtable.lk rt);
  (* image/restore round-trip *)
  Rtable.set_ck rt (Some 77);
  let img = Rtable.image rt in
  let rt2 = Rtable.create () in
  Rtable.restore rt2 img;
  Alcotest.(check int) "restored LK" 99 (Rtable.lk rt2);
  Alcotest.(check (option int)) "restored CK" (Some 77) (Rtable.ck rt2)

(* ---------------- free space ---------------- *)

let test_free_space_policies () =
  let db = Db.create ~leaf_pages:64 () in
  let ctx_paper = mk_ctx db in
  let ctx_ff =
    mk_ctx ~config:{ Reorg.Config.default with heuristic = Reorg.Config.First_free } db
  in
  let ctx_none =
    mk_ctx ~config:{ Reorg.Config.default with heuristic = Reorg.Config.No_new_place } db
  in
  (* Claim pages so that frees are at 5, 9, 30. *)
  let lo, hi = Pager.Alloc.leaf_zone db.Db.alloc in
  for pid = lo to hi - 1 do
    if pid <> 5 && pid <> 9 && pid <> 30 && Pager.Alloc.is_free db.Db.alloc pid then begin
      Pager.Alloc.alloc_specific db.Db.alloc pid;
      let p = Pager.Buffer_pool.get db.Db.pool pid in
      Pager.Page.set_kind p 1;
      Pager.Buffer_pool.mark_dirty db.Db.pool pid
    end
  done;
  (* Paper: first free in (L, C). *)
  Alcotest.(check (option int)) "paper window hit" (Some 9)
    (Reorg.Free_space.choose ctx_paper ~l:7 ~c:20);
  Alcotest.(check (option int)) "paper window empty" None
    (Reorg.Free_space.choose ctx_paper ~l:10 ~c:25);
  Alcotest.(check (option int)) "paper excludes L and below" (Some 30)
    (Reorg.Free_space.choose ctx_paper ~l:9 ~c:40);
  (* First-free: smallest anywhere, window ignored. *)
  Alcotest.(check (option int)) "first-free" (Some 5)
    (Reorg.Free_space.choose ctx_ff ~l:10 ~c:25);
  (* No-new-place: always None. *)
  Alcotest.(check (option int)) "no-new-place" None
    (Reorg.Free_space.choose ctx_none ~l:7 ~c:20)

(* ---------------- side file ---------------- *)

let test_side_file_append_take () =
  let db = Db.create () in
  let side = Side_file.create ~journal:db.Db.journal ~locks:db.Db.locks in
  in_engine (fun () ->
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      let r1 = Side_file.append side ~txn:tx (Record.Side_insert { key = 5; child = 10 }) in
      let r2 = Side_file.append side ~txn:tx (Record.Side_delete { key = 7; child = 11 }) in
      Alcotest.(check bool) "accepted" true (r1 = `Accepted && r2 = `Accepted);
      Txn_mgr.commit db.Db.mgr tx);
  Alcotest.(check int) "size" 2 (Side_file.size side);
  (* FIFO drain. *)
  (match Side_file.take side with
  | Some (Record.Side_insert { key = 5; _ }) -> ()
  | _ -> Alcotest.fail "expected oldest first");
  Alcotest.(check int) "one left" 1 (Side_file.size side);
  (* Side_applied was logged for the taken entry. *)
  Wal.Log.force_all db.Db.log;
  let applied = ref 0 in
  Wal.Log.iter db.Db.log (fun _ b ->
      match b with Record.Side_applied _ -> incr applied | _ -> ());
  Alcotest.(check int) "applied logged" 1 !applied

let test_side_file_abort_removes_entry () =
  let db = Db.create () in
  let side = Side_file.create ~journal:db.Db.journal ~locks:db.Db.locks in
  Btree.Access.set_side_undo db.Db.access (Side_file.remove side);
  in_engine (fun () ->
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      ignore (Side_file.append side ~txn:tx (Record.Side_insert { key = 5; child = 10 }));
      Txn_mgr.abort db.Db.mgr tx);
  Alcotest.(check int) "entry removed by CLR" 0 (Side_file.size side)

let test_side_file_redirect_during_switch () =
  let db = Db.create () in
  let side = Side_file.create ~journal:db.Db.journal ~locks:db.Db.locks in
  let reorg = Txn_mgr.fresh_owner db.Db.mgr in
  in_engine (fun () ->
      (* Reorganizer holds X on the side file (switching). *)
      Transact.Lock_client.acquire db.Db.locks ~txn:reorg Lockmgr.Resource.Side_file
        Lockmgr.Mode.X;
      let result = ref None in
      Engine.spawn_child (fun () ->
          let tx = Txn_mgr.begin_txn db.Db.mgr in
          result := Some (Side_file.append side ~txn:tx (Record.Side_insert { key = 1; child = 2 }));
          Txn_mgr.commit db.Db.mgr tx);
      Engine.sleep 5;
      Alcotest.(check bool) "updater parked during switch" true (!result = None);
      Transact.Lock_client.release db.Db.locks ~txn:reorg Lockmgr.Resource.Side_file
        Lockmgr.Mode.X;
      Engine.sleep 5;
      Alcotest.(check bool) "redirected after switch" true (!result = Some `Redirect);
      Alcotest.(check int) "nothing appended" 0 (Side_file.size side))

(* ---------------- builder ---------------- *)

let test_builder_packs_and_finalizes () =
  let db = Db.create ~page_size:512 () in
  let ctx = mk_ctx db in
  let builder = Builder.create ctx ~gen:3 in
  (* Feed 100 fake base entries (children ids are arbitrary distinct). *)
  for i = 0 to 99 do
    Builder.feed builder ~key:(10 * i) ~child:(1000 + i)
  done;
  let root = Builder.finalize builder in
  let p = Pager.Buffer_pool.get db.Db.pool root in
  Alcotest.(check bool) "root is internal" true (Inode.is_internal p);
  Alcotest.(check int) "generation tagged" 3 (Inode.generation p);
  (* All 100 entries reachable below the root, in order. *)
  let collected = ref [] in
  let rec walk pid =
    let p = Pager.Buffer_pool.get db.Db.pool pid in
    if Inode.level p = 1 then
      List.iter (fun e -> collected := e.Inode.child :: !collected) (Inode.entries p)
    else List.iter (fun e -> walk e.Inode.child) (Inode.entries p)
  in
  walk root;
  Alcotest.(check (list int)) "children in order"
    (List.init 100 (fun i -> 1000 + i))
    (List.rev !collected);
  (* New pages are durable after finalize. *)
  Alcotest.(check bool) "root durable" true (Pager.Buffer_pool.is_durable db.Db.pool root)

let test_builder_stable_point_seals () =
  let db = Db.create ~page_size:512 () in
  let ctx = mk_ctx db in
  let builder = Builder.create ctx ~gen:2 in
  for i = 0 to 9 do
    Builder.feed builder ~key:(10 * i) ~child:(1000 + i)
  done;
  Builder.stable_point builder ~next_key:100;
  let closed = Builder.closed_pages builder in
  Alcotest.(check bool) "partial page sealed" true (List.length closed >= 1);
  (* Sealed pages are on disk and a Stable_key record is forced. *)
  List.iter
    (fun (_, pid) ->
      Alcotest.(check bool) "sealed page durable" true
        (Pager.Buffer_pool.is_durable db.Db.pool pid))
    closed;
  let found = ref false in
  Wal.Log.iter db.Db.log (fun _ b ->
      match b with Record.Stable_key { key = 100; _ } -> found := true | _ -> ());
  Alcotest.(check bool) "stable key logged + forced" true !found;
  (* Restore from the sealed pages continues seamlessly. *)
  let builder2 = Builder.restore ctx ~gen:2 ~closed in
  for i = 10 to 19 do
    Builder.feed builder2 ~key:(10 * i) ~child:(1000 + i)
  done;
  let root = Builder.finalize builder2 in
  let collected = ref 0 in
  let rec walk pid =
    let p = Pager.Buffer_pool.get db.Db.pool pid in
    if Inode.level p = 1 then collected := !collected + Inode.nentries p
    else List.iter (fun e -> walk e.Inode.child) (Inode.entries p)
  in
  walk root;
  Alcotest.(check int) "all entries present after resume" 20 !collected

(* ---------------- unit executor ---------------- *)

let mk_tree_db () =
  let db = Db.create ~leaf_pages:512 () in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to 599 do
    Tree.insert db.Db.tree ~txn:tx ~key:(2 * k) ~payload:(payload (2 * k)) ()
  done;
  (* Thin every leaf so compaction has work. *)
  for k = 0 to 599 do
    if k mod 3 <> 0 then ignore (Tree.delete db.Db.tree ~txn:tx (2 * k))
  done;
  Txn_mgr.commit db.Db.mgr tx;
  db

let test_compact_unit_direct () =
  let db = mk_tree_db () in
  let ctx = mk_ctx db in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 0) in
  let bp = Tree.page db.Db.tree base in
  let leaves =
    List.filteri (fun i _ -> i < 3) (List.map (fun e -> e.Inode.child) (Inode.entries bp))
  in
  let dest = List.hd leaves in
  let before = Btree.Invariant.contents db.Db.tree in
  let outcome =
    in_engine (fun () ->
        Unit_exec.execute ctx (Unit_exec.Compact { base; leaves; dest = `In_place dest }))
  in
  (match outcome with
  | Unit_exec.Done k -> Alcotest.(check bool) "largest key sane" true (k >= 0)
  | _ -> Alcotest.fail "expected Done");
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Alcotest.(check bool) "contents preserved" true
    (Btree.Invariant.contents db.Db.tree = before);
  (* The unit logged BEGIN/MOVE/MODIFY/END. *)
  Wal.Log.force_all db.Db.log;
  let kinds = ref [] in
  Wal.Log.iter db.Db.log (fun _ b ->
      match b with
      | Record.Reorg_begin _ -> kinds := "B" :: !kinds
      | Record.Reorg_move _ -> kinds := "M" :: !kinds
      | Record.Reorg_modify _ -> kinds := "D" :: !kinds
      | Record.Reorg_end _ -> kinds := "E" :: !kinds
      | _ -> ());
  (match List.rev !kinds with
  | "B" :: rest ->
    Alcotest.(check bool) "ends with END" true (List.nth rest (List.length rest - 1) = "E")
  | _ -> Alcotest.fail "expected BEGIN first");
  Alcotest.(check int) "locks all released" 0
    (Lockmgr.Lock_mgr.locked_count db.Db.locks ~owner:ctx.Ctx.actor.Transact.Txn.id)

let test_swap_unit_direct () =
  let db = mk_tree_db () in
  let ctx = mk_ctx db in
  let pids = Tree.leaf_pids db.Db.tree in
  let a = List.nth pids 1 and b = List.nth pids 5 in
  let key_of pid =
    match Leaf.min_key (Tree.page db.Db.tree pid) with Some k -> k | None -> 0
  in
  let a_base = Option.get (Tree.parent_of_leaf db.Db.tree (key_of a)) in
  let b_base = Option.get (Tree.parent_of_leaf db.Db.tree (key_of b)) in
  let before = Btree.Invariant.contents db.Db.tree in
  let outcome =
    in_engine (fun () -> Unit_exec.execute ctx (Unit_exec.Swap { a_base; a; b_base; b }))
  in
  Alcotest.(check bool) "done" true (match outcome with Unit_exec.Done _ -> true | _ -> false);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Alcotest.(check bool) "contents preserved" true
    (Btree.Invariant.contents db.Db.tree = before);
  (* Physical positions swapped. *)
  let pids' = Tree.leaf_pids db.Db.tree in
  Alcotest.(check int) "b at a's position" b (List.nth pids' 1);
  Alcotest.(check int) "a at b's position" a (List.nth pids' 5)

let test_move_unit_direct () =
  let db = mk_tree_db () in
  let ctx = mk_ctx db in
  let pids = Tree.leaf_pids db.Db.tree in
  let org = List.nth pids 2 in
  let key_of pid =
    match Leaf.min_key (Tree.page db.Db.tree pid) with Some k -> k | None -> 0
  in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree (key_of org)) in
  let lo, hi = Pager.Alloc.leaf_zone db.Db.alloc in
  let dest = Option.get (Pager.Alloc.free_in_range db.Db.alloc ~lo ~hi) in
  let before = Btree.Invariant.contents db.Db.tree in
  let outcome =
    in_engine (fun () -> Unit_exec.execute ctx (Unit_exec.Move { base; org; dest }))
  in
  Alcotest.(check bool) "done" true (match outcome with Unit_exec.Done _ -> true | _ -> false);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Alcotest.(check bool) "contents preserved" true
    (Btree.Invariant.contents db.Db.tree = before);
  Alcotest.(check bool) "org now free-or-pending" true
    (Pager.Alloc.is_free db.Db.alloc org
    || Pager.Alloc.pending_release db.Db.alloc org <> None);
  Alcotest.(check bool) "dest is a leaf now" true (Leaf.is_leaf (Tree.page db.Db.tree dest))

let test_stale_plan_rejected () =
  let db = mk_tree_db () in
  let ctx = mk_ctx db in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 0) in
  (* Leaves that are NOT children of this base / not consecutive. *)
  let pids = Tree.leaf_pids db.Db.tree in
  let bogus = [ List.nth pids 0; List.nth pids 7 ] in
  let outcome =
    in_engine (fun () ->
        Unit_exec.execute ctx
          (Unit_exec.Compact { base; leaves = bogus; dest = `In_place (List.hd bogus) }))
  in
  Alcotest.(check bool) "stale" true (outcome = Unit_exec.Stale);
  Alcotest.(check int) "no locks leaked" 0
    (Lockmgr.Lock_mgr.locked_count db.Db.locks ~owner:ctx.Ctx.actor.Transact.Txn.id);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_unit_blocked_by_reader_waits () =
  (* A reader holding S on a unit leaf delays the unit (RX waits), but the
     unit completes once the reader finishes. *)
  let db = mk_tree_db () in
  let ctx = mk_ctx db in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 0) in
  let bp = Tree.page db.Db.tree base in
  let leaves =
    List.filteri (fun i _ -> i < 2) (List.map (fun e -> e.Inode.child) (Inode.entries bp))
  in
  let eng = Engine.create () in
  let reader = Txn_mgr.fresh_owner db.Db.mgr in
  let outcome = ref None in
  Engine.spawn eng (fun () ->
      Transact.Lock_client.acquire db.Db.locks ~txn:reader
        (Lockmgr.Resource.Page (List.nth leaves 1))
        Lockmgr.Mode.S;
      Engine.sleep 10;
      Transact.Lock_client.release_all db.Db.locks ~txn:reader);
  Engine.spawn eng (fun () ->
      Engine.sleep 1;
      outcome :=
        Some
          (Unit_exec.execute ctx
             (Unit_exec.Compact { base; leaves; dest = `In_place (List.hd leaves) })));
  Engine.run eng;
  Alcotest.(check bool) "unit completed after reader left" true
    (match !outcome with Some (Unit_exec.Done _) -> true | _ -> false);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let () =
  Alcotest.run "reorg units"
    [
      ("rtable", [ Alcotest.test_case "lifecycle" `Quick test_rtable_lifecycle ]);
      ("free space", [ Alcotest.test_case "policies" `Quick test_free_space_policies ]);
      ( "side file",
        [
          Alcotest.test_case "append/take" `Quick test_side_file_append_take;
          Alcotest.test_case "abort removes" `Quick test_side_file_abort_removes_entry;
          Alcotest.test_case "redirect at switch" `Quick test_side_file_redirect_during_switch;
        ] );
      ( "builder",
        [
          Alcotest.test_case "pack + finalize" `Quick test_builder_packs_and_finalizes;
          Alcotest.test_case "stable point + restore" `Quick test_builder_stable_point_seals;
        ] );
      ( "unit executor",
        [
          Alcotest.test_case "compact in place" `Quick test_compact_unit_direct;
          Alcotest.test_case "swap" `Quick test_swap_unit_direct;
          Alcotest.test_case "move" `Quick test_move_unit_direct;
          Alcotest.test_case "stale plan" `Quick test_stale_plan_rejected;
          Alcotest.test_case "waits for reader" `Quick test_unit_blocked_by_reader_waits;
        ] );
    ]
