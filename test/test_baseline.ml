(* Tandem-style baseline tests: the comparator must itself be correct, its
   semantics must match what the paper attributes to [Smi90] (file-level
   lock, two blocks per transaction, rollback on crash, full-page logging),
   and its crash behaviour must roll the in-flight operation back. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr
module Lock_client = Transact.Lock_client
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Db = Sim.Db
module Tandem = Baseline.Tandem

let run_tandem db =
  let eng = Engine.create () in
  let stats = ref None in
  Engine.spawn eng (fun () -> stats := Some (Tandem.reorganize ~access:db.Db.access ~f2:0.9));
  Engine.run eng;
  Option.get !stats

let test_correctness_on_thinned () =
  let db, expected = Sim.Scenario.thinned ~seed:9 ~n:700 ~survive:0.3 () in
  let before = Tree.stats db.Db.tree in
  let s = run_tandem db in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  let after = Tree.stats db.Db.tree in
  Alcotest.(check bool) "compacted" true (after.Tree.leaf_count < before.Tree.leaf_count);
  Alcotest.(check bool) "fill improved" true
    (after.Tree.avg_leaf_fill > before.Tree.avg_leaf_fill);
  Alcotest.(check bool) "did merges" true (s.Tandem.merges > 0)

let test_correctness_on_aged () =
  let db, expected = Sim.Scenario.aged ~seed:11 ~n:900 ~f1:0.3 () in
  let s = run_tandem db in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  (* Ordering pass leaves the chain contiguous. *)
  let lo, _ = Pager.Alloc.leaf_zone db.Db.alloc in
  List.iteri
    (fun i pid -> Alcotest.(check int) "contiguous" (lo + i) pid)
    (Tree.leaf_pids db.Db.tree);
  Alcotest.(check bool) "swaps or moves happened" true (s.Tandem.swaps + s.Tandem.moves > 0)

let test_file_lock_blocks_users () =
  (* While a block operation runs, even a reader is locked out — "[Smi90]
     prevents user transactions from accessing the entire file". *)
  let db, expected = Sim.Scenario.thinned ~seed:13 ~n:500 ~survive:0.3 () in
  ignore expected;
  let eng = Engine.create () in
  let blocked_total = ref 0 in
  let done_ = ref false in
  Engine.spawn eng (fun () ->
      Tandem.compact ~access:db.Db.access ~f2:0.9 (Tandem.create_stats ());
      done_ := true);
  Engine.spawn eng (fun () ->
      while not !done_ do
        let tx = Txn_mgr.fresh_owner db.Db.mgr in
        ignore (Btree.Access.read db.Db.access ~txn:tx 100);
        blocked_total := !blocked_total + tx.Transact.Txn.blocked_ticks;
        Txn_mgr.finish_read_only db.Db.mgr tx;
        Engine.yield ()
      done);
  Engine.run eng;
  Alcotest.(check bool)
    (Printf.sprintf "reader was blocked by the file lock (%d ticks)" !blocked_total)
    true (!blocked_total > 0)

let test_each_op_is_a_transaction () =
  let db, _ = Sim.Scenario.thinned ~seed:15 ~n:500 ~survive:0.3 () in
  let commits_before =
    let n = ref 0 in
    Wal.Log.force_all db.Db.log;
    Wal.Log.iter db.Db.log (fun _ b -> match b with Wal.Record.Txn_commit _ -> incr n | _ -> ());
    !n
  in
  let s = run_tandem db in
  Wal.Log.force_all db.Db.log;
  let commits_after =
    let n = ref 0 in
    Wal.Log.iter db.Db.log (fun _ b -> match b with Wal.Record.Txn_commit _ -> incr n | _ -> ());
    !n
  in
  Alcotest.(check int) "one commit per block operation" s.Tandem.ops
    (commits_after - commits_before)

let test_crash_rolls_back_in_flight_op () =
  (* Crash while Tandem works: restart must roll the torn operation back
     (physical undo of its unsealed Updates) and leave a consistent tree
     with all records present. *)
  List.iter
    (fun crash_at ->
      let db, expected = Sim.Scenario.aged ~seed:17 ~n:600 ~f1:0.3 () in
      let eng = Engine.create () in
      Engine.spawn eng (fun () -> ignore (run_tandem db : Tandem.stats));
      (* run_tandem spawns its own engine; instead drive compact directly *)
      ignore eng;
      let eng = Engine.create () in
      let stats = Tandem.create_stats () in
      Engine.spawn eng (fun () ->
          Tandem.compact ~access:db.Db.access ~f2:0.9 stats;
          Tandem.order_leaves ~access:db.Db.access stats);
      Engine.spawn eng (fun () ->
          Engine.sleep crash_at;
          Engine.stop eng);
      Engine.run eng;
      Db.crash_now ~flush_seed:(crash_at * 7) db;
      let _ctx, outcome =
        Reorg.Recovery.restart ~access:db.Db.access ~config:Reorg.Config.default ()
      in
      ignore outcome;
      Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      Btree.Invariant.check_consistent_with db.Db.tree ~expected)
    [ 30; 70; 150; 250 ]

let test_lock_hold_accounting () =
  let db, _ = Sim.Scenario.thinned ~seed:19 ~n:400 ~survive:0.3 () in
  let s = run_tandem db in
  Alcotest.(check bool) "ops counted" true (s.Tandem.ops > 0);
  Alcotest.(check bool) "held the file lock for some time" true (s.Tandem.lock_hold_ticks > 0);
  Alcotest.(check bool) "logged full pages (bytes >> records)" true
    (s.Tandem.log_bytes > 100 * s.Tandem.ops)

let test_no_cross_parent_merge () =
  (* Merging the first child of the next base page would orphan part of its
     key range; the baseline must decline such merges. *)
  let db, expected = Sim.Scenario.aged ~seed:23 ~n:800 ~f1:0.45 () in
  let eng = Engine.create () in
  let stats = Tandem.create_stats () in
  Engine.spawn eng (fun () -> Tandem.compact ~access:db.Db.access ~f2:0.9 stats);
  Engine.run eng;
  (* Every key must still be findable by descent (the bug this guards
     against made keys reachable only via the chain). *)
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string))
        (Printf.sprintf "descent finds %d" k)
        (Some v) (Tree.search db.Db.tree k))
    expected;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_concurrent_users_with_tandem () =
  let db, _ = Sim.Scenario.aged ~seed:29 ~n:600 ~f1:0.3 () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Tandem.reorganize ~access:db.Db.access ~f2:0.9 : Tandem.stats);
      finished := true);
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:5 ~users:4 ~ops_per_user:10_000
      ~key_space:600
      ~stop:(fun () -> !finished)
      ~mix:Workload.Mix.read_mostly ()
  in
  Engine.run eng;
  Alcotest.(check bool) "users made progress" true (stats.Workload.Mix.committed > 0);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

(* ---------------- offline rebuild ---------------- *)

let test_offline_rebuild () =
  let db, expected = Sim.Scenario.aged ~seed:31 ~n:800 ~f1:0.25 () in
  let before = Tree.stats db.Db.tree in
  let eng = Engine.create () in
  let stats = ref None in
  Engine.spawn eng (fun () ->
      stats := Some (Baseline.Offline.reorganize ~access:db.Db.access ~f2:0.9));
  Engine.run eng;
  let s = Option.get !stats in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  let after = Tree.stats db.Db.tree in
  Alcotest.(check int) "all records" (List.length expected) s.Baseline.Offline.records;
  Alcotest.(check bool) "compacted hard" true
    (after.Tree.leaf_count * 3 < before.Tree.leaf_count);
  Alcotest.(check bool) "fill high" true (after.Tree.avg_leaf_fill > 0.75);
  (* Ascending disk order (fresh pages are taken smallest-first, so key
     order and disk order coincide; gaps remain where old pages still sat
     when the new ones were allocated). *)
  let rec ascending = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) (Printf.sprintf "ascending %d < %d" a b) true (a < b);
      ascending rest
    | _ -> ()
  in
  ascending (Tree.leaf_pids db.Db.tree)

let test_offline_blocks_everyone () =
  let db, _ = Sim.Scenario.aged ~seed:33 ~n:800 ~f1:0.25 () in
  let eng = Engine.create () in
  let done_ = ref false in
  let read_during = ref 0 in
  Engine.spawn eng (fun () ->
      ignore (Baseline.Offline.reorganize ~access:db.Db.access ~f2:0.9 : Baseline.Offline.stats);
      done_ := true);
  Engine.spawn eng (fun () ->
      (* This reader starts while the rebuild holds the tree X lock; it can
         only finish after. *)
      Engine.yield ();
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      ignore (Btree.Access.read db.Db.access ~txn:tx 100);
      if not !done_ then incr read_during;
      Txn_mgr.finish_read_only db.Db.mgr tx);
  Engine.run eng;
  Alcotest.(check int) "no read completed while offline" 0 !read_during

let () =
  Alcotest.run "baseline"
    [
      ( "correctness",
        [
          Alcotest.test_case "thinned tree" `Quick test_correctness_on_thinned;
          Alcotest.test_case "aged tree" `Quick test_correctness_on_aged;
          Alcotest.test_case "no cross-parent merge" `Quick test_no_cross_parent_merge;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "file lock blocks users" `Quick test_file_lock_blocks_users;
          Alcotest.test_case "txn per operation" `Quick test_each_op_is_a_transaction;
          Alcotest.test_case "lock-hold + log accounting" `Quick test_lock_hold_accounting;
          Alcotest.test_case "concurrent users" `Quick test_concurrent_users_with_tandem;
        ] );
      ( "crash",
        [ Alcotest.test_case "rollback of torn op" `Quick test_crash_rolls_back_in_flight_op ]
      );
      ( "offline rebuild",
        [
          Alcotest.test_case "correctness" `Quick test_offline_rebuild;
          Alcotest.test_case "blocks everyone" `Quick test_offline_blocks_everyone;
        ] );
    ]
