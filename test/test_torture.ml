(* Forward-recovery torture: crash at every I/O boundary, recover, verify.

   The full-size sweeps live behind [stride] sampling so the suite stays
   fast; the small trees are swept exhaustively (stride 1) on several
   seeds, which is the paper's §5.1 claim at full resolution. *)

module Torture = Sim.Torture

let check_report name (r : Torture.report) =
  Alcotest.(check bool)
    (name ^ ": boundaries discovered")
    true
    (r.Torture.write_boundaries > 0 && r.Torture.force_boundaries > 0);
  Alcotest.(check bool) (name ^ ": points tested") true (r.Torture.points > 0);
  (* Every armed plan either tripped or its boundary was never reached. *)
  Alcotest.(check int)
    (name ^ ": crashes + survivors = points")
    r.Torture.points
    (r.Torture.crashes + r.Torture.survivors)

let test_stride1_sweep () =
  let finished = ref 0 in
  List.iter
    (fun seed ->
      let r = Torture.run ~seed ~stride:1 ~n:60 ~leaf_pages:64 () in
      check_report (Printf.sprintf "seed %d" seed) r;
      finished := !finished + r.Torture.units_finished)
    [ 11; 23; 42 ];
  (* Across the exhaustive sweeps some crash must have interrupted a unit
     mid-flight — otherwise forward recovery was never actually exercised. *)
  Alcotest.(check bool) "units finished forward" true (!finished > 0)

let test_sampled_default_size () =
  let r = Torture.run ~seed:7 ~stride:37 () in
  check_report "default size" r;
  Alcotest.(check bool) "some plans tripped" true (r.Torture.crashes > 0)

let test_with_users () =
  let r = Torture.run ~seed:5 ~stride:11 ~n:80 ~leaf_pages:64 ~users:2 () in
  check_report "users" r

let test_pipelined_sweep () =
  (* Same sweep with the async durability pipeline attached: crash
     boundaries now land inside group-commit windows and elevator sweeps,
     and fuzzy checkpoints truncate the WAL mid-workload. *)
  let r = Torture.run ~seed:11 ~stride:9 ~n:80 ~leaf_pages:64 ~users:2 ~pipeline:true () in
  check_report "pipelined" r;
  Alcotest.(check bool) "some plans tripped" true (r.Torture.crashes > 0)

let test_torn_faults_seen () =
  (* The boundary sweep draws torn variants from the seeded rng; over a full
     stride-1 sweep both kinds of tear must actually occur, or the harness
     is silently not testing them. *)
  let r = Torture.run ~seed:23 ~stride:1 ~n:60 ~leaf_pages:64 () in
  Alcotest.(check bool) "torn page writes injected" true (r.Torture.torn_writes > 0);
  Alcotest.(check bool) "torn WAL tails injected" true (r.Torture.torn_tails > 0)

(* Mutation test: a database that really is corrupt must fail verification —
   otherwise the sweeps above prove nothing. *)
let test_mutation_caught () =
  let mutate_and_expect label mutate =
    let db, base = Sim.Scenario.aged ~seed:3 ~n:80 ~f1:0.3 () in
    let exp = Torture.expectation_of_base base in
    mutate db;
    let caught = try Torture.verify db exp; false with Torture.Failed _ -> true in
    Alcotest.(check bool) label true caught
  in
  let in_engine f db =
    let eng = Sched.Engine.create () in
    Sched.Engine.spawn eng (fun () -> f db);
    Sched.Engine.run eng
  in
  (* A lost base record (a unit that rolled back instead of forward). *)
  mutate_and_expect "lost record caught"
    (in_engine (fun db ->
         let tx = Transact.Txn_mgr.begin_txn db.Sim.Db.mgr in
         ignore (Btree.Access.delete db.Sim.Db.access ~txn:tx 40);
         Transact.Txn_mgr.commit db.Sim.Db.mgr tx));
  (* A phantom record nobody ever inserted (a replayed-twice dup). *)
  mutate_and_expect "phantom record caught"
    (in_engine (fun db ->
         let tx = Transact.Txn_mgr.begin_txn db.Sim.Db.mgr in
         Btree.Access.insert db.Sim.Db.access ~txn:tx ~key:41 ~payload:"ghost";
         Transact.Txn_mgr.commit db.Sim.Db.mgr tx))

let () =
  Alcotest.run "torture"
    [
      ( "sweeps",
        [
          Alcotest.test_case "stride-1 small trees x3 seeds" `Quick test_stride1_sweep;
          Alcotest.test_case "sampled default size" `Quick test_sampled_default_size;
          Alcotest.test_case "with concurrent users" `Quick test_with_users;
          Alcotest.test_case "pipelined sweep" `Quick test_pipelined_sweep;
          Alcotest.test_case "torn faults exercised" `Quick test_torn_faults_seen;
        ] );
      ("mutation", [ Alcotest.test_case "corruption is caught" `Quick test_mutation_caught ]);
    ]
