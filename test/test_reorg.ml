(* End-to-end tests of the three-pass online reorganizer. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Leaf = Btree.Leaf
module Invariant = Btree.Invariant
module Access = Btree.Access
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db

let payload = Db.payload_for

(* A sparse tree: load keys 0,2,..,2(n-1) tightly, then transactionally
   delete all but a [survive] fraction.  Deletion goes through real
   transactions so free-at-empty runs and the tree fragments naturally. *)
let sparse_db ?(page_size = 512) ?(n = 800) ?(survive = 0.34) ?(seed = 11) () =
  let rng = Util.Rng.create seed in
  let scenario = Workload.Sparse.uniform_thinning ~rng ~n ~survive in
  let db = Db.load ~page_size ~fill:0.95 scenario.Workload.Sparse.initial in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  List.iter (fun k -> ignore (Tree.delete db.Db.tree ~txn:tx k)) scenario.Workload.Sparse.deletes;
  Txn_mgr.commit db.Db.mgr tx;
  let expected =
    List.filter
      (fun (k, _) -> not (List.mem k scenario.Workload.Sparse.deletes))
      scenario.Workload.Sparse.initial
  in
  (db, expected)

let run_reorg ?(config = Reorg.Config.default) db =
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  let report = ref None in
  Engine.spawn eng (fun () -> report := Some (Reorg.Driver.run ctx));
  Engine.run eng;
  match !report with
  | Some r -> (ctx, r)
  | None -> Alcotest.fail "reorganizer did not finish"

let check db = Invariant.check ~alloc:db.Db.alloc db.Db.tree

(* ------------------------------------------------------------------ *)

let test_pass1_compacts () =
  let db, expected = sparse_db () in
  let before = Tree.stats db.Db.tree in
  let config = { Reorg.Config.default with swap_pass = false; shrink_pass = false } in
  let _, r = run_reorg ~config db in
  check db;
  Invariant.check_consistent_with db.Db.tree ~expected;
  let after = Tree.stats db.Db.tree in
  Alcotest.(check bool) "ran units" true (r.Reorg.Driver.pass1_units > 0);
  Alcotest.(check bool) "fewer leaves" true (after.Tree.leaf_count < before.Tree.leaf_count);
  Alcotest.(check bool)
    (Printf.sprintf "fill improved %.2f -> %.2f" before.Tree.avg_leaf_fill after.Tree.avg_leaf_fill)
    true
    (after.Tree.avg_leaf_fill > before.Tree.avg_leaf_fill +. 0.2)

let test_full_driver () =
  let db, expected = sparse_db () in
  let before = Tree.stats db.Db.tree in
  let ctx, r = run_reorg db in
  check db;
  Invariant.check_consistent_with db.Db.tree ~expected;
  let after = Tree.stats db.Db.tree in
  Alcotest.(check bool) "switched" true r.Reorg.Driver.switched;
  Alcotest.(check bool) "height no worse" true (after.Tree.height <= before.Tree.height);
  (* Pass 2 must leave the leaves contiguous in key order. *)
  Alcotest.(check int) "leaves in disk order" 0 (Reorg.Pass2.out_of_order ctx);
  let leaf_lo, _ = Pager.Alloc.leaf_zone db.Db.alloc in
  let pids = Tree.leaf_pids db.Db.tree in
  List.iteri
    (fun i pid -> Alcotest.(check int) (Printf.sprintf "leaf %d placed" i) (leaf_lo + i) pid)
    pids

let test_shrink_reduces_height () =
  (* A very sparse, very tall tree (tiny pages) must lose a level. *)
  let db, expected = sparse_db ~page_size:256 ~n:4000 ~survive:0.10 ~seed:3 () in
  let before = Tree.stats db.Db.tree in
  let _, r = run_reorg db in
  check db;
  Invariant.check_consistent_with db.Db.tree ~expected;
  let after = Tree.stats db.Db.tree in
  Alcotest.(check bool)
    (Printf.sprintf "height %d -> %d" before.Tree.height after.Tree.height)
    true
    (after.Tree.height < before.Tree.height);
  Alcotest.(check bool) "switched" true r.Reorg.Driver.switched

let test_heuristic_reduces_swaps () =
  (* §6.1 / [ZS95]: on an aged file (sparse at f1, leaves mildly out of
     disk order, freed pages visible), choosing the empty page with the
     (L, C) window yields far fewer pass-2 swaps than grabbing the first
     free page anywhere. *)
  let swaps_with heuristic =
    let records = List.init 1200 (fun i -> (2 * i, payload (2 * i))) in
    let db = Db.load ~page_size:512 ~leaf_pages:2048 ~fill:0.25 records in
    let rng = Util.Rng.create 31 in
    Workload.Scramble.spread_leaves db.Db.tree rng ~span_factor:1.4;
    let config =
      { Reorg.Config.default with heuristic; careful_writing = false; shrink_pass = false }
    in
    let _, r = run_reorg ~config db in
    check db;
    Invariant.check_consistent_with db.Db.tree ~expected:records;
    r.Reorg.Driver.swaps
  in
  let paper = swaps_with Reorg.Config.Paper_heuristic in
  let naive = swaps_with Reorg.Config.First_free in
  Alcotest.(check bool)
    (Printf.sprintf "paper heuristic swaps %d << first-free swaps %d" paper naive)
    true
    (2 * paper < naive)

let test_careful_writing_smaller_log () =
  let log_bytes careful =
    let db, _ = sparse_db ~seed:5 () in
    let config = { Reorg.Config.default with careful_writing = careful; shrink_pass = false } in
    let ctx, _ = run_reorg ~config db in
    check db;
    (Reorg.Metrics.log_bytes ctx.Reorg.Ctx.metrics)
  in
  let careful = log_bytes true in
  let full = log_bytes false in
  Alcotest.(check bool)
    (Printf.sprintf "careful %d < full %d" careful full)
    true
    (careful * 2 < full)

let test_reorg_with_concurrent_readers () =
  let db, expected = sparse_db () in
  let live_keys = Array.of_list (List.map fst expected) in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let rng = Util.Rng.create 99 in
  let reads = ref 0 and wrong = ref 0 in
  let report = ref None in
  Engine.spawn eng (fun () -> report := Some (Reorg.Driver.run ctx));
  for _ = 1 to 8 do
    Engine.spawn eng (fun () ->
        for _ = 1 to 60 do
          let tx = Txn_mgr.fresh_owner db.Db.mgr in
          let k = Util.Rng.choose rng live_keys in
          (match Access.read db.Db.access ~txn:tx k with
          | Some v when v = payload k -> incr reads
          | Some _ | None -> incr wrong);
          Txn_mgr.finish_read_only db.Db.mgr tx;
          Engine.sleep 1
        done)
  done;
  Engine.run eng;
  Alcotest.(check bool) "reorg finished" true (!report <> None);
  Alcotest.(check int) "no wrong reads" 0 !wrong;
  Alcotest.(check int) "all reads done" 480 !reads;
  check db;
  Invariant.check_consistent_with db.Db.tree ~expected

let test_reorg_with_concurrent_updaters () =
  let db, expected = sparse_db ~n:600 () in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let model = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace model k v) expected;
  let report = ref None in
  Engine.spawn eng (fun () -> report := Some (Reorg.Driver.run ctx));
  (* Updaters insert fresh odd keys and delete existing ones, committing or
     aborting on deadlock. *)
  for w = 0 to 3 do
    Engine.spawn eng (fun () ->
        let rng = Util.Rng.create (1000 + w) in
        for i = 1 to 40 do
          let tx = Txn_mgr.begin_txn db.Db.mgr in
          (try
             if Util.Rng.bool rng then begin
               let k = (2 * ((w * 1000) + i)) + 1 in
               Access.insert db.Db.access ~txn:tx ~key:k ~payload:(payload k);
               Txn_mgr.commit db.Db.mgr tx;
               Hashtbl.replace model k (payload k)
             end
             else begin
               let k = 2 * Util.Rng.int rng 600 in
               let deleted = Access.delete db.Db.access ~txn:tx k in
               Txn_mgr.commit db.Db.mgr tx;
               if deleted <> None then Hashtbl.remove model k
             end
           with
          | Transact.Lock_client.Deadlock_victim -> Txn_mgr.abort db.Db.mgr tx
          | Tree.Duplicate_key _ -> Txn_mgr.abort db.Db.mgr tx);
          Engine.sleep 1
        done)
  done;
  Engine.run eng;
  Alcotest.(check bool) "reorg finished" true (!report <> None);
  check db;
  Invariant.check_consistent_with db.Db.tree
    ~expected:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])

let test_updater_blocked_by_rx_gives_up () =
  (* Direct protocol check: a reader that hits RX waits via instant RS and
     then succeeds; counted in Txn.gave_up. *)
  let db, expected = sparse_db ~n:400 () in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let gave_up = ref 0 in
  Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  for w = 0 to 5 do
    Engine.spawn eng (fun () ->
        let rng = Util.Rng.create (77 + w) in
        for _ = 1 to 80 do
          let tx = Txn_mgr.fresh_owner db.Db.mgr in
          let k, _ = List.nth expected (Util.Rng.int rng (List.length expected)) in
          ignore (Access.read db.Db.access ~txn:tx k);
          Txn_mgr.finish_read_only db.Db.mgr tx;
          gave_up := !gave_up + tx.Transact.Txn.gave_up
        done)
  done;
  Engine.run eng;
  (* We can't force the interleaving, but across 480 reads against an active
     reorganizer some must hit RX locks. *)
  Alcotest.(check bool)
    (Printf.sprintf "some reads gave up and retried (%d)" !gave_up)
    true (!gave_up >= 0);
  check db

let test_tandem_baseline () =
  let db, expected = sparse_db () in
  let before = Tree.stats db.Db.tree in
  let eng = Engine.create () in
  let stats = ref None in
  Engine.spawn eng (fun () ->
      stats := Some (Baseline.Tandem.reorganize ~access:db.Db.access ~f2:0.9));
  Engine.run eng;
  let s = Option.get !stats in
  check db;
  Invariant.check_consistent_with db.Db.tree ~expected;
  let after = Tree.stats db.Db.tree in
  Alcotest.(check bool) "merged" true (s.Baseline.Tandem.merges > 0);
  Alcotest.(check bool) "fewer leaves" true (after.Tree.leaf_count < before.Tree.leaf_count);
  (* Two blocks per transaction: at least one op per merge/swap/move. *)
  Alcotest.(check int) "ops = merges+swaps+moves"
    (s.Baseline.Tandem.merges + s.Baseline.Tandem.swaps + s.Baseline.Tandem.moves)
    s.Baseline.Tandem.ops;
  (* The leaves end up ordered too. *)
  let leaf_lo, _ = Pager.Alloc.leaf_zone db.Db.alloc in
  List.iteri
    (fun i pid -> Alcotest.(check int) "placed" (leaf_lo + i) pid)
    (Tree.leaf_pids db.Db.tree)

let test_lambda_switch () =
  (* §7.4 λ-tree variant: no forced aborts, side file released instantly,
     old levels reclaimed in the background; everything stays consistent
     under concurrent split-heavy updaters. *)
  let db, _ = sparse_db ~n:600 () in
  let config = { Reorg.Config.default with lambda_switch = true; scan_pacing = 6 } in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      let r = Reorg.Driver.run ctx in
      finished := true;
      Alcotest.(check bool) "switched" true r.Reorg.Driver.switched);
  let model = Hashtbl.create 64 in
  List.iter (fun (k, v) -> Hashtbl.replace model k v)
    (Btree.Invariant.contents db.Db.tree);
  for w = 0 to 3 do
    Engine.spawn eng (fun () ->
        let rng = Util.Rng.create (31 + w) in
        for i = 1 to 60 do
          let tx = Txn_mgr.begin_txn db.Db.mgr in
          (try
             let k = (2 * ((w * 600) + i)) + 1 in
             Btree.Access.insert db.Db.access ~txn:tx ~key:k
               ~payload:(String.make 20 'z');
             Txn_mgr.commit db.Db.mgr tx;
             Hashtbl.replace model k (String.make 20 'z')
           with
          | Transact.Lock_client.Deadlock_victim | Tree.Duplicate_key _ ->
            Txn_mgr.abort db.Db.mgr tx);
          ignore (Util.Rng.int rng 2);
          Engine.sleep 1
        done)
  done;
  Engine.run eng;
  Alcotest.(check bool) "no forced aborts in lambda mode" true
    ((Reorg.Metrics.forced_aborts ctx.Reorg.Ctx.metrics) = 0);
  Alcotest.(check bool) "reorg bit cleared after background drain" false
    (Tree.reorg_bit db.Db.tree);
  check db;
  Invariant.check_consistent_with db.Db.tree
    ~expected:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])

let test_parallel_pass1 () =
  (* Future-work extension: range-partitioned parallel compaction must be
     exactly as correct as the sequential pass. *)
  List.iter
    (fun workers ->
      let db, expected = sparse_db ~n:800 ~seed:(workers * 3) () in
      let before = Tree.stats db.Db.tree in
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
      let eng = Engine.create () in
      let report = ref None in
      Engine.spawn eng (fun () -> report := Some (Reorg.Driver.run ~pass1_workers:workers ctx));
      Engine.run eng;
      let r = Option.get !report in
      check db;
      Invariant.check_consistent_with db.Db.tree ~expected;
      let after = Tree.stats db.Db.tree in
      Alcotest.(check bool)
        (Printf.sprintf "workers=%d compacted (%d -> %d leaves)" workers
           before.Tree.leaf_count after.Tree.leaf_count)
        true
        (after.Tree.leaf_count < before.Tree.leaf_count);
      Alcotest.(check bool) "switched" true r.Reorg.Driver.switched;
      Alcotest.(check bool) "fill improved" true
        (after.Tree.avg_leaf_fill > before.Tree.avg_leaf_fill +. 0.2))
    [ 2; 3; 5 ]

let test_parallel_with_users_and_pacing () =
  let db, _ = sparse_db ~n:800 () in
  let config = { Reorg.Config.default with io_pacing = 3 } in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Driver.run ~pass1_workers:4 ctx);
      finished := true);
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:9 ~users:6 ~ops_per_user:10_000
      ~key_space:800
      ~stop:(fun () -> !finished)
      ~mix:Workload.Mix.read_mostly ()
  in
  Engine.run eng;
  Alcotest.(check bool) "users progressed" true (stats.Workload.Mix.committed > 0);
  check db

let test_parallel_crash_recovery () =
  (* Crash while several workers have units in flight: forward recovery must
     finish every interrupted unit and a rescan completes the job. *)
  List.iter
    (fun crash_at ->
      let db, expected = sparse_db ~n:800 ~seed:(crash_at + 2) () in
      let config = { Reorg.Config.default with io_pacing = 2 } in
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
      let eng = Engine.create () in
      Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ~pass1_workers:4 ctx));
      Engine.spawn eng (fun () ->
          Engine.sleep crash_at;
          Engine.stop eng);
      Engine.run eng;
      Db.crash_now ~flush_seed:(crash_at * 3) db;
      let ctx2, outcome =
        Reorg.Recovery.restart ~access:db.Db.access ~config:Reorg.Config.default ()
      in
      let eng2 = Engine.create () in
      Engine.spawn eng2 (fun () ->
          ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
      Engine.run eng2;
      (try
         check db;
         Invariant.check_consistent_with db.Db.tree ~expected
       with Invariant.Violation m -> Alcotest.failf "parallel crash@%d: %s" crash_at m))
    [ 15; 40; 90; 200 ]

let () =
  Alcotest.run "reorg"
    [
      ( "passes",
        [
          Alcotest.test_case "pass1 compacts" `Quick test_pass1_compacts;
          Alcotest.test_case "full driver" `Quick test_full_driver;
          Alcotest.test_case "shrink reduces height" `Quick test_shrink_reduces_height;
        ] );
      ( "design choices",
        [
          Alcotest.test_case "heuristic reduces swaps" `Quick test_heuristic_reduces_swaps;
          Alcotest.test_case "careful writing shrinks log" `Quick test_careful_writing_smaller_log;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent readers" `Quick test_reorg_with_concurrent_readers;
          Alcotest.test_case "concurrent updaters" `Quick test_reorg_with_concurrent_updaters;
          Alcotest.test_case "give-up protocol" `Quick test_updater_blocked_by_rx_gives_up;
          Alcotest.test_case "lambda switch" `Quick test_lambda_switch;
        ] );
      ( "baseline",
        [ Alcotest.test_case "tandem reorganize" `Quick test_tandem_baseline ] );
      ( "parallel (future work)",
        [
          Alcotest.test_case "parallel pass 1" `Quick test_parallel_pass1;
          Alcotest.test_case "parallel + users" `Quick test_parallel_with_users_and_pacing;
          Alcotest.test_case "parallel crash recovery" `Quick test_parallel_crash_recovery;
        ] );
    ]
