(* Transaction layer tests: journal logging, WAL rule end-to-end, commit /
   abort with logical undo, blocking lock client on the scheduler. *)

module Page = Pager.Page
module Disk = Pager.Disk
module Buffer_pool = Pager.Buffer_pool
module Log = Wal.Log
module Record = Wal.Record
module Journal = Transact.Journal
module Txn = Transact.Txn
module Txn_mgr = Transact.Txn_mgr
module Lock_client = Transact.Lock_client
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr
module Engine = Sched.Engine

let mk () =
  let disk = Disk.create ~initial_pages:16 ~page_size:256 () in
  let pool = Buffer_pool.create (Pager.Backend.of_disk disk) in
  let log = Log.create () in
  let journal = Journal.create pool log in
  let locks = Lock_mgr.create () in
  let mgr = Txn_mgr.create journal locks in
  (disk, pool, log, journal, locks, mgr)

let test_physical_logs_and_stamps () =
  let _, pool, log, journal, _, _ = mk () in
  Journal.physical journal ~page:3 ~off:16 ~len:4 (fun p -> Page.set_u32 p 16 77);
  let lsn = Log.head_lsn log in
  Alcotest.(check bool) "one record" true (lsn >= 1);
  (match Log.read log lsn with
  | Record.Update { page = 3; off = 16; before; after; _ } ->
    Alcotest.(check int) "len" 4 (String.length before);
    Alcotest.(check bool) "after differs" true (before <> after)
  | _ -> Alcotest.fail "expected Update");
  Alcotest.(check int64) "page stamped" (Int64.of_int lsn) (Page.lsn (Buffer_pool.get pool 3));
  Alcotest.(check bool) "dirty" true (Buffer_pool.is_dirty pool 3)

let test_physical_noop_not_logged () =
  let _, _, log, journal, _, _ = mk () in
  Journal.physical journal ~page:3 ~off:16 ~len:4 (fun _ -> ());
  Alcotest.(check int) "no record" 0 (Log.head_lsn log)

let test_wal_rule_forces_log () =
  let _, pool, log, journal, _, _ = mk () in
  Journal.physical journal ~page:3 ~off:16 ~len:4 (fun p -> Page.set_u32 p 16 1);
  Alcotest.(check int) "nothing stable yet" 0 (Log.flushed_lsn log);
  Buffer_pool.flush_page pool 3;
  Alcotest.(check int) "flush forced the log" (Log.head_lsn log) (Log.flushed_lsn log)

let test_commit_forces_and_releases () =
  let _, _, log, _, locks, mgr = mk () in
  let tx = Txn_mgr.begin_txn mgr in
  ignore (Lock_mgr.try_acquire locks ~owner:tx.Txn.id (Resource.Page 1) Mode.X);
  Txn_mgr.commit mgr tx;
  Alcotest.(check int) "commit durable" (Log.head_lsn log) (Log.flushed_lsn log);
  Alcotest.(check int) "locks gone" 0 (Lock_mgr.locked_count locks ~owner:tx.Txn.id);
  Alcotest.(check int) "no active txns" 0 (Txn_mgr.active_count mgr)

let test_abort_logical_undo () =
  let _, pool, log, journal, _, mgr = mk () in
  let undone = ref [] in
  Txn_mgr.set_logical_undo mgr (fun _ action -> undone := action :: !undone);
  let tx = Txn_mgr.begin_txn mgr in
  ignore (Journal.log_leaf_insert journal ~txn:tx ~page:5 ~key:10 ~payload:"a");
  ignore (Journal.log_leaf_delete journal ~txn:tx ~page:5 ~key:11 ~payload:"b");
  (* A structural sequence sealed as a nested top action must NOT be undone. *)
  Journal.with_nta journal ~txn:tx (fun () ->
      Journal.physical journal ~txn:tx ~page:6 ~off:32 ~len:2 (fun p -> Page.set_u16 p 32 7));
  (* An unsealed physical update must be reversed from its before-image. *)
  Journal.physical journal ~txn:tx ~page:7 ~off:32 ~len:2 (fun p -> Page.set_u16 p 32 9);
  Txn_mgr.abort mgr tx;
  (match !undone with
  | [ Record.Undo_insert { key = 10 }; Record.Undo_delete { key = 11; payload = "b" } ] -> ()
  | l -> Alcotest.failf "unexpected undo actions (%d)" (List.length l));
  (* Undo is newest-first: delete undone before insert. *)
  (match !undone with
  | [ _; Record.Undo_delete _ ] -> ()
  | _ -> Alcotest.fail "order");
  (* Sealed NTA survives; unsealed physical was rolled back. *)
  Alcotest.(check int) "sealed NTA kept" 7 (Page.get_u16 (Buffer_pool.get pool 6) 32);
  Alcotest.(check int) "unsealed physical reversed" 0 (Page.get_u16 (Buffer_pool.get pool 7) 32);
  (* CLRs (2 logical + 1 physical) and the abort record are in the log. *)
  let clrs = ref 0 and phys_clrs = ref 0 and aborts = ref 0 in
  Log.force_all log;
  Log.iter log (fun _ body ->
      match body with
      | Record.Clr { action = Record.Undo_phys _; _ } ->
        incr clrs;
        incr phys_clrs
      | Record.Clr _ -> incr clrs
      | Record.Txn_abort _ -> incr aborts
      | _ -> ());
  Alcotest.(check int) "three CLRs" 3 !clrs;
  Alcotest.(check int) "one physical CLR" 1 !phys_clrs;
  Alcotest.(check int) "abort logged" 1 !aborts

let test_undo_chain_respects_clrs () =
  (* A crashed rollback must not undo twice: undo_chain starting from a CLR
     jumps over already-undone records. *)
  let _, _, log, journal, _, mgr = mk () in
  let undone = ref [] in
  Txn_mgr.set_logical_undo mgr (fun _ a -> undone := a :: !undone);
  let tx = Txn_mgr.begin_txn mgr in
  let l1 = Journal.log_leaf_insert journal ~txn:tx ~page:5 ~key:1 ~payload:"x" in
  ignore (Journal.log_leaf_insert journal ~txn:tx ~page:5 ~key:2 ~payload:"y");
  (* Simulate a partial rollback: key 2 already compensated. *)
  let clr =
    Log.append log (Record.Clr { txn = tx.Txn.id; action = Undo_insert { key = 2 }; undo_next = l1 })
  in
  tx.Txn.last_lsn <- clr;
  Txn_mgr.undo_chain mgr tx ~last:tx.Txn.last_lsn;
  (match !undone with
  | [ Record.Undo_insert { key = 1 } ] -> ()
  | l -> Alcotest.failf "expected only key 1 undone, got %d actions" (List.length l))

let test_lock_client_blocking () =
  let _, _, _, _, locks, _ = mk () in
  let eng = Engine.create () in
  let t1 = Txn.make 1 and t2 = Txn.make 2 in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Lock_client.acquire locks ~txn:t1 (Resource.Page 1) Mode.X;
      order := "t1-got" :: !order;
      Engine.sleep 5;
      Lock_client.release locks ~txn:t1 (Resource.Page 1) Mode.X;
      order := "t1-released" :: !order);
  Engine.spawn eng (fun () ->
      Engine.yield ();
      Lock_client.acquire locks ~txn:t2 (Resource.Page 1) Mode.X;
      order := "t2-got" :: !order);
  Engine.run eng;
  Alcotest.(check (list string)) "blocking order" [ "t1-got"; "t1-released"; "t2-got" ]
    (List.rev !order);
  Alcotest.(check bool) "blocked time recorded" true (t2.Txn.blocked_ticks > 0);
  Alcotest.(check int) "one wait" 1 t2.Txn.waits

let test_lock_client_instant () =
  let _, _, _, _, locks, _ = mk () in
  let eng = Engine.create () in
  let reorg = Txn.make 100 and reader = Txn.make 2 in
  let got_signal = ref false in
  Engine.spawn eng (fun () ->
      Lock_client.acquire locks ~txn:reorg (Resource.Page 1) Mode.R;
      Engine.sleep 5;
      Lock_client.release locks ~txn:reorg (Resource.Page 1) Mode.R);
  Engine.spawn eng (fun () ->
      Engine.yield ();
      Lock_client.instant locks ~txn:reader (Resource.Page 1) Mode.RS;
      got_signal := true;
      (* Instant: nothing is held afterwards. *)
      Alcotest.(check int) "nothing held" 0 (Lock_mgr.locked_count locks ~owner:reader.Txn.id));
  Engine.run eng;
  Alcotest.(check bool) "signalled after R release" true !got_signal

let test_lock_client_deadlock_raises () =
  let _, _, _, _, locks, _ = mk () in
  let eng = Engine.create () in
  let t1 = Txn.make 1 and t2 = Txn.make 2 in
  let caught = ref false in
  Engine.spawn eng (fun () ->
      Lock_client.acquire locks ~txn:t1 (Resource.Page 1) Mode.X;
      Engine.sleep 2;
      Lock_client.acquire locks ~txn:t1 (Resource.Page 2) Mode.X;
      Lock_client.release_all locks ~txn:t1);
  Engine.spawn eng (fun () ->
      Lock_client.acquire locks ~txn:t2 (Resource.Page 2) Mode.X;
      Engine.sleep 2;
      (try Lock_client.acquire locks ~txn:t2 (Resource.Page 1) Mode.X
       with Lock_client.Deadlock_victim ->
         caught := true;
         Lock_client.release_all locks ~txn:t2));
  Engine.run eng;
  Alcotest.(check bool) "victim raised" true !caught;
  Alcotest.(check int) "all done" 0 (Engine.live eng)

let () =
  Alcotest.run "transact"
    [
      ( "journal",
        [
          Alcotest.test_case "physical logs+stamps" `Quick test_physical_logs_and_stamps;
          Alcotest.test_case "noop not logged" `Quick test_physical_noop_not_logged;
          Alcotest.test_case "wal rule" `Quick test_wal_rule_forces_log;
        ] );
      ( "txn_mgr",
        [
          Alcotest.test_case "commit" `Quick test_commit_forces_and_releases;
          Alcotest.test_case "abort logical undo" `Quick test_abort_logical_undo;
          Alcotest.test_case "undo skips CLRed" `Quick test_undo_chain_respects_clrs;
        ] );
      ( "lock client",
        [
          Alcotest.test_case "blocking" `Quick test_lock_client_blocking;
          Alcotest.test_case "instant" `Quick test_lock_client_instant;
          Alcotest.test_case "deadlock raises" `Quick test_lock_client_deadlock_raises;
        ] );
    ]
