(* B+-tree unit, integration and property tests. *)

module Page = Pager.Page
module Disk = Pager.Disk
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Journal = Transact.Journal
module Txn = Transact.Txn
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Tree = Btree.Tree
module Invariant = Btree.Invariant
module Bulk = Btree.Bulk

type env = {
  disk : Disk.t;
  pool : Buffer_pool.t;
  log : Wal.Log.t;
  journal : Journal.t;
  alloc : Alloc.t;
  tree : Tree.t;
  txn : Txn.t;
}

let mk ?(page_size = 512) ?(leaf_pages = 512) () =
  let disk = Disk.create ~page_size () in
  let pool = Buffer_pool.create (Pager.Backend.of_disk disk) in
  let log = Wal.Log.create () in
  let journal = Journal.create pool log in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages in
  let tree = Tree.create ~journal ~alloc ~meta_pid:0 ~tree_name:1 () in
  { disk; pool; log; journal; alloc; tree; txn = Txn.make 1 }

let payload k = Printf.sprintf "value-%06d" k

let insert env k = Tree.insert env.tree ~txn:env.txn ~key:k ~payload:(payload k) ()
let delete env k = Tree.delete env.tree ~txn:env.txn k

let check env = Invariant.check ~alloc:env.alloc env.tree

(* ------------------------------------------------------------------ *)

let test_empty () =
  let env = mk () in
  check env;
  Alcotest.(check (option string)) "miss" None (Tree.search env.tree 42);
  Alcotest.(check int) "height" 1 (Tree.height env.tree)

let test_sequential_inserts () =
  let env = mk () in
  for k = 0 to 499 do
    insert env k
  done;
  check env;
  for k = 0 to 499 do
    Alcotest.(check (option string)) "hit" (Some (payload k)) (Tree.search env.tree k)
  done;
  Alcotest.(check bool) "grew" true (Tree.height env.tree > 1);
  let s = Tree.stats env.tree in
  Alcotest.(check int) "records" 500 s.Tree.record_count

let test_shuffled_inserts () =
  let env = mk () in
  let rng = Util.Rng.create 7 in
  let keys = Util.Rng.permutation rng 600 in
  Array.iter (fun k -> insert env k) keys;
  check env;
  Invariant.check_consistent_with env.tree
    ~expected:(List.init 600 (fun k -> (k, payload k)))

let test_duplicate () =
  let env = mk () in
  insert env 5;
  Alcotest.check_raises "dup" (Tree.Duplicate_key 5) (fun () -> insert env 5)

let test_delete_and_free_at_empty () =
  let env = mk () in
  let n = 400 in
  for k = 0 to n - 1 do
    insert env k
  done;
  let before = (Tree.stats env.tree).Tree.leaf_count in
  (* Delete a contiguous band: the emptied leaves must be deallocated. *)
  for k = 50 to 349 do
    match delete env k with
    | Some _ -> ()
    | None -> Alcotest.failf "key %d missing at delete" k
  done;
  check env;
  let after = (Tree.stats env.tree).Tree.leaf_count in
  Alcotest.(check bool) "leaves freed" true (after < before);
  Invariant.check_consistent_with env.tree
    ~expected:
      (List.filter_map
         (fun k -> if k < 50 || k > 349 then Some (k, payload k) else None)
         (List.init n Fun.id))

let test_delete_all () =
  let env = mk () in
  for k = 0 to 299 do
    insert env k
  done;
  for k = 0 to 299 do
    ignore (delete env k)
  done;
  check env;
  Alcotest.(check int) "empty" 0 (Tree.stats env.tree).Tree.record_count;
  Alcotest.(check int) "height back to 1" 1 (Tree.height env.tree);
  (* Everything except the root leaf should be free again. *)
  insert env 7;
  Alcotest.(check (option string)) "reusable" (Some (payload 7)) (Tree.search env.tree 7)

let test_range () =
  let env = mk () in
  let keys = List.init 300 (fun i -> 3 * i) in
  List.iter (insert env) keys;
  let got = Tree.range env.tree ~lo:100 ~hi:200 in
  let expected = List.filter (fun k -> k >= 100 && k <= 200) keys in
  Alcotest.(check (list int)) "range keys" expected (List.map (fun r -> r.Leaf.key) got);
  Alcotest.(check (list int)) "empty range" []
    (List.map (fun r -> r.Leaf.key) (Tree.range env.tree ~lo:1000 ~hi:900))

let test_bulk_load () =
  let env = mk () in
  (* Build a second tree on the same disk via bulk load. *)
  let records = List.init 500 (fun i -> (2 * i, payload (2 * i))) in
  let disk = Disk.create ~page_size:512 () in
  let pool = Buffer_pool.create (Pager.Backend.of_disk disk) in
  let journal = Journal.create pool (Wal.Log.create ()) in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:512 in
  let tree = Bulk.load ~journal ~alloc ~meta_pid:0 ~tree_name:1 ~fill:0.9 records in
  ignore env;
  Invariant.check ~alloc tree;
  Invariant.check_consistent_with tree ~expected:records;
  let s = Tree.stats tree in
  Alcotest.(check bool) "fill close to 0.9" true (s.Tree.avg_leaf_fill > 0.7);
  Alcotest.(check bool) "has internal levels" true (s.Tree.internal_count > 0)

let test_persistence () =
  let env = mk () in
  for k = 0 to 199 do
    insert env k
  done;
  Buffer_pool.flush_all env.pool;
  (* Reopen through a cold pool over the same disk. *)
  let pool2 = Buffer_pool.create (Pager.Backend.of_disk env.disk) in
  let journal2 = Journal.create pool2 env.log in
  let alloc2 = Alloc.create ~pool:pool2 ~meta_pages:1 ~leaf_pages:512 in
  Alloc.rebuild alloc2;
  let tree2 = Tree.attach ~journal:journal2 ~alloc:alloc2 ~meta_pid:0 () in
  Invariant.check ~alloc:alloc2 tree2;
  Invariant.check_consistent_with tree2 ~expected:(List.init 200 (fun k -> (k, payload k)))

let test_next_base () =
  let env = mk () in
  for k = 0 to 999 do
    insert env k
  done;
  check env;
  (* Walk all base pages via Get_Next and verify they cover all leaves. *)
  let rec collect k acc =
    match Tree.next_base env.tree k with
    | None -> List.rev acc
    | Some pid ->
      let low = Inode.low_mark (Tree.page env.tree pid) in
      collect low (pid :: acc)
  in
  let bases =
    match Tree.first_base env.tree with
    | None -> []
    | Some b -> b :: collect (Inode.low_mark (Tree.page env.tree b)) []
  in
  Alcotest.(check bool) "found bases" true (List.length bases > 1);
  let leaf_count =
    List.fold_left (fun acc b -> acc + Inode.nentries (Tree.page env.tree b)) 0 bases
  in
  Alcotest.(check int) "bases cover all leaves" (Tree.stats env.tree).Tree.leaf_count leaf_count

let test_update () =
  let env = mk () in
  for k = 0 to 99 do
    insert env k
  done;
  Alcotest.(check (option string)) "old payload returned" (Some (payload 50))
    (Tree.update env.tree ~txn:env.txn ~key:50 ~payload:"fresh" ());
  Alcotest.(check (option string)) "new payload" (Some "fresh") (Tree.search env.tree 50);
  Alcotest.(check (option string)) "absent key untouched" None
    (Tree.update env.tree ~txn:env.txn ~key:999 ~payload:"x" ());
  Alcotest.(check (option string)) "still absent" None (Tree.search env.tree 999);
  check env

(* ---------------- cursor + dump ---------------- *)

let test_cursor_walk () =
  let env = mk () in
  let keys = List.init 300 (fun i -> 3 * i) in
  List.iter (insert env) keys;
  let c = Btree.Cursor.first env.tree in
  let collected = ref [] in
  while not (Btree.Cursor.at_end c) do
    collected := Option.get (Btree.Cursor.key c) :: !collected;
    Btree.Cursor.next c
  done;
  Alcotest.(check (list int)) "forward walk = all keys" keys (List.rev !collected);
  (* Backward from the end. *)
  let c = Btree.Cursor.last env.tree in
  let back = ref [] in
  while not (Btree.Cursor.at_start c) do
    back := Option.get (Btree.Cursor.key c) :: !back;
    Btree.Cursor.prev c
  done;
  Alcotest.(check (list int)) "backward walk = all keys" keys !back

let test_cursor_seek () =
  let env = mk () in
  List.iter (insert env) (List.init 200 (fun i -> 4 * i));
  let c = Btree.Cursor.seek env.tree 101 in
  Alcotest.(check (option int)) "first key >= 101" (Some 104) (Btree.Cursor.key c);
  let c = Btree.Cursor.seek env.tree 100 in
  Alcotest.(check (option int)) "exact hit" (Some 100) (Btree.Cursor.key c);
  let c = Btree.Cursor.seek env.tree 10_000 in
  Alcotest.(check bool) "past end" true (Btree.Cursor.at_end c);
  Alcotest.(check int) "count in range" 26
    (Btree.Cursor.count env.tree ~lo:100 ~hi:200)

let test_cursor_survives_reorg () =
  (* Cursor iteration relies on side pointers; after a full reorganization
     they must still visit everything in order. *)
  let records = List.init 400 (fun i -> (2 * i, payload (2 * i))) in
  let db = Sim.Db.load ~leaf_pages:2048 ~fill:0.3 records in
  Workload.Scramble.spread_leaves db.Sim.Db.tree (Util.Rng.create 3) ~span_factor:1.5;
  let ctx = Reorg.Ctx.make ~access:db.Sim.Db.access ~config:Reorg.Config.default () in
  let eng = Sched.Engine.create () in
  Sched.Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  Sched.Engine.run eng;
  let got =
    Btree.Cursor.fold_forward db.Sim.Db.tree ~lo:min_int ~hi:max_int ~init:[]
      ~f:(fun acc r -> (r.Leaf.key, r.Leaf.payload) :: acc)
  in
  Alcotest.(check bool) "cursor sees all records post-reorg" true (List.rev got = records)

let test_dump_renders () =
  let env = mk () in
  for k = 0 to 99 do
    insert env k
  done;
  let d = Btree.Dump.tree env.tree in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions META" true (contains "META" d);
  Alcotest.(check bool) "mentions INTERNAL" true (contains "INTERNAL" d);
  Alcotest.(check bool) "mentions LEAF" true (contains "LEAF" d);
  let chain = Btree.Dump.leaf_chain env.tree in
  Alcotest.(check bool) "one line per leaf" true
    (List.length (String.split_on_char '\n' chain) - 1
    = (Tree.stats env.tree).Tree.leaf_count);
  Wal.Log.force_all env.log;
  let tail = Btree.Dump.log_tail env.log ~n:5 in
  Alcotest.(check bool) "log tail non-empty" true (String.length tail > 0)

(* Model-based property test: a random sequence of inserts/deletes/searches
   behaves like a Map, and invariants hold throughout. *)
let model_test =
  QCheck.Test.make ~name:"btree vs model" ~count:60
    QCheck.(
      make
        Gen.(
          list_size (int_bound 400)
            (pair (int_bound 2) (int_bound 500))))
    (fun ops ->
      let env = mk ~page_size:256 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (op, k) ->
          match op with
          | 0 ->
            if not (Hashtbl.mem model k) then begin
              insert env k;
              Hashtbl.replace model k (payload k)
            end
          | 1 ->
            let got = delete env k in
            let want = Hashtbl.find_opt model k in
            Hashtbl.remove model k;
            if got <> want then QCheck.Test.fail_reportf "delete %d: mismatch" k
          | _ ->
            let got = Tree.search env.tree k in
            let want = Hashtbl.find_opt model k in
            if got <> want then QCheck.Test.fail_reportf "search %d: mismatch" k)
        ops;
      Invariant.check ~alloc:env.alloc env.tree;
      Invariant.check_consistent_with env.tree
        ~expected:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []);
      true)

let inode_page_test =
  QCheck.Test.make ~name:"internal node ops" ~count:200
    QCheck.(make Gen.(list_size (int_bound 50) (pair (int_bound 80) bool)))
    (fun ops ->
      let p = Page.create ~size:512 in
      Inode.init p ~level:1 ~low_mark:min_int;
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, ins) ->
          if ins then begin
            if
              (not (Hashtbl.mem model k))
              && Inode.nentries p < Inode.capacity p
            then
              if Inode.insert p { Inode.key = k; child = k + 1000 } then
                Hashtbl.replace model k (k + 1000)
          end
          else begin
            let got = Inode.delete_key p k in
            let want = Hashtbl.find_opt model k in
            Hashtbl.remove model k;
            match (got, want) with
            | Some e, Some c when e.Inode.child = c -> ()
            | None, None -> ()
            | _ -> QCheck.Test.fail_reportf "inode delete %d mismatch" k
          end)
        ops;
      let got = List.map (fun e -> (e.Inode.key, e.Inode.child)) (Inode.entries p) in
      let want = List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) model []) in
      if got <> want then QCheck.Test.fail_reportf "inode contents mismatch"
      else begin
        (* child_for agrees with a reference lower-bound search. *)
        (match want with
        | [] -> ()
        | _ ->
          List.iter
            (fun probe ->
              let expect =
                List.fold_left (fun acc (k, c) -> if k <= probe then Some c else acc) None want
              in
              match expect with
              | None -> () (* probe below all keys: clamped to first child *)
              | Some c ->
                if (Inode.child_for p probe).Inode.child <> c then
                  QCheck.Test.fail_reportf "child_for %d mismatch" probe)
            [ 0; 13; 40; 79 ]);
        true
      end)

let leaf_page_test =
  QCheck.Test.make ~name:"leaf page ops" ~count:200
    QCheck.(make Gen.(list_size (int_bound 40) (pair (int_bound 60) bool)))
    (fun ops ->
      let p = Page.create ~size:512 in
      Leaf.init p ~low_mark:min_int;
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, ins) ->
          if ins then begin
            if not (Hashtbl.mem model k) then
              let r = { Leaf.key = k; payload = payload k } in
              if Leaf.insert p r then Hashtbl.replace model k (payload k)
          end
          else begin
            let got = Leaf.delete p k in
            let want = Hashtbl.find_opt model k in
            Hashtbl.remove model k;
            if got <> want then QCheck.Test.fail_reportf "leaf delete %d" k
          end)
        ops;
      let got = List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) (Leaf.records p) in
      let want =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
      in
      got = want)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "btree"
    [
      ( "tree",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "sequential inserts" `Quick test_sequential_inserts;
          Alcotest.test_case "shuffled inserts" `Quick test_shuffled_inserts;
          Alcotest.test_case "duplicate key" `Quick test_duplicate;
          Alcotest.test_case "delete + free-at-empty" `Quick test_delete_and_free_at_empty;
          Alcotest.test_case "delete all" `Quick test_delete_all;
          Alcotest.test_case "range scan" `Quick test_range;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "bulk load" `Quick test_bulk_load;
          Alcotest.test_case "persistence" `Quick test_persistence;
          Alcotest.test_case "next_base cursor" `Quick test_next_base;
        ] );
      ( "cursor + dump",
        [
          Alcotest.test_case "cursor walk" `Quick test_cursor_walk;
          Alcotest.test_case "cursor seek" `Quick test_cursor_seek;
          Alcotest.test_case "cursor after reorg" `Quick test_cursor_survives_reorg;
          Alcotest.test_case "dump" `Quick test_dump_renders;
        ] );
      ("properties", [ q model_test; q leaf_page_test; q inode_page_test ]);
    ]
