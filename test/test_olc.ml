(* Optimistic read path (DESIGN.md §11): the version-table mechanics, the
   non-enqueuing RX probe, the zero-lock fast path, the pinned lock trace of
   the locked reader's give-up retry loop (the fallback the optimistic path
   reuses), the concurrent-scan equivalence property, and the
   skipped-version-bump mutation self-test. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Olc = Btree.Olc
module Access = Btree.Access
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr
module Lock_client = Transact.Lock_client
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db

let payload = Db.payload_for

let mk ?(n = 600) () =
  let db = Db.create () in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to n - 1 do
    Tree.insert db.Db.tree ~txn:tx ~key:(2 * k) ~payload:(payload (2 * k)) ()
  done;
  Txn_mgr.commit db.Db.mgr tx;
  db

(* ------------------------------------------------------------------ *)
(* Version table                                                       *)
(* ------------------------------------------------------------------ *)

let test_version_table () =
  let o = Olc.create () in
  Alcotest.(check int) "unwritten page reads 0" 0 (Olc.version o 7);
  Olc.bump o 7;
  Olc.bump o 7;
  Olc.bump o 9;
  Alcotest.(check int) "two bumps" 2 (Olc.version o 7);
  Alcotest.(check int) "independent pages" 1 (Olc.version o 9);
  Alcotest.(check int) "bump counter" 3 (Olc.version_bumps o);
  let e0 = Olc.epoch o in
  Olc.unit_begin o;
  Alcotest.(check bool) "unit active" true (Olc.active o);
  Olc.invalidate_all o;
  Alcotest.(check int) "epoch advanced" (e0 + 1) (Olc.epoch o);
  Alcotest.(check int) "version table cleared" 0 (Olc.version o 7);
  Alcotest.(check bool) "active cleared by crash" false (Olc.active o);
  (* Recovery finishes a unit whose BEGIN predates the crash: the END must
     not drive the gauge negative. *)
  Olc.unit_end o;
  Olc.unit_begin o;
  Alcotest.(check bool) "clamped at zero, not -1" true (Olc.active o);
  Olc.unit_end o;
  Alcotest.(check bool) "balanced again" false (Olc.active o)

let test_skip_bumps_flag () =
  let o = Olc.create () in
  Olc.test_skip_bumps := true;
  Fun.protect
    ~finally:(fun () -> Olc.test_skip_bumps := false)
    (fun () ->
      Olc.bump o 3;
      Alcotest.(check int) "bump suppressed" 0 (Olc.version o 3))

(* ------------------------------------------------------------------ *)
(* Non-enqueuing RX-presence probe                                     *)
(* ------------------------------------------------------------------ *)

let test_probe_non_mutating () =
  let lm = Lock_mgr.create () in
  ignore (Lock_mgr.try_acquire lm ~owner:1 (Resource.Page 5) Mode.RX : Lock_mgr.outcome);
  let s0 = Lock_mgr.stats lm in
  Alcotest.(check bool) "S against RX refused" false
    (Lock_mgr.probe lm ~owner:2 (Resource.Page 5) Mode.S);
  Alcotest.(check bool) "free page grantable" true
    (Lock_mgr.probe lm ~owner:2 (Resource.Page 6) Mode.S);
  Alcotest.(check bool) "re-entrant on own holding" true
    (Lock_mgr.probe lm ~owner:1 (Resource.Page 5) Mode.RX);
  let s1 = Lock_mgr.stats lm in
  Alcotest.(check int) "probes counted" (s0.Lock_mgr.instant_checks + 3)
    s1.Lock_mgr.instant_checks;
  Alcotest.(check int) "no acquires" s0.Lock_mgr.acquires s1.Lock_mgr.acquires;
  Alcotest.(check int) "no waits" s0.Lock_mgr.waits s1.Lock_mgr.waits;
  Alcotest.(check int) "no releases" s0.Lock_mgr.releases s1.Lock_mgr.releases;
  (* Probing never enqueued anything: the refused owner holds and awaits
     nothing, so releasing the RX wakes nobody. *)
  Alcotest.(check (list string)) "probe owner holds nothing" []
    (List.map (fun (r, _) -> Resource.to_string r) (Lock_mgr.held_resources lm ~owner:2))

(* ------------------------------------------------------------------ *)
(* Zero-lock optimistic reads on a quiet tree                          *)
(* ------------------------------------------------------------------ *)

let test_olc_read_zero_locks () =
  let db = mk () in
  Access.set_olc db.Db.access true;
  let olc = Tree.olc db.Db.tree in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      let s0, _, _ = Lock_mgr.mode_tally db.Db.locks Mode.S in
      let a0 = (Lock_mgr.stats db.Db.locks).Lock_mgr.acquires in
      let r0 = Olc.reads olc in
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      Alcotest.(check (option string)) "point value" (Some (payload 100))
        (Access.read db.Db.access ~txn:tx 100);
      Alcotest.(check (option string)) "absent key" None
        (Access.read db.Db.access ~txn:tx 101);
      let keys =
        List.map
          (fun r -> r.Btree.Leaf.key)
          (Access.range_read db.Db.access ~txn:tx ~lo:100 ~hi:140)
      in
      Txn_mgr.finish_read_only db.Db.mgr tx;
      Alcotest.(check (list int)) "range keys"
        [ 100; 102; 104; 106; 108; 110; 112; 114; 116; 118; 120; 122; 124; 126; 128;
          130; 132; 134; 136; 138; 140 ]
        keys;
      let s1, _, _ = Lock_mgr.mode_tally db.Db.locks Mode.S in
      let a1 = (Lock_mgr.stats db.Db.locks).Lock_mgr.acquires in
      Alcotest.(check int) "no S acquires" s0 s1;
      Alcotest.(check int) "no lock acquires at all" a0 a1;
      Alcotest.(check bool) "optimistic reads committed" true (Olc.reads olc > r0));
  Engine.run eng

(* After a crash-style invalidation the epoch differs, but a fresh read
   re-captures current versions and still succeeds optimistically. *)
let test_olc_read_after_invalidate () =
  let db = mk () in
  Access.set_olc db.Db.access true;
  Olc.invalidate_all (Tree.olc db.Db.tree);
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      Alcotest.(check (option string)) "value after epoch advance"
        (Some (payload 200))
        (Access.read db.Db.access ~txn:tx 200);
      Txn_mgr.finish_read_only db.Db.mgr tx);
  Engine.run eng

(* ------------------------------------------------------------------ *)
(* The give-up retry loop's lock trace (the OLC fallback path)          *)
(* ------------------------------------------------------------------ *)

(* Pin the §4.1.2 give-up sequence on the base page, event by event: the
   reader's S arrives, is released when the leaf probe hits the RX, an
   unconditional instant-duration RS parks and is signalled when the
   reorganizer finishes, and the retry re-takes and finally releases S.
   This is the exact loop [Access.give_up_and_wait] drives and the locked
   protocol the optimistic path falls back to. *)
let test_give_up_lock_trace () =
  let db = mk () in
  let reorg = Txn_mgr.fresh_owner db.Db.mgr in
  Lock_mgr.register_reorganizer db.Db.locks reorg.Transact.Txn.id;
  let leaf = Tree.find_leaf db.Db.tree 100 in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 100) in
  let reader = ref (-1) in
  let trace = ref [] in
  Lock_mgr.set_event_hook db.Db.locks
    (Some
       (fun ev ->
         let note owner res kind mode =
           if owner = !reader && res = Resource.Page base then
             trace := (kind ^ " " ^ Mode.to_string mode) :: !trace
         in
         match ev with
         | Lock_mgr.Ev_granted { owner; res; mode; _ } -> note owner res "granted" mode
         | Lock_mgr.Ev_queued { owner; res; mode; instant; _ } ->
           note owner res (if instant then "queued-instant" else "queued") mode
         | Lock_mgr.Ev_signalled { owner; res; mode } -> note owner res "signalled" mode
         | Lock_mgr.Ev_victim { owner; res; mode; _ } -> note owner res "victim" mode
         | Lock_mgr.Ev_dequeued { owner; res; mode } -> note owner res "dequeued" mode
         | Lock_mgr.Ev_released { owner; res; mode } -> note owner res "released" mode));
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page base) Mode.R;
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page leaf) Mode.RX;
      Engine.sleep 10;
      Lock_client.release_all db.Db.locks ~txn:reorg);
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      reader := tx.Transact.Txn.id;
      let v = Access.read db.Db.access ~txn:tx 100 in
      Alcotest.(check (option string)) "correct value" (Some (payload 100)) v;
      Alcotest.(check bool) "gave up once" true (tx.Transact.Txn.gave_up >= 1);
      Txn_mgr.finish_read_only db.Db.mgr tx);
  Engine.run eng;
  Lock_mgr.set_event_hook db.Db.locks None;
  Alcotest.(check (list string)) "base-page lock trace of the retry loop"
    [ "granted S"; "released S"; "queued-instant RS"; "signalled RS"; "granted S";
      "released S" ]
    (List.rev !trace)

(* ------------------------------------------------------------------ *)
(* Concurrent-scan equivalence (3 seeds)                               *)
(* ------------------------------------------------------------------ *)

(* While a full reorganization (pass 1 moves, pass 2 compaction/swaps,
   pass 3 + switch) runs, an optimistic scanner repeatedly reads the whole
   key range lock-free.  Every scan — whatever its interleaving — must
   return exactly the locked answer: the tree's unchanging key set. *)
let test_scan_equivalence () =
  List.iter
    (fun seed ->
      let n = 1500 in
      let db, records = Sim.Scenario.aged ~seed ~n ~f1:0.3 () in
      let expected = List.map fst records in
      Access.set_olc db.Db.access true;
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
      let eng = Engine.create () in
      let report = ref None in
      Engine.spawn eng ~name:"reorganizer" (fun () ->
          report := Some (Reorg.Driver.run ctx));
      let scans = ref 0 in
      Engine.spawn eng ~name:"scanner" (fun () ->
          (* Sliding 100-key windows on a fixed lattice: short enough that
             dozens of scans land inside the reorganization, together
             covering the whole key range many times over. *)
          while !report = None do
            let lo = 37 * !scans mod (2 * n) in
            let hi = lo + 100 in
            let tx = Txn_mgr.fresh_owner db.Db.mgr in
            let keys =
              List.map
                (fun r -> r.Btree.Leaf.key)
                (Access.range_read db.Db.access ~txn:tx ~lo ~hi)
            in
            Txn_mgr.finish_read_only db.Db.mgr tx;
            incr scans;
            if keys <> List.filter (fun k -> k >= lo && k <= hi) expected then
              Alcotest.failf "seed %d scan %d [%d,%d] diverged" seed !scans lo hi;
            Engine.sleep 3
          done;
          (* And one full scan against the locked answer once quiet. *)
          let tx = Txn_mgr.fresh_owner db.Db.mgr in
          let keys =
            List.map
              (fun r -> r.Btree.Leaf.key)
              (Access.range_read db.Db.access ~txn:tx ~lo:0 ~hi:(2 * n))
          in
          Txn_mgr.finish_read_only db.Db.mgr tx;
          Alcotest.(check (list int))
            (Printf.sprintf "seed %d: full optimistic scan" seed)
            expected keys);
      Engine.run eng;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: scans ran concurrently" seed)
        true (!scans > 10))
    [ 3; 5; 9 ]

(* ------------------------------------------------------------------ *)
(* Conflict re-descent must not re-collect absorbed records            *)
(* ------------------------------------------------------------------ *)

(* Regression: an optimistic scan collects leaf A, parks on the chain-step
   yield towards leaf B, and in that window a compact absorbs B's records
   into A (what a pass-2 move does once B's base entry is dropped).  The
   scan's re-descent for the continuation key lands back on A — which now
   also holds every record the scan already collected — so the continuation
   filter must narrow to the continuation key, not the original [lo], or
   A's records are returned twice.  The engine is FIFO-deterministic, so
   parking the compactor for exactly the scanner's descent yields puts its
   one atomic slice precisely inside the scanner's chain-step window. *)
let test_redescend_no_duplicates () =
  let db = mk () in
  Access.set_olc db.Db.access true;
  let tree = db.Db.tree in
  let olc = Tree.olc tree in
  let a = Tree.first_leaf tree in
  let pa = Tree.page tree a in
  let b = Option.get (Btree.Leaf.next pa) in
  let pb = Tree.page tree b in
  (* Thin both leaves to 3 records each so B's survivors fit into A. *)
  let thin p =
    List.iteri
      (fun i k -> if i >= 3 then ignore (Btree.Leaf.delete p k : string option))
      (Btree.Leaf.keys p)
  in
  thin pa;
  thin pb;
  let hi = Option.get (Btree.Leaf.max_key pb) in
  let expected = Btree.Leaf.keys pa @ Btree.Leaf.keys pb in
  let descent_yields = List.length (Tree.descend_path tree 0) in
  let r0 = Olc.retries olc in
  let got = ref [] in
  let eng = Engine.create () in
  Engine.spawn eng ~name:"scanner" (fun () ->
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      got :=
        List.map
          (fun r -> r.Btree.Leaf.key)
          (Access.range_read db.Db.access ~txn:tx ~lo:0 ~hi);
      Txn_mgr.finish_read_only db.Db.mgr tx);
  Engine.spawn eng ~name:"compactor" (fun () ->
      for _ = 1 to descent_yields do
        Engine.yield ()
      done;
      (* One atomic (yield-free) slice: absorb B into A and unlink it. *)
      List.iter
        (fun r -> Alcotest.(check bool) "record fits" true (Btree.Leaf.insert pa r))
        (Btree.Leaf.records pb);
      Btree.Leaf.set_next pa (Btree.Leaf.next pb);
      (match Btree.Leaf.next pb with
      | Some c -> Btree.Leaf.set_prev (Tree.page tree c) (Some a)
      | None -> ());
      let bkey = Btree.Leaf.low_mark pb in
      Btree.Leaf.clear pb;
      Tree.delete_base_entry tree bkey;
      Olc.bump olc a;
      Olc.bump olc b);
  Engine.run eng;
  (* The conflict path must actually have fired, else the staging drifted
     and the check below would pass vacuously. *)
  Alcotest.(check bool) "scan hit the conflict re-descent" true (Olc.retries olc > r0);
  Alcotest.(check (list int)) "no duplicates after re-descend" expected !got

(* ------------------------------------------------------------------ *)
(* Mutation self-test wiring                                           *)
(* ------------------------------------------------------------------ *)

(* With the version bumps suppressed, the conformance sweep must catch a
   committed optimistic read that disagrees with its oracle — the same
   check `reorg-cli model --mutate olc` turns into exit code 2. *)
let test_mutation_caught () =
  let s = Sim.Conformance.mutate_olc () in
  Alcotest.(check bool) "checker reported a violation" false (Sim.Conformance.ok s);
  (* And the identical scenario with bumps intact is clean. *)
  let clean = Sim.Conformance.workload ~olc:true ~seed:11 () in
  Alcotest.(check bool) "clean arm conforms" true (Sim.Conformance.ok clean)

let () =
  Alcotest.run "olc"
    [
      ( "version-table",
        [
          Alcotest.test_case "bump/invalidate/epoch/clamp" `Quick test_version_table;
          Alcotest.test_case "test_skip_bumps" `Quick test_skip_bumps_flag;
        ] );
      ( "probe",
        [ Alcotest.test_case "non-mutating RX probe" `Quick test_probe_non_mutating ] );
      ( "read-path",
        [
          Alcotest.test_case "zero-lock reads" `Quick test_olc_read_zero_locks;
          Alcotest.test_case "read after epoch invalidation" `Quick
            test_olc_read_after_invalidate;
          Alcotest.test_case "give-up retry-loop lock trace" `Quick
            test_give_up_lock_trace;
        ] );
      ( "property",
        [
          Alcotest.test_case "optimistic scan = locked scan (3 seeds)" `Slow
            test_scan_equivalence;
          Alcotest.test_case "conflict re-descend collects no duplicates" `Quick
            test_redescend_no_duplicates;
          Alcotest.test_case "skipped bumps are caught" `Slow test_mutation_caught;
        ] );
    ]
