(* Observability tests: registry, histograms, span nesting, and the golden
   determinism property — same seed, same Chrome-trace bytes. *)

module Registry = Obs.Registry
module Counter = Obs.Counter
module Histogram = Obs.Histogram
module Trace = Obs.Trace

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_counters () =
  let reg = Registry.create () in
  let c = Registry.counter reg "a.hits" in
  Counter.incr c;
  Counter.incr c ~by:4;
  Alcotest.(check int) "value" 5 (Counter.get c);
  (* Find-or-create returns the same cell. *)
  let c' = Registry.counter reg "a.hits" in
  Counter.incr c';
  Alcotest.(check int) "shared cell" 6 (Counter.get c);
  Alcotest.(check (option int)) "value lookup" (Some 6) (Registry.value reg "a.hits");
  Alcotest.(check (option int)) "missing" None (Registry.value reg "nope");
  (* Kind mismatch is an error. *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry.histogram: a.hits is not a histogram") (fun () ->
      ignore (Registry.histogram reg "a.hits"));
  Registry.reset reg;
  Alcotest.(check (option int)) "reset" (Some 0) (Registry.value reg "a.hits")

let test_registry_gauges_and_order () =
  let reg = Registry.create () in
  let live = ref 3 in
  Registry.gauge reg "z.live" (fun () -> !live);
  ignore (Registry.counter reg "b.count");
  ignore (Registry.counter reg "a.count");
  Alcotest.(check (list string)) "sorted dump order"
    [ "a.count"; "b.count"; "z.live" ]
    (List.map fst (Registry.sorted reg));
  Alcotest.(check (option int)) "gauge reads live state" (Some 3) (Registry.value reg "z.live");
  live := 9;
  Alcotest.(check (option int)) "gauge re-reads" (Some 9) (Registry.value reg "z.live");
  (* Gauges survive reset untouched (they have no stored state). *)
  Registry.reset reg;
  Alcotest.(check (option int)) "gauge after reset" (Some 9) (Registry.value reg "z.live");
  (* Re-registration by name is idempotent, not an error. *)
  Registry.gauge reg "z.live" (fun () -> 42);
  Alcotest.(check (option int)) "replaced" (Some 42) (Registry.value reg "z.live");
  Alcotest.(check int) "cardinal" 3 (Registry.cardinal reg)

let test_histogram_summary () =
  let h = Histogram.make "test.h" in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  (* Empty histograms summarize to the zero summary instead of raising. *)
  let s0 = Histogram.summary h in
  Alcotest.(check int) "empty summary count" 0 s0.Util.Stats.count;
  Alcotest.(check (float 0.0)) "empty summary mean" 0.0 s0.Util.Stats.mean;
  List.iter (fun v -> Histogram.observe_int h v) [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  let s = Histogram.summary h in
  Alcotest.(check int) "count" 10 s.Util.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 5.5 s.Util.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Util.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 10.0 s.Util.Stats.max;
  Alcotest.(check (float 1e-9)) "total" 55.0 (Histogram.total h);
  Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Histogram.count h)

let test_registry_json () =
  let reg = Registry.create () in
  Counter.incr (Registry.counter reg "a") ~by:7;
  Registry.gauge reg "b" (fun () -> 2);
  let j = Registry.to_json reg in
  Alcotest.(check string) "json" "{\"a\":7,\"b\":2}" j

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_span_nesting () =
  let time = ref 0 in
  let tr = Trace.create ~clock:(fun () -> !time) () in
  Trace.begin_span tr ~cat:"t" "outer";
  time := 2;
  Trace.begin_span tr ~cat:"t" "inner";
  time := 5;
  Trace.end_span tr ();
  time := 9;
  Trace.end_span tr ~args:[ ("outcome", Trace.Str "ok") ] ();
  Alcotest.(check int) "two spans" 2 (Trace.event_count tr);
  let json = Trace.to_chrome_json tr in
  (* Inner closes first: ts=2 dur=3; outer spans the whole interval. *)
  Alcotest.(check bool) "inner interval" true
    (contains ~needle:"\"name\":\"inner\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":2,\"dur\":3" json);
  Alcotest.(check bool) "outer interval" true
    (contains ~needle:"\"name\":\"outer\",\"cat\":\"t\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0,\"dur\":9" json);
  Alcotest.(check bool) "end args appended" true
    (contains ~needle:"\"outcome\":\"ok\"" json);
  Alcotest.check_raises "unbalanced end"
    (Invalid_argument "Trace.end_span: no open span for tid") (fun () ->
      Trace.end_span tr ())

let test_with_span_on_exception () =
  let time = ref 0 in
  let tr = Trace.create ~clock:(fun () -> !time) () in
  (try
     Trace.with_span tr ~cat:"t" "boom" (fun () ->
         time := 4;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite exception" 1 (Trace.event_count tr);
  Alcotest.(check int) "named" 1 (Trace.count_named tr "boom")

(* ------------------------------------------------------------------ *)
(* End-to-end determinism                                              *)
(* ------------------------------------------------------------------ *)

(* One fixed-seed concurrent reorganization, fully instrumented. *)
let traced_run () =
  let db, _ = Sim.Scenario.aged ~seed:11 ~n:600 ~f1:0.3 () in
  let registry = Obs.Registry.create () in
  let tracer = Obs.Trace.create () in
  let ctx, _report, _ustats =
    Sim.Scenario.run_reorg ~registry ~tracer ~users:4 ~user_mix:Workload.Mix.update_heavy db
  in
  (ctx, registry, tracer)

let test_golden_trace_determinism () =
  let _, reg1, tr1 = traced_run () in
  let _, reg2, tr2 = traced_run () in
  Alcotest.(check string) "identical chrome JSON" (Trace.to_chrome_json tr1)
    (Trace.to_chrome_json tr2);
  Alcotest.(check string) "identical registry dump" (Registry.dump reg1) (Registry.dump reg2);
  Alcotest.(check string) "identical timeline" (Trace.to_timeline tr1) (Trace.to_timeline tr2)

(* The torture harness is many runs in one — dozens of rebuild/crash/recover
   cycles sharing a registry and tracer.  If any of them consulted hidden
   state (wall clock, global rng, hash order), the two passes here would
   diverge somewhere in thousands of events. *)
let tortured_run () =
  let registry = Obs.Registry.create () in
  let tracer = Obs.Trace.create () in
  let r = Sim.Torture.run ~registry ~tracer ~seed:23 ~stride:7 ~n:120 ~leaf_pages:64 () in
  (r, registry, tracer)

let test_golden_torture_determinism () =
  let r1, reg1, tr1 = tortured_run () in
  let r2, reg2, tr2 = tortured_run () in
  Alcotest.(check int) "same crash count" r1.Sim.Torture.crashes r2.Sim.Torture.crashes;
  Alcotest.(check bool) "faults actually injected" true
    (r1.Sim.Torture.torn_writes + r1.Sim.Torture.torn_tails > 0);
  Alcotest.(check string) "identical chrome JSON" (Trace.to_chrome_json tr1)
    (Trace.to_chrome_json tr2);
  Alcotest.(check string) "identical registry dump" (Registry.dump reg1) (Registry.dump reg2);
  (* The shared registry saw the fault and recovery layers, not just the
     usual reorganization counters. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (Registry.value reg1 name <> None))
    [ "fault.crashes"; "recovery.restarts"; "recovery.torn_pages" ]

let test_trace_covers_subsystems () =
  let ctx, reg, tr = traced_run () in
  let json = Trace.to_chrome_json tr in
  (* All three passes, per-unit spans, and lock waits show up. *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "trace mentions %S" needle) true
        (contains ~needle json))
    [ "pass1"; "pass2"; "pass3"; "unit."; "lock.wait"; "reorganizer"; "user-0" ];
  (* The registry saw every layer. *)
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " registered") true (Registry.value reg name <> None))
    [
      "sched.dispatches";
      "lock.acquires";
      "pager.hits";
      "wal.records";
      "core.units";
    ];
  (* Registry counters agree with the Metrics accessors. *)
  Alcotest.(check (option int)) "core.units agrees"
    (Some (Reorg.Metrics.units ctx.Reorg.Ctx.metrics))
    (Registry.value reg "core.units");
  (* Chrome export parses as balanced JSON (cheap structural check). *)
  let depth = ref 0 and min_depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' || c = '[' then incr depth
      else if c = '}' || c = ']' then decr depth;
      if !depth < !min_depth then min_depth := !depth)
    json;
  Alcotest.(check int) "balanced brackets" 0 !depth;
  Alcotest.(check int) "never negative" 0 !min_depth

(* ------------------------------------------------------------------ *)
(* JSON emission                                                       *)
(* ------------------------------------------------------------------ *)

let emit_float x =
  let buf = Buffer.create 32 in
  Obs.Json.float buf x;
  Buffer.contents buf

(* Adversarial floats: nothing non-finite may leak into the output (JSON has
   no nan/inf literals), and every finite value must round-trip exactly
   through its printed form. *)
let test_json_float_adversarial () =
  List.iter
    (fun x ->
      Alcotest.(check string)
        (Printf.sprintf "%h is null" x)
        "null" (emit_float x))
    [ Float.nan; Float.infinity; Float.neg_infinity; 0.0 /. 0.0; 1.0 /. 0.0 ];
  let finite =
    [ 0.0; -0.0; 1.0; -1.0; 0.1; -0.1; 1.0 /. 3.0; 2.0 /. 3.0; 0.55; 0.30;
      1e-10; 1.5e-45; 4e-324 (* smallest subnormal *); Float.min_float;
      Float.max_float; 1e15; 1e15 -. 1.0; 1e15 +. 2.0; 123456789.0;
      9007199254740993.0 (* 2^53 + 1: not representable as itself *);
      3.141592653589793; 1e300; -2.2250738585072011e-308 ]
  in
  List.iter
    (fun x ->
      let s = emit_float x in
      Alcotest.(check bool)
        (Printf.sprintf "%h has no nan/inf text (%s)" x s)
        false
        (contains ~needle:"nan" s || contains ~needle:"inf" s);
      Alcotest.(check bool)
        (Printf.sprintf "%h round-trips via %s" x s)
        true
        (float_of_string s = x))
    finite;
  (* Integer-valued doubles print without an exponent or decimal point. *)
  Alcotest.(check string) "integral compact" "123456789" (emit_float 123456789.0);
  Alcotest.(check string) "zero" "0" (emit_float 0.0)

(* ------------------------------------------------------------------ *)
(* Sampler golden determinism                                          *)
(* ------------------------------------------------------------------ *)

(* Same seed, same sampled health series — byte-for-byte, including the
   counter events the sampler mirrors into the Chrome trace. *)
let sampled_health_run () =
  let db, _ = Sim.Scenario.thinned ~seed:9 ~n:900 ~survive:0.35 () in
  let tracer = Obs.Trace.create () in
  let sampler = Obs.Health.Sampler.create ~tracer db.Sim.Db.health in
  Obs.Health.Sampler.add_probe sampler "pool.flushes" (fun () ->
      (Pager.Buffer_pool.stats db.Sim.Db.pool).Pager.Buffer_pool.s_flushes);
  Obs.Health.watch db.Sim.Db.health ~name:"util<0.55" ~signal:Obs.Health.Utilization
    ~op:`Lt ~threshold:0.55 (fun _ -> ());
  ignore (Sim.Scenario.run_reorg ~tracer ~sampler ~sample_every:20 db);
  (Obs.Health.Sampler.to_json (Obs.Health.Sampler.snapshots sampler), tracer)

let test_sampler_golden_determinism () =
  let series1, tr1 = sampled_health_run () in
  let series2, tr2 = sampled_health_run () in
  Alcotest.(check bool) "series non-trivial" true (String.length series1 > 2);
  Alcotest.(check string) "identical sampled series" series1 series2;
  Alcotest.(check string) "identical chrome JSON (incl. counter events)"
    (Trace.to_chrome_json tr1) (Trace.to_chrome_json tr2);
  (* The trace carries the sampler's counter rows and the watch fire. *)
  let json = Trace.to_chrome_json tr1 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "trace mentions %S" needle) true
        (contains ~needle json))
    [ "\"ph\":\"C\""; "tree-health"; "health.watch-fire" ]

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters" `Quick test_registry_counters;
          Alcotest.test_case "gauges and order" `Quick test_registry_gauges_and_order;
          Alcotest.test_case "histogram summaries" `Quick test_histogram_summary;
          Alcotest.test_case "json" `Quick test_registry_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "with_span on exception" `Quick test_with_span_on_exception;
        ] );
      ( "json",
        [ Alcotest.test_case "adversarial floats" `Quick test_json_float_adversarial ] );
      ( "end-to-end",
        [
          Alcotest.test_case "golden determinism" `Quick test_golden_trace_determinism;
          Alcotest.test_case "golden torture determinism" `Quick test_golden_torture_determinism;
          Alcotest.test_case "subsystem coverage" `Quick test_trace_covers_subsystems;
          Alcotest.test_case "sampler golden determinism" `Quick
            test_sampler_golden_determinism;
        ] );
    ]
