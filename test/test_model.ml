(* Protocol-model tests: the state-machine DSL itself, conformance of real
   executions (clean workload, torture crash sweeps, sharded sweeps), the
   mutation self-tests, and the deterministic deadlock-victim regression. *)

module Machine = Model.Machine
module Checker = Model.Checker
module Prot = Reorg.Prot
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr

(* ------------------------------------------------------------------ *)
(* The DSL                                                             *)
(* ------------------------------------------------------------------ *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

type ev = Inc | Dec | Stop

let counter_def : (int, ev) Machine.def =
  {
    Machine.d_name = "counter";
    d_initial = 0;
    d_pp_state = string_of_int;
    d_pp_event = (function Inc -> "inc" | Dec -> "dec" | Stop -> "stop");
    d_rules =
      [
        Machine.rule "inc"
          ~applies:(fun _ ev -> ev = Inc)
          ~guards:[ ("below-three", fun st _ -> st < 3) ]
          ~next:(fun st _ -> st + 1);
        Machine.rule "dec"
          ~applies:(fun _ ev -> ev = Dec)
          ~guards:[ ("positive", fun st _ -> st > 0) ]
          ~next:(fun st _ -> st - 1);
      ];
    d_invariants = [ ("even-after-stop", fun _ -> true) ];
    d_accepting = (fun st -> st = 0);
  }

let collecting () =
  let vs = ref [] in
  ((fun v -> vs := v :: !vs), fun () -> List.rev !vs)

let test_dsl_basic () =
  let sink, got = collecting () in
  let m = Machine.create counter_def ~sink in
  Machine.step m ~track:"a" Inc;
  Machine.step m ~track:"a" Dec;
  Alcotest.(check int) "no violations" 0 (List.length (got ()));
  Alcotest.(check int) "one track" 1 (Machine.track_count m);
  Alcotest.(check int) "two events" 2 (Machine.events m);
  Machine.finalize m;
  Alcotest.(check int) "accepting at finalize" 0 (List.length (got ()))

let test_dsl_guard_violation () =
  let sink, got = collecting () in
  let m = Machine.create counter_def ~sink in
  Machine.step m ~track:"a" Dec;
  (match got () with
  | [ v ] ->
    Alcotest.(check string) "machine" "counter" v.Machine.v_machine;
    Alcotest.(check string) "track" "a" v.Machine.v_track;
    Alcotest.(check bool) "names the guard" true
      (String.length v.Machine.v_reason > 0
      && contains ~affix:"positive" v.Machine.v_reason)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  (* Poisoned: later events on the track are counted but not re-judged. *)
  Machine.step m ~track:"a" Dec;
  Machine.step m ~track:"a" Stop;
  Alcotest.(check int) "still one violation" 1 (List.length (got ()));
  (* Other tracks are unaffected. *)
  Machine.step m ~track:"b" Inc;
  Alcotest.(check int) "other track clean" 1 (List.length (got ()))

let test_dsl_no_rule () =
  let sink, got = collecting () in
  let m = Machine.create counter_def ~sink in
  Machine.step m ~track:"a" Stop;
  match got () with
  | [ v ] ->
    Alcotest.(check bool) "reports no-transition" true
      (contains ~affix:"no transition" v.Machine.v_reason)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_dsl_history_and_report () =
  let sink, got = collecting () in
  let m = Machine.create counter_def ~sink in
  Machine.step m ~track:"a" Inc;
  Machine.step m ~track:"a" Inc;
  Machine.step m ~track:"a" Inc;
  Machine.step m ~track:"a" Inc;
  (* fourth inc trips below-three *)
  match got () with
  | [ v ] ->
    Alcotest.(check int) "history holds the prior steps" 3 (List.length v.Machine.v_history);
    let r = Machine.violation_to_string v in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "report mentions %S" needle)
          true
          (contains ~affix:needle r))
      [ "counter"; "below-three"; "inc"; "history" ]
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_dsl_finalize_and_reset () =
  let sink, got = collecting () in
  let m = Machine.create counter_def ~sink in
  Machine.step m ~track:"a" Inc;
  Machine.finalize m;
  (match got () with
  | [ v ] ->
    Alcotest.(check bool) "non-accepting reported" true
      (contains ~affix:"non-accepting" v.Machine.v_reason)
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
  let sink2, got2 = collecting () in
  let m2 = Machine.create counter_def ~sink:sink2 in
  Machine.step m2 ~track:"a" Inc;
  Machine.reset m2;
  Machine.finalize m2;
  Alcotest.(check int) "reset drops tracks" 0 (List.length (got2 ()));
  Alcotest.(check int) "track count zero" 0 (Machine.track_count m2)

(* ------------------------------------------------------------------ *)
(* Checker on synthetic event streams                                  *)
(* ------------------------------------------------------------------ *)

let test_checker_rejects_orphan_move () =
  let c = Checker.create () in
  Checker.prot_hook c ~shard:0
    (Prot.Unit_move { actor = 9; unit_id = 4; org = 10; dest = 11; lsn = 5 });
  Alcotest.(check bool) "orphan MOVE rejected" false (Checker.ok c);
  match Checker.first_violation c with
  | Some v ->
    Alcotest.(check string) "unit machine" "unit-lifecycle" v.Machine.v_machine
  | None -> Alcotest.fail "no violation recorded"

let test_checker_rejects_regressing_lsn () =
  let c = Checker.create () in
  let ev l =
    Prot.Unit_modify { actor = 9; unit_id = 4; base = 3; lsn = l }
  in
  Checker.prot_hook c ~shard:0
    (Prot.Unit_begin
       { actor = 9; unit_id = 4; kind = Wal.Record.Compact; bases = [ 3 ]; leaves = [ 10 ]; lsn = 6 });
  Checker.prot_hook c ~shard:0 (ev 7);
  Checker.prot_hook c ~shard:0 (ev 7);
  Alcotest.(check bool) "stale LSN rejected" false (Checker.ok c)

let test_checker_rejects_double_switch () =
  let c = Checker.create () in
  let h = Checker.prot_hook c ~shard:0 in
  h (Prot.Pass3_start { actor = 1; mode = Prot.Fresh; ck = min_int; lambda = false });
  h (Prot.Scan_done { actor = 1 });
  h (Prot.Side_locked { actor = 1 });
  h
    (Prot.Switch_logged
       { actor = 1; old_root = 2; new_root = 3; old_name = 0; new_name = 1; backlog = 0; lsn = 50 });
  Alcotest.(check bool) "protocol-respecting switch ok" true (Checker.ok c);
  h
    (Prot.Switch_logged
       { actor = 1; old_root = 3; new_root = 4; old_name = 1; new_name = 2; backlog = 0; lsn = 60 });
  Alcotest.(check bool) "second switch without drain rejected" false (Checker.ok c)

let test_checker_rejects_backlogged_switch () =
  let c = Checker.create () in
  let h = Checker.prot_hook c ~shard:0 in
  h (Prot.Pass3_start { actor = 1; mode = Prot.Fresh; ck = min_int; lambda = false });
  h (Prot.Scan_done { actor = 1 });
  h (Prot.Side_locked { actor = 1 });
  h
    (Prot.Switch_logged
       { actor = 1; old_root = 2; new_root = 3; old_name = 0; new_name = 1; backlog = 2; lsn = 50 });
  Alcotest.(check bool) "switch with side-file backlog rejected" false (Checker.ok c)

(* ------------------------------------------------------------------ *)
(* Conformance of real executions                                      *)
(* ------------------------------------------------------------------ *)

let test_clean_workload () =
  let s = Sim.Conformance.workload ~seed:11 () in
  if not (Sim.Conformance.ok s) then Alcotest.fail (Sim.Conformance.to_string s);
  Alcotest.(check bool) "saw events" true (s.Sim.Conformance.events > 0);
  Alcotest.(check bool) "saw tracks" true (s.Sim.Conformance.tracks > 0)

let test_torture_conformance () =
  let s = Sim.Conformance.torture ~n:60 ~leaf_pages:64 ~seed:7 ~stride:13 ~users:2 () in
  if not (Sim.Conformance.ok s) then Alcotest.fail (Sim.Conformance.to_string s)

let test_shard_torture_conformance () =
  let s = Sim.Conformance.shard_torture ~n:90 ~seed:7 ~stride:31 () in
  if not (Sim.Conformance.ok s) then Alcotest.fail (Sim.Conformance.to_string s)

(* ------------------------------------------------------------------ *)
(* Mutation self-tests                                                 *)
(* ------------------------------------------------------------------ *)

let test_mutation_table1 () =
  let s = Sim.Conformance.mutate_table1 () in
  Alcotest.(check bool) "broken Table-1 cell is caught" false (Sim.Conformance.ok s);
  match s.Sim.Conformance.violations with
  | v :: _ ->
    Alcotest.(check string) "lock machine objects" "table1-locks" v.Machine.v_machine
  | [] -> Alcotest.fail "no violation"

let test_mutation_switch () =
  let s = Sim.Conformance.mutate_switch () in
  Alcotest.(check bool) "broken CK advance is caught" false (Sim.Conformance.ok s);
  match s.Sim.Conformance.violations with
  | v :: _ ->
    Alcotest.(check string) "switch machine objects" "switch-drain" v.Machine.v_machine;
    Alcotest.(check bool) "names the Get_Current guard" true
      (contains ~affix:"ck-advances" (Machine.violation_to_string v))
  | [] -> Alcotest.fail "no violation"

(* The clean runs above double as the mutation tests' controls: same
   workloads, flags off, zero violations. *)

(* ------------------------------------------------------------------ *)
(* Deterministic deadlock victims                                      *)
(* ------------------------------------------------------------------ *)

(* One seeded contended run; returns the victim sequence (owner, resource,
   forced flag — in decision order) and the lock manager's give_ups. *)
let victim_trace ~seed =
  let db, _ = Sim.Scenario.aged ~page_size:512 ~leaf_pages:256 ~seed ~n:250 ~f1:0.3 () in
  let victims = ref [] in
  Lock_mgr.set_event_hook db.Sim.Db.locks
    (Some
       (function
       | Lock_mgr.Ev_victim { owner; res; forced; _ } ->
         victims := (owner, Resource.to_string res, forced) :: !victims
       | _ -> ()));
  let _ctx, _report, _ustats =
    Sim.Scenario.run_reorg ~users:4 ~user_mix:Workload.Mix.update_heavy ~user_ops:300 ~seed db
  in
  let stats = Lock_mgr.stats db.Sim.Db.locks in
  (List.rev !victims, stats.Lock_mgr.give_ups, stats.Lock_mgr.deadlocks)

let test_victim_determinism () =
  List.iter
    (fun seed ->
      let v1, g1, d1 = victim_trace ~seed in
      let v2, g2, d2 = victim_trace ~seed in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: victim count stable" seed)
        (List.length v1) (List.length v2);
      List.iter2
        (fun (o1, r1, f1) (o2, r2, f2) ->
          if o1 <> o2 || r1 <> r2 || f1 <> f2 then
            Alcotest.failf "seed %d: victim diverged (%d,%s,%b) vs (%d,%s,%b)" seed o1 r1 f1
              o2 r2 f2)
        v1 v2;
      Alcotest.(check int) (Printf.sprintf "seed %d: give_ups stable" seed) g1 g2;
      Alcotest.(check int) (Printf.sprintf "seed %d: deadlocks stable" seed) d1 d2)
    [ 11; 23; 42 ]

let () =
  Alcotest.run "model"
    [
      ( "dsl",
        [
          Alcotest.test_case "steps and accepts" `Quick test_dsl_basic;
          Alcotest.test_case "guard violation" `Quick test_dsl_guard_violation;
          Alcotest.test_case "no-rule violation" `Quick test_dsl_no_rule;
          Alcotest.test_case "history in report" `Quick test_dsl_history_and_report;
          Alcotest.test_case "finalize and reset" `Quick test_dsl_finalize_and_reset;
        ] );
      ( "checker",
        [
          Alcotest.test_case "orphan move" `Quick test_checker_rejects_orphan_move;
          Alcotest.test_case "stale lsn" `Quick test_checker_rejects_regressing_lsn;
          Alcotest.test_case "double switch" `Quick test_checker_rejects_double_switch;
          Alcotest.test_case "backlogged switch" `Quick test_checker_rejects_backlogged_switch;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "clean workload" `Quick test_clean_workload;
          Alcotest.test_case "torture sweep" `Quick test_torture_conformance;
          Alcotest.test_case "shard torture sweep" `Quick test_shard_torture_conformance;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "table1 cell" `Quick test_mutation_table1;
          Alcotest.test_case "switch guard" `Quick test_mutation_switch;
        ] );
      ( "determinism",
        [ Alcotest.test_case "victims across 3 seeds" `Quick test_victim_determinism ] );
    ]
