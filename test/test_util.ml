(* Utility library tests: PRNG determinism and distributions, stats, tables. *)

let test_rng_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Util.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Util.Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let a = Util.Rng.create 9 in
  let b = Util.Rng.split a in
  let xa = Util.Rng.bits64 a and xb = Util.Rng.bits64 b in
  Alcotest.(check bool) "different streams" true (xa <> xb)

let test_permutation () =
  let r = Util.Rng.create 3 in
  let p = Util.Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_zipf_skew () =
  let r = Util.Rng.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20000 do
    let v = Util.Rng.zipf r ~n:100 ~theta:0.9 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 100);
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must dominate the tail under strong skew. *)
  Alcotest.(check bool) "skewed" true (counts.(0) > 10 * counts.(99))

let test_stats () =
  let s = Util.Stats.summarize [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Util.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Util.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Util.Stats.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Util.Stats.p50

let test_stats_empty () =
  (* The empty sample yields the all-zero summary rather than raising, so an
     empty histogram bucket never crashes a metrics dump. *)
  let s = Util.Stats.summarize [||] in
  Alcotest.(check int) "count" 0 s.Util.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 0.0 s.Util.Stats.mean;
  Alcotest.(check (float 1e-9)) "p99" 0.0 s.Util.Stats.p99;
  Alcotest.(check bool) "opt none" true (Util.Stats.summarize_opt [||] = None);
  Alcotest.(check bool) "opt some" true (Util.Stats.summarize_opt [| 1.0 |] <> None)

let test_percentile_extremes () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p1" 1.0 (Util.Stats.percentile xs 1.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Util.Stats.percentile xs 100.0)

let test_table_render () =
  let t = Util.Table.create ~title:"T" [ ("a", Util.Table.Left); ("b", Util.Table.Right) ] in
  Util.Table.add_row t [ "x"; "1" ];
  Util.Table.add_row t [ "longer"; "22" ];
  let s = Util.Table.render t in
  Alcotest.(check bool) "contains rows" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.exists (fun l -> l = "longer | 22"));
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Util.Table.add_row t [ "only-one" ])

let test_formats () =
  Alcotest.(check string) "int commas" "1,234,567" (Util.Table.fmt_int 1234567);
  Alcotest.(check string) "neg int" "-1,000" (Util.Table.fmt_int (-1000));
  Alcotest.(check string) "pct" "50.0%" (Util.Table.fmt_pct 0.5);
  Alcotest.(check string) "ratio nan" "-" (Util.Table.fmt_ratio nan);
  Alcotest.(check string) "bytes" "2.0 KiB" (Util.Table.fmt_bytes 2048)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentiles" `Quick test_percentile_extremes;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formats" `Quick test_formats;
        ] );
    ]
