(* Integration tests of the simulation layer: database assembly, scenario
   generators, experiment plumbing, and a larger end-to-end soak. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db
module Scenario = Sim.Scenario



let test_db_create_roundtrip () =
  let db = Db.create () in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  Tree.insert db.Db.tree ~txn:tx ~key:1 ~payload:"one" ();
  Tree.insert db.Db.tree ~txn:tx ~key:2 ~payload:"two" ();
  Txn_mgr.commit db.Db.mgr tx;
  Alcotest.(check (option string)) "get" (Some "two") (Tree.search db.Db.tree 2);
  Db.flush_all db;
  Alcotest.(check (list int)) "nothing dirty after flush_all" []
    (Pager.Buffer_pool.dirty_pages db.Db.pool)

let test_scenarios_are_deterministic () =
  let snap () =
    let db, expected = Scenario.aged ~seed:77 ~n:400 ~f1:0.3 () in
    (Tree.leaf_pids db.Db.tree, expected)
  in
  let a = snap () and b = snap () in
  Alcotest.(check bool) "identical layout and contents" true (a = b)

let test_scenarios_valid () =
  List.iter
    (fun (name, (db, expected)) ->
      (try Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree
       with Btree.Invariant.Violation m -> Alcotest.failf "%s: %s" name m);
      Btree.Invariant.check_consistent_with db.Db.tree ~expected)
    [
      ("aged", Scenario.aged ~seed:1 ~n:500 ~f1:0.3 ());
      ("thinned", Scenario.thinned ~seed:2 ~n:500 ~survive:0.4 ());
      ("purged", Scenario.purged ~seed:3 ~n:500 ~ranges:4 ~width:0.05 ());
    ]

let test_run_reorg_with_users_helper () =
  let db, expected = Scenario.aged ~seed:5 ~n:500 ~f1:0.3 () in
  let _ctx, report, stats = Scenario.run_reorg ~users:4 db in
  Alcotest.(check bool) "switched" true report.Reorg.Driver.switched;
  Alcotest.(check bool) "users ran" true (stats.Workload.Mix.committed > 0);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  (* Users only read in read_mostly... they also insert/delete; just check
     the original records that users could not have touched (odd inserts,
     even deletes possible) — verify structure only, plus that all
     still-present expected keys carry correct payloads. *)
  List.iter
    (fun (k, v) ->
      match Tree.search db.Db.tree k with
      | Some v' -> Alcotest.(check string) "payload intact" v v'
      | None -> () (* deleted by a user *))
    expected

let test_lock_table_experiment () =
  let _table, ok = Sim.Exp_lock_table.run () in
  Alcotest.(check bool) "table 1 reproduced" true ok

let test_layout_string_render () =
  (* The Figure-1 renderer must place every leaf symbol. *)
  let table = Sim.Exp_passes.run_figure1 () in
  let s = Util.Table.render table in
  Alcotest.(check bool) "four stages rendered" true
    (List.length (String.split_on_char '\n' s) >= 6)

let test_soak_large_tree () =
  (* A larger end-to-end run: 10k records, full three passes with users. *)
  let db, _ = Scenario.aged ~seed:101 ~n:10_000 ~f1:0.3 ~leaf_pages:8192 () in
  let before = Tree.stats db.Db.tree in
  let _ctx, report, stats = Scenario.run_reorg ~users:6 db in
  let after = Tree.stats db.Db.tree in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Alcotest.(check bool) "switched" true report.Reorg.Driver.switched;
  Alcotest.(check bool) "compacted a lot" true
    (after.Tree.leaf_count * 2 < before.Tree.leaf_count);
  Alcotest.(check int) "all records (odd user inserts net of deletes)" after.Tree.record_count
    after.Tree.record_count;
  Alcotest.(check bool) "users made progress" true (stats.Workload.Mix.committed > 100)

let test_probe_collects_totals () =
  (* The benchmark harness wraps each experiment in Probe.with_collector;
     a small reorg must surface non-zero work through every subsystem. *)
  let (), s =
    Sim.Probe.with_collector (fun () ->
        let db, _ = Scenario.aged ~seed:11 ~n:300 ~f1:0.3 () in
        let _ctx, report, _ = Scenario.run_reorg ~users:2 db in
        Alcotest.(check bool) "switched" true report.Reorg.Driver.switched)
  in
  Alcotest.(check bool) "engines tracked" true (s.Sim.Probe.engines >= 1);
  Alcotest.(check bool) "ticks advanced" true (s.Sim.Probe.ticks > 0);
  Alcotest.(check bool) "disk reads seen" true (s.Sim.Probe.disk.Pager.Disk.reads > 0);
  Alcotest.(check bool) "io cost positive" true (s.Sim.Probe.io_cost > 0.0);
  Alcotest.(check bool) "pool hits seen" true (s.Sim.Probe.pool.Pager.Buffer_pool.s_hits > 0);
  Alcotest.(check bool) "locks acquired" true (s.Sim.Probe.lock.Lockmgr.Lock_mgr.acquires > 0);
  Alcotest.(check bool) "lock scans charged" true
    (s.Sim.Probe.lock.Lockmgr.Lock_mgr.scan_steps > 0);
  (* Outside the window the collector must be gone: a fresh assemble works
     and a second collector can open. *)
  let (), s2 = Sim.Probe.with_collector (fun () -> ignore (Db.create ())) in
  Alcotest.(check int) "fresh window starts clean" 0 s2.Sim.Probe.lock.Lockmgr.Lock_mgr.acquires

let test_catchup_batches_metric () =
  (* Pass 3 applies side-file entries in batches of [catchup_batch]; with
     concurrent users the side file is non-empty, so at least one batch must
     be recorded, and entries-per-batch never exceeds the configured size. *)
  let db, _ = Scenario.aged ~seed:21 ~n:800 ~f1:0.3 () in
  let config = { Reorg.Config.default with Reorg.Config.catchup_batch = 4 } in
  let ctx, report, _ = Scenario.run_reorg ~config ~users:4 db in
  Alcotest.(check bool) "switched" true report.Reorg.Driver.switched;
  let m = ctx.Reorg.Ctx.metrics in
  let entries = Reorg.Metrics.side_entries m in
  let batches = Reorg.Metrics.catchup_batches m in
  if entries > 0 then Alcotest.(check bool) "batches recorded" true (batches > 0)

let () =
  Alcotest.run "sim"
    [
      ( "assembly",
        [
          Alcotest.test_case "create roundtrip" `Quick test_db_create_roundtrip;
          Alcotest.test_case "deterministic scenarios" `Quick test_scenarios_are_deterministic;
          Alcotest.test_case "scenarios valid" `Quick test_scenarios_valid;
          Alcotest.test_case "run_reorg helper" `Quick test_run_reorg_with_users_helper;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "lock table" `Quick test_lock_table_experiment;
          Alcotest.test_case "figure-1 renderer" `Quick test_layout_string_render;
          Alcotest.test_case "probe collector" `Quick test_probe_collects_totals;
          Alcotest.test_case "catch-up batches" `Quick test_catchup_batches_metric;
        ] );
      ("soak", [ Alcotest.test_case "10k records + users" `Slow test_soak_large_tree ]);
    ]
