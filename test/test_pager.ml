(* Pager tests: disk accounting, buffer pool, careful writing, allocator. *)

module Page = Pager.Page
module Disk = Pager.Disk
module Backend = Pager.Backend
module Fault = Pager.Fault
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc

let mk ?(pages = 16) ?(page_size = 256) () =
  let disk = Disk.create ~initial_pages:pages ~page_size () in
  (disk, Buffer_pool.create (Backend.of_disk disk))

(* First u16 slot past the pager header — scratch space for the tests. *)
let uoff = Page.header_size + 3

let test_page_accessors () =
  let p = Page.create ~size:256 in
  Page.set_u16 p 20 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Page.get_u16 p 20);
  Page.set_u32 p 30 0xFFFFFFFF;
  Alcotest.(check int) "u32 max" 0xFFFFFFFF (Page.get_u32 p 30);
  Page.set_key p 40 (-123456789);
  Alcotest.(check int) "negative key" (-123456789) (Page.get_key p 40);
  Page.set_lsn p 77L;
  Alcotest.(check int64) "lsn" 77L (Page.lsn p);
  Alcotest.(check int) "kind default" Page.kind_free (Page.kind p)

let test_disk_rw_and_stats () =
  let disk, _ = mk () in
  let p = Page.create ~size:256 in
  Page.set_kind p 1;
  Disk.write disk 3 p;
  let q = Disk.read disk 3 in
  Alcotest.(check bool) "roundtrip" true (Page.equal p q);
  Disk.reset_stats disk;
  ignore (Disk.read disk 5);
  ignore (Disk.read disk 6);
  ignore (Disk.read disk 9);
  let s = Disk.stats disk in
  Alcotest.(check int) "reads" 3 s.Disk.reads;
  Alcotest.(check int) "sequential" 1 s.Disk.seq_reads;
  Alcotest.(check int) "random" 2 s.Disk.rand_reads

let test_disk_bounds () =
  let disk, _ = mk ~pages:4 () in
  Alcotest.check_raises "oob"
    (Invalid_argument "Disk: page 9 out of range (0..3)")
    (fun () -> ignore (Disk.read disk 9))

let test_pool_write_back_and_crash () =
  let disk, pool = mk () in
  let p = Buffer_pool.get pool 2 in
  Page.set_u16 p 50 4242;
  Buffer_pool.mark_dirty pool 2;
  (* Not flushed: disk still has zeros. *)
  Alcotest.(check int) "disk stale" 0 (Page.get_u16 (Disk.peek disk 2) 50);
  Buffer_pool.crash pool;
  let p2 = Buffer_pool.get pool 2 in
  Alcotest.(check int) "lost on crash" 0 (Page.get_u16 p2 50);
  (* Now with a flush, it survives. *)
  Page.set_u16 p2 50 4242;
  Buffer_pool.mark_dirty pool 2;
  Buffer_pool.flush_page pool 2;
  Buffer_pool.crash pool;
  Alcotest.(check int) "survives" 4242 (Page.get_u16 (Buffer_pool.get pool 2) 50)

let test_wal_hook_called () =
  let _, pool = mk () in
  let forced = ref (-1L) in
  Buffer_pool.set_before_write pool (fun lsn -> forced := lsn);
  let p = Buffer_pool.get pool 1 in
  Page.set_lsn p 99L;
  Buffer_pool.mark_dirty pool 1;
  Buffer_pool.flush_page pool 1;
  Alcotest.(check int64) "wal rule" 99L !forced

let test_careful_writing_order () =
  let disk, pool = mk () in
  (* org (page 4) must not reach disk before dest (page 5). *)
  let dest = Buffer_pool.get pool 5 in
  Page.set_u16 dest uoff 1;
  Buffer_pool.mark_dirty pool 5;
  let org = Buffer_pool.get pool 4 in
  Page.set_u16 org uoff 2;
  Buffer_pool.mark_dirty pool 4;
  Buffer_pool.add_dependency pool ~blocked:4 ~prereq:5;
  Buffer_pool.flush_page pool 4;
  (* Flushing org must have flushed dest first. *)
  Alcotest.(check int) "dest on disk" 1 (Page.get_u16 (Disk.peek disk 5) uoff);
  Alcotest.(check int) "org on disk" 2 (Page.get_u16 (Disk.peek disk 4) uoff)

let test_careful_writing_cycle () =
  let _, pool = mk () in
  let a = Buffer_pool.get pool 1 in
  Page.set_u16 a uoff 1;
  Buffer_pool.mark_dirty pool 1;
  let b = Buffer_pool.get pool 2 in
  Page.set_u16 b uoff 2;
  Buffer_pool.mark_dirty pool 2;
  Buffer_pool.add_dependency pool ~blocked:1 ~prereq:2;
  (* The reverse dependency closes a cycle — the swap case. *)
  let raised =
    try
      Buffer_pool.add_dependency pool ~blocked:2 ~prereq:1;
      false
    with Buffer_pool.Cycle _ -> true
  in
  Alcotest.(check bool) "cycle detected" true raised

let test_on_durable () =
  let _, pool = mk () in
  let fired = ref 0 in
  (* Clean page: fires immediately. *)
  Buffer_pool.on_durable pool 7 (fun () -> incr fired);
  Alcotest.(check int) "immediate" 1 !fired;
  let p = Buffer_pool.get pool 7 in
  Page.set_u16 p uoff 9;
  Buffer_pool.mark_dirty pool 7;
  Buffer_pool.on_durable pool 7 (fun () -> incr fired);
  Alcotest.(check int) "deferred" 1 !fired;
  Buffer_pool.flush_page pool 7;
  Alcotest.(check int) "fires on flush" 2 !fired

let test_eviction () =
  let disk, _ = mk ~pages:32 () in
  let pool = Buffer_pool.create ~capacity:4 (Backend.of_disk disk) in
  for pid = 0 to 7 do
    let p = Buffer_pool.get pool pid in
    Page.set_u16 p uoff pid;
    Buffer_pool.mark_dirty pool pid
  done;
  Alcotest.(check bool) "capacity respected" true (Buffer_pool.frame_count pool <= 4);
  (* Dirty evicted pages reached disk and re-read correctly. *)
  for pid = 0 to 7 do
    Alcotest.(check int) "value" pid (Page.get_u16 (Buffer_pool.get pool pid) uoff)
  done

let test_pin_blocks_eviction () =
  let disk, _ = mk ~pages:32 () in
  let pool = Buffer_pool.create ~capacity:2 (Backend.of_disk disk) in
  let p0 = Buffer_pool.pin pool 0 in
  let p1 = Buffer_pool.pin pool 1 in
  Alcotest.check_raises "all pinned" (Failure "Buffer_pool: all frames pinned") (fun () ->
      ignore (Buffer_pool.get pool 2));
  ignore p0;
  ignore p1;
  Buffer_pool.unpin pool 0;
  ignore (Buffer_pool.get pool 2);
  Buffer_pool.unpin pool 1

let test_write_stats_and_cost () =
  let disk, _ = mk () in
  let p = Page.create ~size:256 in
  Disk.reset_stats disk;
  Disk.write disk 3 p;
  Disk.write disk 4 p;
  Disk.write disk 5 p;
  Disk.write disk 9 p;
  let s = Disk.stats disk in
  Alcotest.(check int) "writes" 4 s.Disk.writes;
  Alcotest.(check int) "sequential" 2 s.Disk.seq_writes;
  Alcotest.(check int) "random" 2 s.Disk.rand_writes;
  (* Cost model: 2 random (seek+transfer) + 2 sequential (transfer). *)
  Alcotest.(check (float 1e-9)) "io cost" 24.0 (Disk.io_cost s);
  Alcotest.(check (float 1e-9)) "custom cost" 10.0
    (Disk.io_cost ~seek_cost:4.0 ~transfer_cost:0.5 s)

let test_split_rw_cursors () =
  (* Reads and writes keep independent head cursors: a read interleaved
     into an elevator write run must not turn the next write random (and
     vice versa). *)
  let disk, _ = mk () in
  let p = Page.create ~size:256 in
  Disk.reset_stats disk;
  Disk.write disk 3 p;
  ignore (Disk.read disk 7);
  Disk.write disk 4 p;
  ignore (Disk.read disk 8);
  Disk.write disk 5 p;
  let s = Disk.stats disk in
  Alcotest.(check int) "writes stay sequential across reads" 2 s.Disk.seq_writes;
  Alcotest.(check int) "first write is random" 1 s.Disk.rand_writes;
  Alcotest.(check int) "reads stay sequential across writes" 1 s.Disk.seq_reads;
  Alcotest.(check int) "first read is random" 1 s.Disk.rand_reads

let test_flush_elevator_order () =
  let disk, _ = mk ~pages:32 () in
  let pool = Buffer_pool.create ~capacity:16 (Backend.of_disk disk) in
  List.iter
    (fun pid ->
      let p = Buffer_pool.get pool pid in
      Page.set_u16 p uoff pid;
      Buffer_pool.mark_dirty pool pid)
    [ 9; 2; 11; 4; 10 ];
  Disk.reset_stats disk;
  (* First sweep: limited batch in ascending-pid order from the hand. *)
  Alcotest.(check int) "first batch" 3 (Buffer_pool.flush_elevator ~limit:3 pool);
  Alcotest.(check (list int)) "remaining dirty" [ 10; 11 ] (Buffer_pool.dirty_pages pool);
  (* Second sweep resumes at the hand and drains the rest. *)
  Alcotest.(check int) "second batch" 2 (Buffer_pool.flush_elevator pool);
  Alcotest.(check (list int)) "clean" [] (Buffer_pool.dirty_pages pool);
  let s = Disk.stats disk in
  Alcotest.(check int) "adjacent pids coalesced sequentially" 2 s.Disk.seq_writes;
  List.iter
    (fun pid ->
      Alcotest.(check int) (Printf.sprintf "page %d on disk" pid) pid
        (Page.get_u16 (Disk.peek disk pid) uoff))
    [ 2; 4; 9; 10; 11 ]

let test_dep_chain () =
  (* 1 blocked on 2 blocked on 3 blocked on 4: flushing the most blocked
     page must drive the whole chain, prerequisites first, and fire the
     on_durable callbacks in that order. *)
  let disk, pool = mk () in
  let chain = [ 1; 2; 3; 4 ] in
  List.iter
    (fun pid ->
      let p = Buffer_pool.get pool pid in
      Page.set_u16 p uoff (10 + pid);
      Buffer_pool.mark_dirty pool pid)
    chain;
  Buffer_pool.add_dependency pool ~blocked:1 ~prereq:2;
  Buffer_pool.add_dependency pool ~blocked:2 ~prereq:3;
  Buffer_pool.add_dependency pool ~blocked:3 ~prereq:4;
  (* Closing the loop anywhere along the chain is refused. *)
  let cyclic = try Buffer_pool.add_dependency pool ~blocked:4 ~prereq:1; false
    with Buffer_pool.Cycle _ -> true
  in
  Alcotest.(check bool) "transitive cycle refused" true cyclic;
  let fired = ref [] in
  List.iter (fun pid -> Buffer_pool.on_durable pool pid (fun () -> fired := pid :: !fired)) chain;
  Buffer_pool.flush_page pool 1;
  List.iter
    (fun pid ->
      Alcotest.(check int)
        (Printf.sprintf "page %d on disk" pid)
        (10 + pid)
        (Page.get_u16 (Disk.peek disk pid) uoff))
    chain;
  Alcotest.(check (list int)) "durable callbacks prereq-first" [ 4; 3; 2; 1 ] (List.rev !fired)

let test_fault_crash_boundary () =
  let disk = Disk.create ~initial_pages:16 ~page_size:256 () in
  let fault = Fault.create () in
  let b = Backend.faulty ~fault (Backend.of_disk disk) in
  let p = Page.create ~size:256 in
  Page.set_u16 p uoff 7;
  Fault.arm fault { Fault.no_faults with Fault.crash_after_writes = Some 2 };
  Backend.write b 1 p;
  let crashed = try Backend.write b 2 p; false with Fault.Crash -> true in
  Alcotest.(check bool) "dies on 2nd write" true crashed;
  (* The tripping write itself was applied in full before the crash. *)
  Alcotest.(check int) "tripping write applied" 7 (Page.get_u16 (Disk.peek disk 2) uoff);
  (* The dead machine refuses all I/O until revived. *)
  let dead = try ignore (Backend.read b 1); false with Fault.Crash -> true in
  Alcotest.(check bool) "dead after crash" true dead;
  Fault.revive fault;
  Alcotest.(check int) "alive after reboot" 7 (Page.get_u16 (Backend.read b 1) uoff);
  Alcotest.(check int) "one crash counted" 1 (Fault.crashes fault)

let test_torn_write_detect_and_repair () =
  let disk = Disk.create ~initial_pages:16 ~page_size:256 () in
  let fault = Fault.create () in
  let b = Backend.faulty ~fault (Backend.of_disk disk) in
  let pool = Buffer_pool.create b in
  let p = Buffer_pool.get pool 2 in
  Page.set_u16 p uoff 41;
  Buffer_pool.mark_dirty pool 2;
  Buffer_pool.flush_page pool 2;
  (* Re-dirty and tear the next write: header (with the new checksum)
     lands, the body keeps the old contents. *)
  let p = Buffer_pool.get pool 2 in
  Page.set_u16 p uoff 42;
  Buffer_pool.mark_dirty pool 2;
  Fault.arm fault
    { Fault.no_faults with Fault.crash_after_writes = Some 1; torn_write = true; seed = 7 };
  let crashed = try Buffer_pool.flush_page pool 2; false with Fault.Crash -> true in
  Alcotest.(check bool) "crashed at boundary" true crashed;
  Alcotest.(check int) "torn write counted" 1 (Fault.torn_writes fault);
  Fault.revive fault;
  (* An ordinary load sees the checksum mismatch and refuses the page. *)
  let pool2 = Buffer_pool.create b in
  let torn = try ignore (Buffer_pool.get pool2 2); false
    with Buffer_pool.Torn_page 2 -> true
  in
  Alcotest.(check bool) "torn page detected" true torn;
  (* Recovery's read-repair accepts it with a zeroed LSN and a dirty frame,
     so the whole log replays against the stale body. *)
  let pool3 = Buffer_pool.create b in
  Buffer_pool.set_read_repair pool3 true;
  let q = Buffer_pool.get pool3 2 in
  Alcotest.(check int64) "lsn zeroed" 0L (Page.lsn q);
  Alcotest.(check bool) "dirty for redo" true (Buffer_pool.is_dirty pool3 2);
  Alcotest.(check int) "old body retained" 41 (Page.get_u16 q uoff);
  Alcotest.(check int) "repair counted" 1 (Buffer_pool.torn_detected pool3)

let test_alloc_zones () =
  let _, pool = mk ~pages:1 () in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:8 in
  let lo, hi = Alloc.leaf_zone alloc in
  Alcotest.(check (pair int int)) "zone" (1, 9) (lo, hi);
  let l1 = Alloc.alloc alloc Alloc.Leaf in
  Alcotest.(check int) "first leaf page" 1 l1;
  let i1 = Alloc.alloc alloc Alloc.Internal in
  Alcotest.(check bool) "internal beyond leaf zone" true (i1 >= 9);
  (* Mark allocated pages non-free (callers format them). *)
  let p = Pager.Buffer_pool.get pool l1 in
  Page.set_kind p 1;
  Buffer_pool.mark_dirty pool l1;
  Alcotest.(check bool) "not free" false (Alloc.is_free alloc l1);
  Alloc.free alloc l1;
  Alcotest.(check bool) "free again" true (Alloc.is_free alloc l1)

let test_alloc_free_in_range () =
  let _, pool = mk ~pages:1 () in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:8 in
  (* Claim pages 1..4, leaving 5.. free. *)
  for _ = 1 to 4 do
    ignore (Alloc.alloc alloc Alloc.Leaf)
  done;
  Alcotest.(check (option int)) "first free after 3" (Some 5)
    (Alloc.free_in_range alloc ~lo:3 ~hi:9);
  Alcotest.(check (option int)) "none below 5" None (Alloc.free_in_range alloc ~lo:1 ~hi:5)

let test_alloc_rebuild () =
  let disk, pool = mk ~pages:1 () in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:8 in
  let a = Alloc.alloc alloc Alloc.Leaf in
  let b = Alloc.alloc alloc Alloc.Leaf in
  (* Format a as used, leave b free-looking on disk. *)
  let pa = Buffer_pool.get pool a in
  Page.set_kind pa 1;
  Buffer_pool.mark_dirty pool a;
  Buffer_pool.flush_all pool;
  ignore b;
  let alloc2 = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:8 in
  Alloc.rebuild alloc2;
  Alcotest.(check bool) "a not free" false (Alloc.is_free alloc2 a);
  Alcotest.(check bool) "b free" true (Alloc.is_free alloc2 b);
  ignore disk

let test_deferred_free () =
  let _, pool = mk () in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:8 in
  let org = Alloc.alloc alloc Alloc.Leaf in
  let dest = Alloc.alloc alloc Alloc.Leaf in
  let po = Buffer_pool.get pool org in
  Page.set_kind po 1;
  Buffer_pool.mark_dirty pool org;
  let pd = Buffer_pool.get pool dest in
  Page.set_kind pd 1;
  Buffer_pool.mark_dirty pool dest;
  Alloc.free_when_durable alloc ~page:org ~after:dest;
  Alcotest.(check bool) "not yet free" false (Alloc.is_free alloc org);
  Buffer_pool.flush_page pool dest;
  Alcotest.(check bool) "freed after dest durable" true (Alloc.is_free alloc org)

let test_try_claim () =
  let _, pool = mk ~pages:1 () in
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:8 in
  Alcotest.(check bool) "claims a free page" true (Alloc.try_claim alloc 5);
  Alcotest.(check bool) "no longer free" false (Alloc.is_free alloc 5);
  Alcotest.(check bool) "second claim fails" false (Alloc.try_claim alloc 5);
  Alloc.release alloc 5;
  Alcotest.(check bool) "claimable after release" true (Alloc.try_claim alloc 5)

(* Property: random alloc/free traffic matches a set model, and rebuild
   reconstructs exactly the same free sets from the page bytes. *)
let alloc_model_test =
  QCheck.Test.make ~name:"allocator vs model (+rebuild)" ~count:100
    QCheck.(make Gen.(list_size (int_bound 120) bool))
    (fun ops ->
      let disk = Disk.create ~initial_pages:1 ~page_size:128 () in
      let pool = Buffer_pool.create (Backend.of_disk disk) in
      let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:32 in
      let held = ref [] in
      List.iter
        (fun do_alloc ->
          if do_alloc || !held = [] then begin
            let pid = Alloc.alloc alloc Alloc.Leaf in
            if List.mem pid !held then QCheck.Test.fail_reportf "double alloc %d" pid;
            let p = Buffer_pool.get pool pid in
            Page.set_kind p 1;
            Buffer_pool.mark_dirty pool pid;
            held := pid :: !held
          end
          else begin
            match !held with
            | pid :: rest ->
              Alloc.free alloc pid;
              held := rest
            | [] -> ()
          end)
        ops;
      (* All held pages non-free, everything else in the zone free. *)
      let lo, hi = Alloc.leaf_zone alloc in
      for pid = lo to hi - 1 do
        let expect_free = not (List.mem pid !held) in
        if Alloc.is_free alloc pid <> expect_free then
          QCheck.Test.fail_reportf "free-set mismatch at %d" pid
      done;
      (* Rebuild from bytes agrees. *)
      let alloc2 = Alloc.create ~pool ~meta_pages:1 ~leaf_pages:32 in
      Alloc.rebuild alloc2;
      for pid = lo to hi - 1 do
        if Alloc.is_free alloc2 pid <> Alloc.is_free alloc pid then
          QCheck.Test.fail_reportf "rebuild mismatch at %d" pid
      done;
      true)

(* Property: under a random DAG of careful-writing constraints and a random
   flush order, a prerequisite always reaches disk no later than its
   dependent. *)
let careful_order_test =
  QCheck.Test.make ~name:"careful-writing order holds" ~count:100
    QCheck.(
      make
        Gen.(
          pair
            (list_size (int_bound 20) (pair (int_bound 9) (int_bound 9)))
            (list_size (int_bound 15) (int_bound 9))))
    (fun (deps, flushes) ->
      let disk = Disk.create ~initial_pages:10 ~page_size:128 () in
      let pool = Buffer_pool.create (Backend.of_disk disk) in
      (* Dirty all pages with a marker. *)
      for pid = 0 to 9 do
        let p = Buffer_pool.get pool pid in
        Page.set_u16 p uoff (100 + pid);
        Buffer_pool.mark_dirty pool pid
      done;
      let order = ref [] in
      let accepted = ref [] in
      List.iter
        (fun (blocked, prereq) ->
          if blocked <> prereq then
            try
              Buffer_pool.add_dependency pool ~blocked ~prereq;
              accepted := (blocked, prereq) :: !accepted
            with Buffer_pool.Cycle _ -> ())
        deps;
      (* Observe write order through a wrapper: flushes write to disk; track
         by polling disk state after each flush call. *)
      let on_disk pid = Page.get_u16 (Disk.peek disk pid) uoff = 100 + pid in
      List.iter
        (fun pid ->
          Buffer_pool.flush_page pool pid;
          if on_disk pid then
            if not (List.mem pid !order) then order := pid :: !order;
          (* Every accepted constraint must hold at all times: blocked on
             disk implies prereq on disk. *)
          List.iter
            (fun (blocked, prereq) ->
              if on_disk blocked && not (on_disk prereq) then
                QCheck.Test.fail_reportf "page %d written before prereq %d" blocked prereq)
            !accepted)
        flushes;
      true)

let test_bounded_default_capacity () =
  let _, pool = mk () in
  Alcotest.(check int) "default is bounded" Buffer_pool.default_capacity
    (Buffer_pool.capacity pool);
  Alcotest.(check bool) "and reasonable" true (Buffer_pool.default_capacity < 100_000);
  let disk = Disk.create ~initial_pages:4 ~page_size:256 () in
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Buffer_pool.create: capacity must be >= 1") (fun () ->
      ignore (Buffer_pool.create ~capacity:0 (Backend.of_disk disk)))

let test_clock_second_chance () =
  let disk, _ = mk ~pages:32 () in
  let pool = Buffer_pool.create ~capacity:3 (Backend.of_disk disk) in
  ignore (Buffer_pool.get pool 0);
  ignore (Buffer_pool.get pool 1);
  ignore (Buffer_pool.get pool 2);
  (* All referenced: the first eviction sweep clears every bit and the hand
     lands back on the oldest frame — page 0 goes. *)
  ignore (Buffer_pool.get pool 3);
  Alcotest.(check bool) "oldest evicted" false (Buffer_pool.in_pool pool 0);
  (* Re-reference page 1; pages 2's bit is still clear from the sweep, so the
     next eviction passes over 1 (second chance) and takes 2. *)
  ignore (Buffer_pool.get pool 1);
  ignore (Buffer_pool.get pool 4);
  Alcotest.(check bool) "referenced survives" true (Buffer_pool.in_pool pool 1);
  Alcotest.(check bool) "unreferenced evicted" false (Buffer_pool.in_pool pool 2);
  Alcotest.(check bool) "newcomers resident" true
    (Buffer_pool.in_pool pool 3 && Buffer_pool.in_pool pool 4)

let test_dirty_eviction_flushes_prereqs_in_order () =
  let disk, _ = mk ~pages:32 () in
  let pool = Buffer_pool.create ~capacity:2 (Backend.of_disk disk) in
  (* Ring order [4; 5]: page 4 (blocked) is the eviction victim, and evicting
     it must push its careful-writing prerequisite (page 5) to disk first. *)
  let blocked = Buffer_pool.get pool 4 in
  Page.set_u16 blocked uoff 104;
  Page.set_lsn blocked 44L;
  Buffer_pool.mark_dirty pool 4;
  let prereq = Buffer_pool.get pool 5 in
  Page.set_u16 prereq uoff 105;
  Page.set_lsn prereq 55L;
  Buffer_pool.mark_dirty pool 5;
  Buffer_pool.add_dependency pool ~blocked:4 ~prereq:5;
  let write_lsns = ref [] in
  Buffer_pool.set_before_write pool (fun lsn -> write_lsns := lsn :: !write_lsns);
  ignore (Buffer_pool.get pool 6);
  Alcotest.(check bool) "victim gone" false (Buffer_pool.in_pool pool 4);
  Alcotest.(check (list int64)) "prereq written first" [ 55L; 44L ] (List.rev !write_lsns);
  Alcotest.(check int) "prereq data on disk" 105 (Page.get_u16 (Disk.peek disk 5) uoff);
  Alcotest.(check int) "victim data on disk" 104 (Page.get_u16 (Disk.peek disk 4) uoff);
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "one dep flush" 1 s.Buffer_pool.s_dep_flushes;
  Alcotest.(check int) "one eviction" 1 s.Buffer_pool.s_evictions

let test_stats_counter_trace () =
  (* Hand-computed trace against the clock policy, capacity 2:
     get 0 (miss), get 0 (hit), get 1 (miss), get 0 (hit),
     get 2 (miss; sweep clears 0 and 1, wraps, evicts 0),
     get 0 (miss; 1's bit is still clear, evicts 1). *)
  let disk, _ = mk ~pages:8 () in
  let pool = Buffer_pool.create ~capacity:2 (Backend.of_disk disk) in
  ignore (Buffer_pool.get pool 0);
  ignore (Buffer_pool.get pool 0);
  ignore (Buffer_pool.get pool 1);
  ignore (Buffer_pool.get pool 0);
  ignore (Buffer_pool.get pool 2);
  ignore (Buffer_pool.get pool 0);
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "hits" 2 s.Buffer_pool.s_hits;
  Alcotest.(check int) "misses" 4 s.Buffer_pool.s_misses;
  Alcotest.(check int) "evictions" 2 s.Buffer_pool.s_evictions;
  Alcotest.(check int) "no flushes (all clean)" 0 s.Buffer_pool.s_flushes;
  Alcotest.(check bool) "residents" true
    (Buffer_pool.in_pool pool 0 && Buffer_pool.in_pool pool 2 && not (Buffer_pool.in_pool pool 1))

let () =
  Alcotest.run "pager"
    [
      ( "page+disk",
        [
          Alcotest.test_case "accessors" `Quick test_page_accessors;
          Alcotest.test_case "rw + stats" `Quick test_disk_rw_and_stats;
          Alcotest.test_case "bounds" `Quick test_disk_bounds;
          Alcotest.test_case "write stats + cost" `Quick test_write_stats_and_cost;
          Alcotest.test_case "split r/w cursors" `Quick test_split_rw_cursors;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash boundary" `Quick test_fault_crash_boundary;
          Alcotest.test_case "torn write detect + repair" `Quick
            test_torn_write_detect_and_repair;
        ] );
      ( "buffer pool",
        [
          Alcotest.test_case "write-back + crash" `Quick test_pool_write_back_and_crash;
          Alcotest.test_case "wal hook" `Quick test_wal_hook_called;
          Alcotest.test_case "careful writing order" `Quick test_careful_writing_order;
          Alcotest.test_case "careful writing cycle" `Quick test_careful_writing_cycle;
          Alcotest.test_case "on_durable" `Quick test_on_durable;
          Alcotest.test_case "dependency chain" `Quick test_dep_chain;
          Alcotest.test_case "elevator flush" `Quick test_flush_elevator_order;
          Alcotest.test_case "eviction" `Quick test_eviction;
          Alcotest.test_case "pinning" `Quick test_pin_blocks_eviction;
          Alcotest.test_case "bounded default capacity" `Quick test_bounded_default_capacity;
          Alcotest.test_case "clock second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "dirty eviction prereq order" `Quick
            test_dirty_eviction_flushes_prereqs_in_order;
          Alcotest.test_case "counter trace" `Quick test_stats_counter_trace;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "zones" `Quick test_alloc_zones;
          Alcotest.test_case "free_in_range" `Quick test_alloc_free_in_range;
          Alcotest.test_case "rebuild" `Quick test_alloc_rebuild;
          Alcotest.test_case "deferred free" `Quick test_deferred_free;
          Alcotest.test_case "try_claim" `Quick test_try_claim;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest alloc_model_test;
          QCheck_alcotest.to_alcotest careful_order_test;
        ] );
    ]
