(* Tree-health telemetry tests: the incremental tracker against brute-force
   full-scan recomputation, hook composition in the scheduler/probe, watch
   threshold subscriptions, and the sampler's deterministic series. *)

module Engine = Sched.Engine
module Health = Obs.Health
module Sampler = Obs.Health.Sampler
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr

(* ------------------------------------------------------------------ *)
(* Tracker unit behaviour (no database: a hand-rolled refresher)       *)
(* ------------------------------------------------------------------ *)

let info ?(usable = 100) ?(next = None) ?(low = 0) live =
  { Health.live; usable; next_pid = next; low_key = low }

let test_tracker_basics () =
  let pages = Hashtbl.create 8 in
  let h = Health.create () in
  Health.set_refresher h (Hashtbl.find_opt pages);
  (* Two physically adjacent leaves, then one out of place. *)
  Hashtbl.replace pages 10 (info ~next:(Some 11) ~low:0 40);
  Hashtbl.replace pages 11 (info ~next:(Some 20) ~low:100 80);
  Hashtbl.replace pages 20 (info ~next:None ~low:200 10);
  List.iter (Health.note_dirty h) [ 10; 11; 20 ];
  Alcotest.(check int) "pending before read" 3 (Health.pending_count h);
  let st = Health.stats h in
  Alcotest.(check int) "pending drained" 0 (Health.pending_count h);
  Alcotest.(check int) "leaves" 3 st.Health.leaves;
  Alcotest.(check int) "live" 130 st.Health.live_bytes;
  Alcotest.(check int) "usable" 300 st.Health.usable_bytes;
  Alcotest.(check int) "one chain break (11 -> 20)" 1 st.Health.chain_breaks;
  Alcotest.(check (float 1e-9)) "fragmentation over leaves-1" 0.5 st.Health.fragmentation;
  Alcotest.(check int) "fill decile 4 (40%)" 1 st.Health.fill_buckets.(4);
  Alcotest.(check int) "fill decile 8 (80%)" 1 st.Health.fill_buckets.(8);
  Alcotest.(check int) "fill decile 1 (10%)" 1 st.Health.fill_buckets.(1);
  (* Mutate one page: only it is re-examined, aggregates move by delta. *)
  Hashtbl.replace pages 11 (info ~next:(Some 20) ~low:100 20);
  Health.note_dirty h 11;
  let st = Health.stats h in
  Alcotest.(check int) "live after delta" 70 st.Health.live_bytes;
  Alcotest.(check int) "fill decile 2 gained" 1 st.Health.fill_buckets.(2);
  Alcotest.(check int) "fill decile 8 emptied" 0 st.Health.fill_buckets.(8);
  (* A page that stops being a leaf drops out entirely. *)
  Hashtbl.remove pages 20;
  Health.note_dirty h 20;
  let st = Health.stats h in
  Alcotest.(check int) "leaf gone" 2 st.Health.leaves;
  Alcotest.(check int) "its break went too" 1 st.Health.chain_breaks;
  (* Region utilization: only pages whose low key is inside count. *)
  Alcotest.(check (float 1e-9)) "region [0,50]" 0.4 (Health.region_utilization h ~lo:0 ~hi:50);
  Alcotest.(check (float 1e-9)) "empty region is vacuously full" 1.0
    (Health.region_utilization h ~lo:5000 ~hi:6000);
  (* invalidate_all marks every tracked page pending. *)
  Health.invalidate_all h;
  Alcotest.(check int) "all pending" 2 (Health.pending_count h)

let test_watch_edge_trigger () =
  let pages = Hashtbl.create 8 in
  let h = Health.create () in
  Health.set_refresher h (Hashtbl.find_opt pages);
  Hashtbl.replace pages 1 (info 30);
  Health.note_dirty h 1;
  let fired = ref [] in
  Health.watch h ~name:"low" ~signal:Health.Utilization ~op:`Lt ~threshold:0.55 (fun f ->
      fired := f :: !fired);
  (* Fires once while the condition holds, not every tick. *)
  Alcotest.(check int) "first check fires" 1 (List.length (Health.check_watches h ~now:1));
  Alcotest.(check int) "second check silent" 0 (List.length (Health.check_watches h ~now:2));
  (match !fired with
  | [ f ] ->
    Alcotest.(check string) "name" "low" f.Health.f_name;
    Alcotest.(check int) "stamped" 1 f.Health.f_at;
    Alcotest.(check (float 1e-9)) "value" 0.3 f.Health.f_value
  | _ -> Alcotest.fail "expected exactly one fire");
  (* Condition clears -> re-arms -> fires again on the next breach. *)
  Hashtbl.replace pages 1 (info 80);
  Health.note_dirty h 1;
  Alcotest.(check int) "cleared" 0 (List.length (Health.check_watches h ~now:3));
  Hashtbl.replace pages 1 (info 10);
  Health.note_dirty h 1;
  Alcotest.(check int) "re-fires" 1 (List.length (Health.check_watches h ~now:4));
  Alcotest.(check int) "total" 2 (Health.watch_fires h);
  (* Unwatch removes it. *)
  Health.unwatch h "low";
  Hashtbl.replace pages 1 (info 90);
  Health.note_dirty h 1;
  Hashtbl.replace pages 1 (info 5);
  Health.note_dirty h 1;
  Alcotest.(check int) "unwatched" 0 (List.length (Health.check_watches h ~now:5))

(* ------------------------------------------------------------------ *)
(* Property: incremental stats == brute-force full scan                *)
(* ------------------------------------------------------------------ *)

type brute = {
  b_leaves : int;
  b_live : int;
  b_usable : int;
  b_breaks : int;
  b_fill : int array;
}

let brute_force db =
  let usable =
    Btree.Layout.usable_bytes ~page_size:(Pager.Buffer_pool.page_size db.Sim.Db.pool)
  in
  let leaves = ref 0 and live = ref 0 and breaks = ref 0 in
  let fill = Array.make Health.buckets 0 in
  Tree.iter_leaves db.Sim.Db.tree (fun pid page ->
      incr leaves;
      let lb = Btree.Leaf.live_bytes page in
      live := !live + lb;
      (match Btree.Leaf.next page with
      | Some n when n <> pid + 1 -> incr breaks
      | _ -> ());
      let b = Health.bucket_index ~live:lb ~usable in
      fill.(b) <- fill.(b) + 1);
  { b_leaves = !leaves; b_live = !live; b_usable = !leaves * usable; b_breaks = !breaks;
    b_fill = fill }

let check_agrees ~ctx db =
  let b = brute_force db in
  let st = Health.stats db.Sim.Db.health in
  let name s = Printf.sprintf "%s: %s" ctx s in
  Alcotest.(check int) (name "leaves") b.b_leaves st.Health.leaves;
  Alcotest.(check int) (name "live bytes") b.b_live st.Health.live_bytes;
  Alcotest.(check int) (name "usable bytes") b.b_usable st.Health.usable_bytes;
  Alcotest.(check int) (name "chain breaks") b.b_breaks st.Health.chain_breaks;
  Alcotest.(check (array int)) (name "fill histogram") b.b_fill st.Health.fill_buckets

(* Random transactional inserts and deletes, committed in small batches. *)
let random_ops db rng ~ops ~key_range =
  let batch = ref (Txn_mgr.begin_txn db.Sim.Db.mgr) in
  let in_batch = ref 0 in
  for _ = 1 to ops do
    (if Util.Rng.chance rng 0.45 then begin
       (* Odd keys never collide with the even-keyed base load. *)
       let k = (2 * Util.Rng.int rng key_range) + 1 in
       try Tree.insert db.Sim.Db.tree ~txn:!batch ~key:k ~payload:"prop-test-payload" ()
       with Tree.Duplicate_key _ -> ()
     end
     else
       let k = 2 * Util.Rng.int rng key_range in
       ignore (Tree.delete db.Sim.Db.tree ~txn:!batch k : string option));
    incr in_batch;
    if !in_batch >= 20 then begin
      Txn_mgr.commit db.Sim.Db.mgr !batch;
      batch := Txn_mgr.begin_txn db.Sim.Db.mgr;
      in_batch := 0
    end
  done;
  Txn_mgr.commit db.Sim.Db.mgr !batch

let prop_incremental_matches_brute_force seed () =
  let rng = Util.Rng.create (1000 + seed) in
  let n = 600 + (100 * seed) in
  let db, _ = Sim.Scenario.aged ~seed ~n ~f1:0.3 ~leaf_pages:2048 () in
  check_agrees ~ctx:"after aged load" db;
  random_ops db rng ~ops:400 ~key_range:n;
  check_agrees ~ctx:"after random ops" db;
  ignore (Sim.Scenario.run_reorg db);
  check_agrees ~ctx:"after reorg" db;
  random_ops db rng ~ops:200 ~key_range:n;
  check_agrees ~ctx:"after post-reorg ops" db;
  Btree.Invariant.check ~alloc:db.Sim.Db.alloc db.Sim.Db.tree

(* ------------------------------------------------------------------ *)
(* Scheduler hook composition / Probe regression                       *)
(* ------------------------------------------------------------------ *)

(* Before hooks composed, Probe.with_collector silently dropped any create
   hook someone else had installed (and uninstalled it on exit).  Now a
   foreign hook keeps firing through and after a collector window. *)
let test_probe_does_not_clobber_hooks () =
  let foreign = ref 0 in
  let id = Engine.add_create_hook (fun _ -> incr foreign) in
  Fun.protect
    ~finally:(fun () -> Engine.remove_create_hook id)
    (fun () ->
      let (), sample =
        Sim.Probe.with_collector (fun () ->
            ignore (Engine.create ());
            ignore (Engine.create ()))
      in
      Alcotest.(check int) "collector saw both engines" 2 sample.Sim.Probe.engines;
      Alcotest.(check int) "foreign hook saw both engines" 2 !foreign;
      ignore (Engine.create ());
      Alcotest.(check int) "foreign hook survives collector teardown" 3 !foreign);
  ignore (Engine.create ());
  Alcotest.(check int) "removed hook stops firing" 3 !foreign

let test_hooks_compose_and_remove_independently () =
  let a = ref 0 and b = ref 0 in
  let ida = Engine.add_create_hook (fun _ -> incr a) in
  let idb = Engine.add_create_hook (fun _ -> incr b) in
  Fun.protect
    ~finally:(fun () ->
      Engine.remove_create_hook ida;
      Engine.remove_create_hook idb)
    (fun () ->
      ignore (Engine.create ());
      Alcotest.(check (pair int int)) "both fire" (1, 1) (!a, !b);
      (* Removing one registration leaves the other alone. *)
      Engine.remove_create_hook idb;
      ignore (Engine.create ());
      Alcotest.(check (pair int int)) "removed hook stops, other stays" (2, 1) (!a, !b);
      (* Double-removal of an already removed id is a no-op. *)
      Engine.remove_create_hook idb;
      ignore (Engine.create ());
      Alcotest.(check (pair int int)) "idempotent removal" (3, 1) (!a, !b))

(* Two databases in one process: each keeps its own working health tracker
   (the per-pool dirty hooks must not interfere). *)
let test_two_dbs_track_independently () =
  let mk n = Sim.Db.load ~fill:0.9 (List.init n (fun i -> (2 * i, Sim.Db.payload_for (2 * i)))) in
  let db1 = mk 300 in
  let db2 = mk 900 in
  check_agrees ~ctx:"db1" db1;
  check_agrees ~ctx:"db2" db2;
  let s1 = Health.stats db1.Sim.Db.health in
  let s2 = Health.stats db2.Sim.Db.health in
  Alcotest.(check bool) "trackers are distinct" true (s1.Health.leaves < s2.Health.leaves)

(* ------------------------------------------------------------------ *)
(* Sampler + watches on a real sparsification run                      *)
(* ------------------------------------------------------------------ *)

let sampled_run () =
  let db, _ = Sim.Scenario.thinned ~seed:5 ~n:1200 ~survive:0.3 () in
  let tracer = Obs.Trace.create () in
  let sampler = Sampler.create ~tracer db.Sim.Db.health in
  Sampler.add_probe sampler "pool.flushes" (fun () ->
      (Pager.Buffer_pool.stats db.Sim.Db.pool).Pager.Buffer_pool.s_flushes);
  let fires = ref [] in
  Health.watch db.Sim.Db.health ~name:"util<0.55" ~signal:Health.Utilization ~op:`Lt
    ~threshold:0.55 (fun f -> fires := f :: !fires);
  let before = Health.utilization db.Sim.Db.health in
  ignore (Sim.Scenario.run_reorg ~tracer ~sampler ~sample_every:20 db);
  (db, sampler, tracer, List.rev !fires, before)

let test_watch_fires_into_trace () =
  let db, sampler, tracer, fires, before = sampled_run () in
  let snaps = Sampler.snapshots sampler in
  Alcotest.(check bool) "several samples" true (List.length snaps >= 3);
  (* The degraded tree trips the threshold; the callback ran and the fire
     is in both the snapshot stream and the Chrome trace. *)
  Alcotest.(check bool) "watch fired" true (List.length fires >= 1);
  Alcotest.(check bool) "fire visible in a snapshot" true
    (List.exists (fun s -> List.mem "util<0.55" s.Sampler.fired) snaps);
  Alcotest.(check bool) "fire instant in trace" true
    (Obs.Trace.count_named tracer "health.watch-fire" >= 1);
  Alcotest.(check bool) "counter samples in trace" true
    (Obs.Trace.count_named tracer "tree-health" >= List.length snaps);
  (* Logical clocks are strictly monotone and utilization recovers. *)
  let ats = List.map (fun s -> s.Sampler.at) snaps in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone clock" true (monotone ats);
  let last = List.nth snaps (List.length snaps - 1) in
  Alcotest.(check bool) "utilization recovered past the threshold" true
    (before < 0.55 && last.Sampler.utilization > 0.55);
  List.iter
    (fun (s : Sampler.snapshot) ->
      Alcotest.(check bool) "utilization in [0,1]" true
        (s.Sampler.utilization >= 0.0 && s.Sampler.utilization <= 1.0))
    snaps;
  check_agrees ~ctx:"after sampled run" db

let test_sampler_probe_deltas () =
  let h = Health.create () in
  Health.set_refresher h (fun _ -> None);
  let v = ref 5 in
  let s = Sampler.create h in
  Sampler.add_probe s "v" (fun () -> !v);
  let s1 = Sampler.sample s in
  v := 12;
  let s2 = Sampler.sample s in
  Alcotest.(check (list (triple string int int))) "first sample: delta from zero"
    [ ("v", 5, 5) ] s1.Sampler.probes;
  Alcotest.(check (list (triple string int int))) "second sample: interval delta"
    [ ("v", 12, 7) ] s2.Sampler.probes;
  Alcotest.(check int) "count" 2 (Sampler.count s)

(* ------------------------------------------------------------------ *)
(* Crash: in-memory knowledge is invalidated, then rebuilt lazily      *)
(* ------------------------------------------------------------------ *)

let test_health_survives_crash () =
  let db, _ = Sim.Scenario.aged ~seed:3 ~n:400 ~f1:0.3 () in
  check_agrees ~ctx:"before crash" db;
  Sim.Db.crash_now db;
  ignore (Reorg.Recovery.restart ~access:db.Sim.Db.access ~config:Reorg.Config.default ());
  check_agrees ~ctx:"after crash + recovery" db

let () =
  Alcotest.run "health"
    [
      ( "tracker",
        [
          Alcotest.test_case "incremental basics" `Quick test_tracker_basics;
          Alcotest.test_case "watch edge-triggering" `Quick test_watch_edge_trigger;
        ] );
      ( "property",
        [
          Alcotest.test_case "matches brute force (seed 1)" `Quick
            (prop_incremental_matches_brute_force 1);
          Alcotest.test_case "matches brute force (seed 2)" `Quick
            (prop_incremental_matches_brute_force 2);
          Alcotest.test_case "matches brute force (seed 3)" `Quick
            (prop_incremental_matches_brute_force 3);
        ] );
      ( "hooks",
        [
          Alcotest.test_case "probe does not clobber hooks" `Quick
            test_probe_does_not_clobber_hooks;
          Alcotest.test_case "hooks compose and remove independently" `Quick
            test_hooks_compose_and_remove_independently;
          Alcotest.test_case "two dbs track independently" `Quick
            test_two_dbs_track_independently;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "watch fires into trace" `Quick test_watch_fires_into_trace;
          Alcotest.test_case "probe deltas" `Quick test_sampler_probe_deltas;
          Alcotest.test_case "health survives crash" `Quick test_health_survives_crash;
        ] );
    ]
