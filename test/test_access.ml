(* Access-layer protocol tests (§4.1.2 / §4.1.3): lock footprints of the
   reader and updater protocols, the RX give-up rule, structure-modifying
   restarts, and the base-update hook behind the reorganization bit. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Leaf = Btree.Leaf
module Access = Btree.Access
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr
module Lock_client = Transact.Lock_client
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db

let payload = Db.payload_for

let mk ?(n = 600) () =
  let db = Db.create () in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to n - 1 do
    Tree.insert db.Db.tree ~txn:tx ~key:(2 * k) ~payload:(payload (2 * k)) ()
  done;
  Txn_mgr.commit db.Db.mgr tx;
  db

let run1 f =
  let eng = Engine.create () in
  Engine.spawn eng f;
  Engine.run eng;
  Alcotest.(check int) "process finished" 0 (Engine.live eng)

let test_reader_lock_footprint () =
  let db = mk () in
  run1 (fun () ->
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      let v = Access.read db.Db.access ~txn:tx 100 in
      Alcotest.(check (option string)) "value" (Some (payload 100)) v;
      (* After the read: IS on the tree lock + S on exactly one leaf. *)
      let held = Lock_mgr.held_resources db.Db.locks ~owner:tx.Transact.Txn.id in
      let tree_locks, page_locks =
        List.partition (fun (r, _) -> match r with Resource.Tree _ -> true | _ -> false) held
      in
      Alcotest.(check int) "one tree lock" 1 (List.length tree_locks);
      Alcotest.(check int) "one leaf lock" 1 (List.length page_locks);
      (match page_locks with
      | [ (Resource.Page pid, [ Mode.S ]) ] ->
        Alcotest.(check bool) "it is the leaf holding the key" true
          (Leaf.mem (Tree.page db.Db.tree pid) 100)
      | _ -> Alcotest.fail "expected a single S leaf lock");
      Txn_mgr.finish_read_only db.Db.mgr tx;
      Alcotest.(check int) "all released" 0
        (Lock_mgr.locked_count db.Db.locks ~owner:tx.Transact.Txn.id))

let test_updater_lock_footprint () =
  let db = mk () in
  run1 (fun () ->
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      (* A non-structural insert: X on the leaf only (plus IX tree). *)
      Access.insert db.Db.access ~txn:tx ~key:101 ~payload:"x";
      let held = Lock_mgr.held_resources db.Db.locks ~owner:tx.Transact.Txn.id in
      let xs =
        List.filter
          (fun (r, ms) ->
            match r with Resource.Page _ -> List.mem Mode.X ms | _ -> false)
          held
      in
      Alcotest.(check int) "one X page lock" 1 (List.length xs);
      Txn_mgr.commit db.Db.mgr tx)

let test_reader_gives_up_on_rx () =
  let db = mk () in
  let reorg = Txn_mgr.fresh_owner db.Db.mgr in
  Lock_mgr.register_reorganizer db.Db.locks reorg.Transact.Txn.id;
  let leaf = Tree.find_leaf db.Db.tree 100 in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 100) in
  let order = ref [] in
  let eng = Engine.create () in
  (* "Reorganizer": R on base, RX on the leaf, hold for a while. *)
  Engine.spawn eng (fun () ->
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page base) Mode.R;
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page leaf) Mode.RX;
      order := "rx-held" :: !order;
      Engine.sleep 10;
      Lock_client.release_all db.Db.locks ~txn:reorg;
      order := "rx-released" :: !order);
  (* Reader arrives while the RX is held: must give up, wait via instant RS,
     and still succeed afterwards. *)
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      let v = Access.read db.Db.access ~txn:tx 100 in
      order := "read-done" :: !order;
      Alcotest.(check (option string)) "correct value" (Some (payload 100)) v;
      Alcotest.(check bool) "reader gave up at least once" true
        (tx.Transact.Txn.gave_up >= 1);
      Txn_mgr.finish_read_only db.Db.mgr tx);
  Engine.run eng;
  Alcotest.(check (list string)) "reader finished after the reorganizer"
    [ "rx-held"; "rx-released"; "read-done" ]
    (List.rev !order)

let test_updater_gives_up_on_rx () =
  let db = mk () in
  let reorg = Txn_mgr.fresh_owner db.Db.mgr in
  Lock_mgr.register_reorganizer db.Db.locks reorg.Transact.Txn.id;
  let leaf = Tree.find_leaf db.Db.tree 100 in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 100) in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page base) Mode.R;
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page leaf) Mode.RX;
      Engine.sleep 10;
      Lock_client.release_all db.Db.locks ~txn:reorg);
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      Access.insert db.Db.access ~txn:tx ~key:101 ~payload:"x";
      Alcotest.(check bool) "updater gave up" true (tx.Transact.Txn.gave_up >= 1);
      Txn_mgr.commit db.Db.mgr tx);
  Engine.run eng;
  Alcotest.(check (option string)) "insert landed" (Some "x") (Tree.search db.Db.tree 101)

let test_range_read_during_rx () =
  let db = mk () in
  let reorg = Txn_mgr.fresh_owner db.Db.mgr in
  Lock_mgr.register_reorganizer db.Db.locks reorg.Transact.Txn.id;
  (* RX a leaf in the middle of the scanned range. *)
  let leaf = Tree.find_leaf db.Db.tree 400 in
  let base = Option.get (Tree.parent_of_leaf db.Db.tree 400) in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page base) Mode.R;
      Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page leaf) Mode.RX;
      Engine.sleep 8;
      Lock_client.release_all db.Db.locks ~txn:reorg);
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      let tx = Txn_mgr.fresh_owner db.Db.mgr in
      let rs = Access.range_read db.Db.access ~txn:tx ~lo:300 ~hi:500 in
      let expected = List.init 101 (fun i -> 300 + (2 * i)) in
      Alcotest.(check (list int)) "full range despite RX" expected
        (List.map (fun r -> r.Leaf.key) rs);
      Txn_mgr.finish_read_only db.Db.mgr tx);
  Engine.run eng

let test_structure_restart_releases_locks () =
  let db = mk () in
  run1 (fun () ->
      (* Fill one leaf until a split is forced; afterwards no internal X
         locks may remain (only the leaf lock is kept to txn end). *)
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      let k = ref 1001 in
      let split_done = ref false in
      while not !split_done do
        let before = (Tree.stats db.Db.tree).Tree.leaf_count in
        Access.insert db.Db.access ~txn:tx ~key:!k ~payload:(String.make 30 'x');
        k := !k + 2;
        if (Tree.stats db.Db.tree).Tree.leaf_count > before then split_done := true
      done;
      let held = Lock_mgr.held_resources db.Db.locks ~owner:tx.Transact.Txn.id in
      List.iter
        (fun (r, ms) ->
          match r with
          | Resource.Page pid when List.mem Mode.X ms ->
            Alcotest.(check bool)
              (Printf.sprintf "X lock only on leaves (page %d)" pid)
              true
              (Leaf.is_leaf (Tree.page db.Db.tree pid))
          | _ -> ())
        held;
      Txn_mgr.commit db.Db.mgr tx);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_base_update_hook_fires_only_with_bit () =
  let db = mk () in
  let hits = ref 0 in
  Access.set_on_base_update db.Db.access (fun _ _ -> incr hits);
  let force_split tx start =
    let k = ref start in
    let before = (Tree.stats db.Db.tree).Tree.leaf_count in
    while (Tree.stats db.Db.tree).Tree.leaf_count = before do
      Access.insert db.Db.access ~txn:tx ~key:!k ~payload:(String.make 30 'y');
      k := !k + 2
    done
  in
  run1 (fun () ->
      (* Bit off: hook must not fire. *)
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      force_split tx 2001;
      Txn_mgr.commit db.Db.mgr tx;
      Alcotest.(check int) "no hook without bit" 0 !hits;
      (* Bit on: hook fires with the inserted entry. *)
      Tree.set_reorg_bit db.Db.tree true;
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      force_split tx 4001;
      Txn_mgr.commit db.Db.mgr tx;
      Alcotest.(check bool) "hook fired with bit" true (!hits > 0))

let test_abort_under_protocols () =
  let db = mk () in
  run1 (fun () ->
      let tx = Txn_mgr.begin_txn db.Db.mgr in
      Access.insert db.Db.access ~txn:tx ~key:9001 ~payload:"boo";
      ignore (Access.delete db.Db.access ~txn:tx 100);
      ignore (Access.update db.Db.access ~txn:tx ~key:102 ~payload:"changed");
      Txn_mgr.abort db.Db.mgr tx;
      Alcotest.(check (option string)) "insert rolled back" None (Tree.search db.Db.tree 9001);
      Alcotest.(check (option string)) "delete rolled back" (Some (payload 100))
        (Tree.search db.Db.tree 100);
      Alcotest.(check (option string)) "update rolled back" (Some (payload 102))
        (Tree.search db.Db.tree 102));
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_many_random_interleavings () =
  (* Randomized-scheduler stress: readers + updaters + a fake reorganizer
     taking RX locks; data must stay consistent for every seed. *)
  List.iter
    (fun seed ->
      let db = mk ~n:300 () in
      let model = Hashtbl.create 64 in
      for k = 0 to 299 do
        Hashtbl.replace model (2 * k) (payload (2 * k))
      done;
      let eng = Engine.create ~seed ~random:true () in
      let reorg = Txn_mgr.fresh_owner db.Db.mgr in
      Lock_mgr.register_reorganizer db.Db.locks reorg.Transact.Txn.id;
      Engine.spawn eng (fun () ->
          let rng = Util.Rng.create seed in
          for _ = 1 to 10 do
            let key = 2 * Util.Rng.int rng 300 in
            match Tree.parent_of_leaf db.Db.tree key with
            | Some base -> begin
              let leaf = Tree.find_leaf db.Db.tree key in
              try
                Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page base) Mode.R;
                Lock_client.acquire db.Db.locks ~txn:reorg (Resource.Page leaf) Mode.RX;
                Engine.sleep 3;
                Lock_client.release_all db.Db.locks ~txn:reorg
              with Lock_client.Deadlock_victim ->
                Lock_client.release_all db.Db.locks ~txn:reorg
            end
            | None -> ()
          done);
      for w = 0 to 3 do
        Engine.spawn eng (fun () ->
            let rng = Util.Rng.create (seed + w + 1) in
            for i = 1 to 25 do
              let tx = Txn_mgr.begin_txn db.Db.mgr in
              try
                if Util.Rng.bool rng then begin
                  let k = (2 * ((w * 500) + i)) + 1 in
                  Access.insert db.Db.access ~txn:tx ~key:k ~payload:(payload k);
                  Txn_mgr.commit db.Db.mgr tx;
                  Hashtbl.replace model k (payload k)
                end
                else begin
                  let k = 2 * Util.Rng.int rng 300 in
                  let r = Access.delete db.Db.access ~txn:tx k in
                  Txn_mgr.commit db.Db.mgr tx;
                  if r <> None then Hashtbl.remove model k
                end
              with Lock_client.Deadlock_victim -> Txn_mgr.abort db.Db.mgr tx
            done)
      done;
      Engine.run eng;
      Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      Btree.Invariant.check_consistent_with db.Db.tree
        ~expected:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ---------------- record-level locking (§4.1.2's IS/IX option) -------- *)

let test_record_locking_allows_same_leaf () =
  let db = Db.create ~record_locking:true () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      let t1 = Txn_mgr.begin_txn db.Db.mgr in
      for k = 0 to 19 do
        Access.insert db.Db.access ~txn:t1 ~key:(2 * k) ~payload:(payload (2 * k))
      done;
      Txn_mgr.commit db.Db.mgr t1);
  Engine.run eng;
  let eng = Engine.create () in
  let t1 = Txn_mgr.begin_txn db.Db.mgr in
  let t2 = Txn_mgr.begin_txn db.Db.mgr in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Access.insert db.Db.access ~txn:t1 ~key:101 ~payload:"a";
      order := "t1-inserted" :: !order;
      Engine.sleep 10;
      Txn_mgr.commit db.Db.mgr t1;
      order := "t1-committed" :: !order);
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      (* Same leaf, different key: IX + IX are compatible. *)
      Access.insert db.Db.access ~txn:t2 ~key:103 ~payload:"b";
      order := "t2-inserted" :: !order;
      Txn_mgr.commit db.Db.mgr t2);
  Engine.run eng;
  Alcotest.(check (list string)) "t2 did not wait for t1's commit"
    [ "t1-inserted"; "t2-inserted"; "t1-committed" ]
    (List.rev !order);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_page_locking_serializes_same_leaf () =
  let db = Db.create () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      let t1 = Txn_mgr.begin_txn db.Db.mgr in
      for k = 0 to 19 do
        Access.insert db.Db.access ~txn:t1 ~key:(2 * k) ~payload:(payload (2 * k))
      done;
      Txn_mgr.commit db.Db.mgr t1);
  Engine.run eng;
  let eng = Engine.create () in
  let t1 = Txn_mgr.begin_txn db.Db.mgr in
  let t2 = Txn_mgr.begin_txn db.Db.mgr in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      Access.insert db.Db.access ~txn:t1 ~key:101 ~payload:"a";
      order := "t1-inserted" :: !order;
      Engine.sleep 10;
      Txn_mgr.commit db.Db.mgr t1;
      order := "t1-committed" :: !order);
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      Access.insert db.Db.access ~txn:t2 ~key:103 ~payload:"b";
      order := "t2-inserted" :: !order;
      Txn_mgr.commit db.Db.mgr t2);
  Engine.run eng;
  Alcotest.(check (list string)) "t2 waited for t1's X page lock"
    [ "t1-inserted"; "t1-committed"; "t2-inserted" ]
    (List.rev !order)

let test_record_lock_conflicts_on_same_key () =
  let db = Db.create ~record_locking:true () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      let t = Txn_mgr.begin_txn db.Db.mgr in
      Access.insert db.Db.access ~txn:t ~key:50 ~payload:"v";
      Txn_mgr.commit db.Db.mgr t);
  Engine.run eng;
  let eng = Engine.create () in
  let t1 = Txn_mgr.begin_txn db.Db.mgr in
  let t2 = Txn_mgr.fresh_owner db.Db.mgr in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      ignore (Access.delete db.Db.access ~txn:t1 50);
      order := "t1-deleted" :: !order;
      Engine.sleep 10;
      Txn_mgr.commit db.Db.mgr t1;
      order := "t1-committed" :: !order);
  Engine.spawn eng (fun () ->
      Engine.sleep 2;
      (* Reading the same key must wait for the deleter's commit. *)
      ignore (Access.read db.Db.access ~txn:t2 50);
      order := "t2-read" :: !order;
      Txn_mgr.finish_read_only db.Db.mgr t2);
  Engine.run eng;
  Alcotest.(check (list string)) "reader waited for the key lock"
    [ "t1-deleted"; "t1-committed"; "t2-read" ]
    (List.rev !order)

let test_reorg_with_record_locking_users () =
  let records = List.init 500 (fun i -> (2 * i, payload (2 * i))) in
  let db = Db.load ~record_locking:true ~leaf_pages:2048 ~fill:0.3 records in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Driver.run ctx);
      finished := true);
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:3 ~users:6 ~ops_per_user:10_000
      ~key_space:500
      ~stop:(fun () -> !finished)
      ~mix:Workload.Mix.update_heavy ()
  in
  Engine.run eng;
  Alcotest.(check bool) "reorg finished" true !finished;
  Alcotest.(check bool) "users worked" true (stats.Workload.Mix.committed > 0);
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree

let () =
  Alcotest.run "access"
    [
      ( "lock footprints",
        [
          Alcotest.test_case "reader" `Quick test_reader_lock_footprint;
          Alcotest.test_case "updater" `Quick test_updater_lock_footprint;
          Alcotest.test_case "structure restart" `Quick test_structure_restart_releases_locks;
        ] );
      ( "give-up protocol",
        [
          Alcotest.test_case "reader vs RX" `Quick test_reader_gives_up_on_rx;
          Alcotest.test_case "updater vs RX" `Quick test_updater_gives_up_on_rx;
          Alcotest.test_case "range scan vs RX" `Quick test_range_read_during_rx;
        ] );
      ( "hooks + rollback",
        [
          Alcotest.test_case "base-update hook" `Quick test_base_update_hook_fires_only_with_bit;
          Alcotest.test_case "abort" `Quick test_abort_under_protocols;
        ] );
      ( "record-level locking",
        [
          Alcotest.test_case "IX coexists on one leaf" `Quick
            test_record_locking_allows_same_leaf;
          Alcotest.test_case "page X serializes" `Quick test_page_locking_serializes_same_leaf;
          Alcotest.test_case "key conflicts serialize" `Quick
            test_record_lock_conflicts_on_same_key;
          Alcotest.test_case "reorg + record-locking users" `Quick
            test_reorg_with_record_locking_users;
        ] );
      ( "stress",
        [ Alcotest.test_case "random interleavings" `Quick test_many_random_interleavings ] );
    ]
