(* Sharding tests: routing is a partition (every key exactly one shard, range
   splits cover exactly), stitched cross-shard scans equal a single scan of
   the merged keyspace, reorganizer unit ids and transaction ids stay
   globally disjoint across shards, cross-shard deadlocks are detected, the
   prefixed registry namespaces per-shard metrics, commit atomicity survives
   a crash sweep, and the parallel phase's makespan actually scales. *)

module Engine = Sched.Engine
module Store = Shard.Store
module Shard_map = Shard.Shard_map
module Coordinator = Shard.Coordinator
module Router = Shard.Router
module Record = Wal.Record

let in_engine f =
  let eng = Engine.create () in
  let r = ref None in
  Engine.spawn eng ~name:"test" (fun () -> r := Some (f ()));
  Engine.run eng;
  Option.get !r

(* ------------------------------------------------------------------ *)
(* Routing is a partition                                              *)
(* ------------------------------------------------------------------ *)

let random_map rng =
  let n = 1 + Util.Rng.int rng 7 in
  let draws = List.init n (fun _ -> Util.Rng.int rng 10_000) in
  let boundaries = List.sort_uniq compare draws in
  Shard_map.create ~boundaries

let prop_every_key_exactly_one_shard seed () =
  let rng = Util.Rng.create seed in
  for _ = 1 to 20 do
    let map = random_map rng in
    let shards = Shard_map.shards map in
    for _ = 1 to 200 do
      let key = Util.Rng.int rng 12_000 - 1_000 in
      let o = Shard_map.owner map key in
      Alcotest.(check bool) "owner in range" true (o >= 0 && o < shards);
      (* The key is inside the owner's range and no other shard's. *)
      let inside i =
        let lo, hi = Shard_map.range_of map i in
        (match lo with None -> true | Some l -> key >= l)
        && match hi with None -> true | Some h -> key < h
      in
      for i = 0 to shards - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "key %d inside shard %d iff owner" key i)
          (i = o) (inside i)
      done
    done
  done

let prop_split_covers_exactly seed () =
  let rng = Util.Rng.create seed in
  for _ = 1 to 50 do
    let map = random_map rng in
    let a = Util.Rng.int rng 12_000 - 1_000 in
    let b = Util.Rng.int rng 12_000 - 1_000 in
    let lo = min a b and hi = max a b in
    let segs = Shard_map.split map ~lo ~hi in
    (* Segments are contiguous, ascending, and cover [lo, hi] exactly. *)
    (match segs with
    | [] -> Alcotest.fail "split returned no segments for a non-empty range"
    | (s0, l0, _) :: _ ->
      Alcotest.(check int) "first segment starts at lo" lo l0;
      Alcotest.(check int) "first segment owned" (Shard_map.owner map lo) s0);
    let rec walk = function
      | [ (s, l, h) ] ->
        Alcotest.(check int) "last segment ends at hi" hi h;
        Alcotest.(check int) "segment owner (lo)" s (Shard_map.owner map l);
        Alcotest.(check int) "segment owner (hi)" s (Shard_map.owner map h)
      | (s, l, h) :: (((s', l', _) :: _) as rest) ->
        Alcotest.(check int) "segments contiguous" (h + 1) l';
        Alcotest.(check bool) "shards ascending" true (s < s');
        Alcotest.(check int) "segment owner (lo)" s (Shard_map.owner map l);
        Alcotest.(check int) "segment owner (hi)" s (Shard_map.owner map h);
        walk rest
      | [] -> ()
    in
    walk segs
  done

(* ------------------------------------------------------------------ *)
(* Stitched scans = single scan of the merged keyspace                 *)
(* ------------------------------------------------------------------ *)

let prop_stitched_scan_matches seed () =
  let t, expected = Sim.Sharded.thinned ~seed ~n:400 ~survive:0.5 ~shards:4 () in
  in_engine (fun () ->
      (* Full-range scan equals the merged expected set. *)
      let x = Coordinator.begin_x t.Sim.Sharded.coord in
      let all = Router.range_read t.Sim.Sharded.router x ~lo:0 ~hi:800 in
      Coordinator.commit t.Sim.Sharded.coord x;
      Alcotest.(check int) "full scan size" (List.length expected) (List.length all);
      List.iter2
        (fun (k, v) (r : Btree.Leaf.record) ->
          Alcotest.(check int) "key" k r.Btree.Leaf.key;
          Alcotest.(check string) "payload" v r.Btree.Leaf.payload)
        expected all;
      (* Sub-ranges straddling shard boundaries, via the lazy cursor. *)
      let rng = Util.Rng.create (seed * 31) in
      for _ = 1 to 10 do
        let a = Util.Rng.int rng 800 and b = Util.Rng.int rng 800 in
        let lo = min a b and hi = max a b in
        let want = List.filter (fun (k, _) -> k >= lo && k <= hi) expected in
        let x = Coordinator.begin_x t.Sim.Sharded.coord in
        let cur = Router.scan t.Sim.Sharded.router x ~lo ~hi in
        let got = ref [] in
        let rec drain () =
          match Router.next cur with
          | Some r -> got := (r.Btree.Leaf.key, r.Btree.Leaf.payload) :: !got;
            drain ()
          | None -> ()
        in
        drain ();
        Coordinator.commit t.Sim.Sharded.coord x;
        Alcotest.(check (list (pair int string)))
          (Printf.sprintf "stitched scan [%d,%d]" lo hi)
          want (List.rev !got)
      done)

let prop_point_ops_route seed () =
  let t, expected = Sim.Sharded.thinned ~seed ~n:300 ~survive:0.6 ~shards:3 () in
  in_engine (fun () ->
      let rng = Util.Rng.create (seed * 17) in
      for _ = 1 to 30 do
        let k, v = List.nth expected (Util.Rng.int rng (List.length expected)) in
        let x = Coordinator.begin_x t.Sim.Sharded.coord in
        (match Router.read t.Sim.Sharded.router x k with
        | Some v' -> Alcotest.(check string) "routed read" v v'
        | None -> Alcotest.fail (Printf.sprintf "lost key %d" k));
        Coordinator.commit t.Sim.Sharded.coord x
      done;
      (* A missing key reads as absent through the router too. *)
      let x = Coordinator.begin_x t.Sim.Sharded.coord in
      Alcotest.(check bool) "odd key absent" true
        (Router.read t.Sim.Sharded.router x 1 = None);
      Coordinator.commit t.Sim.Sharded.coord x)

(* ------------------------------------------------------------------ *)
(* Satellite: globally disjoint ids across shards                      *)
(* ------------------------------------------------------------------ *)

let test_ids_disjoint_across_shards () =
  let t, _expected = Sim.Sharded.thinned ~seed:7 ~n:600 ~survive:0.4 ~shards:2 () in
  let outcome = Sim.Sharded.reorg_parallel t in
  Alcotest.(check bool) "both reorganizers worked" true (outcome.Sim.Sharded.makespan > 0);
  let ids_of (st : Store.t) =
    let units = ref [] and txns = ref [] in
    Wal.Log.iter st.Store.log (fun _ body ->
        match body with
        | Record.Reorg_begin { unit_id; _ } -> units := unit_id :: !units
        | Record.Txn_begin id -> txns := id :: !txns
        | _ -> ());
    (!units, !txns)
  in
  let u0, t0 = ids_of t.Sim.Sharded.stores.(0) in
  let u1, t1 = ids_of t.Sim.Sharded.stores.(1) in
  Alcotest.(check bool) "shard 0 ran units" true (u0 <> []);
  Alcotest.(check bool) "shard 1 ran units" true (u1 <> []);
  (* Shard i of 2 draws every id from the residue class (i+1) mod 2: shard 0
     odd, shard 1 even — so the two shards can never collide. *)
  let all_parity p ids = List.for_all (fun id -> id land 1 = p) ids in
  Alcotest.(check bool) "shard 0 unit ids odd" true (all_parity 1 u0);
  Alcotest.(check bool) "shard 1 unit ids even" true (all_parity 0 u1);
  Alcotest.(check bool) "shard 0 txn ids odd" true (all_parity 1 t0);
  Alcotest.(check bool) "shard 1 txn ids even" true (all_parity 0 t1);
  let inter = List.filter (fun u -> List.mem u u1) u0 in
  Alcotest.(check (list int)) "unit ids disjoint" [] inter;
  let inter_t = List.filter (fun x -> List.mem x t1) t0 in
  Alcotest.(check (list int)) "txn ids disjoint" [] inter_t

(* ------------------------------------------------------------------ *)
(* Cross-shard deadlock detection                                      *)
(* ------------------------------------------------------------------ *)

let test_cross_shard_deadlock_detected () =
  let t, expected = Sim.Sharded.thinned ~seed:11 ~n:200 ~survive:0.8 ~shards:2 () in
  let key_in shard =
    match List.find_opt (fun (k, _) -> Shard_map.owner t.Sim.Sharded.map k = shard) expected with
    | Some (k, _) -> k
    | None -> Alcotest.fail (Printf.sprintf "no key in shard %d" shard)
  in
  let a = key_in 0 and b = key_in 1 in
  let victims = ref 0 and commits = ref 0 in
  let eng = Engine.create () in
  let chase first second name =
    Engine.spawn eng ~name (fun () ->
        let x = Coordinator.begin_x t.Sim.Sharded.coord in
        try
          ignore
            (Router.update t.Sim.Sharded.router x ~key:first
               ~payload:(Store.payload_for first));
          Engine.sleep 5;
          ignore
            (Router.update t.Sim.Sharded.router x ~key:second
               ~payload:(Store.payload_for second));
          Coordinator.commit t.Sim.Sharded.coord x;
          incr commits
        with Transact.Lock_client.Deadlock_victim ->
          Coordinator.abort t.Sim.Sharded.coord x;
          incr victims)
  in
  chase a b "x-forward";
  chase b a "x-backward";
  Engine.run eng;
  (* Opposite lock orders across two different lock managers: only the
     cross-shard waits-for union can see this cycle. *)
  Alcotest.(check int) "one victim" 1 !victims;
  Alcotest.(check int) "one commit" 1 !commits;
  Sim.Sharded.check_invariants t;
  let stats = Coordinator.stats t.Sim.Sharded.coord in
  Alcotest.(check int) "coordinator counted the abort" 1 stats.Coordinator.aborted

(* ------------------------------------------------------------------ *)
(* Prefixed registries                                                 *)
(* ------------------------------------------------------------------ *)

let test_prefixed_registry () =
  let root = Obs.Registry.create () in
  let s0 = Obs.Registry.prefixed root "shard0." in
  let s1 = Obs.Registry.prefixed root "shard1." in
  let c0 = Obs.Registry.counter s0 "wal.records" in
  let c1 = Obs.Registry.counter s1 "wal.records" in
  Obs.Counter.incr ~by:3 c0;
  Obs.Counter.incr ~by:5 c1;
  Alcotest.(check (option int)) "root sees shard0" (Some 3)
    (Obs.Registry.value root "shard0.wal.records");
  Alcotest.(check (option int)) "root sees shard1" (Some 5)
    (Obs.Registry.value root "shard1.wal.records");
  Alcotest.(check (option int)) "view resolves unprefixed" (Some 3)
    (Obs.Registry.value s0 "wal.records");
  Alcotest.(check (option int)) "no unprefixed leak" None
    (Obs.Registry.value root "wal.records");
  let nested = Obs.Registry.prefixed s1 "pool." in
  Obs.Counter.incr (Obs.Registry.counter nested "hits");
  Alcotest.(check (option int)) "prefixes accumulate" (Some 1)
    (Obs.Registry.value root "shard1.pool.hits")

(* ------------------------------------------------------------------ *)
(* Crash/recovery: acked cross-shard txns are all-or-nothing           *)
(* ------------------------------------------------------------------ *)

let test_commit_atomicity_sweep () =
  let report = Sim.Shard_torture.run ~n:140 ~shards:2 ~users:2 ~seed:5 ~stride:1 () in
  Alcotest.(check bool) "boundaries found" true (report.Sim.Shard_torture.write_boundaries > 0);
  Alcotest.(check bool) "crashes exercised" true (report.Sim.Shard_torture.crashes > 0);
  Alcotest.(check bool) "every boundary swept" true
    (report.Sim.Shard_torture.points
    >= report.Sim.Shard_torture.write_boundaries + report.Sim.Shard_torture.force_boundaries);
  Alcotest.(check bool) "acked txns verified" true (report.Sim.Shard_torture.acked_txns > 0);
  (* A three-shard sweep too: commit records span more than two WALs. *)
  let r3 = Sim.Shard_torture.run ~n:150 ~shards:3 ~users:2 ~xspan:3 ~seed:9 ~stride:5 () in
  Alcotest.(check bool) "3-shard crashes exercised" true (r3.Sim.Shard_torture.crashes > 0)

(* ------------------------------------------------------------------ *)
(* Parallel-phase scaling                                              *)
(* ------------------------------------------------------------------ *)

let test_parallel_makespan_scales () =
  let o = Sim.Exp_shard.run_outcome ~n:1600 () in
  List.iter
    (fun (p : Sim.Probe.shard_point) ->
      Alcotest.(check int) "one arm per shard" p.Sim.Probe.p_shards
        (List.length p.Sim.Probe.p_arms))
    o.Sim.Exp_shard.o_points;
  let m1 = o.Sim.Exp_shard.o_makespan_1 and m4 = o.Sim.Exp_shard.o_makespan_4 in
  Alcotest.(check bool)
    (Printf.sprintf "4-shard makespan %d <= 0.6 * 1-shard %d" m4 m1)
    true
    (float_of_int m4 <= 0.6 *. float_of_int m1)

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [
          Alcotest.test_case "every key exactly one shard (seed 1)" `Quick
            (prop_every_key_exactly_one_shard 1);
          Alcotest.test_case "every key exactly one shard (seed 2)" `Quick
            (prop_every_key_exactly_one_shard 2);
          Alcotest.test_case "every key exactly one shard (seed 3)" `Quick
            (prop_every_key_exactly_one_shard 3);
          Alcotest.test_case "splits cover exactly (seed 1)" `Quick
            (prop_split_covers_exactly 1);
          Alcotest.test_case "splits cover exactly (seed 2)" `Quick
            (prop_split_covers_exactly 2);
          Alcotest.test_case "splits cover exactly (seed 3)" `Quick
            (prop_split_covers_exactly 3);
        ] );
      ( "scans",
        [
          Alcotest.test_case "stitched = merged (seed 1)" `Quick
            (prop_stitched_scan_matches 1);
          Alcotest.test_case "stitched = merged (seed 2)" `Quick
            (prop_stitched_scan_matches 2);
          Alcotest.test_case "stitched = merged (seed 3)" `Quick
            (prop_stitched_scan_matches 3);
          Alcotest.test_case "point ops route (seed 4)" `Quick (prop_point_ops_route 4);
        ] );
      ( "isolation",
        [
          Alcotest.test_case "unit and txn ids disjoint across shards" `Quick
            test_ids_disjoint_across_shards;
          Alcotest.test_case "cross-shard deadlock detected" `Quick
            test_cross_shard_deadlock_detected;
          Alcotest.test_case "prefixed registries namespace metrics" `Quick
            test_prefixed_registry;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "acked cross-shard txns all-or-nothing (crash sweep)" `Slow
            test_commit_atomicity_sweep;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "4-shard parallel makespan <= 0.6x" `Slow
            test_parallel_makespan_scales;
        ] );
    ]
