(* WAL tests: codec round-trips (including a qcheck generator over record
   bodies), log stability semantics, checkpoint tracking. *)

module Record = Wal.Record
module Log = Wal.Log
module Lsn = Wal.Lsn

let sample_bodies : Record.body list =
  [
    Txn_begin 7;
    Txn_commit 7;
    Txn_abort 9;
    Update { txn = 1; page = 4; off = 32; before = "aa"; after = "bbb"; prev = 5 };
    Leaf_insert { txn = 2; page = 8; key = 42; payload = "hello"; prev = 0 };
    Leaf_delete { txn = 2; page = 8; key = 42; payload = "hello"; prev = 11 };
    Clr { txn = 2; action = Undo_insert { key = 42 }; undo_next = 3 };
    Clr { txn = 2; action = Undo_delete { key = 1; payload = "p" }; undo_next = 0 };
    Clr { txn = 2; action = Undo_side (Side_insert { key = 5; child = 6 }); undo_next = 1 };
    Reorg_begin { unit_id = 3; rtype = Compact; base_pages = [ 10 ]; leaf_pages = [ 11; 12; 13 ] };
    Reorg_begin { unit_id = 4; rtype = Swap; base_pages = [ 10; 20 ]; leaf_pages = [ 11; 21 ] };
    Reorg_move
      {
        unit_id = 3;
        org = 11;
        dest = 14;
        payload = Full_records [ (1, "x"); (2, "yy") ];
        dest_init = Some { di_low_mark = 1; di_prev = 9; di_next = 15 };
        prev = 2;
      };
    Reorg_move
      { unit_id = 3; org = 12; dest = 14; payload = Keys_only [ 3; 4; 5 ]; dest_init = None; prev = 9 };
    Reorg_modify
      {
        unit_id = 3;
        base = 10;
        edits =
          [
            Insert_entry { key = 1; child = 14 };
            Delete_entry { key = 2; child = 11 };
            Update_entry { org_key = 3; org_child = 12; new_key = 4; new_child = 15 };
          ];
        prev = 12;
      };
    Reorg_end { unit_id = 3; largest_key = 99; prev = 13 };
    Side_file { txn = 5; op = Side_insert { key = 7; child = 30 }; prev = 0 };
    Side_file { txn = 5; op = Side_delete { key = 8; child = 31 }; prev = 2 };
    Side_applied { op = Side_insert { key = 7; child = 30 } };
    Stable_key { key = 1234; new_root = 55 };
    Switch { old_root = 2; new_root = 55; old_name = 1; new_name = 2 };
    Checkpoint
      {
        active_txns = [ (1, 5); (2, 9) ];
        reorg =
          {
            rt_lk = 17;
            rt_unit = Some 3;
            rt_begin_lsn = 4;
            rt_last_lsn = 13;
            rt_ck = Some 200;
          };
        dirty_pages = [ 1; 2; 3 ];
      };
    Checkpoint { active_txns = []; reorg = Record.empty_reorg_table; dirty_pages = [] };
  ]

let test_roundtrip_samples () =
  List.iter
    (fun body ->
      let decoded = Record.decode (Record.encode body) in
      if decoded <> body then
        Alcotest.failf "roundtrip failed for %s" (Format.asprintf "%a" Record.pp body))
    sample_bodies

let test_malformed () =
  Alcotest.check_raises "garbage" (Failure "Record.decode: malformed record") (fun () ->
      ignore (Record.decode "zzzz"));
  Alcotest.check_raises "trailing"
    (Failure "Record.decode: malformed record")
    (fun () -> ignore (Record.decode (Record.encode (Record.Txn_begin 1) ^ "x")))

let test_encoded_size_reflects_payload () =
  let small =
    Record.encoded_size
      (Reorg_move
         { unit_id = 1; org = 1; dest = 2; payload = Keys_only [ 1; 2; 3 ]; dest_init = None; prev = 0 })
  in
  let big =
    Record.encoded_size
      (Reorg_move
         {
           unit_id = 1;
           org = 1;
           dest = 2;
           payload = Full_records [ (1, String.make 50 'a'); (2, String.make 50 'b'); (3, "c") ];
           dest_init = None;
           prev = 0;
         })
  in
  Alcotest.(check bool) "keys-only is smaller" true (small < big)

let test_log_append_read () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  let l2 = Log.append log (Record.Txn_commit 1) in
  Alcotest.(check int) "lsn 1" 1 l1;
  Alcotest.(check int) "lsn 2" 2 l2;
  Alcotest.(check bool) "read back" true (Log.read log l1 = Record.Txn_begin 1);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Log.read log 99))

let test_log_crash_discards_tail () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  Log.force log l1;
  let l2 = Log.append log (Record.Txn_commit 1) in
  ignore l2;
  Log.crash log;
  Alcotest.(check int) "flushed survives" l1 (Log.flushed_lsn log);
  Alcotest.check_raises "tail gone" Not_found (fun () -> ignore (Log.read log l2));
  (* The LSN sequence continues after restart. *)
  let l3 = Log.append log (Record.Txn_begin 2) in
  Alcotest.(check bool) "lsn continues" true (l3 > l2)

let test_log_iter_stable_only () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  let _l2 = Log.append log (Record.Txn_begin 2) in
  Log.force log l1;
  let seen = ref [] in
  Log.iter log (fun lsn _ -> seen := lsn :: !seen);
  Alcotest.(check (list int)) "only stable" [ 1 ] !seen

let test_checkpoint_tracking () =
  let log = Log.create () in
  Alcotest.(check bool) "none" true (Log.last_checkpoint log = None);
  let c =
    Log.append log
      (Record.Checkpoint
         { active_txns = []; reorg = Record.empty_reorg_table; dirty_pages = [] })
  in
  Alcotest.(check bool) "volatile checkpoint not visible" true (Log.last_checkpoint log = None);
  Log.force_all log;
  (match Log.last_checkpoint log with
  | Some (lsn, Record.Checkpoint _) -> Alcotest.(check int) "lsn" c lsn
  | _ -> Alcotest.fail "expected checkpoint");
  ignore c

let test_stats_accounting () =
  let log = Log.create () in
  ignore (Log.append log (Record.Txn_begin 1));
  ignore (Log.append log (Record.Txn_begin 2));
  let s = Log.stats log in
  Alcotest.(check int) "records" 2 s.Log.records;
  Alcotest.(check bool) "bytes counted" true (s.Log.bytes > 0);
  Log.crash log;
  let s2 = Log.stats log in
  Alcotest.(check int) "crash removes unforced from accounting" 0 s2.Log.records

let test_reset_stats_then_crash () =
  let log = Log.create () in
  ignore (Log.append log (Record.Txn_begin 1));
  Log.force_all log;
  Log.reset_stats log;
  (* Only volatile records appended AFTER the reset may be subtracted: the
     stable prefix predates the gauge's zero and a crash must not drive the
     counters negative. *)
  ignore (Log.append log (Record.Txn_begin 2));
  Log.crash log;
  let s = Log.stats log in
  Alcotest.(check int) "records not negative" 0 s.Log.records;
  Alcotest.(check bool) "bytes not negative" true (s.Log.bytes >= 0)

let test_truncate_reclaims_prefix () =
  let log = Log.create () in
  let lsns = List.init 5 (fun i -> Log.append log (Record.Txn_begin i)) in
  Log.force_all log;
  Log.truncate log ~keep_from:4;
  Alcotest.(check int) "base" 3 (Log.base_lsn log);
  Alcotest.(check int) "reclaimed" 3 (Log.truncated_records log);
  Alcotest.check_raises "read below base" Not_found (fun () ->
      ignore (Log.read log (List.nth lsns 1)));
  let seen = ref [] in
  Log.iter log (fun lsn _ -> seen := lsn :: !seen);
  Alcotest.(check (list int)) "iter skips reclaimed" [ 4; 5 ] (List.rev !seen);
  (* Appends continue the LSN sequence and a lower keep_from cannot regress
     the base. *)
  let l6 = Log.append log (Record.Txn_begin 6) in
  Alcotest.(check int) "lsn continues" 6 l6;
  Log.truncate log ~keep_from:2;
  Alcotest.(check int) "base never regresses" 3 (Log.base_lsn log)

let test_truncate_spares_volatile_tail () =
  let log = Log.create () in
  let l1 = Log.append log (Record.Txn_begin 1) in
  Log.force log l1;
  let l2 = Log.append log (Record.Txn_begin 2) in
  (* keep_from above the stable boundary is clamped: the volatile tail is
     the crash model's business, not truncation's. *)
  Log.truncate log ~keep_from:99;
  Alcotest.(check int) "base stops at flushed" l1 (Log.base_lsn log);
  Log.force log l2;
  Alcotest.(check bool) "tail survived" true (Log.read log l2 = Record.Txn_begin 2)

let test_truncate_pins_unit_begin () =
  let log = Log.create () in
  let b =
    Log.append log
      (Record.Reorg_begin { unit_id = 9; rtype = Record.Swap; base_pages = [ 1 ]; leaf_pages = [ 2; 3 ] })
  in
  ignore (Log.append log (Record.Txn_begin 1));
  let m =
    Log.append log
      (Record.Reorg_move
         { unit_id = 9; org = 2; dest = 3; payload = Record.Keys_only [ 1 ]; dest_init = None; prev = b })
  in
  Log.force_all log;
  (* Truncating between the unit's BEGIN and a retained move would leave
     redo unable to recover the unit's type (a Swap replayed as a Compact
     corrupts the tree): keep_from is lowered to the BEGIN. *)
  Log.truncate log ~keep_from:m;
  Alcotest.(check int) "begin retained" (b - 1) (Log.base_lsn log);
  Alcotest.(check bool) "begin readable" true
    (match Log.read log b with Record.Reorg_begin _ -> true | _ -> false)

let test_group_commit_coalesces () =
  let log = Log.create () in
  let gc = Wal.Group_commit.create log in
  let woken = ref [] in
  let lsns = List.init 5 (fun i -> Log.append log (Record.Txn_begin i)) in
  List.iter (fun l -> Wal.Group_commit.request gc l (fun () -> woken := l :: !woken)) lsns;
  Alcotest.(check int) "parked" 5 (Wal.Group_commit.pending gc);
  let f0 = (Log.stats log).Log.forced in
  Wal.Group_commit.flush gc;
  Alcotest.(check int) "one force per batch" (f0 + 1) (Log.stats log).Log.forced;
  Alcotest.(check (list int)) "all woken, oldest first" lsns (List.rev !woken);
  Alcotest.(check int) "nothing parked" 0 (Wal.Group_commit.pending gc);
  Alcotest.(check bool) "acks covered by flushed" true
    (List.for_all (fun l -> l <= Log.flushed_lsn log) !woken);
  let s = Wal.Group_commit.stats gc in
  Alcotest.(check int) "batches" 1 s.Wal.Group_commit.batches;
  Alcotest.(check int) "coalesced" 5 s.Wal.Group_commit.coalesced;
  Alcotest.(check int) "max batch" 5 s.Wal.Group_commit.max_batch

let test_group_commit_torn_tail () =
  let faults = Pager.Fault.create () in
  let log = Log.create () in
  Log.set_fault log faults;
  let gc = Wal.Group_commit.create log in
  let woken = ref [] in
  let lsns = List.init 4 (fun i -> Log.append log (Record.Txn_begin i)) in
  List.iter (fun l -> Wal.Group_commit.request gc l (fun () -> woken := l :: !woken)) lsns;
  let flushed0 = Log.flushed_lsn log in
  Pager.Fault.arm faults
    { Pager.Fault.no_faults with crash_after_forces = Some 1; torn_tail = true; seed = 3 };
  (try
     Wal.Group_commit.flush gc;
     Alcotest.fail "expected Crash"
   with Pager.Fault.Crash -> ());
  Pager.Fault.disarm faults;
  (* The torn force may have committed any prefix, but the boundary is
     monotone and nobody was acknowledged — exactly a synchronous force
     that never returned. *)
  let flushed1 = Log.flushed_lsn log in
  Alcotest.(check bool) "flushed monotone" true (flushed1 >= flushed0);
  Alcotest.(check bool) "flushed bounded" true (flushed1 <= List.nth lsns 3);
  Alcotest.(check (list int)) "no acks from a crashed force" [] !woken;
  Log.crash log;
  List.iter
    (fun l ->
      if l <= flushed1 then
        Alcotest.(check bool) "stable prefix survives" true (Log.read log l = Record.Txn_begin (l - 1))
      else Alcotest.check_raises "torn tail gone" Not_found (fun () -> ignore (Log.read log l)))
    lsns

let test_torn_checkpoint_not_tracked () =
  let faults = Pager.Fault.create () in
  let log = Log.create () in
  Log.set_fault log faults;
  ignore (Log.append log (Record.Txn_begin 1));
  let c =
    Log.append log
      (Record.Checkpoint
         { active_txns = []; reorg = Record.empty_reorg_table; dirty_pages = [] })
  in
  Pager.Fault.arm faults
    { Pager.Fault.no_faults with crash_after_forces = Some 1; torn_tail = true; seed = 11 };
  (try
     Log.force log c;
     Alcotest.fail "expected Crash"
   with Pager.Fault.Crash -> ());
  Pager.Fault.disarm faults;
  (* Only a checkpoint that made it below the stable boundary counts. *)
  (match Log.last_checkpoint log with
  | Some (lsn, _) -> Alcotest.(check bool) "tracked checkpoint is stable" true (lsn <= Log.flushed_lsn log)
  | None -> ())

(* Property: encode/decode round-trips over generated record bodies. *)
let gen_body : Record.body QCheck.Gen.t =
  let open QCheck.Gen in
  let key = int_bound 10000 in
  let pid = int_bound 500 in
  let str = string_size ~gen:printable (int_bound 30) in
  let side_op =
    oneof
      [
        map2 (fun key child -> Record.Side_insert { key; child }) key pid;
        map2 (fun key child -> Record.Side_delete { key; child }) key pid;
      ]
  in
  oneof
    [
      map (fun t -> Record.Txn_begin t) (int_bound 100);
      map (fun t -> Record.Txn_commit t) (int_bound 100);
      (let* txn = int_bound 100 and* page = pid and* off = int_bound 256 in
       let* before = str and* after = str and* prev = int_bound 50 in
       return (Record.Update { txn; page; off; before; after; prev }));
      (let* txn = int_bound 100 and* page = pid and* key = key and* payload = str in
       let* prev = int_bound 50 in
       return (Record.Leaf_insert { txn; page; key; payload; prev }));
      (let* unit_id = int_bound 20 and* org = pid and* dest = pid and* prev = int_bound 50 in
       let* payload =
         oneof
           [
             map (fun ks -> Record.Keys_only ks) (list_size (int_bound 10) key);
             map (fun rs -> Record.Full_records rs) (list_size (int_bound 10) (pair key str));
           ]
       in
       let* dest_init =
         opt
           (let* di_low_mark = key and* di_prev = pid and* di_next = pid in
            return { Record.di_low_mark; di_prev; di_next })
       in
       return (Record.Reorg_move { unit_id; org; dest; payload; dest_init; prev }));
      (let* txn = int_bound 100 and* op = side_op and* prev = int_bound 50 in
       return (Record.Side_file { txn; op; prev }));
    ]

let roundtrip_prop =
  QCheck.Test.make ~name:"record codec roundtrip" ~count:500 (QCheck.make gen_body) (fun body ->
      Record.decode (Record.encode body) = body)

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "samples roundtrip" `Quick test_roundtrip_samples;
          Alcotest.test_case "malformed" `Quick test_malformed;
          Alcotest.test_case "size reflects payload" `Quick test_encoded_size_reflects_payload;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "log",
        [
          Alcotest.test_case "append/read" `Quick test_log_append_read;
          Alcotest.test_case "crash discards tail" `Quick test_log_crash_discards_tail;
          Alcotest.test_case "iter stable only" `Quick test_log_iter_stable_only;
          Alcotest.test_case "checkpoint tracking" `Quick test_checkpoint_tracking;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
          Alcotest.test_case "reset stats then crash" `Quick test_reset_stats_then_crash;
        ] );
      ( "truncate",
        [
          Alcotest.test_case "reclaims prefix" `Quick test_truncate_reclaims_prefix;
          Alcotest.test_case "spares volatile tail" `Quick test_truncate_spares_volatile_tail;
          Alcotest.test_case "pins unit begin" `Quick test_truncate_pins_unit_begin;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "coalesces into one force" `Quick test_group_commit_coalesces;
          Alcotest.test_case "torn tail" `Quick test_group_commit_torn_tail;
          Alcotest.test_case "torn checkpoint not tracked" `Quick test_torn_checkpoint_not_tracked;
        ] );
    ]
