(* Crash / restart tests: ARIES-style basics plus the paper's forward
   recovery, including a sweep of crash points across the whole three-pass
   reorganization. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Invariant = Btree.Invariant
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db
module Buffer_pool = Pager.Buffer_pool

let payload = Db.payload_for

let restart db =
  Reorg.Recovery.restart ~access:db.Db.access ~config:Reorg.Config.default ()

let test_committed_survive_losers_rollback () =
  let db = Db.create () in
  let t1 = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to 99 do
    Tree.insert db.Db.tree ~txn:t1 ~key:k ~payload:(payload k) ()
  done;
  Txn_mgr.commit db.Db.mgr t1;
  (* A loser: inserts + a delete that must be rolled back. *)
  let t2 = Txn_mgr.begin_txn db.Db.mgr in
  for k = 100 to 119 do
    Tree.insert db.Db.tree ~txn:t2 ~key:k ~payload:(payload k) ()
  done;
  ignore (Tree.delete db.Db.tree ~txn:t2 50);
  Db.crash_now ~flush_seed:7 db;
  let _, outcome = restart db in
  Alcotest.(check int) "one loser" 1 outcome.Reorg.Recovery.losers_undone;
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Invariant.check_consistent_with db.Db.tree
    ~expected:(List.init 100 (fun k -> (k, payload k)));
  Alcotest.(check bool) "no reorg to resume" true
    (outcome.Reorg.Recovery.resume = Reorg.Recovery.No_reorg)

let test_redo_after_clean_flush () =
  let db = Db.create () in
  let t1 = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to 49 do
    Tree.insert db.Db.tree ~txn:t1 ~key:k ~payload:(payload k) ()
  done;
  Txn_mgr.commit db.Db.mgr t1;
  (* Nothing flushed at all: redo must rebuild every page from the log. *)
  Db.crash_now db;
  let _, outcome = restart db in
  Alcotest.(check bool) "redo did work" true (outcome.Reorg.Recovery.redo_applied > 0);
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Invariant.check_consistent_with db.Db.tree ~expected:(List.init 50 (fun k -> (k, payload k)))

let test_uncommitted_not_durable () =
  let db = Db.create () in
  let t1 = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to 9 do
    Tree.insert db.Db.tree ~txn:t1 ~key:k ~payload:(payload k) ()
  done;
  (* No commit, no force: everything vanishes. *)
  Db.crash_now db;
  let _, _ = restart db in
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Invariant.check_consistent_with db.Db.tree ~expected:[]

(* ---------------- forward recovery of the reorganizer ---------------- *)

let sparse_records n = List.init n (fun i -> (2 * i, payload (2 * i)))

let mk_sparse ?(n = 700) ?(seed = 5) () =
  let records = sparse_records n in
  let db = Db.load ~page_size:512 ~leaf_pages:2048 ~fill:0.3 records in
  let rng = Util.Rng.create seed in
  Workload.Scramble.spread_leaves db.Db.tree rng ~span_factor:1.3;
  Db.flush_all db;
  (db, records)

(* Run the reorganization but crash after [crash_at] scheduler ticks. *)
let crash_reorg_at db crash_at =
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Driver.run ctx);
      finished := true);
  Engine.spawn eng (fun () ->
      Engine.sleep crash_at;
      Engine.stop eng);
  Engine.run eng;
  Db.crash_now ~flush_seed:(crash_at * 31) db;
  !finished

let recover_and_resume db =
  let ctx, outcome = restart db in
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Recovery.resume_reorganization ctx outcome));
  Engine.run eng;
  (ctx, outcome)

let test_crash_mid_pass1_forward_recovery () =
  let db, records = mk_sparse () in
  let finished = crash_reorg_at db 40 in
  Alcotest.(check bool) "crashed before completion" false finished;
  let ctx, _outcome = recover_and_resume db in
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Invariant.check_consistent_with db.Db.tree ~expected:records;
  (* Work finished before the crash is preserved: LK advanced monotonically
     and the resumed run started from it, rather than from scratch. *)
  Alcotest.(check bool) "LK advanced" true (Reorg.Rtable.lk ctx.Reorg.Ctx.rtable > min_int)

let test_crash_point_sweep () =
  (* The gold test: crash at many points through all three passes, recover,
     resume, and require full consistency every time. *)
  let points = [ 5; 15; 30; 60; 100; 150; 220; 300; 400; 550; 700; 900; 1200 ] in
  List.iter
    (fun crash_at ->
      let db, records = mk_sparse ~n:400 ~seed:(crash_at * 7) () in
      let finished = crash_reorg_at db crash_at in
      ignore finished;
      let _ctx, _outcome = recover_and_resume db in
      (try Invariant.check ~alloc:db.Db.alloc db.Db.tree
       with Invariant.Violation msg ->
         Alcotest.failf "crash@%d: invariant violated: %s" crash_at msg);
      try Invariant.check_consistent_with db.Db.tree ~expected:records
      with Invariant.Violation msg -> Alcotest.failf "crash@%d: %s" crash_at msg)
    points

let test_double_crash () =
  let db, records = mk_sparse ~n:400 () in
  ignore (crash_reorg_at db 80);
  (* First recovery, then crash again mid-resume. *)
  let ctx, outcome = restart db in
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> ignore (Reorg.Recovery.resume_reorganization ctx outcome));
  Engine.spawn eng (fun () ->
      Engine.sleep 50;
      Engine.stop eng);
  Engine.run eng;
  Db.crash_now ~flush_seed:99 db;
  let _ctx, _ = recover_and_resume db in
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Invariant.check_consistent_with db.Db.tree ~expected:records

let test_crash_with_concurrent_updaters () =
  (* Crash while both the reorganizer and user transactions are running:
     committed user work must survive, uncommitted must roll back, and the
     reorganization must be resumable. *)
  let db, records = mk_sparse ~n:400 () in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let committed : (int, string) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace committed k v) records;
  Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  for w = 0 to 2 do
    Engine.spawn eng (fun () ->
        let rng = Util.Rng.create (500 + w) in
        let continue_ = ref true in
        while !continue_ do
          let tx = Txn_mgr.begin_txn db.Db.mgr in
          (try
             let k = (2 * Util.Rng.int rng 2000) + 1 in
             Btree.Access.insert db.Db.access ~txn:tx ~key:k ~payload:(payload k);
             Txn_mgr.commit db.Db.mgr tx;
             Hashtbl.replace committed k (payload k)
           with
          | Transact.Lock_client.Deadlock_victim | Tree.Duplicate_key _ ->
            Txn_mgr.abort db.Db.mgr tx);
          Engine.sleep 3;
          if Engine.stopped eng then continue_ := false
        done)
  done;
  Engine.spawn eng (fun () ->
      Engine.sleep 120;
      Engine.stop eng);
  Engine.run eng;
  Db.crash_now ~flush_seed:3 db;
  let _ctx, _ = recover_and_resume db in
  Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Invariant.check_consistent_with db.Db.tree
    ~expected:(Hashtbl.fold (fun k v acc -> (k, v) :: acc) committed [])

let test_work_preserved_vs_rollback () =
  (* §8: forward recovery preserves the interrupted unit's work, while the
     Tandem baseline rolls its in-flight transaction back.  Measure: after
     an identical crash, our LK (completed prefix) is retained and the
     resumed run does not repeat completed units. *)
  let db, _records = mk_sparse ~n:400 () in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  Engine.spawn eng (fun () ->
      Engine.sleep 60;
      Engine.stop eng);
  Engine.run eng;
  let units_before = (Reorg.Metrics.units ctx.Reorg.Ctx.metrics) in
  Db.crash_now ~flush_seed:13 db;
  let ctx2, outcome = restart db in
  let lk = Reorg.Rtable.lk ctx2.Reorg.Ctx.rtable in
  Alcotest.(check bool) "some units had finished" true (units_before > 0);
  Alcotest.(check bool) "completed work survives (LK > -inf)" true (lk > min_int);
  (* Resume and ensure total progress completes. *)
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () ->
      ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
  Engine.run eng2;
  Invariant.check ~alloc:db.Db.alloc db.Db.tree

let test_crash_with_checkpointer () =
  (* Frequent checkpoints while the reorganizer and users run: restart
     analysis starts from the latest stable checkpoint (carrying the §5
     system table) and everything still recovers exactly. *)
  List.iter
    (fun crash_at ->
      let db, records = mk_sparse ~n:400 ~seed:(crash_at + 1) () in
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
      let eng = Engine.create () in
      let finished = ref false in
      Engine.spawn eng (fun () ->
          ignore (Reorg.Driver.run ctx);
          finished := true);
      Sim.Checkpointer.spawn ~ctx eng ~db ~every:20 ~stop:(fun () -> !finished);
      Engine.spawn eng (fun () ->
          Engine.sleep crash_at;
          Engine.stop eng);
      Engine.run eng;
      Db.crash_now ~flush_seed:crash_at db;
      (* A checkpoint should be visible to analysis. *)
      Alcotest.(check bool)
        (Printf.sprintf "crash@%d: stable checkpoint exists" crash_at)
        true
        (crash_at < 25 || Wal.Log.last_checkpoint db.Db.log <> None);
      let _ctx, _ = recover_and_resume db in
      Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      Invariant.check_consistent_with db.Db.tree ~expected:records)
    [ 30; 90; 200; 500 ]

let test_crash_point_sweep_lambda () =
  (* The crash sweep again, with the lambda-switch variant active. *)
  let config = { Reorg.Config.default with lambda_switch = true } in
  List.iter
    (fun crash_at ->
      let db, records = mk_sparse ~n:400 ~seed:(crash_at * 13) () in
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
      let eng = Engine.create () in
      Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
      Engine.spawn eng (fun () ->
          Engine.sleep crash_at;
          Engine.stop eng);
      Engine.run eng;
      Db.crash_now ~flush_seed:(crash_at * 5) db;
      let ctx2, outcome = Reorg.Recovery.restart ~access:db.Db.access ~config () in
      let eng2 = Engine.create () in
      Engine.spawn eng2 (fun () ->
          ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
      Engine.run eng2;
      (try
         Invariant.check ~alloc:db.Db.alloc db.Db.tree;
         Invariant.check_consistent_with db.Db.tree ~expected:records
       with Invariant.Violation msg -> Alcotest.failf "lambda crash@%d: %s" crash_at msg))
    [ 20; 80; 200; 350; 500; 800 ]

(* Property: for ANY (scenario seed, crash tick, flush pattern), crash +
   restart + resume ends fully consistent with all records intact. *)
let crash_anywhere_prop =
  QCheck.Test.make ~name:"crash anywhere, recover, resume: consistent" ~count:30
    QCheck.(
      make
        Gen.(
          triple (int_bound 1000) (int_range 5 800) (int_bound 1000)))
    (fun (seed, crash_at, flush_seed) ->
      let db, records = mk_sparse ~n:300 ~seed () in
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
      let eng = Engine.create () in
      Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
      Engine.spawn eng (fun () ->
          Engine.sleep crash_at;
          Engine.stop eng);
      Engine.run eng;
      Db.crash_now ~flush_seed db;
      let ctx2, outcome = restart db in
      let eng2 = Engine.create () in
      Engine.spawn eng2 (fun () ->
          ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
      Engine.run eng2;
      (try
         Invariant.check ~alloc:db.Db.alloc db.Db.tree;
         Invariant.check_consistent_with db.Db.tree ~expected:records
       with Invariant.Violation m ->
         QCheck.Test.fail_reportf "seed=%d crash=%d flush=%d: %s" seed crash_at flush_seed m);
      true)

let () =
  Alcotest.run "recovery"
    [
      ( "aries basics",
        [
          Alcotest.test_case "committed survive, losers roll back" `Quick
            test_committed_survive_losers_rollback;
          Alcotest.test_case "redo from log" `Quick test_redo_after_clean_flush;
          Alcotest.test_case "uncommitted not durable" `Quick test_uncommitted_not_durable;
        ] );
      ( "forward recovery",
        [
          Alcotest.test_case "crash mid-pass1" `Quick test_crash_mid_pass1_forward_recovery;
          Alcotest.test_case "crash point sweep" `Slow test_crash_point_sweep;
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "crash with updaters" `Quick test_crash_with_concurrent_updaters;
          Alcotest.test_case "work preserved" `Quick test_work_preserved_vs_rollback;
          Alcotest.test_case "crash with checkpointer" `Quick test_crash_with_checkpointer;
          Alcotest.test_case "crash sweep (lambda)" `Quick test_crash_point_sweep_lambda;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest crash_anywhere_prop ]);
    ]
