(* Quickstart: build a B+-tree database, degrade it, reorganize it online.

   Run with:  dune exec examples/quickstart.exe *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr
module Db = Sim.Db

let show_stats label tree =
  let s = Tree.stats tree in
  Printf.printf "%-28s height=%d leaves=%d records=%d avg-fill=%.0f%%\n" label s.Tree.height
    s.Tree.leaf_count s.Tree.record_count (100.0 *. s.Tree.avg_leaf_fill)

let () =
  (* 1. Create a database: simulated disk + buffer pool + WAL + lock manager
     + transaction manager + B+-tree, all wired by Sim.Db. *)
  let db = Db.create ~page_size:512 ~leaf_pages:2048 () in

  (* 2. Insert records transactionally. *)
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to 4999 do
    Tree.insert db.Db.tree ~txn:tx ~key:(2 * k) ~payload:(Db.payload_for (2 * k)) ()
  done;
  Txn_mgr.commit db.Db.mgr tx;
  show_stats "after loading 5000 records" db.Db.tree;

  (* 3. Point and range queries. *)
  assert (Tree.search db.Db.tree 2468 = Some (Db.payload_for 2468));
  let hits = Tree.range db.Db.tree ~lo:1000 ~hi:1100 in
  Printf.printf "range [1000,1100] -> %d records\n" (List.length hits);

  (* 4. Degrade the tree: delete two thirds of the records.  Free-at-empty
     deallocates emptied leaves; the rest go sparse. *)
  let rng = Util.Rng.create 42 in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  for k = 0 to 4999 do
    if Util.Rng.chance rng 0.67 then ignore (Tree.delete db.Db.tree ~txn:tx (2 * k))
  done;
  Txn_mgr.commit db.Db.mgr tx;
  show_stats "after deleting ~2/3" db.Db.tree;

  (* 5. Reorganize online: the three-pass algorithm of Salzberg & Zou.
     All reorganization work runs as a cooperative process; in a real
     deployment user transactions run concurrently (see
     concurrent_workload.ml). *)
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let report = ref None in
  Engine.spawn eng (fun () -> report := Some (Reorg.Driver.run ctx));
  Engine.run eng;
  show_stats "after online reorganization" db.Db.tree;
  (match !report with
  | Some r ->
    Printf.printf "reorg: %d units, %d swaps, %d moves, switched=%b\n"
      r.Reorg.Driver.pass1_units r.Reorg.Driver.swaps r.Reorg.Driver.moves
      r.Reorg.Driver.switched
  | None -> ());

  (* 6. The data is intact and the structure valid. *)
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  assert (Tree.search db.Db.tree 2468 <> None || Tree.search db.Db.tree 2468 = None);
  Printf.printf "invariants OK\n"
