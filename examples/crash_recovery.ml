(* Forward recovery demonstration (§5): crash in the middle of an online
   reorganization, restart, and watch the interrupted unit being finished
   rather than rolled back, with the scan resuming from LK.

   Run with:  dune exec examples/crash_recovery.exe *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Db = Sim.Db

let () =
  let db, expected = Sim.Scenario.aged ~seed:5 ~n:1500 ~f1:0.3 () in
  Printf.printf "aged tree: %d leaves at %.0f%% fill\n"
    (Tree.stats db.Db.tree).Tree.leaf_count
    (100.0 *. (Tree.stats db.Db.tree).Tree.avg_leaf_fill);

  (* Start reorganizing, then pull the plug mid-flight. *)
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  Engine.spawn eng (fun () ->
      Engine.sleep 150;
      print_endline "\n*** CRASH ***\n";
      Engine.stop eng);
  Engine.run eng;
  Printf.printf "at crash: %d units were complete, LK = %d\n"
    (Reorg.Metrics.units ctx.Reorg.Ctx.metrics)
    (Reorg.Rtable.lk ctx.Reorg.Ctx.rtable);

  (* Some dirty pages happened to reach disk, most did not. *)
  Db.crash_now ~flush_seed:17 db;

  (* Restart: analysis, redo, loser undo — then FORWARD recovery of the
     in-flight reorganization unit. *)
  let ctx2, outcome = Reorg.Recovery.restart ~access:db.Db.access ~config:Reorg.Config.default () in
  Printf.printf "restart: redo applied %d records, %d losers undone\n"
    outcome.Reorg.Recovery.redo_applied outcome.Reorg.Recovery.losers_undone;
  (match outcome.Reorg.Recovery.finished_unit with
  | Some u -> Printf.printf "forward recovery FINISHED in-flight unit %d (no rollback)\n" u
  | None -> print_endline "no unit was in flight at the crash");
  (match outcome.Reorg.Recovery.resume with
  | Reorg.Recovery.Resume_passes { lk } ->
    Printf.printf "resuming leaf passes from LK = %d (completed work preserved)\n" lk
  | Reorg.Recovery.Resume_pass3 { stable_key; closed } ->
    Printf.printf "resuming pass 3 from stable key %d with %d durable pages\n" stable_key
      (List.length closed)
  | Reorg.Recovery.Finish_switch _ -> print_endline "new tree was complete: finishing the switch"
  | Reorg.Recovery.No_reorg -> print_endline "nothing to resume");

  (* Resume and finish. *)
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () -> ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
  Engine.run eng2;

  (* Everything intact. *)
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  let s = Tree.stats db.Db.tree in
  Printf.printf "\nafter resume: %d leaves at %.0f%% fill, all %d records intact, invariants OK\n"
    s.Tree.leaf_count (100.0 *. s.Tree.avg_leaf_fill) s.Tree.record_count
