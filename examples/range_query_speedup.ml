(* The §2 motivation scenario: a sparsely-populated B+-tree with scattered
   leaves makes range queries slow; online reorganization restores them.

   Run with:  dune exec examples/range_query_speedup.exe *)

module Tree = Btree.Tree
module Disk = Pager.Disk
module Db = Sim.Db

let measure_scans db label =
  (* Cold buffer pool over the same disk, so page reads hit the "disk". *)
  Db.flush_all db;
  let pool = Pager.Buffer_pool.create db.Db.backend in
  let journal = Transact.Journal.create pool db.Db.log in
  let tree = Tree.attach ~journal ~alloc:db.Db.alloc ~meta_pid:0 () in
  Disk.reset_stats db.Db.disk;
  let rng = Util.Rng.create 7 in
  let records = ref 0 in
  for _ = 1 to 50 do
    let lo = 2 * Util.Rng.int rng 2500 in
    records := !records + List.length (Tree.range tree ~lo ~hi:(lo + 600))
  done;
  let s = Disk.stats db.Db.disk in
  let cost = Disk.io_cost s in
  Printf.printf "%-26s %5d page reads (%4d sequential, %4d random)  I/O cost %8.0f\n" label
    s.Disk.reads s.Disk.seq_reads s.Disk.rand_reads cost;
  cost

let () =
  print_endline "Aged file: 3000 records at 25% leaf fill, leaves scattered on disk.";
  let db, _records = Sim.Scenario.aged ~seed:3 ~n:3000 ~f1:0.25 () in
  let before = measure_scans db "before reorganization:" in

  print_endline "\nReorganizing online (compact -> order -> shrink)...";
  let _, report, _ = Sim.Scenario.run_reorg db in
  Printf.printf "  %d units, %d swaps, %d moves; height %d -> %d; fill %.0f%% -> %.0f%%\n"
    report.Reorg.Driver.pass1_units report.Reorg.Driver.swaps report.Reorg.Driver.moves
    report.Reorg.Driver.height_before report.Reorg.Driver.height_after
    (100.0 *. report.Reorg.Driver.fill_before)
    (100.0 *. report.Reorg.Driver.fill_after);
  print_newline ();

  let after = measure_scans db "after reorganization: " in
  Printf.printf "\nrange-scan I/O cost improved %.1fx\n" (before /. after)
