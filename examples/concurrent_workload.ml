(* Readers and updaters running *while* the tree is being reorganized — the
   paper's central scenario.  Shows the lock protocol at work: RX give-ups,
   instant-duration RS waits, and the final switch, with user transactions
   continuing throughout.

   Run with:  dune exec examples/concurrent_workload.exe *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Db = Sim.Db

let () =
  let db, _ = Sim.Scenario.aged ~seed:11 ~n:2000 ~f1:0.3 () in
  Printf.printf "before: %s\n"
    (let s = Tree.stats db.Db.tree in
     Printf.sprintf "height=%d leaves=%d fill=%.0f%%" s.Tree.height s.Tree.leaf_count
       (100.0 *. s.Tree.avg_leaf_fill));

  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      let report = Reorg.Driver.run ctx in
      finished := true;
      Printf.printf "reorganizer: %d units, %d swaps, %d moves, switched=%b\n"
        report.Reorg.Driver.pass1_units report.Reorg.Driver.swaps report.Reorg.Driver.moves
        report.Reorg.Driver.switched);

  (* 10 concurrent users: 80% reads, 10% inserts, 10% deletes, plus range
     scans.  They run until the reorganizer finishes. *)
  let mix = { Workload.Mix.read_mostly with range_pct = 0.1; range_width = 200 } in
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:23 ~users:10 ~ops_per_user:10_000
      ~key_space:2000
      ~stop:(fun () -> !finished)
      ~mix ()
  in
  Engine.run eng;

  Printf.printf "after:  %s\n"
    (let s = Tree.stats db.Db.tree in
     Printf.sprintf "height=%d leaves=%d fill=%.0f%%" s.Tree.height s.Tree.leaf_count
       (100.0 *. s.Tree.avg_leaf_fill));
  Printf.printf
    "users:  %d ops committed (%d reads, %d range scans, %d inserts, %d deletes)\n"
    stats.Workload.Mix.committed stats.Workload.Mix.reads stats.Workload.Mix.range_scans
    stats.Workload.Mix.inserts stats.Workload.Mix.deletes;
  Printf.printf
    "        %d RX give-ups (the §4.1.2 protocol), %d deadlock aborts, %d ticks blocked\n"
    stats.Workload.Mix.give_ups stats.Workload.Mix.aborted stats.Workload.Mix.blocked_ticks;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  print_endline "invariants OK — the tree was never unavailable"
