module Leaf = Btree.Leaf
module Tree = Btree.Tree
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource

let leaf_positions ctx =
  let leaf_lo, _ = Pager.Alloc.leaf_zone (Ctx.alloc ctx) in
  let leaves = Tree.leaf_pids (Ctx.tree ctx) in
  (leaf_lo, leaves)

let out_of_order ctx =
  let leaf_lo, leaves = leaf_positions ctx in
  let n = ref 0 in
  List.iteri (fun i pid -> if pid <> leaf_lo + i then incr n) leaves;
  !n

let base_of_leaf ctx pid =
  let p = Ctx.page ctx pid in
  let key =
    match Leaf.min_key p with Some k -> k | None -> Leaf.low_mark p
  in
  Tree.parent_of_leaf (Ctx.tree ctx) key

let run ctx =
  let tree = Ctx.tree ctx in
  let swaps = ref 0 and moves = ref 0 in
  if Tree.height tree > 1 then begin
    Ctx.acquire ctx (Resource.Tree (Tree.tree_name tree)) Mode.IX;
    (* Positions below [frontier] are final (or permanently skipped). *)
    let frontier = ref 0 in
    let stale = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      Sched.Engine.yield ();
      let leaf_lo, leaves = leaf_positions ctx in
      (* First position at or beyond the frontier whose page is wrong. *)
      let misplaced =
        List.filteri (fun i _ -> i >= !frontier) leaves
        |> List.mapi (fun j pid -> (!frontier + j, pid))
        |> List.find_opt (fun (i, pid) -> pid <> leaf_lo + i)
      in
      match misplaced with
      | None -> continue_ := false
      | Some (i, pid) -> begin
        let target = leaf_lo + i in
        (* A deallocated page awaiting careful-writing durability is not yet
           reusable: force the write it waits on. *)
        (match Pager.Alloc.pending_release (Ctx.alloc ctx) target with
        | Some dep -> Pager.Buffer_pool.flush_page (Ctx.pool ctx) dep
        | None -> ());
        (* A swap logs and rewrites two full pages, so before swapping try to
           cascade: if the leaf occupying [target] can move straight into its
           own final slot, one cheap move vacates [target] and the next
           iteration finishes with a second move.  Under the paper heuristic
           pass 1 leaves the file nearly sorted, so the occupant's slot is
           usually free; under first-free placement it rarely is. *)
        let cascade_dest =
          if Pager.Alloc.is_free (Ctx.alloc ctx) target then None
          else
            let rec slot_of j = function
              | [] -> None
              | p :: rest ->
                if j > i && p = target then Some (leaf_lo + j) else slot_of (j + 1) rest
            in
            match slot_of 0 leaves with
            | Some slot when Pager.Alloc.is_free (Ctx.alloc ctx) slot -> Some slot
            | _ -> None
        in
        let advance = ref true in
        let plan =
          if Pager.Alloc.is_free (Ctx.alloc ctx) target then
            Option.map
              (fun base -> Unit_exec.Move { base; org = pid; dest = target })
              (base_of_leaf ctx pid)
          else
            match cascade_dest with
            | Some slot ->
              advance := false;
              Option.map
                (fun base -> Unit_exec.Move { base; org = target; dest = slot })
                (base_of_leaf ctx target)
            | None -> (
              match (base_of_leaf ctx pid, base_of_leaf ctx target) with
              | Some a_base, Some b_base ->
                Some (Unit_exec.Swap { a_base; a = pid; b_base; b = target })
              | _ -> None)
        in
        match plan with
        | None -> frontier := i + 1 (* unreachable page situation: skip *)
        | Some plan -> begin
          match Unit_exec.execute ctx plan with
          | Unit_exec.Done _ ->
            (match plan with
            | Unit_exec.Swap _ -> incr swaps
            | Unit_exec.Move _ -> incr moves
            | Unit_exec.Compact _ -> ());
            stale := 0;
            if !advance then frontier := i + 1
          | Unit_exec.Stale ->
            (* Replan from the same frontier, but never spin forever. *)
            incr stale;
            if !stale > 5 then begin
              stale := 0;
              frontier := i + 1
            end
          | Unit_exec.Gave_up -> frontier := i + 1
        end
      end
    done;
    Ctx.release ctx (Resource.Tree (Tree.tree_name tree)) Mode.IX
  end;
  (!swaps, !moves)
