(** Shared state of one reorganization run: the access layer it works
    through, its configuration, the §5 system table, metrics, the
    reorganizer's own lock-owner identity (registered as the preferred
    deadlock victim), and an optional tracer for per-pass / per-unit
    spans. *)

type t = {
  access : Btree.Access.t;
  config : Config.t;
  rtable : Rtable.t;
  metrics : Metrics.t;
  actor : Transact.Txn.t;  (** the reorganization process's lock owner *)
  tracer : Obs.Trace.t option;
  shard : int * int;  (** [(index, count)] of the shard this run works on *)
  prot : (Prot.event -> unit) option;  (** protocol-event sink (model checker) *)
  worker_rtables : Rtable.t list ref;
      (** system tables of derived {!worker} contexts — their in-flight
          units are truncation floors for the parent's checkpoints *)
}

val make :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?shard:int * int ->
  ?prot:(Prot.event -> unit) ->
  access:Btree.Access.t ->
  config:Config.t ->
  unit ->
  t
(** [registry] attaches the run's {!Metrics} counters; [tracer] records each
    pass, unit and switch attempt as spans on the calling process's row.
    [shard:(i, n)] (default [(0, 1)]) puts unit ids on the lattice
    [i+1 + k*n] so the system tables of concurrently reorganizing shards
    never share a unit id; the actor's lock-owner id is globally unique
    already because it is minted by the shard's strided transaction
    manager.  [prot] installs a {!Prot} event sink: {!log_reorg} derives the
    unit-lifecycle events from the records it appends, and the passes emit
    the switch-protocol events explicitly. *)

val emit : t -> Prot.event -> unit
(** Feed one protocol event to the attached sink (no-op without one). *)

val worker : t -> index:int -> count:int -> t
(** A derived context for one of [count] parallel reorganizer workers: its
    own lock-owner identity and system table (with a unit-id lattice
    disjoint across both workers and shards), sharing the parent's access
    layer, configuration, metrics and tracer. *)

val span : t -> ?args:(string * Obs.Trace.arg) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a ["reorg"]-category span on the current
    scheduler fiber's row; a no-op wrapper when no tracer is attached.  Must
    be called from inside an engine process. *)

val tree : t -> Btree.Tree.t

val olc : t -> Btree.Olc.t
(** The tree file's optimistic-read version table.  The reorganizer bumps it
    at every raw page mutation that bypasses {!Btree.Tree.physical} and
    registers its units ({!Btree.Olc.unit_begin}/[unit_end]) so optimistic
    readers fall back to the locked protocol while a unit is in flight. *)

val health : t -> Obs.Health.t option
(** The database's tree-health tracker, when one is attached to the access
    layer — how unit completions and switches are reported. *)

val locks : t -> Lockmgr.Lock_mgr.t
val journal : t -> Transact.Journal.t
val pool : t -> Pager.Buffer_pool.t
val log : t -> Wal.Log.t
val alloc : t -> Pager.Alloc.t
val page : t -> int -> Pager.Page.t
val page_size : t -> int
val usable_bytes : t -> int

val log_reorg : t -> Wal.Record.body -> Wal.Lsn.t
(** Append a reorganization record: charged to the reorg log-byte metrics and
    recorded as the unit's most recent LSN in the system table. *)

val stamp : t -> page:int -> Wal.Lsn.t -> unit

val acquire : t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> unit
(** Blocking acquire as the reorganizer (may raise
    {!Transact.Lock_client.Deadlock_victim}). *)

val release : t -> Lockmgr.Resource.t -> Lockmgr.Mode.t -> unit
val release_unit_locks : t -> (Lockmgr.Resource.t * Lockmgr.Mode.t) list ref -> unit

val checkpoint : t -> unit
(** Write a checkpoint record (active transactions + reorg table image +
    dirty pages), force the log, then truncate the WAL below the oldest
    record recovery could still need (dirty-frame recovery LSNs, active
    transactions' begins, in-flight units' BEGINs, the pass-3 floor). *)
