module Tree = Btree.Tree
module Access = Btree.Access
module Journal = Transact.Journal
module Lock_client = Transact.Lock_client
module Txn_mgr = Transact.Txn_mgr

type t = {
  access : Access.t;
  config : Config.t;
  rtable : Rtable.t;
  metrics : Metrics.t;
  actor : Transact.Txn.t;
  tracer : Obs.Trace.t option;
  shard : int * int;
  prot : (Prot.event -> unit) option;
  worker_rtables : Rtable.t list ref;
}

let make ?registry ?tracer ?(shard = (0, 1)) ?prot ~access ~config () =
  let shard_i, shard_n = shard in
  if shard_n < 1 || shard_i < 0 || shard_i >= shard_n then
    invalid_arg "Ctx.make: shard index out of range";
  (* The actor id comes from the store's transaction manager, whose lattice
     is already per-shard; the unit-id lattice mirrors it so unit ids of
     different shards' reorganizers never collide either. *)
  let actor = Txn_mgr.fresh_owner (Access.mgr access) in
  Lockmgr.Lock_mgr.register_reorganizer (Access.locks access) actor.Transact.Txn.id;
  {
    access;
    config;
    rtable = Rtable.create ~first_id:(shard_i + 1) ~id_stride:shard_n ();
    metrics = Metrics.create ?registry ();
    actor;
    tracer;
    shard;
    prot;
    worker_rtables = ref [];
  }

let emit t ev = match t.prot with None -> () | Some f -> f ev

let worker t ~index ~count =
  let shard_i, shard_n = t.shard in
  let actor = Txn_mgr.fresh_owner (Access.mgr t.access) in
  Lockmgr.Lock_mgr.register_reorganizer (Access.locks t.access) actor.Transact.Txn.id;
  (* Worker [index] of shard [shard_i]: interleave the per-shard worker
     lattices so unit ids are disjoint across BOTH workers and shards.
     Reduces to the historical [1_000_000 + index + 1] / [count] lattice in
     the unsharded case. *)
  let rtable =
    Rtable.create
      ~first_id:(1_000_000 + (index * shard_n) + shard_i + 1)
      ~id_stride:(count * shard_n) ()
  in
  (* The parent's checkpoint must see worker units as truncation floors. *)
  t.worker_rtables := rtable :: !(t.worker_rtables);
  {
    access = t.access;
    config = t.config;
    rtable;
    metrics = t.metrics;
    actor;
    tracer = t.tracer;
    shard = t.shard;
    prot = t.prot;
    worker_rtables = t.worker_rtables;
  }

let span t ?args name f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
    let tid = Sched.Engine.current_fiber () in
    Obs.Trace.with_span tr ~tid ?args ~cat:"reorg" name f

let tree t = Access.tree t.access
let olc t = Btree.Tree.olc (tree t)
let health t = Access.health t.access
let locks t = Access.locks t.access
let journal t = Tree.journal (tree t)
let pool t = Journal.pool (journal t)
let log t = Journal.log (journal t)
let alloc t = Tree.alloc (tree t)
let page t pid = Pager.Buffer_pool.get (pool t) pid
let page_size t = Pager.Buffer_pool.page_size (pool t)
let usable_bytes t = Btree.Layout.usable_bytes ~page_size:(page_size t)

let log_reorg t body =
  let lsn = Wal.Log.append (log t) body in
  Obs.Counter.incr t.metrics.Metrics.log_bytes ~by:(Wal.Record.encoded_size body);
  Obs.Counter.incr t.metrics.Metrics.log_records;
  Rtable.note_lsn t.rtable lsn;
  (* All unit-lifecycle WAL records flow through here (execution, §5.2 undo
     and recovery completions alike), so this is the one place the protocol
     stream derives its Unit_* events. *)
  (match t.prot with
  | None -> ()
  | Some f ->
    let actor = t.actor.Transact.Txn.id in
    (match body with
    | Wal.Record.Reorg_begin { unit_id; rtype; base_pages; leaf_pages } ->
      f
        (Prot.Unit_begin
           { actor; unit_id; kind = rtype; bases = base_pages; leaves = leaf_pages; lsn })
    | Wal.Record.Reorg_move { unit_id; org; dest; _ } ->
      f (Prot.Unit_move { actor; unit_id; org; dest; lsn })
    | Wal.Record.Reorg_modify { unit_id; base; _ } ->
      f (Prot.Unit_modify { actor; unit_id; base; lsn })
    | Wal.Record.Reorg_end { unit_id; largest_key; _ } ->
      f (Prot.Unit_end { actor; unit_id; largest_key; lsn })
    | _ -> ()));
  lsn

let stamp t ~page lsn = Journal.stamp (journal t) ~page lsn

let acquire t res mode = Lock_client.acquire (locks t) ~txn:t.actor res mode
let release t res mode = Lock_client.release (locks t) ~txn:t.actor res mode

let release_unit_locks t held =
  List.iter (fun (res, mode) -> release t res mode) !held;
  held := []

let checkpoint t =
  let mgr = Access.mgr t.access in
  let body =
    Wal.Record.Checkpoint
      {
        active_txns = Txn_mgr.active_txns mgr;
        reorg = Rtable.image t.rtable;
        dirty_pages = Pager.Buffer_pool.dirty_pages (pool t);
      }
  in
  let lsn = Wal.Log.append (log t) body in
  Wal.Log.force (log t) lsn;
  (* Fuzzy-checkpoint truncation: everything below the oldest record anyone
     could still need is reclaimed.  The floors are the checkpoint itself,
     the oldest recovery LSN of a dirty frame, the oldest active
     transaction's begin, each in-flight reorganization unit's BEGIN (main
     table and parallel workers), and the pass-3 floor pinned while the
     side file / stable key / switch records must stay replayable. *)
  let keep = ref lsn in
  let lower l = if l <> Wal.Lsn.nil && l < !keep then keep := l in
  (* A recovery LSN of 0 is a dirty frame whose first mutation was never
     stamped (virgin page): no lower bound is known, so pin everything. *)
  (match Pager.Buffer_pool.min_rec_lsn (pool t) with
  | Some l -> keep := min !keep (max 1 (Wal.Lsn.of_int64 l))
  | None -> ());
  (match Txn_mgr.oldest_begin_lsn mgr with Some l -> lower l | None -> ());
  List.iter
    (fun rt ->
      let img = Rtable.image rt in
      if img.Wal.Record.rt_unit <> None then lower img.Wal.Record.rt_begin_lsn;
      lower (Rtable.floor rt))
    (t.rtable :: !(t.worker_rtables));
  Wal.Log.truncate (log t) ~keep_from:!keep
