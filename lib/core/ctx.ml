module Tree = Btree.Tree
module Access = Btree.Access
module Journal = Transact.Journal
module Lock_client = Transact.Lock_client
module Txn_mgr = Transact.Txn_mgr

type t = {
  access : Access.t;
  config : Config.t;
  rtable : Rtable.t;
  metrics : Metrics.t;
  actor : Transact.Txn.t;
  tracer : Obs.Trace.t option;
}

let make ?registry ?tracer ~access ~config () =
  let actor = Txn_mgr.fresh_owner (Access.mgr access) in
  Lockmgr.Lock_mgr.register_reorganizer (Access.locks access) actor.Transact.Txn.id;
  {
    access;
    config;
    rtable = Rtable.create ();
    metrics = Metrics.create ?registry ();
    actor;
    tracer;
  }

let worker t ~index ~count =
  let actor = Txn_mgr.fresh_owner (Access.mgr t.access) in
  Lockmgr.Lock_mgr.register_reorganizer (Access.locks t.access) actor.Transact.Txn.id;
  {
    access = t.access;
    config = t.config;
    rtable = Rtable.create ~first_id:(1_000_000 + index + 1) ~id_stride:count ();
    metrics = t.metrics;
    actor;
    tracer = t.tracer;
  }

let span t ?args name f =
  match t.tracer with
  | None -> f ()
  | Some tr ->
    let tid = Sched.Engine.current_fiber () in
    Obs.Trace.with_span tr ~tid ?args ~cat:"reorg" name f

let tree t = Access.tree t.access
let health t = Access.health t.access
let locks t = Access.locks t.access
let journal t = Tree.journal (tree t)
let pool t = Journal.pool (journal t)
let log t = Journal.log (journal t)
let alloc t = Tree.alloc (tree t)
let page t pid = Pager.Buffer_pool.get (pool t) pid
let page_size t = Pager.Buffer_pool.page_size (pool t)
let usable_bytes t = Btree.Layout.usable_bytes ~page_size:(page_size t)

let log_reorg t body =
  let lsn = Wal.Log.append (log t) body in
  Obs.Counter.incr t.metrics.Metrics.log_bytes ~by:(Wal.Record.encoded_size body);
  Obs.Counter.incr t.metrics.Metrics.log_records;
  Rtable.note_lsn t.rtable lsn;
  lsn

let stamp t ~page lsn = Journal.stamp (journal t) ~page lsn

let acquire t res mode = Lock_client.acquire (locks t) ~txn:t.actor res mode
let release t res mode = Lock_client.release (locks t) ~txn:t.actor res mode

let release_unit_locks t held =
  List.iter (fun (res, mode) -> release t res mode) !held;
  held := []

let checkpoint t =
  let mgr = Access.mgr t.access in
  let body =
    Wal.Record.Checkpoint
      {
        active_txns = Txn_mgr.active_txns mgr;
        reorg = Rtable.image t.rtable;
        dirty_pages = Pager.Buffer_pool.dirty_pages (pool t);
      }
  in
  let lsn = Wal.Log.append (log t) body in
  Wal.Log.force (log t) lsn
