type t = {
  units : Obs.Counter.t;
  in_place_units : Obs.Counter.t;
  new_place_units : Obs.Counter.t;
  swap_units : Obs.Counter.t;
  move_units : Obs.Counter.t;
  pages_compacted : Obs.Counter.t;
  records_moved : Obs.Counter.t;
  unit_retries : Obs.Counter.t;
  units_undone : Obs.Counter.t;
  base_pages_scanned : Obs.Counter.t;
  side_entries : Obs.Counter.t;
  catchup_batches : Obs.Counter.t;
  stable_points : Obs.Counter.t;
  forced_aborts : Obs.Counter.t;
  log_bytes : Obs.Counter.t;
  log_records : Obs.Counter.t;
}

let all t =
  [
    t.units;
    t.in_place_units;
    t.new_place_units;
    t.swap_units;
    t.move_units;
    t.pages_compacted;
    t.records_moved;
    t.unit_retries;
    t.units_undone;
    t.base_pages_scanned;
    t.side_entries;
    t.catchup_batches;
    t.stable_points;
    t.forced_aborts;
    t.log_bytes;
    t.log_records;
  ]

let create ?registry () =
  let t =
    {
      units = Obs.Counter.make "core.units";
      in_place_units = Obs.Counter.make "core.in_place_units";
      new_place_units = Obs.Counter.make "core.new_place_units";
      swap_units = Obs.Counter.make "core.swap_units";
      move_units = Obs.Counter.make "core.move_units";
      pages_compacted = Obs.Counter.make "core.pages_compacted";
      records_moved = Obs.Counter.make "core.records_moved";
      unit_retries = Obs.Counter.make "core.unit_retries";
      units_undone = Obs.Counter.make "core.units_undone";
      base_pages_scanned = Obs.Counter.make "core.base_pages_scanned";
      side_entries = Obs.Counter.make "core.side_entries";
      catchup_batches = Obs.Counter.make "core.catchup_batches";
      stable_points = Obs.Counter.make "core.stable_points";
      forced_aborts = Obs.Counter.make "core.forced_aborts";
      log_bytes = Obs.Counter.make "core.log_bytes";
      log_records = Obs.Counter.make "core.log_records";
    }
  in
  (match registry with
  | Some reg -> List.iter (Obs.Registry.attach_counter reg) (all t)
  | None -> ());
  t

let register_obs t reg = List.iter (Obs.Registry.attach_counter reg) (all t)

let reset t = List.iter Obs.Counter.reset (all t)

(* Read accessors share the field names: [m.units] inside this module is the
   counter, [Metrics.units m] outside is its value. *)
let units t = Obs.Counter.get t.units
let in_place_units t = Obs.Counter.get t.in_place_units
let new_place_units t = Obs.Counter.get t.new_place_units
let swap_units t = Obs.Counter.get t.swap_units
let move_units t = Obs.Counter.get t.move_units
let pages_compacted t = Obs.Counter.get t.pages_compacted
let records_moved t = Obs.Counter.get t.records_moved
let unit_retries t = Obs.Counter.get t.unit_retries
let units_undone t = Obs.Counter.get t.units_undone
let base_pages_scanned t = Obs.Counter.get t.base_pages_scanned
let side_entries t = Obs.Counter.get t.side_entries
let catchup_batches t = Obs.Counter.get t.catchup_batches
let stable_points t = Obs.Counter.get t.stable_points
let forced_aborts t = Obs.Counter.get t.forced_aborts
let log_bytes t = Obs.Counter.get t.log_bytes
let log_records t = Obs.Counter.get t.log_records

let pp ppf t =
  Format.fprintf ppf
    "units=%d (in-place=%d new-place=%d) swaps=%d moves=%d compacted=%d records=%d retries=%d \
     undone=%d bases=%d side=%d/%d batches stable=%d aborts=%d log=%dB/%d recs"
    (units t) (in_place_units t) (new_place_units t) (swap_units t) (move_units t)
    (pages_compacted t) (records_moved t) (unit_retries t) (units_undone t)
    (base_pages_scanned t) (side_entries t) (catchup_batches t) (stable_points t)
    (forced_aborts t) (log_bytes t) (log_records t)
