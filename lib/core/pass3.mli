(** Pass 3 — shrink the tree (§7): rebuild the levels above the leaves in
    new space, catch up concurrent changes through the side file, and switch.

    Protocol summary:
    + set the reorganization bit; updaters now test it after base-page
      changes and mirror changes behind the scan cursor into the side file;
    + scan the old tree's base pages left to right holding one S lock at a
      time, feeding their entries to the bottom-up {!Builder}; CK
      (Get_Current) advances before each S lock is released; a stable point
      is forced every [stable_every] base pages;
    + finalize the new upper levels, apply the side file to the new tree;
    + {b switch}: X-lock the side file, final catch-up, log the [Switch]
      record and flip the meta page (root location, tree lock name,
      generation); X-lock the old tree name to wait out old-tree
      transactions, forcing them to abort after [switch_wait] ticks (§7.4's
      time limit); then discard the old upper levels and clear the bit.

    Must run inside a scheduler process.  Returns [true] if a switch
    happened ([false] when the tree had no upper levels to rebuild). *)

type resume = {
  r_stable_key : int;  (** resume the scan from this key *)
  r_closed : (int * int) list;  (** durable new-generation level-1 pages *)
  r_side : Wal.Record.side_op list;  (** surviving side-file entries *)
}

type finish = {
  f_new_root : int;  (** the fully built new root (final stable point) *)
  f_side : Wal.Record.side_op list;
}

val run : Ctx.t -> ?resume:resume -> ?finish:finish -> unit -> bool
(** [resume] continues an interrupted scan from recovery state; [finish]
    skips straight to catch-up + switch (the new tree was already complete
    when the crash hit). *)

val test_skip_ck_advance : bool ref
(** Test-only mutation hook: while [true], the scan withholds the per-base
    CK advance of §7.1, violating the switch model's strict-advance guard.
    The model-conformance self-test uses it to prove the checker is live;
    production code must leave it [false]. *)

