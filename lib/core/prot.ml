(* Typed protocol events for the reorganization side of the model checker.

   The unit-lifecycle events (the Unit_ constructors) are derived at the
   single choke point
   every reorganization WAL record flows through — [Ctx.log_reorg] — plus two
   explicit emissions for protocol steps that are not log records (the §5.2
   give-up decision and recovery's decision to finish a unit).  The pass-3
   switch events are emitted by [Pass3] and [Side_file] at the protocol
   steps of §7. *)

type pass3_mode = Fresh | Resume | Finish

type event =
  | Unit_begin of {
      actor : int;
      unit_id : int;
      kind : Wal.Record.reorg_type;
      bases : int list;
      leaves : int list;
      lsn : int;
    }
  | Unit_move of { actor : int; unit_id : int; org : int; dest : int; lsn : int }
  | Unit_modify of { actor : int; unit_id : int; base : int; lsn : int }
  | Unit_undo of { actor : int; unit_id : int }
  | Unit_end of { actor : int; unit_id : int; largest_key : int; lsn : int }
  | Unit_recover of { actor : int; unit_id : int }
  | Pass3_start of { actor : int; mode : pass3_mode; ck : int; lambda : bool }
  | Scan_base of { actor : int; base : int; ck_before : int; ck_after : int }
  | Scan_done of { actor : int }
  | Catchup of { actor : int; applied : int }
  | Side_locked of { actor : int }
  | Switch_logged of {
      actor : int;
      old_root : int;
      new_root : int;
      old_name : int;
      new_name : int;
      backlog : int;
      lsn : int;
    }
  | Forced_abort of { actor : int; owner : int; lambda : bool }
  | Switch_cleanup of { actor : int }
  | Side_accept of { key : int }
  | Side_redirect of { key : int }
  | Olc_read of { leaf : int; key : int; valid : bool }

let mode_to_string = function Fresh -> "fresh" | Resume -> "resume" | Finish -> "finish"

let key_to_string k =
  if k = min_int then "-inf" else if k = max_int then "+inf" else string_of_int k

let to_string = function
  | Unit_begin { actor; unit_id; kind; bases; leaves; lsn } ->
    Printf.sprintf "Unit_begin{actor=%d unit=%d kind=%s bases=%d leaves=%d lsn=%d}" actor
      unit_id
      (Wal.Record.reorg_type_to_string kind)
      (List.length bases) (List.length leaves) lsn
  | Unit_move { actor; unit_id; org; dest; lsn } ->
    Printf.sprintf "Unit_move{actor=%d unit=%d org=%d dest=%d lsn=%d}" actor unit_id org
      dest lsn
  | Unit_modify { actor; unit_id; base; lsn } ->
    Printf.sprintf "Unit_modify{actor=%d unit=%d base=%d lsn=%d}" actor unit_id base lsn
  | Unit_undo { actor; unit_id } -> Printf.sprintf "Unit_undo{actor=%d unit=%d}" actor unit_id
  | Unit_end { actor; unit_id; largest_key; lsn } ->
    Printf.sprintf "Unit_end{actor=%d unit=%d lk=%s lsn=%d}" actor unit_id
      (key_to_string largest_key) lsn
  | Unit_recover { actor; unit_id } ->
    Printf.sprintf "Unit_recover{actor=%d unit=%d}" actor unit_id
  | Pass3_start { actor; mode; ck; lambda } ->
    Printf.sprintf "Pass3_start{actor=%d mode=%s ck=%s lambda=%b}" actor
      (mode_to_string mode) (key_to_string ck) lambda
  | Scan_base { actor; base; ck_before; ck_after } ->
    Printf.sprintf "Scan_base{actor=%d base=%d ck:%s->%s}" actor base
      (key_to_string ck_before) (key_to_string ck_after)
  | Scan_done { actor } -> Printf.sprintf "Scan_done{actor=%d}" actor
  | Catchup { actor; applied } -> Printf.sprintf "Catchup{actor=%d applied=%d}" actor applied
  | Side_locked { actor } -> Printf.sprintf "Side_locked{actor=%d}" actor
  | Switch_logged { actor; old_root; new_root; old_name; new_name; backlog; lsn } ->
    Printf.sprintf "Switch_logged{actor=%d root:%d->%d name:%d->%d backlog=%d lsn=%d}" actor
      old_root new_root old_name new_name backlog lsn
  | Forced_abort { actor; owner; lambda } ->
    Printf.sprintf "Forced_abort{actor=%d owner=%d lambda=%b}" actor owner lambda
  | Switch_cleanup { actor } -> Printf.sprintf "Switch_cleanup{actor=%d}" actor
  | Side_accept { key } -> Printf.sprintf "Side_accept{key=%d}" key
  | Side_redirect { key } -> Printf.sprintf "Side_redirect{key=%d}" key
  | Olc_read { leaf; key; valid } ->
    Printf.sprintf "Olc_read{leaf=%d key=%d valid=%b}" leaf key valid

let pp ppf ev = Format.pp_print_string ppf (to_string ev)
