(** The reorganizer's small in-memory system table (§5).

    It records, at any moment: LK — the largest key of the last finished
    reorganization unit (where to restart after a crash); the BEGIN LSN and
    most recent LSN of the in-flight unit (how to finish it with forward
    recovery); and CK — the low mark of the base page pass 3 is currently
    reading ([Get_Current]).  The table is copied into every checkpoint
    record, which is how it survives crashes. *)

type t

val create : ?first_id:int -> ?id_stride:int -> unit -> t
(** Unit ids start at [first_id] and advance by [id_stride] — parallel
    reorganizer workers use disjoint id lattices so their units never
    collide in the log. *)

val lk : t -> int
val set_lk : t -> int -> unit

val begin_unit : t -> unit_id:int -> begin_lsn:Wal.Lsn.t -> unit
val note_lsn : t -> Wal.Lsn.t -> unit
(** Record the most recent LSN of the in-flight unit; it becomes the
    [prev_lsn] of the unit's next record. *)

val last_lsn : t -> Wal.Lsn.t
val in_flight : t -> int option

val end_unit : t -> largest_key:int -> unit
(** Delete the unit's entry and advance LK. *)

val ck : t -> int option
(** Get_Current(): the low mark of the base page being read by pass 3;
    [None] when internal reorganization is not running. *)

val set_ck : t -> int option -> unit

(** {2 WAL-truncation floor}

    While pass 3 (catch-up and switch) is live, records as old as the
    [Stable_key] / surviving side-file entries must stay replayable, and a
    restarted pass 3 needs them even though no transaction or dirty page
    pins them.  The floor is the oldest such LSN; checkpoint-time truncation
    never reclaims at or above it.  It is volatile: restart re-derives it
    from the stable log ({!lower_floor}) before checkpointing. *)

val floor : t -> Wal.Lsn.t
(** [Wal.Lsn.nil] when no floor is pinned. *)

val set_floor : t -> Wal.Lsn.t -> unit
val lower_floor : t -> Wal.Lsn.t -> unit
(** Lower the floor to [lsn] if unset or higher; [nil] is ignored. *)

val clear_floor : t -> unit

val next_unit_id : t -> int
(** Monotonically increasing unit ids (survives via the image). *)

val image : t -> Wal.Record.reorg_table
(** Snapshot for a checkpoint record. *)

val restore : t -> Wal.Record.reorg_table -> unit
