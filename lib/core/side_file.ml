module Record = Wal.Record
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_client = Transact.Lock_client
module Journal = Transact.Journal

(* The entry store is a two-list deque: [back] accumulates appends (newest
   first), [front] holds entries ready to drain (oldest first).  Appends and
   (amortized) takes are O(1) — the old single newest-first list reversed
   itself on every [take], making pass-3 catch-up quadratic in the backlog. *)
type t = {
  journal : Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mutable front : Record.side_op list; (* oldest first *)
  mutable back : Record.side_op list; (* newest first *)
  mutable count : int;
  mutable health : Obs.Health.t option;
  mutable prot : (Prot.event -> unit) option;
}

let create ~journal ~locks =
  { journal; locks; front = []; back = []; count = 0; health = None; prot = None }

let set_health t h = t.health <- h
let set_prot t f = t.prot <- f
let emit t ev = match t.prot with None -> () | Some f -> f ev

let note t ev =
  match t.health with
  | Some h -> Obs.Health.side_event h ~size:t.count ev
  | None -> ()

let key_of = function
  | Record.Side_insert { key; _ } | Record.Side_delete { key; _ } -> key

let append t ~txn op =
  match Lock_client.try_acquire t.locks ~txn Resource.Side_file Mode.IX with
  | `Granted ->
    Lock_client.acquire t.locks ~txn (Resource.Side_key (key_of op)) Mode.X;
    ignore
      (Journal.log_for t.journal ~txn (fun ~prev ->
           Record.Side_file { txn = txn.Transact.Txn.id; op; prev }));
    t.back <- op :: t.back;
    t.count <- t.count + 1;
    note t Obs.Health.Append;
    emit t (Prot.Side_accept { key = key_of op });
    `Accepted
  | `Conflict _ ->
    (* Switching is in progress: wait it out with an instant-duration IX,
       then redirect the update to the new tree (§7.4). *)
    Lock_client.instant t.locks ~txn Resource.Side_file Mode.IX;
    emit t (Prot.Side_redirect { key = key_of op });
    `Redirect

let pop_oldest t =
  (match t.front with
  | [] ->
    t.front <- List.rev t.back;
    t.back <- []
  | _ -> ());
  match t.front with
  | [] -> None
  | oldest :: rest ->
    t.front <- rest;
    t.count <- t.count - 1;
    note t Obs.Health.Take;
    ignore (Wal.Log.append (Journal.log t.journal) (Record.Side_applied { op = oldest }));
    Some oldest

let take t = pop_oldest t

let take_batch t ~max =
  let rec go n acc =
    if n = 0 then List.rev acc
    else match pop_oldest t with None -> List.rev acc | Some op -> go (n - 1) (op :: acc)
  in
  go (Stdlib.max 0 max) []

let remove t op =
  (* Logical undo removes the aborting transaction's {e latest} append:
     search newest-to-oldest, which means the back list first. *)
  let rec drop_first = function
    | [] -> None
    | x :: rest ->
      if x = op then Some rest
      else begin
        match drop_first rest with None -> None | Some rest' -> Some (x :: rest')
      end
  in
  (match drop_first t.back with
  | Some back' ->
    t.back <- back';
    t.count <- t.count - 1
  | None -> begin
    match drop_first (List.rev t.front) with
    | Some rev_front' ->
      t.front <- List.rev rev_front';
      t.count <- t.count - 1
    | None -> ()
  end);
  note t Obs.Health.Removed

let size t = t.count
let is_empty t = t.count = 0

let restore_entries t ops =
  t.front <- ops;
  t.back <- [];
  t.count <- List.length ops;
  note t Obs.Health.Restored

let entries t = t.front @ List.rev t.back
