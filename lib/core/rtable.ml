type t = {
  mutable lk : int;
  mutable unit_id : int option;
  mutable begin_lsn : Wal.Lsn.t;
  mutable last_lsn : Wal.Lsn.t;
  mutable ck : int option;
  mutable floor : Wal.Lsn.t; (* WAL-truncation floor while pass 3 is live *)
  mutable next_id : int;
  id_stride : int;
}

let create ?(first_id = 1) ?(id_stride = 1) () =
  {
    lk = min_int;
    unit_id = None;
    begin_lsn = Wal.Lsn.nil;
    last_lsn = Wal.Lsn.nil;
    ck = None;
    floor = Wal.Lsn.nil;
    next_id = first_id;
    id_stride;
  }

let lk t = t.lk
let set_lk t k = t.lk <- k

let begin_unit t ~unit_id ~begin_lsn =
  t.unit_id <- Some unit_id;
  t.begin_lsn <- begin_lsn;
  t.last_lsn <- begin_lsn

let note_lsn t lsn = t.last_lsn <- lsn

let last_lsn t = t.last_lsn
let in_flight t = t.unit_id

let end_unit t ~largest_key =
  t.unit_id <- None;
  t.begin_lsn <- Wal.Lsn.nil;
  t.last_lsn <- Wal.Lsn.nil;
  if largest_key > t.lk then t.lk <- largest_key

let ck t = t.ck
let set_ck t v = t.ck <- v

(* The floor is volatile (not part of the checkpoint image): restart
   re-derives it from the stable log before its end-of-recovery checkpoint,
   which is the only checkpoint that could otherwise truncate too far. *)
let floor t = t.floor
let set_floor t lsn = t.floor <- lsn

let lower_floor t lsn =
  if lsn <> Wal.Lsn.nil && (t.floor = Wal.Lsn.nil || lsn < t.floor) then t.floor <- lsn

let clear_floor t = t.floor <- Wal.Lsn.nil

let next_unit_id t =
  let id = t.next_id in
  t.next_id <- id + t.id_stride;
  id

let image t =
  {
    Wal.Record.rt_lk = t.lk;
    rt_unit = t.unit_id;
    rt_begin_lsn = t.begin_lsn;
    rt_last_lsn = t.last_lsn;
    rt_ck = t.ck;
  }

let restore t (img : Wal.Record.reorg_table) =
  t.lk <- img.Wal.Record.rt_lk;
  t.unit_id <- img.rt_unit;
  t.begin_lsn <- img.rt_begin_lsn;
  t.last_lsn <- img.rt_last_lsn;
  t.ck <- img.rt_ck;
  t.next_id <- (match img.rt_unit with Some u -> u + t.id_stride | None -> t.next_id)
