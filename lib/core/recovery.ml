module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Lsn = Wal.Lsn
module Log = Wal.Log
module Record = Wal.Record
module Journal = Transact.Journal
module Txn_mgr = Transact.Txn_mgr
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Tree = Btree.Tree
module Access = Btree.Access

type resume =
  | No_reorg
  | Resume_passes of { lk : int }
  | Resume_pass3 of { stable_key : int; closed : (int * int) list }
  | Finish_switch of { new_root : int }

type outcome = {
  resume : resume;
  finished_unit : int option;
  units_finished : int;
  losers_undone : int;
  redo_applied : int;
  torn_pages : int;
  side_entries : Record.side_op list;
}

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

type analysis = {
  losers : (int * Lsn.t) list;
  open_units : int list;  (** BEGUN but not ENDED — parallel mode can leave several *)
  rt : Record.reorg_table;
  unit_types : (int, Record.reorg_type) Hashtbl.t;
  stable_key : int option;  (** most recent Stable_key's key *)
  stable_key_lsn : Lsn.t;  (** its LSN ([nil] if none) — a truncation floor *)
  final_root : int option;  (** new_root of a Stable_key{key=max_int} *)
  switched : bool;
  side : Record.side_op list;  (** oldest first, survivors *)
  side_oldest_lsn : Lsn.t;
      (** LSN of the oldest surviving side-file record ([nil] if none) — a
          truncation floor while pass 3 remains to be finished *)
  max_txn_id : int;
}

let analyze log =
  let txns : (int, Lsn.t) Hashtbl.t = Hashtbl.create 16 in
  let unit_types = Hashtbl.create 8 in
  let open_units : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  let rt_lk = ref min_int and rt_unit = ref None in
  let rt_begin = ref Lsn.nil and rt_last = ref Lsn.nil and rt_ck = ref None in
  let stable_key = ref None and final_root = ref None and switched = ref false in
  let stable_key_lsn = ref Lsn.nil in
  let side : (int * Lsn.t * Record.side_op) list ref =
    ref [] (* newest first, with txn and lsn *)
  in
  let max_txn = ref 0 in
  let note_txn t lsn =
    max_txn := max !max_txn t;
    Hashtbl.replace txns t lsn
  in
  let drop_side op =
    let rec go = function
      | [] -> []
      | (t, l, o) :: rest -> if o = op then rest else (t, l, o) :: go rest
    in
    (* entries are newest-first; drop the oldest matching one *)
    side := List.rev (go (List.rev !side))
  in
  Log.iter log (fun lsn body ->
      match body with
      | Record.Txn_begin t -> note_txn t lsn
      | Record.Txn_commit t | Record.Txn_abort t ->
        max_txn := max !max_txn t;
        Hashtbl.remove txns t
      | Record.Update { txn; _ } when txn <> 0 -> note_txn txn lsn
      | Record.Update _ -> ()
      | Record.Leaf_insert { txn; _ } | Record.Leaf_delete { txn; _ } -> note_txn txn lsn
      | Record.Clr { txn; _ } | Record.Nta_end { txn; _ } -> note_txn txn lsn
      | Record.Reorg_begin { unit_id; rtype; _ } ->
        Hashtbl.replace unit_types unit_id rtype;
        Hashtbl.replace open_units unit_id ();
        rt_unit := Some unit_id;
        rt_begin := lsn;
        rt_last := lsn
      | Record.Reorg_move { unit_id; _ } | Record.Reorg_modify { unit_id; _ } ->
        if !rt_unit = Some unit_id then rt_last := lsn
      | Record.Reorg_end { unit_id; largest_key; _ } ->
        Hashtbl.remove open_units unit_id;
        if !rt_unit = Some unit_id then begin
          rt_unit := None;
          rt_begin := Lsn.nil;
          rt_last := Lsn.nil
        end;
        if largest_key > !rt_lk then rt_lk := largest_key
      | Record.Side_file { txn; op; _ } ->
        note_txn txn lsn;
        side := (txn, lsn, op) :: !side
      | Record.Side_applied { op } -> drop_side op
      | Record.Stable_key { key; new_root } ->
        stable_key := Some key;
        stable_key_lsn := lsn;
        rt_ck := Some key;
        if key = max_int && new_root <> 0 then final_root := Some new_root
      | Record.Switch _ ->
        switched := true;
        rt_ck := None;
        side := []
      | Record.Checkpoint { active_txns; reorg; _ } ->
        Hashtbl.reset txns;
        List.iter (fun (t, l) -> note_txn t l) active_txns;
        rt_lk := reorg.Record.rt_lk;
        rt_unit := reorg.rt_unit;
        rt_begin := reorg.rt_begin_lsn;
        rt_last := reorg.rt_last_lsn;
        rt_ck := reorg.rt_ck);
  (* Undoing a loser removes its side-file entries (its CLRs would have,
     had the rollback run before the crash). *)
  let losers = Hashtbl.fold (fun t l acc -> (t, l) :: acc) txns [] in
  let loser_ids = List.map fst losers in
  let survivors =
    List.rev !side |> List.filter (fun (t, _, _) -> not (List.mem t loser_ids))
  in
  (* §7.3: entries beyond the most recent stable key refer to base pages the
     resumed scan will re-read — drop them. *)
  let key_of = function
    | Record.Side_insert { key; _ } | Record.Side_delete { key; _ } -> key
  in
  let survivors =
    match !stable_key with
    | Some sk when not !switched && !final_root = None ->
      List.filter (fun (_, _, op) -> key_of op < sk) survivors
    | _ -> survivors
  in
  let side_ops = List.map (fun (_, _, op) -> op) survivors in
  let side_oldest_lsn = match survivors with [] -> Lsn.nil | (_, l, _) :: _ -> l in
  {
    losers;
    open_units = Hashtbl.fold (fun u () acc -> u :: acc) open_units [] |> List.sort compare;
    rt =
      {
        Record.rt_lk = !rt_lk;
        rt_unit = !rt_unit;
        rt_begin_lsn = !rt_begin;
        rt_last_lsn = !rt_last;
        rt_ck = !rt_ck;
      };
    unit_types;
    stable_key = !stable_key;
    stable_key_lsn = !stable_key_lsn;
    final_root = !final_root;
    switched = !switched;
    side = side_ops;
    side_oldest_lsn;
    max_txn_id = !max_txn;
  }

(* ------------------------------------------------------------------ *)
(* Redo                                                                *)
(* ------------------------------------------------------------------ *)

let set_contents p records =
  Leaf.clear p;
  List.iter (fun r -> assert (Leaf.insert p r)) records

let redo ~tree ~unit_types log =
  let pool = Tree.pool tree in
  let applied = ref 0 in
  let stamp pid lsn =
    let p = Buffer_pool.get pool pid in
    Page.set_lsn p (Lsn.to_int64 lsn);
    Buffer_pool.mark_dirty pool pid;
    incr applied
  in
  let needs pid lsn = Page.lsn (Buffer_pool.get pool pid) < Lsn.to_int64 lsn in
  let skip = Hashtbl.create 4 in
  Log.iter log (fun lsn body ->
      if not (Hashtbl.mem skip lsn) then
        match body with
        | Record.Update { page; off; after; _ } ->
          if needs page lsn then begin
            let p = Buffer_pool.get pool page in
            Bytes.blit_string after 0 p off (String.length after);
            stamp page lsn
          end
        | Record.Leaf_insert { page; key; payload; _ } ->
          if needs page lsn then begin
            ignore (Leaf.replace (Buffer_pool.get pool page) { Leaf.key; payload });
            stamp page lsn
          end
        | Record.Leaf_delete { page; key; _ } ->
          if needs page lsn then begin
            ignore (Leaf.delete (Buffer_pool.get pool page) key);
            stamp page lsn
          end
        | Record.Clr { action; _ } -> begin
          (* Idempotent logical redo of compensation. *)
          match action with
          | Record.Undo_insert { key } -> Tree.apply_delete tree key
          | Record.Undo_delete { key; payload } -> Tree.apply_insert tree ~key ~payload
          | Record.Undo_side _ -> ()
          | Record.Undo_phys { page; off; bytes } ->
            if needs page lsn then begin
              let p = Buffer_pool.get pool page in
              Bytes.blit_string bytes 0 p off (String.length bytes);
              stamp page lsn
            end
        end
        | Record.Reorg_modify { base; edits; _ } ->
          if needs base lsn then begin
            let bp = Buffer_pool.get pool base in
            List.iter
              (fun edit ->
                match edit with
                | Record.Delete_entry { key; _ } -> ignore (Inode.delete_key bp key)
                | Record.Insert_entry { key; child } ->
                  ignore (Inode.insert bp { Inode.key; child })
                | Record.Update_entry { org_key; new_key; new_child; _ } -> begin
                  match Inode.find_key bp org_key with
                  | Some i ->
                    Inode.delete_at bp i;
                    ignore (Inode.insert bp { Inode.key = new_key; child = new_child })
                  | None -> ()
                end)
              edits;
            stamp base lsn
          end
        | Record.Reorg_move { unit_id; org; dest; payload; _ } -> begin
          let rtype =
            match Hashtbl.find_opt unit_types unit_id with
            | Some t -> t
            | None -> Record.Compact
          in
          match rtype with
          | Record.Compact | Record.Move -> begin
            match payload with
            | Record.Full_records recs ->
              if needs dest lsn then begin
                let dp = Buffer_pool.get pool dest in
                List.iter (fun (key, payload) -> ignore (Leaf.replace dp { Leaf.key; payload })) recs;
                stamp dest lsn
              end;
              if needs org lsn then begin
                let op = Buffer_pool.get pool org in
                List.iter (fun (key, _) -> ignore (Leaf.delete op key)) recs;
                stamp org lsn
              end
            | Record.Keys_only keys ->
              if needs dest lsn then begin
                (* Careful writing guarantees the org page on disk still
                   holds the records: re-move them. *)
                let op = Buffer_pool.get pool org in
                let dp = Buffer_pool.get pool dest in
                List.iter
                  (fun key ->
                    match Leaf.find op key with
                    | Some payload ->
                      ignore (Leaf.replace dp { Leaf.key; payload });
                      ignore (Leaf.delete op key)
                    | None -> ())
                  keys;
                stamp dest lsn;
                stamp org lsn;
                (try Buffer_pool.add_dependency pool ~blocked:org ~prereq:dest
                 with Buffer_pool.Cycle _ -> Buffer_pool.flush_page pool dest)
              end
              else if needs org lsn then begin
                let op = Buffer_pool.get pool org in
                List.iter (fun key -> ignore (Leaf.delete op key)) keys;
                stamp org lsn
              end
          end
          | Record.Swap -> begin
            (* Find the partner MOVE (b -> a) and redo the pair as one
               action, stamping both pages with the partner's LSN. *)
            let partner = ref None in
            Log.iter ~from:(lsn + 1) log (fun l b ->
                if !partner = None then
                  match b with
                  | Record.Reorg_move { unit_id = u; payload = p; _ } when u = unit_id ->
                    partner := Some (l, p)
                  | _ -> ());
            match !partner with
            | None -> () (* torn pair cannot happen (appends are atomic) *)
            | Some (m2, payload2) ->
              Hashtbl.replace skip m2 ();
              let a = org and b = dest in
              let a_done = not (needs a m2) and b_done = not (needs b m2) in
              let recs_of_payload = function
                | Record.Full_records recs ->
                  Some (List.map (fun (key, payload) -> { Leaf.key; payload }) recs)
                | Record.Keys_only _ -> None
              in
              let recs_a = recs_of_payload payload in
              if (not a_done) && not b_done then begin
                let pa = Buffer_pool.get pool a and pb = Buffer_pool.get pool b in
                let recs_b =
                  match recs_of_payload payload2 with
                  | Some r -> r
                  | None -> Leaf.records pb (* pre-swap contents, by careful writing *)
                in
                set_contents pb (Option.get recs_a);
                set_contents pa recs_b;
                stamp a m2;
                stamp b m2;
                (try Buffer_pool.add_dependency pool ~blocked:b ~prereq:a
                 with Buffer_pool.Cycle _ -> Buffer_pool.flush_page pool a)
              end
              else if a_done && not b_done then begin
                set_contents (Buffer_pool.get pool b) (Option.get recs_a);
                stamp b m2
              end
              else if b_done && not a_done then begin
                match recs_of_payload payload2 with
                | Some recs_b ->
                  set_contents (Buffer_pool.get pool a) recs_b;
                  stamp a m2
                | None ->
                  (* Impossible under careful writing (b durable implies a
                     durable); nothing safe to do otherwise. *)
                  ()
              end
          end
        end
        | Record.Txn_begin _ | Record.Txn_commit _ | Record.Txn_abort _ | Record.Nta_end _
        | Record.Reorg_begin _ | Record.Reorg_end _ | Record.Side_file _ | Record.Side_applied _
        | Record.Stable_key _ | Record.Switch _ | Record.Checkpoint _ ->
          ());
  !applied

(* ------------------------------------------------------------------ *)
(* Forward completion of the in-flight unit (§5.1)                     *)
(* ------------------------------------------------------------------ *)

let unit_records log ~unit_id =
  let begin_info = ref None and moves = ref [] and modifies = ref 0 in
  Log.iter log (fun _ body ->
      match body with
      | Record.Reorg_begin { unit_id = u; rtype; base_pages; leaf_pages } when u = unit_id ->
        begin_info := Some (rtype, base_pages, leaf_pages)
      | Record.Reorg_move { unit_id = u; org; dest; payload; _ } when u = unit_id ->
        moves := (org, dest, payload) :: !moves
      | Record.Reorg_modify { unit_id = u; _ } when u = unit_id -> incr modifies
      | _ -> ());
  (!begin_info, List.rev !moves, !modifies)

let opt_pid = function None -> Btree.Layout.nil_pid | Some p -> p

(* Complete a compact/move unit whose MOVEs are all logged (the only
   crash window after work started is the base-lock upgrade). *)
let complete_compact ctx ~unit_id ~base ~leaves ~dest =
  let pool = Ctx.pool ctx in
  let bp = Ctx.page ctx base in
  let first = List.hd leaves and last = List.nth leaves (List.length leaves - 1) in
  let low_mark =
    match Inode.find_child bp first with
    | Some i -> (Inode.entry_at bp i).Inode.key
    | None -> Leaf.low_mark (Ctx.page ctx first)
  in
  (* Any leaf still holding records and not the dest was not yet moved. *)
  List.iter
    (fun org ->
      if org <> dest then begin
        let op = Ctx.page ctx org in
        if Leaf.is_leaf op && Leaf.nrecords op > 0 then begin
          let records = Leaf.records op in
          let prev = Rtable.last_lsn ctx.Ctx.rtable in
          let payload =
            if ctx.Ctx.config.Config.careful_writing then
              Record.Keys_only (List.map (fun r -> r.Leaf.key) records)
            else
              Record.Full_records (List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) records)
          in
          let lsn =
            Ctx.log_reorg ctx
              (Record.Reorg_move { unit_id; org; dest; payload; dest_init = None; prev })
          in
          let dp = Ctx.page ctx dest in
          List.iter (fun r -> ignore (Leaf.replace dp r)) records;
          Leaf.clear op;
          Ctx.stamp ctx ~page:org lsn;
          Ctx.stamp ctx ~page:dest lsn
        end
      end)
    leaves;
  (* Headers, side pointers, deallocation, MODIFY, END — recomputed from the
     current state (idempotent under the log's physical records). *)
  let prev_n = Leaf.prev (Ctx.page ctx first) in
  let next_n = Leaf.next (Ctx.page ctx last) in
  let prev_n = if first = dest then prev_n else prev_n in
  let journal = Ctx.journal ctx in
  Journal.physical journal ~page:dest ~off:Btree.Layout.off_low_mark
    ~len:(Btree.Layout.off_next + 4 - Btree.Layout.off_low_mark) (fun p ->
      Leaf.set_low_mark p low_mark;
      Leaf.set_prev p prev_n;
      Leaf.set_next p next_n);
  (match prev_n with
  | Some p when p <> dest ->
    Journal.physical journal ~page:p ~off:Btree.Layout.off_next ~len:4 (fun q ->
        Leaf.set_next q (Some dest))
  | _ -> ());
  (match next_n with
  | Some p when p <> dest ->
    Journal.physical journal ~page:p ~off:Btree.Layout.off_prev ~len:4 (fun q ->
        Leaf.set_prev q (Some dest))
  | _ -> ());
  List.iter
    (fun org ->
      if org <> dest && Page.kind (Buffer_pool.get pool org) <> Page.kind_free then begin
        Journal.physical journal ~page:org ~off:0 ~len:1 (fun p ->
            Page.set_kind p Page.kind_free);
        if not (Alloc.is_free (Ctx.alloc ctx) org) then Alloc.release (Ctx.alloc ctx) org
      end)
    leaves;
  let edits =
    List.filter_map
      (fun leaf ->
        match Inode.find_child (Ctx.page ctx base) leaf with
        | Some i ->
          let e = Inode.entry_at (Ctx.page ctx base) i in
          Some (Record.Delete_entry { key = e.Inode.key; child = e.Inode.child })
        | None -> None)
      leaves
    @ [ Record.Insert_entry { key = low_mark; child = dest } ]
  in
  let prev = Rtable.last_lsn ctx.Ctx.rtable in
  let mlsn = Ctx.log_reorg ctx (Record.Reorg_modify { unit_id; base; edits; prev }) in
  let bp = Ctx.page ctx base in
  List.iter
    (fun edit ->
      match edit with
      | Record.Delete_entry { key; _ } -> ignore (Inode.delete_key bp key)
      | Record.Insert_entry { key; child } -> ignore (Inode.insert bp { Inode.key; child })
      | Record.Update_entry _ -> ())
    edits;
  Ctx.stamp ctx ~page:base mlsn;
  let largest =
    match Leaf.max_key (Ctx.page ctx dest) with
    | Some k -> k
    | None -> Rtable.lk ctx.Ctx.rtable
  in
  let prev = Rtable.last_lsn ctx.Ctx.rtable in
  ignore (Ctx.log_reorg ctx (Record.Reorg_end { unit_id; largest_key = largest; prev }));
  Rtable.end_unit ctx.Ctx.rtable ~largest_key:largest

(* Complete the §5.2 give-up UNDO of a compact/move unit.  A reverse MOVE
   (org = the unit's destination) in the stable tail means the unit was
   rolling itself back — it lost the base-lock upgrade to a deadlock — when
   the machine died.  Finishing such a unit forward would re-move records
   into a destination the undo may already have freed (leaving it reachable
   but marked free), so instead the remaining reverse moves are performed
   and the unit ends as a no-op, exactly as the live give-up path would
   have ended it.  Org headers need no repair: record moves preserve leaf
   headers, and the chain rewires only ever happen after the base lock was
   won (which it was not). *)
let complete_undo ctx ~unit_id ~leaves ~dest ~moves =
  let journal = Ctx.journal ctx in
  let forwards = List.filter (fun (_, d, _) -> d = dest) moves in
  let reversed =
    List.filter_map (fun (o, d, _) -> if o = dest then Some d else None) moves
  in
  List.iter
    (fun (org, _, payload) ->
      if org <> dest && not (List.mem org reversed) then begin
        let keys =
          match payload with
          | Record.Keys_only ks -> ks
          | Record.Full_records rs -> List.map fst rs
        in
        let dp = Ctx.page ctx dest in
        let records =
          List.filter_map
            (fun key ->
              match Leaf.find dp key with
              | Some payload -> Some { Leaf.key; payload }
              | None -> None)
            keys
        in
        let prev = Rtable.last_lsn ctx.Ctx.rtable in
        let lsn =
          Ctx.log_reorg ctx
            (Record.Reorg_move
               {
                 unit_id;
                 org = dest;
                 dest = org;
                 payload =
                   Record.Full_records
                     (List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) records);
                 dest_init = None;
                 prev;
               })
        in
        let op = Ctx.page ctx org in
        List.iter (fun r -> ignore (Leaf.replace op r)) records;
        List.iter (fun r -> ignore (Leaf.delete dp r.Leaf.key)) records;
        Ctx.stamp ctx ~page:org lsn;
        Ctx.stamp ctx ~page:dest lsn
      end)
    forwards;
  (* A freshly-claimed destination goes back to the free pool; an in-place
     destination (the unit's own first leaf) stays live. *)
  if not (List.mem dest leaves) then begin
    if Page.kind (Buffer_pool.get (Ctx.pool ctx) dest) <> Page.kind_free then
      Journal.physical journal ~page:dest ~off:0 ~len:1 (fun p ->
          Page.set_kind p Page.kind_free);
    if not (Alloc.is_free (Ctx.alloc ctx) dest) then Alloc.release (Ctx.alloc ctx) dest
  end;
  let prev = Rtable.last_lsn ctx.Ctx.rtable in
  ignore
    (Ctx.log_reorg ctx
       (Record.Reorg_end { unit_id; largest_key = Rtable.lk ctx.Ctx.rtable; prev }));
  Rtable.end_unit ctx.Ctx.rtable ~largest_key:(Rtable.lk ctx.Ctx.rtable)

(* Complete a swap unit whose two MOVE records are stable (so redo has
   already exchanged the contents).  Everything after the moves — headers,
   neighbour pointers, parent entries, END — is re-derived from observable
   state, because the stable log can have been truncated anywhere inside the
   unit's record sequence:
   - the entry keys {la, lb} survive in the base pages (MODIFY only changes
     children, never keys); which of them bounds the content now in [b]
     (= the old content of [a]) is decided with the keys from the MOVE
     payload;
   - header rewrites are ordered b-then-a in the executor, so the only
     partial state is "b done, a pending", and the pre-swap links of [a] are
     recoverable from [b]'s final header ([tr] is an involution). *)
let complete_swap ctx ~unit_id ~bases ~a ~b ~recs_a_keys =
  let journal = Ctx.journal ctx in
  let pa = Ctx.page ctx a and pb = Ctx.page ctx b in
  let tr = function Some p when p = a -> Some b | Some p when p = b -> Some a | x -> x in
  (* Entry keys covering the pair, from the bases. *)
  let entry_keys =
    List.concat_map
      (fun base ->
        List.filter_map
          (fun e ->
            if e.Inode.child = a || e.Inode.child = b then Some e.Inode.key else None)
          (Inode.entries (Ctx.page ctx base)))
      bases
    |> List.sort_uniq compare
  in
  let la, lb =
    match (entry_keys, recs_a_keys) with
    | [ k1; k2 ], mk :: _ ->
      (* la bounds the content that was in a (now in b). *)
      if mk >= k2 then (k2, k1) else (k1, k2)
    | [ k ], _ -> (k, k)
    | _ ->
      (* Fallback: trust the page headers (pre-swap state). *)
      (Leaf.low_mark pa, Leaf.low_mark pb)
  in
  let b_header_done = Leaf.low_mark pb = la && la <> lb in
  let a_header_done = Leaf.low_mark pa = lb && la <> lb in
  (* Recover the pre-swap chain links. *)
  let links_a =
    if a_header_done then
      (* a holds tr(old links of b); never reached with b pending. *)
      (tr (Leaf.prev pb), tr (Leaf.next pb))
    else if b_header_done then (tr (Leaf.prev pb), tr (Leaf.next pb))
    else (Leaf.prev pa, Leaf.next pa)
  in
  let links_b =
    if a_header_done then (tr (Leaf.prev pa), tr (Leaf.next pa))
    else (Leaf.prev pb, Leaf.next pb)
  in
  let set_header pid ~low ~prev ~next =
    Journal.physical journal ~page:pid ~off:Btree.Layout.off_low_mark
      ~len:(Btree.Layout.off_next + 4 - Btree.Layout.off_low_mark) (fun p ->
        Leaf.set_low_mark p low;
        Leaf.set_prev p prev;
        Leaf.set_next p next)
  in
  if not b_header_done then
    set_header b ~low:la ~prev:(tr (fst links_a)) ~next:(tr (snd links_a));
  if not a_header_done then
    set_header a ~low:lb ~prev:(tr (fst links_b)) ~next:(tr (snd links_b));
  let fix n ~prev ~to_ =
    match n with
    | Some p when p <> a && p <> b ->
      if prev then
        Journal.physical journal ~page:p ~off:Btree.Layout.off_prev ~len:4 (fun q ->
            Leaf.set_prev q (Some to_))
      else
        Journal.physical journal ~page:p ~off:Btree.Layout.off_next ~len:4 (fun q ->
            Leaf.set_next q (Some to_))
    | _ -> ()
  in
  fix (fst links_a) ~prev:false ~to_:b;
  fix (snd links_a) ~prev:true ~to_:b;
  fix (fst links_b) ~prev:false ~to_:a;
  fix (snd links_b) ~prev:true ~to_:a;
  List.iter
    (fun base ->
      let bp = Ctx.page ctx base in
      let edits = ref [] in
      (match Inode.find_key bp la with
      | Some i when (Inode.entry_at bp i).Inode.child = a ->
        edits :=
          Record.Update_entry { org_key = la; org_child = a; new_key = la; new_child = b }
          :: !edits
      | _ -> ());
      (match Inode.find_key bp lb with
      | Some i when (Inode.entry_at bp i).Inode.child = b ->
        edits :=
          Record.Update_entry { org_key = lb; org_child = b; new_key = lb; new_child = a }
          :: !edits
      | _ -> ());
      if !edits <> [] then begin
        let prev = Rtable.last_lsn ctx.Ctx.rtable in
        let mlsn =
          Ctx.log_reorg ctx (Record.Reorg_modify { unit_id; base; edits = !edits; prev })
        in
        List.iter
          (fun edit ->
            match edit with
            | Record.Update_entry { org_key; new_key; new_child; _ } -> begin
              match Inode.find_key bp org_key with
              | Some i ->
                Inode.delete_at bp i;
                ignore (Inode.insert bp { Inode.key = new_key; child = new_child })
              | None -> ()
            end
            | _ -> ())
          !edits;
        Ctx.stamp ctx ~page:base mlsn
      end)
    bases;
  let largest =
    max
      (match Leaf.max_key (Ctx.page ctx a) with Some k -> k | None -> min_int)
      (match Leaf.max_key (Ctx.page ctx b) with Some k -> k | None -> min_int)
  in
  let largest = max largest (Rtable.lk ctx.Ctx.rtable) in
  let prev = Rtable.last_lsn ctx.Ctx.rtable in
  ignore (Ctx.log_reorg ctx (Record.Reorg_end { unit_id; largest_key = largest; prev }));
  Rtable.end_unit ctx.Ctx.rtable ~largest_key:largest

let finish_one ctx log ~unit_id =
  begin
    match unit_records log ~unit_id with
    | None, _, _ ->
      (* BEGIN never became stable: the unit never existed. *)
      ()
    | Some (rtype, bases, leaves), moves, modifies ->
      Ctx.emit ctx (Prot.Unit_recover { actor = ctx.Ctx.actor.Transact.Txn.id; unit_id });
      (match (rtype, moves) with
      | _, [] | Record.Swap, [ _ ] ->
        (* Nothing moved yet: end the unit as a no-op; the restarted pass
           will re-plan this group. *)
        let prev = Rtable.last_lsn ctx.Ctx.rtable in
        ignore
          (Ctx.log_reorg ctx
             (Record.Reorg_end { unit_id; largest_key = Rtable.lk ctx.Ctx.rtable; prev }));
        Rtable.end_unit ctx.Ctx.rtable ~largest_key:(Rtable.lk ctx.Ctx.rtable)
      | (Record.Compact | Record.Move), (_, dest, _) :: _
        when List.exists (fun (o, _, _) -> o = dest) moves ->
        (* A reverse move (out of the unit's own destination) is in the
           stable tail: the unit was undoing itself when the machine died.
           Finish the undo, not the unit. *)
        complete_undo ctx ~unit_id ~leaves ~dest ~moves
      | (Record.Compact | Record.Move), (_, dest, _) :: _ ->
        if modifies > 0 then begin
          (* Everything but END was done. *)
          let largest =
            match Leaf.max_key (Ctx.page ctx dest) with
            | Some k -> k
            | None -> Rtable.lk ctx.Ctx.rtable
          in
          let prev = Rtable.last_lsn ctx.Ctx.rtable in
          ignore (Ctx.log_reorg ctx (Record.Reorg_end { unit_id; largest_key = largest; prev }));
          Rtable.end_unit ctx.Ctx.rtable ~largest_key:largest
        end
        else begin
          (match rtype, bases with
          | _, base :: _ ->
            (* Claim the new-place destination if the crash lost it. *)
            if Alloc.is_free (Ctx.alloc ctx) dest then Alloc.alloc_specific (Ctx.alloc ctx) dest;
            complete_compact ctx ~unit_id ~base ~leaves ~dest
          | _ -> ())
        end
      | Record.Swap, (_, _, payload1) :: _ -> begin
        ignore modifies;
        match leaves with
        | [ a; b ] ->
          let recs_a_keys =
            match payload1 with
            | Record.Full_records rs -> List.map fst rs
            | Record.Keys_only ks -> ks
          in
          (* State-driven and idempotent: partial headers / MODIFYs are
             detected and only the missing steps are re-performed. *)
          complete_swap ctx ~unit_id ~bases ~a ~b ~recs_a_keys
        | _ -> ()
      end)
  end

let finish_units ctx log ~open_units =
  List.iter (fun unit_id -> finish_one ctx log ~unit_id) open_units;
  (* The system table no longer carries an in-flight unit. *)
  Rtable.end_unit ctx.Ctx.rtable ~largest_key:(Rtable.lk ctx.Ctx.rtable);
  match open_units with [] -> None | u :: _ -> Some u

(* ------------------------------------------------------------------ *)
(* Pass-3 state reconstruction                                         *)
(* ------------------------------------------------------------------ *)

(* Free internal pages of generations older than the current one (post-
   switch garbage), and any stray meta pages in the internal zone. *)
let sweep_old_generation ctx =
  let tree = Ctx.tree ctx in
  let pool = Ctx.pool ctx in
  let alloc = Ctx.alloc ctx in
  let cur = Tree.generation tree in
  let backend = Buffer_pool.backend pool in
  let _, leaf_hi = Alloc.leaf_zone alloc in
  for pid = leaf_hi to Pager.Backend.page_count backend - 1 do
    let p = Buffer_pool.get pool pid in
    let stale_internal = Inode.is_internal p && Inode.generation p < cur in
    let stray_meta = Page.kind p = Btree.Layout.kind_meta && pid <> Tree.meta_pid tree in
    if stale_internal || stray_meta then begin
      Journal.physical (Ctx.journal ctx) ~page:pid ~off:0 ~len:1 (fun q ->
          Page.set_kind q Page.kind_free);
      if not (Alloc.is_free alloc pid) then Alloc.release alloc pid
    end
  done

(* Adopt the durable new-generation level-1 pages below the stable key;
   free the rest of the interrupted build. *)
let rebuild_builder_state ctx ~stable_key =
  let tree = Ctx.tree ctx in
  let pool = Ctx.pool ctx in
  let alloc = Ctx.alloc ctx in
  let gen = Tree.generation tree + 1 in
  let backend = Buffer_pool.backend pool in
  let _, leaf_hi = Alloc.leaf_zone alloc in
  let keep = ref [] in
  for pid = leaf_hi to Pager.Backend.page_count backend - 1 do
    let p = Buffer_pool.get pool pid in
    if Inode.is_internal p && Inode.generation p = gen then
      if Inode.level p = 1 && Inode.low_mark p < stable_key then
        keep := (Inode.low_mark p, pid) :: !keep
      else begin
        Journal.physical (Ctx.journal ctx) ~page:pid ~off:0 ~len:1 (fun q ->
            Page.set_kind q Page.kind_free);
        if not (Alloc.is_free alloc pid) then Alloc.release alloc pid
      end
  done;
  List.sort compare !keep

(* ------------------------------------------------------------------ *)
(* Restart                                                             *)
(* ------------------------------------------------------------------ *)

let restart ?registry ?tracer ?shard ?prot ~access ~config () =
  let tree = Access.tree access in
  let mgr = Access.mgr access in
  let journal = Tree.journal tree in
  let log = Journal.log journal in
  let pool = Tree.pool tree in
  let torn_before = Buffer_pool.torn_detected pool in
  (* Restart runs in read-repair mode: a checksum mismatch accepts the
     surviving pre-tear (LSN, body) pair instead of being fatal.  The WAL
     rule forced the log past the torn write's LSN before it was issued, so
     redo's ordinary page-LSN guard replays exactly the lost suffix against
     the survivor — and nothing older, which matters because a
     careful-writing move below the survivor's LSN may name an origin page
     that has since been recycled. *)
  Buffer_pool.set_read_repair pool true;
  Fun.protect ~finally:(fun () -> Buffer_pool.set_read_repair pool false)
  @@ fun () ->
  let a = analyze log in
  (* Redo everything stable; page-LSN guards make it exact. *)
  let redo_applied = redo ~tree ~unit_types:a.unit_types log in
  Alloc.rebuild (Tree.alloc tree);
  Txn_mgr.ensure_next_id mgr (a.max_txn_id + 1);
  (* Undo loser transactions (logical undo via the tree). *)
  List.iter
    (fun (id, last) ->
      let tx = Transact.Txn.make id in
      tx.Transact.Txn.last_lsn <- last;
      Txn_mgr.undo_chain mgr tx ~last;
      ignore (Log.append log (Record.Txn_abort id)))
    a.losers;
  (* Physical undo can flip allocation kind bytes (e.g. resurrect the pages
     of a torn block operation): recompute the free sets. *)
  if a.losers <> [] then Alloc.rebuild (Tree.alloc tree);
  (* Forward recovery of the reorganizer's state. *)
  let ctx = Ctx.make ?registry ?tracer ?shard ?prot ~access ~config () in
  Rtable.restore ctx.Ctx.rtable a.rt;
  let finished_unit = finish_units ctx log ~open_units:a.open_units in
  let resume =
    if a.switched then begin
      sweep_old_generation ctx;
      if Tree.reorg_bit tree then Tree.set_reorg_bit tree false;
      No_reorg
    end
    else if Tree.reorg_bit tree then begin
      match a.final_root with
      | Some new_root -> Finish_switch { new_root }
      | None ->
        let stable_key = match a.stable_key with Some k -> k | None -> min_int in
        let closed = rebuild_builder_state ctx ~stable_key in
        Resume_pass3 { stable_key; closed }
    end
    else if Rtable.lk ctx.Ctx.rtable > min_int || finished_unit <> None then
      (* With several interrupted units (parallel mode), some ranges below
         LK may be unfinished: rescan from the start — pass 1 skips
         already-compacted groups, so this is only slower, never wrong. *)
      if List.length a.open_units > 1 then Resume_passes { lk = min_int }
      else Resume_passes { lk = Rtable.lk ctx.Ctx.rtable }
    else No_reorg
  in
  (* When pass 3 must be resumed or the switch finished, the pre-crash
     side-file records and the Stable_key must survive any further crash —
     re-pin the volatile truncation floor before the end-of-restart
     checkpoint (the first one that could otherwise reclaim them). *)
  (match resume with
  | Resume_pass3 _ | Finish_switch _ ->
    Rtable.lower_floor ctx.Ctx.rtable a.stable_key_lsn;
    Rtable.lower_floor ctx.Ctx.rtable a.side_oldest_lsn
  | No_reorg | Resume_passes _ -> ());
  (* End of restart: everything durable, fresh checkpoint. *)
  Buffer_pool.flush_all pool;
  Log.force_all log;
  Ctx.checkpoint ctx;
  let units_finished = List.length a.open_units in
  let torn_pages = Buffer_pool.torn_detected pool - torn_before in
  (match registry with
  | Some reg ->
    Obs.Counter.incr (Obs.Registry.counter reg "recovery.restarts");
    if units_finished > 0 then
      Obs.Counter.incr (Obs.Registry.counter reg "recovery.units_finished") ~by:units_finished;
    if torn_pages > 0 then
      Obs.Counter.incr (Obs.Registry.counter reg "recovery.torn_pages") ~by:torn_pages
  | None -> ());
  ( ctx,
    {
      resume;
      finished_unit;
      units_finished;
      losers_undone = List.length a.losers;
      redo_applied;
      torn_pages;
      side_entries = a.side;
    } )

let resume_reorganization ctx outcome =
  match outcome.resume with
  | No_reorg -> None
  | Resume_passes _ -> Some (Driver.run ctx)
  | Resume_pass3 { stable_key; closed } ->
    let switched =
      Pass3.run ctx
        ~resume:
          { Pass3.r_stable_key = stable_key; r_closed = closed; r_side = outcome.side_entries }
        ()
    in
    Some
      {
        Driver.empty_report with
        Driver.switched;
        height_after = Tree.height (Ctx.tree ctx);
      }
  | Finish_switch { new_root } ->
    let switched =
      Pass3.run ctx ~finish:{ Pass3.f_new_root = new_root; f_side = outcome.side_entries } ()
    in
    Some
      {
        Driver.empty_report with
        Driver.switched;
        height_after = Tree.height (Ctx.tree ctx);
      }

let _ = opt_pid
