(** The full three-pass on-line reorganization (Figure 1 / Figure 2).

    Pass 1 compacts the leaves (in-place + copying-switching), pass 2
    optionally swaps/moves them into contiguous key order, pass 3 rebuilds
    the upper levels and switches.  A checkpoint (carrying the §5 system
    table) is written between passes. *)

type report = {
  pass1_units : int;
  swaps : int;
  moves : int;
  switched : bool;
  height_before : int;
  height_after : int;
  leaves_before : int;
  leaves_after : int;
  fill_before : float;
  fill_after : float;
  out_of_order_after_pass1 : int;
      (** leaves not in disk order when pass 2 started — what Find-Free-Space
          minimizes *)
}

val empty_report : report

val run : ?pass1_workers:int -> Ctx.t -> report
(** Must run inside a scheduler process.  [pass1_workers > 1] runs the
    compaction pass with parallel range-partitioned workers (the paper's
    stated future work); passes 2 and 3 stay sequential. *)

val reorganize :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  access:Btree.Access.t ->
  config:Config.t ->
  unit ->
  Ctx.t * report ref
(** Convenience used by experiments: builds a {!Ctx.t} and returns it with a
    cell the scheduler process fills; spawn [fun () -> r := Some (run ctx)]
    yourself when you need custom orchestration. *)

val pp_report : Format.formatter -> report -> unit
