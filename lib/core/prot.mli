(** Typed protocol events emitted by the reorganizer for the model checker.

    Alongside {!Obs.Trace} (human timelines) the reorganizer publishes a
    machine-checkable stream of protocol steps.  Consumers install a sink via
    [?prot] on {!Ctx.make} / {!Recovery.restart} and {!Side_file.set_prot};
    the [lib/model] conformance machines replay the stream against guarded
    models of the paper's unit lifecycle (§5) and switch protocol (§7).

    Event sources:
    - [Unit_begin]/[Unit_move]/[Unit_modify]/[Unit_end] are derived from the
      reorganization WAL records at their single append choke point
      ({!Ctx.log_reorg}), so unit execution, §5.2 undo and recovery's
      completion paths are all covered without per-site hooks;
    - [Unit_undo] marks the §5.2 give-up decision (before its reverse moves),
      [Unit_recover] marks restart's decision to finish an interrupted unit;
    - the pass-3 events trace §7: scan with strictly-advancing CK (§7.1),
      side-file catch-up, the switch record, the drain with forced aborts
      (§7.4) and the λ-switch variant;
    - [Side_accept]/[Side_redirect] are the side file's per-update admission
      decisions (accepted behind CK vs redirected to the new tree);
    - [Olc_read] is fired by the access layer's optimistic read path
      (installed through {!Btree.Access.set_read_probe}) for every committed
      lock-free point lookup, carrying an oracle verdict computed in the same
      atomic scheduler step. *)

type pass3_mode = Fresh | Resume | Finish

type event =
  | Unit_begin of {
      actor : int;
      unit_id : int;
      kind : Wal.Record.reorg_type;
      bases : int list;
      leaves : int list;
      lsn : int;
    }
  | Unit_move of { actor : int; unit_id : int; org : int; dest : int; lsn : int }
  | Unit_modify of { actor : int; unit_id : int; base : int; lsn : int }
  | Unit_undo of { actor : int; unit_id : int }
  | Unit_end of { actor : int; unit_id : int; largest_key : int; lsn : int }
  | Unit_recover of { actor : int; unit_id : int }
  | Pass3_start of { actor : int; mode : pass3_mode; ck : int; lambda : bool }
  | Scan_base of { actor : int; base : int; ck_before : int; ck_after : int }
  | Scan_done of { actor : int }
  | Catchup of { actor : int; applied : int }
  | Side_locked of { actor : int }
      (** the reorganizer holds X on the side file: admissions now redirect *)
  | Switch_logged of {
      actor : int;
      old_root : int;
      new_root : int;
      old_name : int;
      new_name : int;
      backlog : int;  (** side-file entries left at switch — must be 0 *)
      lsn : int;
    }
  | Forced_abort of { actor : int; owner : int; lambda : bool }
  | Switch_cleanup of { actor : int }
  | Side_accept of { key : int }
  | Side_redirect of { key : int }
  | Olc_read of { leaf : int; key : int; valid : bool }
      (** a committed optimistic read: [valid] = its result equals a fresh
          locked-descent answer taken in the same atomic step *)

val key_to_string : int -> string
(** Renders [min_int]/[max_int] as the -inf/+inf sentinels they are. *)

val to_string : event -> string
val pp : Format.formatter -> event -> unit
