(** Counters collected by the reorganizer — the quantities the paper argues
    about: units run, in-place vs new-place choices, swaps vs moves in pass 2,
    records moved, log bytes, lock give-ups and retries.

    Each field is an {!Obs.Counter.t} named [core.<field>], so the whole
    record can live in an {!Obs.Registry.t} and show up in [--metrics] dumps
    alongside the scheduler / lock / pager / WAL gauges.  The like-named
    accessor functions return the current values as plain ints. *)

type t = {
  units : Obs.Counter.t;  (** reorganization units completed *)
  in_place_units : Obs.Counter.t;
  new_place_units : Obs.Counter.t;  (** copying-switching units *)
  swap_units : Obs.Counter.t;  (** pass-2 swaps *)
  move_units : Obs.Counter.t;  (** pass-2 moves to empty pages *)
  pages_compacted : Obs.Counter.t;  (** org leaves emptied by pass 1 *)
  records_moved : Obs.Counter.t;
  unit_retries : Obs.Counter.t;  (** units re-run after a deadlock give-up *)
  units_undone : Obs.Counter.t;  (** §5.2 undo-at-deadlock events *)
  base_pages_scanned : Obs.Counter.t;  (** pass 3 *)
  side_entries : Obs.Counter.t;  (** side-file entries applied during catch-up *)
  catchup_batches : Obs.Counter.t;  (** batched catch-up rounds (one yield each) *)
  stable_points : Obs.Counter.t;
  forced_aborts : Obs.Counter.t;  (** old-tree transactions aborted at switch *)
  log_bytes : Obs.Counter.t;  (** log bytes attributed to reorganization *)
  log_records : Obs.Counter.t;
}

val create : ?registry:Obs.Registry.t -> unit -> t
(** Fresh zeroed counters, attached to [registry] when given. *)

val register_obs : t -> Obs.Registry.t -> unit
(** Attach every counter to the registry (idempotent by name). *)

val reset : t -> unit

(** {2 Read accessors} *)

val units : t -> int
val in_place_units : t -> int
val new_place_units : t -> int
val swap_units : t -> int
val move_units : t -> int
val pages_compacted : t -> int
val records_moved : t -> int
val unit_retries : t -> int
val units_undone : t -> int
val base_pages_scanned : t -> int
val side_entries : t -> int
val catchup_batches : t -> int
val stable_points : t -> int
val forced_aborts : t -> int
val log_bytes : t -> int
val log_records : t -> int

val pp : Format.formatter -> t -> unit
