module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Record = Wal.Record
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_client = Transact.Lock_client
module Journal = Transact.Journal
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Layout = Btree.Layout
module Olc = Btree.Olc

type plan =
  | Compact of {
      base : int;
      leaves : int list;
      dest : [ `In_place of int | `New_place of int ];
    }
  | Swap of { a_base : int; a : int; b_base : int; b : int }
  | Move of { base : int; org : int; dest : int }

type outcome = Done of int | Stale | Gave_up

exception Stale_plan

let pp_plan ppf = function
  | Compact { base; leaves; dest } ->
    let d = match dest with `In_place p -> Printf.sprintf "in-place:%d" p | `New_place p -> Printf.sprintf "new-place:%d" p in
    Format.fprintf ppf "compact base=%d leaves=[%s] dest=%s" base
      (String.concat ";" (List.map string_of_int leaves))
      d
  | Swap { a_base; a; b_base; b } -> Format.fprintf ppf "swap %d(%d) <-> %d(%d)" a a_base b b_base
  | Move { base; org; dest } -> Format.fprintf ppf "move %d -> %d (base %d)" org dest base

(* ------------------------------------------------------------------ *)
(* Lock bookkeeping                                                    *)
(* ------------------------------------------------------------------ *)

let acquire ctx held res mode =
  Ctx.acquire ctx res mode;
  held := (res, mode) :: !held

let release_all ctx held = Ctx.release_unit_locks ctx held

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)
(* ------------------------------------------------------------------ *)

let opt_pid = function None -> Layout.nil_pid | Some p -> p
let pid_opt p = if p = Layout.nil_pid then None else Some p

(* Every raw page mutation below bypasses [Tree.physical], so the
   optimistic-read version table must be bumped explicitly (DESIGN.md §11).
   Record-level content changes need it too: an uncontended unit executes
   atomically between two reader yields, so a reader parked on a leaf whose
   records are exchanged under it can only notice through the version. *)
let bump ctx pid = Olc.bump (Ctx.olc ctx) pid

let move_payload ~careful records =
  if careful then Record.Keys_only (List.map (fun r -> r.Leaf.key) records)
  else Record.Full_records (List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) records)

(* Attempt the careful-writing write-order constraint BEFORE logging the
   MOVE.  When the dependency would close a cycle, the paper's rule applies
   ("there is no way to avoid logging at least one of the full page
   contents"): the caller logs full contents instead.  [force] because the
   prerequisite is about to be dirtied with the protected records. *)
let plan_careful ctx ~blocked ~prereq =
  ctx.Ctx.config.Config.careful_writing
  &&
  match Buffer_pool.add_dependency ~force:true (Ctx.pool ctx) ~blocked ~prereq with
  | () -> true
  | exception Buffer_pool.Cycle _ -> false

let log_move ctx ~unit_id ~org ~dest ~careful records =
  let prev = Rtable.last_lsn ctx.Ctx.rtable in
  Ctx.log_reorg ctx
    (Record.Reorg_move
       { unit_id; org; dest; payload = move_payload ~careful records; dest_init = None; prev })

(* Update the headers (low mark + side pointers) of a leaf with a narrow
   physical record, so redo is absolute and independent of record layout. *)
let set_leaf_header ctx pid ~low_mark ~prev ~next =
  Journal.physical (Ctx.journal ctx) ~page:pid ~off:Layout.off_low_mark
    ~len:(Layout.off_next + 4 - Layout.off_low_mark) (fun p ->
      Leaf.set_low_mark p low_mark;
      Leaf.set_prev p (pid_opt prev);
      Leaf.set_next p (pid_opt next));
  bump ctx pid

let set_neighbor_next ctx pid next =
  Journal.physical (Ctx.journal ctx) ~page:pid ~off:Layout.off_next ~len:4 (fun p ->
      Leaf.set_next p next);
  bump ctx pid

let set_neighbor_prev ctx pid prev =
  Journal.physical (Ctx.journal ctx) ~page:pid ~off:Layout.off_prev ~len:4 (fun p ->
      Leaf.set_prev p prev);
  bump ctx pid

(* Format a fresh leaf with a narrow header-only physical record.  Residual
   body bytes of a recycled page are unreachable because the header declares
   the page empty. *)
let format_dest ctx pid ~low_mark ~prev ~next =
  Journal.physical (Ctx.journal ctx) ~page:pid ~off:0 ~len:Layout.body_start (fun p ->
      Leaf.init p ~low_mark;
      Leaf.set_prev p (pid_opt prev);
      Leaf.set_next p (pid_opt next));
  bump ctx pid

let dealloc_org ctx ~org ~dest =
  Journal.physical (Ctx.journal ctx) ~page:org ~off:0 ~len:1 (fun p ->
      Page.set_kind p Page.kind_free);
  bump ctx org;
  if ctx.Ctx.config.Config.careful_writing then
    (* The page may not be reused until its contents are durable in dest. *)
    Alloc.defer_release (Ctx.alloc ctx) ~page:org ~until_durable:dest
  else Alloc.release (Ctx.alloc ctx) org

let apply_edits_to_base ctx ~base ~edits ~lsn =
  let bp = Ctx.page ctx base in
  List.iter
    (fun edit ->
      match edit with
      | Record.Delete_entry { key; _ } -> ignore (Inode.delete_key bp key)
      | Record.Insert_entry { key; child } ->
        ignore (Inode.insert bp { Inode.key; child })
      | Record.Update_entry { org_key; new_key; new_child; _ } -> begin
        match Inode.find_key bp org_key with
        | Some i ->
          Inode.delete_at bp i;
          ignore (Inode.insert bp { Inode.key = new_key; child = new_child })
        | None -> ()
      end)
    edits;
  Ctx.stamp ctx ~page:base lsn;
  bump ctx base

(* A concurrent updater can split the base page itself between the time a
   unit captures its plan and the time it logs MODIFY, relocating entries to
   a fresh sibling.  A MODIFY applied to the planned base would then miss
   its entry and leave a stale child pointer behind, so resolve which base
   page holds each key {e now} and group the edits accordingly. *)
let resolve_base ctx ~hint key =
  match Btree.Tree.parent_of_leaf (Ctx.tree ctx) key with
  | Some b -> b
  | None | (exception Not_found) -> hint

let log_modify ctx ~unit_id ~base ~edits =
  let resolved =
    List.map
      (fun edit ->
        let key =
          match edit with
          | Record.Delete_entry { key; _ } | Record.Insert_entry { key; _ } -> key
          | Record.Update_entry { org_key; _ } -> org_key
        in
        (resolve_base ctx ~hint:base key, edit))
      edits
  in
  List.iter
    (fun b ->
      let es = List.filter_map (fun (b', e) -> if b' = b then Some e else None) resolved in
      let prev = Rtable.last_lsn ctx.Ctx.rtable in
      let lsn = Ctx.log_reorg ctx (Record.Reorg_modify { unit_id; base = b; edits = es; prev }) in
      apply_edits_to_base ctx ~base:b ~edits:es ~lsn)
    (List.sort_uniq compare (List.map fst resolved))

let log_end ctx ~unit_id ~largest_key =
  let prev = Rtable.last_lsn ctx.Ctx.rtable in
  ignore (Ctx.log_reorg ctx (Record.Reorg_end { unit_id; largest_key; prev }));
  Rtable.end_unit ctx.Ctx.rtable ~largest_key;
  (* Execution, undo and recovery completions all flow through here: the
     optimistic read path stops falling back once no unit is in flight. *)
  Olc.unit_end (Ctx.olc ctx)

(* Consecutive-children check: every leaf must be a child of [base] and the
   entries must be adjacent, in order. *)
let entries_for_leaves ctx ~base ~leaves =
  let bp = Ctx.page ctx base in
  if not (Inode.is_internal bp) || Inode.level bp <> 1 then raise Stale_plan;
  let idxs =
    List.map
      (fun leaf ->
        match Inode.find_child bp leaf with Some i -> i | None -> raise Stale_plan)
      leaves
  in
  (match idxs with
  | [] -> raise Stale_plan
  | first :: rest ->
    let rec consecutive prev = function
      | [] -> ()
      | i :: rest -> if i <> prev + 1 then raise Stale_plan else consecutive i rest
    in
    consecutive first rest);
  List.map (fun i -> Inode.entry_at bp i) idxs

(* ------------------------------------------------------------------ *)
(* Compact / Move                                                      *)
(* ------------------------------------------------------------------ *)

(* §5.2 undo: records were moved but the base-page X upgrade deadlocked.
   Reverse the moves (logging full-content reverse MOVE records) and end the
   unit as a no-op. *)
let undo_moves ctx ~unit_id ~dest ~dest_fresh ~saved =
  Obs.Counter.incr ctx.Ctx.metrics.Metrics.units_undone;
  (* The give-up decision itself is a protocol step the reverse MOVE records
     below cannot express (they look like forward moves of a swap), so it is
     announced explicitly to the model checker. *)
  Ctx.emit ctx (Prot.Unit_undo { actor = ctx.Ctx.actor.Transact.Txn.id; unit_id });
  List.iter
    (fun (org, records, low_mark, prev, next) ->
      let lsn =
        let p = Rtable.last_lsn ctx.Ctx.rtable in
        Ctx.log_reorg ctx
          (Record.Reorg_move
             {
               unit_id;
               org = dest;
               dest = org;
               payload =
                 Record.Full_records (List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) records);
               dest_init = None;
               prev = p;
             })
      in
      let op = Ctx.page ctx org in
      Leaf.init op ~low_mark;
      Leaf.set_prev op prev;
      Leaf.set_next op next;
      List.iter (fun r -> assert (Leaf.insert op r)) records;
      Ctx.stamp ctx ~page:org lsn;
      bump ctx org;
      let dp = Ctx.page ctx dest in
      List.iter (fun r -> ignore (Leaf.delete dp r.Leaf.key)) records;
      Ctx.stamp ctx ~page:dest lsn;
      bump ctx dest)
    saved;
  if dest_fresh then begin
    Journal.physical (Ctx.journal ctx) ~page:dest ~off:0 ~len:1 (fun p ->
        Page.set_kind p Page.kind_free);
    bump ctx dest;
    Alloc.release (Ctx.alloc ctx) dest
  end;
  log_end ctx ~unit_id ~largest_key:(Rtable.lk ctx.Ctx.rtable)

let execute_compact ctx ~base ~leaves ~dest =
  let held = ref [] in
  (* A fresh destination is claimed the moment it is validated: lock waits
     yield, and a concurrent updater's split could otherwise allocate the
     same page.  [claimed] is cleared once the unit owns the page (or the
     undo path has released it). *)
  let claimed = ref None in
  let release_claim () =
    match !claimed with
    | Some e ->
      claimed := None;
      Alloc.release (Ctx.alloc ctx) e
    | None -> ()
  in
  try
    acquire ctx held (Resource.Page base) Mode.R;
    let entries = entries_for_leaves ctx ~base ~leaves in
    List.iter (fun leaf -> acquire ctx held (Resource.Page leaf) Mode.RX) leaves;
    (* Re-read contents under the RX locks. *)
    let contents = List.map (fun l -> (l, Leaf.records (Ctx.page ctx l))) leaves in
    let total_bytes =
      List.fold_left
        (fun acc (_, rs) -> List.fold_left (fun a r -> a + Leaf.record_bytes r) acc rs)
        0 contents
    in
    if total_bytes > Ctx.usable_bytes ctx then raise Stale_plan;
    let dest_pid, dest_fresh =
      match dest with
      | `In_place d ->
        if not (List.mem d leaves) then raise Stale_plan;
        (d, false)
      | `New_place e ->
        if not (Alloc.try_claim (Ctx.alloc ctx) e) then raise Stale_plan;
        claimed := Some e;
        (e, true)
    in
    let orgs = List.filter (fun l -> l <> dest_pid) leaves in
    if orgs = [] then begin
      release_all ctx held;
      Done
        (match List.concat_map snd contents with
        | [] -> Rtable.lk ctx.Ctx.rtable
        | rs -> List.fold_left (fun a r -> max a r.Leaf.key) min_int rs)
    end
    else begin
      let first = List.hd leaves and last = List.nth leaves (List.length leaves - 1) in
      let low_mark = (List.hd entries).Inode.key in
      let prev_n = Leaf.prev (Ctx.page ctx first) in
      let next_n = Leaf.next (Ctx.page ctx last) in
      (* X locks on side-pointer neighbours outside the unit (§4.3). *)
      List.iter
        (fun n ->
          match n with
          | Some pid when not (List.mem pid leaves) ->
            acquire ctx held (Resource.Page pid) Mode.X
          | _ -> ())
        [ prev_n; next_n ];
      (* All locks held: the unit begins. *)
      let unit_id = Rtable.next_unit_id ctx.Ctx.rtable in
      let begin_lsn =
        Ctx.log_reorg ctx
          (Record.Reorg_begin
             { unit_id; rtype = Record.Compact; base_pages = [ base ]; leaf_pages = leaves })
      in
      Rtable.begin_unit ctx.Ctx.rtable ~unit_id ~begin_lsn;
      Olc.unit_begin (Ctx.olc ctx);
      if dest_fresh then begin
        claimed := None (* ownership passes to the unit: undo or the tree *);
        format_dest ctx dest_pid ~low_mark ~prev:(opt_pid prev_n) ~next:(opt_pid next_n)
      end;
      (* Move records, saving enough to undo (§5.2). *)
      let saved = ref [] in
      List.iter
        (fun (org, records) ->
          if org <> dest_pid then begin
            let op = Ctx.page ctx org in
            let org_low = Leaf.low_mark op in
            let org_prev = Leaf.prev op and org_next = Leaf.next op in
            let careful = plan_careful ctx ~blocked:org ~prereq:dest_pid in
            let lsn = log_move ctx ~unit_id ~org ~dest:dest_pid ~careful records in
            let dp = Ctx.page ctx dest_pid in
            List.iter (fun r -> assert (Leaf.insert dp r)) records;
            Leaf.clear op;
            Ctx.stamp ctx ~page:org lsn;
            Ctx.stamp ctx ~page:dest_pid lsn;
            bump ctx org;
            bump ctx dest_pid;
            Obs.Counter.incr ctx.Ctx.metrics.Metrics.records_moved ~by:(List.length records);
            saved := (org, records, org_low, org_prev, org_next) :: !saved
          end)
        contents;
      (* Upgrade the base lock for the short exclusive MODIFY step. *)
      (match Lock_client.try_acquire (Ctx.locks ctx) ~txn:ctx.Ctx.actor (Resource.Page base) Mode.X with
      | `Granted -> held := (Resource.Page base, Mode.X) :: !held
      | `Conflict _ -> begin
        try
          Lock_client.wait_queued (Ctx.locks ctx) ~txn:ctx.Ctx.actor (Resource.Page base) Mode.X;
          held := (Resource.Page base, Mode.X) :: !held
        with Lock_client.Deadlock_victim ->
          undo_moves ctx ~unit_id ~dest:dest_pid ~dest_fresh ~saved:(List.rev !saved);
          release_all ctx held;
          raise Lock_client.Deadlock_victim
      end);
      (* Side pointers: dest takes the group's chain position. *)
      set_leaf_header ctx dest_pid ~low_mark ~prev:(opt_pid prev_n) ~next:(opt_pid next_n);
      (match prev_n with
      | Some p when p <> dest_pid -> set_neighbor_next ctx p (Some dest_pid)
      | _ -> ());
      (match next_n with
      | Some p when p <> dest_pid -> set_neighbor_prev ctx p (Some dest_pid)
      | _ -> ());
      (* Deallocate the emptied org pages (deferred under careful writing). *)
      List.iter (fun org -> dealloc_org ctx ~org ~dest:dest_pid) orgs;
      (* MODIFY: replace the group's entries by one entry for dest. *)
      let edits =
        List.map
          (fun e -> Record.Delete_entry { key = e.Inode.key; child = e.Inode.child })
          entries
        @ [ Record.Insert_entry { key = low_mark; child = dest_pid } ]
      in
      log_modify ctx ~unit_id ~base ~edits;
      let largest_key =
        match List.concat_map snd contents with
        | [] -> Rtable.lk ctx.Ctx.rtable
        | rs -> List.fold_left (fun a r -> max a r.Leaf.key) min_int rs
      in
      log_end ctx ~unit_id ~largest_key;
      release_all ctx held;
      let m = ctx.Ctx.metrics in
      Obs.Counter.incr m.Metrics.units;
      if dest_fresh then Obs.Counter.incr m.Metrics.new_place_units
      else Obs.Counter.incr m.Metrics.in_place_units;
      Obs.Counter.incr m.Metrics.pages_compacted ~by:(List.length orgs);
      Done largest_key
    end
  with
  | Stale_plan ->
    release_claim ();
    release_all ctx held;
    Stale
  | Lock_client.Deadlock_victim ->
    release_claim ();
    release_all ctx held;
    Gave_up

(* A pass-2 move is a single-org copying-switching unit whose MODIFY keeps
   the entry key and redirects the child. *)
let execute_move ctx ~base ~org ~dest =
  let held = ref [] in
  let claimed = ref false in
  let release_claim () =
    if !claimed then begin
      claimed := false;
      Alloc.release (Ctx.alloc ctx) dest
    end
  in
  try
    acquire ctx held (Resource.Page base) Mode.R;
    let entries = entries_for_leaves ctx ~base ~leaves:[ org ] in
    let entry = List.hd entries in
    acquire ctx held (Resource.Page org) Mode.RX;
    if not (Alloc.try_claim (Ctx.alloc ctx) dest) then raise Stale_plan;
    claimed := true;
    let op = Ctx.page ctx org in
    let records = Leaf.records op in
    let low_mark = Leaf.low_mark op in
    let prev_n = Leaf.prev op and next_n = Leaf.next op in
    List.iter
      (fun n ->
        match n with
        | Some pid when pid <> org -> acquire ctx held (Resource.Page pid) Mode.X
        | _ -> ())
      [ prev_n; next_n ];
    let unit_id = Rtable.next_unit_id ctx.Ctx.rtable in
    let begin_lsn =
      Ctx.log_reorg ctx
        (Record.Reorg_begin
           { unit_id; rtype = Record.Move; base_pages = [ base ]; leaf_pages = [ org ] })
    in
    Rtable.begin_unit ctx.Ctx.rtable ~unit_id ~begin_lsn;
    Olc.unit_begin (Ctx.olc ctx);
    claimed := false (* ownership passes to the unit: undo or the tree *);
    format_dest ctx dest ~low_mark ~prev:(opt_pid prev_n) ~next:(opt_pid next_n);
    let careful = plan_careful ctx ~blocked:org ~prereq:dest in
    let lsn = log_move ctx ~unit_id ~org ~dest ~careful records in
    let dp = Ctx.page ctx dest in
    List.iter (fun r -> assert (Leaf.insert dp r)) records;
    Leaf.clear (Ctx.page ctx org);
    Ctx.stamp ctx ~page:org lsn;
    Ctx.stamp ctx ~page:dest lsn;
    bump ctx org;
    bump ctx dest;
    Obs.Counter.incr ctx.Ctx.metrics.Metrics.records_moved ~by:(List.length records);
    (match
       Lock_client.try_acquire (Ctx.locks ctx) ~txn:ctx.Ctx.actor (Resource.Page base) Mode.X
     with
    | `Granted -> held := (Resource.Page base, Mode.X) :: !held
    | `Conflict _ -> begin
      try
        Lock_client.wait_queued (Ctx.locks ctx) ~txn:ctx.Ctx.actor (Resource.Page base) Mode.X;
        held := (Resource.Page base, Mode.X) :: !held
      with Lock_client.Deadlock_victim ->
        undo_moves ctx ~unit_id ~dest ~dest_fresh:true
          ~saved:[ (org, records, low_mark, prev_n, next_n) ];
        release_all ctx held;
        raise Lock_client.Deadlock_victim
    end);
    (match prev_n with Some p -> set_neighbor_next ctx p (Some dest) | None -> ());
    (match next_n with Some p -> set_neighbor_prev ctx p (Some dest) | None -> ());
    dealloc_org ctx ~org ~dest;
    log_modify ctx ~unit_id ~base
      ~edits:
        [
          Record.Update_entry
            {
              org_key = entry.Inode.key;
              org_child = org;
              new_key = entry.Inode.key;
              new_child = dest;
            };
        ];
    let largest_key =
      match records with
      | [] -> Rtable.lk ctx.Ctx.rtable
      | rs -> List.fold_left (fun a r -> max a r.Leaf.key) min_int rs
    in
    log_end ctx ~unit_id ~largest_key;
    release_all ctx held;
    let m = ctx.Ctx.metrics in
    Obs.Counter.incr m.Metrics.units;
    Obs.Counter.incr m.Metrics.move_units;
    Done largest_key
  with
  | Stale_plan ->
    release_claim ();
    release_all ctx held;
    Stale
  | Lock_client.Deadlock_victim ->
    release_claim ();
    release_all ctx held;
    Gave_up

(* ------------------------------------------------------------------ *)
(* Swap                                                                *)
(* ------------------------------------------------------------------ *)

let execute_swap ctx ~a_base ~a ~b_base ~b =
  let held = ref [] in
  try
    if a = b then raise Stale_plan;
    acquire ctx held (Resource.Page a_base) Mode.R;
    if b_base <> a_base then acquire ctx held (Resource.Page b_base) Mode.R;
    let ea = List.hd (entries_for_leaves ctx ~base:a_base ~leaves:[ a ]) in
    let eb = List.hd (entries_for_leaves ctx ~base:b_base ~leaves:[ b ]) in
    acquire ctx held (Resource.Page a) Mode.RX;
    acquire ctx held (Resource.Page b) Mode.RX;
    let pa = Ctx.page ctx a and pb = Ctx.page ctx b in
    let recs_a = Leaf.records pa and recs_b = Leaf.records pb in
    let low_a = Leaf.low_mark pa and low_b = Leaf.low_mark pb in
    let links_a = (Leaf.prev pa, Leaf.next pa) and links_b = (Leaf.prev pb, Leaf.next pb) in
    (* Translate pointers that reference the swapped pages themselves. *)
    let tr = function
      | Some p when p = a -> Some b
      | Some p when p = b -> Some a
      | x -> x
    in
    let neighbors =
      List.filter_map
        (fun n -> match n with Some p when p <> a && p <> b -> Some p | _ -> None)
        [ fst links_a; snd links_a; fst links_b; snd links_b ]
      |> List.sort_uniq compare
    in
    List.iter (fun n -> acquire ctx held (Resource.Page n) Mode.X) neighbors;
    let unit_id = Rtable.next_unit_id ctx.Ctx.rtable in
    let base_pages = if a_base = b_base then [ a_base ] else [ a_base; b_base ] in
    let begin_lsn =
      Ctx.log_reorg ctx
        (Record.Reorg_begin { unit_id; rtype = Record.Swap; base_pages; leaf_pages = [ a; b ] })
    in
    Rtable.begin_unit ctx.Ctx.rtable ~unit_id ~begin_lsn;
    Olc.unit_begin (Ctx.olc ctx);
    (* MOVE a->b must carry full contents; MOVE b->a may be keys-only under
       careful writing ("there is no way to avoid logging at least one of
       the full page contents"). *)
    let prev = Rtable.last_lsn ctx.Ctx.rtable in
    ignore
      (Ctx.log_reorg ctx
         (Record.Reorg_move
            {
              unit_id;
              org = a;
              dest = b;
              payload =
                Record.Full_records (List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) recs_a);
              dest_init = None;
              prev;
            }));
    let careful = plan_careful ctx ~blocked:b ~prereq:a in
    let m2 = log_move ctx ~unit_id ~org:b ~dest:a ~careful recs_b in
    (* Apply the content exchange. *)
    Leaf.clear pa;
    List.iter (fun r -> assert (Leaf.insert pa r)) recs_b;
    Leaf.clear pb;
    List.iter (fun r -> assert (Leaf.insert pb r)) recs_a;
    Ctx.stamp ctx ~page:a m2;
    Ctx.stamp ctx ~page:b m2;
    bump ctx a;
    bump ctx b;
    Obs.Counter.incr ctx.Ctx.metrics.Metrics.records_moved ~by:(List.length recs_a + List.length recs_b);
    (* Upgrade both bases. *)
    let upgrade base =
      match
        Lock_client.try_acquire (Ctx.locks ctx) ~txn:ctx.Ctx.actor (Resource.Page base) Mode.X
      with
      | `Granted -> held := (Resource.Page base, Mode.X) :: !held
      | `Conflict _ ->
        Lock_client.wait_queued (Ctx.locks ctx) ~txn:ctx.Ctx.actor (Resource.Page base) Mode.X;
        held := (Resource.Page base, Mode.X) :: !held
    in
    (try
       upgrade a_base;
       if b_base <> a_base then upgrade b_base
     with Lock_client.Deadlock_victim ->
       (* Undo the exchange (§5.2). *)
       Obs.Counter.incr ctx.Ctx.metrics.Metrics.units_undone;
       Ctx.emit ctx (Prot.Unit_undo { actor = ctx.Ctx.actor.Transact.Txn.id; unit_id });
       let p = Rtable.last_lsn ctx.Ctx.rtable in
       let lsn =
         Ctx.log_reorg ctx
           (Record.Reorg_move
              {
                unit_id;
                org = b;
                dest = a;
                payload =
                  Record.Full_records (List.map (fun r -> (r.Leaf.key, r.Leaf.payload)) recs_a);
                dest_init = None;
                prev = p;
              })
       in
       Leaf.clear pa;
       List.iter (fun r -> assert (Leaf.insert pa r)) recs_a;
       Leaf.clear pb;
       List.iter (fun r -> assert (Leaf.insert pb r)) recs_b;
       Ctx.stamp ctx ~page:a lsn;
       Ctx.stamp ctx ~page:b lsn;
       bump ctx a;
       bump ctx b;
       log_end ctx ~unit_id ~largest_key:(Rtable.lk ctx.Ctx.rtable);
       release_all ctx held;
       raise Lock_client.Deadlock_victim);
    (* Headers follow the contents. *)
    set_leaf_header ctx b ~low_mark:low_a
      ~prev:(opt_pid (tr (fst links_a)))
      ~next:(opt_pid (tr (snd links_a)));
    set_leaf_header ctx a ~low_mark:low_b
      ~prev:(opt_pid (tr (fst links_b)))
      ~next:(opt_pid (tr (snd links_b)));
    (* External neighbours re-point to the page that now holds the content
       they were adjacent to. *)
    (match fst links_a with
    | Some p when p <> a && p <> b -> set_neighbor_next ctx p (Some b)
    | _ -> ());
    (match snd links_a with
    | Some p when p <> a && p <> b -> set_neighbor_prev ctx p (Some b)
    | _ -> ());
    (match fst links_b with
    | Some p when p <> a && p <> b -> set_neighbor_next ctx p (Some a)
    | _ -> ());
    (match snd links_b with
    | Some p when p <> a && p <> b -> set_neighbor_prev ctx p (Some a)
    | _ -> ());
    (* MODIFY both parents: the key ranges keep their keys, the children
       exchange. *)
    let edit_a =
      Record.Update_entry
        { org_key = ea.Inode.key; org_child = a; new_key = ea.Inode.key; new_child = b }
    in
    let edit_b =
      Record.Update_entry
        { org_key = eb.Inode.key; org_child = b; new_key = eb.Inode.key; new_child = a }
    in
    if a_base = b_base then log_modify ctx ~unit_id ~base:a_base ~edits:[ edit_a; edit_b ]
    else begin
      log_modify ctx ~unit_id ~base:a_base ~edits:[ edit_a ];
      log_modify ctx ~unit_id ~base:b_base ~edits:[ edit_b ]
    end;
    let largest_key =
      List.fold_left (fun acc r -> max acc r.Leaf.key) (Rtable.lk ctx.Ctx.rtable) (recs_a @ recs_b)
    in
    log_end ctx ~unit_id ~largest_key;
    release_all ctx held;
    let m = ctx.Ctx.metrics in
    Obs.Counter.incr m.Metrics.units;
    Obs.Counter.incr m.Metrics.swap_units;
    Done largest_key
  with
  | Stale_plan ->
    release_all ctx held;
    Stale
  | Lock_client.Deadlock_victim ->
    release_all ctx held;
    Gave_up

(* ------------------------------------------------------------------ *)

let outcome_label = function Done _ -> "done" | Stale -> "stale" | Gave_up -> "gave-up"

let run_plan ctx = function
  | Compact { base; leaves; dest } -> execute_compact ctx ~base ~leaves ~dest
  | Swap { a_base; a; b_base; b } -> execute_swap ctx ~a_base ~a ~b_base ~b
  | Move { base; org; dest } -> execute_move ctx ~base ~org ~dest

(* One span per unit attempt, named by unit kind, closed with the outcome. *)
let execute_once ctx plan =
  match ctx.Ctx.tracer with
  | None -> run_plan ctx plan
  | Some tr ->
    let name, args =
      match plan with
      | Compact { base; leaves; _ } ->
        ("unit.compact", [ ("base", Obs.Trace.Int base); ("leaves", Obs.Trace.Int (List.length leaves)) ])
      | Swap { a; b; _ } -> ("unit.swap", [ ("a", Obs.Trace.Int a); ("b", Obs.Trace.Int b) ])
      | Move { org; dest; _ } -> ("unit.move", [ ("org", Obs.Trace.Int org); ("dest", Obs.Trace.Int dest) ])
    in
    let tid = Sched.Engine.current_fiber () in
    Obs.Trace.begin_span tr ~tid ~args ~cat:"reorg" name;
    (try
       let outcome = run_plan ctx plan in
       Obs.Trace.end_span tr ~tid ~args:[ ("outcome", Obs.Trace.Str (outcome_label outcome)) ] ();
       outcome
     with e ->
       Obs.Trace.end_span tr ~tid ~args:[ ("outcome", Obs.Trace.Str "exception") ] ();
       raise e)

let execute ctx plan =
  let limit = ctx.Ctx.config.Config.unit_retry_limit in
  let rec go attempt =
    match execute_once ctx plan with
    | Gave_up when attempt < limit ->
      Obs.Counter.incr ctx.Ctx.metrics.Metrics.unit_retries;
      Sched.Engine.sleep (1 + attempt);
      go (attempt + 1)
    | Done _ as outcome ->
      (match Ctx.health ctx with Some h -> Obs.Health.note_unit h | None -> ());
      (* Model the unit's page I/O; overlapping these sleeps is where
         parallel workers win. *)
      if ctx.Ctx.config.Config.io_pacing > 0 then
        Sched.Engine.sleep ctx.Ctx.config.Config.io_pacing;
      outcome
    | outcome -> outcome
  in
  go 0
