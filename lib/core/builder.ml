module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Inode = Btree.Inode
module Record = Wal.Record

type t = {
  ctx : Ctx.t;
  gen : int;
  per_node : int;
  mutable closed : (int * int) list; (* (low mark, pid), newest first *)
  mutable cur : int option;
  mutable fresh : int list; (* pages not yet force-written *)
  mutable built : int;
}

let per_node_of ctx =
  let capacity = (Ctx.page_size ctx - Btree.Layout.body_start) / Btree.Layout.entry_size in
  max 2 (int_of_float (ctx.Ctx.config.Config.internal_fill *. float_of_int capacity))

let create ctx ~gen =
  { ctx; gen; per_node = per_node_of ctx; closed = []; cur = None; fresh = []; built = 0 }

let restore ctx ~gen ~closed =
  let t = create ctx ~gen in
  t.closed <- List.rev closed;
  t

let gen t = t.gen

let page t pid = Ctx.page t.ctx pid

let seal t =
  match t.cur with
  | None -> ()
  | Some pid ->
    let low = Inode.low_mark (page t pid) in
    t.closed <- (low, pid) :: t.closed;
    t.cur <- None

let feed t ~key ~child =
  let pid =
    match t.cur with
    | Some pid when Inode.nentries (page t pid) < t.per_node -> pid
    | maybe_full ->
      (match maybe_full with Some _ -> seal t | None -> ());
      let pid = Alloc.alloc (Ctx.alloc t.ctx) Alloc.Internal in
      let p = page t pid in
      Inode.init p ~level:1 ~low_mark:key;
      Inode.set_generation p t.gen;
      Buffer_pool.mark_dirty (Ctx.pool t.ctx) pid;
      t.cur <- Some pid;
      t.fresh <- pid :: t.fresh;
      t.built <- t.built + 1;
      pid
  in
  let p = page t pid in
  assert (Inode.insert p { Inode.key; child });
  Buffer_pool.mark_dirty (Ctx.pool t.ctx) pid

let flush_fresh t =
  List.iter (fun pid -> Buffer_pool.flush_page (Ctx.pool t.ctx) pid) (List.rev t.fresh);
  t.fresh <- []

let stable_point t ~next_key =
  seal t;
  flush_fresh t;
  let lsn =
    Wal.Log.append (Ctx.log t.ctx) (Record.Stable_key { key = next_key; new_root = 0 })
  in
  Wal.Log.force (Ctx.log t.ctx) lsn;
  Obs.Counter.incr t.ctx.Ctx.metrics.Metrics.stable_points

let closed_pages t = List.rev t.closed

let pages_built t = t.built

let finalize t =
  seal t;
  let entries = List.rev t.closed in
  let root =
    match entries with
    | [] -> invalid_arg "Builder.finalize: nothing was built"
    | [ (_, only) ] -> only
    | _ ->
      let pages = ref [] in
      let root =
        Btree.Bulk.build_internal_levels ~journal:(Ctx.journal t.ctx) ~alloc:(Ctx.alloc t.ctx)
          ~fill:t.ctx.Ctx.config.Config.internal_fill ~start_level:2 ~gen:t.gen
          ~on_page:(fun pid -> pages := pid :: !pages)
          entries
      in
      t.built <- t.built + List.length !pages;
      t.fresh <- !pages @ t.fresh;
      root
  in
  flush_fresh t;
  root
