(** The side file (§7.2): an append-only system table of base-page changes
    made behind the pass-3 scan cursor.

    Updaters append through {!append}, which takes an IX lock on the table
    and an X lock on the entry key, and logs a [Side_file] record under the
    updater's transaction (so aborting the updater removes the entry via its
    CLR).  During the switch the reorganizer holds X on the table; an
    updater's IX then falls back to an unconditional instant-duration
    request, and [append] reports [`Redirect] — the caller must re-apply its
    change to the {e new} tree itself (§7.4).

    The reorganizer drains entries with {!take}, logging [Side_applied] as
    each is applied to the new tree. *)

type t

val create : journal:Transact.Journal.t -> locks:Lockmgr.Lock_mgr.t -> t

val set_health : t -> Obs.Health.t option -> unit
(** Report the backlog size to the tree-health tracker after every append,
    take, undo-remove, and recovery-restore. *)

val set_prot : t -> (Prot.event -> unit) option -> unit
(** Protocol-event sink: each {!append} emits [Side_accept] or
    [Side_redirect] with the affected key, so the model checker sees the
    admission decision the switch protocol hinges on. *)

val append : t -> txn:Transact.Txn.t -> Wal.Record.side_op -> [ `Accepted | `Redirect ]
(** May raise {!Transact.Lock_client.Deadlock_victim}. *)

val take : t -> Wal.Record.side_op option
(** Pop the oldest entry and log [Side_applied].  The caller applies it to
    the new tree before calling {!take} again. *)

val take_batch : t -> max:int -> Wal.Record.side_op list
(** Pop up to [max] oldest entries (oldest first), logging [Side_applied]
    for each — the batched catch-up path: one scheduler yield can cover a
    whole batch instead of interleaving after every entry. *)

val remove : t -> Wal.Record.side_op -> unit
(** Logical undo of an append (wired into the transaction manager). *)

val size : t -> int
val is_empty : t -> bool

val restore_entries : t -> Wal.Record.side_op list -> unit
(** Recovery: reload surviving entries (oldest first). *)

val entries : t -> Wal.Record.side_op list
