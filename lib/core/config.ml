type heuristic = Paper_heuristic | First_free | No_new_place

type t = {
  f2 : float;
  internal_fill : float;
  careful_writing : bool;
  swap_pass : bool;
  shrink_pass : bool;
  heuristic : heuristic;
  stable_every : int;
  scan_pacing : int;
  switch_wait : int;
  unit_retry_limit : int;
  io_pacing : int;
  lambda_switch : bool;
  unit_pages : int;
  catchup_batch : int;
  olc : bool;
  olc_max_retries : int;
}

let default =
  {
    f2 = 0.9;
    internal_fill = 0.9;
    careful_writing = true;
    swap_pass = true;
    shrink_pass = true;
    heuristic = Paper_heuristic;
    stable_every = 5;
    scan_pacing = 1;
    switch_wait = 200;
    unit_retry_limit = 10;
    io_pacing = 0;
    lambda_switch = false;
    unit_pages = 1;
    catchup_batch = 16;
    olc = false;
    olc_max_retries = 3;
  }

let heuristic_name = function
  | Paper_heuristic -> "paper"
  | First_free -> "first-free"
  | No_new_place -> "no-new-place"

let pp ppf t =
  Format.fprintf ppf
    "f2=%.2f careful=%b swap=%b shrink=%b heuristic=%s stable-every=%d"
    t.f2 t.careful_writing t.swap_pass t.shrink_pass (heuristic_name t.heuristic) t.stable_every
