(** Reorganization configuration. *)

type heuristic =
  | Paper_heuristic
      (** §6.1: first empty page [e] with [L < e < C] — after the largest
          finished page, before the page being compacted. *)
  | First_free  (** naive baseline: smallest free page anywhere in the zone *)
  | No_new_place  (** always compact in place (forces pass 2 to swap) *)

type t = {
  f2 : float;  (** target leaf fill factor after reorganization *)
  internal_fill : float;  (** fill factor for rebuilt internal pages (pass 3) *)
  careful_writing : bool;
      (** when true, MOVE records log keys only and write-order dependencies
          + deferred deallocation protect the data (§5) *)
  swap_pass : bool;  (** run pass 2 (it is optional in the paper) *)
  shrink_pass : bool;  (** run pass 3 *)
  heuristic : heuristic;
  stable_every : int;  (** pass 3: force-write a stable point every N base pages *)
  scan_pacing : int;
      (** ticks the pass-3 scan pauses per base page — models the I/O cost of
          reading a base page and its children; larger values mean more
          concurrent update traffic lands behind the cursor *)
  switch_wait : int;
      (** ticks the switch waits for the old tree to drain before forcing
          old-tree transactions to abort (§7.4's time limit) *)
  unit_retry_limit : int;  (** give-up/retry attempts per reorganization unit *)
  io_pacing : int;
      (** ticks slept per reorganization unit, modelling the unit's page
          I/O; with 0 (default) units are CPU-bound in simulated time.
          Non-zero pacing is what makes parallel workers overlap usefully. *)
  lambda_switch : bool;
      (** §7.4's λ-tree variant: the switch releases the side file
          immediately after flipping the root (an instant-duration X), never
          forces old-tree transactions to abort, and defers the deallocation
          of the old upper levels until they drain on their own.  Post-switch
          base-page updates go straight into the new tree; searches stay
          correct because leaf-level side pointers are chased B-link-style. *)
  unit_pages : int;
      (** §6: how many new pages one lock envelope constructs before the base
          page's R lock is released.  1 is the paper's choice ("we choose to
          construct one new leaf page at a time"); larger values hold locks
          longer and block more user transactions — the trade-off the paper
          calls out. *)
  catchup_batch : int;
      (** pass 3: side-file entries applied per scheduler yield during
          catch-up.  Larger batches drain the backlog with less scheduling
          overhead but give concurrent updaters fewer chances to slip new
          entries in mid-drain (they only matter before the switch holds X
          on the side file). *)
  olc : bool;
      (** optimistic lock coupling for the read path: point lookups and
          range scans descend lock-free, validating per-node version
          counters ({!Btree.Olc}), and fall back to the paper's R/RX/RS
          locked protocol on conflict or while a reorganization unit is
          active.  Writers and the reorganizer keep Table-1 semantics
          either way.  Default [false]. *)
  olc_max_retries : int;
      (** bounded optimistic retries per operation before falling back to
          the locked descent (default 3). *)
}

val default : t

val pp : Format.formatter -> t -> unit
