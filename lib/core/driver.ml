module Tree = Btree.Tree

type report = {
  pass1_units : int;
  swaps : int;
  moves : int;
  switched : bool;
  height_before : int;
  height_after : int;
  leaves_before : int;
  leaves_after : int;
  fill_before : float;
  fill_after : float;
  out_of_order_after_pass1 : int;
}

let empty_report =
  {
    pass1_units = 0;
    swaps = 0;
    moves = 0;
    switched = false;
    height_before = 0;
    height_after = 0;
    leaves_before = 0;
    leaves_after = 0;
    fill_before = 0.0;
    fill_after = 0.0;
    out_of_order_after_pass1 = 0;
  }

let run ?(pass1_workers = 1) ctx =
  let tree = Ctx.tree ctx in
  let before = Tree.stats tree in
  let pass1_units =
    Ctx.span ctx "pass1"
      ~args:[ ("workers", Obs.Trace.Int pass1_workers) ]
      (fun () ->
        if pass1_workers > 1 then Pass1.run_parallel ctx ~workers:pass1_workers
        else Pass1.run ctx)
  in
  Ctx.checkpoint ctx;
  let out_of_order = Pass2.out_of_order ctx in
  let swaps, moves =
    Ctx.span ctx "pass2" (fun () ->
        if ctx.Ctx.config.Config.swap_pass then Pass2.run ctx else (0, 0))
  in
  Ctx.checkpoint ctx;
  let switched =
    Ctx.span ctx "pass3" (fun () ->
        if ctx.Ctx.config.Config.shrink_pass then Pass3.run ctx () else false)
  in
  Ctx.checkpoint ctx;
  let after = Tree.stats tree in
  {
    pass1_units;
    swaps;
    moves;
    switched;
    height_before = before.Tree.height;
    height_after = after.Tree.height;
    leaves_before = before.Tree.leaf_count;
    leaves_after = after.Tree.leaf_count;
    fill_before = before.Tree.avg_leaf_fill;
    fill_after = after.Tree.avg_leaf_fill;
    out_of_order_after_pass1 = out_of_order;
  }

let reorganize ?registry ?tracer ~access ~config () =
  let ctx = Ctx.make ?registry ?tracer ~access ~config () in
  (ctx, ref empty_report)

let pp_report ppf r =
  Format.fprintf ppf
    "units=%d swaps=%d moves=%d switched=%b height %d->%d leaves %d->%d fill %.2f->%.2f \
     out-of-order-after-pass1=%d"
    r.pass1_units r.swaps r.moves r.switched r.height_before r.height_after r.leaves_before
    r.leaves_after r.fill_before r.fill_after r.out_of_order_after_pass1
