(** Restart: ARIES-style analysis / redo / undo, plus the paper's
    {e forward recovery} (§5.1) for reorganization work.

    After a crash the ordinary discipline applies to user transactions —
    redo everything stable, roll back losers — but the reorganizer's work is
    {e never} rolled back:

    - an incomplete reorganization {e unit} is {b finished}: the unit's BEGIN
      record says which pages and which kind of unit; the MOVE/MODIFY chain
      (plus careful writing, which guarantees an unflushed source page still
      holds its records) determines what remains, and the remaining steps are
      re-executed and logged through to END;
    - an interrupted pass 3 resumes from the most recent stable key: the
      durable new-generation level-1 pages below the stable key are adopted,
      later ones deallocated, surviving side-file entries behind the stable
      key reloaded, and the scan continues — not restarted (§7.3);
    - a completed switch is finished idempotently (old upper levels swept by
      generation, reorganization bit cleared).

    {!restart} performs all of the above and reports what a relaunched
    reorganization process should do next. *)

type resume =
  | No_reorg  (** no reorganization was in flight *)
  | Resume_passes of { lk : int }
      (** leaf passes were running; restart pass 1 from LK *)
  | Resume_pass3 of { stable_key : int; closed : (int * int) list }
      (** pass 3 was scanning; resume with {!Pass3.run} [?resume] *)
  | Finish_switch of { new_root : int }
      (** the new tree was fully built (final stable point logged) but the
          switch had not committed; rebuild catch-up state and switch *)

type outcome = {
  resume : resume;
  finished_unit : int option;  (** unit completed by forward recovery *)
  units_finished : int;  (** BEGIN-without-END units finished forward *)
  losers_undone : int;
  redo_applied : int;  (** log records whose redo changed a page *)
  torn_pages : int;  (** torn pages detected (and repaired by redo) *)
  side_entries : Wal.Record.side_op list;  (** surviving side file, oldest first *)
}

val restart :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?shard:int * int ->
  ?prot:(Prot.event -> unit) ->
  access:Btree.Access.t ->
  config:Config.t ->
  unit ->
  Ctx.t * outcome
(** Run full restart over the (crashed) components behind [access]; each
    shard of a sharded assembly restarts independently with its own
    [shard:(i, n)] (threaded to {!Ctx.make} for the unit-id lattice; the
    txn-id bound derived from the log is rounded onto the shard's lattice
    by {!Transact.Txn_mgr.ensure_next_id}).  Returns
    a fresh reorganizer context whose system table reflects the recovered
    state (LK, CK), plus the outcome.  Runs with the buffer pool in
    read-repair mode, so checksum-detected torn pages are rebuilt by redo
    instead of raising.  When [registry] is given, bumps the
    [recovery.restarts], [recovery.units_finished] and [recovery.torn_pages]
    counters.  Ends with a flush + checkpoint, so a subsequent crash recovers
    from here. *)

val resume_reorganization : Ctx.t -> outcome -> Driver.report option
(** Relaunch the reorganization where {!restart} said to (must run inside a
    scheduler process).  Returns [None] when there was nothing to resume. *)
