module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Record = Wal.Record
module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr
module Lock_client = Transact.Lock_client
module Journal = Transact.Journal
module Engine = Sched.Engine
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Meta = Btree.Meta
module Tree = Btree.Tree
module Access = Btree.Access
module Olc = Btree.Olc

let key_of = function
  | Record.Side_insert { key; _ } | Record.Side_delete { key; _ } -> key

(* Test-only mutation hook: while [true], the scan does NOT advance CK as it
   releases each base page's S lock — breaking the §7.1 Get_Current contract
   the switch model guards.  The model-conformance self-test flips it to
   prove the checker catches a broken switch protocol.  The tree itself stays
   correct (a stale CK only means updaters are never "behind", so nothing
   enters the side file). *)
let test_skip_ck_advance = ref false

(* Apply one side-file entry to the new tree (used for catch-up and for
   post-switch redirected updaters). *)
let apply_op ctx new_tree ?txn op =
  (match op with
  | Record.Side_insert { key; child } -> Tree.insert_base_entry new_tree ?txn ~key ~child ()
  | Record.Side_delete { key; _ } -> Tree.delete_base_entry new_tree ?txn key);
  Obs.Counter.incr ctx.Ctx.metrics.Metrics.side_entries

(* Walk the old upper levels and free every internal page. *)
let discard_old_internals ctx ~old_root =
  let rec free pid =
    let p = Ctx.page ctx pid in
    if Inode.is_internal p then begin
      List.iter (fun e -> free e.Inode.child) (Inode.entries p);
      Journal.physical (Ctx.journal ctx) ~page:pid ~off:0 ~len:1 (fun q ->
          Pager.Page.set_kind q Pager.Page.kind_free);
      (* An optimistic reader still descending the discarded upper levels
         must notice its path died (DESIGN.md §11). *)
      Olc.bump (Ctx.olc ctx) pid;
      Alloc.release (Ctx.alloc ctx) pid
    end
  in
  free old_root

exception Retry

(* S-lock the base page with this low mark, revalidating: base pages can be
   split or freed by updaters between finding and locking them. *)
let rec lock_base ctx ~low =
  try lock_base_once ctx ~low with Retry -> lock_base ctx ~low

and lock_base_once ctx ~low =
  let tree = Ctx.tree ctx in
  let candidate =
    if low = min_int then Tree.first_base tree
    else
      match Tree.parent_of_leaf tree low with
      | Some b when Inode.low_mark (Ctx.page ctx b) = low -> Some b
      | _ -> Tree.next_base tree (low - 1)
  in
  match candidate with
  | None -> None
  | Some base ->
    (try Ctx.acquire ctx (Resource.Page base) Mode.S
     with Lock_client.Deadlock_victim -> begin
       Engine.sleep 2;
       raise Retry
     end);
    let p = Ctx.page ctx base in
    if Inode.is_internal p && Inode.level p = 1 && Inode.low_mark p >= low then Some base
    else begin
      Ctx.release ctx (Resource.Page base) Mode.S;
      Engine.yield ();
      lock_base ctx ~low
    end

type resume = {
  r_stable_key : int;
  r_closed : (int * int) list;
  r_side : Wal.Record.side_op list;
}

type finish = { f_new_root : int; f_side : Wal.Record.side_op list }

let run ctx ?resume ?finish () =
  let tree = Ctx.tree ctx in
  if Tree.height tree <= 1 && resume = None && finish = None then false
  else begin
    let access = ctx.Ctx.access in
    let journal = Ctx.journal ctx in
    let locks = Ctx.locks ctx in
    let old_name = Tree.tree_name tree in
    let old_root = Tree.root tree in
    let gen = Tree.generation tree + 1 in
    let side = Side_file.create ~journal ~locks in
    Side_file.set_health side (Access.health access);
    Side_file.set_prot side ctx.Ctx.prot;
    let me = ctx.Ctx.actor.Transact.Txn.id in
    (match (resume, finish) with
    | Some r, _ -> Side_file.restore_entries side r.r_side
    | _, Some f -> Side_file.restore_entries side f.f_side
    | None, None -> ());
    Access.set_side_undo access (Side_file.remove side);
    let builder =
      match resume with
      | None -> Builder.create ctx ~gen
      | Some { r_closed; _ } -> Builder.restore ctx ~gen ~closed:r_closed
    in
    (* The new tree gets a scratch meta page so ordinary Tree operations can
       run against it before the switch. *)
    let scratch_meta = Alloc.alloc (Ctx.alloc ctx) Alloc.Internal in
    let new_tree =
      ref None (* becomes a Tree.t once the new root exists *)
    in
    (* λ-switch mode: once the root has flipped, base-page changes go
       straight into the new tree — no side-file blocking at all (§7.4's
       "updates could be made in the new tree's base pages without affecting
       search correctness in the old tree"). *)
    let post_switch = ref false in
    (* §7.2 updater logic, installed behind the reorganization bit. *)
    Access.set_on_base_update access (fun txn op ->
        if !post_switch then begin
          (* λ-mode post-switch: the update goes straight to the new tree —
             the same redirect decision the side file reports when it turns
             an updater away, so it is announced under the same event. *)
          Ctx.emit ctx (Prot.Side_redirect { key = key_of op });
          apply_op ctx (Ctx.tree ctx) ~txn op
        end
        else begin
          let behind =
            match Rtable.ck ctx.Ctx.rtable with Some c -> key_of op < c | None -> false
          in
          if behind then
            match Side_file.append side ~txn op with
            | `Accepted -> ()
            | `Redirect ->
              (* The switch completed while this updater waited: its base-page
                 change went to the old tree and must be redone on the new
                 tree, which is the main tree by now (§7.4). *)
              ignore !new_tree;
              apply_op ctx (Ctx.tree ctx) ~txn op
        end);
    Tree.set_reorg_bit tree true;
    (* ---- scan the base pages, building the new upper levels ---- *)
    let resume_key =
      match (resume, finish) with
      | Some r, _ -> r.r_stable_key
      | _, Some _ -> max_int (* scan already complete *)
      | None, None -> min_int
    in
    (* Pin the WAL-truncation floor for the whole pass-3 span: the side-file
       records, the [Stable_key] and the [Switch] must stay replayable until
       cleanup, even though no transaction or dirty page pins them.  On
       resume the restart path has already lowered the floor to the oldest
       surviving pre-crash record; [lower_floor] keeps that minimum. *)
    Rtable.lower_floor ctx.Ctx.rtable (Wal.Log.head_lsn (Ctx.log ctx) + 1);
    Rtable.set_ck ctx.Ctx.rtable (Some resume_key);
    Ctx.emit ctx
      (Prot.Pass3_start
         {
           actor = me;
           mode =
             (match (resume, finish) with
             | Some _, _ -> Prot.Resume
             | _, Some _ -> Prot.Finish
             | None, None -> Prot.Fresh);
           ck = resume_key;
           lambda = ctx.Ctx.config.Config.lambda_switch;
         });
    let scanned = ref 0 in
    let rec scan low =
      match lock_base ctx ~low with
      | None -> ()
      | Some base ->
        let p = Ctx.page ctx base in
        let entries = Inode.entries p in
        List.iter (fun e -> Builder.feed builder ~key:e.Inode.key ~child:e.Inode.child) entries;
        incr scanned;
        Obs.Counter.incr ctx.Ctx.metrics.Metrics.base_pages_scanned;
        let this_low = Inode.low_mark p in
        let next = Tree.next_base (Ctx.tree ctx) this_low in
        let next_key =
          match next with Some nb -> Inode.low_mark (Ctx.page ctx nb) | None -> max_int
        in
        (* Get_Current advances before the S lock is given up (§7.1). *)
        let ck_before = Option.value (Rtable.ck ctx.Ctx.rtable) ~default:min_int in
        if not !test_skip_ck_advance then Rtable.set_ck ctx.Ctx.rtable (Some next_key);
        let ck_after = Option.value (Rtable.ck ctx.Ctx.rtable) ~default:min_int in
        Ctx.emit ctx (Prot.Scan_base { actor = me; base; ck_before; ck_after });
        Ctx.release ctx (Resource.Page base) Mode.S;
        if !scanned mod ctx.Ctx.config.Config.stable_every = 0 && next_key <> max_int then
          Builder.stable_point builder ~next_key;
        let pacing = ctx.Ctx.config.Config.scan_pacing in
        if pacing > 0 then Engine.sleep pacing else Engine.yield ();
        if next_key <> max_int then scan next_key
    in
    if finish = None then
      Ctx.span ctx "pass3.scan" (fun () -> scan resume_key);
    Rtable.set_ck ctx.Ctx.rtable (Some max_int);
    Ctx.emit ctx (Prot.Scan_done { actor = me });
    (* ---- finalize the new upper levels ---- *)
    let new_root =
      match finish with
      | Some f -> f.f_new_root
      | None ->
        let new_root = Builder.finalize builder in
        let lsn =
          Wal.Log.append (Ctx.log ctx) (Record.Stable_key { key = max_int; new_root })
        in
        Wal.Log.force (Ctx.log ctx) lsn;
        new_root
    in
    Journal.physical journal ~page:scratch_meta ~off:0 ~len:Btree.Layout.body_start (fun p ->
        Meta.init p ~root:new_root ~tree_name:(old_name + 1);
        Meta.set_generation p gen);
    Olc.bump (Ctx.olc ctx) scratch_meta;
    (* The scratch tree shares the file's version table: page ids are
       file-global, and after the switch optimistic readers descend the
       structure the builder just wrote. *)
    let nt =
      Tree.attach ~olc:(Tree.olc tree) ~journal ~alloc:(Ctx.alloc ctx) ~meta_pid:scratch_meta ()
    in
    new_tree := Some nt;
    (* ---- catch-up: apply the side file to the new tree, one batch per
       scheduler yield (draining entry-by-entry made every entry a full
       scheduling round trip) ---- *)
    let batch_size = max 1 ctx.Ctx.config.Config.catchup_batch in
    let rec catch_up () =
      match Side_file.take_batch side ~max:batch_size with
      | [] -> ()
      | ops ->
        List.iter (fun op -> apply_op ctx nt op) ops;
        Obs.Counter.incr ctx.Ctx.metrics.Metrics.catchup_batches;
        Ctx.emit ctx (Prot.Catchup { actor = me; applied = List.length ops });
        Engine.yield ();
        catch_up ()
    in
    catch_up ();
    (* ---- switch (§7.4) ---- *)
    let rec acquire_side_x () =
      try Ctx.acquire ctx Resource.Side_file Mode.X
      with Lock_client.Deadlock_victim ->
        Engine.sleep 2;
        acquire_side_x ()
    in
    Ctx.span ctx "pass3.switch"
      ~args:[ ("old_root", Obs.Trace.Int old_root); ("new_root", Obs.Trace.Int (Tree.root nt)) ]
      (fun () ->
        acquire_side_x ();
        Ctx.emit ctx (Prot.Side_locked { actor = me });
        (* Final catch-up: only the entries appended while we waited. *)
        catch_up ();
        let backlog = Side_file.size side in
        let switch_lsn =
          Ctx.log_reorg ctx
            (Record.Switch
               { old_root; new_root = Tree.root nt; old_name; new_name = old_name + 1 })
        in
        Ctx.emit ctx
          (Prot.Switch_logged
             {
               actor = me;
               old_root;
               new_root = Tree.root nt;
               old_name;
               new_name = old_name + 1;
               backlog;
               lsn = switch_lsn;
             });
        Journal.physical journal ~page:(Tree.meta_pid tree) ~off:0
          ~len:Btree.Layout.body_start (fun p ->
            Meta.set_root p (Tree.root nt);
            Meta.set_tree_name p (old_name + 1);
            Meta.set_generation p gen);
        Olc.bump (Ctx.olc ctx) (Tree.meta_pid tree);
        Wal.Log.force_all (Ctx.log ctx));
    (match Access.health access with Some h -> Obs.Health.note_switch h | None -> ());
    let cleanup () =
      discard_old_internals ctx ~old_root;
      Journal.physical journal ~page:scratch_meta ~off:0 ~len:1 (fun p ->
          Pager.Page.set_kind p Pager.Page.kind_free);
      Olc.bump (Ctx.olc ctx) scratch_meta;
      Alloc.release (Ctx.alloc ctx) scratch_meta;
      Tree.set_reorg_bit tree false;
      Access.clear_on_base_update access;
      Rtable.set_ck ctx.Ctx.rtable None;
      Rtable.clear_floor ctx.Ctx.rtable;
      Ctx.release ctx (Resource.Tree old_name) Mode.X;
      Wal.Log.force_all (Ctx.log ctx);
      Ctx.emit ctx (Prot.Switch_cleanup { actor = me })
    in
    if ctx.Ctx.config.Config.lambda_switch then begin
      (* λ-tree variant: the side file is held only for an instant — new
         base-page updates flow into the new tree directly, nobody is
         forced to abort, and the old upper levels are reclaimed in the
         background once the last old-tree transaction leaves. *)
      post_switch := true;
      Rtable.set_ck ctx.Ctx.rtable None;
      Ctx.release ctx Resource.Side_file Mode.X;
      Engine.spawn_child (fun () ->
          let rec drain () =
            match
              Lock_mgr.try_acquire locks ~owner:ctx.Ctx.actor.Transact.Txn.id
                (Resource.Tree old_name) Mode.X
            with
            | `Granted -> ()
            | `Conflict _ ->
              Engine.sleep 3;
              drain ()
          in
          drain ();
          cleanup ());
      true
    end
    else begin
      (* Wait for old-tree transactions to finish; after the time limit,
         force the stragglers to abort. *)
      let started = Engine.current_time () in
      let rec drain () =
        match Lock_mgr.try_acquire locks ~owner:ctx.Ctx.actor.Transact.Txn.id
                (Resource.Tree old_name) Mode.X
        with
        | `Granted -> ()
        | `Conflict blockers ->
          if Engine.current_time () - started > ctx.Ctx.config.Config.switch_wait then
            List.iter
              (fun (owner, _) ->
                if Lock_mgr.cancel_wait locks ~owner then begin
                  Obs.Counter.incr ctx.Ctx.metrics.Metrics.forced_aborts;
                  Ctx.emit ctx (Prot.Forced_abort { actor = me; owner; lambda = false })
                end)
              blockers;
          Engine.sleep 3;
          drain ()
      in
      drain ();
      (* Old-tree users are gone: reclaim the old upper levels. *)
      cleanup ();
      Ctx.release ctx Resource.Side_file Mode.X;
      true
    end
  end
