(** Scheduled fault injection for the storage seam.

    A {!t} is a fault {e controller} shared by every component that sits on
    the I/O path: the {!Backend.Faulty} wrapper consults it on each page
    write, and [Wal.Log.force] consults it on each log force.  Arming a
    {!plan} schedules a single simulated machine crash at a precise I/O
    boundary; once the plan trips, the controller is {e dead} and every
    subsequent I/O raises {!Crash} until the simulated reboot
    ([Db.crash_now] calls {!kill} then {!revive}).  This makes a crash one
    authoritative event observed identically by pager, log, and recovery,
    instead of three separately-maintained fictions.

    Controllers are deterministic: the torn-tail prefix length is drawn from
    a {!Util.Rng} seeded by the plan, so a (seed, crash point) pair replays
    byte-identically. *)

exception Crash
(** Raised at the I/O boundary where the armed plan trips, and by every I/O
    attempted after the machine has died. *)

type plan = {
  crash_after_writes : int option;
      (** Die when the [n]th page write (counted from {!arm}) is issued. *)
  torn_write : bool;
      (** If dying on a page write, apply only the atomic prefix (kind,
          checksum) and leave the old LSN and body — a torn sector write. *)
  crash_after_forces : int option;
      (** Die when the [n]th advancing log force (counted from {!arm}) is
          issued. *)
  torn_tail : bool;
      (** If dying on a log force, let only a random prefix of that force's
          records reach stable storage — a torn WAL tail.  Sound because the
          caller of the torn force never returns, so nothing covered by it
          was ever acknowledged. *)
  seed : int;  (** Seeds the rng used for torn-prefix lengths. *)
}

val no_faults : plan
(** All fields off; arming it never trips. *)

type t

val create : unit -> t

val arm : t -> plan -> unit
(** Install a plan and reset the per-plan write/force counters.  Cumulative
    statistics ({!crashes}, {!torn_writes}, {!torn_tails}) are preserved. *)

val disarm : t -> unit
val armed : t -> bool

val crashed : t -> bool
(** The machine is dead: a plan tripped, or {!kill} was called. *)

val kill : t -> unit
(** Declare the machine dead now (the [Db.crash_now] entry point).  Counts a
    crash unless already dead. *)

val revive : t -> unit
(** Simulated reboot: clear the dead flag and disarm any plan. *)

val check : t -> unit
(** Raise {!Crash} if dead.  I/O wrappers call this before touching the
    backend, and again after applying a write so the boundary that killed
    the machine itself raises. *)

val on_write : t -> [ `Full | `Torn ]
(** Account one page write.  Raises {!Crash} if already dead.  If this write
    trips the plan the controller becomes dead and the result says how much
    of the write the backend should apply; the wrapper applies it and then
    {!check} raises. *)

val on_force : t -> records:int -> int
(** Account one advancing log force covering [records] pending records.
    Returns how many of them become stable (= [records] unless this force
    trips a torn-tail plan).  Raises {!Crash} if already dead. *)

val crashes : t -> int
val torn_writes : t -> int
val torn_tails : t -> int

val register_obs : t -> Obs.Registry.t -> unit
(** Publish [fault.crashes], [fault.torn_writes], [fault.torn_tails] as
    gauges reading this controller's cumulative counters. *)
