(** Page allocator with disk zones.

    The paper assumes "the leaf pages and internal pages are in a different
    part of the disk", and its Find-Free-Space heuristic reasons about empty
    pages {e by position} within the leaf area.  The allocator therefore
    divides the disk into three zones:

    {v
      [0, meta)            meta pages (the root-location page lives here)
      [meta, meta+leaf)    leaf zone
      [meta+leaf, ...)     internal zone (grows on demand)
    v}

    A page is free iff its on-{e pool} kind byte is {!Page.kind_free}; the free
    sets are rebuilt from a disk scan at recovery ({!rebuild}), so allocation
    state needs no separate persistence.  Freeing a page rewrites its kind
    byte through the buffer pool (the caller is responsible for logging that
    mutation if it must be redoable). *)

type t

type zone = Leaf | Internal

val create : pool:Buffer_pool.t -> meta_pages:int -> leaf_pages:int -> t
(** Sizes the zones and grows the disk to cover meta + leaf zones.  All pages
    except the meta pages start free. *)

val leaf_zone : t -> int * int
(** [lo, hi) bounds of the leaf zone. *)

val set_note : t -> ([ `Alloc | `Free ] -> int -> unit) option -> unit
(** Observe allocator churn: called once per successful allocation (any
    path) and once per return to a free set.  The tree-health tracker uses
    it to count churn and re-examine the affected pages. *)

val alloc : t -> zone -> int
(** Smallest free page id in the zone.  The internal zone grows on demand; an
    exhausted leaf zone falls back to the internal zone (counted in
    {!leaf_overflows}). The page's kind byte is left untouched — the caller
    formats it (and thereby makes it non-free). *)

val alloc_specific : t -> int -> unit
(** Claim a specific free page (used by copying-switching, which chose its
    target itself).  Raises [Invalid_argument] if the page is not free. *)

val try_claim : t -> int -> bool
(** [alloc_specific] that reports failure instead of raising: claims the
    page and returns [true] iff it is still free.  Lets a reorganization
    unit atomically re-validate its chosen destination after lock waits
    (a concurrent updater may have allocated it meanwhile). *)

val free : t -> int -> unit
(** Mark the page free: zeroes its kind byte through the pool and returns it
    to its zone's free set. *)

val release : t -> int -> unit
(** Return a page to the free set {e without} touching its bytes — for
    callers that already wrote (and logged) the free kind byte themselves. *)

val free_when_durable : t -> page:int -> after:int -> unit
(** Careful-writing deallocation: free [page] once [after] is durable
    (immediately if it already is). *)

val defer_release : t -> page:int -> until_durable:int -> unit
(** Like {!free_when_durable} but the caller has already written (and
    logged) the free kind byte; only the free-set insertion is deferred.
    The pending page is queryable with {!pending_release}. *)

val pending_release : t -> int -> int option
(** If [page] is awaiting release, the page whose durability it waits on.
    Flushing that page (see {!Buffer_pool.flush_page}) completes the
    release. *)

val is_free : t -> int -> bool

val free_in_range : t -> lo:int -> hi:int -> int option
(** Smallest free page id in [[lo, hi)] — the primitive behind the paper's
    Find-Free-Space heuristic. *)

val free_count : t -> zone -> int
val leaf_overflows : t -> int

val rebuild : t -> unit
(** Recompute the free sets by scanning page kind bytes on disk (recovery). *)
