type stats = {
  reads : int;
  writes : int;
  seq_reads : int;
  rand_reads : int;
  seq_writes : int;
  rand_writes : int;
}

type t = {
  page_size : int;
  mutable pages : Page.t array;
  mutable used : int;
  mutable reads : int;
  mutable writes : int;
  mutable seq_reads : int;
  mutable rand_reads : int;
  mutable seq_writes : int;
  mutable rand_writes : int;
  mutable last_read_pid : int;
  mutable last_write_pid : int;
}

let create ?(initial_pages = 0) ~page_size () =
  let t =
    {
      page_size;
      pages = Array.init (max initial_pages 8) (fun _ -> Page.create ~size:page_size);
      used = initial_pages;
      reads = 0;
      writes = 0;
      seq_reads = 0;
      rand_reads = 0;
      seq_writes = 0;
      rand_writes = 0;
      last_read_pid = -10;
      last_write_pid = -10;
    }
  in
  t

let page_size t = t.page_size
let page_count t = t.used

let ensure_capacity t n =
  if n > Array.length t.pages then begin
    let cap = max n (2 * Array.length t.pages) in
    let fresh = Array.init cap (fun i ->
        if i < Array.length t.pages then t.pages.(i)
        else Page.create ~size:t.page_size)
    in
    t.pages <- fresh
  end

let grow t n =
  ensure_capacity t n;
  if n > t.used then t.used <- n

let check t pid =
  if pid < 0 || pid >= t.used then
    invalid_arg (Printf.sprintf "Disk: page %d out of range (0..%d)" pid (t.used - 1))

(* Reads and writes keep separate head-position cursors: a real drive (or
   its scheduler) services the two streams independently enough that a read
   interleaved into an elevator write run should not turn the next write
   into a "random" one. *)
let read t pid =
  check t pid;
  t.reads <- t.reads + 1;
  if pid = t.last_read_pid + 1 then t.seq_reads <- t.seq_reads + 1
  else t.rand_reads <- t.rand_reads + 1;
  t.last_read_pid <- pid;
  Bytes.copy t.pages.(pid)

let write t pid page =
  check t pid;
  if Bytes.length page <> t.page_size then invalid_arg "Disk.write: bad page size";
  t.writes <- t.writes + 1;
  if pid = t.last_write_pid + 1 then t.seq_writes <- t.seq_writes + 1
  else t.rand_writes <- t.rand_writes + 1;
  t.last_write_pid <- pid;
  Bytes.blit page 0 t.pages.(pid) 0 t.page_size

let sync _t = ()

let peek t pid =
  check t pid;
  Bytes.copy t.pages.(pid)

let stats t =
  {
    reads = t.reads;
    writes = t.writes;
    seq_reads = t.seq_reads;
    rand_reads = t.rand_reads;
    seq_writes = t.seq_writes;
    rand_writes = t.rand_writes;
  }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.seq_reads <- 0;
  t.rand_reads <- 0;
  t.seq_writes <- 0;
  t.rand_writes <- 0;
  t.last_read_pid <- -10;
  t.last_write_pid <- -10

let io_cost ?(seek_cost = 10.0) ?(transfer_cost = 1.0) (s : stats) =
  let f = float_of_int in
  (f s.rand_reads *. (seek_cost +. transfer_cost))
  +. (f s.seq_reads *. transfer_cost)
  +. (f s.rand_writes *. (seek_cost +. transfer_cost))
  +. (f s.seq_writes *. transfer_cost)
