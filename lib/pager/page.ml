type t = bytes

let header_size = 13
let kind_free = 0

let create ~size =
  if size < 64 then invalid_arg "Page.create: size too small";
  Bytes.make size '\000'

let get_u8 p off = Char.code (Bytes.get p off)
let set_u8 p off v = Bytes.set p off (Char.chr (v land 0xFF))

let get_u16 p off = Bytes.get_uint16_be p off
let set_u16 p off v = Bytes.set_uint16_be p off v

let get_u32 p off = Int32.to_int (Bytes.get_int32_be p off) land 0xFFFFFFFF
let set_u32 p off v = Bytes.set_int32_be p off (Int32.of_int v)

let get_i64 p off = Bytes.get_int64_be p off
let set_i64 p off v = Bytes.set_int64_be p off v

let get_key p off = Int64.to_int (get_i64 p off)
let set_key p off k = set_i64 p off (Int64.of_int k)

let kind p = get_u8 p 0
let set_kind p k = set_u8 p 0 k

let torn_prefix = 5

let checksum p = get_u32 p 1
let set_checksum p v = set_u32 p 1 v

let lsn p = get_i64 p 5
let set_lsn p v = set_i64 p 5 v

(* FNV-1a over everything past the checksum field — the page LSN included.
   Covering the LSN is what makes torn writes recoverable: a tear that lands
   only the prefix (kind + checksum) leaves the old (LSN, body) pair intact,
   so the survivor self-describes how far the log had been applied to it and
   redo can resume from exactly there.  The result is folded to 32 bits and
   0 is mapped to 1 so that a stored checksum of 0 can keep its meaning of
   "never stamped" (virgin pages, images written outside the buffer pool). *)
let body_checksum p =
  let h = ref 0x811c9dc5 in
  for i = torn_prefix to Bytes.length p - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get p i)) * 0x01000193 land 0xFFFFFFFF
  done;
  if !h = 0 then 1 else !h

let blit ~src ~src_off ~dst ~dst_off ~len = Bytes.blit src src_off dst dst_off len

let sub p off len = Bytes.sub_string p off len

let fill p off len c = Bytes.fill p off len c

let copy_into ~src ~dst =
  if Bytes.length src <> Bytes.length dst then
    invalid_arg "Page.copy_into: size mismatch";
  Bytes.blit src 0 dst 0 (Bytes.length src)

let equal = Bytes.equal
