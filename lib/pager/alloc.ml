module Iset = Set.Make (Int)

type zone = Leaf | Internal

type t = {
  pool : Buffer_pool.t;
  meta_pages : int;
  leaf_lo : int;
  leaf_hi : int; (* exclusive *)
  mutable free_leaf : Iset.t;
  mutable free_internal : Iset.t;
  mutable internal_hi : int; (* exclusive high-water mark of the disk *)
  mutable leaf_overflows : int;
  pending : (int, int) Hashtbl.t; (* page awaiting release -> durability dep *)
  mutable note : ([ `Alloc | `Free ] -> int -> unit) option; (* health observer *)
}

let create ~pool ~meta_pages ~leaf_pages =
  let backend = Buffer_pool.backend pool in
  let leaf_lo = meta_pages in
  let leaf_hi = meta_pages + leaf_pages in
  Backend.grow backend leaf_hi;
  let rec range lo hi acc = if lo >= hi then acc else range (lo + 1) hi (Iset.add lo acc) in
  {
    pool;
    meta_pages;
    leaf_lo;
    leaf_hi;
    free_leaf = range leaf_lo leaf_hi Iset.empty;
    free_internal = Iset.empty;
    internal_hi = leaf_hi;
    leaf_overflows = 0;
    pending = Hashtbl.create 8;
    note = None;
  }

let set_note t note = t.note <- note

let leaf_zone t = (t.leaf_lo, t.leaf_hi)

let zone_of t pid = if pid >= t.leaf_lo && pid < t.leaf_hi then Leaf else Internal

let grow_internal t =
  let backend = Buffer_pool.backend t.pool in
  let lo = t.internal_hi in
  let n = max 8 (lo / 4) in
  Backend.grow backend (lo + n);
  for pid = lo to lo + n - 1 do
    t.free_internal <- Iset.add pid t.free_internal
  done;
  t.internal_hi <- lo + n

(* Every successful allocation (zone alloc, alloc_specific, try_claim)
   funnels through here; every return to a free set goes through [release].
   The two notes give the health tracker the allocator's full churn. *)
let recycle t pid =
  Buffer_pool.forget_dependencies t.pool pid;
  (match t.note with Some f -> f `Alloc pid | None -> ());
  pid

let rec alloc t zone =
  match zone with
  | Leaf -> begin
    match Iset.min_elt_opt t.free_leaf with
    | Some pid ->
      t.free_leaf <- Iset.remove pid t.free_leaf;
      recycle t pid
    | None ->
      t.leaf_overflows <- t.leaf_overflows + 1;
      alloc t Internal
  end
  | Internal -> begin
    match Iset.min_elt_opt t.free_internal with
    | Some pid ->
      t.free_internal <- Iset.remove pid t.free_internal;
      recycle t pid
    | None ->
      grow_internal t;
      alloc t Internal
  end

let is_free t pid =
  match zone_of t pid with
  | Leaf -> Iset.mem pid t.free_leaf
  | Internal -> Iset.mem pid t.free_internal

let alloc_specific t pid =
  if not (is_free t pid) then
    invalid_arg (Printf.sprintf "Alloc.alloc_specific: page %d is not free" pid);
  (match zone_of t pid with
  | Leaf -> t.free_leaf <- Iset.remove pid t.free_leaf
  | Internal -> t.free_internal <- Iset.remove pid t.free_internal);
  ignore (recycle t pid)

let try_claim t pid =
  is_free t pid
  && begin
       alloc_specific t pid;
       true
     end

let release t pid =
  if pid < t.meta_pages then invalid_arg "Alloc.release: cannot free a meta page";
  if is_free t pid then
    invalid_arg (Printf.sprintf "Alloc.release: page %d already free" pid);
  (match zone_of t pid with
  | Leaf -> t.free_leaf <- Iset.add pid t.free_leaf
  | Internal -> t.free_internal <- Iset.add pid t.free_internal);
  match t.note with Some f -> f `Free pid | None -> ()

let free t pid =
  if pid < t.meta_pages then invalid_arg "Alloc.free: cannot free a meta page";
  if is_free t pid then invalid_arg (Printf.sprintf "Alloc.free: page %d already free" pid);
  let page = Buffer_pool.get t.pool pid in
  Page.set_kind page Page.kind_free;
  Buffer_pool.mark_dirty t.pool pid;
  release t pid

let free_when_durable t ~page ~after =
  Buffer_pool.on_durable t.pool after (fun () -> free t page)

let defer_release t ~page ~until_durable =
  if Buffer_pool.is_durable t.pool until_durable then release t page
  else begin
    Hashtbl.replace t.pending page until_durable;
    Buffer_pool.on_durable t.pool until_durable (fun () ->
        if Hashtbl.mem t.pending page then begin
          Hashtbl.remove t.pending page;
          release t page
        end)
  end

let pending_release t page = Hashtbl.find_opt t.pending page

let free_in_range t ~lo ~hi =
  let in_range s =
    match Iset.find_first_opt (fun p -> p >= lo) s with
    | Some p when p < hi -> Some p
    | _ -> None
  in
  match in_range t.free_leaf with
  | Some _ as r -> r
  | None -> in_range t.free_internal

let free_count t zone =
  match zone with
  | Leaf -> Iset.cardinal t.free_leaf
  | Internal -> Iset.cardinal t.free_internal

let leaf_overflows t = t.leaf_overflows

let rebuild t =
  let backend = Buffer_pool.backend t.pool in
  Hashtbl.reset t.pending;
  t.free_leaf <- Iset.empty;
  t.free_internal <- Iset.empty;
  t.internal_hi <- Backend.page_count backend;
  for pid = t.meta_pages to Backend.page_count backend - 1 do
    let kind =
      if Buffer_pool.in_pool t.pool pid then Page.kind (Buffer_pool.get t.pool pid)
      else Page.kind (Backend.peek backend pid)
    in
    if kind = Page.kind_free then
      match zone_of t pid with
      | Leaf -> t.free_leaf <- Iset.add pid t.free_leaf
      | Internal -> t.free_internal <- Iset.add pid t.free_internal
  done
