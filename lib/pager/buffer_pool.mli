(** Write-back buffer pool with the WAL rule and {e careful writing}.

    The pool caches page frames over a {!Backend.t}.  Dirty frames reach the
    backend through {!flush_page} / {!flush_all} / eviction, and a crash
    ({!crash}) discards every frame, so only flushed state survives — exactly
    the failure model the paper's recovery section assumes.

    Every flush stamps the page's checksum (covering LSN and body) into its
    header; every load verifies it.  A mismatch means a torn write that left
    the {e previous} (LSN, body) pair on disk: outside recovery it raises
    {!Torn_page}; in read-repair mode (enabled by recovery) the survivor is
    accepted as-is, and its own LSN steers redo to replay exactly the log
    suffix the tear lost (the WAL rule forced the log past the torn write
    before it was issued).

    Two write-ordering mechanisms are provided:

    - {b WAL rule}: before a dirty page is written, the hook installed with
      {!set_before_write} is called with the page's LSN; the log manager uses
      it to force the log up to that LSN.
    - {b Careful writing} (paper §5): {!add_dependency} records that page
      [blocked] must not be written to disk before page [prereq] is durable.
      Flushing a blocked page first flushes its prerequisites.  Registering a
      dependency that would close a cycle raises {!Cycle} — this is precisely
      the swap case where the paper says full-content logging cannot be
      avoided.

    {!on_durable} callbacks support the paper's deferred deallocation: a page
    whose contents were copied out "cannot be deallocated until the new page
    ... is on disk". *)

type t

exception Cycle of int * int
(** [Cycle (blocked, prereq)] — the requested write-order dependency would be
    circular. *)

exception Torn_page of int
(** A load hit a page whose stored checksum does not match its body and
    read-repair mode is off. *)

val create : ?capacity:int -> Backend.t -> t
(** [capacity] is the maximum number of frames, default
    {!default_capacity}.  When the pool is full, a victim is chosen by a
    clock (second-chance) sweep: each frame carries a referenced bit, set on
    every access; the clock hand clears the bit on its first visit and evicts
    on its second, skipping pinned frames.  A dirty victim is flushed (WAL
    rule and careful-writing prerequisites included) before being dropped.
    Raises [Invalid_argument] if [capacity < 1], [Failure] on eviction when
    every frame is pinned. *)

val default_capacity : int
(** 256 frames. *)

val capacity : t -> int

val backend : t -> Backend.t

val page_size : t -> int
(** Shorthand for [Backend.page_size (backend t)]. *)

val set_before_write : t -> (int64 -> unit) -> unit
(** Install the WAL-rule hook ([fun lsn -> Log.force log lsn]). *)

(** {2 Frame access} *)

val get : t -> int -> Page.t
(** [get t pid] returns the frame bytes for [pid], reading from disk on a
    miss.  The caller may mutate the bytes and must then call
    {!mark_dirty}. *)

val pin : t -> int -> Page.t
val unpin : t -> int -> unit

val with_page : t -> int -> (Page.t -> 'a) -> 'a
(** Pin, apply, unpin (also on exception). *)

val mark_dirty : t -> int -> unit

val set_dirty_hook : t -> (int -> unit) option -> unit
(** Observe every {!mark_dirty} (called with the pid, after the flag is
    set).  Every page mutation in the system funnels through the pool, so
    this is the one choke point the tree-health tracker needs; the hook must
    be O(1) and must not touch the pool. *)

val is_dirty : t -> int -> bool
val in_pool : t -> int -> bool

(** {2 Durability} *)

val flush_page : t -> int -> unit
(** Write the frame (and, first, its unsatisfied prerequisites) to disk.
    No-op if the page is not cached or clean. *)

val flush_all : t -> unit

val flush_elevator : ?limit:int -> t -> int
(** Background-flusher drain: write up to [limit] dirty frames (default all)
    in ascending-pid order starting from a persistent sweep hand, wrapping
    once past the end — the elevator discipline that makes the flush stream
    sequential on disk.  The WAL is forced once up to the batch's maximum
    page LSN before any frame is written, so the whole batch satisfies the
    WAL rule with a single force; careful-writing prerequisites are honored
    per frame as in {!flush_page}.  Returns the number of frames drained. *)

val min_rec_lsn : t -> int64 option
(** Oldest recovery LSN over the currently dirty frames: the page LSN each
    frame carried when it last went clean->dirty.  [None] when the pool is
    clean.  Fuzzy checkpoints use this as one of the WAL-truncation
    floors. *)

val is_durable : t -> int -> bool
(** True when the on-disk image is current (frame absent or clean). *)

val add_dependency : ?force:bool -> t -> blocked:int -> prereq:int -> unit
(** Careful-writing order: [blocked] cannot be written before [prereq] is
    durable.  Raises {!Cycle} when this would create a write-order cycle.
    No-op if [prereq] is already durable, unless [force] is set — used when
    the prerequisite is {e about} to be dirtied with the contents the
    constraint protects. *)

val forget_dependencies : t -> int -> unit
(** Drop any write-order constraints in which this page is the blocked one —
    called when a free page is recycled: a constraint still attached at that
    point is necessarily stale (the deallocation that freed the page already
    required its prerequisite to be durable). *)

val on_durable : t -> int -> (unit -> unit) -> unit
(** [on_durable t pid f] runs [f] as soon as [pid] is durable — immediately if
    it already is, otherwise right after the flush that makes it so.
    Callbacks do not survive a crash. *)

(** {2 Failure} *)

val crash : t -> unit
(** Discard all frames, dependencies and pending callbacks.  The disk image is
    untouched. *)

val set_read_repair : t -> bool -> unit
(** While on, a torn page is not an error: the surviving pre-tear image is
    accepted (and the frame marked dirty, so the recovery flush restores a
    good on-disk checksum) and redo replays from its LSN.  Only recovery
    should turn this on. *)

val torn_detected : t -> int
(** Torn pages detected by checksum verification since creation. *)

(** {2 Introspection} *)

val dirty_pages : t -> int list
val frame_count : t -> int
val flushes : t -> int
(** Number of page writes issued by this pool since creation. *)

type stats = {
  s_hits : int;
  s_misses : int;
  s_flushes : int;
  s_dep_flushes : int;
  s_evictions : int;
  s_torn_detected : int;
}

val stats : t -> stats
(** Counter snapshot since creation — what the benchmark harness records. *)

(** {2 Observability} *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register [pager.hits], [pager.misses], [pager.flushes],
    [pager.dep_flushes] (flushes forced by careful-writing prerequisites),
    [pager.evictions], [pager.torn_detected] and [pager.frames] gauges. *)

val set_tracer : t -> Obs.Trace.t option -> unit
(** While set, every page flush is recorded as a [pager.flush] instant event
    and every careful-writing prerequisite flush as [pager.dep-flush]. *)
