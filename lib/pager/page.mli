(** Fixed-size binary pages.

    A page is a [bytes] buffer with a small header owned by the pager:

    {v
      offset 0       : kind (u8)    -- 0 = free, other values owned by layers above
      offsets 1..4   : body checksum (u32, big-endian; 0 = never stamped)
      offsets 5..12  : page LSN (i64, big-endian)
    v}

    Everything from {!header_size} on belongs to the layer that owns the page
    (the B+-tree defines leaf / internal / meta layouts there).  All multi-byte
    integers are big-endian so page images are deterministic and comparable.

    The LSN sits {e inside} the checksummed region on purpose.  The torn-write
    model lands only the first {!torn_prefix} bytes (kind + checksum), so a
    tear leaves the previous (LSN, body) pair intact and mutually consistent:
    verification sees the checksum/body mismatch, and the surviving LSN tells
    recovery exactly which log suffix to replay.  If the LSN lived with the
    checksum, a tear would leave a new LSN over an old body and the replay
    start point would be unrecoverable. *)

type t = bytes

val header_size : int
(** First offset available to higher layers (= 13). *)

val torn_prefix : int
(** Length of the atomically-written prefix (kind + checksum, = 5).  A torn
    write applies exactly these bytes; the LSN and body keep their previous
    contents. *)

val kind_free : int
(** The [kind] value of an unallocated page (= 0). *)

val create : size:int -> t
(** A zeroed page; its kind is {!kind_free}. *)

val kind : t -> int
val set_kind : t -> int -> unit

val lsn : t -> int64
val set_lsn : t -> int64 -> unit

val checksum : t -> int
(** The stored body checksum; 0 means the page was never stamped (virgin
    pages, or images written around the buffer pool) and is accepted
    unconditionally on read. *)

val set_checksum : t -> int -> unit

val body_checksum : t -> int
(** FNV-1a (32-bit) over bytes [[torn_prefix, size)] — the page LSN and the
    body.  Never returns 0, so a stamped page always verifies against a
    nonzero stored value.  The prefix itself (kind, checksum) is {e not}
    covered: a torn write that lands the prefix but not the rest is exactly
    what the checksum detects. *)

(** {2 Raw accessors}  Bounds-checked by the underlying [Bytes] primitives. *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_u32 : t -> int -> int
val set_u32 : t -> int -> int -> unit
val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit

val get_key : t -> int -> int
(** Keys are stored as i64 but used as OCaml ints. *)

val set_key : t -> int -> int -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
val sub : t -> int -> int -> string
val fill : t -> int -> int -> char -> unit
val copy_into : src:t -> dst:t -> unit
(** Whole-page copy; the two pages must have equal size. *)

val equal : t -> t -> bool
