exception Crash

type plan = {
  crash_after_writes : int option;
  torn_write : bool;
  crash_after_forces : int option;
  torn_tail : bool;
  seed : int;
}

let no_faults =
  {
    crash_after_writes = None;
    torn_write = false;
    crash_after_forces = None;
    torn_tail = false;
    seed = 0;
  }

type t = {
  mutable plan : plan option;
  mutable rng : Util.Rng.t;
  mutable writes_seen : int;
  mutable forces_seen : int;
  mutable dead : bool;
  (* Cumulative across arm/disarm cycles — these feed the obs gauges. *)
  mutable crashes : int;
  mutable torn_writes : int;
  mutable torn_tails : int;
}

let create () =
  {
    plan = None;
    rng = Util.Rng.create 0;
    writes_seen = 0;
    forces_seen = 0;
    dead = false;
    crashes = 0;
    torn_writes = 0;
    torn_tails = 0;
  }

let arm t plan =
  t.plan <- Some plan;
  t.rng <- Util.Rng.create plan.seed;
  t.writes_seen <- 0;
  t.forces_seen <- 0

let disarm t = t.plan <- None
let armed t = t.plan <> None
let crashed t = t.dead

let kill t =
  if not t.dead then begin
    t.dead <- true;
    t.crashes <- t.crashes + 1
  end

let revive t =
  t.dead <- false;
  disarm t

let check t = if t.dead then raise Crash

let on_write t =
  check t;
  match t.plan with
  | None -> `Full
  | Some p -> (
      t.writes_seen <- t.writes_seen + 1;
      match p.crash_after_writes with
      | Some n when t.writes_seen >= n ->
          kill t;
          if p.torn_write then begin
            t.torn_writes <- t.torn_writes + 1;
            `Torn
          end
          else `Full
      | _ -> `Full)

let on_force t ~records =
  check t;
  match t.plan with
  | None -> records
  | Some p ->
      if records <= 0 then records
      else begin
        t.forces_seen <- t.forces_seen + 1;
        match p.crash_after_forces with
        | Some n when t.forces_seen >= n ->
            kill t;
            if p.torn_tail then begin
              let kept = Util.Rng.int t.rng records in
              if kept < records then t.torn_tails <- t.torn_tails + 1;
              kept
            end
            else records
        | _ -> records
      end

let crashes t = t.crashes
let torn_writes t = t.torn_writes
let torn_tails t = t.torn_tails

let register_obs t reg =
  Obs.Registry.gauge reg "fault.crashes" (fun () -> t.crashes);
  Obs.Registry.gauge reg "fault.torn_writes" (fun () -> t.torn_writes);
  Obs.Registry.gauge reg "fault.torn_tails" (fun () -> t.torn_tails)
