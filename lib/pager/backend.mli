(** The storage-backend seam.

    Everything above the pager talks to stable storage through this one
    interface — the buffer pool reads and writes through it, the allocator
    grows through it, recovery's analysis sweep scans through it.  The
    in-memory {!Disk} is one implementation; {!faulty} wraps any backend
    with a {!Fault} controller that can kill the machine at a precise write
    boundary or tear a page in half.  Because the seam is a first-class
    value, wrappers compose without the rest of the system knowing. *)

module type S = sig
  type t

  val page_size : t -> int
  val page_count : t -> int
  val grow : t -> int -> unit
  val read : t -> int -> Page.t
  val write : t -> int -> Page.t -> unit

  val peek : t -> int -> Page.t
  (** Read without accounting or fault checks — for assertions and
      post-mortem inspection, which model neither I/O cost nor the crashed
      machine. *)

  val sync : t -> unit
  val stats : t -> Disk.stats
  val reset_stats : t -> unit
end

type t = B : (module S with type t = 'a) * 'a -> t
(** A backend packaged with its implementation. *)

val page_size : t -> int
val page_count : t -> int
val grow : t -> int -> unit
val read : t -> int -> Page.t
val write : t -> int -> Page.t -> unit
val peek : t -> int -> Page.t
val sync : t -> unit
val stats : t -> Disk.stats
val reset_stats : t -> unit

val of_disk : Disk.t -> t
(** The plain in-memory backend. *)

val faulty : fault:Fault.t -> t -> t
(** [faulty ~fault b] routes every operation through [fault]: reads, writes,
    grows and syncs raise {!Fault.Crash} once the machine is dead, and the
    write that trips an armed plan is applied in full or torn (header only)
    before the crash is raised.  [peek] and the statistics pass through
    untouched. *)
