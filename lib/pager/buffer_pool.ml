exception Cycle of int * int
exception Torn_page of int

type frame = {
  pid : int;
  data : Page.t;
  mutable dirty : bool;
  mutable rec_lsn : int64; (* page LSN when the frame last went clean->dirty *)
  mutable pins : int;
  mutable referenced : bool; (* clock second-chance bit *)
  mutable slot : int; (* index of this frame's entry in the clock ring *)
}

type stats = {
  s_hits : int;
  s_misses : int;
  s_flushes : int;
  s_dep_flushes : int;
  s_evictions : int;
  s_torn_detected : int;
}

type t = {
  backend : Backend.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t;
  (* Clock ring over resident frames, in arrival order.  Entries are pids;
     eviction leaves a [-1] tombstone (O(1) removal) which the next
     growth-time compaction squeezes out. *)
  mutable ring : int array;
  mutable ring_len : int; (* used prefix of [ring], tombstones included *)
  mutable ring_live : int; (* non-tombstone entries *)
  mutable hand : int;
  mutable before_write : int64 -> unit;
  (* blocked pid -> prerequisite pids that must be durable before it may be
     written.  Entries are removed as they are satisfied. *)
  deps : (int, int list ref) Hashtbl.t;
  waiters : (int, (unit -> unit) list ref) Hashtbl.t;
  mutable flushes : int;
  mutable hits : int;
  mutable misses : int;
  mutable dep_flushes : int; (* flushes forced by careful-writing prerequisites *)
  mutable evictions : int;
  mutable torn_detected : int;
  mutable read_repair : bool;
  mutable sweep_pid : int; (* elevator hand: next pid the flusher visits *)
  mutable tracer : Obs.Trace.t option;
  (* Every page mutation in the system funnels through [mark_dirty]; the
     health tracker hooks it to learn which pages to re-examine. *)
  mutable dirty_hook : (int -> unit) option;
}

(* Default bound: enough that the repo's own workloads rarely thrash, small
   enough that eviction is actually exercised — an unbounded pool hides every
   write-ordering bug the careful-writing machinery exists to catch. *)
let default_capacity = 256

let create ?(capacity = default_capacity) backend =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    backend;
    capacity;
    frames = Hashtbl.create 64;
    ring = Array.make 16 (-1);
    ring_len = 0;
    ring_live = 0;
    hand = 0;
    before_write = (fun _ -> ());
    deps = Hashtbl.create 16;
    waiters = Hashtbl.create 16;
    flushes = 0;
    hits = 0;
    misses = 0;
    dep_flushes = 0;
    evictions = 0;
    torn_detected = 0;
    read_repair = false;
    sweep_pid = 0;
    tracer = None;
    dirty_hook = None;
  }

let set_dirty_hook t hook = t.dirty_hook <- hook

let capacity t = t.capacity

let stats t =
  {
    s_hits = t.hits;
    s_misses = t.misses;
    s_flushes = t.flushes;
    s_dep_flushes = t.dep_flushes;
    s_evictions = t.evictions;
    s_torn_detected = t.torn_detected;
  }

let set_tracer t tracer = t.tracer <- tracer

let register_obs t reg =
  Obs.Registry.gauge reg "pager.hits" (fun () -> t.hits);
  Obs.Registry.gauge reg "pager.misses" (fun () -> t.misses);
  Obs.Registry.gauge reg "pager.flushes" (fun () -> t.flushes);
  Obs.Registry.gauge reg "pager.dep_flushes" (fun () -> t.dep_flushes);
  Obs.Registry.gauge reg "pager.evictions" (fun () -> t.evictions);
  Obs.Registry.gauge reg "pager.torn_detected" (fun () -> t.torn_detected);
  Obs.Registry.gauge reg "pager.frames" (fun () -> Hashtbl.length t.frames)

let backend t = t.backend
let page_size t = Backend.page_size t.backend
let set_read_repair t b = t.read_repair <- b
let torn_detected t = t.torn_detected

let set_before_write t f = t.before_write <- f

let is_dirty t pid =
  match Hashtbl.find_opt t.frames pid with Some f -> f.dirty | None -> false

let in_pool t pid = Hashtbl.mem t.frames pid

let is_durable t pid = not (is_dirty t pid)

let prereqs t pid =
  match Hashtbl.find_opt t.deps pid with Some l -> !l | None -> []

(* Would adding blocked -> prereq close a cycle?  I.e. can we already reach
   [blocked] from [prereq] through the dependency graph? *)
let reaches t ~src ~dst =
  let seen = Hashtbl.create 8 in
  let rec go p =
    p = dst
    || (not (Hashtbl.mem seen p)
        && begin
             Hashtbl.replace seen p ();
             List.exists go (prereqs t p)
           end)
  in
  go src

let add_dependency ?(force = false) t ~blocked ~prereq =
  if blocked = prereq then raise (Cycle (blocked, prereq));
  if force || not (is_durable t prereq) then begin
    if reaches t ~src:prereq ~dst:blocked then raise (Cycle (blocked, prereq));
    let l =
      match Hashtbl.find_opt t.deps blocked with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.deps blocked l;
        l
    in
    if not (List.mem prereq !l) then l := prereq :: !l
  end

let forget_dependencies t pid = Hashtbl.remove t.deps pid

let fire_waiters t pid =
  match Hashtbl.find_opt t.waiters pid with
  | None -> ()
  | Some fs ->
    Hashtbl.remove t.waiters pid;
    List.iter (fun f -> f ()) (List.rev !fs)

let on_durable t pid f =
  if is_durable t pid then f ()
  else
    match Hashtbl.find_opt t.waiters pid with
    | Some fs -> fs := f :: !fs
    | None -> Hashtbl.replace t.waiters pid (ref [ f ])

(* A write-order constraint is discharged the moment its prerequisite
   reaches disk; leaving it around would manufacture false cycles when the
   (by then durable) pages are recycled by later units. *)
let discharge_deps_on t pid =
  let empty = ref [] in
  Hashtbl.iter
    (fun blocked l ->
      l := List.filter (fun p -> p <> pid) !l;
      if !l = [] then empty := blocked :: !empty)
    t.deps;
  List.iter (Hashtbl.remove t.deps) !empty

let rec flush_frame t fr =
  if fr.dirty then begin
    (* Careful writing: prerequisites first. *)
    let ps = prereqs t fr.pid in
    Hashtbl.remove t.deps fr.pid;
    if ps <> [] then begin
      t.dep_flushes <- t.dep_flushes + List.length ps;
      match t.tracer with
      | Some tr ->
        List.iter
          (fun p ->
            Obs.Trace.instant tr ~cat:"pager" "pager.dep-flush"
              ~args:[ ("blocked", Obs.Trace.Int fr.pid); ("prereq", Obs.Trace.Int p) ])
          ps
      | None -> ()
    end;
    List.iter (fun p -> flush_page t p) ps;
    (* WAL rule. *)
    t.before_write (Page.lsn fr.data);
    Page.set_checksum fr.data (Page.body_checksum fr.data);
    Backend.write t.backend fr.pid fr.data;
    t.flushes <- t.flushes + 1;
    (match t.tracer with
    | Some tr ->
      Obs.Trace.instant tr ~cat:"pager" "pager.flush" ~args:[ ("pid", Obs.Trace.Int fr.pid) ]
    | None -> ());
    fr.dirty <- false;
    discharge_deps_on t fr.pid;
    fire_waiters t fr.pid
  end

and flush_page t pid =
  match Hashtbl.find_opt t.frames pid with
  | None ->
    (* Not cached: the disk image is current by definition. *)
    Hashtbl.remove t.deps pid;
    fire_waiters t pid
  | Some fr -> flush_frame t fr

(* --- clock ring maintenance --- *)

let ring_compact t =
  let live = Array.make (max 16 (2 * t.ring_live)) (-1) in
  let j = ref 0 in
  let new_hand = ref 0 in
  for i = 0 to t.ring_len - 1 do
    if i = t.hand then new_hand := !j;
    let pid = t.ring.(i) in
    if pid >= 0 then begin
      (match Hashtbl.find_opt t.frames pid with Some fr -> fr.slot <- !j | None -> ());
      live.(!j) <- pid;
      incr j
    end
  done;
  t.ring <- live;
  t.ring_len <- !j;
  t.hand <- (if !j = 0 then 0 else !new_hand mod !j)

let ring_push t fr =
  if t.ring_len = Array.length t.ring then
    if t.ring_live * 2 <= t.ring_len then ring_compact t
    else begin
      let bigger = Array.make (2 * Array.length t.ring) (-1) in
      Array.blit t.ring 0 bigger 0 t.ring_len;
      t.ring <- bigger
    end;
  fr.slot <- t.ring_len;
  t.ring.(t.ring_len) <- fr.pid;
  t.ring_len <- t.ring_len + 1;
  t.ring_live <- t.ring_live + 1

let ring_remove t fr =
  if fr.slot >= 0 && fr.slot < t.ring_len && t.ring.(fr.slot) = fr.pid then begin
    t.ring.(fr.slot) <- -1;
    t.ring_live <- t.ring_live - 1
  end;
  fr.slot <- -1

let evict_one t =
  (* Clock / second-chance: sweep the ring from the hand; a referenced frame
     surrenders its bit and gets one more revolution, a pinned frame is
     skipped.  Two full revolutions are enough to find a victim (the first
     clears every bit), so a dry sweep means every frame is pinned. *)
  let victim = ref None in
  let budget = ref ((2 * t.ring_len) + 2) in
  while !victim = None && !budget > 0 do
    decr budget;
    if t.ring_len = 0 then budget := 0
    else begin
      if t.hand >= t.ring_len then t.hand <- 0;
      let pid = t.ring.(t.hand) in
      if pid < 0 then t.hand <- t.hand + 1
      else begin
        let fr = Hashtbl.find t.frames pid in
        if fr.pins > 0 then t.hand <- t.hand + 1
        else if fr.referenced then begin
          fr.referenced <- false;
          t.hand <- t.hand + 1
        end
        else victim := Some fr
      end
    end
  done;
  match !victim with
  | None -> failwith "Buffer_pool: all frames pinned"
  | Some fr ->
    flush_frame t fr;
    t.evictions <- t.evictions + 1;
    ring_remove t fr;
    t.hand <- t.hand + 1;
    Hashtbl.remove t.frames fr.pid

let load t pid =
  if Hashtbl.length t.frames >= t.capacity then evict_one t;
  let data = Backend.read t.backend pid in
  (* Checksum verification: a stored checksum of 0 means the image was never
     stamped by a pool flush (virgin page, or written around the pool) and is
     accepted.  A mismatch is a torn write: the prefix landed but the (LSN,
     body) pair is the {e previous} flushed image, still mutually consistent.
     During recovery (read-repair mode) that survivor is simply accepted —
     its own LSN tells redo which log suffix to replay, and nothing older
     (in particular no careful-writing move whose origin page has since been
     recycled) is touched.  Outside recovery a torn page is a hard error. *)
  let stored = Page.checksum data in
  let repaired =
    stored <> 0
    && stored <> Page.body_checksum data
    && begin
         t.torn_detected <- t.torn_detected + 1;
         (match t.tracer with
         | Some tr ->
           Obs.Trace.instant tr ~cat:"pager" "pager.torn-page"
             ~args:[ ("pid", Obs.Trace.Int pid) ]
         | None -> ());
         if not t.read_repair then raise (Torn_page pid);
         Page.set_checksum data 0;
         true
       end
  in
  (* A repaired frame starts dirty: even if no log record ends up replayed
     against it, the final recovery flush must replace the torn on-disk
     image with a consistent one. *)
  let fr =
    {
      pid;
      data;
      dirty = repaired;
      rec_lsn = Page.lsn data;
      pins = 0;
      referenced = true;
      slot = -1;
    }
  in
  Hashtbl.replace t.frames pid fr;
  ring_push t fr;
  fr

let frame t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some fr ->
    t.hits <- t.hits + 1;
    fr.referenced <- true;
    fr
  | None ->
    t.misses <- t.misses + 1;
    load t pid

let get t pid = (frame t pid).data

let pin t pid =
  let fr = frame t pid in
  fr.pins <- fr.pins + 1;
  fr.data

let unpin t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some fr when fr.pins > 0 -> fr.pins <- fr.pins - 1
  | _ -> invalid_arg "Buffer_pool.unpin: page not pinned"

let with_page t pid f =
  let data = pin t pid in
  Fun.protect ~finally:(fun () -> unpin t pid) (fun () -> f data)

let mark_dirty t pid =
  match Hashtbl.find_opt t.frames pid with
  | Some fr ->
    (* Capture the recovery LSN on the clean->dirty transition: callers stamp
       the page with the mutating record's LSN before marking, so this is the
       oldest record that might need replaying against the frame — the
       checkpoint's WAL-truncation floor for this page. *)
    if not fr.dirty then begin
      fr.dirty <- true;
      fr.rec_lsn <- Page.lsn fr.data
    end;
    (match t.dirty_hook with Some hook -> hook pid | None -> ())
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not cached"

let flush_all t =
  let pids = Hashtbl.fold (fun pid _ acc -> pid :: acc) t.frames [] in
  List.iter (fun pid -> flush_page t pid) (List.sort compare pids)

let dirty_pages t =
  Hashtbl.fold (fun pid fr acc -> if fr.dirty then pid :: acc else acc) t.frames []
  |> List.sort compare

(* Background-flusher entry point: drain up to [limit] dirty frames in
   ascending-pid order starting at the persistent sweep hand, wrapping once —
   the elevator discipline that turns the flush stream sequential.  The log
   is forced once up to the batch's maximum page LSN first, so the per-frame
   WAL-rule forces inside [flush_frame] are already satisfied and the whole
   batch costs a single force. *)
let flush_elevator ?(limit = max_int) t =
  let dirty = dirty_pages t in
  if dirty = [] then 0
  else begin
    let above, below = List.partition (fun pid -> pid >= t.sweep_pid) dirty in
    let ordered = above @ below in
    let rec take k xs =
      match xs with [] -> [] | _ when k <= 0 -> [] | x :: rest -> x :: take (k - 1) rest
    in
    let batch = take limit ordered in
    let max_lsn =
      List.fold_left
        (fun m pid ->
          match Hashtbl.find_opt t.frames pid with
          | Some fr when fr.dirty -> max m (Page.lsn fr.data)
          | _ -> m)
        Int64.min_int batch
    in
    if max_lsn > Int64.min_int then t.before_write max_lsn;
    List.iter (fun pid -> flush_page t pid) batch;
    (match List.rev batch with last :: _ -> t.sweep_pid <- last + 1 | [] -> ());
    List.length batch
  end

(* Oldest recovery LSN over the dirty frames — together with the active-txn
   and reorg floors, this bounds how far the WAL may be truncated. *)
let min_rec_lsn t =
  Hashtbl.fold
    (fun _ fr acc ->
      if not fr.dirty then acc
      else match acc with None -> Some fr.rec_lsn | Some m -> Some (min m fr.rec_lsn))
    t.frames None

let crash t =
  Hashtbl.reset t.frames;
  Hashtbl.reset t.deps;
  Hashtbl.reset t.waiters;
  t.ring <- Array.make 16 (-1);
  t.ring_len <- 0;
  t.ring_live <- 0;
  t.hand <- 0;
  t.sweep_pid <- 0

let frame_count t = Hashtbl.length t.frames
let flushes t = t.flushes
