(** Simulated disk: an array of fixed-size pages with I/O accounting.

    The paper's evaluation concerns I/O counts and physical contiguity of leaf
    pages (range scans over a reorganized tree read sequential pages).  The
    disk therefore tracks, besides raw read/write counts, how many reads {e
    and} writes were {e sequential} — page id = previously {e read} id + 1
    for reads, previously {e written} id + 1 for writes.  The two streams
    keep independent cursors, so a read interleaved into an elevator write
    run does not misclassify the next write as random.  Experiments apply a
    seek/transfer cost model to both paths — pass 2's contiguity argument
    applies to the bottom-up build's write stream too. *)

type t

type stats = {
  reads : int;
  writes : int;
  seq_reads : int; (** reads at [last read + 1] *)
  rand_reads : int;
  seq_writes : int; (** writes at [last written + 1] *)
  rand_writes : int;
}

val create : ?initial_pages:int -> page_size:int -> unit -> t

val page_size : t -> int
val page_count : t -> int

val read : t -> int -> Page.t
(** [read disk pid] returns a {e copy} of the on-disk image.  Raises
    [Invalid_argument] if [pid] is out of range. *)

val write : t -> int -> Page.t -> unit
(** Store a copy of the page image. *)

val grow : t -> int -> unit
(** [grow disk n] ensures at least [n] pages exist (new ones zeroed/free). *)

val sync : t -> unit
(** Durability barrier.  A no-op for the in-memory disk (every {!write} is
    immediately "durable"), but part of the backend contract so wrappers can
    observe it. *)

val peek : t -> int -> Page.t
(** Like {!read} but without touching the I/O counters — for assertions and
    recovery-time scans, which the cost model should not observe. *)

val stats : t -> stats
val reset_stats : t -> unit

val io_cost : ?seek_cost:float -> ?transfer_cost:float -> stats -> float
(** Simple cost model: each random read or write pays
    [seek_cost + transfer_cost]; each sequential read or write pays
    [transfer_cost] only.  Defaults: seek 10.0, transfer 1.0. *)
