module type S = sig
  type t

  val page_size : t -> int
  val page_count : t -> int
  val grow : t -> int -> unit
  val read : t -> int -> Page.t
  val write : t -> int -> Page.t -> unit
  val peek : t -> int -> Page.t
  val sync : t -> unit
  val stats : t -> Disk.stats
  val reset_stats : t -> unit
end

type t = B : (module S with type t = 'a) * 'a -> t

let page_size (B ((module M), h)) = M.page_size h
let page_count (B ((module M), h)) = M.page_count h
let grow (B ((module M), h)) n = M.grow h n
let read (B ((module M), h)) pid = M.read h pid
let write (B ((module M), h)) pid page = M.write h pid page
let peek (B ((module M), h)) pid = M.peek h pid
let sync (B ((module M), h)) = M.sync h
let stats (B ((module M), h)) = M.stats h
let reset_stats (B ((module M), h)) = M.reset_stats h

let of_disk d = B ((module Disk), d)

module Faulty = struct
  type outer = t

  type t = { inner : outer; fault : Fault.t }

  let page_size t = page_size t.inner
  let page_count t = page_count t.inner

  let grow t n =
    Fault.check t.fault;
    grow t.inner n

  let read t pid =
    Fault.check t.fault;
    read t.inner pid

  let write t pid page =
    (match Fault.on_write t.fault with
    | `Full -> write t.inner pid page
    | `Torn ->
        (if Sys.getenv_opt "TORN_DEBUG" <> None && Fault.armed t.fault then
           Printf.eprintf "[torn] page %d (kind %d, lsn %Ld)\n%!" pid (Page.kind page) (Page.lsn page));
        (* The atomic prefix (kind + checksum) lands; the LSN and body do
           not.  The stored checksum (computed over the new LSN and body)
           then disagrees with the surviving old pair, which is exactly what
           read-side verification detects — and the old LSN still describes
           the old body, so recovery knows where to resume replay. *)
        let img = peek t.inner pid in
        Page.blit ~src:page ~src_off:0 ~dst:img ~dst_off:0 ~len:Page.torn_prefix;
        write t.inner pid img);
    (* If this write tripped the plan, die *after* applying it: the crash
       happens at the boundary, not before it. *)
    Fault.check t.fault

  let peek t pid = peek t.inner pid

  let sync t =
    Fault.check t.fault;
    sync t.inner

  let stats t = stats t.inner
  let reset_stats t = reset_stats t.inner
end

let faulty ~fault inner = B ((module Faulty), { Faulty.inner; fault })
