type t = { bounds : int array }

let create ~boundaries =
  let bounds = Array.of_list boundaries in
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Shard_map.create: boundaries must be strictly increasing")
    bounds;
  { bounds }

let uniform ~shards ~key_space =
  if shards < 1 then invalid_arg "Shard_map.uniform: shards must be >= 1";
  if shards > 1 && key_space < shards then
    invalid_arg "Shard_map.uniform: key_space smaller than shard count";
  create ~boundaries:(List.init (shards - 1) (fun i -> (i + 1) * key_space / shards))

let shards t = Array.length t.bounds + 1

let boundaries t = Array.to_list t.bounds

(* Number of boundaries <= key, i.e. the index of the owning shard. *)
let owner t key =
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.bounds.(mid) <= key then lo := mid + 1 else hi := mid
  done;
  !lo

let range_of t i =
  let n = shards t in
  if i < 0 || i >= n then invalid_arg "Shard_map.range_of: shard index out of range";
  let lo = if i = 0 then None else Some t.bounds.(i - 1) in
  let hi = if i = n - 1 then None else Some t.bounds.(i) in
  (lo, hi)

let split t ~lo ~hi =
  if lo > hi then []
  else begin
    let first = owner t lo and last = owner t hi in
    List.init
      (last - first + 1)
      (fun k ->
        let i = first + k in
        let seg_lo = if i = first then lo else t.bounds.(i - 1) in
        let seg_hi = if i = last then hi else t.bounds.(i) - 1 in
        (i, seg_lo, seg_hi))
  end

let pp fmt t =
  let n = shards t in
  Format.fprintf fmt "@[<h>%d shard%s" n (if n = 1 then "" else "s");
  if n > 1 then begin
    Format.fprintf fmt " @@ [";
    Array.iteri
      (fun i b -> Format.fprintf fmt "%s%d" (if i > 0 then "; " else "") b)
      t.bounds;
    Format.fprintf fmt "]"
  end;
  Format.fprintf fmt "@]"
