module Access = Btree.Access

type t = { coord : Coordinator.t }

let create coord = { coord }

let coordinator t = t.coord
let map t = Coordinator.map t.coord

let access t i = (Coordinator.store t.coord i).Store.access

let read t x key =
  let i = Shard_map.owner (map t) key in
  Access.read (access t i) ~txn:(Coordinator.txn_in x i) key

let insert t x ~key ~payload =
  let i = Shard_map.owner (map t) key in
  Access.insert (access t i) ~txn:(Coordinator.write_txn_in x i) ~key ~payload

let delete t x key =
  let i = Shard_map.owner (map t) key in
  Access.delete (access t i) ~txn:(Coordinator.write_txn_in x i) key

let update t x ~key ~payload =
  let i = Shard_map.owner (map t) key in
  Access.update (access t i) ~txn:(Coordinator.write_txn_in x i) ~key ~payload

(* Shard ranges are disjoint and ascending, so per-segment results (each
   sorted by the leaf chain walk) concatenate into one sorted sequence. *)
type cursor = {
  router : t;
  x : Coordinator.xtxn;
  mutable segments : (int * int * int) list;  (* (shard, lo, hi) not yet fetched *)
  mutable front : Btree.Leaf.record list;  (* fetched, not yet consumed *)
}

let scan t x ~lo ~hi = { router = t; x; segments = Shard_map.split (map t) ~lo ~hi; front = [] }

let rec next c =
  match c.front with
  | r :: rest ->
    c.front <- rest;
    Some r
  | [] -> begin
    match c.segments with
    | [] -> None
    | (i, seg_lo, seg_hi) :: rest ->
      c.segments <- rest;
      c.front <-
        Access.range_read (access c.router i) ~txn:(Coordinator.txn_in c.x i) ~lo:seg_lo
          ~hi:seg_hi;
      next c
  end

let range_read t x ~lo ~hi =
  let c = scan t x ~lo ~hi in
  let rec drain acc = match next c with Some r -> drain (r :: acc) | None -> List.rev acc in
  drain []
