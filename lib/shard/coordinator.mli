(** Cross-shard transactions under two-phase locking.

    One coordinator owns the shard map and the per-shard stores.  A
    cross-shard transaction is {e one} identity — a single globally unique
    id minted from shard 0's strided transaction manager — that acquires
    locks in each touched shard's own lock manager through a per-shard
    {!Transact.Txn.t} handle sharing that id.  Presence in a shard starts
    read-only (locks only); the first write in a shard lazily logs a
    [Txn_begin] there ({!Transact.Txn_mgr.adopt}), so every shard's WAL
    independently knows whether the transaction wrote locally.

    {b Commit protocol}: commit records are written and forced to every
    {e written} shard's WAL in ascending shard order; the transaction is
    acknowledged only after the last force.  Each shard recovers
    independently ([Reorg.Recovery.restart] per store): a shard whose WAL
    holds the commit record keeps the transaction's effects, one without it
    undoes them as a loser.  Because commit is in shard order, the committed
    shards after a crash always form a prefix — and an {e acked}
    transaction has the record in every shard, so acked transactions are
    all-or-nothing across the whole assembly.  Unacked transactions may
    commit in a prefix of their shards; the client was never told they
    committed.

    {b Deadlocks}: creating a coordinator points every shard's lock manager
    at the other shards' waits-for edges ({!Lockmgr.Lock_mgr.set_extra_edges}),
    so a cycle spanning shards is caught by the local detector of whichever
    shard enqueues the closing wait, exactly as a same-shard cycle would
    be.  Victims raise {!Transact.Lock_client.Deadlock_victim} out of the
    blocked operation; callers abort with {!abort}. *)

type t

type xtxn
(** One cross-shard transaction. *)

val create : map:Shard_map.t -> stores:Store.t array -> t
(** [stores.(i)] must be shard [i]'s store, assembled with
    [~shard:(i, Array.length stores)] (checked).  Installs the cross-shard
    deadlock edges on every store's lock manager. *)

val map : t -> Shard_map.t
val stores : t -> Store.t array
val store : t -> int -> Store.t

val begin_x : t -> xtxn
(** Mint a fresh global id and start a transaction.  Must (like every
    operation on the transaction) run inside a scheduler process. *)

val xid : xtxn -> int

val txn_in : xtxn -> int -> Transact.Txn.t
(** The transaction's handle in shard [i], created on first use (read-only:
    no log record).  Locks taken through it belong to the global id. *)

val write_txn_in : xtxn -> int -> Transact.Txn.t
(** Like {!txn_in} but upgraded for writing: the first call per shard logs
    [Txn_begin] in that shard's WAL. *)

val touched : xtxn -> int list
(** Shard indices the transaction has touched so far, ascending. *)

val commit : t -> xtxn -> unit
(** Write + force the commit record in every written shard in ascending
    shard order, then release all locks everywhere.  Raises
    [Invalid_argument] if the transaction is no longer active. *)

val abort : t -> xtxn -> unit
(** Undo in every written shard (logging CLRs and [Txn_abort] per shard),
    release all locks everywhere. *)

val finished : xtxn -> bool

val blocked_ticks : xtxn -> int
(** Lock-wait ticks summed over the transaction's per-shard handles. *)

val give_ups : xtxn -> int
(** RX give-up retries summed over the per-shard handles. *)

(** {2 Observability} *)

type stats = {
  begun : int;
  committed : int;
  aborted : int;
  cross_shard_commits : int;  (** committed transactions that wrote >= 2 shards *)
  commit_records : int;  (** per-shard commit records written *)
}

val stats : t -> stats

val register_obs : t -> Obs.Registry.t -> unit
(** Register [coord.begun], [coord.committed], [coord.aborted],
    [coord.cross_shard_commits], [coord.commit_records]. *)

(** {2 Protocol events}

    The commit-protocol steps, in decision order, for the model checker: a
    transaction's per-shard commit records must land in strictly ascending
    shard order and its ack must follow the last record — the ordering that
    makes acked cross-shard transactions all-or-nothing under any crash. *)

type event =
  | Ev_begun of { x_id : int }
  | Ev_commit_record of { x_id : int; shard : int }
      (** shard [shard]'s commit record appended and forced *)
  | Ev_acked of { x_id : int }  (** commit returned to the client *)
  | Ev_aborted of { x_id : int }

val set_event_hook : t -> (event -> unit) option -> unit
