(** The routing layer: the {!Btree.Access}-shaped API over a sharded
    assembly.

    Point operations (lookup / insert / delete / update) binary-search the
    shard map and run the ordinary access protocol against the owning
    shard's store, under the cross-shard transaction's identity in that
    shard.  Range scans are fanned out: the requested range is cut at shard
    boundaries ({!Shard_map.split}) and the per-shard segments are read in
    ascending shard order and stitched back together — shard ranges are
    disjoint and ordered, so simple concatenation preserves key order.

    Every operation may raise {!Transact.Lock_client.Deadlock_victim}; the
    caller handles it by {!Coordinator.abort}ing the transaction. *)

type t

val create : Coordinator.t -> t

val coordinator : t -> Coordinator.t
val map : t -> Shard_map.t

val read : t -> Coordinator.xtxn -> int -> string option
val insert : t -> Coordinator.xtxn -> key:int -> payload:string -> unit
val delete : t -> Coordinator.xtxn -> int -> string option
val update : t -> Coordinator.xtxn -> key:int -> payload:string -> string option

val range_read : t -> Coordinator.xtxn -> lo:int -> hi:int -> Btree.Leaf.record list
(** The whole stitched range, materialized. *)

(** {2 Stitched cursors}

    A cursor pulls the scan shard by shard: each shard's segment is fetched
    (S-locking its leaves) only when the scan first reaches that shard, so
    an early-terminated scan never touches — or locks — the shards beyond
    its stopping point. *)

type cursor

val scan : t -> Coordinator.xtxn -> lo:int -> hi:int -> cursor
val next : cursor -> Btree.Leaf.record option
(** The next record in ascending key order, [None] at end of range. *)
