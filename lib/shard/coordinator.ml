module Txn = Transact.Txn
module Txn_mgr = Transact.Txn_mgr
module Lock_mgr = Lockmgr.Lock_mgr

(* Typed protocol events for the model checker: the commit-protocol steps
   whose ordering (ascending shard order, ack strictly after the last
   record) is what makes acked cross-shard transactions all-or-nothing. *)
type event =
  | Ev_begun of { x_id : int }
  | Ev_commit_record of { x_id : int; shard : int }
  | Ev_acked of { x_id : int }
  | Ev_aborted of { x_id : int }

type t = {
  map : Shard_map.t;
  stores : Store.t array;
  mutable begun : int;
  mutable committed : int;
  mutable aborted : int;
  mutable cross_shard_commits : int;
  mutable commit_records : int;
  mutable event_hook : (event -> unit) option;
}

(* Per-shard presence of one cross-shard transaction: the handle exists as
   soon as the shard is touched; [logged] flips when the first write logs
   Txn_begin there. *)
type slot = { tx : Txn.t; mutable logged : bool }

type xtxn = {
  coord : t;
  x_id : int;
  slots : slot option array;
  mutable x_state : [ `Active | `Committed | `Aborted ];
}

let create ~map ~stores =
  let n = Array.length stores in
  if n = 0 then invalid_arg "Coordinator.create: no stores";
  if Shard_map.shards map <> n then
    invalid_arg "Coordinator.create: shard map and store count disagree";
  Array.iteri
    (fun i (st : Store.t) ->
      if st.Store.shard <> (i, n) then
        invalid_arg
          (Printf.sprintf "Coordinator.create: stores.(%d) was assembled as shard (%d, %d)" i
             (fst st.Store.shard) (snd st.Store.shard)))
    stores;
  (* Make cross-shard waits-for cycles visible to every local detector:
     each manager's extra edges are the union of the OTHER managers' raw
     local edges (never their combined view — that would recurse). *)
  Array.iteri
    (fun i (st : Store.t) ->
      Lock_mgr.set_extra_edges st.Store.locks
        (Some
           (fun o ->
             let acc = ref [] in
             Array.iteri
               (fun j (st' : Store.t) ->
                 if j <> i then acc := Lock_mgr.wait_edges st'.Store.locks o @ !acc)
               stores;
             !acc)))
    stores;
  {
    map;
    stores;
    begun = 0;
    committed = 0;
    aborted = 0;
    cross_shard_commits = 0;
    commit_records = 0;
    event_hook = None;
  }

let set_event_hook t hook = t.event_hook <- hook
let emit t ev = match t.event_hook with None -> () | Some f -> f ev

let map t = t.map
let stores t = t.stores
let store t i = t.stores.(i)

let begin_x t =
  (* Shard 0's transaction manager is strided (residue 1 mod n), so an id
     minted here can never collide with any shard's local transaction ids —
     including shard 0's own, whose counter this very mint advances. *)
  let id = (Txn_mgr.fresh_owner t.stores.(0).Store.mgr).Txn.id in
  t.begun <- t.begun + 1;
  emit t (Ev_begun { x_id = id });
  { coord = t; x_id = id; slots = Array.make (Array.length t.stores) None; x_state = `Active }

let xid x = x.x_id

let check_active x fn =
  match x.x_state with
  | `Active -> ()
  | _ -> invalid_arg (Printf.sprintf "Coordinator.%s: transaction not active" fn)

let slot x i =
  match x.slots.(i) with
  | Some s -> s
  | None ->
    let s = { tx = Txn.make x.x_id; logged = false } in
    x.slots.(i) <- Some s;
    s

let txn_in x i =
  check_active x "txn_in";
  (slot x i).tx

let write_txn_in x i =
  check_active x "write_txn_in";
  let s = slot x i in
  if not s.logged then begin
    Txn_mgr.adopt x.coord.stores.(i).Store.mgr s.tx;
    s.logged <- true
  end;
  s.tx

let touched x =
  let acc = ref [] in
  Array.iteri (fun i s -> if s <> None then acc := i :: !acc) x.slots;
  List.rev !acc

let commit t x =
  check_active x "commit";
  (* Commit records land in ascending shard order; each force makes that
     shard's vote durable before the next shard is asked.  A crash mid-loop
     leaves the committed shards as a prefix; the ack below only happens
     once every shard has the record. *)
  let written = ref 0 in
  Array.iteri
    (fun i s ->
      match s with
      | Some s when s.logged ->
        (* Txn_mgr.commit appends + forces the record and releases this
           shard's locks under the global id. *)
        Txn_mgr.commit t.stores.(i).Store.mgr s.tx;
        t.commit_records <- t.commit_records + 1;
        emit t (Ev_commit_record { x_id = x.x_id; shard = i });
        incr written
      | Some s -> Txn_mgr.finish_read_only t.stores.(i).Store.mgr s.tx
      | None -> ())
    x.slots;
  x.x_state <- `Committed;
  emit t (Ev_acked { x_id = x.x_id });
  t.committed <- t.committed + 1;
  if !written >= 2 then t.cross_shard_commits <- t.cross_shard_commits + 1

let abort t x =
  check_active x "abort";
  Array.iteri
    (fun i s ->
      match s with
      | Some s when s.logged -> Txn_mgr.abort t.stores.(i).Store.mgr s.tx
      | Some s -> Txn_mgr.finish_read_only t.stores.(i).Store.mgr s.tx
      | None -> ())
    x.slots;
  x.x_state <- `Aborted;
  emit t (Ev_aborted { x_id = x.x_id });
  t.aborted <- t.aborted + 1

let finished x = x.x_state <> `Active

let sum_slots x f =
  Array.fold_left (fun acc -> function Some s -> acc + f s.tx | None -> acc) 0 x.slots

let blocked_ticks x = sum_slots x (fun tx -> tx.Txn.blocked_ticks)
let give_ups x = sum_slots x (fun tx -> tx.Txn.gave_up)

type stats = {
  begun : int;
  committed : int;
  aborted : int;
  cross_shard_commits : int;
  commit_records : int;
}

let stats (t : t) =
  {
    begun = t.begun;
    committed = t.committed;
    aborted = t.aborted;
    cross_shard_commits = t.cross_shard_commits;
    commit_records = t.commit_records;
  }

let register_obs (t : t) reg =
  Obs.Registry.gauge reg "coord.begun" (fun () -> t.begun);
  Obs.Registry.gauge reg "coord.committed" (fun () -> t.committed);
  Obs.Registry.gauge reg "coord.aborted" (fun () -> t.aborted);
  Obs.Registry.gauge reg "coord.cross_shard_commits" (fun () -> t.cross_shard_commits);
  Obs.Registry.gauge reg "coord.commit_records" (fun () -> t.commit_records)
