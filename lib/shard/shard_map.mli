(** Range partitioning of the integer keyspace into [n] shards.

    The map is an explicit boundary table [b_1 < b_2 < ... < b_{n-1}]:
    shard [0] owns [(-inf, b_1)], shard [i] owns [[b_i, b_{i+1})] and shard
    [n-1] owns [[b_{n-1}, +inf)].  Every key therefore routes to exactly one
    shard; routing is a binary search over the boundary table. *)

type t

val create : boundaries:int list -> t
(** [create ~boundaries] builds a map with [List.length boundaries + 1]
    shards.  Boundaries must be strictly increasing; raises
    [Invalid_argument] otherwise.  An empty list is the trivial one-shard
    map. *)

val uniform : shards:int -> key_space:int -> t
(** Evenly split [[0, key_space)] into [shards] ranges (boundaries at
    [i * key_space / shards]); keys outside [[0, key_space)] still route (to
    the first / last shard).  Raises [Invalid_argument] if [shards < 1] or
    ([shards > 1] and) [key_space < shards]. *)

val shards : t -> int
(** Number of shards ([>= 1]). *)

val boundaries : t -> int list
(** The boundary table, ascending ([shards t - 1] entries). *)

val owner : t -> int -> int
(** [owner t key] is the index of the unique shard whose range contains
    [key] — a binary search, O(log shards). *)

val range_of : t -> int -> int option * int option
(** [range_of t i] is shard [i]'s range as inclusive-exclusive optional
    bounds [(lo, hi)]: [None] means unbounded on that side. *)

val split : t -> lo:int -> hi:int -> (int * int * int) list
(** [split t ~lo ~hi] cuts the inclusive key range [[lo, hi]] at shard
    boundaries: [(shard, lo_i, hi_i)] segments in ascending shard (hence
    key) order, covering [[lo, hi]] exactly.  Empty if [lo > hi]. *)

val pp : Format.formatter -> t -> unit
