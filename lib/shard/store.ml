module Disk = Pager.Disk
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Journal = Transact.Journal
module Txn_mgr = Transact.Txn_mgr
module Tree = Btree.Tree
module Access = Btree.Access
module Record = Wal.Record

type t = {
  disk : Disk.t;
  backend : Pager.Backend.t;
  faults : Pager.Fault.t;
  pool : Buffer_pool.t;
  log : Wal.Log.t;
  journal : Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mgr : Txn_mgr.t;
  alloc : Alloc.t;
  tree : Tree.t;
  access : Access.t;
  health : Obs.Health.t;
  shard : int * int;
}

(* Observers (the benchmark probe) install hooks to see every store an
   experiment assembles internally.  Same composition contract as
   [Sched.Engine.add_create_hook]: ids, independent removal. *)
let assemble_hooks : (int * (t -> unit)) list ref = ref [] (* newest first *)
let next_hook_id = ref 0

let add_assemble_hook f =
  incr next_hook_id;
  let id = !next_hook_id in
  assemble_hooks := (id, f) :: !assemble_hooks;
  id

let remove_assemble_hook id =
  assemble_hooks := List.filter (fun (i, _) -> i <> id) !assemble_hooks

let wire_undo mgr tree access =
  Txn_mgr.set_logical_undo mgr (fun _txn action ->
      match action with
      | Record.Undo_insert { key } -> Tree.apply_delete tree key
      | Record.Undo_delete { key; payload } -> Tree.apply_insert tree ~key ~payload
      | Record.Undo_side op -> Access.run_side_undo access op
      | Record.Undo_phys _ ->
        (* Physical compensation is performed by the transaction manager
           itself; it never reaches the logical-undo hook. *)
        assert false)

let assemble ?faults ?(record_locking = false) ?(shard = (0, 1)) ~page_size ~leaf_pages
    ~capacity ~mk_tree () =
  let shard_i, shard_n = shard in
  if shard_n < 1 || shard_i < 0 || shard_i >= shard_n then
    invalid_arg "Store.assemble: shard index out of range";
  let disk = Disk.create ~page_size () in
  let faults = match faults with Some f -> f | None -> Pager.Fault.create () in
  (* Every page write and every log force goes through the one fault
     controller, so a simulated crash is a single authoritative event. *)
  let backend = Pager.Backend.faulty ~fault:faults (Pager.Backend.of_disk disk) in
  let pool =
    match capacity with
    | Some c -> Buffer_pool.create ~capacity:c backend
    | None -> Buffer_pool.create backend
  in
  let log = Wal.Log.create () in
  Wal.Log.set_fault log faults;
  let journal = Journal.create pool log in
  let locks = Lockmgr.Lock_mgr.create () in
  (* Shard i of n owns the owner-id residue class i+1 (mod n): ids minted by
     any shard never collide with any other shard's. *)
  let mgr = Txn_mgr.create ~first_id:(shard_i + 1) ~id_stride:shard_n journal locks in
  (* Tree-health tracking: the pool's dirty hook enqueues every mutated
     page; the refresher re-reads one page on demand and classifies it.
     Installed before [mk_tree] so a bulk load's page writes are captured —
     no initial full-tree scan is ever needed. *)
  let health = Obs.Health.create () in
  Buffer_pool.set_dirty_hook pool (Some (fun pid -> Obs.Health.note_dirty health pid));
  let usable = Btree.Layout.usable_bytes ~page_size:(Buffer_pool.page_size pool) in
  Obs.Health.set_refresher health (fun pid ->
      match Buffer_pool.get pool pid with
      | p ->
        if Btree.Leaf.is_leaf p then
          Some
            {
              Obs.Health.live = Btree.Leaf.live_bytes p;
              usable;
              next_pid = Btree.Leaf.next p;
              low_key = Btree.Leaf.low_mark p;
            }
        else None
      | exception _ ->
        (* Unreadable right now (e.g. a torn page awaiting recovery):
           treat as not-a-leaf; the next mutation re-enqueues it. *)
        None);
  let alloc = Alloc.create ~pool ~meta_pages:1 ~leaf_pages in
  Alloc.set_note alloc (Some (fun ev pid -> Obs.Health.note_alloc_event health ev pid));
  Obs.Health.set_free_probe health (fun () -> Alloc.free_count alloc Alloc.Leaf);
  let tree = mk_tree ~journal ~alloc in
  let access = Access.create ~tree ~mgr ~record_locking () in
  Access.set_health access (Some health);
  wire_undo mgr tree access;
  let t =
    { disk; backend; faults; pool; log; journal; locks; mgr; alloc; tree; access; health; shard }
  in
  List.iter (fun (_, f) -> f t) (List.rev !assemble_hooks);
  t

let create ?faults ?(page_size = 512) ?(leaf_pages = 1024) ?capacity ?record_locking ?shard ()
    =
  let t =
    assemble ?faults ?record_locking ?shard ~page_size ~leaf_pages ~capacity
      ~mk_tree:(fun ~journal ~alloc -> Tree.create ~journal ~alloc ~meta_pid:0 ~tree_name:1 ())
      ()
  in
  (* The freshly formatted tree is durable, as after CREATE DATABASE. *)
  Buffer_pool.flush_all t.pool;
  Wal.Log.force_all t.log;
  t

let load ?faults ?(page_size = 512) ?(leaf_pages = 1024) ?capacity ?record_locking ?shard
    ~fill ?internal_fill records =
  assemble ?faults ?record_locking ?shard ~page_size ~leaf_pages ~capacity
    ~mk_tree:(fun ~journal ~alloc ->
      Btree.Bulk.load ~journal ~alloc ~meta_pid:0 ~tree_name:1 ~fill ?internal_fill records)
    ()

let register_obs t reg =
  Lockmgr.Lock_mgr.register_obs t.locks reg;
  Buffer_pool.register_obs t.pool reg;
  Wal.Log.register_obs t.log reg;
  Pager.Fault.register_obs t.faults reg;
  Obs.Health.register_obs t.health reg;
  Btree.Olc.register_obs (Btree.Tree.olc t.tree) reg

let set_tracers t tracer =
  Lockmgr.Lock_mgr.set_tracer t.locks tracer;
  Buffer_pool.set_tracer t.pool tracer;
  Wal.Log.set_tracer t.log tracer

let checkpoint t ?(reorg_table = Record.empty_reorg_table) () =
  let body =
    Record.Checkpoint
      {
        active_txns = Txn_mgr.active_txns t.mgr;
        reorg = reorg_table;
        dirty_pages = Buffer_pool.dirty_pages t.pool;
      }
  in
  let lsn = Wal.Log.append t.log body in
  Wal.Log.force t.log lsn;
  (* Reclaim log entries below the oldest record recovery could need: the
     checkpoint itself, un-flushed page effects, active transactions' undo
     chains and the in-flight reorganization unit (if the caller passed a
     live table image).  Reorganizer-owned checkpoints go through
     [Core.Ctx.checkpoint], which additionally honours the pass-3 floor. *)
  let keep = ref lsn in
  let lower l = if l <> Wal.Lsn.nil && l < !keep then keep := l in
  (* rec_lsn 0 = dirty frame with no known lower bound: pin everything. *)
  (match Buffer_pool.min_rec_lsn t.pool with
  | Some l -> keep := min !keep (max 1 (Wal.Lsn.of_int64 l))
  | None -> ());
  (match Txn_mgr.oldest_begin_lsn t.mgr with Some l -> lower l | None -> ());
  if reorg_table.Record.rt_unit <> None then lower reorg_table.Record.rt_begin_lsn;
  Wal.Log.truncate t.log ~keep_from:!keep

(* Everything volatile in ONE store dies; the fault controller is the
   caller's business (it may be shared by several stores). *)
let volatile_teardown t =
  Wal.Log.crash t.log;
  Buffer_pool.crash t.pool;
  Lockmgr.Lock_mgr.clear t.locks;
  Txn_mgr.clear_active t.mgr;
  Access.clear_on_base_update t.access;
  (* In-memory health knowledge may be ahead of the surviving disk image:
     re-examine everything lazily after recovery. *)
  Obs.Health.invalidate_all t.health;
  (* Page versions are volatile too: recovery replays arbitrary structure,
     so advance the epoch wholesale — any optimistic descent in flight
     across the crash must fail validation and fall back. *)
  Btree.Olc.invalidate_all (Btree.Tree.olc t.tree)

let crash_now ?flush_seed t =
  (* The plan (if any) is done: nothing must trip while we tear things
     down. *)
  Pager.Fault.disarm t.faults;
  (* Legacy partial-flush mode: when the machine is still alive, let a
     seeded random subset of dirty pages reach disk first — the arbitrary
     disk states a buffer manager can leave behind.  flush_page honours the
     WAL rule and careful-writing order. *)
  if not (Pager.Fault.crashed t.faults) then begin
    match flush_seed with
    | Some seed ->
      let rng = Util.Rng.create seed in
      List.iter
        (fun pid -> if Util.Rng.chance rng 0.5 then Buffer_pool.flush_page t.pool pid)
        (Buffer_pool.dirty_pages t.pool)
    | None -> ()
  end;
  (* The authoritative crash event... *)
  Pager.Fault.kill t.faults;
  volatile_teardown t;
  (* ...and the reboot: the next I/O is recovery's. *)
  Pager.Fault.revive t.faults

let flush_all t =
  Buffer_pool.flush_all t.pool;
  Wal.Log.force_all t.log

let payload_for k = Printf.sprintf "value-%08d" k
