(** One per-tree storage bundle: disk, storage backend, fault controller,
    buffer pool, log, lock manager, transaction manager, allocator, B+-tree
    and the concurrent access layer, with the cross-module hooks installed
    (WAL rule, logical undo, fault injection, health tracking).

    Historically this record {e was} the database ([Sim.Db.t]); extracting it
    makes the bundle reusable — a sharded engine assembles one store per
    keyspace shard, each an independent lock/log/recovery domain, while
    [Sim.Db] remains the one-store special case.

    The buffer pool and the log both sit on the store's {!Pager.Fault.t}:
    arm a plan and the machine dies — {!Pager.Fault.Crash} — at the
    scheduled write or force boundary; then {!crash_now} makes the crash
    official and reboots.  Sharded assemblies pass one {e shared} fault
    controller to every store so a simulated crash remains a single
    machine-wide event. *)

type t = {
  disk : Pager.Disk.t;  (** the raw in-memory disk (for stats / post-mortems) *)
  backend : Pager.Backend.t;  (** the fault-injecting seam everything I/Os through *)
  faults : Pager.Fault.t;
  pool : Pager.Buffer_pool.t;
  log : Wal.Log.t;
  journal : Transact.Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mgr : Transact.Txn_mgr.t;
  alloc : Pager.Alloc.t;
  tree : Btree.Tree.t;
  access : Btree.Access.t;
  health : Obs.Health.t;
      (** incrementally-maintained tree health: fed by the pool's dirty
          hook, the allocator's churn notes, the side file's backlog and
          the reorganizer's unit/switch events — see {!Obs.Health} *)
  shard : int * int;
      (** [(index, count)] — this store's position in a sharded assembly;
          [(0, 1)] for a standalone database.  Drives the id lattices that
          keep owner ids globally disjoint across shards. *)
}

val assemble :
  ?faults:Pager.Fault.t ->
  ?record_locking:bool ->
  ?shard:int * int ->
  page_size:int ->
  leaf_pages:int ->
  capacity:int option ->
  mk_tree:(journal:Transact.Journal.t -> alloc:Pager.Alloc.t -> Btree.Tree.t) ->
  unit ->
  t
(** Wire every subsystem and install the cross-module hooks; [mk_tree] is
    called once the journal and allocator exist (empty-tree creation and
    bulk load differ only here).  [shard:(i, n)] puts the transaction
    manager's owner ids on the lattice [i+1 + k*n] (see
    {!Transact.Txn_mgr.create}).  Registered assemble hooks run last. *)

val create :
  ?faults:Pager.Fault.t ->
  ?page_size:int ->
  ?leaf_pages:int ->
  ?capacity:int ->
  ?record_locking:bool ->
  ?shard:int * int ->
  unit ->
  t
(** Empty tree, flushed durable (as after CREATE DATABASE).  Defaults:
    512-byte pages, 1024-page leaf zone, unbounded pool.  [faults] shares an
    existing fault controller; by default each store gets its own. *)

val load :
  ?faults:Pager.Fault.t ->
  ?page_size:int ->
  ?leaf_pages:int ->
  ?capacity:int ->
  ?record_locking:bool ->
  ?shard:int * int ->
  fill:float ->
  ?internal_fill:float ->
  (int * string) list ->
  t
(** Bulk-loaded tree (sorted records), flushed to disk. *)

val add_assemble_hook : (t -> unit) -> int
(** Register a global hook called with every store subsequently assembled —
    the benchmark harness uses it to find the stores an experiment builds
    internally.  Hooks compose (same contract as
    {!Sched.Engine.add_create_hook}); returns an id for
    {!remove_assemble_hook}. *)

val remove_assemble_hook : int -> unit
(** Remove one hook by id; unknown ids are ignored. *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register the lock manager's, buffer pool's, log's, fault controller's,
    tree-health and optimistic-read ([olc.*]) gauges.  Sharded assemblies pass a
    [Obs.Registry.prefixed reg "shard<i>."] view so every shard's metrics
    coexist in one registry. *)

val set_tracers : t -> Obs.Trace.t option -> unit
(** Point every subsystem's tracer hook at the same trace (or detach). *)

val checkpoint : t -> ?reorg_table:Wal.Record.reorg_table -> unit -> unit
(** Write and force a checkpoint record. *)

val volatile_teardown : t -> unit
(** Drop this store's volatile state as a crash would: log tail and
    buffer-pool frames vanish, locks and active transactions are cleared,
    in-memory health knowledge and optimistic-read page versions are
    invalidated.  Does {e not} touch the fault
    controller — callers that share one controller across several stores
    (sharded crash) kill/revive it once around tearing every store down. *)

val crash_now : ?flush_seed:int -> t -> unit
(** The authoritative crash/reboot event for a standalone store: the fault
    controller is disarmed, (optionally, when the machine is still alive and
    [flush_seed] is given) a seeded random half of the dirty pages is
    flushed, then kill / {!volatile_teardown} / revive.  Combine with
    [Reorg.Recovery.restart] to come back up. *)

val flush_all : t -> unit

val payload_for : int -> string
(** Canonical test payload for a key. *)
