(** Small descriptive-statistics helpers for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** Summary of a sample. *)

val empty_summary : summary
(** The all-zero summary: what {!summarize} returns for the empty sample. *)

val summarize : float array -> summary
(** Descriptive summary.  The empty sample yields {!empty_summary} — an
    empty histogram bucket must never crash a metrics dump. *)

val summarize_opt : float array -> summary option
(** [None] on the empty sample, for callers that must distinguish "no data"
    from an all-zero distribution. *)

val mean : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [[0,100]], nearest-rank on a sorted copy. *)

val ratio : float -> float -> float
(** [ratio a b] = [a /. b], or [nan] when [b = 0]. *)

val pp_summary : Format.formatter -> summary -> unit
