type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
  sorted.(idx)

(* The well-defined summary of the empty sample: everything zero.  Metrics
   dumps summarize histograms that may never have been fed (an experiment
   with swaps disabled, a crash before pass 3) and must not crash. *)
let empty_summary =
  { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }

let summarize xs =
  let n = Array.length xs in
  if n = 0 then empty_summary
  else
  let m = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int n
  in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  {
    count = n;
    mean = m;
    stddev = sqrt var;
    min = mn;
    max = mx;
    p50 = percentile xs 50.0;
    p90 = percentile xs 90.0;
    p99 = percentile xs 99.0;
  }

(* [None] for the empty sample, for callers that want to distinguish "no
   data" from a legitimately all-zero distribution. *)
let summarize_opt xs = if Array.length xs = 0 then None else Some (summarize xs)

let ratio a b = if b = 0.0 then nan else a /. b

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
