(** Concurrent user load: readers and updaters running against the tree
    while the reorganizer works — the traffic the paper's concurrency claims
    are about.

    Each user is a cooperative process issuing transactions drawn from an
    operation mix.  Deadlock victims abort and count; the RX give-up
    protocol's retries are accounted per transaction.  Users stop after a
    fixed number of operations or when a stop predicate fires (e.g. "the
    reorganizer finished"), whichever comes first. *)

type mix = {
  read_pct : float;
  insert_pct : float;
  delete_pct : float;
  range_pct : float;  (** fractions must sum to <= 1; remainder = reads *)
  range_width : int;  (** key span of range queries *)
}

val read_only : mix

val read_mostly : mix
(** 80% reads, 10% inserts, 10% deletes. *)

val update_heavy : mix
(** 40% reads, 30% inserts, 30% deletes. *)

type stats = {
  mutable reads : int;
  mutable range_scans : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable committed : int;
  mutable aborted : int;  (** deadlock victims *)
  mutable give_ups : int;  (** RX give-up retries (§4.1.2) *)
  mutable blocked_ticks : int;  (** total ticks spent waiting on locks *)
  mutable op_ticks : int;  (** total latency over completed operations *)
  mutable max_op_ticks : int;
}

val create_stats : unit -> stats

val spawn_loop :
  Sched.Engine.t ->
  name_prefix:string ->
  seed:int ->
  users:int ->
  ops_per_user:int ->
  ?think:int ->
  ?start:(unit -> bool) ->
  ?stop:(unit -> bool) ->
  (user:int -> rng:Util.Rng.t -> unit) ->
  unit
(** The user-process skeleton every client flavor shares: one process per
    user with its own seeded rng (on a fixed lattice, so adding users never
    perturbs existing streams), a start barrier, a stop predicate checked
    between operations, and a think-time sleep (default 1 tick) after each.
    [body ~user ~rng] runs one operation. *)

val spawn_users :
  Sched.Engine.t ->
  access:Btree.Access.t ->
  seed:int ->
  users:int ->
  ops_per_user:int ->
  ?think:int ->
  ?start:(unit -> bool) ->
  ?stop:(unit -> bool) ->
  ?key_space:int ->
  mix:mix ->
  unit ->
  stats
(** Spawns the user processes on the engine (they run when the caller runs
    it) and returns the shared stats they fill in.  [key_space] bounds the
    keys drawn (default 4096); existing keys are assumed even (the
    convention of the workload generators), inserts draw odd keys. *)

val spawn_cross_users :
  Sched.Engine.t ->
  router:Shard.Router.t ->
  seed:int ->
  users:int ->
  ops_per_user:int ->
  ?think:int ->
  ?start:(unit -> bool) ->
  ?stop:(unit -> bool) ->
  ?key_space:int ->
  ?xspan:int ->
  mix:mix ->
  unit ->
  stats
(** Like {!spawn_users}, but every operation is one {!Shard.Coordinator}
    transaction issued through the router: point ops route to the owning
    shard, range scans stitch across boundaries, and each write transaction
    touches [xspan] (default 2) random keys so most of them span shards and
    commit through the shard-ordered protocol.  [aborted] counts deadlock
    victims across the whole assembly. *)
