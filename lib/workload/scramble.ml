module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Leaf = Btree.Leaf
module Inode = Btree.Inode
module Tree = Btree.Tree

let whole_page tree pid f =
  let size = Buffer_pool.page_size (Tree.pool tree) in
  Transact.Journal.physical (Tree.journal tree) ~page:pid ~off:0 ~len:size f

(* Locate the entry by its key (= the leaf's low mark): matching by child
   would be ambiguous mid-swap when both leaves share a parent. *)
let repoint_parent tree ~entry_key ~to_ =
  match Tree.parent_of_leaf tree entry_key with
  | None -> ()
  | Some parent ->
    whole_page tree parent (fun p ->
        match Inode.find_key p entry_key with
        | Some i ->
          let e = Inode.entry_at p i in
          Inode.update_at p i { e with Inode.child = to_ }
        | None -> ())

let swap_placement tree a b =
  if a <> b then begin
    let page = Tree.page tree in
    let pa = page a and pb = page b in
    if not (Leaf.is_leaf pa && Leaf.is_leaf pb) then
      invalid_arg "Scramble.swap_placement: not leaves";
    let ra = Leaf.records pa and rb = Leaf.records pb in
    let la = Leaf.low_mark pa and lb = Leaf.low_mark pb in
    let linka = (Leaf.prev pa, Leaf.next pa) and linkb = (Leaf.prev pb, Leaf.next pb) in
    let tr = function Some p when p = a -> Some b | Some p when p = b -> Some a | x -> x in
    (* Parents first (the descent still finds the old children). *)
    repoint_parent tree ~entry_key:la ~to_:b;
    repoint_parent tree ~entry_key:lb ~to_:a;
    whole_page tree b (fun p ->
        Leaf.init p ~low_mark:la;
        List.iter (fun r -> assert (Leaf.insert p r)) ra;
        Leaf.set_prev p (tr (fst linka));
        Leaf.set_next p (tr (snd linka)));
    whole_page tree a (fun p ->
        Leaf.init p ~low_mark:lb;
        List.iter (fun r -> assert (Leaf.insert p r)) rb;
        Leaf.set_prev p (tr (fst linkb));
        Leaf.set_next p (tr (snd linkb)));
    let fix n ~prev ~to_ =
      match n with
      | Some p when p <> a && p <> b ->
        whole_page tree p (fun q ->
            if prev then Leaf.set_prev q (Some to_) else Leaf.set_next q (Some to_))
      | _ -> ()
    in
    fix (fst linka) ~prev:false ~to_:b;
    fix (snd linka) ~prev:true ~to_:b;
    fix (fst linkb) ~prev:false ~to_:a;
    fix (snd linkb) ~prev:true ~to_:a
  end

let move_placement tree ~org ~dest =
  let page = Tree.page tree in
  let po = page org in
  if not (Leaf.is_leaf po) then invalid_arg "Scramble.move_placement: not a leaf";
  let records = Leaf.records po in
  let low = Leaf.low_mark po in
  let prev = Leaf.prev po and next = Leaf.next po in
  Pager.Alloc.alloc_specific (Tree.alloc tree) dest;
  repoint_parent tree ~entry_key:low ~to_:dest;
  whole_page tree dest (fun p ->
      Leaf.init p ~low_mark:low;
      List.iter (fun r -> assert (Leaf.insert p r)) records;
      Leaf.set_prev p prev;
      Leaf.set_next p next);
  (match prev with
  | Some q -> whole_page tree q (fun p -> Leaf.set_next p (Some dest))
  | None -> ());
  (match next with
  | Some q -> whole_page tree q (fun p -> Leaf.set_prev p (Some dest))
  | None -> ());
  whole_page tree org (fun p -> Page.set_kind p Page.kind_free);
  Pager.Alloc.release (Tree.alloc tree) org

let spread_leaves tree rng ~span_factor =
  if span_factor < 1.0 then invalid_arg "Scramble.spread_leaves";
  let alloc = Tree.alloc tree in
  let leaves = Array.of_list (Tree.leaf_pids tree) in
  let n = Array.length leaves in
  let lo, hi = Pager.Alloc.leaf_zone alloc in
  let span = min (hi - lo) (int_of_float (span_factor *. float_of_int n)) in
  (* Random distinct target slots for each key-order position. *)
  let slots = Util.Rng.permutation rng span in
  let targets = Array.init n (fun i -> lo + slots.(i)) in
  (* Place leaf i at targets.(i): move when the slot is free, swap when
     another leaf occupies it. *)
  let pos = Hashtbl.create n in
  Array.iteri (fun i pid -> Hashtbl.replace pos pid i) leaves;
  for i = 0 to n - 1 do
    let current = leaves.(i) in
    let target = targets.(i) in
    if current <> target then
      if Pager.Alloc.is_free alloc target then begin
        move_placement tree ~org:current ~dest:target;
        Hashtbl.remove pos current;
        Hashtbl.replace pos target i;
        leaves.(i) <- target
      end
      else begin
        match Hashtbl.find_opt pos target with
        | Some j ->
          swap_placement tree current target;
          Hashtbl.replace pos target i;
          Hashtbl.replace pos current j;
          leaves.(i) <- target;
          leaves.(j) <- current
        | None ->
          (* Occupied by a non-leaf page (should not happen in the leaf
             zone); leave this leaf where it is. *)
          ()
      end
  done

let shuffle_leaves tree rng =
  let leaves = Array.of_list (Tree.leaf_pids tree) in
  let n = Array.length leaves in
  (* Fisher–Yates over physical placements.  [leaves.(i)] tracks the page
     currently holding the i-th (key-order) leaf. *)
  for i = n - 1 downto 1 do
    let j = Util.Rng.int rng (i + 1) in
    if i <> j then begin
      swap_placement tree leaves.(i) leaves.(j);
      let tmp = leaves.(i) in
      leaves.(i) <- leaves.(j);
      leaves.(j) <- tmp
    end
  done
