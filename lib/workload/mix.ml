module Engine = Sched.Engine
module Access = Btree.Access
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr
module Lock_client = Transact.Lock_client

type mix = {
  read_pct : float;
  insert_pct : float;
  delete_pct : float;
  range_pct : float;
  range_width : int;
}

let read_only =
  { read_pct = 1.0; insert_pct = 0.0; delete_pct = 0.0; range_pct = 0.0; range_width = 64 }

let read_mostly =
  { read_pct = 0.8; insert_pct = 0.1; delete_pct = 0.1; range_pct = 0.0; range_width = 64 }

let update_heavy =
  { read_pct = 0.4; insert_pct = 0.3; delete_pct = 0.3; range_pct = 0.0; range_width = 64 }

type stats = {
  mutable reads : int;
  mutable range_scans : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable committed : int;
  mutable aborted : int;
  mutable give_ups : int;
  mutable blocked_ticks : int;
  mutable op_ticks : int;
  mutable max_op_ticks : int;
}

let create_stats () =
  {
    reads = 0;
    range_scans = 0;
    inserts = 0;
    deletes = 0;
    committed = 0;
    aborted = 0;
    give_ups = 0;
    blocked_ticks = 0;
    op_ticks = 0;
    max_op_ticks = 0;
  }

type op = Read | Range | Insert | Delete

let pick_op rng mix =
  let x = Util.Rng.float rng 1.0 in
  if x < mix.insert_pct then Insert
  else if x < mix.insert_pct +. mix.delete_pct then Delete
  else if x < mix.insert_pct +. mix.delete_pct +. mix.range_pct then Range
  else Read

(* The user-process skeleton shared by every client flavor: one process per
   user, a per-user rng on a fixed lattice (so adding users never changes
   the streams of existing ones), a start barrier, and a stop predicate
   checked between operations.  [body ~user ~rng] runs one operation. *)
let spawn_loop eng ~name_prefix ~seed ~users ~ops_per_user ?(think = 1)
    ?(start = fun () -> true) ?(stop = fun () -> false) body =
  for u = 0 to users - 1 do
    Engine.spawn eng ~name:(Printf.sprintf "%s-%d" name_prefix u) (fun () ->
        let rng = Util.Rng.create (seed + (u * 7919)) in
        while not (start ()) && not (stop ()) do
          Engine.sleep 1
        done;
        let ops = ref 0 in
        while !ops < ops_per_user && not (stop ()) do
          incr ops;
          body ~user:u ~rng;
          if think > 0 then Engine.sleep think else Engine.yield ()
        done)
  done

let spawn_users eng ~access ~seed ~users ~ops_per_user ?think ?start ?stop
    ?(key_space = 4096) ~mix () =
  let stats = create_stats () in
  let mgr = Access.mgr access in
  spawn_loop eng ~name_prefix:"user" ~seed ~users ~ops_per_user ?think ?start ?stop
    (fun ~user:_ ~rng ->
      let op = pick_op rng mix in
      let started = Engine.current_time () in
      let tx =
        match op with
        | Read | Range -> Txn_mgr.fresh_owner mgr
        | Insert | Delete -> Txn_mgr.begin_txn mgr
      in
      (try
         (match op with
         | Read ->
           let k = 2 * Util.Rng.int rng key_space in
           ignore (Access.read access ~txn:tx k);
           stats.reads <- stats.reads + 1;
           Txn_mgr.finish_read_only mgr tx
         | Range ->
           let lo = 2 * Util.Rng.int rng key_space in
           ignore (Access.range_read access ~txn:tx ~lo ~hi:(lo + mix.range_width));
           stats.range_scans <- stats.range_scans + 1;
           Txn_mgr.finish_read_only mgr tx
         | Insert ->
           let k = (2 * Util.Rng.int rng key_space) + 1 in
           (try Access.insert access ~txn:tx ~key:k ~payload:(Sparse.payload k)
            with Tree.Duplicate_key _ -> ());
           stats.inserts <- stats.inserts + 1;
           Txn_mgr.commit mgr tx
         | Delete ->
           let k = 2 * Util.Rng.int rng key_space in
           ignore (Access.delete access ~txn:tx k);
           stats.deletes <- stats.deletes + 1;
           Txn_mgr.commit mgr tx);
         stats.committed <- stats.committed + 1;
         let took = Engine.current_time () - started in
         stats.op_ticks <- stats.op_ticks + took;
         if took > stats.max_op_ticks then stats.max_op_ticks <- took
       with Lock_client.Deadlock_victim ->
         stats.aborted <- stats.aborted + 1;
         (match op with
         | Read | Range -> Txn_mgr.finish_read_only mgr tx
         | Insert | Delete -> Txn_mgr.abort mgr tx));
      stats.give_ups <- stats.give_ups + tx.Transact.Txn.gave_up;
      stats.blocked_ticks <- stats.blocked_ticks + tx.Transact.Txn.blocked_ticks);
  stats

(* Cross-shard clients: same skeleton, but every operation is a
   [Shard.Coordinator] transaction through the router.  Writes touch
   [xspan] random keys in one transaction, so most write transactions span
   several shards and exercise the shard-ordered commit protocol; range
   scans use the stitched cursor and so cross boundaries naturally. *)
let spawn_cross_users eng ~router ~seed ~users ~ops_per_user ?think ?start ?stop
    ?(key_space = 4096) ?(xspan = 2) ~mix () =
  let stats = create_stats () in
  let coord = Shard.Router.coordinator router in
  spawn_loop eng ~name_prefix:"xuser" ~seed ~users ~ops_per_user ?think ?start ?stop
    (fun ~user:_ ~rng ->
      let op = pick_op rng mix in
      let started = Engine.current_time () in
      let x = Shard.Coordinator.begin_x coord in
      (try
         (match op with
         | Read ->
           let k = 2 * Util.Rng.int rng key_space in
           ignore (Shard.Router.read router x k);
           stats.reads <- stats.reads + 1
         | Range ->
           let lo = 2 * Util.Rng.int rng key_space in
           ignore (Shard.Router.range_read router x ~lo ~hi:(lo + mix.range_width));
           stats.range_scans <- stats.range_scans + 1
         | Insert ->
           for _ = 1 to xspan do
             let k = (2 * Util.Rng.int rng key_space) + 1 in
             try Shard.Router.insert router x ~key:k ~payload:(Sparse.payload k)
             with Tree.Duplicate_key _ -> ()
           done;
           stats.inserts <- stats.inserts + 1
         | Delete ->
           for _ = 1 to xspan do
             let k = 2 * Util.Rng.int rng key_space in
             ignore (Shard.Router.delete router x k)
           done;
           stats.deletes <- stats.deletes + 1);
         Shard.Coordinator.commit coord x;
         stats.committed <- stats.committed + 1;
         let took = Engine.current_time () - started in
         stats.op_ticks <- stats.op_ticks + took;
         if took > stats.max_op_ticks then stats.max_op_ticks <- took
       with Lock_client.Deadlock_victim ->
         stats.aborted <- stats.aborted + 1;
         Shard.Coordinator.abort coord x);
      stats.give_ups <- stats.give_ups + Shard.Coordinator.give_ups x;
      stats.blocked_ticks <- stats.blocked_ticks + Shard.Coordinator.blocked_ticks x);
  stats
