(* The paper's Table 1, written out as a literal boolean matrix — deliberately
   NOT computed by calling [Lockmgr.Mode]: the whole point is that the model
   and the implementation can only agree by both being right.  Blank cells of
   the paper (mode pairs that never meet on one resource) carry the same
   conservative fill the implementation documents: RX and X conflict with
   everything, RS is compatible with whatever does not signal it. *)

module Mode = Lockmgr.Mode

let order = [| Mode.IS; Mode.IX; Mode.S; Mode.X; Mode.R; Mode.RX; Mode.RS |]

let idx = function
  | Mode.IS -> 0
  | Mode.IX -> 1
  | Mode.S -> 2
  | Mode.X -> 3
  | Mode.R -> 4
  | Mode.RX -> 5
  | Mode.RS -> 6

(* Row = granted, column = requested, in [order]:      IS     IX     S      X      R      RX     RS  *)
let matrix =
  [|
    (* IS *) [| true;  true;  true;  false; true;  false; true |];
    (* IX *) [| true;  true;  false; false; false; false; true |];
    (* S  *) [| true;  false; true;  false; true;  false; true |];
    (* X  *) [| false; false; false; false; false; false; false |];
    (* R  *) [| true;  false; true;  false; true;  false; false |];
    (* RX *) [| false; false; false; false; false; false; false |];
    (* RS *) [| true;  true;  true;  false; false; false; false |];
  |]

let compatible granted requested = matrix.(idx granted).(idx requested)

(* Lock subsumption: which held mode covers which request without a new
   acquisition.  Mirrors the implementation's contract literally. *)
let covers ~held ~need =
  held = need
  ||
  match (held, need) with
  | Mode.X, _ -> true
  | Mode.S, Mode.IS -> true
  | Mode.IX, Mode.IS -> true
  | _ -> false

(* Legal strengthening conversions: the ones the system performs. *)
let upgrade_legal ~from_ ~to_ =
  match (from_, to_) with
  | Mode.IS, (Mode.IX | Mode.S | Mode.X) -> true
  | Mode.IX, Mode.X -> true
  | Mode.S, Mode.X -> true
  | Mode.R, Mode.X -> true
  | _ -> false
