(** A literal, independent transcription of the paper's Table 1 (plus the
    covers/upgrade contracts), used by {!Lock_model} to judge the real lock
    manager's decisions.  It intentionally never calls {!Lockmgr.Mode}'s own
    predicates — model and implementation can only agree by both matching the
    paper. *)

val order : Lockmgr.Mode.t array
(** Row/column order of {!matrix}: IS, IX, S, X, R, RX, RS. *)

val matrix : bool array array
(** [matrix.(granted).(requested)] in {!order} indices. *)

val compatible : Lockmgr.Mode.t -> Lockmgr.Mode.t -> bool
(** [compatible granted requested] — the Table-1 cell. *)

val covers : held:Lockmgr.Mode.t -> need:Lockmgr.Mode.t -> bool
val upgrade_legal : from_:Lockmgr.Mode.t -> to_:Lockmgr.Mode.t -> bool
