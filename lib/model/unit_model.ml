(* Model 2: the §5 reorganization-unit lifecycle, as two machines.

   [lifecycle] has one track per (shard, unit id): BEGIN opens the unit
   (normally, or through recovery's completion path), MOVE/MODIFY records
   carry strictly increasing LSNs, the §5.2 give-up flips it into an undoing
   state whose reverse moves are still fenced, and END closes it — after
   which any further event for that unit id is a violation.

   [actor] has one track per (shard, reorganizer actor): at most one open
   unit at a time, and unit ids of freshly begun units strictly ascend (the
   system table's unit-id fence) — recovery-finished foreign units are
   tracked for exclusivity but exempt from the id fence, since they were
   minted by the pre-crash actor. *)

module Prot = Reorg.Prot

type phase = Unstarted | Active | Undoing | Recovering | Ended

type state = { phase : phase; last_lsn : int }

let initial = { phase = Unstarted; last_lsn = 0 }

let phase_to_string = function
  | Unstarted -> "unstarted"
  | Active -> "active"
  | Undoing -> "undoing"
  | Recovering -> "recovering"
  | Ended -> "ended"

let pp_state st = Printf.sprintf "%s lsn=%d" (phase_to_string st.phase) st.last_lsn

let open_phase = function Active | Undoing | Recovering -> true | Unstarted | Ended -> false

let lsn_of = function
  | Prot.Unit_begin { lsn; _ } | Prot.Unit_move { lsn; _ } | Prot.Unit_modify { lsn; _ }
  | Prot.Unit_end { lsn; _ } ->
    Some lsn
  | _ -> None

let fenced st ev = match lsn_of ev with Some l -> l > st.last_lsn | None -> true

let advance st ev =
  match lsn_of ev with Some l -> { st with last_lsn = l } | None -> st

let lifecycle : (state, Prot.event) Machine.def =
  {
    Machine.d_name = "unit-lifecycle";
    d_initial = initial;
    d_pp_state = pp_state;
    d_pp_event = Prot.to_string;
    d_rules =
      [
        Machine.rule "begin"
          ~applies:(fun _ ev -> match ev with Prot.Unit_begin _ -> true | _ -> false)
          ~guards:
            [
              ("unit-not-already-begun", fun st _ -> st.phase = Unstarted);
              ( "unit-names-its-pages",
                fun _ ev ->
                  match ev with
                  | Prot.Unit_begin { bases; leaves; _ } -> bases <> [] && leaves <> []
                  | _ -> false );
            ]
          ~next:(fun st ev -> advance { st with phase = Active } ev);
        Machine.rule "recover"
          ~applies:(fun _ ev -> match ev with Prot.Unit_recover _ -> true | _ -> false)
          ~guards:[ ("recovery-opens-a-fresh-track", fun st _ -> st.phase = Unstarted) ]
          ~next:(fun st _ -> { st with phase = Recovering });
        Machine.rule "move"
          ~applies:(fun _ ev -> match ev with Prot.Unit_move _ -> true | _ -> false)
          ~guards:
            [
              ("move-inside-open-unit", fun st _ -> open_phase st.phase);
              ("move-lsn-ascends", fun st ev -> fenced st ev);
              ( "move-changes-page",
                fun _ ev ->
                  match ev with Prot.Unit_move { org; dest; _ } -> org <> dest | _ -> false );
            ]
          ~next:advance;
        Machine.rule "modify"
          ~applies:(fun _ ev -> match ev with Prot.Unit_modify _ -> true | _ -> false)
          ~guards:
            [
              ("modify-inside-open-unit", fun st _ -> open_phase st.phase);
              ("modify-lsn-ascends", fun st ev -> fenced st ev);
            ]
          ~next:advance;
        Machine.rule "undo"
          ~applies:(fun _ ev -> match ev with Prot.Unit_undo _ -> true | _ -> false)
          ~guards:[ ("give-up-from-active-unit", fun st _ -> st.phase = Active) ]
          ~next:(fun st _ -> { st with phase = Undoing });
        Machine.rule "end"
          ~applies:(fun _ ev -> match ev with Prot.Unit_end _ -> true | _ -> false)
          ~guards:
            [
              ("end-closes-open-unit", fun st _ -> open_phase st.phase);
              ("end-lsn-ascends", fun st ev -> fenced st ev);
            ]
          ~next:(fun st ev -> advance { st with phase = Ended } ev);
      ];
    d_invariants = [];
    (* A unit track, once it exists, must reach END: a BEGIN left open at the
       end of a (non-crashed) execution is exactly the §5.1 invariant the
       torture harness also checks in the stable log. *)
    d_accepting = (fun st -> st.phase = Ended);
  }

(* ------------------------------------------------------------------ *)

type actor_state = { active_unit : int option; last_begun : int }

let actor_initial = { active_unit = None; last_begun = 0 }

let pp_actor st =
  Printf.sprintf "active=%s last_begun=%d"
    (match st.active_unit with Some u -> string_of_int u | None -> "-")
    st.last_begun

let unit_of = function
  | Prot.Unit_begin { unit_id; _ }
  | Prot.Unit_move { unit_id; _ }
  | Prot.Unit_modify { unit_id; _ }
  | Prot.Unit_undo { unit_id; _ }
  | Prot.Unit_end { unit_id; _ }
  | Prot.Unit_recover { unit_id; _ } ->
    Some unit_id
  | _ -> None

let on_current st ev = match (st.active_unit, unit_of ev) with Some a, Some u -> a = u | _ -> false

let actor : (actor_state, Prot.event) Machine.def =
  {
    Machine.d_name = "unit-actor";
    d_initial = actor_initial;
    d_pp_state = pp_actor;
    d_pp_event = Prot.to_string;
    d_rules =
      [
        Machine.rule "begin"
          ~applies:(fun _ ev -> match ev with Prot.Unit_begin _ -> true | _ -> false)
          ~guards:
            [
              ("one-unit-at-a-time", fun st _ -> st.active_unit = None);
              ( "unit-id-fence-ascends",
                fun st ev ->
                  match ev with
                  | Prot.Unit_begin { unit_id; _ } -> unit_id > st.last_begun
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Prot.Unit_begin { unit_id; _ } ->
              { active_unit = Some unit_id; last_begun = unit_id }
            | _ -> st);
        Machine.rule "recover"
          ~applies:(fun _ ev -> match ev with Prot.Unit_recover _ -> true | _ -> false)
          ~guards:[ ("one-unit-at-a-time", fun st _ -> st.active_unit = None) ]
          ~next:(fun st ev ->
            match ev with
            | Prot.Unit_recover { unit_id; _ } -> { st with active_unit = Some unit_id }
            | _ -> st);
        Machine.rule "work"
          ~applies:(fun _ ev ->
            match ev with
            | Prot.Unit_move _ | Prot.Unit_modify _ | Prot.Unit_undo _ -> true
            | _ -> false)
          ~guards:[ ("work-targets-the-open-unit", on_current) ]
          ~next:(fun st _ -> st);
        Machine.rule "end"
          ~applies:(fun _ ev -> match ev with Prot.Unit_end _ -> true | _ -> false)
          ~guards:[ ("end-targets-the-open-unit", on_current) ]
          ~next:(fun st _ -> { st with active_unit = None });
      ];
    d_invariants = [];
    d_accepting = (fun st -> st.active_unit = None);
  }
