(* Model 1: the Table-1 lock protocol, one machine track per (shard,
   resource).  The state is the model's own view of the resource — who holds
   which modes with what multiplicity, who is queued — rebuilt purely from
   the {!Lockmgr.Lock_mgr.event} stream; every grant decision of the real
   lock manager is judged against the literal {!Table1} matrix, so a wrong
   compatibility answer (or a grant that jumps a queue it shouldn't) is a
   guard violation even though the implementation was internally
   consistent. *)

module Mode = Lockmgr.Mode
module Lock_mgr = Lockmgr.Lock_mgr

type state = {
  holders : (int * (Mode.t * int) list) list; (* owner -> held modes with multiplicity *)
  queue : (int * Mode.t * bool) list; (* owner, mode, instant; FIFO oldest first *)
}

let initial = { holders = []; queue = [] }

let holder_modes st o = match List.assoc_opt o st.holders with Some ms -> ms | None -> []

(* Owners holding [m] (with any multiplicity). *)
let owners_of st m =
  List.filter_map (fun (o, ms) -> if List.mem_assoc m ms then Some o else None) st.holders

(* The Table-1 grant test the implementation must agree with: every held mode
   that conflicts with the request must be held by the requester alone (its
   own holdings never block a conversion). *)
let grantable st ~owner ~mode =
  List.for_all
    (fun (_, ms) ->
      List.for_all (fun (m, _) -> Table1.compatible m mode || owners_of st m = [ owner ]) ms)
    st.holders

let queued st o = List.exists (fun (o', _, _) -> o' = o) st.queue

let queued_as st o mode instant =
  List.exists (fun (o', m, i) -> o' = o && m = mode && i = instant) st.queue

let drop_queued st o = { st with queue = List.filter (fun (o', _, _) -> o' <> o) st.queue }

let add_holding st o mode =
  let ms = holder_modes st o in
  let ms' =
    match List.assoc_opt mode ms with
    | Some n -> (mode, n + 1) :: List.remove_assoc mode ms
    | None -> (mode, 1) :: ms
  in
  { st with holders = (o, ms') :: List.remove_assoc o st.holders }

let drop_holding st o mode =
  let ms = holder_modes st o in
  match List.assoc_opt mode ms with
  | None -> st
  | Some n ->
    let ms' = if n > 1 then (mode, n - 1) :: List.remove_assoc mode ms else List.remove_assoc mode ms in
    {
      st with
      holders =
        (if ms' = [] then List.remove_assoc o st.holders
         else (o, ms') :: List.remove_assoc o st.holders);
    }

let pp_state st =
  let hs =
    List.map
      (fun (o, ms) ->
        Printf.sprintf "%d:%s" o
          (String.concat "+"
             (List.map
                (fun (m, n) ->
                  if n = 1 then Mode.to_string m else Printf.sprintf "%sx%d" (Mode.to_string m) n)
                ms)))
      (List.sort compare st.holders)
  in
  let qs =
    List.map
      (fun (o, m, i) -> Printf.sprintf "%d:%s%s" o (Mode.to_string m) (if i then "?" else ""))
      st.queue
  in
  Printf.sprintf "holders=[%s] queue=[%s]" (String.concat " " hs) (String.concat " " qs)

let pp_event = function
  | Lock_mgr.Ev_granted { owner; mode; after_wait; _ } ->
    Printf.sprintf "granted owner=%d mode=%s%s" owner (Mode.to_string mode)
      (if after_wait then " (after wait)" else "")
  | Lock_mgr.Ev_queued { owner; mode; instant; conversion; _ } ->
    Printf.sprintf "queued owner=%d mode=%s%s%s" owner (Mode.to_string mode)
      (if instant then " instant" else "")
      (if conversion then " conversion" else "")
  | Lock_mgr.Ev_signalled { owner; mode; _ } ->
    Printf.sprintf "signalled owner=%d mode=%s" owner (Mode.to_string mode)
  | Lock_mgr.Ev_victim { owner; mode; forced; _ } ->
    Printf.sprintf "victim owner=%d mode=%s%s" owner (Mode.to_string mode)
      (if forced then " (forced)" else "")
  | Lock_mgr.Ev_dequeued { owner; mode; _ } ->
    Printf.sprintf "dequeued owner=%d mode=%s" owner (Mode.to_string mode)
  | Lock_mgr.Ev_released { owner; mode; _ } ->
    Printf.sprintf "released owner=%d mode=%s" owner (Mode.to_string mode)

let def : (state, Lock_mgr.event) Machine.def =
  {
    Machine.d_name = "table1-locks";
    d_initial = initial;
    d_pp_state = pp_state;
    d_pp_event = pp_event;
    d_rules =
      [
        Machine.rule "grant"
          ~applies:(fun _ ev -> match ev with Lock_mgr.Ev_granted _ -> true | _ -> false)
          ~guards:
            [
              ( "table1-compatible-with-other-holders",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_granted { owner; mode; _ } -> grantable st ~owner ~mode
                  | _ -> false );
              ( "grant-after-wait-was-queued",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_granted { owner; mode; after_wait; _ } ->
                    (not after_wait) || queued_as st owner mode false
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Lock_mgr.Ev_granted { owner; mode; after_wait; _ } ->
              let st = if after_wait then drop_queued st owner else st in
              add_holding st owner mode
            | _ -> st);
        Machine.rule "queue"
          ~applies:(fun _ ev -> match ev with Lock_mgr.Ev_queued _ -> true | _ -> false)
          ~guards:
            [
              ( "conversion-flag-matches-holdings",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_queued { owner; conversion; _ } ->
                    conversion = (holder_modes st owner <> [])
                  | _ -> false );
              ( "wait-is-justified",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_queued { owner; mode; conversion; _ } ->
                    let holder_conflict =
                      List.exists
                        (fun (_, ms) ->
                          List.exists
                            (fun (m, _) ->
                              (not (Table1.compatible m mode)) && owners_of st m <> [ owner ])
                            ms)
                        st.holders
                    in
                    let queue_conflict =
                      (not conversion)
                      && List.exists
                           (fun (o', m', _) -> o' <> owner && not (Table1.compatible m' mode))
                           st.queue
                    in
                    holder_conflict || queue_conflict
                  | _ -> false );
              ( "not-already-queued",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_queued { owner; _ } -> not (queued st owner)
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Lock_mgr.Ev_queued { owner; mode; instant; _ } ->
              { st with queue = st.queue @ [ (owner, mode, instant) ] }
            | _ -> st);
        Machine.rule "signal"
          ~applies:(fun _ ev -> match ev with Lock_mgr.Ev_signalled _ -> true | _ -> false)
          ~guards:
            [
              (* No grantability guard here: a wake batch grants and signals
                 against the holder set at the start of the batch, so an
                 instant request may legitimately be signalled alongside a
                 conflicting grant (the requester just retries). *)
              ( "signalled-wait-was-queued-instant",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_signalled { owner; mode; _ } -> queued_as st owner mode true
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Lock_mgr.Ev_signalled { owner; _ } -> drop_queued st owner
            | _ -> st);
        Machine.rule "victim"
          ~applies:(fun _ ev -> match ev with Lock_mgr.Ev_victim _ -> true | _ -> false)
          ~guards:
            [
              ( "victim-was-queued",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_victim { owner; _ } -> queued st owner
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with Lock_mgr.Ev_victim { owner; _ } -> drop_queued st owner | _ -> st);
        Machine.rule "dequeue"
          ~applies:(fun _ ev -> match ev with Lock_mgr.Ev_dequeued _ -> true | _ -> false)
          ~guards:
            [
              ( "dequeued-wait-was-queued",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_dequeued { owner; _ } -> queued st owner
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with Lock_mgr.Ev_dequeued { owner; _ } -> drop_queued st owner | _ -> st);
        Machine.rule "release"
          ~applies:(fun _ ev -> match ev with Lock_mgr.Ev_released _ -> true | _ -> false)
          ~guards:
            [
              ( "released-mode-was-held",
                fun st ev ->
                  match ev with
                  | Lock_mgr.Ev_released { owner; mode; _ } ->
                    List.mem_assoc mode (holder_modes st owner)
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Lock_mgr.Ev_released { owner; mode; _ } -> drop_holding st owner mode
            | _ -> st);
      ];
    d_invariants = [];
    (* Leftover holdings at end of execution are legitimate (the workload may
       stop with transactions parked), so every state accepts. *)
    d_accepting = (fun _ -> true);
  }
