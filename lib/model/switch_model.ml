(* Model 3: the §7 switch/drain protocol, one track per shard.

   The track follows pass 3 from the Get_Current scan (CK must strictly
   advance before the base's S lock is released — §7.1), through side-file
   catch-up, the side-X acquisition, the Switch record (backlog must be
   empty, the tree name increments by exactly one, and the switch LSN fences
   above every unit LSN seen on the shard), the non-λ drain's forced aborts,
   and cleanup.  Side-file admissions are checked against the phase: accepts
   only while the old tree is still authoritative and only for keys below
   CK; redirects only once the side file is sealed or λ-switch has moved
   writers to the new tree. *)

module Prot = Reorg.Prot

type phase = Idle | Scanning | Catching_up | Draining_side | Switched | Done

type state = { phase : phase; ck : int; hw_lsn : int }

let initial = { phase = Idle; ck = min_int; hw_lsn = 0 }

let phase_to_string = function
  | Idle -> "idle"
  | Scanning -> "scanning"
  | Catching_up -> "catching-up"
  | Draining_side -> "draining-side"
  | Switched -> "switched"
  | Done -> "done"

let pp_state st =
  Printf.sprintf "%s ck=%s hw_lsn=%d" (phase_to_string st.phase)
    (Prot.key_to_string st.ck) st.hw_lsn

let unit_lsn = function
  | Prot.Unit_begin { lsn; _ } | Prot.Unit_move { lsn; _ } | Prot.Unit_modify { lsn; _ }
  | Prot.Unit_end { lsn; _ } ->
    Some lsn
  | _ -> None

let def : (state, Prot.event) Machine.def =
  {
    Machine.d_name = "switch-drain";
    d_initial = initial;
    d_pp_state = pp_state;
    d_pp_event = Prot.to_string;
    d_rules =
      [
        (* Unit events only move the LSN high-watermark the Switch record
           must fence above; they are legal in any phase (pass 2 overlaps
           nothing, but recovery re-runs units while pass 3 state is Idle). *)
        Machine.rule "unit-watermark"
          ~applies:(fun _ ev -> match unit_lsn ev with Some _ -> true | None -> false)
          ~next:(fun st ev ->
            match unit_lsn ev with
            | Some l -> { st with hw_lsn = max st.hw_lsn l }
            | None -> st);
        Machine.rule "unit-other"
          ~applies:(fun _ ev ->
            match ev with Prot.Unit_undo _ | Prot.Unit_recover _ -> true | _ -> false)
          ~next:(fun st _ -> st);
        Machine.rule "start"
          ~applies:(fun _ ev -> match ev with Prot.Pass3_start _ -> true | _ -> false)
          ~guards:[ ("pass3-starts-once", fun st _ -> st.phase = Idle) ]
          ~next:(fun st ev ->
            match ev with
            | Prot.Pass3_start { mode = Prot.Finish; ck; _ } ->
              (* Post-crash finish: the scan already completed before the
                 crash; pass 3 resumes at catch-up. *)
              { st with phase = Catching_up; ck }
            | Prot.Pass3_start { ck; _ } -> { st with phase = Scanning; ck }
            | _ -> st);
        Machine.rule "scan-base"
          ~applies:(fun _ ev -> match ev with Prot.Scan_base _ -> true | _ -> false)
          ~guards:
            [
              ("scan-only-while-scanning", fun st _ -> st.phase = Scanning);
              ( "ck-advances-before-s-release",
                (* §7.1: Get_Current must push CK past the base's keys before
                   giving up the S lock, else a crash loses the base. *)
                fun _ ev ->
                  match ev with
                  | Prot.Scan_base { ck_before; ck_after; _ } -> ck_after > ck_before
                  | _ -> false );
              ( "ck-matches-model",
                fun st ev ->
                  match ev with
                  | Prot.Scan_base { ck_before; _ } -> ck_before = st.ck
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Prot.Scan_base { ck_after; _ } -> { st with ck = ck_after }
            | _ -> st);
        Machine.rule "scan-done"
          ~applies:(fun _ ev -> match ev with Prot.Scan_done _ -> true | _ -> false)
          ~guards:
            [
              (* A post-crash Finish run skips the scan but still announces
                 its (vacuous) completion from catch-up. *)
              ( "scan-ends-after-scan-or-finish",
                fun st _ -> st.phase = Scanning || st.phase = Catching_up );
            ]
          ~next:(fun st _ -> { st with phase = Catching_up; ck = max_int });
        Machine.rule "catchup"
          ~applies:(fun _ ev -> match ev with Prot.Catchup _ -> true | _ -> false)
          ~guards:
            [
              (* The final catch-up round runs after the side X is taken. *)
              ( "catchup-after-scan",
                fun st _ -> st.phase = Catching_up || st.phase = Draining_side );
              ( "catchup-applies-something",
                fun _ ev ->
                  match ev with Prot.Catchup { applied; _ } -> applied > 0 | _ -> false );
            ]
          ~next:(fun st _ -> st);
        Machine.rule "side-locked"
          ~applies:(fun _ ev -> match ev with Prot.Side_locked _ -> true | _ -> false)
          ~guards:[ ("side-x-after-catch-up", fun st _ -> st.phase = Catching_up) ]
          ~next:(fun st _ -> { st with phase = Draining_side });
        Machine.rule "switch"
          ~applies:(fun _ ev -> match ev with Prot.Switch_logged _ -> true | _ -> false)
          ~guards:
            [
              ("switch-under-side-x", fun st _ -> st.phase = Draining_side);
              ( "side-file-fully-drained",
                fun _ ev ->
                  match ev with
                  | Prot.Switch_logged { backlog; _ } -> backlog = 0
                  | _ -> false );
              ( "tree-name-increments",
                fun _ ev ->
                  match ev with
                  | Prot.Switch_logged { old_name; new_name; _ } -> new_name = old_name + 1
                  | _ -> false );
              ( "switch-lsn-fences-units",
                fun st ev ->
                  match ev with
                  | Prot.Switch_logged { lsn; _ } -> lsn > st.hw_lsn
                  | _ -> false );
              ( "roots-differ",
                fun _ ev ->
                  match ev with
                  | Prot.Switch_logged { old_root; new_root; _ } -> old_root <> new_root
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Prot.Switch_logged { lsn; _ } -> { st with phase = Switched; hw_lsn = lsn }
            | _ -> st);
        Machine.rule "forced-abort"
          ~applies:(fun _ ev -> match ev with Prot.Forced_abort _ -> true | _ -> false)
          ~guards:
            [
              ("drain-aborts-after-switch", fun st _ -> st.phase = Switched);
              ( "lambda-switch-never-aborts",
                (* §7.4: with λ-switch, stragglers are redirected, not shot. *)
                fun _ ev ->
                  match ev with
                  | Prot.Forced_abort { lambda; _ } -> not lambda
                  | _ -> false );
            ]
          ~next:(fun st _ -> st);
        Machine.rule "cleanup"
          ~applies:(fun _ ev -> match ev with Prot.Switch_cleanup _ -> true | _ -> false)
          ~guards:[ ("cleanup-after-switch", fun st _ -> st.phase = Switched) ]
          ~next:(fun st _ -> { st with phase = Done });
        Machine.rule "side-accept"
          ~applies:(fun _ ev -> match ev with Prot.Side_accept _ -> true | _ -> false)
          ~guards:
            [
              ( "accept-only-before-side-x",
                fun st _ -> st.phase = Scanning || st.phase = Catching_up );
              ( "accept-only-behind-ck",
                (* A key at or past CK still lives on the old tree's unscanned
                   suffix, so the updater must go direct — an accepted op
                   there would be applied twice or lost. *)
                fun st ev ->
                  match ev with Prot.Side_accept { key } -> key < st.ck | _ -> false );
            ]
          ~next:(fun st _ -> st);
        Machine.rule "side-redirect"
          ~applies:(fun _ ev -> match ev with Prot.Side_redirect _ -> true | _ -> false)
          ~guards:
            [
              ( "redirect-only-after-seal",
                fun st _ ->
                  st.phase = Draining_side || st.phase = Switched || st.phase = Done );
            ]
          ~next:(fun st _ -> st);
      ];
    (* CK monotonicity is enforced structurally: the only rule that changes
       [ck] guards [ck_after > ck_before = st.ck]. *)
    d_invariants = [];
    (* A shard that never started pass 3 (Idle) is fine; one that did must
       have finished cleanup. *)
    d_accepting = (fun st -> st.phase = Idle || st.phase = Done);
  }
