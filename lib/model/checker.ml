(* The conformance checker: owns one machine per model, fans the typed event
   streams out to them, and collects violations.  Track keys are prefixed
   with the shard ("s0/Page 17", "s1/unit3") so one checker covers a whole
   sharded engine; [cycle] relabels violations with the current scenario
   phase so a torture report says which crash boundary tripped it. *)

module Lock_mgr = Lockmgr.Lock_mgr
module Prot = Reorg.Prot
module Coordinator = Shard.Coordinator

type t = {
  locks : (Lock_model.state, Lock_mgr.event) Machine.t;
  units : (Unit_model.state, Prot.event) Machine.t;
  actors : (Unit_model.actor_state, Prot.event) Machine.t;
  switches : (Switch_model.state, Prot.event) Machine.t;
  olc : (Olc_model.state, Prot.event) Machine.t;
  coords : (Coord_model.state, Coordinator.event) Machine.t;
  mutable label : string;
  mutable violations : Machine.violation list; (* newest first *)
  max_violations : int;
  mutable events : int;
}

let create ?(max_violations = 20) () =
  let t_ref = ref None in
  let sink v =
    match !t_ref with
    | None -> ()
    | Some t ->
      if List.length t.violations < t.max_violations then
        t.violations <-
          { v with Machine.v_track = Printf.sprintf "%s%s" t.label v.Machine.v_track }
          :: t.violations
  in
  let t =
    {
      locks = Machine.create Lock_model.def ~sink;
      units = Machine.create Unit_model.lifecycle ~sink;
      actors = Machine.create Unit_model.actor ~sink;
      switches = Machine.create Switch_model.def ~sink;
      olc = Machine.create Olc_model.def ~sink;
      coords = Machine.create Coord_model.def ~sink;
      label = "";
      violations = [];
      max_violations;
      events = 0;
    }
  in
  t_ref := Some t;
  t

let cycle t label =
  (* New scenario phase: protocol state restarts from scratch (fresh engine
     or post-crash restart), but accumulated violations are kept. *)
  t.label <- (if label = "" then "" else label ^ ": ");
  Machine.reset t.locks;
  Machine.reset t.units;
  Machine.reset t.actors;
  Machine.reset t.switches;
  Machine.reset t.olc;
  Machine.reset t.coords

let crash t =
  (* A crash wipes all volatile protocol state: locks are gone, in-flight
     units and switches are represented again by recovery's own events. *)
  Machine.reset t.locks;
  Machine.reset t.units;
  Machine.reset t.actors;
  Machine.reset t.switches;
  Machine.reset t.olc;
  Machine.reset t.coords

let lock_hook t ~shard =
  let track ev =
    let res =
      match ev with
      | Lock_mgr.Ev_granted { res; _ }
      | Lock_mgr.Ev_queued { res; _ }
      | Lock_mgr.Ev_signalled { res; _ }
      | Lock_mgr.Ev_victim { res; _ }
      | Lock_mgr.Ev_dequeued { res; _ }
      | Lock_mgr.Ev_released { res; _ } ->
        res
    in
    Printf.sprintf "s%d/%s" shard (Lockmgr.Resource.to_string res)
  in
  fun ev ->
    t.events <- t.events + 1;
    Machine.step t.locks ~track:(track ev) ev

let attach_locks t ~shard lm = Lock_mgr.set_event_hook lm (Some (lock_hook t ~shard))

let prot_hook t ~shard =
  fun ev ->
    t.events <- t.events + 1;
    (match ev with
    | Prot.Unit_begin { unit_id; _ }
    | Prot.Unit_move { unit_id; _ }
    | Prot.Unit_modify { unit_id; _ }
    | Prot.Unit_undo { unit_id; _ }
    | Prot.Unit_end { unit_id; _ }
    | Prot.Unit_recover { unit_id; _ } ->
      Machine.step t.units ~track:(Printf.sprintf "s%d/unit%d" shard unit_id) ev
    | _ -> ());
    (match ev with
    | Prot.Unit_begin { actor; _ }
    | Prot.Unit_move { actor; _ }
    | Prot.Unit_modify { actor; _ }
    | Prot.Unit_undo { actor; _ }
    | Prot.Unit_end { actor; _ }
    | Prot.Unit_recover { actor; _ } ->
      Machine.step t.actors ~track:(Printf.sprintf "s%d/actor%d" shard actor) ev
    | _ -> ());
    (* Olc_read is the access layer's event, not a switch-protocol step: it
       gets its own per-shard machine and is kept out of the switch-drain
       model (which has no transition for it). *)
    match ev with
    | Prot.Olc_read _ -> Machine.step t.olc ~track:(Printf.sprintf "s%d/olc" shard) ev
    | _ -> Machine.step t.switches ~track:(Printf.sprintf "s%d" shard) ev

let coord_hook t =
  fun ev ->
    t.events <- t.events + 1;
    let x_id =
      match ev with
      | Coordinator.Ev_begun { x_id }
      | Coordinator.Ev_commit_record { x_id; _ }
      | Coordinator.Ev_acked { x_id }
      | Coordinator.Ev_aborted { x_id } ->
        x_id
    in
    Machine.step t.coords ~track:(Printf.sprintf "x%d" x_id) ev

let attach_coordinator t coord = Coordinator.set_event_hook coord (Some (coord_hook t))

let finalize t =
  (* Only the unit lifecycle and switch machines have non-trivial acceptance
     (open units / unfinished switches); the others accept everywhere, and
     the coordinator machine is finalized too (unacked transactions). *)
  Machine.finalize t.units;
  Machine.finalize t.actors;
  Machine.finalize t.switches;
  Machine.finalize t.olc;
  Machine.finalize t.coords

let events t = t.events

let tracks t =
  Machine.track_count t.locks + Machine.track_count t.units + Machine.track_count t.actors
  + Machine.track_count t.switches + Machine.track_count t.olc + Machine.track_count t.coords

let violations t = List.rev t.violations

let ok t = t.violations = []

let first_violation t =
  match List.rev t.violations with [] -> None | v :: _ -> Some v

let report t =
  match violations t with
  | [] -> Printf.sprintf "conformance ok: %d events, 0 violations" t.events
  | vs ->
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "conformance FAILED: %d events, %d violation(s)\n" t.events
         (List.length vs));
    List.iter
      (fun v ->
        Buffer.add_string b (Machine.violation_to_string v);
        Buffer.add_char b '\n')
      vs;
    Buffer.contents b
