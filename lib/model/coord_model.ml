(* Cross-shard transaction lifecycle under the coordinator's 2PL commit:
   one track per global transaction id.  Commit records go down in ascending
   shard order (the coordinator's deadlock-avoiding total order), the ack to
   the client comes only after begin/commit-record activity, and nothing
   follows a terminal state. *)

module Coordinator = Shard.Coordinator

type phase = Running | Committing | Acked | Aborted

type state = { phase : phase; last_shard : int }

let initial = { phase = Running; last_shard = -1 }

let phase_to_string = function
  | Running -> "running"
  | Committing -> "committing"
  | Acked -> "acked"
  | Aborted -> "aborted"

let pp_state st = Printf.sprintf "%s last_shard=%d" (phase_to_string st.phase) st.last_shard

let pp_event = function
  | Coordinator.Ev_begun { x_id } -> Printf.sprintf "begun x%d" x_id
  | Coordinator.Ev_commit_record { x_id; shard } ->
    Printf.sprintf "commit-record x%d shard=%d" x_id shard
  | Coordinator.Ev_acked { x_id } -> Printf.sprintf "acked x%d" x_id
  | Coordinator.Ev_aborted { x_id } -> Printf.sprintf "aborted x%d" x_id

let def : (state, Coordinator.event) Machine.def =
  {
    Machine.d_name = "cross-shard-commit";
    d_initial = initial;
    d_pp_state = pp_state;
    d_pp_event = pp_event;
    d_rules =
      [
        Machine.rule "begin"
          ~applies:(fun _ ev -> match ev with Coordinator.Ev_begun _ -> true | _ -> false)
          ~guards:
            [ ("fresh-x-id", fun st _ -> st.phase = Running && st.last_shard = -1) ]
          ~next:(fun st _ -> st);
        Machine.rule "commit-record"
          ~applies:(fun _ ev ->
            match ev with Coordinator.Ev_commit_record _ -> true | _ -> false)
          ~guards:
            [
              ( "not-terminal",
                fun st _ -> st.phase = Running || st.phase = Committing );
              ( "shards-commit-in-ascending-order",
                fun st ev ->
                  match ev with
                  | Coordinator.Ev_commit_record { shard; _ } -> shard > st.last_shard
                  | _ -> false );
            ]
          ~next:(fun st ev ->
            match ev with
            | Coordinator.Ev_commit_record { shard; _ } ->
              { phase = Committing; last_shard = shard }
            | _ -> st);
        Machine.rule "ack"
          ~applies:(fun _ ev -> match ev with Coordinator.Ev_acked _ -> true | _ -> false)
          ~guards:
            [
              ( "ack-only-while-live",
                fun st _ -> st.phase = Running || st.phase = Committing );
            ]
          ~next:(fun st _ -> { st with phase = Acked });
        Machine.rule "abort"
          ~applies:(fun _ ev -> match ev with Coordinator.Ev_aborted _ -> true | _ -> false)
          ~guards:
            [
              (* Once any shard's commit record is on disk the transaction
                 must go forward — an abort after that is a 2PL atomicity
                 break. *)
              ("abort-only-before-first-commit-record", fun st _ -> st.phase = Running);
            ]
          ~next:(fun st _ -> { st with phase = Aborted })
      ];
    d_invariants = [];
    d_accepting = (fun st -> st.phase = Acked || st.phase = Aborted);
  }
