(** The conformance checker: one {!Machine.t} per protocol model, fed from
    the typed event hooks of the lock manager, the reorganization context and
    the cross-shard coordinator.  Attach it to a running engine (or a replay)
    and it judges every protocol decision online; [finalize] at the end flags
    units/switches/transactions left in a non-accepting state. *)

type t

val create : ?max_violations:int -> unit -> t
(** Violations beyond [max_violations] (default 20) are dropped — one broken
    guard in a hot loop should not OOM the report. *)

val cycle : t -> string -> unit
(** Start a new scenario phase: resets all machines (fresh engine state) and
    prefixes subsequent violations with the label.  Collected violations are
    kept. *)

val crash : t -> unit
(** Simulated crash: drop all tracks (volatile protocol state is gone); the
    post-restart execution re-announces live state via recovery events. *)

val attach_locks : t -> shard:int -> Lockmgr.Lock_mgr.t -> unit
(** Route the lock manager's event stream into the Table-1 model, tracks
    keyed ["s<shard>/<resource>"]. *)

val lock_hook : t -> shard:int -> Lockmgr.Lock_mgr.event -> unit

val prot_hook : t -> shard:int -> Reorg.Prot.event -> unit
(** The sink to pass as [Ctx.make ~prot]: routes unit events to the
    lifecycle/actor machines, [Olc_read] to the shard's optimistic-read
    machine, and everything else to the shard's switch machine. *)

val attach_coordinator : t -> Shard.Coordinator.t -> unit

val finalize : t -> unit

val events : t -> int
val tracks : t -> int
val violations : t -> Machine.violation list
val ok : t -> bool
val first_violation : t -> Machine.violation option

val report : t -> string
(** One-line summary when clean; the rendered violations otherwise. *)
