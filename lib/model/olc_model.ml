(* Model 6: the optimistic read path (DESIGN.md §11).

   One track per shard.  The access layer fires [Olc_read] for every
   {e committed} optimistic point lookup, carrying [valid] — computed in the
   same atomic scheduler step as "does the optimistic result equal a fresh
   root-to-leaf locked-style descent's answer right now".  The safety
   property is simply that a committed optimistic read is never wrong:
   version validation plus the active-unit fallback must have filtered every
   read that raced a record move.  The {!Btree.Olc.test_skip_bumps} mutation
   breaks exactly this guard. *)

module Prot = Reorg.Prot

type state = { reads : int }

let initial = { reads = 0 }
let pp_state st = Printf.sprintf "reads=%d" st.reads

let def : (state, Prot.event) Machine.def =
  {
    Machine.d_name = "olc-read";
    d_initial = initial;
    d_pp_state = pp_state;
    d_pp_event = Prot.to_string;
    d_rules =
      [
        Machine.rule "read"
          ~applies:(fun _ ev -> match ev with Prot.Olc_read _ -> true | _ -> false)
          ~guards:
            [
              ( "optimistic-read-matches-oracle",
                fun _ ev ->
                  match ev with Prot.Olc_read { valid; _ } -> valid | _ -> false );
            ]
          ~next:(fun st _ -> { reads = st.reads + 1 });
      ];
    d_invariants = [];
    (* Any number of reads (including none) is a fine place to stop. *)
    d_accepting = (fun _ -> true);
  }
