(* Guarded state-machine DSL (Accord style): a machine definition is a list
   of named rules over an abstract state; a tracker instantiates the machine
   once per "track" (one lock resource, one reorganization unit, one shard's
   switch, one cross-shard transaction) and replays the event stream through
   it, recording a violation — with the offending event and the track's
   recent history — whenever no rule matches or a guard refuses. *)

type violation = {
  v_machine : string;
  v_track : string;
  v_state : string;
  v_event : string;
  v_reason : string;
  v_history : string list; (* oldest first, most recent last *)
}

type ('s, 'e) rule = {
  r_name : string;
  r_applies : 's -> 'e -> bool;
  r_guards : (string * ('s -> 'e -> bool)) list;
  r_next : 's -> 'e -> 's;
}

type ('s, 'e) def = {
  d_name : string;
  d_initial : 's;
  d_pp_state : 's -> string;
  d_pp_event : 'e -> string;
  d_rules : ('s, 'e) rule list;
  d_invariants : (string * ('s -> bool)) list;
  d_accepting : 's -> bool;
}

let rule ?(guards = []) name ~applies ~next =
  { r_name = name; r_applies = applies; r_guards = guards; r_next = next }

let history_depth = 12

type 's track = {
  mutable t_state : 's;
  (* Recent "state -| event" lines, newest first; rendered oldest-first. *)
  mutable t_history : string list;
  (* After the first violation the track is poisoned: later events are
     counted but not checked, so one protocol break reports once instead of
     cascading into a wall of follow-on noise. *)
  mutable t_poisoned : bool;
}

type ('s, 'e) t = {
  def : ('s, 'e) def;
  tracks : (string, 's track) Hashtbl.t;
  sink : violation -> unit;
  mutable events : int;
}

let create def ~sink = { def; tracks = Hashtbl.create 32; sink; events = 0 }

let name t = t.def.d_name
let events t = t.events
let track_count t = Hashtbl.length t.tracks

let track t key =
  match Hashtbl.find_opt t.tracks key with
  | Some tr -> tr
  | None ->
    let tr = { t_state = t.def.d_initial; t_history = []; t_poisoned = false } in
    Hashtbl.replace t.tracks key tr;
    tr

let render t tr ~key ~event ~reason =
  {
    v_machine = t.def.d_name;
    v_track = key;
    v_state = t.def.d_pp_state tr.t_state;
    v_event = event;
    v_reason = reason;
    v_history = List.rev tr.t_history;
  }

let flag t tr ~key ~event ~reason =
  tr.t_poisoned <- true;
  t.sink (render t tr ~key ~event ~reason)

let remember tr line =
  tr.t_history <-
    (line :: tr.t_history
    |> fun h -> if List.length h > history_depth then List.filteri (fun i _ -> i < history_depth) h else h)

let step t ~track:key ev =
  t.events <- t.events + 1;
  let tr = track t key in
  if not tr.t_poisoned then begin
    let ev_str = t.def.d_pp_event ev in
    match List.find_opt (fun r -> r.r_applies tr.t_state ev) t.def.d_rules with
    | None -> flag t tr ~key ~event:ev_str ~reason:"no transition accepts this event"
    | Some r -> begin
      match List.find_opt (fun (_, g) -> not (g tr.t_state ev)) r.r_guards with
      | Some (gname, _) ->
        flag t tr ~key ~event:ev_str ~reason:(Printf.sprintf "guard '%s' of rule '%s'" gname r.r_name)
      | None ->
        remember tr (Printf.sprintf "%s -| %s" (t.def.d_pp_state tr.t_state) ev_str);
        tr.t_state <- r.r_next tr.t_state ev;
        (match
           List.find_opt (fun (_, inv) -> not (inv tr.t_state)) t.def.d_invariants
         with
        | Some (iname, _) -> flag t tr ~key ~event:ev_str ~reason:(Printf.sprintf "invariant '%s'" iname)
        | None -> ())
    end
  end

(* Crash: volatile protocol state is gone; every track restarts from the
   initial state (what survives, survives in the WAL and re-announces itself
   through recovery's own events). *)
let reset t = Hashtbl.reset t.tracks

let finalize t =
  Hashtbl.iter
    (fun key tr ->
      if (not tr.t_poisoned) && not (t.def.d_accepting tr.t_state) then
        flag t tr ~key ~event:"<end of execution>" ~reason:"track ended in a non-accepting state")
    t.tracks

let violation_to_string v =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "model '%s', track '%s': %s\n" v.v_machine v.v_track v.v_reason);
  Buffer.add_string b (Printf.sprintf "  state: %s\n" v.v_state);
  Buffer.add_string b (Printf.sprintf "  event: %s\n" v.v_event);
  if v.v_history <> [] then begin
    Buffer.add_string b "  history (oldest first):\n";
    List.iter (fun line -> Buffer.add_string b (Printf.sprintf "    %s\n" line)) v.v_history
  end;
  Buffer.contents b
