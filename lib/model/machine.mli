(** Guarded state-machine DSL for protocol models (Accord style).

    A {!def} is a pure description: an initial state, named {!rule}s (event
    pattern + guards + successor), named invariants over the post-state, and
    an accepting predicate for end-of-execution.  A tracker ({!t}) holds one
    machine instance per {e track} — per lock resource, per reorganization
    unit, per shard's switch, per cross-shard transaction — created lazily on
    the track's first event.

    Checking one event: the first rule whose [applies] matches is chosen; an
    event no rule accepts, a failing guard, or a failing invariant produce a
    {!violation} naming the guard, the offending event, the machine state and
    the track's recent event history.  A violated track is {e poisoned}:
    later events are counted but not checked, so one protocol break reports
    once instead of cascading. *)

type violation = {
  v_machine : string;
  v_track : string;
  v_state : string;  (** rendered state when the violation fired *)
  v_event : string;  (** offending event, or [<end of execution>] *)
  v_reason : string;  (** failing guard/invariant, or "no transition" *)
  v_history : string list;  (** recent [state -| event] steps, oldest first *)
}

type ('s, 'e) rule

val rule :
  ?guards:(string * ('s -> 'e -> bool)) list ->
  string ->
  applies:('s -> 'e -> bool) ->
  next:('s -> 'e -> 's) ->
  ('s, 'e) rule
(** [applies] selects the rule (typically by event constructor); [guards]
    are checked in order against the pre-state; [next] computes the
    post-state. *)

type ('s, 'e) def = {
  d_name : string;
  d_initial : 's;
  d_pp_state : 's -> string;
  d_pp_event : 'e -> string;
  d_rules : ('s, 'e) rule list;
  d_invariants : (string * ('s -> bool)) list;
  d_accepting : 's -> bool;
}

type ('s, 'e) t

val create : ('s, 'e) def -> sink:(violation -> unit) -> ('s, 'e) t
val step : ('s, 'e) t -> track:string -> 'e -> unit

val reset : ('s, 'e) t -> unit
(** Crash semantics: drop every track — volatile protocol state is gone;
    whatever survived the crash re-announces itself through recovery's own
    events. *)

val finalize : ('s, 'e) t -> unit
(** Flag every live, unpoisoned track whose state is not accepting. *)

val name : ('s, 'e) t -> string
val events : ('s, 'e) t -> int
val track_count : ('s, 'e) t -> int

val violation_to_string : violation -> string
