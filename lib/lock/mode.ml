type t = IS | IX | S | X | R | RX | RS

let all = [ IS; IX; S; X; R; RX; RS ]

(* Dense index for per-mode count arrays (the lock manager's O(1) holder
   tallies). *)
let index = function IS -> 0 | IX -> 1 | S -> 2 | X -> 3 | R -> 4 | RX -> 5 | RS -> 6
let arity = 7
let of_index = [| IS; IX; S; X; R; RX; RS |]

(* Symmetric compatibility.  RX conflicts with everything; X conflicts with
   everything; RS conflicts with R (and X), which is what makes the
   instant-duration RS request block until the reorganizer is done with the
   base page. *)
let compat_spec a b =
  match (a, b) with
  | RX, _ | _, RX -> false
  | X, _ | _, X -> false
  | RS, R | R, RS -> false
  | RS, RS -> false (* two blocked parties; conservative, never consulted *)
  | RS, _ | _, RS -> true
  | R, (S | IS | R) | (S | IS), R -> true
  | R, IX | IX, R -> false
  | S, (S | IS) | IS, S -> true
  | S, IX | IX, S -> false
  | IS, (IS | IX) | IX, IS -> true
  | IX, IX -> true

(* Test-only mutation hook: forcing one cell of the compatibility matrix to
   [true] lets the model-conformance self-test prove the checker is live (a
   silently-dead checker would accept the broken grant).  Never set outside
   tests; [compat] consults it on every call but the common case is one load
   and one comparison. *)
let test_break_compat : (t * t) option ref = ref None

let compat a b =
  match !test_break_compat with
  | Some (x, y) when (a = x && b = y) || (a = y && b = x) -> true
  | _ -> compat_spec a b

let covers ~held ~need =
  match (held, need) with
  | a, b when a = b -> true
  | X, _ -> true
  | S, IS -> true
  | IX, IS -> true
  | _ -> false

let is_upgrade ~from_ ~to_ =
  (not (covers ~held:from_ ~need:to_))
  &&
  match (from_, to_) with
  | IS, (IX | S | X) -> true
  | IX, X -> true
  | S, X -> true
  | R, X -> true
  | _ -> false

(* The literal Table 1 of the paper.  Blank cells are mode pairs that never
   contend for the same resource (e.g. IX is only used on the tree lock and
   leaf pages, R only on base pages).  RS is requested but never granted. *)
let paper_cell ~granted ~requested =
  match (granted, requested) with
  | IS, IS | IS, IX | IS, S -> `Yes
  | IS, X -> `No
  | IS, (R | RX | RS) -> `Blank
  | IX, IS | IX, IX -> `Yes
  | IX, (S | X) -> `No
  | IX, (R | RX | RS) -> `Blank
  | S, IS -> `Yes
  | S, IX -> `No
  | S, S -> `Yes
  | S, X -> `No
  | S, R -> `Yes
  | S, RX -> `Blank
  | S, RS -> `Yes
  | X, (IS | IX | S | X | R | RS) -> `No
  | X, RX -> `Blank
  | R, S -> `Yes
  | R, (X | RS) -> `No
  | R, R -> `Yes
  | R, (IS | IX | RX) -> `Blank
  | RX, (IS | IX | S | X) -> `No
  | RX, (R | RX | RS) -> `Blank
  | RS, _ -> `Blank

let to_string = function
  | IS -> "IS"
  | IX -> "IX"
  | S -> "S"
  | X -> "X"
  | R -> "R"
  | RX -> "RX"
  | RS -> "RS"

let pp ppf t = Format.pp_print_string ppf (to_string t)
