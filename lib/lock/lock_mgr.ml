type owner = int

type grant = Granted | Deadlock

type outcome = [ `Granted | `Conflict of (owner * Mode.t) list ]

type stats = {
  acquires : int;
  waits : int;
  grants_after_wait : int;
  instant_signals : int;
  give_ups : int;
  cancelled_waits : int;
  deadlocks : int;
  releases : int;
  scan_steps : int;
  instant_checks : int;
}

type waiter = {
  w_owner : owner;
  w_mode : Mode.t;
  w_instant : bool;
  w_conversion : bool;
  w_wake : grant -> unit;
}

(* Typed protocol events for the model-conformance checker (lib/model).  One
   event per observable lock-table decision; emitted only when a hook is
   installed, so scenarios without a checker pay one [None] test per
   decision. *)
type event =
  | Ev_granted of { owner : owner; res : Resource.t; mode : Mode.t; after_wait : bool }
  | Ev_queued of {
      owner : owner;
      res : Resource.t;
      mode : Mode.t;
      instant : bool;
      conversion : bool;
    }
  | Ev_signalled of { owner : owner; res : Resource.t; mode : Mode.t }
      (** instant-duration request signalled: the paper's give-up *)
  | Ev_victim of { owner : owner; res : Resource.t; mode : Mode.t; forced : bool }
      (** wait aborted: deadlock victim, or [forced] switch-drain cancellation *)
  | Ev_dequeued of { owner : owner; res : Resource.t; mode : Mode.t }
      (** wait abandoned by its own owner (release_all while queued) *)
  | Ev_released of { owner : owner; res : Resource.t; mode : Mode.t }

(* Holder bookkeeping is hashed so the hot paths stay O(1) in the number of
   holders: [holders] maps owner -> distinct modes held (with multiplicity —
   the per-owner list is bounded by [Mode.arity], so it stays an assoc list),
   and [mode_totals] counts, per mode, how many distinct owners hold it.
   Compatibility against "all other holders" is then a [Mode.arity]-cell array
   check instead of a walk over the holder list. *)
type entry = {
  holders : (owner, (Mode.t * int) list) Hashtbl.t;
  mode_totals : int array; (* per Mode.index: distinct owners holding it *)
  mutable queue : waiter list; (* FIFO, head first *)
}

module Rtbl = Hashtbl.Make (struct
  type t = Resource.t

  let equal = Resource.equal
  let hash = Resource.hash
end)

(* Per-mode tallies: how often each lock mode was immediately granted, had
   to queue, or named a deadlock victim — the paper's lock-protocol costs
   are mode-specific (RX is what blocks users; R is what the reorganizer
   waits on). *)
type mode_stats = {
  mutable m_acquires : int;
  mutable m_waits : int;
  mutable m_deadlocks : int;
}

type t = {
  entries : entry Rtbl.t;
  owner_index : (owner, unit Rtbl.t) Hashtbl.t; (* owner -> resources held *)
  max_locked : (owner, int) Hashtbl.t;
  pending : (owner, Resource.t) Hashtbl.t; (* owner -> resource it waits on *)
  mutable reorganizers : owner list;
  mutable acquires : int;
  mutable waits : int;
  mutable grants_after_wait : int;
  mutable instant_signals : int;
  mutable deadlocks : int;
  mutable releases : int;
  mutable give_ups : int; (* instant-duration requests signalled: the paper's give-ups *)
  mutable cancelled_waits : int; (* waits cancelled from outside (switch time limit) *)
  mutable scan_steps : int; (* holder/index list elements examined on lock paths *)
  mutable instant_checks : int; (* non-enqueuing grantability probes (OLC fallback tests) *)
  by_mode : (Mode.t, mode_stats) Hashtbl.t;
  mutable tracer : Obs.Trace.t option;
  (* Extra waits-for edges from outside this lock domain.  A cross-shard
     coordinator installs a closure that returns the union of the OTHER
     shards' local edges for an owner, so cycles spanning shard lock
     managers are still found by the local DFS at enqueue time. *)
  mutable extra_edges : (owner -> owner list) option;
  mutable event_hook : (event -> unit) option;
}

let create () =
  {
    entries = Rtbl.create 64;
    owner_index = Hashtbl.create 16;
    max_locked = Hashtbl.create 8;
    pending = Hashtbl.create 8;
    reorganizers = [];
    extra_edges = None;
    acquires = 0;
    waits = 0;
    grants_after_wait = 0;
    instant_signals = 0;
    deadlocks = 0;
    releases = 0;
    give_ups = 0;
    cancelled_waits = 0;
    scan_steps = 0;
    instant_checks = 0;
    by_mode = Hashtbl.create 8;
    tracer = None;
    event_hook = None;
  }

let set_tracer t tracer = t.tracer <- tracer
let tracer t = t.tracer
let set_event_hook t hook = t.event_hook <- hook
let emit t ev = match t.event_hook with None -> () | Some f -> f ev

let mode_stats t mode =
  match Hashtbl.find_opt t.by_mode mode with
  | Some s -> s
  | None ->
    let s = { m_acquires = 0; m_waits = 0; m_deadlocks = 0 } in
    Hashtbl.replace t.by_mode mode s;
    s

let mode_tally t mode =
  match Hashtbl.find_opt t.by_mode mode with
  | Some s -> (s.m_acquires, s.m_waits, s.m_deadlocks)
  | None -> (0, 0, 0)

let register_obs t reg =
  Obs.Registry.gauge reg "lock.acquires" (fun () -> t.acquires);
  Obs.Registry.gauge reg "lock.releases" (fun () -> t.releases);
  Obs.Registry.gauge reg "lock.waits" (fun () -> t.waits);
  Obs.Registry.gauge reg "lock.grants_after_wait" (fun () -> t.grants_after_wait);
  Obs.Registry.gauge reg "lock.instant_signals" (fun () -> t.instant_signals);
  Obs.Registry.gauge reg "lock.give_ups" (fun () -> t.give_ups);
  Obs.Registry.gauge reg "lock.cancelled_waits" (fun () -> t.cancelled_waits);
  Obs.Registry.gauge reg "lock.deadlocks" (fun () -> t.deadlocks);
  Obs.Registry.gauge reg "lock.scan_steps" (fun () -> t.scan_steps);
  Obs.Registry.gauge reg "lock.instant_checks" (fun () -> t.instant_checks);
  List.iter
    (fun mode ->
      let m = Mode.to_string mode in
      Obs.Registry.gauge reg
        (Printf.sprintf "lock.acquires.%s" m)
        (fun () -> let a, _, _ = mode_tally t mode in a);
      Obs.Registry.gauge reg
        (Printf.sprintf "lock.waits.%s" m)
        (fun () -> let _, w, _ = mode_tally t mode in w);
      Obs.Registry.gauge reg
        (Printf.sprintf "lock.deadlock_victims.%s" m)
        (fun () -> let _, _, d = mode_tally t mode in d))
    Mode.all

let register_reorganizer t o =
  if not (List.mem o t.reorganizers) then t.reorganizers <- o :: t.reorganizers

let entry t res =
  match Rtbl.find_opt t.entries res with
  | Some e -> e
  | None ->
    let e = { holders = Hashtbl.create 4; mode_totals = Array.make Mode.arity 0; queue = [] } in
    Rtbl.replace t.entries res e;
    e

let entry_opt t res = Rtbl.find_opt t.entries res

let gc_entry t res e =
  if Hashtbl.length e.holders = 0 && e.queue = [] then Rtbl.remove t.entries res

let owner_modes t e o =
  t.scan_steps <- t.scan_steps + 1;
  match Hashtbl.find_opt e.holders o with Some ms -> ms | None -> []

let index_add t o res =
  let s =
    match Hashtbl.find_opt t.owner_index o with
    | Some s -> s
    | None ->
      let s = Rtbl.create 8 in
      Hashtbl.replace t.owner_index o s;
      s
  in
  t.scan_steps <- t.scan_steps + 1;
  if not (Rtbl.mem s res) then begin
    Rtbl.replace s res ();
    let n = Rtbl.length s in
    match Hashtbl.find_opt t.max_locked o with
    | Some m when m >= n -> ()
    | _ -> Hashtbl.replace t.max_locked o n
  end

let index_remove t o res =
  match Hashtbl.find_opt t.owner_index o with
  | None -> ()
  | Some s ->
    Rtbl.remove s res;
    if Rtbl.length s = 0 then Hashtbl.remove t.owner_index o

let add_holding t e o res mode =
  let ms = owner_modes t e o in
  if not (List.mem_assoc mode ms) then begin
    let i = Mode.index mode in
    e.mode_totals.(i) <- e.mode_totals.(i) + 1
  end;
  let ms' =
    match List.assoc_opt mode ms with
    | Some n -> (mode, n + 1) :: List.remove_assoc mode ms
    | None -> (mode, 1) :: ms
  in
  Hashtbl.replace e.holders o ms';
  index_add t o res

let remove_holding t e o res mode =
  let ms = owner_modes t e o in
  match List.assoc_opt mode ms with
  | None -> invalid_arg "Lock_mgr.release: mode not held"
  | Some n ->
    let ms' = if n > 1 then (mode, n - 1) :: List.remove_assoc mode ms else List.remove_assoc mode ms in
    if n = 1 then begin
      let i = Mode.index mode in
      e.mode_totals.(i) <- e.mode_totals.(i) - 1
    end;
    if ms' = [] then begin
      Hashtbl.remove e.holders o;
      index_remove t o res
    end
    else Hashtbl.replace e.holders o ms'

(* Drop every mode [o] holds on [e] at once (release_all path). *)
let drop_owner t e o res =
  match Hashtbl.find_opt e.holders o with
  | None -> false
  | Some ms ->
    List.iter
      (fun (m, _) ->
        let i = Mode.index m in
        e.mode_totals.(i) <- e.mode_totals.(i) - 1)
      ms;
    Hashtbl.remove e.holders o;
    index_remove t o res;
    true

(* Can [o] be granted [mode] given current holders (ignoring its own
   holdings)?  O(Mode.arity): a held mode that conflicts with the request is
   tolerable only when its sole holder is [o] itself. *)
let compat_with_holders t e o mode =
  let ok = ref true in
  let examined = ref 0 in
  for i = 0 to Mode.arity - 1 do
    let n = e.mode_totals.(i) in
    if n > 0 && !ok then begin
      incr examined;
      let m = Mode.of_index.(i) in
      if not (Mode.compat m mode) then
        if n > 1 then ok := false
        else begin
          incr examined;
          match Hashtbl.find_opt e.holders o with
          | Some ms when List.mem_assoc m ms -> ()
          | _ -> ok := false
        end
    end
  done;
  t.scan_steps <- t.scan_steps + !examined;
  !ok

let compat_with_queue t e o mode =
  (* A new (non-conversion) request must not overtake queued waiters it
     conflicts with.  The work metric counts each waiter examined exactly
     once, inside the same traversal (and honouring [for_all]'s
     short-circuit) — not a second [List.length] walk of the queue. *)
  let examined = ref 0 in
  let ok =
    List.for_all
      (fun w ->
        incr examined;
        w.w_owner = o || Mode.compat w.w_mode mode)
      e.queue
  in
  t.scan_steps <- t.scan_steps + !examined;
  ok

let blockers e o mode =
  let hs =
    Hashtbl.fold
      (fun o' ms acc ->
        if o' = o then acc
        else
          match List.find_opt (fun (m, _) -> not (Mode.compat m mode)) ms with
          | Some (m, _) -> (o', m) :: acc
          | None -> acc)
      e.holders []
    |> List.sort compare
  in
  let ws =
    List.filter_map
      (fun w ->
        if w.w_owner <> o && not (Mode.compat w.w_mode mode) then Some (w.w_owner, w.w_mode)
        else None)
      e.queue
  in
  hs @ ws

(* Re-examine the queue after holders changed: grant (or signal, for instant
   requests) every waiter that is compatible with the holders and with all
   still-blocked waiters ahead of it. *)
let process_queue t e =
  let blocked_modes = ref [] in
  (* Modes granted earlier in this same wake batch: [compat_with_holders]
     sees the holder table as it was when the batch started (grants are
     applied in [fire]), so without this a batch like [S; IX] behind a
     released X would wake both and leave incompatible holders coexisting. *)
  let granted_in_batch = ref [] in
  let still_waiting = ref [] in
  let to_wake = ref [] in
  List.iter
    (fun w ->
      let ok =
        compat_with_holders t e w.w_owner w.w_mode
        && List.for_all (fun m -> Mode.compat m w.w_mode) !blocked_modes
        && List.for_all
             (fun (o, m) -> o = w.w_owner || Mode.compat m w.w_mode)
             !granted_in_batch
      in
      if ok then begin
        if w.w_instant then begin
          (* A signalled instant-duration request is the paper's give-up:
             the requester abandons its current attempt and retries. *)
          t.instant_signals <- t.instant_signals + 1;
          t.give_ups <- t.give_ups + 1
        end
        else begin
          (* Resource is recovered lazily below; holders list needs it only
             for the index, which add_holding handles. *)
          t.grants_after_wait <- t.grants_after_wait + 1;
          granted_in_batch := (w.w_owner, w.w_mode) :: !granted_in_batch
        end;
        to_wake := w :: !to_wake
      end
      else begin
        blocked_modes := w.w_mode :: !blocked_modes;
        still_waiting := w :: !still_waiting
      end)
    e.queue;
  e.queue <- List.rev !still_waiting;
  List.rev !to_wake

let fire t res e woken =
  List.iter
    (fun w ->
      Hashtbl.remove t.pending w.w_owner;
      if not w.w_instant then begin
        add_holding t e w.w_owner res w.w_mode;
        emit t (Ev_granted { owner = w.w_owner; res; mode = w.w_mode; after_wait = true })
      end
      else emit t (Ev_signalled { owner = w.w_owner; res; mode = w.w_mode });
      w.w_wake Granted)
    woken;
  gc_entry t res e

let try_acquire t ~owner res mode =
  let e = entry t res in
  let held = owner_modes t e owner in
  if List.exists (fun (m, _) -> Mode.covers ~held:m ~need:mode) held then begin
    add_holding t e owner res mode;
    t.acquires <- t.acquires + 1;
    (mode_stats t mode).m_acquires <- (mode_stats t mode).m_acquires + 1;
    emit t (Ev_granted { owner; res; mode; after_wait = false });
    `Granted
  end
  else begin
    let conversion = held <> [] in
    let ok =
      compat_with_holders t e owner mode
      && (conversion || compat_with_queue t e owner mode)
    in
    if ok then begin
      add_holding t e owner res mode;
      t.acquires <- t.acquires + 1;
      (mode_stats t mode).m_acquires <- (mode_stats t mode).m_acquires + 1;
      emit t (Ev_granted { owner; res; mode; after_wait = false });
      `Granted
    end
    else begin
      gc_entry t res e;
      `Conflict (blockers e owner mode)
    end
  end

(* Instant-style grantability probe: would [try_acquire] grant right now?
   Unlike [Lock_client.instant] it neither takes the lock nor enqueues on
   conflict — the optimistic read path uses it to test for an RX/X presence
   on a leaf without ever touching the wait queue.  Counted separately
   ([instant_checks]) so probes don't masquerade as acquires. *)
let probe t ~owner res mode =
  t.instant_checks <- t.instant_checks + 1;
  match entry_opt t res with
  | None -> true
  | Some e ->
    let held = owner_modes t e owner in
    List.exists (fun (m, _) -> Mode.covers ~held:m ~need:mode) held
    || (compat_with_holders t e owner mode
       && (held <> [] || compat_with_queue t e owner mode))

(* ---------------- deadlock detection ---------------- *)

(* Waits-for edges of a waiting owner: the holders and earlier waiters whose
   modes conflict with its pending request. *)
let wait_edges t o =
  match Hashtbl.find_opt t.pending o with
  | None -> []
  | Some res -> begin
    match entry_opt t res with
    | None -> []
    | Some e -> begin
      match List.find_opt (fun w -> w.w_owner = o) e.queue with
      | None -> []
      | Some w ->
        let holder_edges =
          Hashtbl.fold
            (fun o' ms acc ->
              if o' <> o && List.exists (fun (m, _) -> not (Mode.compat m w.w_mode)) ms then
                o' :: acc
              else acc)
            e.holders []
          |> List.sort compare
        in
        let rec earlier acc = function
          | [] -> acc
          | w' :: _ when w' == w -> acc
          | w' :: rest ->
            let acc =
              if w'.w_owner <> o && not (Mode.compat w'.w_mode w.w_mode) then w'.w_owner :: acc
              else acc
            in
            earlier acc rest
        in
        holder_edges @ earlier [] e.queue
    end
  end

let set_extra_edges t f = t.extra_edges <- f

(* Local edges plus any coordinator-installed cross-shard edges.  The
   installed closure must only consult OTHER managers' [wait_edges] (the raw
   local view), never their [all_edges], or two managers would recurse into
   each other forever. *)
let all_edges t o =
  let local = wait_edges t o in
  match t.extra_edges with
  | None -> local
  | Some f -> local @ List.filter (fun o' -> not (List.mem o' local)) (f o)

let find_cycle t start =
  (* DFS from [start]; return the cycle through [start] if one exists. *)
  let rec dfs path o =
    let next = all_edges t o in
    List.fold_left
      (fun acc o' ->
        match acc with
        | Some _ -> acc
        | None ->
          if o' = start then Some (List.rev (o' :: path))
          else if List.mem o' path then None (* cycle not through start *)
          else dfs (o' :: path) o')
      None next
  in
  dfs [ start ] start

let remove_waiter t o =
  match Hashtbl.find_opt t.pending o with
  | None -> None
  | Some res -> begin
    match entry_opt t res with
    | None -> None
    | Some e -> begin
      match List.find_opt (fun w -> w.w_owner = o) e.queue with
      | None -> None
      | Some w ->
        e.queue <- List.filter (fun w' -> not (w' == w)) e.queue;
        Hashtbl.remove t.pending o;
        Some (res, e, w)
    end
  end

let resolve_deadlock t cycle =
  (* Preferred victims first (registered reorganizers give way to user
     transactions, per the paper), then the requester that closed the cycle.
     In a cross-shard cycle some candidates wait in ANOTHER shard's manager
     — [remove_waiter] returns [None] for those — so fall through until a
     locally-waiting candidate is found.  The requester always waits here,
     so the fallback always succeeds. *)
  let candidates =
    List.filter (fun o -> List.mem o t.reorganizers) cycle
    @ [ List.hd (List.rev cycle) ]
  in
  let rec pick = function
    | [] -> None
    | o :: rest -> (
      match remove_waiter t o with Some r -> Some r | None -> pick rest)
  in
  match pick candidates with
  | None -> ()
  | Some (res, e, w) ->
    t.deadlocks <- t.deadlocks + 1;
    (mode_stats t w.w_mode).m_deadlocks <- (mode_stats t w.w_mode).m_deadlocks + 1;
    (match t.tracer with
    | Some tr ->
      Obs.Trace.instant tr ~cat:"lock" "lock.deadlock-victim"
        ~args:
          [
            ("owner", Obs.Trace.Int w.w_owner);
            ("res", Obs.Trace.Str (Resource.to_string res));
            ("mode", Obs.Trace.Str (Mode.to_string w.w_mode));
          ]
    | None -> ());
    (* The victim event precedes the wakes its removal enables, matching the
       order in which the model must replay the queue change. *)
    emit t (Ev_victim { owner = w.w_owner; res; mode = w.w_mode; forced = false });
    (* Removing the victim may unblock others. *)
    let woken = process_queue t e in
    fire t res e woken;
    w.w_wake Deadlock

let enqueue t ~owner res mode ~instant ~wake =
  if Hashtbl.mem t.pending owner then
    invalid_arg "Lock_mgr.enqueue: owner already waiting";
  let e = entry t res in
  let conversion = owner_modes t e owner <> [] in
  let w = { w_owner = owner; w_mode = mode; w_instant = instant; w_conversion = conversion; w_wake = wake } in
  (* Conversions park ahead of ordinary waiters. *)
  if conversion then begin
    let convs, rest = List.partition (fun w' -> w'.w_conversion) e.queue in
    e.queue <- convs @ [ w ] @ rest
  end
  else e.queue <- e.queue @ [ w ];
  Hashtbl.replace t.pending owner res;
  t.waits <- t.waits + 1;
  (mode_stats t mode).m_waits <- (mode_stats t mode).m_waits + 1;
  emit t (Ev_queued { owner; res; mode; instant; conversion });
  match find_cycle t owner with
  | Some cycle -> resolve_deadlock t cycle
  | None -> ()

let cancel_wait t ~owner =
  match remove_waiter t owner with
  | None -> false
  | Some (res, e, w) ->
    t.deadlocks <- t.deadlocks + 1;
    t.cancelled_waits <- t.cancelled_waits + 1;
    (mode_stats t w.w_mode).m_deadlocks <- (mode_stats t w.w_mode).m_deadlocks + 1;
    (match t.tracer with
    | Some tr ->
      Obs.Trace.instant tr ~cat:"lock" "lock.forced-abort"
        ~args:
          [
            ("owner", Obs.Trace.Int w.w_owner);
            ("res", Obs.Trace.Str (Resource.to_string res));
            ("mode", Obs.Trace.Str (Mode.to_string w.w_mode));
          ]
    | None -> ());
    emit t (Ev_victim { owner = w.w_owner; res; mode = w.w_mode; forced = true });
    let woken = process_queue t e in
    fire t res e woken;
    w.w_wake Deadlock;
    true

let release t ~owner res mode =
  match entry_opt t res with
  | None -> invalid_arg "Lock_mgr.release: resource not locked"
  | Some e ->
    remove_holding t e owner res mode;
    t.releases <- t.releases + 1;
    emit t (Ev_released { owner; res; mode });
    let woken = process_queue t e in
    fire t res e woken

let downgrade t ~owner res ~from_ ~to_ =
  match entry_opt t res with
  | None -> invalid_arg "Lock_mgr.downgrade: resource not locked"
  | Some e ->
    remove_holding t e owner res from_;
    add_holding t e owner res to_;
    emit t (Ev_released { owner; res; mode = from_ });
    emit t (Ev_granted { owner; res; mode = to_; after_wait = false });
    let woken = process_queue t e in
    fire t res e woken

let release_all t ~owner =
  (match remove_waiter t owner with
  | Some (res, e, w) ->
    emit t (Ev_dequeued { owner; res; mode = w.w_mode });
    let woken = process_queue t e in
    fire t res e woken
  | None -> ());
  match Hashtbl.find_opt t.owner_index owner with
  | None -> ()
  | Some s ->
    let resources = Rtbl.fold (fun r () acc -> r :: acc) s [] |> List.sort compare in
    Hashtbl.remove t.owner_index owner;
    List.iter
      (fun res ->
        match entry_opt t res with
        | None -> ()
        | Some e ->
          (match (t.event_hook, Hashtbl.find_opt e.holders owner) with
          | Some _, Some ms ->
            List.iter
              (fun (m, n) ->
                for _ = 1 to n do
                  emit t (Ev_released { owner; res; mode = m })
                done)
              ms
          | _ -> ());
          ignore (drop_owner t e owner res);
          t.releases <- t.releases + 1;
          let woken = process_queue t e in
          fire t res e woken)
      resources

let holds t ~owner res =
  match entry_opt t res with None -> [] | Some e -> List.map fst (owner_modes t e owner)

let held_resources t ~owner =
  match Hashtbl.find_opt t.owner_index owner with
  | None -> []
  | Some s ->
    Rtbl.fold (fun res () acc -> (res, holds t ~owner res) :: acc) s [] |> List.sort compare

let holders t res =
  match entry_opt t res with
  | None -> []
  | Some e ->
    Hashtbl.fold (fun o ms acc -> (o, List.map fst ms) :: acc) e.holders [] |> List.sort compare

let waiters t res =
  match entry_opt t res with
  | None -> []
  | Some e -> List.map (fun w -> (w.w_owner, w.w_mode)) e.queue

let is_waiting t ~owner = Hashtbl.mem t.pending owner

let locked_count t ~owner =
  match Hashtbl.find_opt t.owner_index owner with None -> 0 | Some s -> Rtbl.length s

let max_locked_count t ~owner =
  match Hashtbl.find_opt t.max_locked owner with Some m -> m | None -> 0

let reset_max_locked t ~owner = Hashtbl.remove t.max_locked owner

let clear t =
  Rtbl.reset t.entries;
  Hashtbl.reset t.owner_index;
  Hashtbl.reset t.max_locked;
  Hashtbl.reset t.pending

let stats t =
  {
    acquires = t.acquires;
    waits = t.waits;
    grants_after_wait = t.grants_after_wait;
    instant_signals = t.instant_signals;
    give_ups = t.give_ups;
    cancelled_waits = t.cancelled_waits;
    deadlocks = t.deadlocks;
    releases = t.releases;
    scan_steps = t.scan_steps;
    instant_checks = t.instant_checks;
  }

let reset_stats t =
  t.acquires <- 0;
  t.waits <- 0;
  t.grants_after_wait <- 0;
  t.instant_signals <- 0;
  t.deadlocks <- 0;
  t.releases <- 0;
  t.give_ups <- 0;
  t.cancelled_waits <- 0;
  t.scan_steps <- 0;
  t.instant_checks <- 0;
  Hashtbl.reset t.by_mode
