(** Lock modes, including the paper's three new ones.

    Standard modes: [IS], [IX] (intention locks, held on the tree lock and on
    leaf pages under record-level locking), [S], [X].

    Paper modes (§4):
    - [R]: reorganizer share lock on {e base pages}.  Compatible with [S] so
      readers keep reading base pages whose children are being reorganized.
    - [RX]: reorganizer exclusive lock on {e leaf pages} in the current
      reorganization unit.  "Not compatible with any lock mode."  It differs
      from [X] only in the {e requester's} reaction: a user transaction that
      hits [RX] gives up instead of waiting.
    - [RS]: requested by blocked readers/updaters on the {e parent base page},
      always as an unconditional instant-duration request — it is signalled
      when grantable but never actually granted.  Incompatible with [R], so
      the signal fires exactly when the reorganizer has finished with that
      base page.

    Cells the paper's Table 1 leaves blank (mode pairs that never meet on one
    resource) are filled conservatively; {!paper_cell} reports which cells are
    specified so the Table-1 reproduction can distinguish them. *)

type t = IS | IX | S | X | R | RX | RS

val all : t list

val index : t -> int
(** Dense index in [0, arity): position of the mode in {!all} — used for
    per-mode count arrays. *)

val arity : int
(** Number of modes. *)

val of_index : t array
(** Inverse of {!index}: [of_index.(index m) = m]. *)

val compat : t -> t -> bool
(** [compat granted requested] — symmetric. *)

val test_break_compat : (t * t) option ref
(** Test-only mutation hook: while [Some (a, b)], {!compat} reports that pair
    (in either order) as compatible regardless of Table 1.  The model
    conformance self-test uses it to prove the protocol checker actually
    fires; production code must leave it [None]. *)

val covers : held:t -> need:t -> bool
(** Does holding [held] subsume a request for [need]?  ([X] covers all, [S]
    covers [IS], [IX] covers [IS].) *)

val is_upgrade : from_:t -> to_:t -> bool
(** True when converting [from_] to [to_] strengthens the lock (the
    conversions the system performs: [R]->[X], [IS]->[IX], [S]->[X],
    [IX]->[X], [IS]->[S|X]). *)

val paper_cell : granted:t -> requested:t -> [ `Yes | `No | `Blank ]
(** The literal content of the paper's Table 1 (with [RS] never granted). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
