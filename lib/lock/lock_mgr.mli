(** Lock manager with queues, instant-duration requests and deadlock
    detection.

    The manager is scheduler-agnostic: {!try_acquire} never blocks; a caller
    that decides to wait parks itself with {!enqueue}, supplying a [wake]
    thunk that the manager calls with [Granted] (or [Deadlock] if the wait was
    chosen as a deadlock victim).  The cooperative scheduler's lock client
    wraps this into a blocking call.

    Grant policy:
    - a new request is granted iff its mode is compatible with every other
      holder {e and} every queued waiter (FIFO fairness — requests do not
      overtake the queue);
    - a {e conversion} (the owner already holds the resource and asks for a
      stronger mode, e.g. the reorganizer's R->X upgrade on base pages) only
      checks other holders and, when queued, goes to the front;
    - an {e instant-duration} request (the paper's unconditional RS, and the
      instant IX on the side file during the switch) is signalled when it
      becomes grantable but never actually granted (§4, [Moh90]).

    Deadlock handling follows the paper: detection on a waits-for graph at
    enqueue time; "whenever the reorganizer gets in a deadlock, we always
    force the reorganizer to give up" — owners registered with
    {!register_reorganizer} are preferred victims; otherwise the requester
    that closed the cycle is chosen. *)

type t

type owner = int

type grant = Granted | Deadlock

type outcome =
  [ `Granted  (** lock acquired (or already covered by a held mode) *)
  | `Conflict of (owner * Mode.t) list  (** blockers: holders and queued waiters *)
  ]

type stats = {
  acquires : int;  (** successful immediate grants *)
  waits : int;  (** requests that had to queue *)
  grants_after_wait : int;
  instant_signals : int;  (** instant-duration requests signalled *)
  give_ups : int;
      (** the paper's give-ups: signalled instant requests where the
          requester abandons its attempt and retries (equal to
          [instant_signals] today — kept distinct so the semantics can
          diverge, e.g. if instant requests gain other uses) *)
  cancelled_waits : int;  (** waits cancelled from outside (switch time limit) *)
  deadlocks : int;  (** victims woken with [Deadlock] *)
  releases : int;
  scan_steps : int;
      (** lock-table work metric: holder/queue/index elements examined on the
          acquire/release paths — the unit of the lock-manager hot-path
          before/after comparisons *)
  instant_checks : int;
      (** non-mutating {!probe} calls — the optimistic read path's
          RX-presence tests, counted apart from [acquires] so OLC fallback
          probes don't masquerade as lock traffic *)
}

val create : unit -> t

val register_reorganizer : t -> owner -> unit
(** Mark [owner] as the reorganization process for victim selection. *)

val try_acquire : t -> owner:owner -> Resource.t -> Mode.t -> outcome
(** Non-blocking acquire.  Re-acquiring a mode already covered by a held mode
    on the same resource is granted re-entrantly. *)

val probe : t -> owner:owner -> Resource.t -> Mode.t -> bool
(** Instant-style grantability test: would {!try_acquire} grant [mode] right
    now?  Takes nothing and never enqueues — the decision is advisory and
    immediately stale.  The optimistic read path probes [S] on a leaf to
    detect an RX/X holder (a reorganization unit or writer mid-flight)
    without generating lock traffic; counted in [stats.instant_checks]. *)

val enqueue :
  t -> owner:owner -> Resource.t -> Mode.t -> instant:bool -> wake:(grant -> unit) -> unit
(** Park a request that {!try_acquire} refused.  [wake] fires later, exactly
    once.  Raises [Invalid_argument] if the owner already has a pending wait
    (cooperative processes wait on one thing at a time). *)

val release : t -> owner:owner -> Resource.t -> Mode.t -> unit
(** Release one acquisition of [mode].  Raises [Invalid_argument] if not
    held. *)

val cancel_wait : t -> owner:owner -> bool
(** Wake the owner's pending wait with [Deadlock], if it has one — used by
    the switch's §7.4 time limit to force old-tree transactions (blocked on
    the side file) to abort.  Returns whether a wait was cancelled. *)

val release_all : t -> owner:owner -> unit
(** Drop every lock held by [owner] and cancel its pending wait, if any
    (the wait's [wake] is {e not} called). *)

val downgrade : t -> owner:owner -> Resource.t -> from_:Mode.t -> to_:Mode.t -> unit
(** Atomically replace one held mode by a weaker one (e.g. S -> IS after
    reading), then re-examine the queue. *)

val holds : t -> owner:owner -> Resource.t -> Mode.t list
(** Modes currently held by [owner] on the resource (with multiplicity 1 per
    distinct mode). *)

val held_resources : t -> owner:owner -> (Resource.t * Mode.t list) list

val holders : t -> Resource.t -> (owner * Mode.t list) list

val waiters : t -> Resource.t -> (owner * Mode.t) list

val is_waiting : t -> owner:owner -> bool

val wait_edges : t -> owner -> owner list
(** Local waits-for edges of [owner]: the holders and earlier queued waiters
    whose modes conflict with its pending request here.  Empty if the owner
    is not waiting in this manager. *)

val set_extra_edges : t -> (owner -> owner list) option -> unit
(** Install (or clear) a source of waits-for edges from outside this lock
    domain.  Deadlock detection unions these with the local edges, so a
    coordinator that points each shard's manager at the other shards'
    {!wait_edges} makes cross-shard cycles visible to every local detector.
    The closure must return {e raw local} edges of other managers only —
    never their own combined view — or detection would recurse forever. *)

val locked_count : t -> owner:owner -> int
(** Number of distinct resources on which [owner] holds at least one mode —
    the "how much of the tree does the reorganizer lock" metric. *)

val max_locked_count : t -> owner:owner -> int
(** High-water mark of {!locked_count} since creation or the last
    {!reset_max_locked}. *)

val reset_max_locked : t -> owner:owner -> unit

val clear : t -> unit
(** Drop every lock and pending wait without waking anyone — crash
    simulation (lock state is volatile). *)

val stats : t -> stats
val reset_stats : t -> unit

(** {2 Observability} *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register [lock.acquires], [lock.releases], [lock.waits],
    [lock.grants_after_wait], [lock.instant_signals], [lock.give_ups]
    (instant-duration RS signals — the paper's give-up count),
    [lock.cancelled_waits] (switch-time forced aborts), [lock.deadlocks],
    [lock.scan_steps], [lock.instant_checks], and per-mode
    [lock.{acquires,waits,deadlock_victims}.<MODE>] gauges.  Each gauge reads
    the like-named {!stats} counter. *)

val mode_tally : t -> Mode.t -> int * int * int
(** [(acquires, waits, deadlock_victims)] for one mode. *)

val set_tracer : t -> Obs.Trace.t option -> unit
(** While set, deadlock victims and switch-time forced aborts are recorded
    as instant events; the scheduler's lock client additionally records each
    lock wait as a span on the waiting process's timeline row. *)

val tracer : t -> Obs.Trace.t option

(** {2 Protocol events}

    A typed stream of every observable lock-table decision, consumed by the
    model-conformance checker ([lib/model]).  Events fire in decision order:
    a deadlock victim's {!Ev_victim} precedes the {!Ev_granted}s its removal
    enables; a grant after waiting fires before the waiter's [wake]. *)

type event =
  | Ev_granted of { owner : owner; res : Resource.t; mode : Mode.t; after_wait : bool }
      (** a mode was added to the owner's holdings (immediately, by
          conversion/cover, or — [after_wait] — when its queued wait fired) *)
  | Ev_queued of {
      owner : owner;
      res : Resource.t;
      mode : Mode.t;
      instant : bool;
      conversion : bool;
    }  (** the request conflicted and parked in the queue *)
  | Ev_signalled of { owner : owner; res : Resource.t; mode : Mode.t }
      (** instant-duration request signalled (never granted): the give-up *)
  | Ev_victim of { owner : owner; res : Resource.t; mode : Mode.t; forced : bool }
      (** wait woken with [Deadlock]: victim selection, or a [forced]
          switch-drain {!cancel_wait} *)
  | Ev_dequeued of { owner : owner; res : Resource.t; mode : Mode.t }
      (** wait silently dropped by its own owner's {!release_all} *)
  | Ev_released of { owner : owner; res : Resource.t; mode : Mode.t }
      (** one acquisition released (bulk {!release_all} emits one event per
          held acquisition) *)

val set_event_hook : t -> (event -> unit) option -> unit
(** Install (or clear) the protocol-event consumer.  With no hook installed
    the emission paths cost a single [None] test. *)
