(* Experiment E3 — §5.1/§8 "better recovery method": after a crash in the
   middle of reorganization, forward recovery finishes the interrupted unit
   and resumes from LK, while the Tandem baseline rolls its in-flight
   transaction back and retains no reorganization cursor.

   We crash both methods at the same scheduler tick, recover, and report how
   much reorganization work survived and how much had to be repeated. *)

module Engine = Sched.Engine
module Tree = Btree.Tree

let crash_ours ~crash_at =
  let db, expected = Scenario.aged ~seed:47 ~n:1200 ~f1:0.3 () in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () -> ignore (Reorg.Driver.run ctx));
  Engine.spawn eng (fun () ->
      Engine.sleep crash_at;
      Engine.stop eng);
  Engine.run eng;
  let units_before = (Reorg.Metrics.units ctx.Reorg.Ctx.metrics) in
  Db.crash_now ~flush_seed:(crash_at * 3) db;
  let ctx2, outcome = Reorg.Recovery.restart ~access:db.Db.access ~config:Reorg.Config.default () in
  let lk = Reorg.Rtable.lk ctx2.Reorg.Ctx.rtable in
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () -> ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
  Engine.run eng2;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  let units_after_resume = (Reorg.Metrics.units ctx2.Reorg.Ctx.metrics) in
  ( units_before,
    (if lk > min_int then units_before else 0),
    units_after_resume,
    (match outcome.Reorg.Recovery.finished_unit with Some _ -> 1 | None -> 0) )

let crash_tandem ~crash_at =
  let db, _expected = Scenario.aged ~seed:47 ~n:1200 ~f1:0.3 () in
  let stats = Baseline.Tandem.create_stats () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      Baseline.Tandem.compact ~access:db.Db.access ~f2:0.9 stats;
      Baseline.Tandem.order_leaves ~access:db.Db.access stats);
  Engine.spawn eng (fun () ->
      Engine.sleep crash_at;
      Engine.stop eng);
  Engine.run eng;
  let ops_before = stats.Baseline.Tandem.ops in
  Db.crash_now ~flush_seed:(crash_at * 3) db;
  (* Tandem recovery: ordinary restart; the in-flight operation rolls back
     and the whole pass restarts from the front (its scan has no durable
     cursor).  The completed merges whose pages were committed survive as
     tree state, but the reorganizer re-scans everything. *)
  let _ctx, _outcome = Reorg.Recovery.restart ~access:db.Db.access ~config:Reorg.Config.default () in
  let stats2 = Baseline.Tandem.create_stats () in
  let eng2 = Engine.create () in
  Engine.spawn eng2 (fun () ->
      Baseline.Tandem.compact ~access:db.Db.access ~f2:0.9 stats2;
      Baseline.Tandem.order_leaves ~access:db.Db.access stats2);
  Engine.run eng2;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  (ops_before, stats2.Baseline.Tandem.ops)

let run () =
  let table =
    Util.Table.create
      ~title:
        "E3 — crash during reorganization: forward recovery vs rollback\n\
         (work before crash is preserved by forward recovery; the in-flight\n\
         unit is finished, not undone)"
      [ ("crash tick", Util.Table.Right); ("method", Util.Table.Left);
        ("units/ops before crash", Util.Table.Right); ("preserved", Util.Table.Right);
        ("in-flight unit", Util.Table.Left); ("work after restart", Util.Table.Right) ]
  in
  List.iter
    (fun crash_at ->
      let before, preserved, after_resume, finished = crash_ours ~crash_at in
      Util.Table.add_row table
        [ string_of_int crash_at; "paper (forward recovery)"; string_of_int before;
          string_of_int preserved;
          (if finished > 0 then "finished forward" else "none in flight");
          string_of_int after_resume ];
      let t_before, t_after = crash_tandem ~crash_at in
      Util.Table.add_row table
        [ string_of_int crash_at; "tandem (rollback)"; string_of_int t_before; "state only";
          "rolled back"; string_of_int t_after ];
      Util.Table.add_rule table)
    [ 40; 120; 300 ];
  table
