module Engine = Sched.Engine
module Tree = Btree.Tree
module Txn_mgr = Transact.Txn_mgr

let records_for n = List.init n (fun i -> (2 * i, Db.payload_for (2 * i)))

let aged ?faults ?(page_size = 512) ?(leaf_pages = 4096) ?(span_factor = 1.4) ?record_locking
    ?capacity ~seed ~n ~f1 () =
  let records = records_for n in
  (* Upper levels degrade less than leaves: load them moderately sparse. *)
  let db =
    Db.load ?faults ~page_size ~leaf_pages ?capacity ?record_locking ~fill:f1
      ~internal_fill:(max f1 0.5) records
  in
  let rng = Util.Rng.create seed in
  Workload.Scramble.spread_leaves db.Db.tree rng ~span_factor;
  Db.flush_all db;
  (db, records)

let thinned ?(page_size = 512) ~seed ~n ~survive () =
  let rng = Util.Rng.create seed in
  let scenario = Workload.Sparse.uniform_thinning ~rng ~n ~survive in
  let db = Db.load ~page_size ~fill:0.95 scenario.Workload.Sparse.initial in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  List.iter
    (fun k -> ignore (Tree.delete db.Db.tree ~txn:tx k))
    scenario.Workload.Sparse.deletes;
  Txn_mgr.commit db.Db.mgr tx;
  Db.flush_all db;
  let expected =
    List.filter
      (fun (k, _) -> not (List.mem k scenario.Workload.Sparse.deletes))
      scenario.Workload.Sparse.initial
  in
  (db, expected)

let purged ?(page_size = 512) ~seed ~n ~ranges ~width () =
  let rng = Util.Rng.create seed in
  let scenario = Workload.Sparse.range_purge ~rng ~n ~ranges ~width in
  let db = Db.load ~page_size ~fill:0.92 scenario.Workload.Sparse.initial in
  let tx = Txn_mgr.begin_txn db.Db.mgr in
  List.iter
    (fun k -> ignore (Tree.delete db.Db.tree ~txn:tx k))
    scenario.Workload.Sparse.deletes;
  Txn_mgr.commit db.Db.mgr tx;
  Db.flush_all db;
  let expected =
    List.filter
      (fun (k, _) -> not (List.mem k scenario.Workload.Sparse.deletes))
      scenario.Workload.Sparse.initial
  in
  (db, expected)

let run_reorg ?registry ?tracer ?checker ?(config = Reorg.Config.default) ?olc ?(users = 0)
    ?(user_mix = Workload.Mix.read_mostly) ?(user_ops = 10_000) ?user_key_space ?(seed = 1) ?sampler
    ?(sample_every = 25) ?(pipeline = false) ?pipeline_ckpt_every db =
  let prot =
    match checker with
    | Some c ->
      Model.Checker.attach_locks c ~shard:0 db.Db.locks;
      Some (Model.Checker.prot_hook c ~shard:0)
    | None -> None
  in
  let olc_on = match olc with Some b -> b | None -> config.Reorg.Config.olc in
  Btree.Access.set_olc db.Db.access ~max_retries:config.Reorg.Config.olc_max_retries olc_on;
  (* With a checker attached, every committed optimistic read carries its
     oracle verdict into the olc conformance machine. *)
  (match (olc_on, prot) with
  | true, Some p ->
    Btree.Access.set_read_probe db.Db.access
      (Some (fun ~leaf ~key ~valid -> p (Reorg.Prot.Olc_read { leaf; key; valid })))
  | _ -> Btree.Access.set_read_probe db.Db.access None);
  let ctx = Reorg.Ctx.make ?registry ?tracer ?prot ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  Engine.set_tracer eng ctx.Reorg.Ctx.tracer;
  Db.set_tracers db ctx.Reorg.Ctx.tracer;
  (match registry with
  | Some reg ->
    Engine.register_obs eng reg;
    Db.register_obs db reg
  | None -> ());
  let report = ref None in
  (* The sampler is its own scheduler process on the engine's logical
     clock: it snapshots immediately, then every [sample_every] ticks, and
     takes one final sample after the reorganizer reports — so the series
     always shows the recovered end state. *)
  (match sampler with
  | Some s ->
    Obs.Health.Sampler.set_clock s (fun () -> Engine.now eng);
    Engine.spawn eng ~name:"sampler" (fun () ->
        let rec loop () =
          ignore (Obs.Health.Sampler.sample s : Obs.Health.Sampler.snapshot);
          if !report = None then begin
            Engine.sleep (max 1 sample_every);
            loop ()
          end
        in
        loop ())
  | None -> ());
  Engine.spawn eng ~name:"reorganizer" (fun () -> report := Some (Reorg.Driver.run ctx));
  let ustats =
    if users > 0 then
      Workload.Mix.spawn_users eng ~access:db.Db.access ~seed ~users ~ops_per_user:user_ops
        ?key_space:user_key_space
        ~stop:(fun () -> !report <> None)
        ~mix:user_mix ()
    else Workload.Mix.create_stats ()
  in
  Pipeline.with_pipeline ~enabled:pipeline ?ckpt_every:pipeline_ckpt_every ~ctx eng db
    ~stop:(fun () -> !report <> None)
    (fun () -> Engine.run eng);
  match !report with
  | Some r -> (ctx, r, ustats)
  | None -> failwith "Scenario.run_reorg: reorganizer did not finish"
