(** Model-conformance runner: seeded deterministic workloads, the
    crash-boundary torture sweeps, and the two mutation self-tests, each
    replayed with a {!Model.Checker} attached.  All runs are deterministic
    from their arguments. *)

type summary = {
  label : string;
  events : int;  (** protocol events judged *)
  tracks : int;  (** machine instances created *)
  violations : Model.Machine.violation list;
}

val ok : summary -> bool
val to_string : summary -> string

val workload : ?olc:bool -> seed:int -> unit -> summary
(** Reorganization of an aged tree with concurrent update-heavy users.
    [olc:true] runs the users' reads through the optimistic path with the
    oracle probe feeding the olc conformance machine. *)

val torture :
  ?n:int ->
  ?leaf_pages:int ->
  ?pipeline:bool ->
  ?olc:bool ->
  seed:int ->
  stride:int ->
  users:int ->
  unit ->
  summary
(** {!Torture.run} with the checker attached; a harness [Failed] (data loss
    rather than a protocol violation) is folded into the summary too.
    [pipeline:true] runs the sweep with the asynchronous durability pipeline
    attached — the checker then also judges crashes that land inside
    group-commit windows and across checkpoint truncation.  [olc:true] turns
    the optimistic read path on in every cycle, so crashes also land inside
    optimistic descents (the epoch invalidation must force a clean retry). *)

val shard_torture : ?n:int -> seed:int -> stride:int -> unit -> summary

val mutate_table1 : unit -> summary
(** Flips one Table-1 cell ({!Lockmgr.Mode.test_break_compat}) and drives the
    lock manager through it: the summary must NOT be [ok]. *)

val mutate_switch : unit -> summary
(** Breaks the §7.1 CK-advance contract ({!Reorg.Pass3.test_skip_ck_advance})
    during a small reorganization: the summary must NOT be [ok]. *)

val mutate_olc : unit -> summary
(** Skips the optimistic-read version bumps ({!Btree.Olc.test_skip_bumps})
    while read-only users race swap/compact units optimistically: the olc
    machine's oracle guard must fire, so the summary must NOT be [ok]. *)
