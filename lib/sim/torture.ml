module Engine = Sched.Engine
module Txn_mgr = Transact.Txn_mgr
module Record = Wal.Record

exception Failed of string

type expectation = {
  base : (int * string) list;
  attempted : (int, string) Hashtbl.t;
  acked : (int, string) Hashtbl.t;
}

let expectation_of_base base =
  { base; attempted = Hashtbl.create 7; acked = Hashtbl.create 7 }

type report = {
  write_boundaries : int;
  force_boundaries : int;
  points : int;
  crashes : int;
  torn_writes : int;
  torn_tails : int;
  units_finished : int;
  torn_repaired : int;
  survivors : int;
}

(* Units that BEGAN in the stable log but never ENDED.  After recovery this
   must be empty: §5.1 finishes every interrupted unit forward and logs its
   END.  (A BEGIN lost with the volatile tail never happened.) *)
let unfinished_units db =
  let open_ = Hashtbl.create 4 in
  Wal.Log.iter db.Db.log (fun _ body ->
      match body with
      | Record.Reorg_begin { unit_id; _ } -> Hashtbl.replace open_ unit_id ()
      | Record.Reorg_end { unit_id; _ } -> Hashtbl.remove open_ unit_id
      | _ -> ());
  Hashtbl.fold (fun u () acc -> u :: acc) open_ []

let verify db exp =
  (try Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree
   with Btree.Invariant.Violation msg -> raise (Failed ("invariant: " ^ msg)));
  let contents = Btree.Invariant.contents db.Db.tree in
  let rec unordered = function
    | (a, _) :: ((b, _) :: _ as rest) -> a >= b || unordered rest
    | _ -> false
  in
  if unordered contents then raise (Failed "duplicate or out-of-order keys");
  (* Base records use even keys, concurrent users insert odd keys: the base
     set must survive exactly; an odd record must match an attempted insert
     (present-but-unacknowledged is fine: the commit was durable but the
     crash ate the acknowledgement); an acknowledged insert must survive. *)
  let evens, odds = List.partition (fun (k, _) -> k land 1 = 0) contents in
  if evens <> exp.base then raise (Failed "base records lost, changed or duplicated");
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt exp.attempted k with
      | Some v' when String.equal v v' -> ()
      | Some _ -> raise (Failed (Printf.sprintf "user record %d has a wrong payload" k))
      | None -> raise (Failed (Printf.sprintf "phantom record %d" k)))
    odds;
  Hashtbl.iter
    (fun k v ->
      match List.assoc_opt k odds with
      | Some v' when String.equal v v' -> ()
      | _ -> raise (Failed (Printf.sprintf "acknowledged record %d lost" k)))
    exp.acked;
  match unfinished_units db with
  | [] -> ()
  | us ->
    raise
      (Failed
         (Printf.sprintf "%d reorganization unit(s) begun but never finished forward"
            (List.length us)))

let run ?registry ?tracer ?checker ?(config = Reorg.Config.default) ?(page_size = 512)
    ?(leaf_pages = 512) ?(n = 400) ?(users = 0) ?(f1 = 0.3) ?(pipeline = false) ?(olc = false)
    ~seed ~stride () =
  if stride < 1 then invalid_arg "Torture.run: stride must be >= 1";
  let faults = Pager.Fault.create () in
  (match registry with Some reg -> Pager.Fault.register_obs faults reg | None -> ());
  let units_finished = ref 0 in
  let torn_repaired = ref 0 in
  let survivors = ref 0 in
  let points = ref 0 in

  (* A deliberately tight pool: crash/recovery sweeps must survive eviction
     traffic (dirty victims, careful-writing prerequisite flushes) firing
     mid-workload, not just at the explicit flush points. *)
  let build () = Scenario.aged ~faults ~page_size ~leaf_pages ~capacity:48 ~seed ~n ~f1 () in

  (* One seeded workload: the reorganization plus [users] writers doing
     single-insert transactions on per-user disjoint odd keys, so the
     expected set is exact.  [attempted] is recorded before the insert is
     attempted, [acked] only once commit returned — a crash in between
     leaves the key in the "may or may not survive" set. *)
  let workload ?prot db attempted acked =
    (* Each cycle builds a fresh store, so the optimistic path (and, with a
       checker, its oracle probe) is re-armed here; crashes then land inside
       optimistic descents and the epoch invalidation must hold up. *)
    Btree.Access.set_olc db.Db.access ~max_retries:config.Reorg.Config.olc_max_retries olc;
    (match (olc, prot) with
    | true, Some p ->
      Btree.Access.set_read_probe db.Db.access
        (Some (fun ~leaf ~key ~valid -> p (Reorg.Prot.Olc_read { leaf; key; valid })))
    | _ -> Btree.Access.set_read_probe db.Db.access None);
    let ctx = Reorg.Ctx.make ?registry ?tracer ?prot ~access:db.Db.access ~config () in
    let eng = Engine.create () in
    Engine.set_tracer eng ctx.Reorg.Ctx.tracer;
    Db.set_tracers db ctx.Reorg.Ctx.tracer;
    let finished = ref false in
    Engine.spawn eng ~name:"reorganizer" (fun () ->
        ignore (Reorg.Driver.run ctx);
        finished := true);
    for u = 0 to users - 1 do
      Engine.spawn eng ~name:(Printf.sprintf "user-%d" u) (fun () ->
          let rng = Util.Rng.create (seed + (101 * u) + 17) in
          while not !finished do
            let key = (2 * ((users * Util.Rng.int rng 100_000) + u)) + 1 in
            if not (Hashtbl.mem attempted key) then begin
              let payload = Db.payload_for key in
              Hashtbl.replace attempted key payload;
              let tx = Txn_mgr.begin_txn db.Db.mgr in
              (try
                 Btree.Access.insert db.Db.access ~txn:tx ~key ~payload;
                 Txn_mgr.commit db.Db.mgr tx;
                 Hashtbl.replace acked key payload
               with Transact.Lock_client.Deadlock_victim -> Txn_mgr.abort db.Db.mgr tx);
              (* Under olc, read the key straight back without locks: the
                 optimistic descent races the reorganizer's units and the
                 crash plan alike. *)
              if olc then begin
                let rt = Txn_mgr.fresh_owner db.Db.mgr in
                (try ignore (Btree.Access.read db.Db.access ~txn:rt key : string option)
                 with Transact.Lock_client.Deadlock_victim -> ());
                Txn_mgr.finish_read_only db.Db.mgr rt
              end
            end;
            Engine.sleep 3
          done)
    done;
    (* With the pipeline on, crash boundaries move INSIDE group-commit
       windows and elevator sweeps, and fuzzy checkpoints truncate the log
       mid-workload — the sweep then proves recovery across all of it. *)
    Pipeline.with_pipeline ~enabled:pipeline ~ckpt_every:40 ~ctx eng db
      ~stop:(fun () -> !finished)
      (fun () -> Engine.run eng);
    (* Background writeback: these page writes are crash boundaries too. *)
    Db.flush_all db
  in

  let cycle plan label =
    incr points;
    let db, base = build () in
    let exp = expectation_of_base base in
    (* The conformance checker judges every cycle — including the crashed
       ones: [crash] drops the volatile model state exactly when the engine
       loses its own, and recovery's events rebuild the surviving tracks. *)
    let prot =
      match checker with
      | Some c ->
        Model.Checker.cycle c label;
        Model.Checker.attach_locks c ~shard:0 db.Db.locks;
        Some (Model.Checker.prot_hook c ~shard:0)
      | None -> None
    in
    Pager.Fault.arm faults plan;
    let crashed =
      try
        workload ?prot db exp.attempted exp.acked;
        Pager.Fault.disarm faults;
        false
      with Pager.Fault.Crash -> true
    in
    if crashed then begin
      (match checker with Some c -> Model.Checker.crash c | None -> ());
      Db.crash_now db;
      let ctx2, outcome =
        Reorg.Recovery.restart ?registry ?tracer ?prot ~access:db.Db.access ~config ()
      in
      units_finished := !units_finished + outcome.Reorg.Recovery.units_finished;
      torn_repaired := !torn_repaired + outcome.Reorg.Recovery.torn_pages;
      let eng = Engine.create () in
      Engine.set_tracer eng ctx2.Reorg.Ctx.tracer;
      Engine.spawn eng ~name:"recovery-resume" (fun () ->
          ignore (Reorg.Recovery.resume_reorganization ctx2 outcome));
      Engine.run eng;
      Db.flush_all db
    end
    else incr survivors;
    (try verify db exp with Failed msg -> raise (Failed (label ^ ": " ^ msg)));
    match checker with
    | Some c -> begin
      Model.Checker.finalize c;
      match Model.Checker.first_violation c with
      | Some v -> raise (Failed (label ^ ": model: " ^ Model.Machine.violation_to_string v))
      | None -> ()
    end
    | None -> ()
  in

  (* Fault-free dry run to discover the crashable boundary space: every page
     write and every advancing log force after the initial build. *)
  let write_boundaries, force_boundaries =
    let db, _ = build () in
    let w0 = (Pager.Disk.stats db.Db.disk).Pager.Disk.writes in
    let f0 = (Wal.Log.stats db.Db.log).Wal.Log.forced in
    workload db (Hashtbl.create 7) (Hashtbl.create 7);
    ( (Pager.Disk.stats db.Db.disk).Pager.Disk.writes - w0,
      (Wal.Log.stats db.Db.log).Wal.Log.forced - f0 )
  in

  let k = ref 1 in
  while !k <= write_boundaries do
    let prng = Util.Rng.create (seed + (7919 * !k)) in
    cycle
      {
        Pager.Fault.no_faults with
        crash_after_writes = Some !k;
        torn_write = Util.Rng.bool prng;
        seed = seed + !k;
      }
      (Printf.sprintf "write-%d" !k);
    k := !k + stride
  done;
  let j = ref 1 in
  while !j <= force_boundaries do
    let prng = Util.Rng.create (seed + (104729 * !j)) in
    cycle
      {
        Pager.Fault.no_faults with
        crash_after_forces = Some !j;
        torn_tail = Util.Rng.bool prng;
        seed = seed + (2 * !j) + 1;
      }
      (Printf.sprintf "force-%d" !j);
    j := !j + stride
  done;
  {
    write_boundaries;
    force_boundaries;
    points = !points;
    crashes = Pager.Fault.crashes faults;
    torn_writes = Pager.Fault.torn_writes faults;
    torn_tails = Pager.Fault.torn_tails faults;
    units_finished = !units_finished;
    torn_repaired = !torn_repaired;
    survivors = !survivors;
  }
