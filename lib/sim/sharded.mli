(** Sharded-assembly helpers for experiments, the torture harness and the
    CLI: build [n] per-shard stores over one partitioned keyspace, run one
    reorganizer per shard (on one engine, or engine-per-shard for the
    embarrassingly-parallel phase), crash the whole machine at once and
    recover every shard independently. *)

type t = {
  map : Shard.Shard_map.t;
  stores : Shard.Store.t array;
  coord : Shard.Coordinator.t;
  router : Shard.Router.t;
  faults : Pager.Fault.t;
      (** the one fault controller every store shares: a crash is a single
          machine-wide event *)
}

val shards : t -> int

val thinned :
  ?faults:Pager.Fault.t ->
  ?page_size:int ->
  ?capacity:int ->
  seed:int ->
  n:int ->
  survive:float ->
  shards:int ->
  unit ->
  t * (int * string) list
(** The sharded analogue of {!Scenario.thinned}: [n] records over the even
    keys of [[0, 2n)], uniformly partitioned into [shards] ranges, each
    shard bulk-loaded dense and thinned to [survive] through ordinary
    transactions.  Returns the assembly and the merged expected record
    set. *)

val contents : t -> (int * string) list
(** Per-shard tree contents concatenated in shard order — since shard
    ranges are ascending, this is the merged keyspace in key order. *)

val check_invariants : t -> unit
(** {!Btree.Invariant.check} on every shard; raises on the first failure. *)

val flush_all : t -> unit

val crash_now : t -> unit
(** One machine-wide crash: disarm and kill the shared fault controller
    once, drop every store's volatile state, revive. *)

val recover :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?prot:(int -> Reorg.Prot.event -> unit) ->
  ?config:Reorg.Config.t ->
  t ->
  (Reorg.Ctx.t * Reorg.Recovery.outcome) array
(** Restart every shard independently, in shard order, each under its own
    [shard:(i, n)] lattice and a ["shard<i>."]-prefixed registry view.
    [prot i] is installed as shard [i]'s protocol-event sink. *)

val resume_after_recovery : t -> (Reorg.Ctx.t * Reorg.Recovery.outcome) array -> unit
(** Resume the interrupted per-shard reorganizations concurrently on one
    engine, then flush. *)

type reorg_outcome = {
  reports : Reorg.Driver.report array;
  ticks : int array;  (** per-shard final engine clocks (parallel mode) *)
  makespan : int;  (** max over shards — wall-clock of the parallel phase *)
  total_ticks : int;  (** summed over shards — total work *)
}

val reorg_parallel :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?config:Reorg.Config.t ->
  t ->
  reorg_outcome
(** The embarrassingly-parallel phase: one engine {e per shard}, each
    running that shard's reorganizer to completion.  Shards share no locks,
    no log and no pages, so per-shard clocks are independent; [makespan]
    is the aggregate figure a parallel machine would show. *)

val reorg_with_users :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?config:Reorg.Config.t ->
  ?user_mix:Workload.Mix.mix ->
  ?user_ops:int ->
  ?xspan:int ->
  users:int ->
  seed:int ->
  key_space:int ->
  t ->
  reorg_outcome * Workload.Mix.stats
(** The contended phase: one engine running every shard's reorganizer
    concurrently with [users] cross-shard clients issuing router
    transactions ({!Workload.Mix.spawn_cross_users}).  [ticks] holds the
    single engine's final clock in every slot; [makespan] equals it. *)
