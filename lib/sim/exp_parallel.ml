(* The paper's stated future work: "exploration of parallelism in
   reorganization."

   Pass 1 is range-partitioned across N worker processes, each with its own
   lock identity and unit-id lattice.  With io_pacing > 0 (each unit pays a
   simulated I/O sleep), the workers overlap their I/O and pass 1's elapsed
   time shrinks; total work (units) stays the same, and concurrent readers
   keep reading throughout. *)

module Engine = Sched.Engine

let run_one ~workers =
  let db, expected = Scenario.aged ~seed:71 ~n:2500 ~f1:0.25 () in
  let config =
    { Reorg.Config.default with io_pacing = 4; swap_pass = false; shrink_pass = false }
  in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  let finished = ref false in
  let elapsed = ref 0 in
  Engine.spawn eng (fun () ->
      let t0 = Engine.current_time () in
      ignore (Reorg.Driver.run ~pass1_workers:workers ctx);
      elapsed := Engine.current_time () - t0;
      finished := true);
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:5 ~users:4 ~ops_per_user:100_000
      ~key_space:2500
      ~stop:(fun () -> !finished)
      ~mix:Workload.Mix.read_only ()
  in
  Engine.run eng;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  (!elapsed, (Reorg.Metrics.units ctx.Reorg.Ctx.metrics), stats)

let run () =
  let table =
    Util.Table.create
      ~title:
        "Future work — parallel pass 1 (range-partitioned workers; unit I/O\n\
         pacing 4 ticks; 4 concurrent readers)"
      [ ("workers", Util.Table.Right); ("pass-1 ticks", Util.Table.Right);
        ("speedup", Util.Table.Right); ("units", Util.Table.Right);
        ("reader ops done", Util.Table.Right); ("reader give-ups", Util.Table.Right) ]
  in
  let base = ref 0.0 in
  List.iter
    (fun workers ->
      let elapsed, units, stats = run_one ~workers in
      if workers = 1 then base := float_of_int elapsed;
      Util.Table.add_row table
        [ string_of_int workers; Util.Table.fmt_int elapsed;
          Util.Table.fmt_ratio (Util.Stats.ratio !base (float_of_int elapsed));
          string_of_int units; Util.Table.fmt_int stats.Workload.Mix.committed;
          string_of_int stats.Workload.Mix.give_ups ])
    [ 1; 2; 4; 8 ];
  table
