(* Cross-shard crash/recovery torture: the sharded analogue of {!Torture}.

   One seeded workload — every shard's reorganizer plus [users] clients
   issuing cross-shard multi-insert transactions through the router — is
   replayed once per crashable I/O boundary (every page write and every
   advancing log force across the whole machine, the shards share one fault
   controller).  Each replay crashes the machine at its boundary, recovers
   every shard independently, resumes the interrupted reorganizations, and
   verifies:

   - per-shard B+tree invariants and merged key order;
   - the base (even-key) records survive exactly;
   - every odd record matches an attempted insert (no phantoms);
   - {e acked transactions are all-or-nothing}: a transaction acknowledged
     before the crash has every one of its keys present — across all the
     shards it wrote.  Crashing between the first and last shard's commit
     record must therefore never strand an acked transaction half-applied
     (unacked transactions may legitimately commit a prefix of shards);
   - no reorganization unit in any shard's stable log is begun but
     unfinished. *)

module Engine = Sched.Engine
module Store = Shard.Store
module Shard_map = Shard.Shard_map
module Coordinator = Shard.Coordinator
module Router = Shard.Router
module Record = Wal.Record

exception Failed of string

type report = {
  write_boundaries : int;
  force_boundaries : int;
  points : int;
  crashes : int;
  torn_writes : int;
  torn_tails : int;
  units_finished : int;
  torn_repaired : int;
  survivors : int;
  acked_txns : int;  (** acked cross-shard transactions verified all-or-nothing *)
}

let unfinished_units (st : Store.t) =
  let open_ = Hashtbl.create 4 in
  Wal.Log.iter st.Store.log (fun _ body ->
      match body with
      | Record.Reorg_begin { unit_id; _ } -> Hashtbl.replace open_ unit_id ()
      | Record.Reorg_end { unit_id; _ } -> Hashtbl.remove open_ unit_id
      | _ -> ());
  Hashtbl.fold (fun u () acc -> u :: acc) open_ []

(* An odd key inside shard [i]'s range, chosen by [draw].  The uniform maps
   built by {!Sharded.thinned} bound every shard inside [0, key_space). *)
let odd_key_in map ~key_space i draw =
  let lo, hi = Shard_map.range_of map i in
  let lo = max 0 (Option.value lo ~default:0) in
  let hi = min key_space (Option.value hi ~default:key_space) in
  let first = if lo land 1 = 1 then lo else lo + 1 in
  let count = (hi - first + 1) / 2 in
  if count <= 0 then None else Some (first + (2 * (draw mod count)))

let verify t ~base ~attempted ~acked =
  (try Sharded.check_invariants t
   with Btree.Invariant.Violation msg -> raise (Failed ("invariant: " ^ msg)));
  let contents = Sharded.contents t in
  let rec unordered = function
    | (a, _) :: ((b, _) :: _ as rest) -> a >= b || unordered rest
    | _ -> false
  in
  if unordered contents then raise (Failed "duplicate or out-of-order merged keys");
  let evens, odds = List.partition (fun (k, _) -> k land 1 = 0) contents in
  if evens <> base then raise (Failed "base records lost, changed or duplicated");
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt attempted k with
      | Some v' when String.equal v v' -> ()
      | Some _ -> raise (Failed (Printf.sprintf "user record %d has a wrong payload" k))
      | None -> raise (Failed (Printf.sprintf "phantom record %d" k)))
    odds;
  (* The all-or-nothing clause: every key of every acked transaction. *)
  List.iter
    (fun group ->
      List.iter
        (fun (k, v) ->
          match List.assoc_opt k odds with
          | Some v' when String.equal v v' -> ()
          | _ ->
            raise
              (Failed
                 (Printf.sprintf
                    "acked cross-shard txn lost key %d (group of %d): not all-or-nothing" k
                    (List.length group))))
        group)
    acked;
  Array.iter
    (fun (st : Store.t) ->
      match unfinished_units st with
      | [] -> ()
      | us ->
        let i, _ = st.Store.shard in
        raise
          (Failed
             (Printf.sprintf "shard %d: %d reorganization unit(s) begun but never finished"
                i (List.length us))))
    t.Sharded.stores

let run ?registry ?tracer ?checker ?(config = Reorg.Config.default) ?(page_size = 512)
    ?(n = 300) ?(shards = 3) ?(users = 3) ?(xspan = 2) ?(survive = 0.45) ~seed ~stride () =
  if stride < 1 then invalid_arg "Shard_torture.run: stride must be >= 1";
  if xspan < 1 then invalid_arg "Shard_torture.run: xspan must be >= 1";
  let faults = Pager.Fault.create () in
  (match registry with Some reg -> Pager.Fault.register_obs faults reg | None -> ());
  let key_space = 2 * n in
  let units_finished = ref 0 in
  let torn_repaired = ref 0 in
  let survivors = ref 0 in
  let points = ref 0 in
  let acked_total = ref 0 in

  let build () =
    Sharded.thinned ~faults ~page_size ~capacity:48 ~seed ~n ~survive ~shards ()
  in

  (* The seeded workload: [shards] reorganizers and [users] clients on one
     engine.  Each client operation is one cross-shard transaction inserting
     [xspan] odd keys in [xspan] distinct shards (when available), committed
     through the shard-ordered protocol.  [attempted] is filled before the
     first insert, [acked] only once commit returned. *)
  let workload ?prot (t : Sharded.t) attempted acked =
    let nshards = Sharded.shards t in
    let eng = Engine.create () in
    let done_ = ref 0 in
    for i = 0 to nshards - 1 do
      let st = t.Sharded.stores.(i) in
      let ctx =
        Reorg.Ctx.make ?registry ?tracer
          ?prot:(Option.map (fun f -> f i) prot)
          ~shard:(i, nshards) ~access:st.Store.access ~config ()
      in
      if i = 0 then begin
        Engine.set_tracer eng ctx.Reorg.Ctx.tracer;
        Array.iter (fun s -> Store.set_tracers s ctx.Reorg.Ctx.tracer) t.Sharded.stores
      end;
      Engine.spawn eng ~name:(Printf.sprintf "reorganizer-%d" i) (fun () ->
          ignore (Reorg.Driver.run ctx);
          incr done_)
    done;
    for u = 0 to users - 1 do
      Engine.spawn eng ~name:(Printf.sprintf "xuser-%d" u) (fun () ->
          let rng = Util.Rng.create (seed + (101 * u) + 17) in
          while !done_ < nshards do
            let span = min xspan nshards in
            (* [span] distinct shards, then one fresh odd key in each. *)
            let picked = ref [] in
            while List.length !picked < span do
              let s = Util.Rng.int rng nshards in
              if not (List.mem s !picked) then picked := s :: !picked
            done;
            let group =
              List.filter_map
                (fun s ->
                  match odd_key_in t.Sharded.map ~key_space s (Util.Rng.int rng 100_000) with
                  | Some k when not (Hashtbl.mem attempted k) ->
                    Some (k, Store.payload_for k)
                  | _ -> None)
                (List.sort compare !picked)
            in
            if group <> [] then begin
              (* No yield between these marks and the first insert below, so
                 no other user can pick the same keys in between. *)
              List.iter (fun (k, v) -> Hashtbl.replace attempted k v) group;
              let x = Coordinator.begin_x t.Sharded.coord in
              (try
                 List.iter
                   (fun (k, v) -> Router.insert t.Sharded.router x ~key:k ~payload:v)
                   group;
                 Coordinator.commit t.Sharded.coord x;
                 acked := group :: !acked
               with Transact.Lock_client.Deadlock_victim ->
                 Coordinator.abort t.Sharded.coord x)
            end;
            Engine.sleep 3
          done)
    done;
    Engine.run eng;
    Sharded.flush_all t
  in

  let cycle plan label =
    incr points;
    let t, base = build () in
    let attempted = Hashtbl.create 31 in
    let acked = ref [] in
    (* One checker spans the whole machine: per-shard lock and protocol
       streams plus the coordinator's commit-protocol stream. *)
    let prot =
      match checker with
      | Some c ->
        Model.Checker.cycle c label;
        Array.iteri
          (fun i (st : Store.t) -> Model.Checker.attach_locks c ~shard:i st.Store.locks)
          t.Sharded.stores;
        Model.Checker.attach_coordinator c t.Sharded.coord;
        Some (fun i -> Model.Checker.prot_hook c ~shard:i)
      | None -> None
    in
    Pager.Fault.arm faults plan;
    let crashed =
      try
        workload ?prot t attempted acked;
        Pager.Fault.disarm faults;
        false
      with Pager.Fault.Crash -> true
    in
    match
      if crashed then begin
        (match checker with Some c -> Model.Checker.crash c | None -> ());
        Sharded.crash_now t;
        let recovered = Sharded.recover ?registry ?tracer ?prot ~config t in
        Array.iter
          (fun (_, (o : Reorg.Recovery.outcome)) ->
            units_finished := !units_finished + o.Reorg.Recovery.units_finished;
            torn_repaired := !torn_repaired + o.Reorg.Recovery.torn_pages)
          recovered;
        Sharded.resume_after_recovery t recovered
      end
      else incr survivors;
      acked_total := !acked_total + List.length !acked;
      verify t ~base ~attempted ~acked:!acked;
      match checker with
      | Some c -> begin
        Model.Checker.finalize c;
        match Model.Checker.first_violation c with
        | Some v -> raise (Failed ("model: " ^ Model.Machine.violation_to_string v))
        | None -> ()
      end
      | None -> ()
    with
    | () -> ()
    | exception Failed msg -> raise (Failed (label ^ ": " ^ msg))
    | exception e -> raise (Failed (label ^ ": " ^ Printexc.to_string e))
  in

  (* Fault-free dry run: the crashable boundary space is every page write on
     any shard's disk plus every advancing force of any shard's log. *)
  let write_boundaries, force_boundaries =
    let t, _ = build () in
    let writes () =
      Array.fold_left
        (fun acc (st : Store.t) -> acc + (Pager.Disk.stats st.Store.disk).Pager.Disk.writes)
        0 t.Sharded.stores
    in
    let forces () =
      Array.fold_left
        (fun acc (st : Store.t) -> acc + (Wal.Log.stats st.Store.log).Wal.Log.forced)
        0 t.Sharded.stores
    in
    let w0 = writes () and f0 = forces () in
    workload t (Hashtbl.create 31) (ref []);
    (writes () - w0, forces () - f0)
  in

  let k = ref 1 in
  while !k <= write_boundaries do
    let prng = Util.Rng.create (seed + (7919 * !k)) in
    cycle
      {
        Pager.Fault.no_faults with
        crash_after_writes = Some !k;
        torn_write = Util.Rng.bool prng;
        seed = seed + !k;
      }
      (Printf.sprintf "write-%d" !k);
    k := !k + stride
  done;
  let j = ref 1 in
  while !j <= force_boundaries do
    let prng = Util.Rng.create (seed + (104729 * !j)) in
    cycle
      {
        Pager.Fault.no_faults with
        crash_after_forces = Some !j;
        torn_tail = Util.Rng.bool prng;
        seed = seed + (2 * !j) + 1;
      }
      (Printf.sprintf "force-%d" !j);
    j := !j + stride
  done;
  {
    write_boundaries;
    force_boundaries;
    points = !points;
    crashes = Pager.Fault.crashes faults;
    torn_writes = Pager.Fault.torn_writes faults;
    torn_tails = Pager.Fault.torn_tails faults;
    units_finished = !units_finished;
    torn_repaired = !torn_repaired;
    survivors = !survivors;
    acked_txns = !acked_total;
  }
