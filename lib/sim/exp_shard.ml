(* Experiment S1 — keyspace-sharded reorganization scaling.

   One fixed sparse workload (n records thinned to [survive]) is partitioned
   into 1, 2, 4 and 8 keyspace shards.  Each configuration runs two phases:

   - the embarrassingly-parallel phase: one engine per shard, each running
     that shard's reorganizer to completion.  Shards share nothing, so the
     makespan (max per-shard clock) is the aggregate figure a machine running
     them side by side would show — this is the number that must scale.
   - the contended phase: a fresh assembly of the same workload, every
     shard's reorganizer on ONE engine together with cross-shard client
     transactions committing through the shard-ordered 2PL protocol.

   Per-shard counter blocks (ticks, io, locks, wal) from the parallel phase
   are reported to the ambient Probe collector, so `bench --json` emits them
   as this experiment's schema-v3 [shard_sweep] array. *)

module Store = Shard.Store

let seed = 42
let default_n = 4000
let survive = 0.35
let default_counts = [ 1; 2; 4; 8 ]

let arm_of_store i ticks (st : Store.t) =
  let d = Pager.Disk.stats st.Store.disk in
  let l = Lockmgr.Lock_mgr.stats st.Store.locks in
  let w = Wal.Log.stats st.Store.log in
  {
    Probe.a_shard = i;
    a_ticks = ticks;
    a_io_reads = d.Pager.Disk.reads;
    a_io_writes = d.Pager.Disk.writes;
    a_io_cost = Pager.Disk.io_cost d;
    a_lock_acquires = l.Lockmgr.Lock_mgr.acquires;
    a_wal_records = w.Wal.Log.records;
  }

let run_point ?registry ~n shards =
  (* Phase A: parallel reorganization, engine per shard. *)
  let t, expected = Sharded.thinned ~seed ~n ~survive ~shards () in
  let outcome = Sharded.reorg_parallel ?registry t in
  Sharded.check_invariants t;
  if Sharded.contents t <> expected then
    failwith
      (Printf.sprintf "exp_shard: %d-shard parallel phase lost records" shards);
  let arms =
    Array.to_list
      (Array.mapi (fun i st -> arm_of_store i outcome.Sharded.ticks.(i) st) t.Sharded.stores)
  in
  (* Phase B: fresh assembly, reorganizers and cross-shard users contending
     on one engine.  Same total client load at every shard count. *)
  let t2, _ = Sharded.thinned ~seed ~n ~survive ~shards () in
  let mixed, ustats =
    Sharded.reorg_with_users ?registry ~users:6 ~user_ops:40 ~seed:(seed + 1)
      ~key_space:(2 * n) t2
  in
  Sharded.check_invariants t2;
  ( {
      Probe.p_shards = shards;
      p_parallel_makespan = outcome.Sharded.makespan;
      p_mixed_ticks = mixed.Sharded.makespan;
      p_user_committed = ustats.Workload.Mix.committed;
      p_user_aborted = ustats.Workload.Mix.aborted;
      p_arms = arms;
    },
    outcome )

let run_points ?registry ~n counts = List.map (fun c -> run_point ?registry ~n c) counts

let run () =
  let points = run_points ~n:default_n default_counts in
  Probe.note_shard_sweep (List.map fst points);
  let base =
    match points with
    | (p, _) :: _ -> float_of_int p.Probe.p_parallel_makespan
    | [] -> 1.0
  in
  let table =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "S1 — keyspace-sharded reorganization: %d records thinned to %.0f%%,\n\
            partitioned across N shards (parallel phase: engine per shard;\n\
            mixed phase: shared engine + 6 cross-shard 2PL users)"
           default_n (100.0 *. survive))
      [ ("shards", Util.Table.Right); ("makespan", Util.Table.Right);
        ("speedup", Util.Table.Right); ("total ticks", Util.Table.Right);
        ("io cost", Util.Table.Right); ("mixed ticks", Util.Table.Right);
        ("committed", Util.Table.Right); ("aborted", Util.Table.Right) ]
  in
  List.iter
    (fun ((p : Probe.shard_point), (o : Sharded.reorg_outcome)) ->
      let io =
        List.fold_left (fun acc (a : Probe.shard_arm) -> acc +. a.Probe.a_io_cost) 0.0
          p.Probe.p_arms
      in
      Util.Table.add_row table
        [ string_of_int p.Probe.p_shards;
          string_of_int p.Probe.p_parallel_makespan;
          Printf.sprintf "%.2fx" (base /. float_of_int p.Probe.p_parallel_makespan);
          string_of_int o.Sharded.total_ticks;
          Printf.sprintf "%.0f" io;
          string_of_int p.Probe.p_mixed_ticks;
          string_of_int p.Probe.p_user_committed;
          string_of_int p.Probe.p_user_aborted ])
    points;
  table

(* The parts of the sweep a test (or CI) wants to assert on. *)
type outcome = {
  o_points : Probe.shard_point list;
  o_makespan_1 : int;  (** 1-shard parallel makespan *)
  o_makespan_4 : int;  (** 4-shard parallel makespan; criterion: <= 0.6x *)
}

let run_outcome ?(n = 2000) () =
  let points = List.map fst (run_points ~n [ 1; 4 ]) in
  let find c =
    match List.find_opt (fun (p : Probe.shard_point) -> p.Probe.p_shards = c) points with
    | Some p -> p.Probe.p_parallel_makespan
    | None -> failwith "exp_shard: missing sweep point"
  in
  { o_points = points; o_makespan_1 = find 1; o_makespan_4 = find 4 }
