(** Cross-shard crash/recovery torture: the sharded analogue of {!Torture}.

    The coordinator's claim — commit records written to every written
    shard's WAL in ascending shard order, acknowledgement only after the
    last force, hence {e acked transactions are all-or-nothing across
    shards} — is only believable if it holds at every I/O boundary,
    including the ones {e between} the first and the last shard's commit
    record.  {!run} makes that systematic: a fault-free dry run of a seeded
    workload ([shards] concurrent reorganizers plus cross-shard multi-insert
    client transactions through the router) counts the machine's page-write
    and log-force boundaries; then, for every boundary in turn (or every
    [stride]-th), a fresh identical sharded assembly is built, the shared
    fault controller is armed to kill the machine exactly there — sometimes
    tearing the final page write or a WAL tail — and after
    {!Sharded.crash_now} + independent per-shard recovery + resumed
    reorganizations the harness asserts:

    - every shard's structural B+-tree invariant, and global key order of
      the merged contents;
    - no base record lost, changed or duplicated; no phantom user record;
    - {b all-or-nothing}: every key of every {e acked} cross-shard
      transaction is present (unacked transactions may commit a prefix of
      their shards — the client was never told they committed);
    - every reorganization unit begun in any shard's stable log was
      finished forward.

    Any violation raises {!Failed} naming the crash point. *)

exception Failed of string

type report = {
  write_boundaries : int;
  force_boundaries : int;
  points : int;  (** crash points exercised (plus the dry run) *)
  crashes : int;
  torn_writes : int;
  torn_tails : int;
  units_finished : int;  (** interrupted reorg units finished forward, summed *)
  torn_repaired : int;
  survivors : int;  (** cycles whose plan never tripped *)
  acked_txns : int;  (** acked cross-shard transactions verified all-or-nothing *)
}

val run :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?checker:Model.Checker.t ->
  ?config:Reorg.Config.t ->
  ?page_size:int ->
  ?n:int ->
  ?shards:int ->
  ?users:int ->
  ?xspan:int ->
  ?survive:float ->
  seed:int ->
  stride:int ->
  unit ->
  report
(** Sweep every [stride]-th write boundary and every [stride]-th force
    boundary of the seeded workload.  [n] base records (default 300) over
    [shards] shards (default 3); [users] clients (default 3) each issuing
    transactions spanning [xspan] distinct shards (default 2). *)
