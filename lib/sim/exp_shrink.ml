(* Experiment E7 — pass 3 shrinks the tree, and while it runs the
   reorganizer holds only one S lock (on the base page being read) plus the
   side-file locks — the availability argument of §7/§7.5.

   A sampler process records the maximum number of page locks the
   reorganizer holds concurrently during the internal-page rebuild. *)

module Engine = Sched.Engine
module Tree = Btree.Tree
module Lock_mgr = Lockmgr.Lock_mgr

let run () =
  let table =
    Util.Table.create
      ~title:
        "E7 — pass-3 shrink: height reduction and reorganizer lock footprint\n\
         (max page locks held by the reorganizer while rebuilding the upper levels)"
      [ ("records", Util.Table.Right); ("f1", Util.Table.Right);
        ("height before", Util.Table.Right); ("height after", Util.Table.Right);
        ("internal pages before", Util.Table.Right); ("after", Util.Table.Right);
        ("max reorg page locks in pass 3", Util.Table.Right) ]
  in
  List.iter
    (fun (n, f1, page_size) ->
      let db, expected = Scenario.aged ~page_size ~leaf_pages:16384 ~seed:71 ~n ~f1 () in
      let before = Tree.stats db.Db.tree in
      let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
      let eng = Engine.create () in
      let max_locks = ref 0 in
      let owner = ctx.Reorg.Ctx.actor.Transact.Txn.id in
      Engine.spawn eng (fun () ->
          ignore (Reorg.Pass1.run ctx);
          ignore (Reorg.Pass2.run ctx);
          (* Track the reorganizer's lock high-water mark during pass 3
             only: the availability claim is about the rebuild phase. *)
          Lock_mgr.reset_max_locked db.Db.locks ~owner;
          ignore (Reorg.Pass3.run ctx ());
          max_locks := Lock_mgr.max_locked_count db.Db.locks ~owner);
      Engine.run eng;
      Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      Btree.Invariant.check_consistent_with db.Db.tree ~expected;
      let after = Tree.stats db.Db.tree in
      Util.Table.add_row table
        [ Util.Table.fmt_int n; Printf.sprintf "%.2f" f1;
          string_of_int before.Tree.height; string_of_int after.Tree.height;
          string_of_int before.Tree.internal_count; string_of_int after.Tree.internal_count;
          string_of_int !max_locks ])
    [ (1500, 0.3, 512); (4000, 0.15, 256); (6000, 0.12, 256) ];
  table
