(* §6 trade-off: "We choose to construct one new leaf page at a time ...
   While we could construct more than one page, it would require the
   reorganization unit to hold locks longer, thus it will block more user
   transactions."

   Sweep the lock-envelope size (pages constructed per base-lock hold) with
   concurrent updaters and measure exactly that: user blocked time and
   give-ups versus reorganization efficiency. *)

module Engine = Sched.Engine

let run_one ~unit_pages =
  let db, expected = Scenario.aged ~seed:59 ~n:1500 ~f1:0.25 () in
  let config = { Reorg.Config.default with unit_pages; shrink_pass = false } in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Driver.run ctx);
      finished := true);
  (* Split-heavy, clustered updates: the envelope's extended base-lock hold
     is felt by updaters needing the base page (splits / free-at-empty). *)
  let mix = { Workload.Mix.update_heavy with insert_pct = 0.6; delete_pct = 0.2 } in
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:13 ~users:8 ~ops_per_user:100_000
      ~key_space:400
      ~stop:(fun () -> !finished)
      ~mix ()
  in
  let t0 = Engine.now eng in
  Engine.run eng;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  (* Original records must be readable unless a user deleted them. *)
  List.iter
    (fun (k, v) ->
      match Btree.Tree.search db.Db.tree k with
      | Some v' -> assert (v = v')
      | None -> ())
    expected;
  (Engine.now eng - t0, ctx.Reorg.Ctx.metrics, stats)

let run () =
  let table =
    Util.Table.create
      ~title:
        "§6 unit size — pages constructed per base-lock envelope vs user impact\n\
         (8 update-heavy users; pass 1+2 only)"
      [ ("pages/envelope", Util.Table.Right); ("reorg ticks", Util.Table.Right);
        ("units", Util.Table.Right); ("user blocked ticks", Util.Table.Right);
        ("blocked/op", Util.Table.Right); ("user give-ups", Util.Table.Right);
        ("user ops done", Util.Table.Right) ]
  in
  List.iter
    (fun unit_pages ->
      let ticks, metrics, stats = run_one ~unit_pages in
      Util.Table.add_row table
        [ string_of_int unit_pages; Util.Table.fmt_int ticks;
          string_of_int (Reorg.Metrics.units metrics);
          Util.Table.fmt_int stats.Workload.Mix.blocked_ticks;
          Util.Table.fmt_float
            (Util.Stats.ratio
               (float_of_int stats.Workload.Mix.blocked_ticks)
               (float_of_int stats.Workload.Mix.committed));
          string_of_int stats.Workload.Mix.give_ups;
          Util.Table.fmt_int stats.Workload.Mix.committed ])
    [ 1; 2; 4; 8 ];
  table
