(* Ambient per-experiment stat collector.

   Experiments build their databases and engines internally (often several of
   each: ours vs. Tandem vs. offline arms), so the benchmark harness cannot
   reach the components to read their counters.  Instead, a collector is made
   ambient for the duration of one experiment: [Db.assemble] reports every
   component set it wires ([note_parts]) and the scheduler's create hook
   reports every engine.  At the end the collector snapshots and sums the
   counters — totals over all arms, which is the right unit for regression
   tracking (the arms are part of the experiment's work). *)

type shard_arm = {
  a_shard : int;
  a_ticks : int;
  a_io_reads : int;
  a_io_writes : int;
  a_io_cost : float;
  a_lock_acquires : int;
  a_wal_records : int;
}

type shard_point = {
  p_shards : int;
  p_parallel_makespan : int;
  p_mixed_ticks : int;
  p_user_committed : int;
  p_user_aborted : int;
  p_arms : shard_arm list;
}

type gc_arm = {
  g_label : string;
  g_forced : int;
  g_batches : int;
  g_coalesced : int;
  g_max_batch : int;
  g_checkpoints : int;
  g_truncated : int;
  g_seq_reads : int;
  g_rand_reads : int;
  g_seq_writes : int;
  g_rand_writes : int;
  g_io_cost : float;
  g_committed : int;
}

type olc_arm = {
  o_label : string;
  o_reads : int;
  o_range_scans : int;
  o_digest : int;
  o_s_acquires : int;
  o_acquires : int;
  o_olc_reads : int;
  o_retries : int;
  o_fallbacks : int;
  o_version_bumps : int;
  o_instant_checks : int;
  o_ticks : int;
}

type sample = {
  disk : Pager.Disk.stats;
  io_cost : float;
  pool : Pager.Buffer_pool.stats;
  lock : Lockmgr.Lock_mgr.stats;
  wal : Wal.Log.stats;
  engines : int;
  ticks : int;  (* summed logical clocks *)
  dispatches : int;
  timeseries : Obs.Health.Sampler.snapshot list;
  shard_sweep : shard_point list;
  groupcommit : gc_arm list;
  olc : olc_arm list;
}

type parts = {
  mutable disks : Pager.Disk.t list;
  mutable pools : Pager.Buffer_pool.t list;
  mutable lockms : Lockmgr.Lock_mgr.t list;
  mutable logs : Wal.Log.t list;
  mutable engs : Sched.Engine.t list;
  mutable tseries : Obs.Health.Sampler.snapshot list; (* reversed batches *)
  mutable sweep : shard_point list; (* reversed *)
  mutable gc_arms : gc_arm list; (* reversed *)
  mutable olc_arms : olc_arm list; (* reversed *)
}

let current : parts option ref = ref None

let note_parts ~disk ~pool ~locks ~log =
  match !current with
  | None -> ()
  | Some c ->
    c.disks <- disk :: c.disks;
    c.pools <- pool :: c.pools;
    c.lockms <- locks :: c.lockms;
    c.logs <- log :: c.logs

let note_store (st : Shard.Store.t) =
  note_parts ~disk:st.Shard.Store.disk ~pool:st.Shard.Store.pool ~locks:st.Shard.Store.locks
    ~log:st.Shard.Store.log

let note_timeseries snaps =
  match !current with
  | None -> ()
  | Some c -> c.tseries <- List.rev_append snaps c.tseries

let note_shard_sweep points =
  match !current with
  | None -> ()
  | Some c -> c.sweep <- List.rev_append points c.sweep

let note_groupcommit arms =
  match !current with
  | None -> ()
  | Some c -> c.gc_arms <- List.rev_append arms c.gc_arms

let note_olc arms =
  match !current with
  | None -> ()
  | Some c -> c.olc_arms <- List.rev_append arms c.olc_arms

let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

let total c =
  let dstats = List.map Pager.Disk.stats c.disks in
  let disk =
    List.fold_left
      (fun (a : Pager.Disk.stats) (b : Pager.Disk.stats) ->
        {
          Pager.Disk.reads = a.reads + b.reads;
          writes = a.writes + b.writes;
          seq_reads = a.seq_reads + b.seq_reads;
          rand_reads = a.rand_reads + b.rand_reads;
          seq_writes = a.seq_writes + b.seq_writes;
          rand_writes = a.rand_writes + b.rand_writes;
        })
      {
        Pager.Disk.reads = 0;
        writes = 0;
        seq_reads = 0;
        rand_reads = 0;
        seq_writes = 0;
        rand_writes = 0;
      }
      dstats
  in
  let pool =
    List.fold_left
      (fun (a : Pager.Buffer_pool.stats) p ->
        let b = Pager.Buffer_pool.stats p in
        {
          Pager.Buffer_pool.s_hits = a.s_hits + b.s_hits;
          s_misses = a.s_misses + b.s_misses;
          s_flushes = a.s_flushes + b.s_flushes;
          s_dep_flushes = a.s_dep_flushes + b.s_dep_flushes;
          s_evictions = a.s_evictions + b.s_evictions;
          s_torn_detected = a.s_torn_detected + b.s_torn_detected;
        })
      {
        Pager.Buffer_pool.s_hits = 0;
        s_misses = 0;
        s_flushes = 0;
        s_dep_flushes = 0;
        s_evictions = 0;
        s_torn_detected = 0;
      }
      c.pools
  in
  let lock =
    List.fold_left
      (fun (a : Lockmgr.Lock_mgr.stats) m ->
        let b = Lockmgr.Lock_mgr.stats m in
        {
          Lockmgr.Lock_mgr.acquires = a.acquires + b.acquires;
          waits = a.waits + b.waits;
          grants_after_wait = a.grants_after_wait + b.grants_after_wait;
          instant_signals = a.instant_signals + b.instant_signals;
          give_ups = a.give_ups + b.give_ups;
          cancelled_waits = a.cancelled_waits + b.cancelled_waits;
          deadlocks = a.deadlocks + b.deadlocks;
          releases = a.releases + b.releases;
          scan_steps = a.scan_steps + b.scan_steps;
          instant_checks = a.instant_checks + b.instant_checks;
        })
      {
        Lockmgr.Lock_mgr.acquires = 0;
        waits = 0;
        grants_after_wait = 0;
        instant_signals = 0;
        give_ups = 0;
        cancelled_waits = 0;
        deadlocks = 0;
        releases = 0;
        scan_steps = 0;
        instant_checks = 0;
      }
      c.lockms
  in
  let wal =
    List.fold_left
      (fun (a : Wal.Log.stats) l ->
        let b = Wal.Log.stats l in
        { Wal.Log.records = a.records + b.records; bytes = a.bytes + b.bytes; forced = a.forced + b.forced })
      { Wal.Log.records = 0; bytes = 0; forced = 0 }
      c.logs
  in
  {
    disk;
    io_cost = Pager.Disk.io_cost disk;
    pool;
    lock;
    wal;
    engines = List.length c.engs;
    ticks = sum Sched.Engine.now c.engs;
    dispatches = sum Sched.Engine.dispatches c.engs;
    timeseries = List.rev c.tseries;
    shard_sweep = List.rev c.sweep;
    groupcommit = List.rev c.gc_arms;
    olc = List.rev c.olc_arms;
  }

let with_collector f =
  (match !current with
  | Some _ -> invalid_arg "Probe.with_collector: collector already active"
  | None -> ());
  let c =
    {
      disks = [];
      pools = [];
      lockms = [];
      logs = [];
      engs = [];
      tseries = [];
      sweep = [];
      gc_arms = [];
      olc_arms = [];
    }
  in
  current := Some c;
  (* Register by id so hooks installed by anyone else stay in place. *)
  let hook = Sched.Engine.add_create_hook (fun e -> c.engs <- e :: c.engs) in
  let store_hook = Shard.Store.add_assemble_hook note_store in
  Fun.protect
    ~finally:(fun () ->
      current := None;
      Sched.Engine.remove_create_hook hook;
      Shard.Store.remove_assemble_hook store_hook)
    (fun () ->
      let r = f () in
      (r, total c))
