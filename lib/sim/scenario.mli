(** Canonical database states used by the experiments.

    All generators are deterministic from the seed.  Keys are even (inserts
    by concurrent updaters use odd keys), payloads come from
    {!Db.payload_for}. *)

val aged :
  ?faults:Pager.Fault.t ->
  ?page_size:int ->
  ?leaf_pages:int ->
  ?span_factor:float ->
  ?record_locking:bool ->
  ?capacity:int ->
  seed:int ->
  n:int ->
  f1:float ->
  unit ->
  Db.t * (int * string) list
(** The paper's §2 tree: [n] records at leaf fill factor [f1], leaves
    scattered over the leaf zone ([span_factor] slots per leaf, default 1.4)
    with free pages interleaved — a file aged by splits and free-at-empty.
    Everything is flushed (the state is durable).  Returns the db and its
    contents. *)

val thinned :
  ?page_size:int -> seed:int -> n:int -> survive:float -> unit -> Db.t * (int * string) list
(** Dense load then transactional uniform deletion down to [survive]:
    sparseness produced by real free-at-empty deletes. *)

val purged :
  ?page_size:int ->
  seed:int ->
  n:int ->
  ranges:int ->
  width:float ->
  unit ->
  Db.t * (int * string) list
(** Clustered range deletions (retention purges). *)

val run_reorg :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?checker:Model.Checker.t ->
  ?config:Reorg.Config.t ->
  ?olc:bool ->
  ?users:int ->
  ?user_mix:Workload.Mix.mix ->
  ?user_ops:int ->
  ?user_key_space:int ->
  ?seed:int ->
  ?sampler:Obs.Health.Sampler.t ->
  ?sample_every:int ->
  ?pipeline:bool ->
  ?pipeline_ckpt_every:int ->
  Db.t ->
  Reorg.Ctx.t * Reorg.Driver.report * Workload.Mix.stats
(** Run the full reorganization inside a fresh scheduler, optionally with
    concurrent users (they stop when the reorganizer finishes or after
    [user_ops], default 10_000 each).  [checker] attaches the protocol-model
    conformance checker to the lock manager and the reorganization context
    (the caller finalizes and inspects it afterwards).

    [olc] (default {!Reorg.Config.t.olc}) turns the optimistic read path on
    for the user processes; with a checker attached, every committed
    optimistic read also flows into the olc conformance machine with its
    oracle verdict ({!Reorg.Prot.Olc_read}).

    [registry] collects every subsystem's
    counters (scheduler, locks, pager, WAL, reorganizer); [tracer] records
    the run as spans/instants on per-process timeline rows, with its clock
    driven by the scheduler's logical time.

    [sampler] spawns a sampling process on the same engine: its clock is
    pointed at the engine, it snapshots at tick 0 and then every
    [sample_every] ticks (default 25), plus one final snapshot after the
    reorganizer reports — deterministic health time series for free.

    [pipeline:true] attaches the asynchronous durability pipeline
    ({!Pipeline}): commits group-commit through a background ticker, an
    elevator flusher writes dirty pages back sequentially, and (with
    [pipeline_ckpt_every]) a fuzzy checkpointer truncates the WAL. *)
