(** The asynchronous durability pipeline: group commit, elevator writeback
    and fuzzy checkpointing as background daemons on one scheduler engine.

    Attached to a database, it reroutes transaction-commit forces through a
    {!Wal.Group_commit} batcher (one stable append per scheduler window
    covers every commit that arrived in it), drains the buffer pool's dirty
    frames in ascending-page-id elevator sweeps (shifting the disk's write
    stream from random to sequential), and periodically checkpoints so the
    WAL truncates.  Careful-writing prerequisite forces are untouched: the
    WAL rule stays synchronous. *)

type t

val attach :
  ?gc_every:int ->
  ?flush_every:int ->
  ?flush_limit:int ->
  ?ckpt_every:int ->
  ?ctx:Reorg.Ctx.t ->
  Sched.Engine.t ->
  Db.t ->
  stop:(unit -> bool) ->
  t
(** Install the commit-force hook on [db]'s journal and spawn the daemons on
    [eng].  [gc_every] (default 2) is the group-commit window in scheduler
    ticks, [flush_every] (default 8) the elevator period, [flush_limit] the
    per-sweep page cap (default: all dirty pages), [ckpt_every] (default:
    none) the fuzzy-checkpoint period — through [ctx] when given, so the §5
    system table rides along and reorg-aware truncation floors apply.  The
    daemons exit once [stop ()] holds and no commit waiter is pending; the
    group-commit ticker always drains its last batch first.

    The hook MUST be uninstalled ({!detach}) before anything commits outside
    the engine — suspending without a scheduler is an error. *)

val detach : t -> unit
(** Restore the synchronous commit-force path.  Idempotent.  Waiters still
    parked (a crash inside the window killed the engine) are abandoned,
    which is correct: their commits were never acknowledged. *)

val with_pipeline :
  ?gc_every:int ->
  ?flush_every:int ->
  ?flush_limit:int ->
  ?ckpt_every:int ->
  ?ctx:Reorg.Ctx.t ->
  enabled:bool ->
  Sched.Engine.t ->
  Db.t ->
  stop:(unit -> bool) ->
  (unit -> 'a) ->
  'a
(** [with_pipeline ~enabled eng db ~stop f]: run [f] with the pipeline
    attached when [enabled] (detached again on any exit, including a
    simulated crash propagating out of the engine); just [f ()] otherwise. *)

val stats : t -> Wal.Group_commit.stats
