(* Ablation — the paper's own design knobs, each turned off or swept:

   - pass 2 is optional ("choosing to do swapping only when range query
     performance falls below some acceptable level"): what does skipping it
     cost in range-scan I/O, and what does running it cost in time and log?
   - pass 3 optional: height/IO effect of the shrink;
   - target fill factor f2: compaction work vs achieved fill;
   - stable-point cadence (pass 3): recovery granularity vs internal fill. *)

module Tree = Btree.Tree
module Disk = Pager.Disk

let range_cost db =
  Db.flush_all db;
  let pool = Pager.Buffer_pool.create db.Db.backend in
  let journal = Transact.Journal.create pool db.Db.log in
  let tree = Tree.attach ~journal ~alloc:db.Db.alloc ~meta_pid:0 () in
  Disk.reset_stats db.Db.disk;
  let rng = Util.Rng.create 7 in
  for _ = 1 to 40 do
    let lo = 2 * Util.Rng.int rng 1500 in
    ignore (Tree.range tree ~lo ~hi:(lo + 600))
  done;
  Disk.io_cost (Disk.stats db.Db.disk)

let variant name config =
  let db, expected = Scenario.aged ~seed:91 ~n:1500 ~f1:0.25 () in
  let t0 = Sys.time () in
  let ctx, r, _ = Scenario.run_reorg ~config db in
  let dt = Sys.time () -. t0 in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  let s = Tree.stats db.Db.tree in
  ( name,
    r,
    s,
    (Reorg.Metrics.log_bytes ctx.Reorg.Ctx.metrics),
    range_cost db,
    dt )

let run () =
  let table =
    Util.Table.create
      ~title:"Ablation — each design knob of the paper, toggled (1500 records, f1 = 0.25)"
      [ ("variant", Util.Table.Left); ("units", Util.Table.Right); ("swaps", Util.Table.Right);
        ("height", Util.Table.Right); ("avg fill", Util.Table.Right);
        ("reorg log", Util.Table.Right); ("range I/O cost", Util.Table.Right);
        ("wall s", Util.Table.Right) ]
  in
  let d = Reorg.Config.default in
  List.iter
    (fun (name, config) ->
      let name, r, s, log_bytes, cost, dt = variant name config in
      Util.Table.add_row table
        [ name; string_of_int r.Reorg.Driver.pass1_units; string_of_int r.Reorg.Driver.swaps;
          string_of_int s.Tree.height; Util.Table.fmt_pct s.Tree.avg_leaf_fill;
          Util.Table.fmt_bytes log_bytes; Util.Table.fmt_float cost;
          Util.Table.fmt_float ~digits:2 dt ])
    [
      ("full (default)", d);
      ("no pass 2 (swap off)", { d with swap_pass = false });
      ("no pass 3 (shrink off)", { d with shrink_pass = false });
      ("passes 1 only", { d with swap_pass = false; shrink_pass = false });
      ("f2 = 0.7", { d with f2 = 0.7 });
      ("f2 = 0.99", { d with f2 = 0.99 });
      ("no careful writing", { d with careful_writing = false });
      ("stable point every 2", { d with stable_every = 2 });
      ("stable point every 20", { d with stable_every = 20 });
    ];
  table
