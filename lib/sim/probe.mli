(** Ambient per-experiment stat collector for the benchmark harness.

    Experiments assemble their databases and engines internally, so their
    counters are unreachable from the outside.  {!with_collector} makes a
    collector ambient: every {!Db.assemble} reports its component set and
    (via {!Sched.Engine.add_create_hook}) every engine created inside the
    callback is tracked.  When the callback returns, all counters are
    snapshotted and summed — the totals cover every arm an experiment runs,
    which is the unit the machine-readable benchmark baseline records.

    The collector's engine hook is registered and removed by id, so any
    create hook installed by other parties (or by nested tooling) keeps
    firing — collectors no longer clobber foreign hooks.  Collectors
    themselves still do not nest; only the benchmark harness should use
    this. *)

type shard_arm = {
  a_shard : int;  (** shard index within its sweep point *)
  a_ticks : int;  (** that shard's final engine clock (parallel phase) *)
  a_io_reads : int;
  a_io_writes : int;
  a_io_cost : float;
  a_lock_acquires : int;
  a_wal_records : int;
}
(** Per-shard counter block of one shard-sweep configuration. *)

type shard_point = {
  p_shards : int;  (** shard count of this sweep point; [List.length p_arms] *)
  p_parallel_makespan : int;  (** max per-shard clock — the scaling figure *)
  p_mixed_ticks : int;  (** single-engine clock of the contended phase *)
  p_user_committed : int;
  p_user_aborted : int;
  p_arms : shard_arm list;
}
(** One configuration of the shard-count sweep; totals in the benchmark
    JSON are computed as sums over [p_arms]. *)

type gc_arm = {
  g_label : string;  (** ["sync"] or ["pipelined"] *)
  g_forced : int;  (** stable-boundary advances (the figure group commit cuts) *)
  g_batches : int;  (** group-commit flushes that woke at least one waiter *)
  g_coalesced : int;  (** commit waiters covered by those batches *)
  g_max_batch : int;
  g_checkpoints : int;  (** fuzzy checkpoints taken during the run *)
  g_truncated : int;  (** WAL records reclaimed by checkpoint truncation *)
  g_seq_reads : int;
  g_rand_reads : int;
  g_seq_writes : int;
  g_rand_writes : int;
  g_io_cost : float;
  g_committed : int;  (** user transactions acknowledged *)
}
(** One arm of the group-commit experiment: the same workload run with the
    synchronous commit path vs. the asynchronous durability pipeline. *)

type olc_arm = {
  o_label : string;  (** ["locked"] or ["olc"] *)
  o_reads : int;  (** reader point lookups performed *)
  o_range_scans : int;  (** reader range scans performed *)
  o_digest : int;  (** order-independent digest of every result — must be
                       identical across the arms *)
  o_s_acquires : int;  (** S-mode lock acquires during the arm *)
  o_acquires : int;  (** all lock acquires during the arm *)
  o_olc_reads : int;  (** committed optimistic reads ([olc.reads]) *)
  o_retries : int;
  o_fallbacks : int;
  o_version_bumps : int;
  o_instant_checks : int;  (** non-enqueuing RX-presence probes *)
  o_ticks : int;  (** arm makespan (engine clock) *)
}
(** One arm of the optimistic-read experiment: the same read-heavy workload
    run with the locked Table-1 reader protocol vs. the lock-free OLC path. *)

type sample = {
  disk : Pager.Disk.stats;  (** summed over every disk assembled *)
  io_cost : float;  (** {!Pager.Disk.io_cost} of the summed stats, default cost model *)
  pool : Pager.Buffer_pool.stats;
  lock : Lockmgr.Lock_mgr.stats;
  wal : Wal.Log.stats;
  engines : int;  (** engines created inside the window *)
  ticks : int;  (** summed final logical clocks *)
  dispatches : int;
  timeseries : Obs.Health.Sampler.snapshot list;  (** health samples reported via {!note_timeseries} *)
  shard_sweep : shard_point list;  (** sweep points reported via {!note_shard_sweep} *)
  groupcommit : gc_arm list;  (** pipeline arms reported via {!note_groupcommit} *)
  olc : olc_arm list;  (** optimistic-read arms reported via {!note_olc} *)
}

val with_collector : (unit -> 'a) -> 'a * sample
(** Run the callback with the collector active (exceptions deactivate it
    too).  Raises [Invalid_argument] if a collector is already active. *)

val note_parts :
  disk:Pager.Disk.t -> pool:Pager.Buffer_pool.t -> locks:Lockmgr.Lock_mgr.t -> log:Wal.Log.t -> unit
(** Report one component set; a no-op when no collector is active.  While a
    collector is active, a {!Shard.Store.add_assemble_hook} registration
    feeds every assembled store here automatically — experiments never call
    this themselves. *)

val note_timeseries : Obs.Health.Sampler.snapshot list -> unit
(** Report health time-series snapshots for the current experiment (appended
    in call order); a no-op when no collector is active.  They surface as
    the [timeseries] array of the schema-v2 benchmark baseline. *)

val note_shard_sweep : shard_point list -> unit
(** Report shard-count sweep points for the current experiment (appended in
    call order); a no-op when no collector is active.  They surface as the
    [shard_sweep] array — with per-shard counter blocks — of the schema-v3
    benchmark baseline. *)

val note_groupcommit : gc_arm list -> unit
(** Report sync-vs-pipelined arms for the current experiment (appended in
    call order); a no-op when no collector is active.  They surface as the
    [groupcommit] array of the schema-v4 benchmark baseline. *)

val note_olc : olc_arm list -> unit
(** Report locked-vs-optimistic reader arms for the current experiment
    (appended in call order); a no-op when no collector is active.  They
    surface as the [olc] array of the schema-v5 benchmark baseline. *)
