(** Ambient per-experiment stat collector for the benchmark harness.

    Experiments assemble their databases and engines internally, so their
    counters are unreachable from the outside.  {!with_collector} makes a
    collector ambient: every {!Db.assemble} reports its component set and
    (via {!Sched.Engine.add_create_hook}) every engine created inside the
    callback is tracked.  When the callback returns, all counters are
    snapshotted and summed — the totals cover every arm an experiment runs,
    which is the unit the machine-readable benchmark baseline records.

    The collector's engine hook is registered and removed by id, so any
    create hook installed by other parties (or by nested tooling) keeps
    firing — collectors no longer clobber foreign hooks.  Collectors
    themselves still do not nest; only the benchmark harness should use
    this. *)

type sample = {
  disk : Pager.Disk.stats;  (** summed over every disk assembled *)
  io_cost : float;  (** {!Pager.Disk.io_cost} of the summed stats, default cost model *)
  pool : Pager.Buffer_pool.stats;
  lock : Lockmgr.Lock_mgr.stats;
  wal : Wal.Log.stats;
  engines : int;  (** engines created inside the window *)
  ticks : int;  (** summed final logical clocks *)
  dispatches : int;
  timeseries : Obs.Health.Sampler.snapshot list;  (** health samples reported via {!note_timeseries} *)
}

val with_collector : (unit -> 'a) -> 'a * sample
(** Run the callback with the collector active (exceptions deactivate it
    too).  Raises [Invalid_argument] if a collector is already active. *)

val note_parts :
  disk:Pager.Disk.t -> pool:Pager.Buffer_pool.t -> locks:Lockmgr.Lock_mgr.t -> log:Wal.Log.t -> unit
(** Called by {!Db.assemble}; a no-op when no collector is active. *)

val note_timeseries : Obs.Health.Sampler.snapshot list -> unit
(** Report health time-series snapshots for the current experiment (appended
    in call order); a no-op when no collector is active.  They surface as
    the [timeseries] array of the schema-v2 benchmark baseline. *)
