(* Experiment R1 — optimistic version-validated reads vs the locked
   Table-1 reader protocol.

   The same aged tree is reorganized twice while a pool of read-only user
   processes issues an identical fixed stream of point lookups and range
   scans (per-reader rngs on the [Workload.Mix] lattice, a fixed operation
   count rather than stop-on-report — so both arms read exactly the same
   key sequence even though they finish at different clocks).  The
   [locked] arm descends with the paper's S lock-coupling and RS give-up
   rule; the [olc] arm descends lock-free, validating {!Btree.Olc}
   per-node versions across scheduler yields and falling back to the
   locked path on conflict.  The claims the numbers must support: S-mode
   lock acquires collapse to a small residue (the fallback path plus the
   reorganizer's own scans), the olc counters show committed optimistic
   reads doing the work instead, and every reader's result digest is
   byte-identical across the arms — the optimistic path returns exactly
   what the locked path returns.  ci/check.sh pins the ratio at <= 0.30x
   and the digest equality. *)

module Engine = Sched.Engine
module Lock_mgr = Lockmgr.Lock_mgr
module Mode = Lockmgr.Mode
module Txn_mgr = Transact.Txn_mgr
module Access = Btree.Access

(* Order-sensitive per-reader rolling digest; readers are xor-combined so
   the total is independent of reader interleaving. *)
let mix_into d v = d := ((!d * 31) + Hashtbl.hash v) land 0x3FFFFFFF

let run_arm ~use_olc ~seed ~n ~readers ~reads_per_reader () =
  let db, _ = Scenario.aged ~seed ~n ~f1:0.3 () in
  Access.set_olc db.Db.access
    ~max_retries:Reorg.Config.default.Reorg.Config.olc_max_retries use_olc;
  let olc = Btree.Tree.olc db.Db.tree in
  (* Snapshot after the build: the arms compare only the concurrent phase,
     not the identical initial load. *)
  let s0, _, _ = Lock_mgr.mode_tally db.Db.locks Mode.S in
  let l0 = Lock_mgr.stats db.Db.locks in
  let or0 = Btree.Olc.reads olc in
  let rt0 = Btree.Olc.retries olc in
  let fb0 = Btree.Olc.fallbacks olc in
  let vb0 = Btree.Olc.version_bumps olc in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  Engine.set_tracer eng ctx.Reorg.Ctx.tracer;
  Db.set_tracers db ctx.Reorg.Ctx.tracer;
  let report = ref None in
  Engine.spawn eng ~name:"reorganizer" (fun () -> report := Some (Reorg.Driver.run ctx));
  let reads = ref 0 and scans = ref 0 and digest = ref 0 in
  for u = 0 to readers - 1 do
    Engine.spawn eng
      ~name:(Printf.sprintf "reader-%d" u)
      (fun () ->
        let rng = Util.Rng.create (seed + 1 + (u * 7919)) in
        let d = ref 0 in
        (* The workload is read-only, so every key's answer is fixed for
           the whole run: a deadlock-victim restart re-reads the same
           value, and the digests stay arm-identical. *)
        let rec with_read_txn f =
          let txn = Txn_mgr.fresh_owner db.Db.mgr in
          match f txn with
          | v ->
            Txn_mgr.finish_read_only db.Db.mgr txn;
            v
          | exception Transact.Lock_client.Deadlock_victim ->
            Txn_mgr.finish_read_only db.Db.mgr txn;
            Engine.sleep 1;
            with_read_txn f
        in
        for i = 1 to reads_per_reader do
          (* Every 16th operation is a range scan over the side-pointer
             chain; the rng draw happens before the branch so the key
             stream is one fixed lattice. *)
          if i mod 16 = 0 then begin
            let lo = 2 * Util.Rng.int rng n in
            let recs =
              with_read_txn (fun txn ->
                  Access.range_read db.Db.access ~txn ~lo ~hi:(lo + 64))
            in
            incr scans;
            mix_into d
              (lo, List.map (fun r -> (r.Btree.Leaf.key, r.Btree.Leaf.payload)) recs)
          end
          else begin
            let k = 2 * Util.Rng.int rng n in
            let res = with_read_txn (fun txn -> Access.read db.Db.access ~txn k) in
            incr reads;
            mix_into d (k, res)
          end;
          Engine.sleep 1
        done;
        digest := !digest lxor !d)
  done;
  Engine.run eng;
  (match !report with
  | Some _ -> ()
  | None -> failwith "Exp_olc.run_arm: reorganizer did not finish");
  Db.flush_all db;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  let s1, _, _ = Lock_mgr.mode_tally db.Db.locks Mode.S in
  let l1 = Lock_mgr.stats db.Db.locks in
  {
    Probe.o_label = (if use_olc then "olc" else "locked");
    o_reads = !reads;
    o_range_scans = !scans;
    o_digest = !digest;
    o_s_acquires = s1 - s0;
    o_acquires = l1.Lock_mgr.acquires - l0.Lock_mgr.acquires;
    o_olc_reads = Btree.Olc.reads olc - or0;
    o_retries = Btree.Olc.retries olc - rt0;
    o_fallbacks = Btree.Olc.fallbacks olc - fb0;
    o_version_bumps = Btree.Olc.version_bumps olc - vb0;
    o_instant_checks = l1.Lock_mgr.instant_checks - l0.Lock_mgr.instant_checks;
    o_ticks = Engine.now eng;
  }

let run_arms () =
  let seed = 31 and n = 1500 and readers = 6 and reads_per_reader = 400 in
  let locked = run_arm ~use_olc:false ~seed ~n ~readers ~reads_per_reader () in
  let olc = run_arm ~use_olc:true ~seed ~n ~readers ~reads_per_reader () in
  (locked, olc)

let run () =
  let locked, olc = run_arms () in
  Probe.note_olc [ locked; olc ];
  let table =
    Util.Table.create
      ~title:
        "R1 — optimistic version-validated reads vs the locked reader protocol\n\
         (same aged tree, reorganization with 6 read-only users, identical key streams)"
      [ ("arm", Util.Table.Left); ("reads", Util.Table.Right);
        ("scans", Util.Table.Right); ("digest", Util.Table.Right);
        ("S acq", Util.Table.Right); ("acq", Util.Table.Right);
        ("olc reads", Util.Table.Right); ("retries", Util.Table.Right);
        ("fallbacks", Util.Table.Right); ("bumps", Util.Table.Right);
        ("probes", Util.Table.Right); ("ticks", Util.Table.Right) ]
  in
  let row (a : Probe.olc_arm) =
    Util.Table.add_row table
      [ a.Probe.o_label; string_of_int a.Probe.o_reads;
        string_of_int a.Probe.o_range_scans;
        Printf.sprintf "%08x" a.Probe.o_digest;
        string_of_int a.Probe.o_s_acquires; string_of_int a.Probe.o_acquires;
        string_of_int a.Probe.o_olc_reads; string_of_int a.Probe.o_retries;
        string_of_int a.Probe.o_fallbacks; string_of_int a.Probe.o_version_bumps;
        string_of_int a.Probe.o_instant_checks; string_of_int a.Probe.o_ticks ]
  in
  row locked;
  row olc;
  Util.Table.add_rule table;
  let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  Util.Table.add_row table
    [ "olc/locked"; "-"; "-";
      (if olc.Probe.o_digest = locked.Probe.o_digest then "equal" else "DIFFER");
      Printf.sprintf "%.2fx" (ratio olc.Probe.o_s_acquires locked.Probe.o_s_acquires);
      Printf.sprintf "%.2fx" (ratio olc.Probe.o_acquires locked.Probe.o_acquires);
      "-"; "-"; "-"; "-"; "-"; "-" ];
  table
