(* Experiment H1 — online tree-health telemetry through a sparsification
   and its repair.

   A densely loaded tree is thinned by transactional uniform deletes (the
   paper's motivating state: sparsely-populated leaves), then reorganized
   while a sampler process on the same scheduler records deterministic
   health snapshots every few ticks.  Two threshold watches are armed up
   front — "utilization < 0.55" and "fragmentation > 0.30" — and must fire
   on the degraded tree; the sampled series then shows utilization climbing
   back to f2 as the passes run.  The sampler's snapshots are reported to
   the ambient Probe collector, so `bench --json` emits them as this
   experiment's schema-v2 [timeseries] array. *)

module Buffer_pool = Pager.Buffer_pool
module Health = Obs.Health
module Sampler = Obs.Health.Sampler

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)

let run () =
  let db, expected = Scenario.thinned ~seed:42 ~n:6000 ~survive:0.35 () in
  let registry = Obs.Registry.create () in
  let tracer = Obs.Trace.create () in
  let health = db.Db.health in
  let sampler = Sampler.create ~tracer health in
  Sampler.add_probe sampler "pool.flushes" (fun () ->
      (Buffer_pool.stats db.Db.pool).Buffer_pool.s_flushes);
  Sampler.add_probe sampler "wal.bytes" (fun () -> (Wal.Log.stats db.Db.log).Wal.Log.bytes);
  let fires = ref [] in
  let note f = fires := f :: !fires in
  Health.watch health ~name:"util<0.55" ~signal:Health.Utilization ~op:`Lt ~threshold:0.55
    note;
  Health.watch health ~name:"frag>0.30" ~signal:Health.Fragmentation ~op:`Gt
    ~threshold:0.30 note;
  let before = Health.stats health in
  let _ctx, _report, _ustats =
    Scenario.run_reorg ~registry ~tracer ~sampler ~sample_every:25 db
  in
  let after = Health.stats health in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  (* Hand the series to the benchmark baseline when one is being written. *)
  Probe.note_timeseries (Sampler.snapshots sampler);
  let table =
    Util.Table.create
      ~title:
        "H1 — online tree-health telemetry: bulk-delete sparsification, then reorg\n\
         (incremental tracker, sampled every 25 logical ticks; no full-tree scans)"
      [ ("sample", Util.Table.Right); ("tick", Util.Table.Right);
        ("leaves", Util.Table.Right); ("util", Util.Table.Right);
        ("frag", Util.Table.Right); ("backlog", Util.Table.Right);
        ("free pages", Util.Table.Right); ("watch fired", Util.Table.Left) ]
  in
  List.iteri
    (fun i (s : Sampler.snapshot) ->
      Util.Table.add_row table
        [ string_of_int i; string_of_int s.Sampler.at;
          string_of_int s.Sampler.leaves; pct s.Sampler.utilization;
          pct s.Sampler.fragmentation; string_of_int s.Sampler.backlog;
          string_of_int s.Sampler.free_pages;
          String.concat " " s.Sampler.fired ])
    (Sampler.snapshots sampler);
  Util.Table.add_rule table;
  Util.Table.add_row table
    [ "before"; "-"; string_of_int before.Health.leaves; pct before.Health.utilization;
      pct before.Health.fragmentation; string_of_int before.Health.backlog;
      string_of_int before.Health.free_pages; "-" ];
  Util.Table.add_row table
    [ "after"; "-"; string_of_int after.Health.leaves; pct after.Health.utilization;
      pct after.Health.fragmentation; string_of_int after.Health.backlog;
      string_of_int after.Health.free_pages;
      Printf.sprintf "%d fire(s), %d unit(s), %d switch(es)"
        after.Health.watch_fires after.Health.units after.Health.switches ];
  table

(* The parts of the run a test (or the CLI) wants to assert on. *)
type outcome = {
  o_samples : Sampler.snapshot list;
  o_fires : Health.fire list;
  o_before_util : float;
  o_after_util : float;
  o_trace_fire_events : int;
}

let run_outcome () =
  let db, _expected = Scenario.thinned ~seed:42 ~n:6000 ~survive:0.35 () in
  let tracer = Obs.Trace.create () in
  let health = db.Db.health in
  let sampler = Sampler.create ~tracer health in
  let fires = ref [] in
  Health.watch health ~name:"util<0.55" ~signal:Health.Utilization ~op:`Lt ~threshold:0.55
    (fun f -> fires := f :: !fires);
  let before_util = Health.utilization health in
  let _ = Scenario.run_reorg ~tracer ~sampler ~sample_every:25 db in
  {
    o_samples = Sampler.snapshots sampler;
    o_fires = List.rev !fires;
    o_before_util = before_util;
    o_after_util = Health.utilization health;
    o_trace_fire_events = Obs.Trace.count_named tracer "health.watch-fire";
  }
