module Engine = Sched.Engine
module Store = Shard.Store
module Shard_map = Shard.Shard_map
module Coordinator = Shard.Coordinator
module Router = Shard.Router
module Txn_mgr = Transact.Txn_mgr
module Tree = Btree.Tree

type t = {
  map : Shard_map.t;
  stores : Store.t array;
  coord : Coordinator.t;
  router : Router.t;
  faults : Pager.Fault.t;
}

let shards t = Array.length t.stores

let shard_registry registry i =
  match registry with
  | None -> None
  | Some reg -> Some (Obs.Registry.prefixed reg (Printf.sprintf "shard%d." i))

let thinned ?faults ?(page_size = 512) ?capacity ~seed ~n ~survive ~shards () =
  let faults = match faults with Some f -> f | None -> Pager.Fault.create () in
  let rng = Util.Rng.create seed in
  let scenario = Workload.Sparse.uniform_thinning ~rng ~n ~survive in
  (* Keys live in [0, 2n); cut that span uniformly.  User transactions must
     draw from the same key space for the map to route them. *)
  let map = Shard_map.uniform ~shards ~key_space:(2 * n) in
  let stores =
    Array.init shards (fun i ->
        let mine (k, _) = Shard_map.owner map k = i in
        let st =
          Store.load ~faults ~page_size ?capacity ~shard:(i, shards) ~fill:0.95
            (List.filter mine scenario.Workload.Sparse.initial)
        in
        let deletes = List.filter (fun k -> Shard_map.owner map k = i) scenario.Workload.Sparse.deletes in
        let tx = Txn_mgr.begin_txn st.Store.mgr in
        List.iter (fun k -> ignore (Tree.delete st.Store.tree ~txn:tx k)) deletes;
        Txn_mgr.commit st.Store.mgr tx;
        Store.flush_all st;
        st)
  in
  let coord = Coordinator.create ~map ~stores in
  let router = Router.create coord in
  let expected =
    List.filter
      (fun (k, _) -> not (List.mem k scenario.Workload.Sparse.deletes))
      scenario.Workload.Sparse.initial
  in
  ({ map; stores; coord; router; faults }, expected)

let contents t =
  Array.to_list t.stores
  |> List.concat_map (fun (st : Store.t) -> Btree.Invariant.contents st.Store.tree)

let check_invariants t =
  Array.iter
    (fun (st : Store.t) -> Btree.Invariant.check ~alloc:st.Store.alloc st.Store.tree)
    t.stores

let flush_all t = Array.iter Store.flush_all t.stores

let crash_now t =
  Pager.Fault.disarm t.faults;
  (* One authoritative machine-wide crash event, then every store's volatile
     state goes at once, then the reboot. *)
  Pager.Fault.kill t.faults;
  Array.iter Store.volatile_teardown t.stores;
  Pager.Fault.revive t.faults

let recover ?registry ?tracer ?prot ?(config = Reorg.Config.default) t =
  let n = shards t in
  Array.mapi
    (fun i (st : Store.t) ->
      Reorg.Recovery.restart
        ?registry:(shard_registry registry i)
        ?tracer
        ?prot:(Option.map (fun f -> f i) prot)
        ~shard:(i, n) ~access:st.Store.access ~config ())
    t.stores

let resume_after_recovery t recovered =
  let eng = Engine.create () in
  Array.iteri
    (fun i (ctx, outcome) ->
      Engine.spawn eng ~name:(Printf.sprintf "resume-%d" i) (fun () ->
          ignore (Reorg.Recovery.resume_reorganization ctx outcome)))
    recovered;
  Engine.run eng;
  flush_all t

type reorg_outcome = {
  reports : Reorg.Driver.report array;
  ticks : int array;
  makespan : int;
  total_ticks : int;
}

let shard_ctx ?registry ?tracer ~config t i =
  let st = t.stores.(i) in
  Reorg.Ctx.make
    ?registry:(shard_registry registry i)
    ?tracer ~shard:(i, shards t) ~access:st.Store.access ~config ()

let register_shard_obs ?registry t =
  match registry with
  | None -> ()
  | Some _ ->
    Array.iteri
      (fun i st ->
        match shard_registry registry i with
        | Some reg -> Store.register_obs st reg
        | None -> ())
      t.stores

let reorg_parallel ?registry ?tracer ?(config = Reorg.Config.default) t =
  register_shard_obs ?registry t;
  let n = shards t in
  let reports = Array.make n Reorg.Driver.empty_report in
  let ticks = Array.make n 0 in
  (* Engine-per-shard: the shards share nothing (locks, log, pages), so
     each engine's final clock is that shard's independent timeline and the
     makespan is what a machine running them side by side would take. *)
  for i = 0 to n - 1 do
    let ctx = shard_ctx ?registry ?tracer ~config t i in
    let eng = Engine.create () in
    Engine.set_tracer eng ctx.Reorg.Ctx.tracer;
    Store.set_tracers t.stores.(i) ctx.Reorg.Ctx.tracer;
    (match shard_registry registry i with
    | Some reg -> Engine.register_obs eng reg
    | None -> ());
    Engine.spawn eng ~name:(Printf.sprintf "reorganizer-%d" i) (fun () ->
        reports.(i) <- Reorg.Driver.run ctx);
    Engine.run eng;
    ticks.(i) <- Engine.now eng
  done;
  {
    reports;
    ticks;
    makespan = Array.fold_left max 0 ticks;
    total_ticks = Array.fold_left ( + ) 0 ticks;
  }

let reorg_with_users ?registry ?tracer ?(config = Reorg.Config.default)
    ?(user_mix = Workload.Mix.read_mostly) ?(user_ops = 200) ?xspan ~users ~seed ~key_space t
    =
  register_shard_obs ?registry t;
  let n = shards t in
  let reports = Array.make n Reorg.Driver.empty_report in
  let done_ = ref 0 in
  let eng = Engine.create () in
  (match registry with Some reg -> Engine.register_obs eng reg | None -> ());
  (match tracer with Some _ as tr -> Engine.set_tracer eng tr | None -> ());
  for i = 0 to n - 1 do
    let ctx = shard_ctx ?registry ?tracer ~config t i in
    Engine.spawn eng ~name:(Printf.sprintf "reorganizer-%d" i) (fun () ->
        reports.(i) <- Reorg.Driver.run ctx;
        incr done_)
  done;
  let ustats =
    if users > 0 then
      Workload.Mix.spawn_cross_users eng ~router:t.router ~seed ~users ~ops_per_user:user_ops
        ~stop:(fun () -> !done_ = n)
        ~key_space ?xspan ~mix:user_mix ()
    else Workload.Mix.create_stats ()
  in
  Engine.run eng;
  let final = Engine.now eng in
  ( {
      reports;
      ticks = Array.make n final;
      makespan = final;
      total_ticks = final;
    },
    ustats )
