(* Experiment E2 — §8 "better concurrency": user transactions running while
   the reorganizer works, paper method vs the Tandem-style [Smi90] baseline
   (which X-locks the whole file for every two-block operation).

   Reported per method: how long the reorganization took, how many user
   operations completed meanwhile, their mean/max latency, and how long they
   sat blocked on locks.  A no-reorganization control gives the undisturbed
   latency. *)

module Engine = Sched.Engine

type run = {
  name : string;
  duration : int;
  committed : int;
  aborted : int;
  give_ups : int;
  blocked : int;
  mean_latency : float;
  max_latency : int;
}

let users = 8
let user_mix = Workload.Mix.read_mostly

let mk_db ?record_locking seed = Scenario.aged ?record_locking ~seed ~n:1500 ~f1:0.3 ()

let run_ours ?record_locking seed =
  let db, _ = mk_db ?record_locking seed in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Driver.run ctx);
      finished := true);
  let st =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:99 ~users ~ops_per_user:100_000
      ~stop:(fun () -> !finished)
      ~mix:user_mix ()
  in
  let t0 = Engine.now eng in
  Engine.run eng;
  (Engine.now eng - t0, st, db)

let run_tandem seed =
  let db, _ = mk_db seed in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Baseline.Tandem.reorganize ~access:db.Db.access ~f2:0.9);
      finished := true);
  let st =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:99 ~users ~ops_per_user:100_000
      ~stop:(fun () -> !finished)
      ~mix:user_mix ()
  in
  let t0 = Engine.now eng in
  Engine.run eng;
  (Engine.now eng - t0, st, db)

let run_offline seed =
  let db, _ = mk_db seed in
  let eng = Engine.create () in
  let finished = ref false in
  Engine.spawn eng (fun () ->
      ignore (Baseline.Offline.reorganize ~access:db.Db.access ~f2:0.9 : Baseline.Offline.stats);
      finished := true);
  let st =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:99 ~users ~ops_per_user:100_000
      ~stop:(fun () -> !finished)
      ~mix:user_mix ()
  in
  let t0 = Engine.now eng in
  Engine.run eng;
  (Engine.now eng - t0, st, db)

let run_control seed ops =
  let db, _ = mk_db seed in
  let eng = Engine.create () in
  let st =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:99 ~users
      ~ops_per_user:(max 1 (ops / users))
      ~mix:user_mix ()
  in
  let t0 = Engine.now eng in
  Engine.run eng;
  (Engine.now eng - t0, st, db)

let to_run name (duration, (st : Workload.Mix.stats), _db) =
  {
    name;
    duration;
    committed = st.Workload.Mix.committed;
    aborted = st.aborted;
    give_ups = st.give_ups;
    blocked = st.blocked_ticks;
    mean_latency =
      Util.Stats.ratio (float_of_int st.op_ticks) (float_of_int st.committed);
    max_latency = st.max_op_ticks;
  }

let run () =
  let seed = 41 in
  let ours = run_ours seed in
  let ours_rec = run_ours ~record_locking:true seed in
  let tandem = run_tandem seed in
  let offline = run_offline seed in
  let _, ours_st, _ = ours in
  let control = run_control seed ours_st.Workload.Mix.committed in
  let rows =
    [ to_run "paper (online)" ours; to_run "paper + record locks" ours_rec;
      to_run "tandem [Smi90]" tandem; to_run "offline rebuild" offline;
      to_run "no-reorg control" control ]
  in
  let table =
    Util.Table.create
      ~title:
        (Printf.sprintf
           "E2 — user transactions during reorganization (%d users, 80/10/10 mix)" users)
      [ ("method", Util.Table.Left); ("reorg ticks", Util.Table.Right);
        ("user ops done", Util.Table.Right); ("ops/1k ticks", Util.Table.Right);
        ("mean latency", Util.Table.Right); ("max latency", Util.Table.Right);
        ("blocked ticks", Util.Table.Right); ("give-ups", Util.Table.Right);
        ("aborts", Util.Table.Right) ]
  in
  List.iter
    (fun r ->
      Util.Table.add_row table
        [ r.name; Util.Table.fmt_int r.duration; Util.Table.fmt_int r.committed;
          Util.Table.fmt_float
            (Util.Stats.ratio (1000.0 *. float_of_int r.committed) (float_of_int r.duration));
          Util.Table.fmt_float r.mean_latency; Util.Table.fmt_int r.max_latency;
          Util.Table.fmt_int r.blocked; Util.Table.fmt_int r.give_ups;
          Util.Table.fmt_int r.aborted ])
    rows;
  table
