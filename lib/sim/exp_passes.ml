(* Experiments F1 / F2 — the three-pass algorithm end to end (Figure 1) and
   the leaf-reorganization main loop's branch profile (Figure 2).

   F1 shows the leaf zone's physical layout before/after each pass plus the
   tree shape, on a small tree so the layout strings are readable.
   F2 reports, for a realistic tree, how often the main loop chose
   copying-switching (Find-Free-Space hit) vs in-place compaction, and what
   pass 2 then had to do. *)

module Tree = Btree.Tree
module Leaf = Btree.Leaf
module Engine = Sched.Engine

(* One character per leaf-zone page: '.' free, digits/letters = key-order
   position of the leaf living there (mod 62). *)
let layout_string db =
  let alloc = db.Db.alloc in
  let lo, _ = Pager.Alloc.leaf_zone alloc in
  let leaves = Tree.leaf_pids db.Db.tree in
  let n = List.length leaves in
  let span =
    List.fold_left max (lo + 15) leaves - lo + 1
  in
  let buf = Bytes.make span '.' in
  let sym i =
    if i < 10 then Char.chr (Char.code '0' + i)
    else if i < 36 then Char.chr (Char.code 'a' + i - 10)
    else if i < 62 then Char.chr (Char.code 'A' + i - 36)
    else '#'
  in
  List.iteri (fun i pid -> Bytes.set buf (pid - lo) (sym i)) leaves;
  Printf.sprintf "%d leaves: %s" n (Bytes.to_string buf)

let run_figure1 () =
  let db, _records = Scenario.aged ~seed:17 ~n:260 ~f1:0.3 ~span_factor:2.0 () in
  let table =
    Util.Table.create ~title:"Figure 1 — three-pass reorganization (leaf-zone layout)"
      [ ("stage", Util.Table.Left); ("height", Util.Table.Right); ("avg fill", Util.Table.Right);
        ("physical layout (page order; symbol = key order)", Util.Table.Left) ]
  in
  let snap stage =
    let s = Tree.stats db.Db.tree in
    Util.Table.add_row table
      [ stage; string_of_int s.Tree.height; Util.Table.fmt_pct s.Tree.avg_leaf_fill;
        layout_string db ]
  in
  snap "initial (sparse, scattered)";
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Pass1.run ctx);
      snap "after pass 1 (compact)";
      ignore (Reorg.Pass2.run ctx);
      snap "after pass 2 (swap/move)";
      ignore (Reorg.Pass3.run ctx ());
      snap "after pass 3 (shrink+switch)");
  Engine.run eng;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  table

let run_figure2 () =
  let table =
    Util.Table.create
      ~title:
        "Figure 2 — leaf-reorganization main loop: Find-Free-Space hits vs in-place\n\
         (while more leaves: if appropriate free space then Copying-Switching else In-Place-Reorg)"
      [ ("f1", Util.Table.Right); ("units", Util.Table.Right);
        ("copying-switching", Util.Table.Right); ("in-place", Util.Table.Right);
        ("d = pages/unit", Util.Table.Right); ("pass-2 swaps", Util.Table.Right);
        ("pass-2 moves", Util.Table.Right) ]
  in
  List.iter
    (fun f1 ->
      let db, _ = Scenario.aged ~seed:23 ~n:2000 ~f1 () in
      let ctx, r, _ = Scenario.run_reorg db in
      let m = ctx.Reorg.Ctx.metrics in
      let d =
        if (Reorg.Metrics.units m) = 0 then 0.0
        else
          float_of_int ((Reorg.Metrics.pages_compacted m) + (Reorg.Metrics.units m))
          /. float_of_int (Reorg.Metrics.units m)
      in
      Util.Table.add_row table
        [ Printf.sprintf "%.2f" f1; string_of_int r.Reorg.Driver.pass1_units;
          string_of_int (Reorg.Metrics.new_place_units m);
          string_of_int (Reorg.Metrics.in_place_units m); Printf.sprintf "%.1f" d;
          string_of_int r.Reorg.Driver.swaps; string_of_int r.Reorg.Driver.moves ])
    [ 0.15; 0.25; 0.35; 0.45 ];
  table
