(* Experiment E1 — §6.1 / [ZS95]: "our algorithm can greatly reduce the
   number of swaps needed at the second pass."

   Sweep the initial fill factor f1 over an aged file and compare the
   Find-Free-Space policies.  Swaps are the expensive relocation (they lock
   two parents and must log at least one full page); moves are the cheap
   one.  Immediate deallocation (careful_writing off) is used so freed pages
   are visible to all policies alike — isolating the placement decision. *)

let run ?(n = 2500) () =
  let table =
    Util.Table.create
      ~title:
        "E1 — pass-2 swaps by Find-Free-Space policy (aged file, f2 = 0.9)\n\
         paper = first free page in (L, C); first-free = smallest free page anywhere;\n\
         no-new-place = always compact in place"
      [ ("f1", Util.Table.Right); ("policy", Util.Table.Left); ("units", Util.Table.Right);
        ("swaps", Util.Table.Right); ("moves", Util.Table.Right);
        ("swaps vs paper", Util.Table.Right); ("reorg log bytes", Util.Table.Right) ]
  in
  List.iter
    (fun f1 ->
      let results =
        List.map
          (fun (name, heuristic) ->
            let db, expected = Scenario.aged ~seed:31 ~n ~f1 () in
            let config =
              { Reorg.Config.default with heuristic; careful_writing = false; shrink_pass = false }
            in
            let ctx, r, _ = Scenario.run_reorg ~config db in
            Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
            Btree.Invariant.check_consistent_with db.Db.tree ~expected;
            (name, r, (Reorg.Metrics.log_bytes ctx.Reorg.Ctx.metrics)))
          [
            ("paper", Reorg.Config.Paper_heuristic);
            ("first-free", Reorg.Config.First_free);
            ("no-new-place", Reorg.Config.No_new_place);
          ]
      in
      let paper_swaps =
        match results with (_, r, _) :: _ -> r.Reorg.Driver.swaps | [] -> 0
      in
      List.iter
        (fun (name, r, log_bytes) ->
          Util.Table.add_row table
            [ Printf.sprintf "%.2f" f1; name; string_of_int r.Reorg.Driver.pass1_units;
              string_of_int r.Reorg.Driver.swaps; string_of_int r.Reorg.Driver.moves;
              Util.Table.fmt_ratio
                (Util.Stats.ratio (float_of_int r.Reorg.Driver.swaps)
                   (float_of_int paper_swaps));
              Util.Table.fmt_bytes log_bytes ])
        results;
      Util.Table.add_rule table)
    [ 0.2; 0.3; 0.4 ];
  table
