(* Experiment E5 — the §2 motivation: "for the same amount of data, it will
   take more page reads for a sparsely populated B+-tree", and scattered
   leaves turn sequential range scans into random I/O.

   A fixed range workload runs against a cold buffer pool before and after
   reorganization; the disk model charges a seek for non-sequential reads. *)

module Tree = Btree.Tree
module Disk = Pager.Disk

let scan_cost db ~ranges ~width =
  (* Cold cache: fresh pool over the same disk. *)
  Db.flush_all db;
  let pool = Pager.Buffer_pool.create db.Db.backend in
  let journal = Transact.Journal.create pool db.Db.log in
  let alloc = db.Db.alloc in
  let tree = Tree.attach ~journal ~alloc ~meta_pid:0 () in
  Disk.reset_stats db.Db.disk;
  let total = ref 0 in
  let rng = Util.Rng.create 7 in
  for _ = 1 to ranges do
    let lo = 2 * Util.Rng.int rng 2000 in
    total := !total + List.length (Tree.range tree ~lo ~hi:(lo + width))
  done;
  let s = Disk.stats db.Db.disk in
  (s, Disk.io_cost s, !total)

let run () =
  let table =
    Util.Table.create
      ~title:
        "E5 — range-scan cost before/after reorganization (cold cache, 60 scans of 400 keys;\n\
         cost model: random read = 11, sequential read = 1)"
      [ ("f1", Util.Table.Right); ("stage", Util.Table.Left); ("leaves", Util.Table.Right);
        ("page reads", Util.Table.Right); ("sequential", Util.Table.Right);
        ("random", Util.Table.Right); ("I/O cost", Util.Table.Right);
        ("speedup", Util.Table.Right) ]
  in
  List.iter
    (fun f1 ->
      let db, expected = Scenario.aged ~seed:61 ~n:2000 ~f1 () in
      let row stage cost_before =
        let stats, cost, _ = scan_cost db ~ranges:60 ~width:800 in
        let leaves = (Tree.stats db.Db.tree).Tree.leaf_count in
        Util.Table.add_row table
          [ Printf.sprintf "%.2f" f1; stage; string_of_int leaves;
            Util.Table.fmt_int stats.Disk.reads; Util.Table.fmt_int stats.Disk.seq_reads;
            Util.Table.fmt_int stats.Disk.rand_reads; Util.Table.fmt_float cost;
            (match cost_before with
            | None -> "-"
            | Some b -> Util.Table.fmt_ratio (Util.Stats.ratio b cost)) ];
        cost
      in
      let before = row "before (sparse, scattered)" None in
      let _, _, _ = Scenario.run_reorg db in
      Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
      Btree.Invariant.check_consistent_with db.Db.tree ~expected;
      ignore (row "after  (compacted, ordered)" (Some before));
      Util.Table.add_rule table)
    [ 0.2; 0.35; 0.5 ];
  table
