(** Forward-recovery torture harness.

    The paper's §5.1 claim — a crashed reorganization unit is {e finished},
    never rolled back — is only believable if it holds at {e every} write
    boundary, not a sampled handful.  {!run} makes that systematic: a
    fault-free dry run of a seeded workload (bulk-loaded aged tree, full
    reorganization, optional concurrent writers) counts the page-write and
    log-force boundaries; then, for every boundary in turn (or every
    [stride]-th), a fresh identical database is built, a fault plan is armed
    to kill the machine exactly there — sometimes tearing the final page
    write or the WAL tail — and after {!Db.crash_now} + restart + resumed
    reorganization the harness asserts:

    - the structural B+-tree invariant, including the leaf side-pointer
      chain ({!Btree.Invariant.check});
    - no base record lost, changed or duplicated; no phantom user record;
      every acknowledged user insert still present;
    - every unit whose BEGIN is in the stable log also has its END — i.e.
      recovery finished all interrupted units forward.

    Any violation raises {!Failed} naming the crash point, so a deliberately
    broken recovery is caught with a precise reproducer
    ([--seed N] + the reported boundary). *)

exception Failed of string

type expectation = {
  base : (int * string) list;  (** even-keyed records that must survive exactly *)
  attempted : (int, string) Hashtbl.t;  (** odd-keyed inserts that {e may} survive *)
  acked : (int, string) Hashtbl.t;  (** odd-keyed inserts that {e must} survive *)
}

val expectation_of_base : (int * string) list -> expectation
(** No concurrent users: the tree must hold exactly [base]. *)

val verify : Db.t -> expectation -> unit
(** The post-recovery checks above; raises {!Failed} on the first
    violation.  Public so tests can demonstrate that a corrupted database
    {e is} caught (the harness's own mutation test). *)

type report = {
  write_boundaries : int;  (** page-write crash points discovered *)
  force_boundaries : int;  (** log-force crash points discovered *)
  points : int;  (** crash points actually tested *)
  crashes : int;  (** plans that tripped *)
  torn_writes : int;
  torn_tails : int;
  units_finished : int;  (** units recovery finished forward, summed *)
  torn_repaired : int;  (** torn pages detected and rebuilt by redo *)
  survivors : int;  (** armed plans whose boundary was never reached *)
}

val run :
  ?registry:Obs.Registry.t ->
  ?tracer:Obs.Trace.t ->
  ?checker:Model.Checker.t ->
  ?config:Reorg.Config.t ->
  ?page_size:int ->
  ?leaf_pages:int ->
  ?n:int ->
  ?users:int ->
  ?f1:float ->
  ?pipeline:bool ->
  ?olc:bool ->
  seed:int ->
  stride:int ->
  unit ->
  report
(** Sweep every crash point ([stride = 1]) or a sampled subset.  Fully
    deterministic from the arguments.  Defaults: 512-byte pages, 512-page
    leaf zone, [n = 400] records at fill 0.3, no concurrent users.
    [registry] accumulates [fault.*], [recovery.*] and per-subsystem
    counters across all cycles.  [pipeline:true] runs every cycle with the
    asynchronous durability pipeline attached ({!Pipeline}) — crash
    boundaries then land inside group-commit windows and elevator sweeps,
    and fuzzy checkpoints truncate the WAL mid-workload.  [olc:true] makes
    every user read its inserted key back through the optimistic lock-free
    path in each cycle, so crashes land inside optimistic descents and the
    post-crash epoch invalidation is exercised. *)
