(** Database assembly: one object wiring every subsystem together — disk,
    buffer pool, log, lock manager, transaction manager, allocator, B+-tree
    and the concurrent access layer — with the cross-module hooks installed
    (WAL rule, logical undo).  Tests, examples and experiments all start
    here. *)

type t = {
  disk : Pager.Disk.t;
  pool : Pager.Buffer_pool.t;
  log : Wal.Log.t;
  journal : Transact.Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mgr : Transact.Txn_mgr.t;
  alloc : Pager.Alloc.t;
  tree : Btree.Tree.t;
  access : Btree.Access.t;
}

val create :
  ?page_size:int -> ?leaf_pages:int -> ?capacity:int -> ?record_locking:bool -> unit -> t
(** Empty tree.  Defaults: 512-byte pages, 1024-page leaf zone, unbounded
    pool, page-level user locking (see {!Btree.Access.create}). *)

val load :
  ?page_size:int ->
  ?leaf_pages:int ->
  ?capacity:int ->
  ?record_locking:bool ->
  fill:float ->
  ?internal_fill:float ->
  (int * string) list ->
  t
(** Bulk-loaded tree (sorted records), flushed to disk. *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register the lock manager's, buffer pool's and log's gauges. *)

val set_tracers : t -> Obs.Trace.t option -> unit
(** Point every subsystem's tracer hook at the same trace (or detach). *)

val checkpoint : t -> ?reorg_table:Wal.Record.reorg_table -> unit -> unit
(** Write and force a checkpoint record. *)

val crash : t -> unit
(** Lose the buffer pool and the volatile log tail.  Combine with
    {!Reorg.Recovery.restart} to come back up. *)

val flush_all : t -> unit

val payload_for : int -> string
(** Canonical test payload for a key. *)
