(** The one-store database: a thin veneer over {!Shard.Store}, which wires
    every subsystem together — disk, storage backend, fault controller,
    buffer pool, log, lock manager, transaction manager, allocator, B+-tree
    and the concurrent access layer — with the cross-module hooks installed
    (WAL rule, logical undo, fault injection).  Tests, examples and
    single-tree experiments all start here; sharded assemblies build several
    {!Shard.Store.t} values directly.

    The buffer pool and the log both sit on the database's single
    {!Pager.Fault.t}: arm a plan ([Pager.Fault.arm db.faults plan]) and the
    machine dies — {!Pager.Fault.Crash} — at the scheduled write or force
    boundary; then {!crash_now} makes the crash official and reboots. *)

type t = Shard.Store.t = {
  disk : Pager.Disk.t;  (** the raw in-memory disk (for stats / post-mortems) *)
  backend : Pager.Backend.t;  (** the fault-injecting seam everything I/Os through *)
  faults : Pager.Fault.t;
  pool : Pager.Buffer_pool.t;
  log : Wal.Log.t;
  journal : Transact.Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mgr : Transact.Txn_mgr.t;
  alloc : Pager.Alloc.t;
  tree : Btree.Tree.t;
  access : Btree.Access.t;
  health : Obs.Health.t;
      (** incrementally-maintained tree health: fed by the pool's dirty
          hook, the allocator's churn notes, the side file's backlog and
          the reorganizer's unit/switch events — see {!Obs.Health} *)
  shard : int * int;  (** [(0, 1)] here — see {!Shard.Store.t} *)
}

val assemble :
  ?faults:Pager.Fault.t ->
  ?record_locking:bool ->
  ?shard:int * int ->
  page_size:int ->
  leaf_pages:int ->
  capacity:int option ->
  mk_tree:(journal:Transact.Journal.t -> alloc:Pager.Alloc.t -> Btree.Tree.t) ->
  unit ->
  t
(** {!Shard.Store.assemble}. *)

val create :
  ?faults:Pager.Fault.t ->
  ?page_size:int ->
  ?leaf_pages:int ->
  ?capacity:int ->
  ?record_locking:bool ->
  unit ->
  t
(** Empty tree.  Defaults: 512-byte pages, 1024-page leaf zone, unbounded
    pool, page-level user locking (see {!Btree.Access.create}).  [faults]
    shares an existing fault controller (the torture harness reuses one
    across crash/recover cycles so its counters accumulate); by default each
    database gets its own. *)

val load :
  ?faults:Pager.Fault.t ->
  ?page_size:int ->
  ?leaf_pages:int ->
  ?capacity:int ->
  ?record_locking:bool ->
  fill:float ->
  ?internal_fill:float ->
  (int * string) list ->
  t
(** Bulk-loaded tree (sorted records), flushed to disk. *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register the lock manager's, buffer pool's, log's, fault controller's
    and tree-health gauges. *)

val set_tracers : t -> Obs.Trace.t option -> unit
(** Point every subsystem's tracer hook at the same trace (or detach). *)

val checkpoint : t -> ?reorg_table:Wal.Record.reorg_table -> unit -> unit
(** Write and force a checkpoint record. *)

val crash_now : ?flush_seed:int -> t -> unit
(** The authoritative crash/reboot event: the volatile log tail and every
    buffer-pool frame vanish, locks and active transactions are cleared, the
    fault controller is marked crashed then revived (so recovery's I/O
    works).  If the machine is still alive (no plan tripped) and
    [flush_seed] is given, a seeded random half of the dirty pages is
    flushed first — the arbitrary disk state a buffer manager can leave
    behind.  Combine with {!Reorg.Recovery.restart} to come back up. *)

val flush_all : t -> unit

val payload_for : int -> string
(** Canonical test payload for a key. *)
