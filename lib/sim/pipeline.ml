module Engine = Sched.Engine
module Journal = Transact.Journal
module Buffer_pool = Pager.Buffer_pool
module Group_commit = Wal.Group_commit

type t = {
  gc : Group_commit.t;
  db : Db.t;
  mutable detached : bool;
}

(* Reroute transaction-commit durability through the group-commit batcher:
   the committing process parks until the ticker's next window folds its
   force into one stable append.  A force already covered by the flushed
   prefix returns immediately — no parking, no batch entry.  Careful-writing
   prerequisite forces ([Buffer_pool]'s WAL-rule hook) never come through
   this seam; they stay synchronous. *)
let commit_hook gc log lsn =
  if lsn > Wal.Log.flushed_lsn log then
    Engine.suspend (fun wake -> Group_commit.request gc lsn wake)

let attach ?(gc_every = 2) ?(flush_every = 8) ?flush_limit ?ckpt_every ?ctx eng db ~stop =
  let gc = Group_commit.create db.Db.log in
  Journal.set_commit_force db.Db.journal (commit_hook gc db.Db.log);
  (* The ticker outlives [stop] until its batch is drained: a process parked
     in the current window must be woken (or the crash must take it) before
     the daemon leaves — group commit never strands an acknowledgement. *)
  Engine.spawn eng ~name:"group-commit" (fun () ->
      let rec loop () =
        Engine.sleep gc_every;
        Group_commit.flush gc;
        if not (stop () && Group_commit.pending gc = 0) then loop ()
      in
      loop ());
  (* Elevator writeback: drain dirty frames in ascending-pid order so the
     write stream the disk sees turns sequential; one batched log force
     (inside [flush_elevator]) satisfies the WAL rule for the whole sweep. *)
  Sched.Daemon.spawn eng ~name:"flusher" ~every:flush_every ~until:stop (fun () ->
      ignore (Buffer_pool.flush_elevator ?limit:flush_limit db.Db.pool : int));
  (* Fuzzy checkpoints bound recovery replay and let the log truncate. *)
  (match ckpt_every with
  | None -> ()
  | Some every -> Checkpointer.spawn ?ctx eng ~db ~every ~stop);
  { gc; db; detached = false }

let detach t =
  if not t.detached then begin
    t.detached <- true;
    (* Waiters still parked here were abandoned by a crash inside the last
       window — exactly what the crash does to their processes.  Restore the
       synchronous path for code that commits outside any engine. *)
    Journal.reset_commit_force t.db.Db.journal
  end

let with_pipeline ?gc_every ?flush_every ?flush_limit ?ckpt_every ?ctx ~enabled eng db ~stop f
    =
  if not enabled then f ()
  else begin
    let t = attach ?gc_every ?flush_every ?flush_limit ?ckpt_every ?ctx eng db ~stop in
    Fun.protect ~finally:(fun () -> detach t) f
  end

let stats t = Group_commit.stats t.gc
