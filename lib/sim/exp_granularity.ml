(* Experiment E6 — §8 "better granularity / less transaction overhead":
   the paper's unit compacts d = ceil(f2/f1) pages at once, while [Smi90]
   handles exactly two blocks per transaction, each a full transaction with
   its own file lock and commit force.

   Reported, for the same initial tree: operations/transactions needed,
   pages handled per operation, lock acquisitions, and log forces. *)

module Tree = Btree.Tree

let run () =
  let table =
    Util.Table.create
      ~title:"E6 — reorganization granularity and overhead (f2 = 0.9)"
      [ ("f1", Util.Table.Right); ("method", Util.Table.Left);
        ("ops/units", Util.Table.Right); ("pages per op", Util.Table.Right);
        ("d = f2/f1 (paper)", Util.Table.Right); ("lock acquisitions", Util.Table.Right);
        ("commit forces", Util.Table.Right) ]
  in
  List.iter
    (fun f1 ->
      (* Ours. *)
      let db, _ = Scenario.aged ~seed:67 ~n:1500 ~f1 () in
      Lockmgr.Lock_mgr.reset_stats db.Db.locks;
      let forces0 = (Wal.Log.stats db.Db.log).Wal.Log.forced in
      let config = { Reorg.Config.default with swap_pass = false; shrink_pass = false } in
      let ctx, r, _ = Scenario.run_reorg ~config db in
      let m = ctx.Reorg.Ctx.metrics in
      let locks = (Lockmgr.Lock_mgr.stats db.Db.locks).Lockmgr.Lock_mgr.acquires in
      let forces = (Wal.Log.stats db.Db.log).Wal.Log.forced - forces0 in
      let pages_per_unit =
        Util.Stats.ratio
          (float_of_int ((Reorg.Metrics.pages_compacted m) + (Reorg.Metrics.units m)))
          (float_of_int (Reorg.Metrics.units m))
      in
      Util.Table.add_row table
        [ Printf.sprintf "%.2f" f1; "paper (one process)";
          string_of_int r.Reorg.Driver.pass1_units; Util.Table.fmt_float pages_per_unit;
          Util.Table.fmt_float (0.9 /. f1); Util.Table.fmt_int locks;
          Util.Table.fmt_int forces ];
      (* Tandem. *)
      let db, _ = Scenario.aged ~seed:67 ~n:1500 ~f1 () in
      Lockmgr.Lock_mgr.reset_stats db.Db.locks;
      let forces0 = (Wal.Log.stats db.Db.log).Wal.Log.forced in
      let eng = Sched.Engine.create () in
      let stats = Baseline.Tandem.create_stats () in
      Sched.Engine.spawn eng (fun () ->
          Baseline.Tandem.compact ~access:db.Db.access ~f2:0.9 stats);
      Sched.Engine.run eng;
      let locks = (Lockmgr.Lock_mgr.stats db.Db.locks).Lockmgr.Lock_mgr.acquires in
      let forces = (Wal.Log.stats db.Db.log).Wal.Log.forced - forces0 in
      Util.Table.add_row table
        [ Printf.sprintf "%.2f" f1; "tandem (txn per op)";
          string_of_int stats.Baseline.Tandem.ops; "2.0"; "-"; Util.Table.fmt_int locks;
          Util.Table.fmt_int forces ];
      Util.Table.add_rule table)
    [ 0.15; 0.3; 0.45 ];
  table
