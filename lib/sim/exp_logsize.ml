(* Experiment E4 — §5 log volume: careful writing lets MOVE records carry
   keys only; without it they carry full record contents.  Swaps always log
   at least one full page.  Log size is a first-class cost in the paper
   ("since log size is a concern...").

   Reported: reorganization log bytes/records for careful vs full-content
   logging, pass 1 only (moves) and with pass 2 (swaps included). *)

let measure ~careful ~swap_pass =
  let db, expected = Scenario.aged ~seed:53 ~n:1500 ~f1:0.3 () in
  let config =
    {
      Reorg.Config.default with
      careful_writing = careful;
      swap_pass;
      shrink_pass = false;
    }
  in
  let ctx, r, _ = Scenario.run_reorg ~config db in
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  Btree.Invariant.check_consistent_with db.Db.tree ~expected;
  (ctx.Reorg.Ctx.metrics, r)

let run () =
  let table =
    Util.Table.create
      ~title:
        "E4 — reorganization log volume: careful writing (keys only) vs full contents"
      [ ("configuration", Util.Table.Left); ("units", Util.Table.Right);
        ("swaps", Util.Table.Right); ("records moved", Util.Table.Right);
        ("log records", Util.Table.Right); ("log bytes", Util.Table.Right);
        ("bytes/record moved", Util.Table.Right) ]
  in
  List.iter
    (fun (name, careful, swap_pass) ->
      let m, r = measure ~careful ~swap_pass in
      Util.Table.add_row table
        [ name; string_of_int r.Reorg.Driver.pass1_units; string_of_int r.Reorg.Driver.swaps;
          Util.Table.fmt_int (Reorg.Metrics.records_moved m);
          Util.Table.fmt_int (Reorg.Metrics.log_records m);
          Util.Table.fmt_bytes (Reorg.Metrics.log_bytes m);
          Util.Table.fmt_float
            (Util.Stats.ratio
               (float_of_int (Reorg.Metrics.log_bytes m))
               (float_of_int (Reorg.Metrics.records_moved m))) ])
    [
      ("careful writing, pass 1 only", true, false);
      ("full contents,   pass 1 only", false, false);
      ("careful writing, passes 1+2", true, true);
      ("full contents,   passes 1+2", false, true);
    ];
  table
