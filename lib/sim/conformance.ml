(* The model-conformance runner: replays the deterministic workloads and the
   torture crash sweeps with a {!Model.Checker} attached, plus the two
   mutation self-tests that prove the checker actually catches a broken
   Table-1 cell and a broken §7.1 switch guard.  Everything is deterministic
   from the seeds. *)

module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr

type summary = {
  label : string;
  events : int;
  tracks : int;
  violations : Model.Machine.violation list;
}

let ok s = s.violations = []

let to_string s =
  match s.violations with
  | [] -> Printf.sprintf "%-14s ok      %6d events, %4d tracks" s.label s.events s.tracks
  | vs ->
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "%-14s FAILED  %6d events, %4d tracks, %d violation(s)\n" s.label
         s.events s.tracks (List.length vs));
    List.iter
      (fun v ->
        Buffer.add_string b (Model.Machine.violation_to_string v);
        Buffer.add_char b '\n')
      vs;
    Buffer.contents b

let summarize label c =
  {
    label;
    events = Model.Checker.events c;
    tracks = Model.Checker.tracks c;
    violations = Model.Checker.violations c;
  }

(* A mixed seeded workload: reorganization of an aged tree with concurrent
   updaters — the deadlock/give-up machinery fires, the side file fills, the
   switch drains. *)
let workload ?(olc = false) ~seed () =
  let c = Model.Checker.create () in
  let db, _ = Scenario.aged ~page_size:512 ~leaf_pages:512 ~seed ~n:400 ~f1:0.3 () in
  let _ctx, _report, _ustats =
    Scenario.run_reorg ~checker:c ~olc ~users:4 ~user_mix:Workload.Mix.update_heavy
      ~user_ops:400 ~seed db
  in
  Model.Checker.finalize c;
  summarize (Printf.sprintf "workload-%d%s" seed (if olc then "+olc" else "")) c

(* The crash sweeps: every [stride]-th write/force boundary of the seeded
   torture workloads, each crash replayed through recovery with the models
   watching both sides of the boundary. *)
let torture ?(n = 120) ?(leaf_pages = 128) ?(pipeline = false) ?(olc = false) ~seed ~stride
    ~users () =
  let c = Model.Checker.create () in
  let label =
    Printf.sprintf "torture-%d/%d%s%s" seed stride
      (if pipeline then "+pipe" else "")
      (if olc then "+olc" else "")
  in
  match Torture.run ~checker:c ~n ~leaf_pages ~pipeline ~olc ~seed ~stride ~users () with
  | (_ : Torture.report) -> summarize label c
  | exception Torture.Failed msg ->
    let s = summarize label c in
    if s.violations <> [] then s
    else
      {
        s with
        violations =
          [
            {
              Model.Machine.v_machine = "torture";
              v_track = label;
              v_state = "";
              v_event = "";
              v_reason = msg;
              v_history = [];
            };
          ];
      }

let shard_torture ?(n = 120) ~seed ~stride () =
  let c = Model.Checker.create () in
  let label = Printf.sprintf "shard-%d/%d" seed stride in
  match Shard_torture.run ~checker:c ~n ~seed ~stride () with
  | (_ : Shard_torture.report) -> summarize label c
  | exception Shard_torture.Failed msg ->
    let s = summarize label c in
    if s.violations <> [] then s
    else
      {
        s with
        violations =
          [
            {
              Model.Machine.v_machine = "shard-torture";
              v_track = label;
              v_state = "";
              v_event = "";
              v_reason = msg;
              v_history = [];
            };
          ];
      }

(* ---- mutation self-tests: each flips one protocol cell under a test flag
   and must make the checker report a violation. ---- *)

(* Break one Table-1 cell (RX/X compatible) and drive the lock manager into
   granting through it: the model, reading its own literal matrix, must
   object. *)
let mutate_table1 () =
  let c = Model.Checker.create () in
  let lm = Lock_mgr.create () in
  Model.Checker.attach_locks c ~shard:0 lm;
  Mode.test_break_compat := Some (Mode.RX, Mode.X);
  Fun.protect
    ~finally:(fun () -> Mode.test_break_compat := None)
    (fun () ->
      ignore (Lock_mgr.try_acquire lm ~owner:1 (Resource.Page 7) Mode.RX : Lock_mgr.outcome);
      ignore (Lock_mgr.try_acquire lm ~owner:2 (Resource.Page 7) Mode.X : Lock_mgr.outcome));
  Model.Checker.finalize c;
  summarize "mutate-table1" c

(* Break the §7.1 Get_Current contract (CK not advanced before the base's S
   lock is released) and run a small reorganization: the switch machine's
   scan guard must fire. *)
let mutate_switch () =
  let c = Model.Checker.create () in
  Reorg.Pass3.test_skip_ck_advance := true;
  Fun.protect
    ~finally:(fun () -> Reorg.Pass3.test_skip_ck_advance := false)
    (fun () ->
      let db, _ = Scenario.aged ~page_size:512 ~leaf_pages:256 ~seed:5 ~n:200 ~f1:0.3 () in
      ignore (Scenario.run_reorg ~checker:c db));
  Model.Checker.finalize c;
  summarize "mutate-switch" c

(* Skip the optimistic-read version bumps (DESIGN.md §11) and run read-only
   users against a reorganization that swaps and compacts leaves: an
   uncontended unit executes atomically between two reader yields, so a
   reader whose parked-on leaf had its records exchanged under it commits a
   wrong answer — the olc machine's oracle guard must fire.  The same
   scenario with bumps intact is the clean arm ([workload ~olc:true]). *)
let mutate_olc () =
  let c = Model.Checker.create () in
  Btree.Olc.test_skip_bumps := true;
  Fun.protect
    ~finally:(fun () -> Btree.Olc.test_skip_bumps := false)
    (fun () ->
      (* Only swap units silently re-point a live leaf (moves and compacts
         free the org page, which a reader detects as a kind change), so the
         hit window is narrow: readers must target PRESENT keys
         ([user_key_space = n]) and several seeds are swept — the first
         caught violation proves the point.  Every seed here trips with the
         production bumps removed; one is enough. *)
      let seeds = [ 11; 12; 13; 17; 23 ] in
      List.iter
        (fun seed ->
          if Model.Checker.ok c then begin
            let db, _ =
              Scenario.aged ~page_size:512 ~leaf_pages:512 ~seed ~n:400 ~f1:0.3 ()
            in
            ignore
              (Scenario.run_reorg ~checker:c ~olc:true ~users:6
                 ~user_mix:Workload.Mix.read_only ~user_ops:4_000 ~user_key_space:400 ~seed
                 db)
          end)
        seeds);
  Model.Checker.finalize c;
  summarize "mutate-olc" c
