module Store = Shard.Store

(* Re-exported record: [Db.t] IS one [Shard.Store.t], so every existing
   [db.Sim.Db.field] access keeps compiling while sharded assemblies build
   several stores from the same constructor. *)
type t = Store.t = {
  disk : Pager.Disk.t;
  backend : Pager.Backend.t;
  faults : Pager.Fault.t;
  pool : Pager.Buffer_pool.t;
  log : Wal.Log.t;
  journal : Transact.Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  mgr : Transact.Txn_mgr.t;
  alloc : Pager.Alloc.t;
  tree : Btree.Tree.t;
  access : Btree.Access.t;
  health : Obs.Health.t;
  shard : int * int;
}

let assemble = Store.assemble
let create ?faults ?page_size ?leaf_pages ?capacity ?record_locking () =
  Store.create ?faults ?page_size ?leaf_pages ?capacity ?record_locking ()

let load ?faults ?page_size ?leaf_pages ?capacity ?record_locking ~fill ?internal_fill
    records =
  Store.load ?faults ?page_size ?leaf_pages ?capacity ?record_locking ~fill ?internal_fill
    records

let register_obs = Store.register_obs
let set_tracers = Store.set_tracers
let checkpoint = Store.checkpoint
let crash_now = Store.crash_now
let flush_all = Store.flush_all
let payload_for = Store.payload_for
