(* Experiment G1 — group commit and the asynchronous I/O pipeline.

   The same aged tree is reorganized twice under identical concurrent
   update-heavy user traffic.  The [sync] arm commits through the default
   synchronous path: every transaction commit forces the log, and dirty
   pages reach disk only through eviction and careful-writing prerequisite
   flushes — a random write stream.  The [pipelined] arm attaches the
   asynchronous durability pipeline: commit forces park on the group-commit
   batcher (one stable append per scheduler window covers every commit that
   arrived in it), a background elevator drains the buffer pool in
   ascending-page-id sweeps, and a fuzzy checkpointer bounds replay and
   truncates the WAL.  The claim the numbers must support: [wal.forced]
   drops by roughly the coalescing factor, the write stream shifts from
   random to sequential, and the io-cost model's total falls — without
   giving up any durability (the torture sweeps crash inside the same
   windows). *)

module Engine = Sched.Engine

let run_arm ~pipelined ~seed ~n ~users () =
  let db, _ = Scenario.aged ~seed ~n ~f1:0.3 () in
  (* Snapshot after the build: the arms compare only the reorganization
     phase, not the identical initial load. *)
  let d0 = Pager.Disk.stats db.Db.disk in
  let w0 = Wal.Log.stats db.Db.log in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config:Reorg.Config.default () in
  let eng = Engine.create () in
  Engine.set_tracer eng ctx.Reorg.Ctx.tracer;
  Db.set_tracers db ctx.Reorg.Ctx.tracer;
  let report = ref None in
  Engine.spawn eng ~name:"reorganizer" (fun () -> report := Some (Reorg.Driver.run ctx));
  let ustats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:(seed + 1) ~users
      ~ops_per_user:10_000
      ~stop:(fun () -> !report <> None)
      ~mix:Workload.Mix.update_heavy ()
  in
  let ckpts = ref 0 in
  let gc =
    if pipelined then begin
      (* A 4-tick commit window batches the four users' commits; a 24-tick
         elevator period lets re-dirtied pages merge into one write per
         sweep instead of being rewritten every few ticks. *)
      let t =
        Pipeline.attach ~gc_every:4 ~flush_every:24 ~flush_limit:8 eng db ~stop:(fun () -> !report <> None)
      in
      (* The checkpointer is spawned here rather than through the pipeline so
         the arm can count how many checkpoints bounded replay. *)
      Engine.spawn eng ~name:"checkpointer" (fun () ->
          while !report = None do
            Engine.sleep 150;
            if !report = None then begin
              Reorg.Ctx.checkpoint ctx;
              incr ckpts
            end
          done);
      Fun.protect ~finally:(fun () -> Pipeline.detach t) (fun () -> Engine.run eng);
      Pipeline.stats t
    end
    else begin
      Engine.run eng;
      { Wal.Group_commit.batches = 0; coalesced = 0; max_batch = 0 }
    end
  in
  Db.flush_all db;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  let d1 = Pager.Disk.stats db.Db.disk in
  let w1 = Wal.Log.stats db.Db.log in
  let dd =
    {
      Pager.Disk.reads = d1.Pager.Disk.reads - d0.Pager.Disk.reads;
      writes = d1.Pager.Disk.writes - d0.Pager.Disk.writes;
      seq_reads = d1.Pager.Disk.seq_reads - d0.Pager.Disk.seq_reads;
      rand_reads = d1.Pager.Disk.rand_reads - d0.Pager.Disk.rand_reads;
      seq_writes = d1.Pager.Disk.seq_writes - d0.Pager.Disk.seq_writes;
      rand_writes = d1.Pager.Disk.rand_writes - d0.Pager.Disk.rand_writes;
    }
  in
  {
    Probe.g_label = (if pipelined then "pipelined" else "sync");
    g_forced = w1.Wal.Log.forced - w0.Wal.Log.forced;
    g_batches = gc.Wal.Group_commit.batches;
    g_coalesced = gc.Wal.Group_commit.coalesced;
    g_max_batch = gc.Wal.Group_commit.max_batch;
    g_checkpoints = !ckpts;
    g_truncated = Wal.Log.truncated_records db.Db.log;
    g_seq_reads = dd.Pager.Disk.seq_reads;
    g_rand_reads = dd.Pager.Disk.rand_reads;
    g_seq_writes = dd.Pager.Disk.seq_writes;
    g_rand_writes = dd.Pager.Disk.rand_writes;
    g_io_cost = Pager.Disk.io_cost dd;
    g_committed = ustats.Workload.Mix.committed;
  }

let run_arms () =
  let seed = 42 and n = 1500 and users = 4 in
  let sync = run_arm ~pipelined:false ~seed ~n ~users () in
  let piped = run_arm ~pipelined:true ~seed ~n ~users () in
  (sync, piped)

let run () =
  let sync, piped = run_arms () in
  Probe.note_groupcommit [ sync; piped ];
  let table =
    Util.Table.create
      ~title:
        "G1 — group commit + async I/O pipeline vs synchronous durability\n\
         (same aged tree, reorganization with 4 concurrent update-heavy users)"
      [ ("arm", Util.Table.Left); ("forces", Util.Table.Right);
        ("gc batches", Util.Table.Right); ("coalesced", Util.Table.Right);
        ("max batch", Util.Table.Right); ("ckpts", Util.Table.Right);
        ("wal trunc", Util.Table.Right); ("seq w", Util.Table.Right);
        ("rand w", Util.Table.Right); ("io cost", Util.Table.Right);
        ("commits", Util.Table.Right) ]
  in
  let row (a : Probe.gc_arm) =
    Util.Table.add_row table
      [ a.Probe.g_label; string_of_int a.Probe.g_forced;
        string_of_int a.Probe.g_batches; string_of_int a.Probe.g_coalesced;
        string_of_int a.Probe.g_max_batch; string_of_int a.Probe.g_checkpoints;
        string_of_int a.Probe.g_truncated; string_of_int a.Probe.g_seq_writes;
        string_of_int a.Probe.g_rand_writes;
        Printf.sprintf "%.1f" a.Probe.g_io_cost;
        string_of_int a.Probe.g_committed ]
  in
  row sync;
  row piped;
  Util.Table.add_rule table;
  let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  Util.Table.add_row table
    [ "pipelined/sync";
      Printf.sprintf "%.2fx" (ratio piped.Probe.g_forced sync.Probe.g_forced);
      "-"; "-"; "-"; "-"; "-";
      Printf.sprintf "%.2fx" (ratio piped.Probe.g_seq_writes sync.Probe.g_seq_writes);
      Printf.sprintf "%.2fx" (ratio piped.Probe.g_rand_writes sync.Probe.g_rand_writes);
      Printf.sprintf "%.2fx" (piped.Probe.g_io_cost /. Float.max 1.0 sync.Probe.g_io_cost);
      "-" ];
  table
