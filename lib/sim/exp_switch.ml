(* Experiment E8 — §7.4 the switch: its stall is bounded by the side-file
   residue accumulated while waiting for the X lock, and long old-tree
   transactions can be forced to abort after the time limit.

   We vary the concurrent update rate and measure switch latency, side-file
   entries caught up, and forced aborts. *)

module Engine = Sched.Engine
module Tree = Btree.Tree

let run_one ?(lambda = false) ~updaters ~think ~switch_wait () =
  let db, _ = Scenario.aged ~seed:83 ~n:4000 ~f1:0.3 () in
  (* scan_pacing models the I/O of reading each base page: a slower scan
     means more update traffic lands behind the cursor. *)
  let config =
    { Reorg.Config.default with switch_wait; scan_pacing = 12; lambda_switch = lambda }
  in
  let ctx = Reorg.Ctx.make ~access:db.Db.access ~config () in
  let eng = Engine.create () in
  let finished = ref false in
  let in_pass3 = ref false in
  let switch_started = ref 0 and switch_ended = ref 0 in
  Engine.spawn eng (fun () ->
      ignore (Reorg.Pass1.run ctx);
      ignore (Reorg.Pass2.run ctx);
      switch_started := Engine.current_time ();
      in_pass3 := true;
      ignore (Reorg.Pass3.run ctx ());
      switch_ended := Engine.current_time ();
      finished := true);
  (* Users start hammering exactly when pass 3 starts, split-heavy. *)
  let mix = { Workload.Mix.update_heavy with insert_pct = 0.6; delete_pct = 0.2 } in
  let stats =
    Workload.Mix.spawn_users eng ~access:db.Db.access ~seed:7 ~users:updaters
      ~ops_per_user:100_000 ~think ~key_space:500
      ~start:(fun () -> !in_pass3)
      ~stop:(fun () -> !finished)
      ~mix ()
  in
  Engine.run eng;
  Btree.Invariant.check ~alloc:db.Db.alloc db.Db.tree;
  let m = ctx.Reorg.Ctx.metrics in
  ( !switch_ended - !switch_started,
    (Reorg.Metrics.side_entries m),
    (Reorg.Metrics.forced_aborts m),
    stats.Workload.Mix.committed )

let run () =
  let table =
    Util.Table.create
      ~title:
        "E8 — pass-3 + switch under concurrent updates (switch_wait = time limit\n\
         before old-tree transactions are forced to abort)"
      [ ("variant", Util.Table.Left); ("updaters", Util.Table.Right);
        ("think ticks", Util.Table.Right); ("pass-3 ticks", Util.Table.Right);
        ("side entries applied", Util.Table.Right); ("forced aborts", Util.Table.Right);
        ("user ops done", Util.Table.Right) ]
  in
  List.iter
    (fun (updaters, think) ->
      let ticks, side, aborts, ops = run_one ~updaters ~think ~switch_wait:150 () in
      Util.Table.add_row table
        [ "paper"; string_of_int updaters; string_of_int think; Util.Table.fmt_int ticks;
          string_of_int side; string_of_int aborts; Util.Table.fmt_int ops ];
      let ticks, side, aborts, ops =
        run_one ~lambda:true ~updaters ~think ~switch_wait:150 ()
      in
      Util.Table.add_row table
        [ "lambda-tree"; string_of_int updaters; string_of_int think; Util.Table.fmt_int ticks;
          string_of_int side; string_of_int aborts; Util.Table.fmt_int ops ])
    [ (0, 1); (2, 4); (4, 2); (8, 1); (12, 0) ];
  table
