(** Transaction (and, more generally, {e actor}) handles.

    Every lock owner in the system — user readers, user updaters, and the
    reorganization process itself — is represented by one of these.  The
    handle carries the per-actor log chain ([last_lsn]) and the blocked-time
    accounting the concurrency experiments report. *)

type state = Active | Committed | Aborted

type t = {
  id : int;
  mutable state : state;
  mutable last_lsn : Wal.Lsn.t;  (** most recent log record of this actor *)
  mutable begin_lsn : Wal.Lsn.t;
      (** LSN of the [Txn_begin] record ([nil] for unlogged actors) — the
          WAL-truncation floor while this transaction is active *)
  mutable committing : bool;
      (** set once the [Txn_commit] record is appended: the transaction may
          still be parked awaiting the group commit's force, but a checkpoint
          taken in that window must not list it as active (the checkpoint's
          own force makes the lower-LSN commit record durable first) *)
  mutable waits : int;  (** lock requests that had to block *)
  mutable blocked_ticks : int;  (** scheduler ticks spent blocked on locks *)
  mutable gave_up : int;  (** times an RX conflict made it restart (§4.1.2) *)
}

val make : int -> t

val is_active : t -> bool

val note_wait : t -> ticks:int -> unit
val note_give_up : t -> unit

val pp : Format.formatter -> t -> unit
