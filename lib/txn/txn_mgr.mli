(** Transaction manager: begin / commit / abort with logical undo.

    Rollback walks the transaction's log chain backwards.  Record-level
    changes ([Leaf_insert] / [Leaf_delete] / [Side_file]) are undone
    {e logically} through the handler installed with {!set_logical_undo}
    (wired to the B+-tree by the database assembly — logical undo re-descends
    the tree, so rollback stays correct even after the reorganizer has moved
    the records).  Physical [Update] records are structural and redo-only;
    undo skips them.  Every undo step logs a [Clr] whose [undo_next] makes
    rollback idempotent across crashes. *)

type t

val create : ?first_id:int -> ?id_stride:int -> Journal.t -> Lockmgr.Lock_mgr.t -> t
(** [first_id] / [id_stride] (defaults 1 / 1) put every owner id this manager
    mints on the lattice [first_id + k * id_stride].  Shard [i] of [n] uses
    [~first_id:(i + 1) ~id_stride:n], making owner ids globally disjoint
    across shards: each shard owns one residue class mod [n]. *)

val journal : t -> Journal.t
val lock_mgr : t -> Lockmgr.Lock_mgr.t

val fresh_owner : t -> Txn.t
(** An actor handle with a unique id but no Txn_begin record — used for the
    reorganization process and for read-only actors. *)

val begin_txn : t -> Txn.t
(** Logs [Txn_begin] and registers the transaction as active. *)

val adopt : t -> Txn.t -> unit
(** Log [Txn_begin] for a caller-made handle and register it active — the
    lazy upgrade of a cross-shard transaction's read-only presence in a
    shard to a writing one (the handle already holds locks under its id).
    Raises [Invalid_argument] if the id is already active here. *)

val begin_with_id : t -> int -> Txn.t
(** Like {!begin_txn} but with a caller-supplied id: a cross-shard
    coordinator mints one global id and begins a local transaction under it
    in every shard it touches, so all of a distributed transaction's locks
    and log records share a single identity.  The id must come from a
    lattice disjoint from this manager's own (see {!create}); beginning an
    id that is already active here is an error. *)

val commit : t -> Txn.t -> unit
(** Log [Txn_commit], make it durable through the journal's
    {!Journal.commit_force} seam (a synchronous force by default, group
    commit when the async pipeline is attached), release all locks. *)

val abort : t -> Txn.t -> unit
(** Undo (logging CLRs), log [Txn_abort], release all locks. *)

val finish_read_only : t -> Txn.t -> unit
(** Release locks of an actor that logged nothing. *)

val set_logical_undo : t -> (Txn.t -> Wal.Record.clr_action -> unit) -> unit

val active_txns : t -> (int * Wal.Lsn.t) list
(** For checkpointing. *)

val oldest_begin_lsn : t -> Wal.Lsn.t option
(** Oldest [Txn_begin] LSN among active transactions (a WAL-truncation
    floor), [None] when no active transaction has logged one. *)

val find_active : t -> int -> Txn.t option

val ensure_next_id : t -> int -> unit
(** Make sure future owner ids are at least this (restart runs this with the
    max id seen in the log, so recovered and new actors never collide).  The
    bound is rounded up onto this manager's [first_id]/[id_stride] lattice,
    preserving cross-shard disjointness. *)

val clear_active : t -> unit
(** Forget all in-memory transaction state (crash simulation). *)

val active_count : t -> int

val undo_chain : t -> Txn.t -> last:Wal.Lsn.t -> unit
(** Core undo walk from [last] (exposed for restart undo of loser
    transactions, which have no in-memory state). *)
