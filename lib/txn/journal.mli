(** Logged page mutation: the glue between the buffer pool and the log.

    All durable state changes go through this module so that the WAL
    invariants hold by construction: a mutation is logged first, the page is
    then changed in the pool, stamped with the record's LSN and marked dirty.
    The pool's before-write hook (installed by {!create}) forces the log up to
    a page's LSN before that page reaches disk. *)

type t

val create : Pager.Buffer_pool.t -> Wal.Log.t -> t
(** Wires the WAL rule into the pool. *)

val pool : t -> Pager.Buffer_pool.t
val log : t -> Wal.Log.t

val commit_force : t -> Wal.Lsn.t -> unit
(** Commit-time durability barrier: [Log.force] by default.  The async
    pipeline reroutes it ({!set_commit_force}) so concurrent commits park on
    the group-commit buffer instead of each forcing the log themselves.
    Careful-writing prerequisite forces (the pool's before-write hook) stay
    synchronous and are {e not} affected. *)

val set_commit_force : t -> (Wal.Lsn.t -> unit) -> unit
val reset_commit_force : t -> unit
(** Restore the default synchronous force. *)

val append : t -> Wal.Record.body -> Wal.Lsn.t
(** Raw log append (for records that do not change pages, or whose page
    stamping the caller does itself with {!stamp}). *)

val stamp : t -> page:int -> Wal.Lsn.t -> unit
(** Set the page's LSN and mark it dirty. *)

val physical : t -> ?txn:Txn.t -> page:int -> off:int -> len:int -> (Pager.Page.t -> unit) -> unit
(** [physical t ~page ~off ~len f] captures the [len] bytes at [off] as the
    before-image, applies [f] to the frame, captures the after-image, logs a
    redo-only [Update], stamps and dirties the page.  If the mutation changed
    nothing, no record is written.  When [txn] is given the record joins its
    chain. *)

val log_leaf_insert : t -> txn:Txn.t -> page:int -> key:int -> payload:string -> Wal.Lsn.t
(** Append the logical [Leaf_insert] record (chained to [txn]) and stamp the
    page; the caller performs the actual in-page insertion. *)

val log_leaf_delete : t -> txn:Txn.t -> page:int -> key:int -> payload:string -> Wal.Lsn.t

val log_for : t -> txn:Txn.t -> (prev:Wal.Lsn.t -> Wal.Record.body) -> Wal.Lsn.t
(** Append a record chained to [txn]'s log chain and advance [txn.last_lsn]. *)

val with_nta : t -> ?txn:Txn.t -> (unit -> 'a) -> 'a
(** Run a structural sequence as a nested top action: if [f] logged anything
    on [txn]'s chain, seal it with an [Nta_end] so rollback skips it whole.
    A crash before the seal reaches the stable log leaves the sequence torn,
    and restart undo reverses it physically.  No-op wrapper when [txn] is
    absent. *)
