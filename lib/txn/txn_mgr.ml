module Log = Wal.Log
module Record = Wal.Record

type t = {
  journal : Journal.t;
  locks : Lockmgr.Lock_mgr.t;
  first_id : int;
  id_stride : int;
  mutable next_id : int;
  active : (int, Txn.t) Hashtbl.t;
  mutable logical_undo : Txn.t -> Record.clr_action -> unit;
}

let create ?(first_id = 1) ?(id_stride = 1) journal locks =
  if id_stride < 1 then invalid_arg "Txn_mgr.create: id_stride must be >= 1";
  if first_id < 1 then invalid_arg "Txn_mgr.create: first_id must be >= 1";
  {
    journal;
    locks;
    first_id;
    id_stride;
    next_id = first_id;
    active = Hashtbl.create 16;
    logical_undo = (fun _ _ -> failwith "Txn_mgr: no logical undo handler installed");
  }

let journal t = t.journal
let lock_mgr t = t.locks

let fresh_owner t =
  let id = t.next_id in
  t.next_id <- id + t.id_stride;
  Txn.make id

let adopt t tx =
  if Hashtbl.mem t.active tx.Txn.id then invalid_arg "Txn_mgr.adopt: id already active";
  tx.Txn.last_lsn <- Log.append (Journal.log t.journal) (Record.Txn_begin tx.Txn.id);
  tx.Txn.begin_lsn <- tx.Txn.last_lsn;
  Hashtbl.replace t.active tx.Txn.id tx

let begin_txn t =
  let tx = fresh_owner t in
  adopt t tx;
  tx

let begin_with_id t id =
  let tx = Txn.make id in
  adopt t tx;
  tx

let set_logical_undo t f = t.logical_undo <- f

let commit t tx =
  if not (Txn.is_active tx) then invalid_arg "Txn_mgr.commit: not active";
  let lsn = Log.append (Journal.log t.journal) (Record.Txn_commit tx.Txn.id) in
  (* From here to the force the transaction's fate is sealed in the log
     order: a checkpoint written inside this window must NOT list it as
     active (any durable checkpoint implies the lower-LSN commit record is
     durable too, and restart analysis would otherwise re-activate the
     transaction past its own commit and undo it as a loser). *)
  tx.Txn.committing <- true;
  (* Commit-time durability goes through the journal's commit_force seam so
     the async pipeline can park concurrent committers on the group-commit
     buffer; by default this is a plain synchronous Log.force. *)
  Journal.commit_force t.journal lsn;
  tx.Txn.state <- Txn.Committed;
  Hashtbl.remove t.active tx.Txn.id;
  Lockmgr.Lock_mgr.release_all t.locks ~owner:tx.Txn.id

(* Walk the undo chain from [last].  CLRs short-circuit via undo_next so a
   rollback interrupted by a crash never undoes twice; Nta_end records jump
   over complete (sealed) structural sequences, while unsealed Update
   records are reversed physically from their before-images. *)
let undo_chain t tx ~last =
  let log = Journal.log t.journal in
  let pool = Journal.pool t.journal in
  let rec go lsn =
    if lsn <> Wal.Lsn.nil then
      match Log.read log lsn with
      | Record.Leaf_insert { key; prev; _ } ->
        let action = Record.Undo_insert { key } in
        t.logical_undo tx action;
        tx.Txn.last_lsn <-
          Log.append log (Record.Clr { txn = tx.Txn.id; action; undo_next = prev });
        go prev
      | Record.Leaf_delete { key; payload; prev; _ } ->
        let action = Record.Undo_delete { key; payload } in
        t.logical_undo tx action;
        tx.Txn.last_lsn <-
          Log.append log (Record.Clr { txn = tx.Txn.id; action; undo_next = prev });
        go prev
      | Record.Side_file { op; prev; _ } ->
        let action = Record.Undo_side op in
        t.logical_undo tx action;
        tx.Txn.last_lsn <-
          Log.append log (Record.Clr { txn = tx.Txn.id; action; undo_next = prev });
        go prev
      | Record.Update { page; off; before; prev; _ } ->
        (* Unsealed structural change (no Nta_end was reached first):
           restore the before-image. *)
        let action = Record.Undo_phys { page; off; bytes = before } in
        let clr =
          Wal.Log.append log (Record.Clr { txn = tx.Txn.id; action; undo_next = prev })
        in
        let p = Pager.Buffer_pool.get pool page in
        Bytes.blit_string before 0 p off (String.length before);
        Pager.Page.set_lsn p (Wal.Lsn.to_int64 clr);
        Pager.Buffer_pool.mark_dirty pool page;
        tx.Txn.last_lsn <- clr;
        go prev
      | Record.Nta_end { undo_next; _ } ->
        (* Sealed structural sequence: keep it, skip over it. *)
        go undo_next
      | Record.Clr { undo_next; _ } -> go undo_next
      | Record.Txn_begin _ -> ()
      | _ -> ()
  in
  go last

let abort t tx =
  if not (Txn.is_active tx) then invalid_arg "Txn_mgr.abort: not active";
  undo_chain t tx ~last:tx.Txn.last_lsn;
  ignore (Log.append (Journal.log t.journal) (Record.Txn_abort tx.Txn.id));
  tx.Txn.state <- Txn.Aborted;
  Hashtbl.remove t.active tx.Txn.id;
  Lockmgr.Lock_mgr.release_all t.locks ~owner:tx.Txn.id

let finish_read_only t tx = Lockmgr.Lock_mgr.release_all t.locks ~owner:tx.Txn.id

(* Transactions parked between their commit-record append and the group
   commit's force are excluded: their commit already precedes any checkpoint
   taken now, so listing them as active would make restart analysis undo a
   (possibly acknowledged) commit. *)
let active_txns t =
  Hashtbl.fold
    (fun id tx acc -> if tx.Txn.committing then acc else (id, tx.Txn.last_lsn) :: acc)
    t.active []

(* Oldest Txn_begin among the active set — the floor below which the WAL may
   not be truncated while these transactions might still need to roll back.
   Committing transactions need no undo once their commit record is durable
   (which any checkpoint taken now forces), and their redo records are
   pinned by the dirty frames' recovery LSNs. *)
let oldest_begin_lsn t =
  Hashtbl.fold
    (fun _ tx acc ->
      if tx.Txn.begin_lsn = Wal.Lsn.nil || tx.Txn.committing then acc
      else
        match acc with
        | None -> Some tx.Txn.begin_lsn
        | Some b -> Some (min b tx.Txn.begin_lsn))
    t.active None

let find_active t id = Hashtbl.find_opt t.active id

(* Round [n] up onto this manager's id lattice (first_id + k*id_stride) so
   recovery advancing past ids seen in the log — which may belong to other
   shards' lattices — never knocks this shard off its own residue class. *)
let ensure_next_id t n =
  if n > t.next_id then begin
    let k = (n - t.first_id + t.id_stride - 1) / t.id_stride in
    t.next_id <- t.first_id + (t.id_stride * max 0 k)
  end

let clear_active t = Hashtbl.reset t.active

let active_count t = Hashtbl.length t.active
