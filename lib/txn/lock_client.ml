module Lock_mgr = Lockmgr.Lock_mgr

exception Deadlock_victim

let try_acquire mgr ~txn res mode = Lock_mgr.try_acquire mgr ~owner:txn.Txn.id res mode

let block mgr ~txn res mode ~instant =
  let started = Sched.Engine.current_time () in
  let result = ref Lock_mgr.Granted in
  Sched.Engine.suspend (fun resume ->
      Lock_mgr.enqueue mgr ~owner:txn.Txn.id res mode ~instant ~wake:(fun g ->
          result := g;
          resume ()));
  let ticks = Sched.Engine.current_time () - started in
  Txn.note_wait txn ~ticks;
  (match Lock_mgr.tracer mgr with
  | Some tr ->
    let name = if instant then "lock.rs-wait" else "lock.wait" in
    let outcome =
      match !result with Lock_mgr.Granted -> "granted" | Lock_mgr.Deadlock -> "deadlock"
    in
    Obs.Trace.complete tr
      ~tid:(Sched.Engine.current_fiber ())
      ~cat:"lock" ~ts:started ~dur:ticks name
      ~args:
        [
          ("res", Obs.Trace.Str (Lockmgr.Resource.to_string res));
          ("mode", Obs.Trace.Str (Lockmgr.Mode.to_string mode));
          ("txn", Obs.Trace.Int txn.Txn.id);
          ("outcome", Obs.Trace.Str outcome);
        ]
  | None -> ());
  match !result with
  | Lock_mgr.Granted -> ()
  | Lock_mgr.Deadlock -> raise Deadlock_victim

let wait_queued mgr ~txn res mode = block mgr ~txn res mode ~instant:false

let acquire mgr ~txn res mode =
  match try_acquire mgr ~txn res mode with
  | `Granted -> ()
  | `Conflict _ -> wait_queued mgr ~txn res mode

let instant mgr ~txn res mode =
  match try_acquire mgr ~txn res mode with
  | `Granted ->
    (* Immediately grantable: an instant-duration lock is acquired and
       dropped in one step. *)
    Lock_mgr.release mgr ~owner:txn.Txn.id res mode
  | `Conflict _ -> block mgr ~txn res mode ~instant:true

let release mgr ~txn res mode = Lock_mgr.release mgr ~owner:txn.Txn.id res mode
let release_all mgr ~txn = Lock_mgr.release_all mgr ~owner:txn.Txn.id
