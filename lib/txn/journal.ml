module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Log = Wal.Log
module Record = Wal.Record

type t = {
  pool : Buffer_pool.t;
  log : Log.t;
  mutable commit_force : Wal.Lsn.t -> unit;
      (* Commit-time durability: direct [Log.force] by default; the async
         pipeline reroutes it through group commit while attached. *)
}

let create pool log =
  Buffer_pool.set_before_write pool (fun lsn -> Log.force log (Wal.Lsn.of_int64 lsn));
  { pool; log; commit_force = (fun lsn -> Log.force log lsn) }

let pool t = t.pool
let log t = t.log

let commit_force t lsn = t.commit_force lsn
let set_commit_force t f = t.commit_force <- f
let reset_commit_force t = t.commit_force <- (fun lsn -> Log.force t.log lsn)

let append t body = Log.append t.log body

let stamp t ~page lsn =
  let p = Buffer_pool.get t.pool page in
  Page.set_lsn p (Wal.Lsn.to_int64 lsn);
  Buffer_pool.mark_dirty t.pool page

let log_for t ~txn mk =
  let lsn = Log.append t.log (mk ~prev:txn.Txn.last_lsn) in
  txn.Txn.last_lsn <- lsn;
  lsn

let physical t ?txn ~page ~off ~len f =
  let p = Buffer_pool.get t.pool page in
  let before = Page.sub p off len in
  f p;
  let after = Page.sub p off len in
  if String.equal before after then ()
  else begin
    let txn_id, prev =
      match txn with Some tx -> (tx.Txn.id, tx.Txn.last_lsn) | None -> (0, Wal.Lsn.nil)
    in
    let lsn = Log.append t.log (Record.Update { txn = txn_id; page; off; before; after; prev }) in
    (match txn with Some tx -> tx.Txn.last_lsn <- lsn | None -> ());
    stamp t ~page lsn
  end

let log_leaf_insert t ~txn ~page ~key ~payload =
  let lsn =
    log_for t ~txn (fun ~prev -> Record.Leaf_insert { txn = txn.Txn.id; page; key; payload; prev })
  in
  stamp t ~page lsn;
  lsn

let log_leaf_delete t ~txn ~page ~key ~payload =
  let lsn =
    log_for t ~txn (fun ~prev -> Record.Leaf_delete { txn = txn.Txn.id; page; key; payload; prev })
  in
  stamp t ~page lsn;
  lsn

let with_nta t ?txn f =
  match txn with
  | None -> f ()
  | Some tx ->
    let before = tx.Txn.last_lsn in
    let result = f () in
    if tx.Txn.last_lsn <> before then begin
      let lsn = Log.append t.log (Record.Nta_end { txn = tx.Txn.id; undo_next = before }) in
      tx.Txn.last_lsn <- lsn
    end;
    result
