type state = Active | Committed | Aborted

type t = {
  id : int;
  mutable state : state;
  mutable last_lsn : Wal.Lsn.t;
  mutable begin_lsn : Wal.Lsn.t;
  mutable committing : bool;
  mutable waits : int;
  mutable blocked_ticks : int;
  mutable gave_up : int;
}

let make id =
  {
    id;
    state = Active;
    last_lsn = Wal.Lsn.nil;
    begin_lsn = Wal.Lsn.nil;
    committing = false;
    waits = 0;
    blocked_ticks = 0;
    gave_up = 0;
  }

let is_active t = t.state = Active

let note_wait t ~ticks =
  t.waits <- t.waits + 1;
  t.blocked_ticks <- t.blocked_ticks + ticks

let note_give_up t = t.gave_up <- t.gave_up + 1

let pp ppf t =
  let st = match t.state with Active -> "active" | Committed -> "committed" | Aborted -> "aborted" in
  Format.fprintf ppf "txn#%d[%s]" t.id st
