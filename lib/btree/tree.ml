module Page = Pager.Page
module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Journal = Transact.Journal
module Txn = Transact.Txn

type t = { journal : Journal.t; alloc : Alloc.t; meta_pid : int; olc : Olc.t }

exception Duplicate_key of int
exception Record_too_large of int

let journal t = t.journal
let pool t = Journal.pool t.journal
let alloc t = t.alloc
let meta_pid t = t.meta_pid
let olc t = t.olc

let page t pid = Buffer_pool.get (pool t) pid

let page_size t = Buffer_pool.page_size (pool t)

(* Whole-page logged mutation (structural).  The before/after images include
   the header; redo re-stamps the LSN afterwards, so the stale LSN bytes in
   the image are harmless.  Every structural page write bumps the page's
   OLC version so in-flight optimistic descents re-validate. *)
let physical t ?txn pid f =
  Journal.physical t.journal ?txn ~page:pid ~off:0 ~len:(page_size t) f;
  Olc.bump t.olc pid

(* Narrow logged mutation for body-only edits on internal pages. *)
let physical_body t ?txn pid f =
  Journal.physical t.journal ?txn ~page:pid ~off:Layout.off_level
    ~len:(page_size t - Layout.off_level) f;
  Olc.bump t.olc pid

let meta t = page t t.meta_pid

let root t = Meta.root (meta t)
let tree_name t = Meta.tree_name (meta t)
let reorg_bit t = Meta.reorg_bit (meta t)

let set_root t ?txn pid = physical t ?txn t.meta_pid (fun p -> Meta.set_root p pid)
let set_tree_name t ?txn v = physical t ?txn t.meta_pid (fun p -> Meta.set_tree_name p v)

let set_reorg_bit t v =
  physical t t.meta_pid (fun p -> Meta.set_reorg_bit p v)

let generation t = Meta.generation (meta t)
let set_generation t ?txn g = physical t ?txn t.meta_pid (fun p -> Meta.set_generation p g)

let create ?olc ~journal ~alloc ~meta_pid ~tree_name () =
  let olc = match olc with Some o -> o | None -> Olc.create () in
  let t = { journal; alloc; meta_pid; olc } in
  let root_pid = Alloc.alloc alloc Pager.Alloc.Leaf in
  physical t root_pid (fun p -> Leaf.init p ~low_mark:min_int);
  physical t meta_pid (fun p -> Meta.init p ~root:root_pid ~tree_name);
  t

(* A scratch tree attached over the same file (pass 3) must share the
   file's version table — page ids are file-global. *)
let attach ?olc ~journal ~alloc ~meta_pid () =
  let olc = match olc with Some o -> o | None -> Olc.create () in
  { journal; alloc; meta_pid; olc }

(* ------------------------------------------------------------------ *)
(* Descent                                                             *)
(* ------------------------------------------------------------------ *)

(* If a base entry is missing (λ-switch mode lets post-switch splits skip
   the new tree's base pages), the descent can land one leaf early; chase
   the side pointers right while the key belongs further on. *)
let rec chase_right t key pid =
  let p = page t pid in
  match Leaf.next p with
  | Some nxt when Leaf.low_mark (page t nxt) <= key -> chase_right t key nxt
  | _ -> pid

let descend_path t key =
  let rec go pid acc =
    let p = page t pid in
    if Leaf.is_leaf p then List.rev (pid :: acc)
    else go (Inode.child_for p key).Inode.child (pid :: acc)
  in
  go (root t) []

(* Read paths chase; structural paths (descend_path/parent_of_leaf users)
   stay on the exact descent so parent chains match. *)
let find_leaf t key =
  match List.rev (descend_path t key) with
  | leaf :: _ -> chase_right t key leaf
  | [] -> assert false

let parent_of_leaf t key =
  match List.rev (descend_path t key) with _ :: parent :: _ -> Some parent | _ -> None

let height t =
  let rec go pid n =
    let p = page t pid in
    if Leaf.is_leaf p then n else go (Inode.entry_at p 0).Inode.child (n + 1)
  in
  go (root t) 1

let first_leaf t =
  let rec go pid =
    let p = page t pid in
    if Leaf.is_leaf p then pid else go (Inode.entry_at p 0).Inode.child
  in
  go (root t)

let first_base t =
  let rec go pid =
    let p = page t pid in
    if Leaf.is_leaf p then None
    else if Inode.level p = 1 then Some pid
    else go (Inode.entry_at p 0).Inode.child
  in
  go (root t)

let next_base t k =
  (* Smallest base-page low mark strictly greater than k. *)
  let rec go pid =
    let p = page t pid in
    if Leaf.is_leaf p then None
    else if Inode.level p = 1 then if Inode.low_mark p > k then Some pid else None
    else begin
      let n = Inode.nentries p in
      let start =
        (* children before the one covering k cannot contain low marks > k
           that are smaller than those in the covering child *)
        try Inode.child_index_for p k with Not_found -> 0
      in
      let rec scan i =
        if i >= n then None
        else
          match go (Inode.entry_at p i).Inode.child with
          | Some b -> Some b
          | None -> scan (i + 1)
      in
      scan start
    end
  in
  go (root t)

(* ------------------------------------------------------------------ *)
(* Search / range                                                      *)
(* ------------------------------------------------------------------ *)

let search t key = Leaf.find (page t (find_leaf t key)) key

let range t ~lo ~hi =
  let rec walk pid acc =
    let p = page t pid in
    let here =
      List.filter (fun r -> r.Leaf.key >= lo && r.Leaf.key <= hi) (Leaf.records p)
    in
    let acc = List.rev_append here acc in
    match Leaf.max_key p with
    | Some k when k > hi -> acc
    | _ -> begin
      match Leaf.next p with None -> acc | Some nxt -> walk nxt acc
    end
  in
  List.rev (walk (find_leaf t lo) [])

let iter_leaves t f =
  let rec go pid =
    let p = page t pid in
    f pid p;
    match Leaf.next p with None -> () | Some nxt -> go nxt
  in
  go (first_leaf t)

let leaf_pids t =
  let acc = ref [] in
  iter_leaves t (fun pid _ -> acc := pid :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)
(* ------------------------------------------------------------------ *)

let note_base_edit t ?on_base_edit pid (op : Wal.Record.side_op) =
  match on_base_edit with
  | None -> ()
  | Some f -> if Inode.level (page t pid) = 1 then f op

(* Insert [entry] into the internal node at the head of [parents] (a
   bottom-up list of ancestor pids), splitting upwards as needed. *)
let rec insert_entry t ?txn ?on_base_edit parents (entry : Inode.entry) =
  match parents with
  | [] ->
    (* The split reached the top: grow the tree with a new root. *)
    let old_root = root t in
    let old_p = page t old_root in
    let old_low, old_level =
      if Leaf.is_leaf old_p then (Leaf.low_mark old_p, 0)
      else (Inode.low_mark old_p, Inode.level old_p)
    in
    let new_root = Alloc.alloc t.alloc Pager.Alloc.Internal in
    physical t ?txn new_root (fun p ->
        Inode.init p ~level:(old_level + 1) ~low_mark:old_low;
        assert (Inode.insert p { Inode.key = old_low; child = old_root });
        assert (Inode.insert p entry));
    set_root t ?txn new_root
  | parent :: ancestors ->
    let p = page t parent in
    if Inode.nentries p < Inode.capacity p then begin
      physical_body t ?txn parent (fun p -> assert (Inode.insert p entry));
      note_base_edit t ?on_base_edit parent
        (Wal.Record.Side_insert { key = entry.Inode.key; child = entry.Inode.child })
    end
    else begin
      (* Split the internal node. *)
      let sp = Inode.split_point p in
      let split_key = (Inode.entry_at p sp).Inode.key in
      let new_pid = Alloc.alloc t.alloc Pager.Alloc.Internal in
      let level = Inode.level p in
      let gen = Inode.generation p in
      (* Each page's mutation is logged as its own record so redo covers
         both halves of the split. *)
      let moved = List.filteri (fun i _ -> i >= sp) (Inode.entries p) in
      physical t ?txn new_pid (fun np ->
          Inode.init np ~level ~low_mark:split_key;
          Inode.set_generation np gen;
          List.iter (fun e -> assert (Inode.insert np e)) moved);
      physical_body t ?txn parent (fun p -> ignore (Inode.take_from p sp));
      (* Route the pending entry to the correct half. *)
      let target = if entry.Inode.key >= split_key then new_pid else parent in
      physical_body t ?txn target (fun p -> assert (Inode.insert p entry));
      note_base_edit t ?on_base_edit target
        (Wal.Record.Side_insert { key = entry.Inode.key; child = entry.Inode.child });
      insert_entry t ?txn ?on_base_edit ancestors { Inode.key = split_key; child = new_pid }
    end

let split_leaf t ?txn ?on_base_edit path leaf_pid =
  let p = page t leaf_pid in
  let sp = Leaf.split_point p in
  let new_pid = Alloc.alloc t.alloc Pager.Alloc.Leaf in
  let old_next = Leaf.next p in
  let moved = List.filteri (fun i _ -> i >= sp) (Leaf.records p) in
  let moved_low = (List.hd moved).Leaf.key in
  physical t ?txn new_pid (fun np ->
      Leaf.init np ~low_mark:moved_low;
      List.iter (fun r -> assert (Leaf.insert np r)) moved;
      Leaf.set_prev np (Some leaf_pid);
      Leaf.set_next np old_next);
  physical t ?txn leaf_pid (fun p ->
      ignore (Leaf.take_from p sp);
      Leaf.set_next p (Some new_pid));
  (match old_next with
  | Some nn -> physical t ?txn nn (fun p -> Leaf.set_prev p (Some new_pid))
  | None -> ());
  let parents = match List.rev path with _leaf :: ps -> ps | [] -> [] in
  insert_entry t ?txn ?on_base_edit parents { Inode.key = moved_low; child = new_pid }

let max_payload t = Layout.usable_bytes ~page_size:(page_size t) - Layout.record_header - 2

let rec insert_gen t ?txn ?on_base_edit ~logged ~key ~payload () =
  if String.length payload > max_payload t / 2 then raise (Record_too_large key);
  let path = descend_path t key in
  let leaf_pid = List.nth path (List.length path - 1) in
  let p = page t leaf_pid in
  if Leaf.mem p key then raise (Duplicate_key key);
  let r = { Leaf.key; payload } in
  if Leaf.fits p r then begin
    (match (logged, txn) with
    | true, Some txn -> ignore (Journal.log_leaf_insert t.journal ~txn ~page:leaf_pid ~key ~payload)
    | _ ->
      (* Unlogged record apply (CLR-driven undo or redo): mark dirty but
         leave the page LSN to the caller's record, if any. *)
      Buffer_pool.mark_dirty (pool t) leaf_pid);
    assert (Leaf.insert p r)
  end
  else begin
    (* Seal the split as a nested top action: it must survive this
       transaction's rollback, because other transactions may commit
       records into the new halves before this one finishes (it may still
       be blocked on locks — or off writing other shards — for a long
       time).  An unsealed (torn) sequence is still undone physically, which
       stays sound: the log is sequential, so a lost seal means everything
       after it is lost too. *)
    Journal.with_nta t.journal ?txn (fun () -> split_leaf t ?txn ?on_base_edit path leaf_pid);
    insert_gen t ?txn ?on_base_edit ~logged ~key ~payload ()
  end

let insert t ~txn ?on_base_edit ~key ~payload () =
  insert_gen t ~txn ?on_base_edit ~logged:true ~key ~payload ()

let apply_insert t ~key ~payload =
  match insert_gen t ~logged:false ~key ~payload () with
  | () -> ()
  | exception Duplicate_key _ -> () (* idempotent re-apply *)

(* ------------------------------------------------------------------ *)
(* Delete with free-at-empty                                           *)
(* ------------------------------------------------------------------ *)

let unlink_leaf t ?txn pid =
  let p = page t pid in
  let pv = Leaf.prev p and nx = Leaf.next p in
  (match pv with
  | Some q -> physical t ?txn q (fun qp -> Leaf.set_next qp nx)
  | None -> ());
  (match nx with
  | Some q -> physical t ?txn q (fun qp -> Leaf.set_prev qp pv)
  | None -> ())

let dealloc_page t ?txn pid =
  physical t ?txn pid (fun p -> Page.set_kind p Page.kind_free);
  Alloc.release t.alloc pid

(* Remove the entry pointing at [child] from the internal node chain along
   [parents] (bottom-up), deallocating nodes emptied on the way. *)
let rec remove_entry t ?txn ?on_base_edit parents child =
  match parents with
  | [] ->
    (* The root itself emptied: reformat it as an empty leaf so the tree
       always has a root. *)
    let r = root t in
    physical t ?txn r (fun p -> Leaf.init p ~low_mark:min_int)
  | parent :: ancestors ->
    let p = page t parent in
    (match Inode.find_child p child with
    | None -> invalid_arg "Tree.remove_entry: child not in parent"
    | Some i ->
      let e = Inode.entry_at p i in
      physical_body t ?txn parent (fun p -> Inode.delete_at p i);
      note_base_edit t ?on_base_edit parent
        (Wal.Record.Side_delete { key = e.Inode.key; child = e.Inode.child }));
    if Inode.nentries (page t parent) = 0 then
      if parent = root t then
        (* The root emptied: reformat it in place as an empty leaf. *)
        physical t ?txn parent (fun p -> Leaf.init p ~low_mark:min_int)
      else begin
        dealloc_page t ?txn parent;
        remove_entry t ?txn ?on_base_edit ancestors parent
      end

let free_at_empty t ?txn ?on_base_edit path leaf_pid =
  unlink_leaf t ?txn leaf_pid;
  dealloc_page t ?txn leaf_pid;
  let parents = match List.rev path with _leaf :: ps -> ps | [] -> [] in
  remove_entry t ?txn ?on_base_edit parents leaf_pid

let delete_gen t ?txn ?on_base_edit ~logged key =
  let path = descend_path t key in
  let leaf_pid = List.nth path (List.length path - 1) in
  let p = page t leaf_pid in
  match Leaf.find p key with
  | None -> None
  | Some payload ->
    (match (logged, txn) with
    | true, Some txn -> ignore (Journal.log_leaf_delete t.journal ~txn ~page:leaf_pid ~key ~payload)
    | _ -> Buffer_pool.mark_dirty (pool t) leaf_pid);
    ignore (Leaf.delete p key);
    if Leaf.nrecords (page t leaf_pid) = 0 && List.length path > 1 then
      Journal.with_nta t.journal ?txn (fun () ->
          free_at_empty t ?txn ?on_base_edit path leaf_pid);
    Some payload

let delete t ~txn ?on_base_edit key = delete_gen t ~txn ?on_base_edit ~logged:true key

let apply_delete t key = ignore (delete_gen t ~logged:false key)

let update t ~txn ?on_base_edit ~key ~payload () =
  match delete t ~txn ?on_base_edit key with
  | None -> None
  | Some old ->
    insert_gen t ~txn ?on_base_edit ~logged:true ~key ~payload ();
    Some old

(* ------------------------------------------------------------------ *)
(* Base-entry operations (pass-3 catch-up)                             *)
(* ------------------------------------------------------------------ *)

(* Path of internal pages from the root down to (and including) the base
   page covering [key].  Empty when the root is a leaf. *)
let base_path t key =
  let rec go pid acc =
    let p = page t pid in
    if Leaf.is_leaf p then List.rev acc
    else if Inode.level p = 1 then List.rev (pid :: acc)
    else go (Inode.child_for p key).Inode.child (pid :: acc)
  in
  go (root t) []

let insert_base_entry t ?txn ~key ~child () =
  match List.rev (base_path t key) with
  | [] -> invalid_arg "Tree.insert_base_entry: tree has no base pages"
  | base :: ancestors ->
    if Inode.find_key (page t base) key = None then
      Journal.with_nta t.journal ?txn (fun () ->
          insert_entry t ?txn (base :: ancestors) { Inode.key; child })

let delete_base_entry t ?txn key =
  match List.rev (base_path t key) with
  | [] -> invalid_arg "Tree.delete_base_entry: tree has no base pages"
  | base :: ancestors -> begin
    match Inode.find_key (page t base) key with
    | None -> ()
    | Some i ->
      Journal.with_nta t.journal ?txn (fun () ->
          physical_body t ?txn base (fun p -> Inode.delete_at p i);
          if Inode.nentries (page t base) = 0 then
            if base = root t then physical t ?txn base (fun p -> Leaf.init p ~low_mark:min_int)
            else begin
              dealloc_page t ?txn base;
              remove_entry t ?txn ancestors base
            end)
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  height : int;
  leaf_count : int;
  internal_count : int;
  record_count : int;
  avg_leaf_fill : float;
  min_leaf_fill : float;
}

let stats t =
  let leaves = ref 0 and records = ref 0 and fill_sum = ref 0.0 and fill_min = ref 1.0 in
  iter_leaves t (fun _ p ->
      incr leaves;
      records := !records + Leaf.nrecords p;
      let f = Leaf.fill_factor p in
      fill_sum := !fill_sum +. f;
      if f < !fill_min then fill_min := f);
  let internal = ref 0 in
  let rec count pid =
    let p = page t pid in
    if not (Leaf.is_leaf p) then begin
      incr internal;
      List.iter (fun e -> count e.Inode.child) (Inode.entries p)
    end
  in
  count (root t);
  {
    height = height t;
    leaf_count = !leaves;
    internal_count = !internal;
    record_count = !records;
    avg_leaf_fill = (if !leaves = 0 then 0.0 else !fill_sum /. float_of_int !leaves);
    min_leaf_fill = (if !leaves = 0 then 0.0 else !fill_min);
  }
