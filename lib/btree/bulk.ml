module Buffer_pool = Pager.Buffer_pool
module Alloc = Pager.Alloc
module Journal = Transact.Journal

let chunk_leaves ~pool ~alloc ~fill records =
  (* Pack records into fresh leaves, filling each to [fill] of usable bytes.
     Returns (low key, pid) entries in order. *)
  let usable = Layout.usable_bytes ~page_size:(Buffer_pool.page_size pool) in
  let target = int_of_float (fill *. float_of_int usable) in
  let entries = ref [] in
  let current = ref None in
  let prev_leaf = ref None in
  let start_leaf low =
    let pid = Alloc.alloc alloc Alloc.Leaf in
    let p = Buffer_pool.get pool pid in
    Leaf.init p ~low_mark:low;
    (match !prev_leaf with
    | Some q ->
      Leaf.set_prev p (Some q);
      let qp = Buffer_pool.get pool q in
      Leaf.set_next qp (Some pid);
      Buffer_pool.mark_dirty pool q
    | None -> ());
    Buffer_pool.mark_dirty pool pid;
    prev_leaf := Some pid;
    entries := (low, pid) :: !entries;
    current := Some pid;
    pid
  in
  List.iter
    (fun (key, payload) ->
      let r = { Leaf.key; payload } in
      let pid =
        match !current with
        | Some pid when Leaf.live_bytes (Buffer_pool.get pool pid) + Leaf.record_bytes r <= target
          ->
          pid
        | Some _ -> start_leaf key
        | None -> start_leaf min_int
      in
      let p = Buffer_pool.get pool pid in
      if not (Leaf.insert p r) then begin
        (* Record larger than the target fill: give it a fresh page. *)
        let pid = start_leaf key in
        if not (Leaf.insert (Buffer_pool.get pool pid) r) then
          invalid_arg "Bulk.load: record too large for a page"
      end;
      Buffer_pool.mark_dirty pool pid)
    records;
  List.rev !entries

let build_internal_levels ~journal ~alloc ~fill ?(start_level = 1) ?(gen = 0) ?on_page entries =
  let pool = Journal.pool journal in
  let page_size = Buffer_pool.page_size pool in
  let capacity = (page_size - Layout.body_start) / Layout.entry_size in
  let per_node = max 2 (int_of_float (fill *. float_of_int capacity)) in
  let rec build level entries =
    match entries with
    | [] -> invalid_arg "Bulk.build_internal_levels: no children"
    | [ (_, pid) ] when level > start_level -> pid
    | _ ->
      let groups =
        let rec split acc cur n = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | e :: rest ->
            if n >= per_node then split (List.rev cur :: acc) [ e ] 1 rest
            else split acc (e :: cur) (n + 1) rest
        in
        split [] [] 0 entries
      in
      let parents =
        List.mapi
          (fun i group ->
            let low = if i = 0 then min_int else fst (List.hd group) in
            let pid = Alloc.alloc alloc Alloc.Internal in
            let p = Buffer_pool.get pool pid in
            Inode.init p ~level ~low_mark:low;
            Inode.set_generation p gen;
            List.iter
              (fun (k, child) -> assert (Inode.insert p { Inode.key = k; child }))
              group;
            Buffer_pool.mark_dirty pool pid;
            (match on_page with Some f -> f pid | None -> ());
            (low, pid))
          groups
      in
      (match parents with [ (_, root) ] -> root | _ -> build (level + 1) parents)
  in
  build start_level entries

let load ~journal ~alloc ~meta_pid ~tree_name ~fill ?internal_fill records =
  if fill <= 0.0 || fill > 1.0 then invalid_arg "Bulk.load: fill out of range";
  let internal_fill = match internal_fill with Some f -> f | None -> fill in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a >= b then invalid_arg "Bulk.load: records not strictly sorted";
      sorted rest
    | _ -> ()
  in
  sorted records;
  let pool = Journal.pool journal in
  let root =
    match records with
    | [] ->
      let pid = Alloc.alloc alloc Alloc.Leaf in
      let p = Buffer_pool.get pool pid in
      Leaf.init p ~low_mark:min_int;
      Buffer_pool.mark_dirty pool pid;
      pid
    | _ ->
      let entries = chunk_leaves ~pool ~alloc ~fill records in
      (* Fix the leftmost low mark so searches below the first key land
         inside the tree. *)
      (match entries with
      | (_, first_pid) :: _ ->
        let p = Buffer_pool.get pool first_pid in
        Leaf.set_low_mark p min_int;
        Buffer_pool.mark_dirty pool first_pid
      | [] -> ());
      let entries = match entries with (_, pid) :: rest -> (min_int, pid) :: rest | [] -> [] in
      (match entries with
      | [ (_, only) ] -> only
      | _ -> build_internal_levels ~journal ~alloc ~fill:internal_fill entries)
  in
  let mp = Buffer_pool.get pool meta_pid in
  Meta.init mp ~root ~tree_name;
  Buffer_pool.mark_dirty pool meta_pid;
  Buffer_pool.flush_all pool;
  Tree.attach ~journal ~alloc ~meta_pid ()
