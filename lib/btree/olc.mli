(** Optimistic-lock-coupling support state (FB+-tree style): per-page
    version counters, a crash epoch, and an active-reorganization-unit
    gauge, shared by one tree file and its scratch trees.

    Readers descend lock-free by capturing a node's version before
    following a pointer out of it and re-validating after the scheduler
    yield; writers bump versions on every structure-modifying or
    record-moving page write.  While a §5 reorganization unit is executing
    ([active]), or after a crash advanced the [epoch], validation fails and
    the reader retries or falls back to the paper's locked R/RX/RS
    protocol.  See DESIGN.md §11. *)

type t

val create : unit -> t

val version : t -> int -> int
(** Current version of a page id; pages never written read as [0]. *)

val bump : t -> int -> unit
(** Record a structural change to the page: invalidates every optimistic
    descent that captured the old version.  Skipped while
    {!test_skip_bumps} is set (mutation self-test only). *)

val epoch : t -> int

val invalidate_all : t -> unit
(** Crash / volatile teardown: advance the epoch, clear the version table
    and zero the active-unit gauge.  Every in-flight optimistic descent
    fails its next validation. *)

val unit_begin : t -> unit
(** A §5 reorganization unit started executing (record moves follow). *)

val unit_end : t -> unit
(** The unit logged its END.  Clamped at zero so recovery's forward
    completion (whose BEGIN predates the crash) stays balanced. *)

val active : t -> bool
(** True while any reorganization unit is mid-flight — the cheap "reorg
    activity" predicate that sends readers to the locked path. *)

val note_read : t -> unit
val note_retry : t -> unit
val note_fallback : t -> unit

val reads : t -> int
val retries : t -> int
val fallbacks : t -> int
val version_bumps : t -> int

val register_obs : t -> Obs.Registry.t -> unit
(** Export [olc.reads], [olc.retries], [olc.fallbacks] and
    [olc.version_bumps] as gauges. *)

val test_skip_bumps : bool ref
(** Test-only mutation hook: suppress version bumps so the conformance
    checker can prove a stale optimistic read is actually caught. *)
