(** User-transaction access protocols (paper §4.1.2–4.1.3).

    These are the reader and updater protocols that coexist with the
    reorganizer:

    {b Reader}: IS on the tree lock, S lock-coupling down the tree.  If the S
    request on a {e leaf} conflicts with the reorganizer's RX, the reader
    releases its base-page S lock and its request, issues an unconditional
    instant-duration RS on the base page (which is incompatible with R, so it
    returns exactly when the reorganizer finishes that unit), then re-locks
    the base page and retries from there — the keys it is after may have
    moved to a different leaf of the same parent.

    {b Updater}: IX on the tree lock, S coupling to the parent, X on the
    leaf, same RX give-up rule.  If the operation needs a structural change
    (split, or free-at-empty consolidation), all locks are released and the
    descent restarts with X lock-coupling, releasing ancestors above
    Bayer–Schkolnick safe nodes; the X on a base page is what makes updaters
    wait out the reorganizer's short MODIFY phase.  After a base-page change,
    the updater tests the reorganization bit and runs the §7.2 side-file
    logic installed with {!set_on_base_update}.

    All calls must run inside a {!Sched.Engine} process; they may raise
    {!Transact.Lock_client.Deadlock_victim}, which callers handle by aborting
    the transaction.  Locks are held to end of transaction
    ([Txn_mgr.commit/abort/finish_read_only] releases them). *)

type t

val create : tree:Tree.t -> mgr:Transact.Txn_mgr.t -> ?record_locking:bool -> unit -> t
(** With [record_locking] (off by default), readers take IS on the leaf page
    plus S on the record key, and updaters take IX plus X on the key —
    §4.1.2's "readers and updaters may request or hold intention locks (IX or
    IS) (on leaf pages only) if they are doing record-level locking".  Two
    updaters then coexist on one leaf; the RX give-up rule is unchanged
    because RX conflicts with IS and IX too (Table 1). *)

val tree : t -> Tree.t
val mgr : t -> Transact.Txn_mgr.t
val locks : t -> Lockmgr.Lock_mgr.t

val set_on_base_update : t -> (Transact.Txn.t -> Wal.Record.side_op -> unit) -> unit
(** Installed by pass 3; called after every base-page entry change made by an
    updater while the reorganization bit is set. *)

val clear_on_base_update : t -> unit

val set_side_undo : t -> (Wal.Record.side_op -> unit) -> unit
(** Installed by pass 3 alongside the base-update hook: how to remove a
    side-file entry when the transaction that appended it rolls back. *)

val run_side_undo : t -> Wal.Record.side_op -> unit
(** Dispatch a side-file CLR action to the installed hook (no-op if none). *)

val set_health : t -> Obs.Health.t option -> unit
(** Attach the database's tree-health tracker.  [Access] itself never reads
    it; it is the handle through which the reorganizer's passes and the
    side file report progress events ({!Obs.Health.note_unit},
    {!Obs.Health.side_event}, ...). *)

val health : t -> Obs.Health.t option

val set_olc : t -> ?max_retries:int -> bool -> unit
(** Enable/disable the optimistic read path (DESIGN.md §11): point lookups
    and range scans descend lock-free, validating {!Olc} per-node versions
    across scheduler yields and probing for an RX/X presence at the leaf
    ({!Lockmgr.Lock_mgr.probe} — never enqueues).  On a validation conflict,
    an active reorganization unit, or a crash-advanced epoch, the reader
    retries up to [max_retries] (default 3) times, then falls back to the
    locked Table-1 protocol.  Writers and the reorganizer are unaffected.
    Ignored (locked path used) when the access layer does record-level
    locking — record S locks are the point there. *)

val olc_enabled : t -> bool

val set_read_probe : t -> (leaf:int -> key:int -> valid:bool -> unit) option -> unit
(** Conformance-checker hook: fires on every {e committed} optimistic point
    read, in the same atomic scheduler step as the read itself, with
    [valid] = "the optimistic result equals a fresh root-to-leaf descent's
    answer right now".  The olc protocol model asserts [valid] always holds;
    the {!Olc.test_skip_bumps} mutation makes it fire false. *)

val read : t -> txn:Transact.Txn.t -> int -> string option

val range_read : t -> txn:Transact.Txn.t -> lo:int -> hi:int -> Leaf.record list
(** S-locks each leaf in turn along the side-pointer chain (or walks it
    optimistically when {!set_olc} is enabled). *)

val insert : t -> txn:Transact.Txn.t -> key:int -> payload:string -> unit

val delete : t -> txn:Transact.Txn.t -> int -> string option

val update : t -> txn:Transact.Txn.t -> key:int -> payload:string -> string option
(** Replace an existing record's payload under the updater protocol;
    returns the old payload ([None] = key absent, nothing written). *)
