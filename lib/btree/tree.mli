(** The B+-tree proper: a primary index whose leaves hold the records.

    This module implements the {e unlocked} tree operations — descent,
    insertion with page splits, deletion with the free-at-empty policy
    ([JS93], the policy the paper assumes: "non-empty sparse nodes are never
    consolidated, but when a node becomes completely empty, its page is
    deallocated"), range scans over the leaf side-pointer chain, and the
    Get_Next base-page cursor the reorganizer uses.

    Concurrency is layered {e above}: {!Access} takes the paper's locks and
    then calls these primitives.  All structural changes are logged as
    redo-only physical records; record-level changes are logged logically
    (see {!Transact.Journal}), so everything here is redoable and
    record-level changes are undoable. *)

type t

exception Duplicate_key of int
exception Record_too_large of int

val create :
  ?olc:Olc.t ->
  journal:Transact.Journal.t ->
  alloc:Pager.Alloc.t ->
  meta_pid:int ->
  tree_name:int ->
  unit ->
  t
(** Format [meta_pid] and a fresh empty root leaf.  [olc] shares an existing
    version table (page ids are file-global); omitted, a fresh one is made. *)

val attach :
  ?olc:Olc.t ->
  journal:Transact.Journal.t ->
  alloc:Pager.Alloc.t ->
  meta_pid:int ->
  unit ->
  t
(** Open an existing tree (e.g. after restart).  Pass 3 attaches its scratch
    tree with [~olc:(Tree.olc base_tree)] so new-tree structure writes are
    visible to optimistic readers of the same file. *)

val journal : t -> Transact.Journal.t
val pool : t -> Pager.Buffer_pool.t
val alloc : t -> Pager.Alloc.t
val meta_pid : t -> int

val olc : t -> Olc.t
(** The file's optimistic-read version table; bumped by every structural
    page write made through this module. *)

val root : t -> int
val set_root : t -> ?txn:Transact.Txn.t -> int -> unit
(** Logged meta-page update (the switch writes this). *)

val tree_name : t -> int
val set_tree_name : t -> ?txn:Transact.Txn.t -> int -> unit
val reorg_bit : t -> bool
val set_reorg_bit : t -> bool -> unit

val generation : t -> int
(** Generation of the current upper levels (bumped by each pass 3). *)

val set_generation : t -> ?txn:Transact.Txn.t -> int -> unit

val page : t -> int -> Pager.Page.t
(** Frame bytes via the pool. *)

val height : t -> int
(** 1 when the root is a leaf. *)

(** {2 Descent} *)

val descend_path : t -> int -> int list
(** Page ids from the root down to the leaf covering the key. *)

val find_leaf : t -> int -> int
val parent_of_leaf : t -> int -> int option
(** Base page covering the key ([None] when the root is a leaf). *)

val first_leaf : t -> int
val first_base : t -> int option

val next_base : t -> int -> int option
(** [next_base t k] — Get_Next(k) from §7.1: the base page with the smallest
    low mark strictly greater than [k]. *)

(** {2 Record operations (unlocked primitives)} *)

val search : t -> int -> string option

val insert :
  t ->
  txn:Transact.Txn.t ->
  ?on_base_edit:(Wal.Record.side_op -> unit) ->
  key:int ->
  payload:string ->
  unit ->
  unit
(** Raises {!Duplicate_key} / {!Record_too_large}.  [on_base_edit] fires for
    every entry inserted into or deleted from a {e base page} (level-1 node)
    — the changes §7 must mirror into the side file while pass 3 runs. *)

val delete :
  t ->
  txn:Transact.Txn.t ->
  ?on_base_edit:(Wal.Record.side_op -> unit) ->
  int ->
  string option
(** Free-at-empty: an emptied leaf is unlinked, its parent entry removed, and
    the page deallocated; empties propagate up. *)

val update :
  t ->
  txn:Transact.Txn.t ->
  ?on_base_edit:(Wal.Record.side_op -> unit) ->
  key:int ->
  payload:string ->
  unit ->
  string option
(** Replace the payload of an existing key (logged as delete + insert, so
    rollback restores the old payload).  Returns the previous payload, or
    [None] when the key is absent (nothing is inserted then). *)

val apply_insert : t -> key:int -> payload:string -> unit
(** Unlogged, idempotent record insert (structure changes still logged
    physically) — used by CLR-driven rollback and recovery redo. *)

val apply_delete : t -> int -> unit
(** Unlogged, idempotent record delete. *)

val insert_base_entry : t -> ?txn:Transact.Txn.t -> key:int -> child:int -> unit -> unit
(** Insert an entry into the base page covering [key], splitting internal
    nodes upward as needed — how side-file entries are caught up onto the
    new tree (§7).  No-op if the key is already present. *)

val delete_base_entry : t -> ?txn:Transact.Txn.t -> int -> unit
(** Remove the base-page entry with exactly this key (no-op when absent),
    freeing emptied internal pages. *)

val range : t -> lo:int -> hi:int -> Leaf.record list
(** Records with [lo <= key <= hi], via leaf side pointers. *)

val iter_leaves : t -> (int -> Pager.Page.t -> unit) -> unit
(** In key order over the side-pointer chain. *)

val leaf_pids : t -> int list

type stats = {
  height : int;
  leaf_count : int;
  internal_count : int;
  record_count : int;
  avg_leaf_fill : float;
  min_leaf_fill : float;
}

val stats : t -> stats
