module Page = Pager.Page

let off_root = Page.header_size
let off_tree_name = off_root + 4
let off_reorg_bit = off_tree_name + 4
let off_generation = off_reorg_bit + 1

let init p ~root ~tree_name =
  Page.fill p 0 (Bytes.length p) '\000';
  Page.set_kind p Layout.kind_meta;
  Page.set_u32 p off_root root;
  Page.set_u32 p off_tree_name tree_name;
  Page.set_u8 p off_reorg_bit 0

let is_meta p = Page.kind p = Layout.kind_meta

let root p = Page.get_u32 p off_root
let set_root p v = Page.set_u32 p off_root v

let tree_name p = Page.get_u32 p off_tree_name
let set_tree_name p v = Page.set_u32 p off_tree_name v

let reorg_bit p = Page.get_u8 p off_reorg_bit = 1
let set_reorg_bit p v = Page.set_u8 p off_reorg_bit (if v then 1 else 0)

let generation p = Page.get_u16 p off_generation
let set_generation p g = Page.set_u16 p off_generation g
