(* Optimistic-lock-coupling support state (FB+-tree style).

   One [t] per tree file: a pid-keyed table of version counters, a global
   epoch, and a gauge of reorganization units currently executing.  The
   rules are deliberately coarse so the write paths stay cheap:

   - Every structure-modifying or record-moving page write bumps the
     page's version: leaf splits and merges through [Tree.physical],
     pass-1/2/3 record moves and page frees in [Unit_exec]/[Pass3]
     (which mutate frames directly and journal raw physical images),
     side-file catch-up and the switch's meta flip.  Record-level inserts
     and deletes that merely change a leaf's contents do NOT bump: an
     optimistic reader always reads page contents inside one atomic
     scheduler step, so only {e structural} staleness — a captured child
     pointer or side pointer going stale across a yield — needs
     detection.

   - [invalidate_all] (crash / volatile teardown) advances the epoch and
     clears the table: every in-flight optimistic descent fails its next
     validation and retries or falls back to the locked protocol.

   - [unit_begin]/[unit_end] bracket §5 reorganization units.  While any
     unit is active the optimistic protocol is unsafe in the worst case
     (records are mid-move between org and dest), so readers observe
     [active] and fall back to the paper's R/RX/RS path — keeping
     Table-1 semantics exactly where they matter.

   Versions are volatile by design: after a crash the table restarts
   empty (epoch advanced), which is safe because no optimistic descent
   survives a crash either. *)

type t = {
  versions : (int, int) Hashtbl.t;
  mutable epoch : int;
  mutable active_units : int;
  mutable reads : int;  (* optimistic reads completed without locks *)
  mutable retries : int;  (* validation conflicts that restarted a descent *)
  mutable fallbacks : int;  (* descents that gave up and took the locked path *)
  mutable version_bumps : int;
}

(* Test-only mutation hook: when set, version bumps are silently skipped, so
   a structural change can hide from in-flight optimistic readers.  The
   conformance checker's olc model must then observe a stale read
   ([Olc_read] with [valid = false]) — proving the validation actually
   protects something. *)
let test_skip_bumps = ref false

let create () =
  {
    versions = Hashtbl.create 512;
    epoch = 0;
    active_units = 0;
    reads = 0;
    retries = 0;
    fallbacks = 0;
    version_bumps = 0;
  }

let version t pid = match Hashtbl.find_opt t.versions pid with Some v -> v | None -> 0

let bump t pid =
  if not !test_skip_bumps then begin
    Hashtbl.replace t.versions pid (version t pid + 1);
    t.version_bumps <- t.version_bumps + 1
  end

let epoch t = t.epoch

let invalidate_all t =
  t.epoch <- t.epoch + 1;
  Hashtbl.reset t.versions;
  (* Units die with the machine; recovery finishes them forward without any
     concurrent readers, then re-balances through its own [unit_end]s being
     clamped at zero. *)
  t.active_units <- 0

let unit_begin t = t.active_units <- t.active_units + 1

let unit_end t = if t.active_units > 0 then t.active_units <- t.active_units - 1

let active t = t.active_units > 0

let note_read t = t.reads <- t.reads + 1
let note_retry t = t.retries <- t.retries + 1
let note_fallback t = t.fallbacks <- t.fallbacks + 1

let reads t = t.reads
let retries t = t.retries
let fallbacks t = t.fallbacks
let version_bumps t = t.version_bumps

let register_obs t reg =
  Obs.Registry.gauge reg "olc.reads" (fun () -> t.reads);
  Obs.Registry.gauge reg "olc.retries" (fun () -> t.retries);
  Obs.Registry.gauge reg "olc.fallbacks" (fun () -> t.fallbacks);
  Obs.Registry.gauge reg "olc.version_bumps" (fun () -> t.version_bumps)
