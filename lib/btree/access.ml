module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr
module Lock_client = Transact.Lock_client
module Txn = Transact.Txn
module Txn_mgr = Transact.Txn_mgr
module Engine = Sched.Engine

type t = {
  tree : Tree.t;
  mgr : Txn_mgr.t;
  record_locking : bool;
  mutable on_base_update : (Txn.t -> Wal.Record.side_op -> unit) option;
  mutable side_undo : (Wal.Record.side_op -> unit) option;
  mutable health : Obs.Health.t option;
}

let create ~tree ~mgr ?(record_locking = false) () =
  { tree; mgr; record_locking; on_base_update = None; side_undo = None; health = None }

let set_health t h = t.health <- h
let health t = t.health

let set_side_undo t f = t.side_undo <- Some f

let run_side_undo t op = match t.side_undo with Some f -> f op | None -> ()

let tree t = t.tree
let mgr t = t.mgr
let locks t = Txn_mgr.lock_mgr t.mgr

let set_on_base_update t f = t.on_base_update <- Some f
let clear_on_base_update t = t.on_base_update <- None

let page_res pid = Resource.Page pid

let has_rx blockers = List.exists (fun (_, m) -> m = Mode.RX) blockers

(* The §4.1.2 give-up step: the requester has hit an RX on a leaf while
   holding [base] in mode [held_mode].  Release the base lock, wait out the
   reorganizer with an unconditional instant-duration RS on the base page,
   and return once it is over; the caller then re-locks the base and retries
   from it. *)
let give_up_and_wait t ~txn ~base ~held_mode =
  Txn.note_give_up txn;
  Lock_client.release (locks t) ~txn (page_res base) held_mode;
  Lock_client.instant (locks t) ~txn (page_res base) Mode.RS

(* S lock-couple from the root to the leaf covering [key], applying the RX
   give-up rule at the leaf step.  On return the caller holds [leaf_mode] on
   the leaf (and nothing else below the tree lock). *)
let rec descend_locked t ~txn ~key ~leaf_mode =
  let root = Tree.root t.tree in
  Lock_client.acquire (locks t) ~txn (page_res root) Mode.S;
  couple_down t ~txn ~key ~leaf_mode root

and couple_down t ~txn ~key ~leaf_mode cur =
  (* Holds S on [cur]. *)
  Engine.yield ();
  let p = Tree.page t.tree cur in
  if Leaf.is_leaf p then begin
    (* Root is a leaf: trade S for the leaf mode. *)
    if leaf_mode <> Mode.S then begin
      Lock_client.acquire (locks t) ~txn (page_res cur) leaf_mode;
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S
    end;
    cur
  end
  else begin
    let child = (Inode.child_for p key).Inode.child in
    let child_is_leaf = Inode.level p = 1 in
    let mode = if child_is_leaf then leaf_mode else Mode.S in
    match Lock_client.try_acquire (locks t) ~txn (page_res child) mode with
    | `Granted ->
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      if child_is_leaf then child else couple_down t ~txn ~key ~leaf_mode child
    | `Conflict blockers when child_is_leaf && has_rx blockers ->
      give_up_and_wait t ~txn ~base:cur ~held_mode:Mode.S;
      (* Reorganization of that unit is over; retry from the base page. *)
      Lock_client.acquire (locks t) ~txn (page_res cur) Mode.S;
      couple_down t ~txn ~key ~leaf_mode cur
    | `Conflict _ ->
      Lock_client.wait_queued (locks t) ~txn (page_res child) mode;
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      if child_is_leaf then child else couple_down t ~txn ~key ~leaf_mode child
  end

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let read t ~txn key =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IS;
  let leaf_mode = if t.record_locking then Mode.IS else Mode.S in
  let leaf = descend_locked t ~txn ~key ~leaf_mode in
  if t.record_locking then Lock_client.acquire (locks t) ~txn (Resource.Rec key) Mode.S;
  Leaf.find (Tree.page t.tree leaf) key

let rec range_read t ~txn ~lo ~hi =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IS;
  let leaf = descend_locked t ~txn ~key:lo ~leaf_mode:Mode.S in
  walk_chain t ~txn ~lo ~hi leaf []

and walk_chain t ~txn ~lo ~hi cur acc =
  (* Holds S on [cur]. *)
  Engine.yield ();
  let p = Tree.page t.tree cur in
  let here = List.filter (fun r -> r.Leaf.key >= lo && r.Leaf.key <= hi) (Leaf.records p) in
  let acc = List.rev_append here acc in
  let stop = match Leaf.max_key p with Some k when k > hi -> true | _ -> false in
  match (stop, Leaf.next p) with
  | true, _ | _, None -> List.rev acc
  | false, Some nxt -> begin
    let resume_from =
      match Leaf.max_key p with Some k -> k + 1 | None -> lo
    in
    match Lock_client.try_acquire (locks t) ~txn (page_res nxt) Mode.S with
    | `Granted ->
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      walk_chain t ~txn ~lo ~hi nxt acc
    | `Conflict blockers when has_rx blockers ->
      (* The next leaf is being reorganized: drop out of the chain, wait on
         its parent, and re-descend for the continuation key. *)
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      (match Tree.parent_of_leaf t.tree resume_from with
      | Some base -> Lock_client.instant (locks t) ~txn (page_res base) Mode.RS
      | None -> ());
      Txn.note_give_up txn;
      List.rev_append acc (range_read t ~txn ~lo:resume_from ~hi)
    | `Conflict _ ->
      Lock_client.wait_queued (locks t) ~txn (page_res nxt) Mode.S;
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      walk_chain t ~txn ~lo ~hi nxt acc
  end

(* ------------------------------------------------------------------ *)
(* Updater                                                             *)
(* ------------------------------------------------------------------ *)

type op = Ins | Del

(* Will the operation need a structural (base-page) change? *)
let needs_structure t op ~key ~payload leaf =
  let p = Tree.page t.tree leaf in
  match op with
  | Ins -> not (Leaf.fits p { Leaf.key; payload })
  | Del -> Leaf.mem p key && Leaf.nrecords p = 1 && Tree.height t.tree > 1

let leaf_safe t op ~key ~payload pid =
  let p = Tree.page t.tree pid in
  match op with
  | Ins -> Leaf.fits p { Leaf.key; payload }
  | Del -> Leaf.nrecords p > 1 || not (Leaf.mem p key)

let inode_safe op p =
  match op with Ins -> Inode.nentries p < Inode.capacity p | Del -> Inode.nentries p >= 2

exception Restart

(* X lock-coupling descent for structure-modifying operations
   (Bayer–Schkolnick): hold X from the topmost unsafe node down to the leaf;
   acquiring a safe node releases all ancestors. *)
let descend_x t ~txn ~op ~key ~payload =
  let release_many pids =
    List.iter (fun pid -> Lock_client.release (locks t) ~txn (page_res pid) Mode.X) pids
  in
  let rec step held cur =
    Engine.yield ();
    let p = Tree.page t.tree cur in
    if Leaf.is_leaf p then (held, cur)
    else begin
      let child = (Inode.child_for p key).Inode.child in
      let child_is_leaf = Inode.level p = 1 in
      (match Lock_client.try_acquire (locks t) ~txn (page_res child) Mode.X with
      | `Granted -> ()
      | `Conflict blockers when child_is_leaf && has_rx blockers ->
        (* Give up everything, wait out the unit on the base page, restart. *)
        release_many held;
        Txn.note_give_up txn;
        Lock_client.instant (locks t) ~txn (page_res cur) Mode.RS;
        raise Restart
      | `Conflict _ -> Lock_client.wait_queued (locks t) ~txn (page_res child) Mode.X);
      let safe =
        if child_is_leaf then leaf_safe t op ~key ~payload child
        else inode_safe op (Tree.page t.tree child)
      in
      let held =
        if safe then begin
          release_many held;
          [ child ]
        end
        else held @ [ child ]
      in
      if child_is_leaf then (held, child) else step held child
    end
  in
  let rec start () =
    let root = Tree.root t.tree in
    Lock_client.acquire (locks t) ~txn (page_res root) Mode.X;
    match step [ root ] root with
    | held, leaf -> (held, leaf)
    | exception Restart -> start ()
  in
  start ()

(* Collected during the structural change; forwarded to the side-file hook
   only if pass 3 is running (§7.2 tests the reorganization bit under the
   base page X lock, which the X descent holds). *)
let base_edit_sink edits op = edits := op :: !edits

let flush_base_edits t ~txn edits =
  match t.on_base_update with
  | Some hook when Tree.reorg_bit t.tree -> List.iter (fun op -> hook txn op) (List.rev !edits)
  | _ -> ()

let with_structure_locks t ~txn ~op ~key ~payload f =
  let held, leaf = descend_x t ~txn ~op ~key ~payload in
  let edits = ref [] in
  let result = f leaf ~on_base_edit:(fun e -> base_edit_sink edits e) in
  flush_base_edits t ~txn edits;
  (* Structure locks are released as soon as the change is done; the leaf
     lock is kept to end of transaction. *)
  List.iter
    (fun pid -> if pid <> leaf then Lock_client.release (locks t) ~txn (page_res pid) Mode.X)
    held;
  (match Lock_mgr.holds (locks t) ~owner:txn.Txn.id (page_res leaf) with
  | [] -> Lock_client.acquire (locks t) ~txn (page_res leaf) Mode.X
  | _ -> ());
  result

let insert t ~txn ~key ~payload =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IX;
  let leaf_mode = if t.record_locking then Mode.IX else Mode.X in
  let attempt () =
    let leaf = descend_locked t ~txn ~key ~leaf_mode in
    if t.record_locking then Lock_client.acquire (locks t) ~txn (Resource.Rec key) Mode.X;
    if needs_structure t Ins ~key ~payload leaf then begin
      (* §4.1.3: release and restart with X lock-coupling. *)
      Lock_client.release (locks t) ~txn (page_res leaf) leaf_mode;
      ignore
        (with_structure_locks t ~txn ~op:Ins ~key ~payload (fun _leaf ~on_base_edit ->
             Tree.insert t.tree ~txn ~on_base_edit ~key ~payload ()))
    end
    else
      (* The leaf is safe: the insert cannot touch any base page. *)
      Tree.insert t.tree ~txn ~key ~payload ()
  in
  attempt ()

let delete t ~txn key =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IX;
  let leaf_mode = if t.record_locking then Mode.IX else Mode.X in
  let leaf = descend_locked t ~txn ~key ~leaf_mode in
  if t.record_locking then Lock_client.acquire (locks t) ~txn (Resource.Rec key) Mode.X;
  if needs_structure t Del ~key ~payload:"" leaf then begin
    Lock_client.release (locks t) ~txn (page_res leaf) leaf_mode;
    with_structure_locks t ~txn ~op:Del ~key ~payload:"" (fun _leaf ~on_base_edit ->
        Tree.delete t.tree ~txn ~on_base_edit key)
  end
  else Tree.delete t.tree ~txn key

let update t ~txn ~key ~payload =
  (* Delete-then-insert through the full protocols: each step takes its own
     locks, and both stay held to end of transaction. *)
  match delete t ~txn key with
  | None -> None
  | Some old ->
    insert t ~txn ~key ~payload;
    Some old
