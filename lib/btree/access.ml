module Mode = Lockmgr.Mode
module Resource = Lockmgr.Resource
module Lock_mgr = Lockmgr.Lock_mgr
module Lock_client = Transact.Lock_client
module Txn = Transact.Txn
module Txn_mgr = Transact.Txn_mgr
module Engine = Sched.Engine

type t = {
  tree : Tree.t;
  mgr : Txn_mgr.t;
  record_locking : bool;
  mutable on_base_update : (Txn.t -> Wal.Record.side_op -> unit) option;
  mutable side_undo : (Wal.Record.side_op -> unit) option;
  mutable health : Obs.Health.t option;
  mutable olc_enabled : bool;
  mutable olc_max_retries : int;
  mutable read_probe : (leaf:int -> key:int -> valid:bool -> unit) option;
}

let create ~tree ~mgr ?(record_locking = false) () =
  {
    tree;
    mgr;
    record_locking;
    on_base_update = None;
    side_undo = None;
    health = None;
    olc_enabled = false;
    olc_max_retries = 3;
    read_probe = None;
  }

let set_olc t ?(max_retries = 3) enabled =
  t.olc_enabled <- enabled;
  t.olc_max_retries <- max_retries

let olc_enabled t = t.olc_enabled

let set_read_probe t f = t.read_probe <- f

let set_health t h = t.health <- h
let health t = t.health

let set_side_undo t f = t.side_undo <- Some f

let run_side_undo t op = match t.side_undo with Some f -> f op | None -> ()

let tree t = t.tree
let mgr t = t.mgr
let locks t = Txn_mgr.lock_mgr t.mgr

let set_on_base_update t f = t.on_base_update <- Some f
let clear_on_base_update t = t.on_base_update <- None

let page_res pid = Resource.Page pid

let has_rx blockers = List.exists (fun (_, m) -> m = Mode.RX) blockers

(* The §4.1.2 give-up step: the requester has hit an RX on a leaf while
   holding [base] in mode [held_mode].  Release the base lock, wait out the
   reorganizer with an unconditional instant-duration RS on the base page,
   and return once it is over; the caller then re-locks the base and retries
   from it. *)
let give_up_and_wait t ~txn ~base ~held_mode =
  Txn.note_give_up txn;
  Lock_client.release (locks t) ~txn (page_res base) held_mode;
  Lock_client.instant (locks t) ~txn (page_res base) Mode.RS

(* S lock-couple from the root to the leaf covering [key], applying the RX
   give-up rule at the leaf step.  On return the caller holds [leaf_mode] on
   the leaf (and nothing else below the tree lock). *)
let rec descend_locked t ~txn ~key ~leaf_mode =
  let root = Tree.root t.tree in
  Lock_client.acquire (locks t) ~txn (page_res root) Mode.S;
  couple_down t ~txn ~key ~leaf_mode root

and couple_down t ~txn ~key ~leaf_mode cur =
  (* Holds S on [cur]. *)
  Engine.yield ();
  let p = Tree.page t.tree cur in
  if Leaf.is_leaf p then begin
    (* Root is a leaf: trade S for the leaf mode. *)
    if leaf_mode <> Mode.S then begin
      Lock_client.acquire (locks t) ~txn (page_res cur) leaf_mode;
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S
    end;
    cur
  end
  else begin
    let child = (Inode.child_for p key).Inode.child in
    let child_is_leaf = Inode.level p = 1 in
    let mode = if child_is_leaf then leaf_mode else Mode.S in
    match Lock_client.try_acquire (locks t) ~txn (page_res child) mode with
    | `Granted ->
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      if child_is_leaf then child else couple_down t ~txn ~key ~leaf_mode child
    | `Conflict blockers when child_is_leaf && has_rx blockers ->
      give_up_and_wait t ~txn ~base:cur ~held_mode:Mode.S;
      (* Reorganization of that unit is over; retry from the base page. *)
      Lock_client.acquire (locks t) ~txn (page_res cur) Mode.S;
      couple_down t ~txn ~key ~leaf_mode cur
    | `Conflict _ ->
      Lock_client.wait_queued (locks t) ~txn (page_res child) mode;
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      if child_is_leaf then child else couple_down t ~txn ~key ~leaf_mode child
  end

(* ------------------------------------------------------------------ *)
(* Reader — locked protocol (Table 1)                                  *)
(* ------------------------------------------------------------------ *)

let read_locked t ~txn key =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IS;
  let leaf_mode = if t.record_locking then Mode.IS else Mode.S in
  let leaf = descend_locked t ~txn ~key ~leaf_mode in
  if t.record_locking then Lock_client.acquire (locks t) ~txn (Resource.Rec key) Mode.S;
  Leaf.find (Tree.page t.tree leaf) key

let rec range_read_locked t ~txn ~lo ~hi =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IS;
  let leaf = descend_locked t ~txn ~key:lo ~leaf_mode:Mode.S in
  walk_chain t ~txn ~lo ~hi leaf []

and walk_chain t ~txn ~lo ~hi cur acc =
  (* Holds S on [cur]. *)
  Engine.yield ();
  let p = Tree.page t.tree cur in
  let here = List.filter (fun r -> r.Leaf.key >= lo && r.Leaf.key <= hi) (Leaf.records p) in
  let acc = List.rev_append here acc in
  let stop = match Leaf.max_key p with Some k when k > hi -> true | _ -> false in
  match (stop, Leaf.next p) with
  | true, _ | _, None -> List.rev acc
  | false, Some nxt -> begin
    let resume_from =
      match Leaf.max_key p with Some k -> k + 1 | None -> lo
    in
    match Lock_client.try_acquire (locks t) ~txn (page_res nxt) Mode.S with
    | `Granted ->
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      walk_chain t ~txn ~lo ~hi nxt acc
    | `Conflict blockers when has_rx blockers ->
      (* The next leaf is being reorganized: drop out of the chain, wait on
         its parent, and re-descend for the continuation key. *)
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      (match Tree.parent_of_leaf t.tree resume_from with
      | Some base -> Lock_client.instant (locks t) ~txn (page_res base) Mode.RS
      | None -> ());
      Txn.note_give_up txn;
      List.rev_append acc (range_read_locked t ~txn ~lo:resume_from ~hi)
    | `Conflict _ ->
      Lock_client.wait_queued (locks t) ~txn (page_res nxt) Mode.S;
      Lock_client.release (locks t) ~txn (page_res cur) Mode.S;
      walk_chain t ~txn ~lo ~hi nxt acc
  end

(* ------------------------------------------------------------------ *)
(* Reader — optimistic lock coupling (FB+-tree style)                  *)
(* ------------------------------------------------------------------ *)

(* Lock-free descent: between two scheduler yields everything is atomic, so
   a step only has to prove that the pointer it followed {e across} the last
   yield is still live.  It captures the version of the node it is standing
   on, yields, then re-validates epoch (crash invalidation), the
   active-unit gauge (records may be mid-move between org and dest — the
   one window where reading current page contents is not enough), and the
   captured version (the node was not split/cleared/freed/swapped since, so
   its child and side pointers are still the tree's).  Page contents are
   always read fresh inside the post-validation atomic step, which is why
   record-level inserts/deletes need no versioning at all.

   At the leaf it chases side pointers B-link-style (splits move records
   right, never left), then makes one non-enqueuing S-grantability probe:
   an RX/X holder means a reorganization unit or a structural writer owns
   the leaf right now, so the optimistic result could be mid-move — give
   up.  A clean probe plus valid versions means a locked reader arriving at
   this instant would have been granted S and read the same bytes. *)

exception Olc_conflict

let olc_descend t ~txn olc ~key =
  let epoch0 = Olc.epoch olc in
  if Olc.active olc then raise Olc_conflict;
  let rec go cur vcur =
    Engine.yield ();
    if
      Olc.epoch olc <> epoch0
      || Olc.active olc
      || Olc.version olc cur <> vcur
    then raise Olc_conflict;
    match Tree.page t.tree cur with
    | exception _ -> raise Olc_conflict
    | p ->
      if Leaf.is_leaf p then begin
        let rec chase pid p =
          match Leaf.next p with
          | Some nxt -> begin
            match Tree.page t.tree nxt with
            | np when Leaf.is_leaf np && Leaf.low_mark np <= key -> chase nxt np
            | _ -> pid
            | exception _ -> pid
          end
          | None -> pid
        in
        let leaf = chase cur p in
        if not (Lock_mgr.probe (locks t) ~owner:txn.Txn.id (page_res leaf) Mode.S) then
          raise Olc_conflict;
        leaf
      end
      else if Inode.is_internal p then begin
        let child = (Inode.child_for p key).Inode.child in
        go child (Olc.version olc child)
      end
      else
        (* Freed (or being reformatted) since the parent was read. *)
        raise Olc_conflict
  in
  let root = Tree.root t.tree in
  go root (Olc.version olc root)

let olc_read t ~txn key =
  let olc = Tree.olc t.tree in
  let rec attempt tries =
    match olc_descend t ~txn olc ~key with
    | leaf ->
      (* Same atomic step as the descent's final validation. *)
      let res = Leaf.find (Tree.page t.tree leaf) key in
      Olc.note_read olc;
      (match t.read_probe with
      | Some probe ->
        (* Checker mode: judge the optimistic result against a fresh
           unlocked descent in the same atomic step — ground truth, since
           nothing can run between the two. *)
        let valid = res = Tree.search t.tree key in
        probe ~leaf ~key ~valid
      | None -> ());
      res
    | exception Olc_conflict ->
      if tries < t.olc_max_retries then begin
        Olc.note_retry olc;
        attempt (tries + 1)
      end
      else begin
        Olc.note_fallback olc;
        read_locked t ~txn key
      end
  in
  attempt 0

let olc_range_read t ~txn ~lo ~hi =
  let olc = Tree.olc t.tree in
  let epoch0 = Olc.epoch olc in
  (* [acc] is reversed; every record in it was collected inside a validated
     atomic step, so a fallback only needs the locked protocol for the
     remainder of the key range. *)
  let rec attempt ~from acc tries =
    match olc_descend t ~txn olc ~key:from with
    | leaf -> collect ~from acc tries leaf
    | exception Olc_conflict -> conflict ~from acc tries
  and conflict ~from acc tries =
    if tries < t.olc_max_retries then begin
      Olc.note_retry olc;
      attempt ~from acc (tries + 1)
    end
    else begin
      Olc.note_fallback olc;
      List.rev_append acc (range_read_locked t ~txn ~lo:from ~hi)
    end
  and collect ~from acc tries cur =
    (* Inside a validated atomic step for [cur]. *)
    let p = Tree.page t.tree cur in
    let here =
      (* Filter against [from], not [lo]: after a conflict re-descent the
         leaf covering the continuation key may have absorbed records in
         [lo, from) already in [acc] (leaf merge / reorg compact), and the
         first attempt starts with from = lo anyway. *)
      List.filter (fun r -> r.Leaf.key >= from && r.Leaf.key <= hi) (Leaf.records p)
    in
    let acc = List.rev_append here acc in
    let stop = match Leaf.max_key p with Some k when k > hi -> true | _ -> false in
    match (stop, Leaf.next p) with
    | true, _ | _, None ->
      Olc.note_read olc;
      List.rev acc
    | false, Some nxt -> begin
      let resume_from = match Leaf.max_key p with Some k -> k + 1 | None -> from in
      let vnxt = Olc.version olc nxt in
      Engine.yield ();
      if
        Olc.epoch olc <> epoch0
        || Olc.active olc
        || Olc.version olc nxt <> vnxt
        || not (Lock_mgr.probe (locks t) ~owner:txn.Txn.id (page_res nxt) Mode.S)
      then
        (* The chain moved under us: re-descend for the continuation key
           (the records gathered so far stay good). *)
        conflict ~from:resume_from acc tries
      else
        match Tree.page t.tree nxt with
        | np when Leaf.is_leaf np ->
          ignore np;
          collect ~from:resume_from acc tries nxt
        | _ -> conflict ~from:resume_from acc tries
        | exception _ -> conflict ~from:resume_from acc tries
    end
  in
  attempt ~from:lo [] 0

(* ------------------------------------------------------------------ *)
(* Reader — dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let read t ~txn key =
  if t.olc_enabled && not t.record_locking then olc_read t ~txn key
  else read_locked t ~txn key

let range_read t ~txn ~lo ~hi =
  if t.olc_enabled && not t.record_locking then olc_range_read t ~txn ~lo ~hi
  else range_read_locked t ~txn ~lo ~hi

(* ------------------------------------------------------------------ *)
(* Updater                                                             *)
(* ------------------------------------------------------------------ *)

type op = Ins | Del

(* Will the operation need a structural (base-page) change? *)
let needs_structure t op ~key ~payload leaf =
  let p = Tree.page t.tree leaf in
  match op with
  | Ins -> not (Leaf.fits p { Leaf.key; payload })
  | Del -> Leaf.mem p key && Leaf.nrecords p = 1 && Tree.height t.tree > 1

let leaf_safe t op ~key ~payload pid =
  let p = Tree.page t.tree pid in
  match op with
  | Ins -> Leaf.fits p { Leaf.key; payload }
  | Del -> Leaf.nrecords p > 1 || not (Leaf.mem p key)

let inode_safe op p =
  match op with Ins -> Inode.nentries p < Inode.capacity p | Del -> Inode.nentries p >= 2

exception Restart

(* X lock-coupling descent for structure-modifying operations
   (Bayer–Schkolnick): hold X from the topmost unsafe node down to the leaf;
   acquiring a safe node releases all ancestors. *)
let descend_x t ~txn ~op ~key ~payload =
  let release_many pids =
    List.iter (fun pid -> Lock_client.release (locks t) ~txn (page_res pid) Mode.X) pids
  in
  let rec step held cur =
    Engine.yield ();
    let p = Tree.page t.tree cur in
    if Leaf.is_leaf p then (held, cur)
    else begin
      let child = (Inode.child_for p key).Inode.child in
      let child_is_leaf = Inode.level p = 1 in
      (match Lock_client.try_acquire (locks t) ~txn (page_res child) Mode.X with
      | `Granted -> ()
      | `Conflict blockers when child_is_leaf && has_rx blockers ->
        (* Give up everything, wait out the unit on the base page, restart. *)
        release_many held;
        Txn.note_give_up txn;
        Lock_client.instant (locks t) ~txn (page_res cur) Mode.RS;
        raise Restart
      | `Conflict _ -> Lock_client.wait_queued (locks t) ~txn (page_res child) Mode.X);
      let safe =
        if child_is_leaf then leaf_safe t op ~key ~payload child
        else inode_safe op (Tree.page t.tree child)
      in
      let held =
        if safe then begin
          release_many held;
          [ child ]
        end
        else held @ [ child ]
      in
      if child_is_leaf then (held, child) else step held child
    end
  in
  let rec start () =
    let root = Tree.root t.tree in
    Lock_client.acquire (locks t) ~txn (page_res root) Mode.X;
    match step [ root ] root with
    | held, leaf -> (held, leaf)
    | exception Restart -> start ()
  in
  start ()

(* Collected during the structural change; forwarded to the side-file hook
   only if pass 3 is running (§7.2 tests the reorganization bit under the
   base page X lock, which the X descent holds). *)
let base_edit_sink edits op = edits := op :: !edits

let flush_base_edits t ~txn edits =
  match t.on_base_update with
  | Some hook when Tree.reorg_bit t.tree -> List.iter (fun op -> hook txn op) (List.rev !edits)
  | _ -> ()

let with_structure_locks t ~txn ~op ~key ~payload f =
  let held, leaf = descend_x t ~txn ~op ~key ~payload in
  let edits = ref [] in
  let result = f leaf ~on_base_edit:(fun e -> base_edit_sink edits e) in
  flush_base_edits t ~txn edits;
  (* Structure locks are released as soon as the change is done; the leaf
     lock is kept to end of transaction. *)
  List.iter
    (fun pid -> if pid <> leaf then Lock_client.release (locks t) ~txn (page_res pid) Mode.X)
    held;
  (match Lock_mgr.holds (locks t) ~owner:txn.Txn.id (page_res leaf) with
  | [] -> Lock_client.acquire (locks t) ~txn (page_res leaf) Mode.X
  | _ -> ());
  result

let insert t ~txn ~key ~payload =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IX;
  let leaf_mode = if t.record_locking then Mode.IX else Mode.X in
  let attempt () =
    let leaf = descend_locked t ~txn ~key ~leaf_mode in
    if t.record_locking then Lock_client.acquire (locks t) ~txn (Resource.Rec key) Mode.X;
    if needs_structure t Ins ~key ~payload leaf then begin
      (* §4.1.3: release and restart with X lock-coupling. *)
      Lock_client.release (locks t) ~txn (page_res leaf) leaf_mode;
      ignore
        (with_structure_locks t ~txn ~op:Ins ~key ~payload (fun _leaf ~on_base_edit ->
             Tree.insert t.tree ~txn ~on_base_edit ~key ~payload ()))
    end
    else
      (* The leaf is safe: the insert cannot touch any base page. *)
      Tree.insert t.tree ~txn ~key ~payload ()
  in
  attempt ()

let delete t ~txn key =
  Lock_client.acquire (locks t) ~txn (Resource.Tree (Tree.tree_name t.tree)) Mode.IX;
  let leaf_mode = if t.record_locking then Mode.IX else Mode.X in
  let leaf = descend_locked t ~txn ~key ~leaf_mode in
  if t.record_locking then Lock_client.acquire (locks t) ~txn (Resource.Rec key) Mode.X;
  if needs_structure t Del ~key ~payload:"" leaf then begin
    Lock_client.release (locks t) ~txn (page_res leaf) leaf_mode;
    with_structure_locks t ~txn ~op:Del ~key ~payload:"" (fun _leaf ~on_base_edit ->
        Tree.delete t.tree ~txn ~on_base_edit key)
  end
  else Tree.delete t.tree ~txn key

let update t ~txn ~key ~payload =
  (* Delete-then-insert through the full protocols: each step takes its own
     locks, and both stay held to end of transaction. *)
  match delete t ~txn key with
  | None -> None
  | Some old ->
    insert t ~txn ~key ~payload;
    Some old
