(** Shared byte-layout constants for B+-tree pages.

    All pages start with the pager header ({!Pager.Page.header_size} bytes:
    kind, LSN, checksum).  The tree adds, for every node kind, at offsets
    relative to [h = Pager.Page.header_size] (= 13):

    {v
      h        level      (u8; 0 = leaf)
      h+1..2   nslots / nentries (u16)
      h+3..4   heap_top   (u16; leaf pages only)
      h+5..12  low mark   (i64; smallest key the page was created to cover)
      h+13..16 prev       (u32; leaf side pointer, nil_pid = none)
      h+17..20 next       (u32; leaf side pointer)
      h+21..22 generation (u16)
      h+23..   slot directory (leaf) / entry array (internal)
    v} *)

val kind_leaf : int
val kind_internal : int
val kind_meta : int

val off_level : int
val off_count : int
val off_heap_top : int
val off_low_mark : int
val off_prev : int
val off_next : int
val off_generation : int
(** u16 build generation of internal pages — pass 3 tags the pages of the
    new upper levels with a fresh generation so recovery can tell them from
    the old tree's. *)

val body_start : int
(** First byte of the slot directory / entry array. *)

val nil_pid : int
(** Sentinel page id meaning "none" (0xFFFFFFFF). *)

val entry_size : int
(** Internal-node entry: key (i64) + child (u32) = 12 bytes. *)

val record_header : int
(** Leaf record header: key (i64) + payload length (u16) = 10 bytes. *)

val usable_bytes : page_size:int -> int
(** Bytes available to slots + records on a leaf ([page_size - body_start]). *)
