let kind_leaf = 1
let kind_internal = 2
let kind_meta = 3

(* All offsets are relative to the pager header so the tree layout follows
   automatically if the header grows (it did, when per-page checksums were
   added). *)
let off_level = Pager.Page.header_size
let off_count = off_level + 1
let off_heap_top = off_count + 2
let off_low_mark = off_heap_top + 2
let off_prev = off_low_mark + 8
let off_next = off_prev + 4
let off_generation = off_next + 4
let body_start = off_generation + 2

let nil_pid = 0xFFFFFFFF

let entry_size = 12
let record_header = 10

let usable_bytes ~page_size = page_size - body_start
