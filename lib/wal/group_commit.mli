(** Group commit: coalesce concurrent log-force requests into one stable
    append per scheduler window.

    Committers call {!request} with the LSN they need durable and a wake
    callback, then park (the caller suspends its fiber; this module never
    blocks).  A periodic {!flush} — driven by the pipeline's group-commit
    ticker — issues a {e single} [Log.force] to the maximum pending LSN and
    wakes exactly the waiters whose LSN is covered by the new flushed
    boundary, preserving the prefix contract: an ack never outruns
    [Log.flushed_lsn].  If the force trips a fault-plan crash, the waiters
    are abandoned un-acknowledged, exactly as a synchronous force that never
    returned. *)

type t

type stats = {
  batches : int;  (** flushes that woke at least one waiter *)
  coalesced : int;  (** total waiters woken across all batches *)
  max_batch : int;  (** largest single batch *)
}

val create : Log.t -> t

val request : t -> Lsn.t -> (unit -> unit) -> unit
(** [request t lsn wake] enqueues a waiter for [lsn] to become stable.  The
    caller is responsible for checking [Log.flushed_lsn] first (no waiter is
    needed for an already-stable LSN) and for parking itself until [wake]. *)

val pending : t -> int
(** Waiters currently parked. *)

val flush : t -> unit
(** Force once to the maximum pending LSN and wake the covered waiters,
    oldest first.  No-op when nothing is pending.  May raise
    {!Pager.Fault.Crash} (waiters stay un-acknowledged). *)

val stats : t -> stats
