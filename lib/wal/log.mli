(** Append-only write-ahead log with a stable / volatile boundary.

    Records appended with {!append} sit in the volatile tail until {!force}d
    (or until a page flush forces them through the buffer pool's WAL hook).
    {!crash} discards the volatile tail — that, together with
    {!Pager.Buffer_pool.crash}, is the whole failure model.

    The log also keeps byte accounting ({!stats}): the paper treats log volume
    as a first-class cost of reorganization ("since log size is a concern, we
    try to make the amount of information logged small"). *)

type t

type stats = {
  records : int;  (** records appended (stable + volatile) *)
  bytes : int;  (** encoded bytes appended *)
  forced : int;  (** number of force operations actually advancing the boundary *)
}

val create : unit -> t

val append : t -> Record.body -> Lsn.t
(** Append and return the record's LSN (LSNs start at 1). *)

val force : t -> Lsn.t -> unit
(** Make records up to and including the LSN durable.  No-op if already
    durable.  When a fault controller is attached ({!set_fault}), an
    advancing force consults it: a crash-on-force plan makes this call raise
    {!Pager.Fault.Crash} after committing either all pending records or (for
    a torn-tail plan) only a random prefix of them. *)

val set_fault : t -> Pager.Fault.t -> unit
(** Route this log's durability boundary through a fault controller. *)

val force_all : t -> unit

val flushed_lsn : t -> Lsn.t
val head_lsn : t -> Lsn.t
(** LSN of the most recently appended record ([Lsn.nil] when empty). *)

val read : t -> Lsn.t -> Record.body
(** Raises [Not_found] for out-of-range or discarded LSNs. *)

val iter : ?from:Lsn.t -> ?upto:Lsn.t -> t -> (Lsn.t -> Record.body -> unit) -> unit
(** In-LSN-order iteration over the {e stable} records in
    [[from, upto]] (defaults: the whole stable log). *)

val crash : t -> unit
(** Discard the volatile tail.  Subsequent appends continue the LSN
    sequence. *)

val truncate : t -> keep_from:Lsn.t -> unit
(** Reclaim stable entries below [keep_from] and advance the log's base —
    the checkpoint protocol calls this once replay is guaranteed to start at
    or after [keep_from].  Clamped so the base never regresses and the
    volatile tail is never touched.  {!read} of a reclaimed LSN raises
    [Not_found]; {!iter} skips reclaimed prefixes.  {!stats} counters
    (appended log volume) are unaffected. *)

val base_lsn : t -> Lsn.t
(** Highest reclaimed LSN (0 when nothing was truncated): records with
    LSN <= [base_lsn] are gone. *)

val truncated_records : t -> int
(** Total records reclaimed by {!truncate} over this log's lifetime. *)

val last_checkpoint : t -> (Lsn.t * Record.body) option
(** Most recent stable [Checkpoint] record, tracked incrementally. *)

val stats : t -> stats
val reset_stats : t -> unit
(** Zeroes the counters in {!stats} (the records themselves are kept).  A
    later {!crash} only subtracts volatile entries appended {e after} the
    reset, so the gauges cannot go negative. *)

(** {2 Observability} *)

val register_obs : t -> Obs.Registry.t -> unit
(** Register [wal.records], [wal.bytes], [wal.forced] and
    [wal.flushed_lsn] gauges. *)

val set_tracer : t -> Obs.Trace.t option -> unit
(** While set, every force that actually advances the stable boundary is
    recorded as a [wal.force] instant event. *)
