(* The log buffer's group-commit seam: concurrent force requests (txn
   commits, careful-writing prerequisites, cross-shard coordinator forces)
   park here and a scheduler-driven flush turns the whole batch into one
   force to the maximum requested LSN.  The module is engine-agnostic — a
   waiter is just a wake callback — so the WAL layer stays below the
   scheduler in the dependency order; [Sim.Pipeline] supplies the fibers. *)

type waiter = { w_lsn : Lsn.t; w_wake : unit -> unit }

type stats = { batches : int; coalesced : int; max_batch : int }

type t = {
  log : Log.t;
  mutable pending : waiter list; (* newest first *)
  mutable batches : int;
  mutable coalesced : int;
  mutable max_batch : int;
}

let create log = { log; pending = []; batches = 0; coalesced = 0; max_batch = 0 }

let request t lsn wake = t.pending <- { w_lsn = lsn; w_wake = wake } :: t.pending

let pending t = List.length t.pending

let flush t =
  match t.pending with
  | [] -> ()
  | ws ->
    t.pending <- [];
    let target = List.fold_left (fun m w -> max m w.w_lsn) Lsn.nil ws in
    (* One force covers the whole batch.  If the fault controller makes it
       raise Crash, the machine died mid-force: the waiters are abandoned,
       which is correct — none of them was ever acknowledged. *)
    Log.force t.log target;
    let flushed = Log.flushed_lsn t.log in
    (* Wake only waiters whose LSN is actually stable; an ack must never
       outrun the flushed boundary.  (A successful force to [target] covers
       everyone; the partition guards the invariant, not a live path.) *)
    let sat, unsat = List.partition (fun w -> w.w_lsn <= flushed) ws in
    t.pending <- unsat @ t.pending;
    (match sat with
    | [] -> ()
    | _ ->
      t.batches <- t.batches + 1;
      let n = List.length sat in
      t.coalesced <- t.coalesced + n;
      if n > t.max_batch then t.max_batch <- n);
    (* Oldest first, so commit acks come out in request order. *)
    List.iter (fun w -> w.w_wake ()) (List.rev sat)

let stats t = { batches = t.batches; coalesced = t.coalesced; max_batch = t.max_batch }
